bench/main.mli:
