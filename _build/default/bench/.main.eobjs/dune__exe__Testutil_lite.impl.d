bench/testutil_lite.ml: Generator Graph Graphtheory Iri List Printf Random Rdf Term Tgraphs Triple Variable
