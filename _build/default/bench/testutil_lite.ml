(* Seed-driven random fixtures for the benchmark harness (a dependency-free
   sibling of test/util/testutil.ml). *)

open Rdf

let graph_of_seed ?(nodes = 6) ?(preds = 2) ?(triples = 14) seed =
  Generator.random_graph ~seed ~n:nodes
    ~predicates:(List.init preds (fun i -> Printf.sprintf "q%d" i))
    ~m:triples

let tgraph_of_seed ?(triples = 4) ?(vars = 4) ?(preds = 2) seed =
  let state = Random.State.make [| seed; triples; vars; 77 |] in
  let term () =
    if Random.State.int state 10 < 7 then
      Term.var (Printf.sprintf "v%d" (Random.State.int state vars))
    else Term.iri (Printf.sprintf "c:%d" (Random.State.int state 2))
  in
  let pred () = Term.iri (Printf.sprintf "q%d" (Random.State.int state preds)) in
  Tgraphs.Tgraph.of_triples
    (List.init
       (1 + Random.State.int state triples)
       (fun _ -> Triple.make (term ()) (pred ()) (term ())))

let gtgraph_of_seed ?(triples = 4) ?(vars = 4) seed =
  let s = tgraph_of_seed ~triples ~vars seed in
  let state = Random.State.make [| seed; 13 |] in
  let x =
    Variable.Set.filter
      (fun _ -> Random.State.int state 3 = 0)
      (Tgraphs.Tgraph.vars s)
  in
  Tgraphs.Gtgraph.make s x

let mu_for g graph seed =
  let iris = Iri.Set.elements (Graph.dom graph) in
  let state = Random.State.make [| seed; 5 |] in
  Variable.Set.fold
    (fun var acc ->
      Variable.Map.add var
        (Term.Iri (List.nth iris (Random.State.int state (List.length iris))))
        acc)
    (Tgraphs.Gtgraph.x g) Variable.Map.empty

let ugraph_of_seed ?(n = 8) ?(edge_prob = 0.4) seed =
  let state = Random.State.make [| seed; n; 53 |] in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Random.State.float state 1.0 < edge_prob then edges := (i, j) :: !edges
    done
  done;
  Graphtheory.Ugraph.make ~n ~edges:!edges
