(* wdsparql: command-line front end.

   Subcommands:
     eval      evaluate a query over a Turtle data file
     check     membership of a single mapping (naive or pebble algorithm)
     width     structural analysis: all width measures and the regime
     validate  well-designedness check with a diagnostic
     clique    solve k-CLIQUE via the hardness reduction (demo) *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_graph path =
  match Rdf.Turtle.parse_graph (read_file path) with
  | Ok g -> g
  | Error e -> Fmt.failwith "%s: %s" path e

let load_query path_or_inline =
  let src =
    if Sys.file_exists path_or_inline then read_file path_or_inline
    else path_or_inline
  in
  match Sparql.Parser.parse src with
  | Ok p -> p
  | Error e -> Fmt.failwith "query: %s" e

let parse_mapping spec =
  (* "x=person:ann,y=person:bob" *)
  String.split_on_char ',' spec
  |> List.filter (fun s -> String.trim s <> "")
  |> List.map (fun binding ->
         match String.index_opt binding '=' with
         | Some i ->
             let var = String.trim (String.sub binding 0 i) in
             let value =
               String.trim
                 (String.sub binding (i + 1) (String.length binding - i - 1))
             in
             (Rdf.Variable.of_string var, Rdf.Iri.of_string value)
         | None -> Fmt.failwith "bad binding %S (expected var=iri)" binding)
  |> Sparql.Mapping.of_list

(* ---------------- arguments ---------------- *)

let data_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "d"; "data" ] ~docv:"FILE" ~doc:"Turtle data file.")

let query_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "q"; "query" ] ~docv:"QUERY"
        ~doc:"Query: a file name or an inline pattern string.")

let mapping_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "m"; "mapping" ] ~docv:"BINDINGS"
        ~doc:"Candidate mapping, e.g. 'x=person:ann,y=person:bob'.")

let algorithm_arg =
  Arg.(
    value
    & opt (enum [ ("naive", `Naive); ("pebble", `Pebble); ("reference", `Reference) ]) `Pebble
    & info [ "a"; "algorithm" ] ~docv:"ALGO"
        ~doc:"Evaluation algorithm: naive (exact homomorphism tests), pebble \
              (Theorem 1), or reference (recursive algebra semantics).")

let pebbles_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "k" ] ~docv:"K"
        ~doc:"Domination-width bound for the pebble algorithm (defaults to \
              the computed dw of the query).")

(* ---------------- commands ---------------- *)

let eval_cmd =
  let run data query algorithm k =
    let graph = load_graph data in
    let pattern = load_query query in
    let forest = Wdpt.Pattern_forest.of_algebra pattern in
    let sols =
      match algorithm with
      | `Reference -> Sparql.Eval.eval pattern graph
      | `Naive -> Wdpt.Semantics.solutions forest graph
      | `Pebble ->
          let k =
            match k with
            | Some k -> k
            | None -> Wd_core.Domination_width.of_forest forest
          in
          Wd_core.Pebble_eval.solutions ~k forest graph
    in
    Fmt.pr "%d solution(s)@." (Sparql.Mapping.Set.cardinal sols);
    Sparql.Mapping.Set.iter (fun mu -> Fmt.pr "%a@." Sparql.Mapping.pp mu) sols
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate a query over a data file.")
    Term.(const run $ data_arg $ query_arg $ algorithm_arg $ pebbles_arg)

let check_cmd =
  let run data query mapping algorithm k =
    let graph = load_graph data in
    let pattern = load_query query in
    let forest = Wdpt.Pattern_forest.of_algebra pattern in
    let mu = parse_mapping mapping in
    let result =
      match algorithm with
      | `Reference -> Sparql.Eval.check pattern graph mu
      | `Naive -> Wd_core.Naive_eval.check forest graph mu
      | `Pebble ->
          let k =
            match k with
            | Some k -> k
            | None -> Wd_core.Domination_width.of_forest forest
          in
          Wd_core.Pebble_eval.check ~k forest graph mu
    in
    Fmt.pr "µ %s ⟦P⟧G@." (if result then "∈" else "∉");
    exit (if result then 0 else 1)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Decide membership of a mapping (wdEVAL).")
    Term.(const run $ data_arg $ query_arg $ mapping_arg $ algorithm_arg $ pebbles_arg)

let width_cmd =
  let run query =
    let pattern = load_query query in
    Fmt.pr "%a@." Wd_core.Classify.pp (Wd_core.Classify.classify pattern)
  in
  Cmd.v
    (Cmd.info "width" ~doc:"Width measures and predicted complexity regime.")
    Term.(const run $ query_arg)

let validate_cmd =
  let run query =
    let pattern = load_query query in
    match Sparql.Well_designed.check pattern with
    | Ok () ->
        Fmt.pr "well-designed@.";
        exit 0
    | Error v ->
        Fmt.pr "NOT well-designed: %a@." Sparql.Well_designed.pp_violation v;
        exit 1
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Check well-designedness.")
    Term.(const run $ query_arg)

let clique_cmd =
  let n_arg =
    Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc:"Graph size.")
  in
  let k_arg =
    Arg.(value & opt int 3 & info [ "k" ] ~docv:"K" ~doc:"Clique size.")
  in
  let prob_arg =
    Arg.(value & opt float 0.4 & info [ "p" ] ~docv:"P" ~doc:"Edge probability.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
  in
  let run n k prob seed =
    let h = Hardness.Clique.random_graph ~seed ~n ~edge_prob:prob in
    Fmt.pr "G(%d, %.2f) with %d edges, k = %d@." n prob
      (Graphtheory.Ugraph.m h) k;
    match Hardness.Reduction.decide ~k ~h with
    | Ok answer ->
        Fmt.pr "wdEVAL reduction: %s@."
          (if answer then "clique found" else "no clique");
        Fmt.pr "brute force:      %s@."
          (if Hardness.Clique.has_clique h k then "clique found" else "no clique")
    | Error e -> Fmt.failwith "%s" e
  in
  Cmd.v
    (Cmd.info "clique" ~doc:"Solve k-CLIQUE through the Theorem 2 reduction.")
    Term.(const run $ n_arg $ k_arg $ prob_arg $ seed_arg)

let explain_cmd =
  let run data query =
    let graph = load_graph data in
    let pattern = load_query query in
    Fmt.pr "%a@." Wd_core.Explain.pp (Wd_core.Explain.explain pattern graph)
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Show the evaluation plan with cardinality estimates.")
    Term.(const run $ data_arg $ query_arg)

let stats_cmd =
  let run data =
    let graph = load_graph data in
    Fmt.pr "%a@." Rdf.Stats.pp (Rdf.Stats.of_graph graph)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print graph statistics (per-predicate cardinalities).")
    Term.(const run $ data_arg)

let containment_cmd =
  let q2_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "r"; "rhs" ] ~docv:"QUERY" ~doc:"Right-hand query (file or inline).")
  in
  let attempts_arg =
    Arg.(value & opt int 200 & info [ "attempts" ] ~docv:"N" ~doc:"Refutation attempts.")
  in
  let run query rhs attempts =
    let p1 = load_query query and p2 = load_query rhs in
    match Wd_core.Containment.refute ~attempts p1 p2 with
    | Some ce ->
        Fmt.pr "NOT contained: counterexample found@.";
        Fmt.pr "graph:@.%s@." (Rdf.Turtle.to_string ce.Wd_core.Containment.graph);
        Fmt.pr "mapping: %a@." Sparql.Mapping.pp ce.Wd_core.Containment.mapping;
        exit 1
    | None ->
        Fmt.pr
          "no counterexample found in %d attempts (evidence of containment, \
           not a proof — wd-pattern containment is Πᵖ₂-complete)@."
          attempts
  in
  Cmd.v
    (Cmd.info "containment"
       ~doc:"Search for a counterexample to ⟦Q⟧ ⊆ ⟦RHS⟧ (randomised refutation).")
    Term.(const run $ query_arg $ q2_arg $ attempts_arg)

let optimize_cmd =
  let run query =
    let pattern = load_query query in
    let forest, report = Wdpt.Optimize.pattern pattern in
    Fmt.pr "removed %d redundant triple(s), %d duplicate tree(s)@."
      report.Wdpt.Optimize.triples_removed report.Wdpt.Optimize.trees_removed;
    Fmt.pr "optimised pattern:@.%s@."
      (Sparql.Printer.to_string (Wdpt.Pattern_forest.to_algebra forest))
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Apply the provably-safe simplifications (ancestor triple dedup, \
             duplicate UNION branches) and print the result.")
    Term.(const run $ query_arg)

let fuzz_cmd =
  let runs_arg =
    Arg.(value & opt int 200 & info [ "runs" ] ~docv:"N" ~doc:"Number of random instances.")
  in
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Base random seed.")
  in
  let run runs seed =
    (* Differential testing: algebra reference vs naive wdPF vs pebble(dw)
       vs the shared-prefix enumerator, on random instances. *)
    let failures = ref 0 in
    for i = 1 to runs do
      let s = seed + i in
      let pattern =
        Workload.Query_families.random_wd_pattern ~seed:s ~triples:6 ~vars:6
          ~preds:2 ~depth:3 ~union:2
      in
      let graph =
        Rdf.Generator.random_graph ~seed:(s * 7 + 1) ~n:6
          ~predicates:[ "q0"; "q1" ] ~m:18
      in
      let forest = Wdpt.Pattern_forest.of_algebra pattern in
      let dw = Wd_core.Domination_width.of_forest forest in
      let reference = Sparql.Eval.eval pattern graph in
      let naive = Wdpt.Semantics.solutions forest graph in
      let pebble = Wd_core.Pebble_eval.solutions ~k:dw forest graph in
      let shared = Wd_core.Enumerate.solutions forest graph in
      if
        not
          (Sparql.Mapping.Set.equal reference naive
          && Sparql.Mapping.Set.equal reference pebble
          && Sparql.Mapping.Set.equal reference shared)
      then begin
        incr failures;
        Fmt.epr "MISMATCH at seed %d:@.query: %s@." s
          (Sparql.Printer.to_string pattern)
      end
    done;
    if !failures = 0 then Fmt.pr "fuzz: %d instances, all evaluators agree@." runs
    else begin
      Fmt.pr "fuzz: %d mismatches out of %d@." !failures runs;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential testing: all four evaluators on random instances.")
    Term.(const run $ runs_arg $ seed_arg)

let () =
  let doc = "well-designed SPARQL with width-based evaluation (PODS'18)" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "wdsparql" ~version:"1.0.0" ~doc)
          [
            eval_cmd; check_cmd; width_cmd; validate_cmd; explain_cmd;
            stats_cmd; containment_cmd; optimize_cmd; clique_cmd; fuzz_cmd;
          ]))
