examples/clique_solver.ml: Fmt Graphtheory Hardness Ugraph Unix Wd_core
