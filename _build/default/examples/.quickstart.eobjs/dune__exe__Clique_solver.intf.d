examples/clique_solver.mli:
