examples/embedding.ml: Fmt Generator Graph List Printf Rdf Sparql Term Triple Wd_core
