examples/embedding.mli:
