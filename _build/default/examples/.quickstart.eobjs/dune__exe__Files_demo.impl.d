examples/files_demo.ml: Array Filename Fmt Fun List Printf Rdf Sparql Sys Wd_core
