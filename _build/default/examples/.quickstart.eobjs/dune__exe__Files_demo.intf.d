examples/files_demo.mli:
