examples/paper_examples.ml: Cores Fmt Gtgraph List Printf Rdf Sparql String Term Tgraph Tgraphs Triple Variable Wd_core Wdpt Workload
