examples/quickstart.ml: Fmt Rdf Sparql Wd_core Wdpt
