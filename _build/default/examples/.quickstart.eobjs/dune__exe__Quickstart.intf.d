examples/quickstart.mli:
