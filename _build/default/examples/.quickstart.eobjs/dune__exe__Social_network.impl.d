examples/social_network.ml: Fmt List Rdf Sparql Unix Wd_core Wdpt
