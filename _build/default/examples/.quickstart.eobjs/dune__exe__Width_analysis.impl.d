examples/width_analysis.ml: Fmt Hashtbl List Option Printf Query_families String Wd_core Wdpt Workload
