examples/width_analysis.mli:
