(* Solving CLIQUE with a SPARQL evaluator: a demonstration of the paper's
   W[1]-hardness reduction (Theorem 2 / Lemma 2 / Section 4.2).

   Given an undirected graph H, the reduction manufactures a well-designed
   pattern forest F (the grid query family), an RDF graph G (the frozen
   Lemma-2 gadget B) and a mapping µ such that

       H has a k-clique   iff   µ ∉ ⟦F⟧G.

   Run with: dune exec examples/clique_solver.exe *)

open Graphtheory

let describe name h k =
  Fmt.pr "@.%s (n=%d, m=%d), k=%d:@." name (Ugraph.n h) (Ugraph.m h) k;
  match Hardness.Reduction.build ~k ~h with
  | Error e -> Fmt.pr "  reduction failed: %s@." e
  | Ok inst ->
      let stats = inst.Hardness.Reduction.stats in
      Fmt.pr "  gadget: %d fresh variables, %d triples (grid %dx%d)@."
        stats.Hardness.Grohe.new_vars stats.Hardness.Grohe.triples
        stats.Hardness.Grohe.grid_rows stats.Hardness.Grohe.grid_cols;
      let start = Unix.gettimeofday () in
      let via_wdeval =
        not
          (Wd_core.Naive_eval.check inst.Hardness.Reduction.forest
             inst.Hardness.Reduction.graph inst.Hardness.Reduction.mu)
      in
      let elapsed = Unix.gettimeofday () -. start in
      let brute = Hardness.Clique.has_clique h k in
      Fmt.pr "  wdEVAL %s %d-clique (%.3fs); brute force agrees: %b@."
        (if via_wdeval then "found a" else "found no")
        k elapsed (via_wdeval = brute);
      assert (via_wdeval = brute)

let () =
  Fmt.pr "p-CLIQUE via p-co-wdEVAL — the hardness side of the dichotomy@.";
  describe "complete graph K5" (Ugraph.complete 5) 3;
  describe "cycle C7 (triangle-free)" (Ugraph.cycle_graph 7) 3;
  describe "Erdos-Renyi G(8, 0.4)" (Hardness.Clique.random_graph ~seed:11 ~n:8 ~edge_prob:0.4) 3;
  describe "Erdos-Renyi G(8, 0.15)" (Hardness.Clique.random_graph ~seed:12 ~n:8 ~edge_prob:0.15) 3;
  Fmt.pr
    "@.Because such grid queries have unbounded domination width, no \
     polynomial algorithm can evaluate the whole family unless FPT = W[1] \
     (Theorem 3).@."
