(* Section 5 of the paper, made concrete: with FILTER, well-designed
   patterns express conjunctive queries with inequalities, and evaluating
   them subsumes the EMBEDDING problem (injective homomorphism). For the
   class of paths, EMB is NP-hard yet fixed-parameter tractable — the
   example the paper gives for why the PTIME dichotomy fails once FILTER
   is allowed.

   This demo asks for *simple* (injective) paths via
   [path pattern + pairwise-≠ FILTER] and uses them to find the longest
   simple path of small digraphs — plain homomorphisms would happily walk
   in circles.

   Run with: dune exec examples/embedding.exe *)

open Rdf

(* path query: ?x1 -r-> ?x2 -r-> … -r-> ?xk, all distinct *)
let simple_path_query k =
  let var i = Term.var (Printf.sprintf "x%d" i) in
  let triples =
    List.init (k - 1) (fun i ->
        Sparql.Algebra.triple (Triple.make (var (i + 1)) (Term.iri "p:r") (var (i + 2))))
  in
  let conjunction = Sparql.Algebra.and_all triples in
  let distinct =
    let rec pairs i j acc =
      if i > k then acc
      else if j > k then pairs (i + 1) (i + 2) acc
      else pairs i (j + 1) (Sparql.Condition.neq (var i) (var j) :: acc)
    in
    match pairs 1 2 [] with
    | [] -> None
    | c :: rest -> Some (List.fold_left (fun a b -> Sparql.Condition.And (a, b)) c rest)
  in
  match distinct with
  | None -> conjunction
  | Some condition -> Sparql.Algebra.filter conjunction condition

let longest_simple_path graph =
  let rec climb k best =
    let q = simple_path_query k in
    let count = Sparql.Mapping.Set.cardinal (Sparql.Eval.eval q graph) in
    if count = 0 then best else climb (k + 1) (k, count)
  in
  climb 2 (1, Rdf.Graph.cardinal graph)

let inspect name graph =
  let hom_walks k =
    Sparql.Mapping.Set.cardinal
      (Sparql.Eval.eval
         (Sparql.Algebra.and_all
            (List.init (k - 1) (fun i ->
                 Sparql.Algebra.triple
                   (Triple.make
                      (Term.var (Printf.sprintf "x%d" (i + 1)))
                      (Term.iri "p:r")
                      (Term.var (Printf.sprintf "x%d" (i + 2)))))))
         graph)
  in
  Fmt.pr "@.%s (%d edges):@." name (Graph.cardinal graph);
  let k, count = longest_simple_path graph in
  Fmt.pr "  longest simple path: %d vertices (%d of them)@." k count;
  Fmt.pr "  contrast with homomorphisms: %d walks of length 6 vs %d simple@."
    (hom_walks 7)
    (Sparql.Mapping.Set.cardinal (Sparql.Eval.eval (simple_path_query 7) graph));
  let c = Wd_core.Classify.classify (simple_path_query 4) in
  match c.Wd_core.Classify.regime with
  | Wd_core.Classify.Outside_core_fragment ->
      Fmt.pr "  classifier: outside the core fragment (as §5 predicts)@."
  | _ -> Fmt.pr "  classifier: unexpected regime@."

let () =
  Fmt.pr "Embedding via FILTER: CQs with inequalities (paper §5)@.";
  inspect "directed cycle C6" (Generator.cycle ~n:6 ~pred:"r");
  inspect "path P5" (Generator.path ~n:5 ~pred:"r");
  inspect "random digraph G(10, 20)"
    (Generator.random_digraph ~seed:5 ~n:10 ~m:20 ~pred:"r");
  Fmt.pr
    "@.Note: a cycle has homomorphic walks of every length but only@.\
     finitely many simple paths — the inequality filter is what the core@.\
     fragment cannot express, and with it the tractability dichotomy@.\
     fails (EMB over paths is NP-hard but FPT, §5).@."
