(* Every worked example of the paper, executed.

   Run with: dune exec examples/paper_examples.exe

   Example 1  — well-designedness of P1 and P2
   Example 2  — wdpf(P) for the UNION pattern
   Example 3  — ctw of (S, X) and (S', X)
   Example 4  — the GtG sets of the forest F_k
   Example 5  — dw(F_k) = 1 vs local intractability
   Section 3.2 — the UNION-free family T'_k *)

open Rdf
open Tgraphs

let rule title =
  Fmt.pr "@.%s@.%s@." title (String.make (String.length title) '-')

let v = Term.var
let iri = Term.iri
let t s p o = Triple.make s p o
let vset names = Variable.Set.of_list (List.map Variable.of_string names)

(* ------------------------------------------------------------------ *)

let example1 () =
  rule "Example 1: well-designedness";
  let p1 =
    Sparql.Parser.parse_exn
      "{ { ?x p:p ?y . OPTIONAL { ?z p:q ?x } } OPTIONAL { ?y p:r ?o1 . ?o1 p:r ?o2 } }"
  in
  let p2 =
    Sparql.Parser.parse_exn
      "{ { ?x p:p ?y . OPTIONAL { ?z p:q ?x } } OPTIONAL { ?y p:r ?z . ?z p:r ?o2 } }"
  in
  Fmt.pr "P1 = %s@." (Sparql.Printer.to_string p1);
  Fmt.pr "  well-designed? %b@." (Sparql.Well_designed.is_well_designed p1);
  Fmt.pr "P2 = %s@." (Sparql.Printer.to_string p2);
  (match Sparql.Well_designed.check p2 with
  | Ok () -> Fmt.pr "  well-designed? true@."
  | Error violation ->
      Fmt.pr "  well-designed? false — %a@." Sparql.Well_designed.pp_violation
        violation);
  Fmt.pr
    "(the paper: ?z appears in (?z,q,?x), not in (?x,p,?y), and again \
     outside that OPT)@."

(* ------------------------------------------------------------------ *)

let example2 () =
  rule "Example 2: wdpf(P) — the pattern forest";
  let p =
    Sparql.Parser.parse_exn
      "{ { ?x p:p ?y . OPTIONAL { ?z p:q ?x } } OPTIONAL { ?y p:r ?o1 . ?o1 p:r ?o2 } } \
       UNION { ?x p:p ?y . OPTIONAL { ?z p:q ?x . ?w p:q ?z } }"
  in
  let forest = Wdpt.Pattern_forest.of_algebra p in
  Fmt.pr "wdpf(P) has %d trees (Figure 2 at k = 2):@." (List.length forest);
  List.iteri
    (fun i tree -> Fmt.pr "T%d =@.  %a@." (i + 1) Wdpt.Pattern_tree.pp tree)
    forest

(* ------------------------------------------------------------------ *)

let kk k = Workload.Query_families.kk k (List.init k (fun i -> Printf.sprintf "o%d" (i + 1)))

let example3 () =
  rule "Example 3: cores and ctw";
  let k = 4 in
  let x = vset [ "x"; "y"; "z" ] in
  let s =
    Gtgraph.make
      (Tgraph.union
         (Tgraph.of_triples
            [ t (v "z") (iri "p:q") (v "x"); t (v "x") (iri "p:p") (v "y");
              t (v "y") (iri "p:r") (v "o1") ])
         (kk k))
      x
  in
  Fmt.pr "(S, X) with K_%d: is core? %b, ctw = %d (= k − 1)@." k
    (Cores.is_core s) (Cores.ctw s);
  let s' =
    Gtgraph.make
      (Tgraph.union (Gtgraph.s s)
         (Tgraph.of_triples
            [ t (v "y") (iri "p:r") (v "o"); t (v "o") (iri "p:r") (v "o") ]))
      x
  in
  Fmt.pr "(S', X) = S + {(y,r,o), (o,r,o)}: tw = %d but ctw = %d@."
    (Gtgraph.tw s') (Cores.ctw s');
  let core = Cores.core s' in
  Fmt.pr "its core C' has %d triples: %a@."
    (Tgraph.cardinal (Gtgraph.s core))
    Tgraph.pp (Gtgraph.s core)

(* ------------------------------------------------------------------ *)

let example4 () =
  rule "Example 4: the GtG sets of F_3";
  let k = 3 in
  let forest = Workload.Query_families.f_k k in
  let t1 = List.nth forest 0 in
  let show name subtree =
    let supp = Wdpt.Children_assignment.supp forest subtree in
    let gtg = Wdpt.Children_assignment.gtg forest subtree in
    Fmt.pr "%s: supp = {%s}, |GtG| = %d, ctws = {%s}@." name
      (String.concat ", " (List.map (fun (i, _) -> Printf.sprintf "T%d" (i + 1)) supp))
      (List.length gtg)
      (String.concat ", "
         (List.map (fun g -> string_of_int (Cores.ctw g)) gtg))
  in
  show "T1[r1]" (Wdpt.Subtree.root_only t1);
  show "T1[r1,n11]" (Wdpt.Subtree.of_nodes t1 [ 0; 1 ]);
  show "T1[r1,n12]" (Wdpt.Subtree.of_nodes t1 [ 0; 2 ]);
  show "T1 (full)" (Wdpt.Subtree.full t1);
  (* the invalid partial assignment the paper discusses *)
  Fmt.pr "∆3 = {T1 ↦ n11} alone valid? %b (T2's witness maps into S_∆3)@."
    (Wdpt.Children_assignment.is_valid forest (Wdpt.Subtree.root_only t1) [ (0, 1) ])

(* ------------------------------------------------------------------ *)

let example5 () =
  rule "Example 5: dw(F_k) = 1 for every k, yet not locally tractable";
  Fmt.pr "%4s %20s %20s@." "k" "domination width" "local width";
  List.iter
    (fun k ->
      let forest = Workload.Query_families.f_k k in
      Fmt.pr "%4d %20d %20d@." k
        (Wd_core.Domination_width.of_forest forest)
        (Wd_core.Local_tractability.width_of_forest forest))
    [ 2; 3; 4; 5; 6 ];
  Fmt.pr
    "(node n12 carries K_k with interface {?y}: local ctw = k−1, but in@.";
  Fmt.pr
    " GtG(T1[r1]) the clique member is dominated by the path-shaped one)@."

(* ------------------------------------------------------------------ *)

let section32 () =
  rule "Section 3.2: the UNION-free family T'_k";
  Fmt.pr "%4s %18s %18s %14s@." "k" "branch treewidth" "domination width"
    "local width";
  List.iter
    (fun k ->
      let tree = Workload.Query_families.t_prime_k k in
      Fmt.pr "%4d %18d %18d %14d@." k
        (Wd_core.Branch_treewidth.of_tree tree)
        (Wd_core.Domination_width.of_forest [ tree ])
        (Wd_core.Local_tractability.width_of_tree tree))
    [ 2; 3; 4; 5; 6 ];
  Fmt.pr "(Proposition 5: dw = bw on UNION-free patterns — visible above)@."

let () =
  Fmt.pr "The worked examples of Romero, PODS 2018, executed.@.";
  example1 ();
  example2 ();
  example3 ();
  example4 ();
  example5 ();
  section32 ()
