(* Quickstart: load RDF data, parse a well-designed query, inspect its
   widths, and evaluate it three ways.

   Run with: dune exec examples/quickstart.exe *)

let data =
  {|# people and their (partially known) details
person:ann p:knows person:bob .
person:bob p:knows person:cho .
person:ann p:email mailto:ann@example.org .
person:bob p:worksAt company:acme .
|}

let query =
  "{ ?who p:knows ?friend . OPTIONAL { ?who p:email ?mail } OPTIONAL { ?friend p:worksAt ?office } }"

let () =
  (* 1. Load the data. *)
  let graph =
    match Rdf.Turtle.parse_graph data with
    | Ok g -> g
    | Error e -> failwith e
  in
  Fmt.pr "Loaded %d triples.@." (Rdf.Graph.cardinal graph);

  (* 2. Parse the query and check it is well-designed. *)
  let pattern = Sparql.Parser.parse_exn query in
  Fmt.pr "@.Query:@.%s@." (Sparql.Printer.to_string pattern);
  (match Sparql.Well_designed.check pattern with
  | Ok () -> Fmt.pr "The query is well-designed.@."
  | Error v -> Fmt.pr "Not well-designed: %a@." Sparql.Well_designed.pp_violation v);

  (* 3. Structural analysis: the paper's width measures. *)
  let classification = Wd_core.Classify.classify pattern in
  Fmt.pr "@.%a@." Wd_core.Classify.pp classification;

  (* 4. Evaluate: the reference algebra semantics, the wdPT-based exact
     algorithm, and the paper's polynomial pebble-game algorithm all
     return the same answers. *)
  let forest = Wdpt.Pattern_forest.of_algebra pattern in
  let reference = Sparql.Eval.eval pattern graph in
  let k =
    match classification.Wd_core.Classify.domination_width with
    | Some k -> k
    | None -> 1
  in
  let pebble = Wd_core.Pebble_eval.solutions ~k forest graph in
  assert (Sparql.Mapping.Set.equal reference pebble);
  Fmt.pr "@.Solutions (%d):@." (Sparql.Mapping.Set.cardinal reference);
  Sparql.Mapping.Set.iter
    (fun mu -> Fmt.pr "  %a@." Sparql.Mapping.pp mu)
    reference;

  (* 5. Membership checks. *)
  let mu =
    Sparql.Mapping.of_list
      [
        (Rdf.Variable.of_string "who", Rdf.Iri.of_string "person:ann");
        (Rdf.Variable.of_string "friend", Rdf.Iri.of_string "person:bob");
        (Rdf.Variable.of_string "mail", Rdf.Iri.of_string "mailto:ann@example.org");
        (Rdf.Variable.of_string "office", Rdf.Iri.of_string "company:acme");
      ]
  in
  Fmt.pr "@.µ = %a@." Sparql.Mapping.pp mu;
  Fmt.pr "µ ∈ ⟦P⟧G (naive):  %b@." (Wd_core.Naive_eval.check forest graph mu);
  Fmt.pr "µ ∈ ⟦P⟧G (pebble): %b@." (Wd_core.Pebble_eval.check ~k forest graph mu)
