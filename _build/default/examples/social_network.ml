(* A larger scenario: OPTIONAL-heavy "profile" queries over a synthetic
   social network — the workload the paper's introduction motivates
   (irregular linked data where fields may be missing).

   Run with: dune exec examples/social_network.exe *)

let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let queries =
  [
    ( "friends with optional email",
      "{ ?a p:knows ?b . OPTIONAL { ?b p:email ?m } }" );
    ( "deep profile",
      "{ ?a p:knows ?b . OPTIONAL { ?b p:worksAt ?c . ?c p:livesIn ?city } \
       OPTIONAL { ?b p:email ?m } }" );
    ( "colleagues or neighbours",
      "{ ?a p:worksAt ?c . ?b p:worksAt ?c } UNION { ?a p:livesIn ?t . ?b p:livesIn ?t }" );
    ( "friend-of-friend with optional city",
      "{ ?a p:knows ?b . ?b p:knows ?c . OPTIONAL { ?c p:livesIn ?city } }" );
  ]

let () =
  let graph = Rdf.Generator.social ~seed:2026 ~people:150 in
  Fmt.pr "Social graph: %d triples over %d IRIs.@.@."
    (Rdf.Graph.cardinal graph)
    (Rdf.Iri.Set.cardinal (Rdf.Graph.dom graph));
  Fmt.pr "%-36s %8s %6s %4s %10s %10s@." "query" "answers" "dw" "k" "enum (s)"
    "check (s)";
  List.iter
    (fun (name, src) ->
      let pattern = Sparql.Parser.parse_exn src in
      let forest = Wdpt.Pattern_forest.of_algebra pattern in
      let dw = Wd_core.Domination_width.of_forest forest in
      let sols, enum_time =
        time (fun () -> Wdpt.Semantics.solutions forest graph)
      in
      (* re-check every 10th answer through the pebble algorithm *)
      let sample =
        List.filteri (fun i _ -> i mod 10 = 0) (Sparql.Mapping.Set.elements sols)
      in
      let (), check_time =
        time (fun () ->
            List.iter
              (fun mu ->
                assert (Wd_core.Pebble_eval.check ~k:dw forest graph mu))
              sample)
      in
      Fmt.pr "%-36s %8d %6d %4d %10.4f %10.4f@." name
        (Sparql.Mapping.Set.cardinal sols)
        dw (dw + 1) enum_time check_time)
    queries;
  Fmt.pr
    "@.All sampled answers passed the polynomial membership test of Theorem 1.@."
