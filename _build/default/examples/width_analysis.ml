(* The width landscape: compute every width measure of the paper for a
   corpus of query families and see where each one falls relative to the
   tractability frontier.

   Run with: dune exec examples/width_analysis.exe *)

open Workload

let row name forest =
  let dw = Wd_core.Domination_width.of_forest forest in
  let bw =
    match forest with
    | [ tree ] -> string_of_int (Wd_core.Branch_treewidth.of_tree tree)
    | _ -> "-"
  in
  let lt = Wd_core.Local_tractability.width_of_forest forest in
  let regime = if dw <= 2 then "PTIME (low width)" else "frontier" in
  Fmt.pr "%-24s %6d %6s %6d %6d   %s@." name
    (Wdpt.Pattern_forest.size forest)
    bw lt dw regime

let () =
  Fmt.pr "Width landscape (dw = domination width, bw = branch treewidth,@.";
  Fmt.pr "lt = least local-tractability bound; Definitions 2-3 and §3.1):@.@.";
  Fmt.pr "%-24s %6s %6s %6s %6s   %s@." "family" "nodes" "bw" "lt" "dw" "regime";
  Fmt.pr "%s@." (String.make 78 '-');
  row "path(6)" [ Query_families.path_query 6 ];
  row "star(6)" [ Query_families.star_query 6 ];
  row "comb(4)" [ Query_families.comb_query 4 ];
  List.iter (fun k -> row (Printf.sprintf "T'_%d (sec. 3.2)" k) [ Query_families.t_prime_k k ]) [ 2; 3; 4; 5 ];
  List.iter (fun k -> row (Printf.sprintf "F_%d (example 4/5)" k) (Query_families.f_k k)) [ 2; 3; 4; 5 ];
  List.iter (fun k -> row (Printf.sprintf "clique_child(%d)" k) [ Query_families.clique_child k ]) [ 2; 3; 4; 5 ];
  List.iter
    (fun (r, c) -> row (Printf.sprintf "grid(%dx%d)" r c) [ Query_families.grid_query ~rows:r ~cols:c ])
    [ (2, 2); (2, 4); (3, 3) ];
  Fmt.pr "%s@." (String.make 78 '-');
  Fmt.pr
    "@.Observations matching the paper:@.\
     - T'_k and F_k keep dw (and bw) = 1 while lt grows with k: bounded@.\
    \  domination width strictly extends local tractability (Example 5).@.\
     - clique_child and grid have growing dw: classes built from them are@.\
    \  beyond the tractability frontier (Theorem 2).@.\
     - on UNION-free families, dw = bw (Proposition 5).@.";
  (* random patterns: where does "typical" OPTIONAL nesting land? *)
  Fmt.pr "@.Random well-designed patterns (30 samples):@.";
  let widths =
    List.init 30 (fun seed ->
        let p =
          Query_families.random_wd_pattern ~seed ~triples:8 ~vars:8 ~preds:3
            ~depth:3 ~union:2
        in
        Wd_core.Domination_width.of_pattern p)
  in
  let histogram = Hashtbl.create 8 in
  List.iter
    (fun w ->
      Hashtbl.replace histogram w
        (1 + Option.value ~default:0 (Hashtbl.find_opt histogram w)))
    widths;
  Hashtbl.fold (fun w count acc -> (w, count) :: acc) histogram []
  |> List.sort compare
  |> List.iter (fun (w, count) -> Fmt.pr "  dw = %d: %d patterns@." w count)
