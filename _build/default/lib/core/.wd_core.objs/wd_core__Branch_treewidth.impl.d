lib/core/branch_treewidth.ml: Cores Gtgraph List Tgraph Tgraphs Wdpt
