lib/core/branch_treewidth.mli: Gtgraph Sparql Tgraphs Wdpt
