lib/core/classify.ml: Branch_treewidth Domination_width Fmt List Local_tractability Sparql Wdpt
