lib/core/classify.mli: Fmt Sparql
