lib/core/containment.ml: Graph Gtgraph Iri List Printf Random Rdf Sparql Term Tgraph Tgraphs Triple Wdpt
