lib/core/containment.mli: Gtgraph Rdf Sparql Tgraphs
