lib/core/domination_width.ml: Cores Gtgraph List Tgraphs Wdpt
