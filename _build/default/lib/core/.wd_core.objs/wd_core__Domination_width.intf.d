lib/core/domination_width.mli: Gtgraph Sparql Tgraphs Wdpt
