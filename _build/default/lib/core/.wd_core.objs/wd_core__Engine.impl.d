lib/core/engine.ml: Domination_width Enumerate Fmt List Naive_eval Pebble_eval Sparql Wdpt
