lib/core/engine.mli: Fmt Graph Rdf Sparql Wdpt
