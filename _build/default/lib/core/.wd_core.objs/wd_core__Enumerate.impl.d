lib/core/enumerate.ml: Graph Homomorphism List Pebble_eval Rdf Sparql Tgraphs Variable Wdpt
