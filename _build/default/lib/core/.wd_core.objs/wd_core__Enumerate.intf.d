lib/core/enumerate.mli: Graph Rdf Sparql Wdpt
