lib/core/explain.ml: Classify Engine Fmt List Printf Rdf Stats String Tgraphs Triple Variable Wdpt
