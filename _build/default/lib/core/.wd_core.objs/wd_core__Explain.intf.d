lib/core/explain.mli: Classify Engine Fmt Rdf Sparql Wdpt
