lib/core/local_tractability.ml: Cores Gtgraph List Rdf Tgraphs Variable Wdpt
