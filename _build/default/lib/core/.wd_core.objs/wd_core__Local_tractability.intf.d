lib/core/local_tractability.mli: Sparql Wdpt
