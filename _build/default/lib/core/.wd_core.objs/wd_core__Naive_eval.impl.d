lib/core/naive_eval.ml: Wdpt
