lib/core/naive_eval.mli: Graph Rdf Sparql Wdpt
