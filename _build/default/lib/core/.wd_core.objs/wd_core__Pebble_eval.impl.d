lib/core/pebble_eval.ml: Domination_width Graph Gtgraph Homomorphism List Pebble Rdf Sparql Tgraph Tgraphs Wdpt
