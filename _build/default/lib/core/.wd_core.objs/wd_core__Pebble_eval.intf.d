lib/core/pebble_eval.mli: Graph Rdf Sparql Wdpt
