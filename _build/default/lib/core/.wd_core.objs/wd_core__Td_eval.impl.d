lib/core/td_eval.ml: Gtgraph List Sparql Td_hom Tgraph Tgraphs Wdpt
