lib/core/td_eval.mli: Graph Rdf Sparql Wdpt
