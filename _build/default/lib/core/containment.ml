open Rdf
open Tgraphs

let cq_contained q1 q2 = Gtgraph.maps_to q2 q1
let cq_equivalent q1 q2 = cq_contained q1 q2 && cq_contained q2 q1

let included_on p1 p2 graph =
  Sparql.Mapping.Set.subset (Sparql.Eval.eval p1 graph) (Sparql.Eval.eval p2 graph)

type counterexample = {
  graph : Rdf.Graph.t;
  mapping : Sparql.Mapping.t;
}

let find_counterexample p1 p2 graph =
  let sols1 = Sparql.Eval.eval p1 graph in
  let sols2 = Sparql.Eval.eval p2 graph in
  match Sparql.Mapping.Set.choose_opt (Sparql.Mapping.Set.diff sols1 sols2) with
  | Some mapping -> Some { graph; mapping }
  | None -> None

(* Candidate instances: freezings of every subtree pattern of wdpf(P1) —
   for the OPT-free fragment these canonical instances are complete — plus
   random graphs over both patterns' IRIs/vocabulary (OPT is non-monotone,
   so small random instances catch "optional part fires only in P1"
   counterexamples). *)
let canonical_instances p1 =
  let forest = Wdpt.Pattern_forest.of_algebra p1 in
  List.concat_map
    (fun tree ->
      List.map
        (fun subtree -> Tgraph.freeze (Wdpt.Subtree.pat subtree))
        (Wdpt.Subtree.all tree))
    forest

let random_instance p1 p2 state =
  let vocabulary =
    Iri.Set.elements
      (Iri.Set.union
         (Tgraph.iris (Tgraph.of_triples (Sparql.Algebra.triples p1)))
         (Tgraph.iris (Tgraph.of_triples (Sparql.Algebra.triples p2))))
  in
  let preds =
    List.filter
      (fun iri ->
        List.exists
          (fun t -> Term.equal t.Triple.p (Term.Iri iri))
          (Sparql.Algebra.triples p1 @ Sparql.Algebra.triples p2))
      vocabulary
  in
  let preds = if preds = [] then [ Iri.of_string "p:q" ] else preds in
  let nodes = 1 + Random.State.int state 4 in
  let node i = Term.iri (Printf.sprintf "w:%d" i) in
  let m = 1 + Random.State.int state 8 in
  let triples =
    List.init m (fun _ ->
        Triple.make
          (node (Random.State.int state nodes))
          (Term.Iri (List.nth preds (Random.State.int state (List.length preds))))
          (node (Random.State.int state nodes)))
  in
  Graph.of_triples triples

let refute ?(attempts = 200) ?(seed = 0) p1 p2 =
  let rec try_graphs = function
    | [] -> None
    | graph :: rest -> (
        match find_counterexample p1 p2 graph with
        | Some _ as found -> found
        | None -> try_graphs rest)
  in
  match try_graphs (canonical_instances p1) with
  | Some _ as found -> found
  | None ->
      let state = Random.State.make [| seed; attempts; 271828 |] in
      let rec go remaining =
        if remaining = 0 then None
        else
          match find_counterexample p1 p2 (random_instance p1 p2 state) with
          | Some _ as found -> found
          | None -> go (remaining - 1)
      in
      go attempts
