(** Containment of queries, built from the same homomorphism machinery the
    width measures use.

    For {e existential conjunctive} queries — generalised t-graphs
    [(S, X)], i.e. AND-only patterns with distinguished output variables
    [X] — containment is decided exactly by the classical Chandra–Merlin
    theorem: [q1 ⊆ q2] iff [(S2, X) → (S1, X)].

    For full well-designed patterns, containment (under set semantics) is
    Πᵖ₂-complete [Pichler & Skritek, PODS'14] and beyond this module's
    exact scope; we provide a sound randomised {e refutation} procedure —
    search for a witness instance on which the inclusion fails — plus a
    per-instance inclusion check. A refutation is always conclusive;
    failure to refute is not a proof of containment. *)

open Tgraphs

val cq_contained : Gtgraph.t -> Gtgraph.t -> bool
(** [cq_contained q1 q2]: is every answer of [q1] an answer of [q2] over
    every RDF graph? Exact (Chandra–Merlin). Raises [Invalid_argument]
    when the distinguished-variable sets differ. *)

val cq_equivalent : Gtgraph.t -> Gtgraph.t -> bool

val included_on :
  Sparql.Algebra.t -> Sparql.Algebra.t -> Rdf.Graph.t -> bool
(** [⟦P1⟧G ⊆ ⟦P2⟧G] on the given graph, by reference evaluation. *)

type counterexample = {
  graph : Rdf.Graph.t;
  mapping : Sparql.Mapping.t;  (** in [⟦P1⟧G] but not in [⟦P2⟧G] *)
}

val refute :
  ?attempts:int -> ?seed:int -> Sparql.Algebra.t -> Sparql.Algebra.t ->
  counterexample option
(** Randomised search for a witness that [P1 ⊄ P2]: candidate instances
    are frozen subtree patterns of [wdpf(P1)] (the canonical instances
    that suffice for the positive fragment) and random graphs over the
    two patterns' vocabulary. [None] means no counterexample found within
    [attempts] (default 200) — evidence, not proof, of containment. *)
