open Tgraphs

let dominated_with_ctws with_ctw k =
  let dominators = List.filter (fun (c, _) -> c <= k) with_ctw in
  List.for_all
    (fun (c, g) ->
      c <= k || List.exists (fun (_, g') -> Gtgraph.maps_to g' g) dominators)
    with_ctw

let dominated_at family k =
  dominated_with_ctws (List.map (fun g -> (Cores.ctw g, g)) family) k

let domination_level family =
  match family with
  | [] -> 1
  | _ ->
      let with_ctw = List.map (fun g -> (Cores.ctw g, g)) family in
      let candidates =
        List.sort_uniq compare (1 :: List.map fst with_ctw)
      in
      let rec first = function
        | [] -> List.fold_left (fun acc (c, _) -> max acc c) 1 with_ctw
        | k :: rest -> if dominated_with_ctws with_ctw k then k else first rest
      in
      first candidates

let of_subtree forest subtree =
  domination_level (Wdpt.Children_assignment.gtg forest subtree)

let subtrees_of forest =
  List.concat
    (List.mapi
       (fun i tree -> List.map (fun st -> (i, st)) (Wdpt.Subtree.all tree))
       forest)

let of_forest forest =
  List.fold_left
    (fun acc (_, st) -> max acc (of_subtree forest st))
    1 (subtrees_of forest)

let at_most forest k =
  List.for_all
    (fun (_, st) ->
      dominated_at (Wdpt.Children_assignment.gtg forest st) k)
    (subtrees_of forest)

let of_pattern p = of_forest (Wdpt.Pattern_forest.of_algebra p)

type profile = {
  subtree_members : int list;
  tree_index : int;
  gtg_ctws : int list;
  level : int;
}

let profile forest =
  List.map
    (fun (i, st) ->
      let gtg = Wdpt.Children_assignment.gtg forest st in
      {
        subtree_members = Wdpt.Subtree.members st;
        tree_index = i;
        gtg_ctws = List.map Cores.ctw gtg;
        level = domination_level gtg;
      })
    (subtrees_of forest)
