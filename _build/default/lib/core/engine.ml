type algorithm =
  | Naive
  | Pebble of int

type plan = {
  pattern : Sparql.Algebra.t;
  forest : Wdpt.Pattern_forest.t;
  domination_width : int;
  algorithm : algorithm;
}

let plan ?force pattern =
  let forest = Wdpt.Pattern_forest.of_algebra pattern in
  let domination_width = Domination_width.of_forest forest in
  let algorithm =
    match force with Some a -> a | None -> Pebble domination_width
  in
  { pattern; forest; domination_width; algorithm }

let check plan graph mu =
  match plan.algorithm with
  | Naive -> Naive_eval.check plan.forest graph mu
  | Pebble k -> Pebble_eval.check ~k plan.forest graph mu

let solutions plan graph =
  match plan.algorithm with
  | Naive -> Wdpt.Semantics.solutions plan.forest graph
  | Pebble k -> Enumerate.solutions ~maximality:(`Pebble k) plan.forest graph

let count plan graph = Sparql.Mapping.Set.cardinal (solutions plan graph)

let pp_plan ppf plan =
  Fmt.pf ppf "@[<v>query: %d triple pattern(s), %d tree(s)@ dw: %d@ algorithm: %a@]"
    (Sparql.Algebra.size plan.pattern)
    (List.length plan.forest) plan.domination_width
    (fun ppf -> function
      | Naive -> Fmt.string ppf "naive (exact homomorphism tests)"
      | Pebble k -> Fmt.pf ppf "pebble with k = %d (%d pebbles)" k (k + 1))
    plan.algorithm
