(** One-stop evaluation facade: translate once, measure the domination
    width once, and dispatch every subsequent operation to the right
    algorithm. This is what the CLI and the examples use. *)

open Rdf

type algorithm =
  | Naive  (** exact homomorphism tests (exponential in the query) *)
  | Pebble of int  (** Theorem-1 algorithm with [k]+1 pebbles *)

type plan = {
  pattern : Sparql.Algebra.t;
  forest : Wdpt.Pattern_forest.t;
  domination_width : int;
  algorithm : algorithm;
}

val plan : ?force:algorithm -> Sparql.Algebra.t -> plan
(** Build a plan. By default the pebble algorithm at the query's measured
    domination width is chosen (always exact); [force] overrides.
    Raises {!Wdpt.Translate.Not_well_designed} on non-well-designed
    input. *)

val check : plan -> Graph.t -> Sparql.Mapping.t -> bool
(** [µ ∈ ⟦P⟧G] with the planned algorithm. *)

val solutions : plan -> Graph.t -> Sparql.Mapping.Set.t
(** All answers: the shared-prefix enumerator under [Pebble], the baseline
    enumerator under [Naive]. *)

val count : plan -> Graph.t -> int
val pp_plan : plan Fmt.t
