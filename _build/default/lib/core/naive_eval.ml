let check = Wdpt.Semantics.check

let check_pattern p graph mu =
  check (Wdpt.Pattern_forest.of_algebra p) graph mu

let solutions = Wdpt.Semantics.solutions
