open Rdf
open Tgraphs

let child_test ~k tree graph mu subtree n =
  let s =
    Tgraph.union (Wdpt.Subtree.pat subtree) (Wdpt.Pattern_tree.pat tree n)
  in
  let g = Gtgraph.make s (Wdpt.Subtree.vars subtree) in
  Pebble.Pebble_game.wins ~k:(k + 1) g ~mu:(Sparql.Mapping.to_assignment mu)
    graph

let check ~k forest graph mu =
  if k < 1 then invalid_arg "Pebble_eval.check: k must be at least 1";
  List.exists
    (fun tree ->
      match Wdpt.Subtree.matching tree graph mu with
      | None -> false
      | Some subtree ->
          not
            (List.exists
               (child_test ~k tree graph mu subtree)
               (Wdpt.Subtree.children subtree)))
    forest

let check_pattern ~k p graph mu =
  check ~k (Wdpt.Pattern_forest.of_algebra p) graph mu

let check_auto forest graph mu =
  check ~k:(Domination_width.of_forest forest) forest graph mu

let solutions ~k forest graph =
  let target = Graph.to_index graph in
  List.fold_left
    (fun acc tree ->
      List.fold_left
        (fun acc subtree ->
          let homs =
            Homomorphism.all ~source:(Wdpt.Subtree.pat subtree) ~target ()
          in
          List.fold_left
            (fun acc h ->
              match Sparql.Mapping.of_assignment h with
              | None -> acc
              | Some mu ->
                  if check ~k forest graph mu then Sparql.Mapping.Set.add mu acc
                  else acc)
            acc homs)
        acc (Wdpt.Subtree.all tree))
    Sparql.Mapping.Set.empty forest
