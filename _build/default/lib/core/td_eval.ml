open Tgraphs

let child_test tree graph mu subtree n =
  let s =
    Tgraph.union (Wdpt.Subtree.pat subtree) (Wdpt.Pattern_tree.pat tree n)
  in
  let g = Gtgraph.make s (Wdpt.Subtree.vars subtree) in
  Td_hom.maps_to_graph g ~mu:(Sparql.Mapping.to_assignment mu) graph

let check forest graph mu =
  List.exists
    (fun tree ->
      match Wdpt.Subtree.matching tree graph mu with
      | None -> false
      | Some subtree ->
          not
            (List.exists
               (child_test tree graph mu subtree)
               (Wdpt.Subtree.children subtree)))
    forest

let check_pattern p graph mu = check (Wdpt.Pattern_forest.of_algebra p) graph mu
