(** The evaluation algorithm with the {e exact} tree-decomposition-guided
    extension test ({!Tgraphs.Td_hom}) in place of the pebble relaxation.

    Semantically this always equals {!Naive_eval} (the inner test is
    exact, not a relaxation — tested). Its cost profile is the interesting
    part: polynomial whenever every tested child instance has small
    {e ctw}, which covers bounded branch treewidth (hence all UNION-free
    tractable classes, Cor. 1) — but {b not} bounded domination width:
    on the paper's [F_k] family the tested instance contains the
    undominated clique and this algorithm blows up with the naive one
    while the pebble algorithm stays polynomial (bench F7). That contrast
    is exactly why Theorem 1 needs k-domination and a relaxation rather
    than a cleverer exact algorithm. *)

open Rdf

val check : Wdpt.Pattern_forest.t -> Graph.t -> Sparql.Mapping.t -> bool
(** [µ ∈ ⟦F⟧G], exactly. *)

val check_pattern : Sparql.Algebra.t -> Graph.t -> Sparql.Mapping.t -> bool
