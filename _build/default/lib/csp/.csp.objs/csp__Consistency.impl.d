lib/csp/consistency.ml: Array Fun Hashtbl List Queue Structure
