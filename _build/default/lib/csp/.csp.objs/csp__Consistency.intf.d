lib/csp/consistency.mli: Structure
