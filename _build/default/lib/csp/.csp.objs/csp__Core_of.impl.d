lib/csp/core_of.ml: Array Hom List Option Structure
