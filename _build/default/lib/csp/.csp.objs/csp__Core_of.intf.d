lib/csp/core_of.mli: Structure
