lib/csp/hom.ml: Array Fun List Option Printf Structure
