lib/csp/hom.mli: Structure
