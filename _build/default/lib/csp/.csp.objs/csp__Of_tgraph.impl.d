lib/csp/of_tgraph.ml: Dictionary Fun Graph Iri List Rdf Structure Term Tgraphs Triple Variable
