lib/csp/of_tgraph.mli: Graph Rdf Structure Tgraphs
