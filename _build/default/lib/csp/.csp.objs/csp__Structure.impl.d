lib/csp/structure.ml: Array Fmt Graphtheory Hashtbl List Map Option Printf String
