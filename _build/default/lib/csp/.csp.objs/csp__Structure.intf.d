lib/csp/structure.mli: Fmt Graphtheory
