(* Same worklist k-consistency as Pebble.Pebble_game, over structures:
   partial maps are sorted [| e1; b1; e2; b2; ... |] arrays used as
   hashtable keys. *)

let key_of_pairs pairs =
  let sorted = List.sort (fun (e, _) (e', _) -> compare e e') pairs in
  let arr = Array.make (2 * List.length sorted) 0 in
  List.iteri
    (fun i (e, b) ->
      arr.(2 * i) <- e;
      arr.((2 * i) + 1) <- b)
    sorted;
  arr

let pairs_of_key key =
  List.init (Array.length key / 2) (fun i -> (key.(2 * i), key.((2 * i) + 1)))

let key_remove key e =
  pairs_of_key key |> List.filter (fun (e', _) -> e' <> e) |> key_of_pairs

let key_add key e b = key_of_pairs ((e, b) :: pairs_of_key key)

let duplicator_wins ~k a b =
  if k < 1 then invalid_arg "Csp.Consistency: k must be at least 1";
  if
    List.length (Structure.distinguished a)
    <> List.length (Structure.distinguished b)
  then invalid_arg "Csp.Consistency: distinguished lists differ in length";
  (* fixed part of every partial map *)
  let fixed = Array.make (Structure.size a) (-1) in
  let consistent_fix =
    List.for_all2
      (fun ea eb ->
        if fixed.(ea) = -1 || fixed.(ea) = eb then begin
          fixed.(ea) <- eb;
          true
        end
        else false)
      (Structure.distinguished a)
      (Structure.distinguished b)
  in
  if not consistent_fix then false
  else begin
    let free =
      List.filter
        (fun e -> fixed.(e) = -1)
        (List.init (Structure.size a) Fun.id)
    in
    let free_arr = Array.of_list free in
    let n = Array.length free_arr in
    let free_index = Array.make (Structure.size a) (-1) in
    Array.iteri (fun i e -> free_index.(e) <- i) free_arr;
    (* constraints: (name, tuple); a tuple is "covered" by a partial map
       when all its free elements are in the domain *)
    let all_constraints =
      List.concat_map
        (fun name ->
          List.map (fun t -> (name, t)) (Structure.tuples a name))
        (Structure.relation_names a)
    in
    (* ground tuples (no free elements) must hold outright *)
    let ground_ok =
      List.for_all
        (fun (name, tuple) ->
          Array.exists (fun e -> fixed.(e) = -1) tuple
          || Structure.mem b name (Array.map (fun e -> fixed.(e)) tuple))
        all_constraints
    in
    if not ground_ok then false
    else if n = 0 then true
    else begin
      let nonground =
        List.filter
          (fun (_, tuple) -> Array.exists (fun e -> fixed.(e) = -1) tuple)
          all_constraints
      in
      let m = Structure.size b in
      if m = 0 then false
      else begin
        (* is [assoc : (free index, b element) list] a partial hom? checked
           incrementally during enumeration for tuples it covers *)
        let value assoc e =
          if fixed.(e) >= 0 then Some fixed.(e)
          else List.assoc_opt free_index.(e) assoc
        in
        let tuple_holds assoc (name, tuple) =
          match
            Array.map
              (fun e -> match value assoc e with Some v -> v | None -> raise Exit)
              tuple
          with
          | image -> Structure.mem b name image
          | exception Exit -> true
        in
        let alive : (int array, unit) Hashtbl.t = Hashtbl.create 1024 in
        let rec subsets start size acc =
          if size = 0 then [ List.rev acc ]
          else if start >= n then []
          else
            List.concat_map
              (fun v -> subsets (v + 1) (size - 1) (v :: acc))
              (List.init (n - start) (fun i -> start + i))
        in
        let enumerate dom_vars =
          let rec go remaining assoc =
            match remaining with
            | [] -> Hashtbl.replace alive (key_of_pairs assoc) ()
            | v :: rest ->
                for bv = 0 to m - 1 do
                  let assoc' = (v, bv) :: assoc in
                  let ok =
                    List.for_all
                      (fun ((_, tuple) as c) ->
                        (not (Array.exists (fun e -> free_index.(e) = v) tuple))
                        || tuple_holds assoc' c)
                      nonground
                  in
                  if ok then go rest assoc'
                done
          in
          go dom_vars []
        in
        for size = 0 to min k n do
          List.iter enumerate (subsets 0 size [])
        done;
        (* forth-property counters and downward closure, as in the t-graph
           implementation *)
        let counters : (int array * int, int ref) Hashtbl.t = Hashtbl.create 1024 in
        let dead = Queue.create () in
        Hashtbl.iter
          (fun key () ->
            let dom = List.map fst (pairs_of_key key) in
            if List.length dom < k then
              for v = 0 to n - 1 do
                if not (List.mem v dom) then begin
                  let cnt = ref 0 in
                  for bv = 0 to m - 1 do
                    if Hashtbl.mem alive (key_add key v bv) then incr cnt
                  done;
                  Hashtbl.replace counters (key, v) cnt;
                  if !cnt = 0 then Queue.add key dead
                end
              done)
          alive;
        while not (Queue.is_empty dead) do
          let key = Queue.pop dead in
          if Hashtbl.mem alive key then begin
            Hashtbl.remove alive key;
            let pairs = pairs_of_key key in
            List.iter
              (fun (v, _) ->
                let g_key = key_remove key v in
                if Hashtbl.mem alive g_key then
                  match Hashtbl.find_opt counters (g_key, v) with
                  | Some cnt ->
                      decr cnt;
                      if !cnt <= 0 then Queue.add g_key dead
                  | None -> ())
              pairs;
            if List.length pairs < k then
              for v = 0 to n - 1 do
                if not (List.mem_assoc v pairs) then
                  for bv = 0 to m - 1 do
                    let h_key = key_add key v bv in
                    if Hashtbl.mem alive h_key then Queue.add h_key dead
                  done
              done
          end
        done;
        Hashtbl.mem alive (key_of_pairs [])
      end
    end
  end
