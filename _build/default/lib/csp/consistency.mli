(** The existential k-pebble game on relational structures, decided by
    k-consistency — the original Kolaitis–Vardi setting that
    {!Pebble.Pebble_game} specialises to t-graphs (they agree through the
    {!Of_tgraph} encoding; tested).

    The Spoiler plays on the non-distinguished elements of the source;
    partial homomorphisms must extend the fixed distinguished mapping. *)

val duplicator_wins : k:int -> Structure.t -> Structure.t -> bool
(** [duplicator_wins ~k a b]: does the Duplicator win the existential
    k-pebble game from [a] to [b]? Implies nothing beyond
    [Hom.exists a b ⇒ duplicator_wins ~k a b]; exact when the core of [a]
    has treewidth ≤ k − 1 (Prop. 3 at the structure level). Raises
    [Invalid_argument] if [k < 1] or the distinguished lists differ in
    length. *)
