open Rdf

let relation = "t"

(* Encode a t-graph over a fixed, shared term numbering. [extra] lists
   terms that must be present in the domain even if they occur in no
   triple (e.g. the other side's constants). *)
let encode_tgraph tgraph ~dist_terms ~extra =
  let dict = Dictionary.create () in
  (* distinguished first, in the given order, so ids align across sides *)
  List.iter (fun term -> ignore (Dictionary.intern dict term)) dist_terms;
  List.iter (fun term -> ignore (Dictionary.intern dict term)) extra;
  let tuples =
    List.map
      (fun t ->
        [|
          Dictionary.intern dict t.Triple.s;
          Dictionary.intern dict t.Triple.p;
          Dictionary.intern dict t.Triple.o;
        |])
      (Tgraphs.Tgraph.triples tgraph)
  in
  Structure.make ~size:(Dictionary.size dict)
    ~relations:[ (relation, tuples) ]
    ~distinguished:(List.init (List.length dist_terms) Fun.id)
    ()

let shared_constants a b =
  Iri.Set.elements
    (Iri.Set.union
       (Tgraphs.Tgraph.iris (Tgraphs.Gtgraph.s a))
       (Tgraphs.Tgraph.iris (Tgraphs.Gtgraph.s b)))
  |> List.map (fun i -> Term.Iri i)

let hom_instance a b =
  if not (Variable.Set.equal (Tgraphs.Gtgraph.x a) (Tgraphs.Gtgraph.x b)) then
    invalid_arg "Of_tgraph.hom_instance: distinguished variable sets differ";
  let x_terms =
    List.map (fun v -> Term.Var v)
      (Variable.Set.elements (Tgraphs.Gtgraph.x a))
  in
  let constants = shared_constants a b in
  let dist_terms = x_terms @ constants in
  ( encode_tgraph (Tgraphs.Gtgraph.s a) ~dist_terms ~extra:[],
    encode_tgraph (Tgraphs.Gtgraph.s b) ~dist_terms ~extra:[] )

let graph_instance g ~mu graph =
  let x_vars = Variable.Set.elements (Tgraphs.Gtgraph.x g) in
  let source_constants =
    List.map (fun i -> Term.Iri i) (Iri.Set.elements (Tgraphs.Tgraph.iris (Tgraphs.Gtgraph.s g)))
  in
  let mu_image v =
    match Variable.Map.find_opt v mu with
    | Some (Term.Iri _ as t) -> t
    | _ -> invalid_arg "Of_tgraph.graph_instance: µ must map X to IRIs"
  in
  let source_dist = List.map (fun v -> Term.Var v) x_vars @ source_constants in
  let target_dist = List.map mu_image x_vars @ source_constants in
  let graph_tg = Tgraphs.Tgraph.of_triples (Graph.triples graph) in
  ( encode_tgraph (Tgraphs.Gtgraph.s g) ~dist_terms:source_dist ~extra:[],
    encode_tgraph graph_tg ~dist_terms:target_dist ~extra:[] )
