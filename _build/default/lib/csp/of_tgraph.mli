(** The encoding the paper mentions in Section 3: a generalised t-graph
    [(S, X)] {e is} a relational structure over a single ternary relation,
    with the distinguished variables and the IRIs as distinguished
    elements. This module realises the correspondence so that the
    structure-level machinery ({!Hom}, {!Core_of}, {!Consistency}) can be
    cross-validated against the t-graph implementations. *)

open Rdf

val relation : string
(** The single relation name, ["t"]. *)

val hom_instance :
  Tgraphs.Gtgraph.t -> Tgraphs.Gtgraph.t -> Structure.t * Structure.t
(** [hom_instance a b] encodes the question [(S_a, X) → (S_b, X)]:
    distinguished elements are the shared [X] (sorted) followed by the
    union of both sides' IRIs (sorted), so homomorphisms fix them exactly
    as t-graph homomorphisms fix [X] and constants. Raises
    [Invalid_argument] if the [X] sets differ. *)

val graph_instance :
  Tgraphs.Gtgraph.t -> mu:Tgraphs.Homomorphism.assignment -> Graph.t ->
  Structure.t * Structure.t
(** [graph_instance g ~mu graph] encodes [(S, X) →µ G] the same way, with
    [µ]'s images aligned to the source's [X] elements. [µ] must cover [X]
    with IRIs. *)
