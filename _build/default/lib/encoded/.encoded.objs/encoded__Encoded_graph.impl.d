lib/encoded/encoded_graph.ml: Array List Option Rdf
