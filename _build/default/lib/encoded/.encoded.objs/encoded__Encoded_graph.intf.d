lib/encoded/encoded_graph.mli: Rdf
