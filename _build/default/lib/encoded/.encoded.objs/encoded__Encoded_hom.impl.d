lib/encoded/encoded_hom.ml: Array Dictionary Encoded_graph Hashtbl List Rdf Seq Term Tgraphs Triple Variable
