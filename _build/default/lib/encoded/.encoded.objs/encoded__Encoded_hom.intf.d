lib/encoded/encoded_hom.mli: Encoded_graph Rdf Tgraphs Variable
