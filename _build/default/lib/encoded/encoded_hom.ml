open Rdf

(* Pattern term: constant id, or variable id. *)
type pterm =
  | Const of int
  | Var of int

type source =
  | Unsat
  | Sat of {
      patterns : (pterm * pterm * pterm) list;
      vars : Variable.t array;
    }

let compile tgraph graph =
  let dict = Encoded_graph.dictionary graph in
  let vars = Variable.Set.elements (Tgraphs.Tgraph.vars tgraph) in
  let var_arr = Array.of_list vars in
  let var_id = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.replace var_id v i) var_arr;
  let exception Unsatisfiable in
  let encode_term = function
    | Term.Var v -> Var (Hashtbl.find var_id v)
    | Term.Iri _ as t -> (
        match Dictionary.find dict t with
        | Some id -> Const id
        | None -> raise Unsatisfiable)
  in
  match
    List.map
      (fun t ->
        ( encode_term t.Triple.s,
          encode_term t.Triple.p,
          encode_term t.Triple.o ))
      (Tgraphs.Tgraph.triples tgraph)
  with
  | patterns -> Sat { patterns; vars = var_arr }
  | exception Unsatisfiable -> Unsat

let variables = function
  | Unsat -> [||]
  | Sat { vars; _ } -> vars

(* -1 = unassigned *)
let bound assignment = function
  | Const id -> Some id
  | Var v -> if assignment.(v) >= 0 then Some assignment.(v) else None

let pattern_lookup assignment (s, p, o) =
  (bound assignment s, bound assignment p, bound assignment o)

let fold_homs source graph ~init ~f =
  match source with
  | Unsat -> init
  | Sat { patterns; vars } ->
      let nvars = Array.length vars in
      let assignment = Array.make nvars (-1) in
      let rec go remaining acc =
        match remaining with
        | [] -> f acc assignment
        | _ ->
            (* fail-first: pattern with the fewest matches right now *)
            let scored =
              List.map
                (fun pat ->
                  let s, p, o = pattern_lookup assignment pat in
                  (Encoded_graph.match_count graph ?s ?p ?o (), pat))
                remaining
            in
            let best_count, best =
              List.fold_left
                (fun (bc, bp) (c, p) -> if c < bc then (c, p) else (bc, bp))
                (List.hd scored) (List.tl scored)
            in
            ignore best_count;
            let rest = List.filter (fun p -> p != best) remaining in
            let s, p, o = pattern_lookup assignment best in
            let ps, pp, po = best in
            let acc = ref acc in
            let continue_ = ref true in
            Encoded_graph.iter_matching graph ?s ?p ?o
              ~f:(fun (ts, tp, to_) ->
                if !continue_ then begin
                  (* unify the wildcard positions; record which variables
                     we bind here so we can undo *)
                  let bound_here = ref [] in
                  let unify_pos pterm value =
                    match pterm with
                    | Const id -> id = value
                    | Var v ->
                        if assignment.(v) = value then true
                        else if assignment.(v) = -1 then begin
                          assignment.(v) <- value;
                          bound_here := v :: !bound_here;
                          true
                        end
                        else false
                  in
                  let ok =
                    unify_pos ps ts && unify_pos pp tp && unify_pos po to_
                  in
                  if ok then begin
                    match go rest !acc with
                    | acc', `Continue -> acc := acc'
                    | acc', `Stop ->
                        acc := acc';
                        continue_ := false
                  end;
                  List.iter (fun v -> assignment.(v) <- -1) !bound_here
                end)
              ();
            (!acc, if !continue_ then `Continue else `Stop)
      in
      fst (go patterns init)

let exists source graph =
  fold_homs source graph ~init:false ~f:(fun _ _ -> (true, `Stop))

let count source graph =
  fold_homs source graph ~init:0 ~f:(fun n _ -> (n + 1, `Continue))

let all source graph =
  let dict = Encoded_graph.dictionary graph in
  let vars = variables source in
  fold_homs source graph ~init:[] ~f:(fun acc assignment ->
      let decoded =
        Array.to_seq (Array.mapi (fun i id -> (vars.(i), id)) assignment)
        |> Seq.filter (fun (_, id) -> id >= 0)
        |> Seq.map (fun (v, id) -> (v, Dictionary.term_of dict id))
        |> Variable.Map.of_seq
      in
      (decoded :: acc, `Continue))
  |> List.rev

let count_tgraph tgraph graph = count (compile tgraph graph) graph
