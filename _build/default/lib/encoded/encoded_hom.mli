(** The homomorphism solver over the dictionary-encoded store: the same
    fail-first backtracking join as {!Tgraphs.Homomorphism}, operating on
    integer ids and sorted-array range lookups instead of terms and hash
    probes. Results are identical (cross-checked in the tests); bench A4
    compares throughput. *)

open Rdf

type source
(** A t-graph compiled against a graph's dictionary. *)

val compile : Tgraphs.Tgraph.t -> Encoded_graph.t -> source
(** Variables are numbered densely; IRIs are looked up in the graph's
    dictionary — an IRI absent from the data compiles to an unsatisfiable
    source (zero homomorphisms) rather than an error. *)

val variables : source -> Variable.t array
(** Decode table: variable of each dense id. *)

val exists : source -> Encoded_graph.t -> bool
val count : source -> Encoded_graph.t -> int

val all : source -> Encoded_graph.t -> Tgraphs.Homomorphism.assignment list
(** Assignments decoded back to terms via the dictionary. *)

val count_tgraph : Tgraphs.Tgraph.t -> Encoded_graph.t -> int
(** Convenience: [compile] + [count]. *)
