lib/graphtheory/components.ml: Array List Ugraph
