lib/graphtheory/components.mli: Ugraph
