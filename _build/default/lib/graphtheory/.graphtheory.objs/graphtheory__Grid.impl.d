lib/graphtheory/grid.ml: Ugraph
