lib/graphtheory/grid.mli: Ugraph
