lib/graphtheory/minor.ml: Array Fun List Printf Queue Ugraph
