lib/graphtheory/minor.mli: Ugraph
