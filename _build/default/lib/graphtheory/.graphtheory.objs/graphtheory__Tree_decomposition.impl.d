lib/graphtheory/tree_decomposition.ml: Array Fmt Fun List Printf Result Ugraph
