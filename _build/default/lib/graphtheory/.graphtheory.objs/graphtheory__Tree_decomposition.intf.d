lib/graphtheory/tree_decomposition.mli: Fmt Ugraph
