lib/graphtheory/treewidth.ml: Array Bytes Char Fun Hashtbl List Tree_decomposition Ugraph
