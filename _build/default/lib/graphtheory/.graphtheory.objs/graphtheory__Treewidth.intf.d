lib/graphtheory/treewidth.mli: Tree_decomposition Ugraph
