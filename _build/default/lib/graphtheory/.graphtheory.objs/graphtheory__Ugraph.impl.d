lib/graphtheory/ugraph.ml: Array Fmt Fun Hashtbl Int List Set
