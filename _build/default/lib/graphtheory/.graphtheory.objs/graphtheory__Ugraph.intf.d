lib/graphtheory/ugraph.mli: Fmt Set
