let components g =
  let n = Ugraph.n g in
  let seen = Array.make n false in
  let collect start =
    let acc = ref [] in
    let rec dfs u =
      if not seen.(u) then begin
        seen.(u) <- true;
        acc := u :: !acc;
        Ugraph.ISet.iter dfs (Ugraph.adj g u)
      end
    in
    dfs start;
    List.sort compare !acc
  in
  let result = ref [] in
  for v = 0 to n - 1 do
    if not seen.(v) then result := collect v :: !result
  done;
  List.rev !result

let component_of g v =
  match List.find_opt (fun c -> List.mem v c) (components g) with
  | Some c -> c
  | None -> invalid_arg "Components.component_of: vertex out of range"
