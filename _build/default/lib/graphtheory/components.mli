(** Connected components of undirected graphs. *)

val components : Ugraph.t -> int list list
(** The vertex sets of the connected components, each sorted ascending;
    components appear in order of their smallest vertex. Isolated vertices
    form singleton components. *)

val component_of : Ugraph.t -> int -> int list
(** The sorted component containing the given vertex. *)
