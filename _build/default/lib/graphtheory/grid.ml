let graph ~rows ~cols = Ugraph.grid_graph ~rows ~cols
let id ~cols r c = (r * cols) + c
let coords ~cols v = (v / cols, v mod cols)
let treewidth k = if k <= 0 then -1 else if k = 1 then 0 else k
