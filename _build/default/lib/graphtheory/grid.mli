(** Coordinate helpers for the [(k × ℓ)]-grid (Section 4 / Appendix of the
    paper), whose vertex set is [{1..k} × {1..ℓ}] — represented here with
    0-based coordinates and the vertex-id scheme of
    {!Ugraph.grid_graph}. *)

val graph : rows:int -> cols:int -> Ugraph.t

val id : cols:int -> int -> int -> int
(** [id ~cols r c] is the vertex id of coordinate [(r, c)]. *)

val coords : cols:int -> int -> int * int
(** Inverse of [id]. *)

val treewidth : int -> int
(** Treewidth of the [k × k] grid, which is [k] (for [k ≥ 1]);
    included as executable documentation and used in tests. *)
