module ISet = Ugraph.ISet

type map = ISet.t array

let connected_in host set =
  if ISet.is_empty set then false
  else begin
    let start = ISet.min_elt set in
    let rec dfs seen u =
      if ISet.mem u seen then seen
      else
        ISet.fold
          (fun v seen -> if ISet.mem v set then dfs seen v else seen)
          (Ugraph.adj host u) (ISet.add u seen)
    in
    ISet.equal (dfs ISet.empty start) set
  end

let sets_adjacent host a b =
  ISet.exists (fun u -> ISet.exists (fun v -> Ugraph.mem_edge host u v) b) a

let verify ~minor ~host map =
  let k = Ugraph.n minor in
  if Array.length map <> k then Error "map has wrong arity"
  else begin
    let problems = ref None in
    let fail msg = if !problems = None then problems := Some msg in
    Array.iteri
      (fun u set ->
        if ISet.is_empty set then fail (Printf.sprintf "branch set %d empty" u)
        else if not (connected_in host set) then
          fail (Printf.sprintf "branch set %d disconnected" u))
      map;
    for u = 0 to k - 1 do
      for v = u + 1 to k - 1 do
        if not (ISet.is_empty (ISet.inter map.(u) map.(v))) then
          fail (Printf.sprintf "branch sets %d and %d overlap" u v)
      done
    done;
    List.iter
      (fun (u, v) ->
        if not (sets_adjacent host map.(u) map.(v)) then
          fail (Printf.sprintf "edge (%d,%d) has no witness" u v))
      (Ugraph.edges minor);
    match !problems with Some msg -> Error msg | None -> Ok ()
  end

let is_onto ~host map =
  let covered = Array.fold_left ISet.union ISet.empty map in
  ISet.cardinal covered = Ugraph.n host

let identity g = Array.init (Ugraph.n g) ISet.singleton

let extend_onto ~host map =
  let map = Array.map Fun.id map in
  let owner = Array.make (Ugraph.n host) (-1) in
  Array.iteri (fun u set -> ISet.iter (fun v -> owner.(v) <- u) set) map;
  let changed = ref true in
  while !changed do
    changed := false;
    for v = 0 to Ugraph.n host - 1 do
      if owner.(v) = -1 then begin
        (* absorb into the branch set of any covered neighbour *)
        match
          ISet.fold
            (fun u acc -> if acc = -1 && owner.(u) <> -1 then owner.(u) else acc)
            (Ugraph.adj host v) (-1)
        with
        | -1 -> ()
        | u ->
            owner.(v) <- u;
            map.(u) <- ISet.add v map.(u);
            changed := true
      end
    done
  done;
  if Array.exists (fun o -> o = -1) owner then None else Some map

(* Shortest path from [src] to any vertex of [targets], with interior
   vertices drawn from [allowed]. Returns the path including endpoints. *)
let shortest_path host ~src ~targets ~allowed =
  let n = Ugraph.n host in
  let prev = Array.make n (-2) in
  let queue = Queue.create () in
  Queue.add src queue;
  prev.(src) <- -1;
  let found = ref None in
  while !found = None && not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    if ISet.mem u targets && u <> src then found := Some u
    else
      ISet.iter
        (fun v ->
          if prev.(v) = -2 && (ISet.mem v allowed || ISet.mem v targets) then begin
            prev.(v) <- u;
            Queue.add v queue
          end)
        (Ugraph.adj host u)
  done;
  match !found with
  | None -> None
  | Some dst ->
      let rec walk v acc = if v = -1 then acc else walk prev.(v) (v :: acc) in
      Some (walk dst [])

(* Connected placement order: BFS per component of the minor. *)
let placement_order minor =
  let k = Ugraph.n minor in
  let seen = Array.make k false in
  let order = ref [] in
  for start = 0 to k - 1 do
    if not seen.(start) then begin
      let queue = Queue.create () in
      Queue.add start queue;
      seen.(start) <- true;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        order := u :: !order;
        ISet.iter
          (fun v ->
            if not seen.(v) then begin
              seen.(v) <- true;
              Queue.add v queue
            end)
          (Ugraph.adj minor u)
      done
    end
  done;
  List.rev !order

let find ~minor ~host =
  let k = Ugraph.n minor in
  let nh = Ugraph.n host in
  if k = 0 then Some [||]
  else if nh = 0 then None
  else begin
    let order = Array.of_list (placement_order minor) in
    let budget = ref 200_000 in
    let all_hosts = List.init nh Fun.id in
    (* state: branch sets and the set of used host vertices *)
    let rec place idx branch used =
      if !budget <= 0 then None
      else if idx = k then Some branch
      else begin
        decr budget;
        let u = order.(idx) in
        let placed_neighbours =
          ISet.elements (Ugraph.adj minor u)
          |> List.filter (fun v ->
                 Array.exists (fun w -> w = v) (Array.sub order 0 idx))
        in
        let try_seed acc seed =
          match acc with
          | Some _ -> acc
          | None ->
              if ISet.mem seed used then None
              else begin
                let branch' = Array.map Fun.id branch in
                branch'.(u) <- ISet.singleton seed;
                let used' = ref (ISet.add seed used) in
                (* Repair adjacency to each already-placed neighbour with a
                   shortest path through unused vertices; interior vertices
                   join the branch set of [u]. *)
                let ok =
                  List.for_all
                    (fun v ->
                      if sets_adjacent host branch'.(u) branch'.(v) then true
                      else begin
                        let allowed =
                          List.fold_left
                            (fun acc h ->
                              if ISet.mem h !used' then acc else ISet.add h acc)
                            ISet.empty all_hosts
                        in
                        let from =
                          (* search from each vertex of branch'(u); seed-first *)
                          ISet.elements branch'.(u)
                        in
                        let rec attempt = function
                          | [] -> false
                          | src :: rest -> (
                              match
                                shortest_path host ~src ~targets:branch'.(v)
                                  ~allowed
                              with
                              | Some path ->
                                  (* drop the final vertex (inside branch v);
                                     the rest joins branch u *)
                                  let interior =
                                    List.filteri
                                      (fun i _ -> i < List.length path - 1)
                                      path
                                  in
                                  List.iter
                                    (fun w ->
                                      branch'.(u) <- ISet.add w branch'.(u);
                                      used' := ISet.add w !used')
                                    interior;
                                  true
                              | None -> attempt rest)
                        in
                        attempt from
                      end)
                    placed_neighbours
                in
                if ok then place (idx + 1) branch' !used' else None
              end
        in
        List.fold_left try_seed None all_hosts
      end
    in
    match place 0 (Array.make k ISet.empty) ISet.empty with
    | Some branch -> (
        match verify ~minor ~host branch with Ok () -> Some branch | Error _ -> None)
    | None -> None
  end
