(** Minor maps (Appendix, proof of Lemma 2).

    A minor map from [H] to [H'] assigns each vertex of [H] a non-empty
    connected set of vertices of [H'] ("branch set") such that branch sets
    are pairwise disjoint and every edge of [H] is witnessed by an edge
    between the corresponding branch sets. The map is {e onto} when branch
    sets cover all of [H']. *)

type map = Ugraph.ISet.t array
(** [map.(u)] is the branch set of minor vertex [u]. *)

val verify : minor:Ugraph.t -> host:Ugraph.t -> map -> (unit, string) result
(** Check non-emptiness, connectivity, disjointness and edge coverage. *)

val is_onto : host:Ugraph.t -> map -> bool

val identity : Ugraph.t -> map
(** The identity minor map of a graph into itself. *)

val extend_onto : host:Ugraph.t -> map -> map option
(** Absorb host vertices not covered by any branch set into adjacent
    branch sets, yielding an onto map. [None] if some uncovered component
    touches no branch set. *)

val find : minor:Ugraph.t -> host:Ugraph.t -> map option
(** Heuristic search for a minor map (exact only in the sense that any
    returned map is verified; failure to find one is not a proof of
    absence). Places minor vertices on host vertices in a connected order
    and repairs missing edge witnesses with shortest paths through unused
    host vertices. Sufficient for the grid-shaped instances used by the
    hardness reduction and for tests. *)
