module ISet = Ugraph.ISet

type t = { bags : ISet.t array; tree_edges : (int * int) list }

let make ~bags ~tree_edges =
  let k = Array.length bags in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= k || b < 0 || b >= k then
        invalid_arg "Tree_decomposition.make: tree edge out of range")
    tree_edges;
  { bags; tree_edges }

let bags t = t.bags
let tree_edges t = t.tree_edges

let width t =
  Array.fold_left (fun acc bag -> max acc (ISet.cardinal bag - 1)) 0 t.bags

(* Union-find for acyclicity checking. *)
let acyclic k edges =
  let parent = Array.init k Fun.id in
  let rec find x = if parent.(x) = x then x else find parent.(x) in
  List.for_all
    (fun (a, b) ->
      let ra = find a and rb = find b in
      if ra = rb then false
      else begin
        parent.(ra) <- rb;
        true
      end)
    edges

let neighbours t =
  let k = Array.length t.bags in
  let adj = Array.make k [] in
  List.iter
    (fun (a, b) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    t.tree_edges;
  adj

let verify g t =
  let k = Array.length t.bags in
  let ( let* ) = Result.bind in
  let* () =
    if acyclic k t.tree_edges then Ok ()
    else Error "decomposition tree contains a cycle"
  in
  let* () =
    let bad =
      Array.to_list t.bags
      |> List.concat_map ISet.elements
      |> List.find_opt (fun v -> v < 0 || v >= Ugraph.n g)
    in
    match bad with
    | Some v -> Error (Printf.sprintf "bag contains unknown vertex %d" v)
    | None -> Ok ()
  in
  let adj = neighbours t in
  (* Vertex occurrence connectivity: BFS over decomposition nodes whose bag
     contains the vertex must reach all of them from any one of them. *)
  let connected_for v =
    let holders = ref [] in
    Array.iteri (fun i bag -> if ISet.mem v bag then holders := i :: !holders) t.bags;
    match !holders with
    | [] -> false
    | start :: _ ->
        let target = List.length !holders in
        let seen = Array.make k false in
        let count = ref 0 in
        let rec dfs i =
          if (not seen.(i)) && ISet.mem v t.bags.(i) then begin
            seen.(i) <- true;
            incr count;
            List.iter dfs adj.(i)
          end
        in
        dfs start;
        !count = target
  in
  let* () =
    let rec check v =
      if v >= Ugraph.n g then Ok ()
      else if not (connected_for v) then
        Error (Printf.sprintf "vertex %d: occurrences missing or disconnected" v)
      else check (v + 1)
    in
    check 0
  in
  let covered (u, v) =
    Array.exists (fun bag -> ISet.mem u bag && ISet.mem v bag) t.bags
  in
  match List.find_opt (fun e -> not (covered e)) (Ugraph.edges g) with
  | Some (u, v) -> Error (Printf.sprintf "edge (%d,%d) not covered by any bag" u v)
  | None -> Ok ()

let of_elimination_order g order =
  let n = Ugraph.n g in
  if List.length order <> n || List.sort compare order <> List.init n Fun.id then
    invalid_arg "Tree_decomposition.of_elimination_order: not a permutation";
  let position = Array.make n 0 in
  List.iteri (fun i v -> position.(v) <- i) order;
  let adjacency = Array.init n (fun v -> Ugraph.adj g v) in
  let bags = Array.make n ISet.empty in
  let parents = ref [] in
  List.iteri
    (fun i v ->
      let nbrs = adjacency.(v) in
      bags.(i) <- ISet.add v nbrs;
      (* Saturate neighbours into a clique, then remove v. *)
      ISet.iter
        (fun a ->
          adjacency.(a) <- ISet.remove v adjacency.(a);
          ISet.iter
            (fun b -> if a <> b then adjacency.(a) <- ISet.add b adjacency.(a))
            nbrs)
        nbrs;
      adjacency.(v) <- ISet.empty;
      (* Attach to the decomposition node of the earliest-eliminated
         remaining neighbour. *)
      match ISet.elements nbrs with
      | [] -> ()
      | nbr_list ->
          let next =
            List.fold_left
              (fun acc u -> if position.(u) < position.(acc) then u else acc)
              (List.hd nbr_list) nbr_list
          in
          parents := (i, position.(next)) :: !parents)
    order;
  make ~bags ~tree_edges:!parents

let pp ppf t =
  let bag ppf (i, b) =
    Fmt.pf ppf "%d:{%a}" i Fmt.(list ~sep:comma int) (ISet.elements b)
  in
  Fmt.pf ppf "@[<v>bags: %a@ edges: %a@]"
    Fmt.(list ~sep:sp bag)
    (Array.to_list (Array.mapi (fun i b -> (i, b)) t.bags))
    Fmt.(list ~sep:comma (pair ~sep:(any "-") int int))
    t.tree_edges
