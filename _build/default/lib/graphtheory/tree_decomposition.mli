(** Tree decompositions of undirected graphs (Section 2 of the paper).

    A tree decomposition of [H] is a tree [F] with a bag
    [β(s) ⊆ V(H)] per node such that (i) for every vertex [u] the nodes
    whose bag contains [u] induce a connected subtree, and (ii) every edge
    of [H] is contained in some bag. Its width is [max |β(s)| − 1]. *)

type t

val make : bags:Ugraph.ISet.t array -> tree_edges:(int * int) list -> t
(** [bags.(i)] is the bag of decomposition node [i]; [tree_edges] must form
    a tree (or forest) on [0 .. Array.length bags − 1]. *)

val bags : t -> Ugraph.ISet.t array
val tree_edges : t -> (int * int) list

val width : t -> int
(** [max |bag| − 1], and [0] for an empty decomposition. *)

val verify : Ugraph.t -> t -> (unit, string) result
(** Check all tree-decomposition conditions against the graph: the tree is
    acyclic and connected (per decomposition component), every vertex
    occurs in some bag and its occurrences are connected, and every edge is
    covered by a bag. *)

val of_elimination_order : Ugraph.t -> int list -> t
(** The standard decomposition induced by an elimination ordering: bag of
    [v] is [v] plus its higher neighbours in the fill-in graph. The
    resulting width equals the width of the ordering. *)

val pp : t Fmt.t
