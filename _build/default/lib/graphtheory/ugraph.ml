module ISet = Set.Make (Int)

type t = { size : int; adjacency : ISet.t array }

let make ~n ~edges =
  if n < 0 then invalid_arg "Ugraph.make: negative size";
  let adjacency = Array.make n ISet.empty in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Ugraph.make: endpoint out of range";
      if u <> v then begin
        adjacency.(u) <- ISet.add v adjacency.(u);
        adjacency.(v) <- ISet.add u adjacency.(v)
      end)
    edges;
  { size = n; adjacency }

let n g = g.size

let edges g =
  let acc = ref [] in
  for u = g.size - 1 downto 0 do
    ISet.iter (fun v -> if u < v then acc := (u, v) :: !acc) g.adjacency.(u)
  done;
  !acc

let m g = List.length (edges g)
let adj g u = g.adjacency.(u)
let degree g u = ISet.cardinal g.adjacency.(u)
let mem_edge g u v = u <> v && ISet.mem v g.adjacency.(u)

let add_edge g u v =
  if u < 0 || u >= g.size || v < 0 || v >= g.size then
    invalid_arg "Ugraph.add_edge: endpoint out of range";
  if u = v || mem_edge g u v then g
  else begin
    let adjacency = Array.copy g.adjacency in
    adjacency.(u) <- ISet.add v adjacency.(u);
    adjacency.(v) <- ISet.add u adjacency.(v);
    { g with adjacency }
  end

let remove_vertex g u =
  let adjacency =
    Array.mapi
      (fun i s -> if i = u then ISet.empty else ISet.remove u s)
      g.adjacency
  in
  { g with adjacency }

let induced g vs =
  let old_of_new = Array.of_list vs in
  let new_of_old = Hashtbl.create (Array.length old_of_new) in
  Array.iteri (fun i v -> Hashtbl.replace new_of_old v i) old_of_new;
  let edges =
    List.filter_map
      (fun (u, v) ->
        match Hashtbl.find_opt new_of_old u, Hashtbl.find_opt new_of_old v with
        | Some u', Some v' -> Some (u', v')
        | _ -> None)
      (edges g)
  in
  (make ~n:(Array.length old_of_new) ~edges, old_of_new)

let complete k =
  let edges = ref [] in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      edges := (i, j) :: !edges
    done
  done;
  make ~n:k ~edges:!edges

let path_graph k = make ~n:k ~edges:(List.init (max 0 (k - 1)) (fun i -> (i, i + 1)))

let cycle_graph k =
  if k <= 2 then path_graph k
  else make ~n:k ~edges:(List.init k (fun i -> (i, (i + 1) mod k)))

let grid_graph ~rows ~cols =
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let id = (r * cols) + c in
      if c + 1 < cols then edges := (id, id + 1) :: !edges;
      if r + 1 < rows then edges := (id, id + cols) :: !edges
    done
  done;
  make ~n:(rows * cols) ~edges:!edges

let is_connected g =
  if g.size = 0 then true
  else begin
    let seen = Array.make g.size false in
    let rec dfs u =
      if not seen.(u) then begin
        seen.(u) <- true;
        ISet.iter dfs g.adjacency.(u)
      end
    in
    dfs 0;
    Array.for_all Fun.id seen
  end

let equal a b =
  a.size = b.size && Array.for_all2 ISet.equal a.adjacency b.adjacency

let pp ppf g =
  Fmt.pf ppf "graph(n=%d;@ %a)" g.size
    Fmt.(list ~sep:(any ",@ ") (pair ~sep:(any "-") int int))
    (edges g)
