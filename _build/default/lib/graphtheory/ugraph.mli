(** Finite simple undirected graphs on vertices [0 .. n-1]. *)

module ISet : Set.S with type elt = int

type t

val make : n:int -> edges:(int * int) list -> t
(** Self-loops and duplicate edges are ignored. Raises [Invalid_argument]
    on out-of-range endpoints or negative [n]. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges. *)

val edges : t -> (int * int) list
(** Each edge once, as [(u, v)] with [u < v]. *)

val adj : t -> int -> ISet.t
val degree : t -> int -> int
val mem_edge : t -> int -> int -> bool

val add_edge : t -> int -> int -> t
val remove_vertex : t -> int -> t
(** Keeps the vertex id space; the vertex becomes isolated. *)

val induced : t -> int list -> t * int array
(** [induced g vs] is the subgraph induced by [vs] on fresh vertex ids
    [0..|vs|-1], together with the array mapping new ids to old ids. *)

val complete : int -> t
val path_graph : int -> t
val cycle_graph : int -> t
val grid_graph : rows:int -> cols:int -> t
(** Vertex [(r, c)] has id [r * cols + c]. *)

val is_connected : t -> bool
val equal : t -> t -> bool
val pp : t Fmt.t
