lib/hardness/clique.ml: Fun Graphtheory List Option Random Ugraph
