lib/hardness/clique.mli: Graphtheory
