lib/hardness/grohe.ml: Array Components Cores Gaifman Graphtheory Gtgraph Hashtbl List Minor Option Printf Rdf Term Tgraph Tgraphs Treewidth Triple Ugraph Variable
