lib/hardness/grohe.mli: Graphtheory Gtgraph Tgraphs
