lib/hardness/reduction.ml: Graph Grohe Gtgraph List Printf Rdf Sparql Term Tgraph Tgraphs Variable Wd_core Wdpt Workload
