lib/hardness/reduction.mli: Graph Graphtheory Grohe Rdf Sparql Wdpt
