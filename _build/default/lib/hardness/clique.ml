open Graphtheory

let find_clique h k =
  let n = Ugraph.n h in
  let rec extend chosen candidates need =
    if need = 0 then Some (List.rev chosen)
    else
      let rec try_candidates = function
        | [] -> None
        | v :: rest -> (
            let candidates' =
              List.filter (fun u -> u > v && Ugraph.mem_edge h u v) rest
            in
            match extend (v :: chosen) candidates' (need - 1) with
            | Some _ as found -> found
            | None -> try_candidates rest)
      in
      if List.length candidates < need then None
      else try_candidates candidates
  in
  if k <= 0 then Some []
  else if k = 1 then if n > 0 then Some [ 0 ] else None
  else extend [] (List.init n Fun.id) k

let has_clique h k = Option.is_some (find_clique h k)

let random_graph ~seed ~n ~edge_prob =
  let state = Random.State.make [| seed; n; int_of_float (edge_prob *. 1000.) |] in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Random.State.float state 1.0 < edge_prob then edges := (i, j) :: !edges
    done
  done;
  Ugraph.make ~n ~edges:!edges
