(** Brute-force clique detection — the ground truth the W[1]-hardness
    reduction is validated against. *)

val has_clique : Graphtheory.Ugraph.t -> int -> bool
(** [has_clique h k]: does [h] contain a clique on [k] vertices? Simple
    backtracking over candidate extensions. *)

val find_clique : Graphtheory.Ugraph.t -> int -> int list option
(** A witness clique, if any. *)

val random_graph : seed:int -> n:int -> edge_prob:float -> Graphtheory.Ugraph.t
(** Erdős–Rényi test instances for the reduction experiments. *)
