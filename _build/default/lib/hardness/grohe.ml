open Rdf
open Tgraphs
open Graphtheory

type stats = {
  new_vars : int;
  triples : int;
  grid_rows : int;
  grid_cols : int;
}

(* A member of the variable set V: ?(v, e, i, p, ?a). *)
type vmember = {
  vertex : int;  (* v ∈ V(H) *)
  edge : int * int;  (* e ∈ E(H) *)
  row : int;  (* i ∈ {0..k-1} *)
  col : int;  (* p ∈ {0..K-1} *)
  base : Variable.t;  (* ?a ∈ γ(i, p) *)
}

let vmember_var m =
  let u, w = m.edge in
  Variable.of_string
    (Printf.sprintf "b_%d_%d_%d_%d_%d_%s" m.vertex u w m.row m.col
       (Variable.to_string m.base))

(* ρ: bijection between columns 0..K-1 and unordered pairs over {0..k-1},
   in lexicographic order. *)
let pairs k =
  let acc = ref [] in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      acc := (i, j) :: !acc
    done
  done;
  Array.of_list (List.rev !acc)

let construct ~k ~h g =
  if k < 2 then invalid_arg "Grohe.construct: k must be at least 2";
  let kk = k * (k - 1) / 2 in
  let core = Cores.core g in
  let x = Gtgraph.x core in
  let c_triples = Tgraph.triples (Gtgraph.s core) in
  let gaifman, vars_arr = Gaifman.graph x (Gtgraph.s core) in
  (* Choose the component of maximum treewidth as F1. *)
  let components = Components.components gaifman in
  if components = [] then Error "Gaifman graph has no existential variables"
  else begin
    let scored =
      List.map
        (fun comp ->
          let sub, _ = Ugraph.induced gaifman comp in
          (Treewidth.treewidth sub, comp))
        components
    in
    let _, f1_vertices =
      List.fold_left
        (fun (bw, bc) (w, c) -> if w > bw then (w, c) else (bw, bc))
        (List.hd scored) (List.tl scored)
    in
    let f1, old_of_new = Ugraph.induced gaifman f1_vertices in
    let grid = Ugraph.grid_graph ~rows:k ~cols:kk in
    match Minor.find ~minor:grid ~host:f1 with
    | None -> Error "no minor map from the (k x C(k,2))-grid into F1"
    | Some gamma0 -> (
        match Minor.extend_onto ~host:f1 gamma0 with
        | None -> Error "minor map cannot be extended onto F1"
        | Some gamma ->
            let rho = pairs k in
            let in_f1 = Hashtbl.create 16 in
            Array.iter
              (fun old_id -> Hashtbl.replace in_f1 vars_arr.(old_id) ())
              old_of_new;
            (* γ as a map: F1 variable ?a -> (i, p) of its branch set. *)
            let coords_of_var = Hashtbl.create 16 in
            Array.iteri
              (fun grid_id branch ->
                let i = grid_id / kk and p = grid_id mod kk in
                Ugraph.ISet.iter
                  (fun f1_local ->
                    Hashtbl.replace coords_of_var vars_arr.(old_of_new.(f1_local)) (i, p))
                  branch)
              gamma;
            let h_edges = Ugraph.edges h in
            let h_n = Ugraph.n h in
            (* V grouped by base variable ?a. *)
            let members_at = Hashtbl.create 16 in
            let member_count = ref 0 in
            Hashtbl.iter
              (fun base (i, p) ->
                let pi, pj = rho.(p) in
                let in_pair = i = pi || i = pj in
                let ms = ref [] in
                List.iter
                  (fun (u, w) ->
                    for vertex = 0 to h_n - 1 do
                      let in_edge = vertex = u || vertex = w in
                      if in_edge = in_pair then begin
                        ms :=
                          { vertex; edge = (u, w); row = i; col = p; base }
                          :: !ms;
                        incr member_count
                      end
                    done)
                  h_edges;
                Hashtbl.replace members_at base !ms)
              coords_of_var;
            (* Consistency (†): within one triple, same row -> same vertex,
               same column -> same edge. *)
            let consistent chosen =
              let rec pairwise = function
                | [] -> true
                | m :: rest ->
                    List.for_all
                      (fun m' ->
                        (m.row <> m'.row || m.vertex = m'.vertex)
                        && (m.col <> m'.col || m.edge = m'.edge))
                      rest
                    && pairwise rest
              in
              pairwise chosen
            in
            let b_triples = ref [] in
            List.iter
              (fun triple ->
                let evars =
                  Variable.Set.elements
                    (Variable.Set.diff (Triple.vars triple) x)
                in
                let all_in_f1 =
                  List.for_all (fun v -> Hashtbl.mem in_f1 v) evars
                in
                if evars = [] then b_triples := triple :: !b_triples
                else if not all_in_f1 then
                  (* Tr0: component untouched by the gadget *)
                  b_triples := triple :: !b_triples
                else begin
                  (* expand: each F1 variable position ranges over its V
                     members, subject to (†). *)
                  let rec expand chosen = function
                    | [] ->
                        let subst v =
                          List.find_opt (fun m -> Variable.equal m.base v) chosen
                          |> Option.map (fun m -> Term.Var (vmember_var m))
                        in
                        b_triples := Triple.subst subst triple :: !b_triples
                    | v :: rest ->
                        (match
                           List.find_opt
                             (fun m -> Variable.equal m.base v)
                             chosen
                         with
                        | Some _ -> expand chosen rest
                        | None ->
                            List.iter
                              (fun m ->
                                if consistent (m :: chosen) then
                                  expand (m :: chosen) rest)
                              (try Hashtbl.find members_at v
                               with Not_found -> []))
                  in
                  expand [] evars
                end)
              c_triples;
            let b = Tgraph.of_triples !b_triples in
            let stats =
              {
                new_vars = !member_count;
                triples = Tgraph.cardinal b;
                grid_rows = k;
                grid_cols = kk;
              }
            in
            Ok (Gtgraph.make b x, stats))
  end
