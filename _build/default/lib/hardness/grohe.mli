(** The construction of Lemma 2 (Appendix 7.1): Grohe's reduction gadget,
    adapted to generalised t-graphs with distinguished variables.

    Given [k ≥ 2], an undirected graph [H], and a generalised t-graph
    [(S, X)] whose core's Gaifman graph has a connected component [F1]
    admitting a minor map [γ] from the [(k × K)]-grid onto it (with
    [K = C(k,2)]), it produces [(B, X)] with:

    + every [t ∈ S] with [vars(t) ⊆ X] is in [B];
    + [(B, X) → (S, X)];
    + [H] has a [k]-clique iff [(S, X) → (B, X)];
    + [B] has size [f(k, |S|) · |H|^O(1)].

    The paper invokes the Excluded Grid Theorem to obtain [γ] from large
    treewidth; here the caller's query family supplies a grid-shaped core
    directly (see {!Workload.Query_families.grid_query}) and [γ] is found
    by {!Graphtheory.Minor.find} — a substitution documented in
    DESIGN.md. *)

open Tgraphs

type stats = {
  new_vars : int;  (** size of the variable set [V] *)
  triples : int;  (** |B| *)
  grid_rows : int;
  grid_cols : int;
}

val construct :
  k:int -> h:Graphtheory.Ugraph.t -> Gtgraph.t ->
  (Gtgraph.t * stats, string) result
(** [construct ~k ~h (S, X)] builds [(B, X)]. Fails (with a message) when
    no onto minor map from the [(k × C(k,2))]-grid to a component of the
    core's Gaifman graph is found. *)
