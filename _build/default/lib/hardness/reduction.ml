open Rdf
open Tgraphs

type instance = {
  forest : Wdpt.Pattern_forest.t;
  graph : Graph.t;
  mu : Sparql.Mapping.t;
  stats : Grohe.stats;
}

let build ~k ~h =
  let cols = k * (k - 1) / 2 in
  let tree = Workload.Query_families.grid_query ~rows:k ~cols in
  let forest = [ tree ] in
  let subtree = Wdpt.Subtree.root_only tree in
  match Wdpt.Children_assignment.gtg forest subtree with
  | [ s ] -> (
      match Grohe.construct ~k ~h s with
      | Error _ as e -> e
      | Ok (b, stats) ->
          let graph = Tgraph.freeze (Gtgraph.s b) in
          let mu =
            Variable.Set.fold
              (fun v acc ->
                match Tgraph.freeze_term (Term.Var v) with
                | Term.Iri i -> Sparql.Mapping.add v i acc
                | Term.Var _ -> assert false)
              (Wdpt.Subtree.vars subtree) Sparql.Mapping.empty
          in
          Ok { forest; graph; mu; stats })
  | gtg ->
      Error
        (Printf.sprintf "expected a single generalised t-graph, got %d"
           (List.length gtg))

let decide ~k ~h =
  match build ~k ~h with
  | Error _ as e -> e
  | Ok { forest; graph; mu; _ } ->
      Ok (not (Wd_core.Naive_eval.check forest graph mu))
