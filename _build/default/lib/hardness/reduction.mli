(** The fpt-reduction from p-CLIQUE to p-co-wdEVAL (Section 4.2).

    Fixing the query family {!Workload.Query_families.grid_query} — whose
    single child has a grid-shaped core, playing the role of the
    high-domination-width witness that Lemma 3 extracts — the reduction
    maps [(H, k)] to an instance [(F, G, µ)] with:

    [H] has a [k]-clique  iff  [µ ∉ ⟦F⟧G].

    [G] is the freezing of the Lemma-2 gadget [B] and [µ] the frozen
    identity on [vars(T)]. *)

open Rdf

type instance = {
  forest : Wdpt.Pattern_forest.t;
  graph : Graph.t;
  mu : Sparql.Mapping.t;
  stats : Grohe.stats;
}

val build : k:int -> h:Graphtheory.Ugraph.t -> (instance, string) result
(** Construct the wdEVAL instance for "does [h] have a [k]-clique?". *)

val decide : k:int -> h:Graphtheory.Ugraph.t -> (bool, string) result
(** Run {!build}, evaluate with the exact algorithm, and answer the clique
    question: [Ok true] iff [h] has a [k]-clique. *)
