lib/pebble/pebble_game.ml: Array Fun Graph Gtgraph Hashtbl Iri List Queue Rdf Term Tgraph Tgraphs Triple Variable
