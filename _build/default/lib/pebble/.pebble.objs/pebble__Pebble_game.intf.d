lib/pebble/pebble_game.mli: Graph Rdf Tgraphs
