lib/rdf/dictionary.ml: Array Graph Hashtbl List Term Triple
