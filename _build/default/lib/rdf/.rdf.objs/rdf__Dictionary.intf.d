lib/rdf/dictionary.mli: Graph Term Triple
