lib/rdf/generator.ml: Array Graph Hashtbl List Printf Random Term Triple
