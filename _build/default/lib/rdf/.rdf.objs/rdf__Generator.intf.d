lib/rdf/generator.mli: Graph Term
