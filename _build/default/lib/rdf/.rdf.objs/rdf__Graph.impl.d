lib/rdf/graph.ml: Index List Triple
