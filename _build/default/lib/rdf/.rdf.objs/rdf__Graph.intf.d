lib/rdf/graph.mli: Fmt Index Iri Term Triple
