lib/rdf/index.ml: Fmt Hashtbl Iri List Term Triple Variable
