lib/rdf/index.mli: Fmt Iri Term Triple Variable
