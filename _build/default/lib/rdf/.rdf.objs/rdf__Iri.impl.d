lib/rdf/iri.ml: Fmt Hashtbl Map Set String
