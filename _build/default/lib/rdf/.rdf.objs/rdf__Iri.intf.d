lib/rdf/iri.mli: Fmt Map Set
