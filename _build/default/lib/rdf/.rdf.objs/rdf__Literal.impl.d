lib/rdf/literal.ml: Buffer Char Fmt Iri Option Printf String
