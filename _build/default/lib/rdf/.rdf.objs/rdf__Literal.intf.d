lib/rdf/literal.mli: Fmt Iri
