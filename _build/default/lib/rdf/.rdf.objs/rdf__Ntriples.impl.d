lib/rdf/ntriples.ml: Buffer Graph Iri List Literal Printf Result String Term Triple
