lib/rdf/stats.ml: Fmt Graph Hashtbl Iri List Option Term Triple
