lib/rdf/stats.mli: Fmt Graph Iri Triple
