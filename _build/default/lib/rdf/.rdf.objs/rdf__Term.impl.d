lib/rdf/term.ml: Hashtbl Iri Literal Map Set Variable
