lib/rdf/term.mli: Fmt Iri Map Set Variable
