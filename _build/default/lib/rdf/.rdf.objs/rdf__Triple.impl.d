lib/rdf/triple.ml: Fmt Hashtbl Iri List Map Set Term Variable
