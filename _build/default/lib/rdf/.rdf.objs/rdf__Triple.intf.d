lib/rdf/triple.mli: Fmt Iri Map Set Term Variable
