lib/rdf/turtle.ml: Buffer Fmt Graph Iri List Literal Printf String Term Triple Variable
