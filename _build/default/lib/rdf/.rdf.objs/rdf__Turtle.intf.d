lib/rdf/turtle.mli: Graph Triple
