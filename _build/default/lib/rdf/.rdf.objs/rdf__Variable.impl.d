lib/rdf/variable.ml: Fmt Hashtbl Map Printf Set String
