lib/rdf/variable.mli: Fmt Map Set
