type t = {
  ids : (Term.t, int) Hashtbl.t;
  mutable terms : Term.t array;
  mutable size : int;
}

let create () = { ids = Hashtbl.create 64; terms = Array.make 64 (Term.iri "x:x"); size = 0 }

let intern t term =
  match Hashtbl.find_opt t.ids term with
  | Some id -> id
  | None ->
      let id = t.size in
      if id = Array.length t.terms then begin
        let bigger = Array.make (2 * id) term in
        Array.blit t.terms 0 bigger 0 id;
        t.terms <- bigger
      end;
      t.terms.(id) <- term;
      Hashtbl.replace t.ids term id;
      t.size <- id + 1;
      id

let of_terms terms =
  let t = create () in
  List.iter (fun term -> ignore (intern t term)) terms;
  t

let of_graph graph =
  let t = create () in
  List.iter
    (fun triple -> List.iter (fun term -> ignore (intern t term)) (Triple.terms triple))
    (Graph.triples graph);
  t

let find t term = Hashtbl.find_opt t.ids term

let term_of t id =
  if id < 0 || id >= t.size then invalid_arg "Dictionary.term_of: unknown id"
  else t.terms.(id)

let size t = t.size

let encode_triple t triple =
  (intern t triple.Triple.s, intern t triple.Triple.p, intern t triple.Triple.o)

let decode_triple t (s, p, o) =
  Triple.make (term_of t s) (term_of t p) (term_of t o)
