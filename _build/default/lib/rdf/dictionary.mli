(** Dense integer interning of terms.

    Algorithms that need array-indexed access to the term universe of a
    graph (the pebble game, dictionary-encoded joins) build one of these:
    terms get consecutive ids [0 .. size − 1] in first-encounter order. *)

type t

val create : unit -> t

val of_terms : Term.t list -> t
val of_graph : Graph.t -> t
(** Interns every term of the graph (subjects, predicates, objects). *)

val intern : t -> Term.t -> int
(** Id of the term, allocating a fresh id on first encounter. *)

val find : t -> Term.t -> int option
(** Id of the term if already interned. *)

val term_of : t -> int -> Term.t
(** Inverse of {!intern}. Raises [Invalid_argument] on unknown ids. *)

val size : t -> int

val encode_triple : t -> Triple.t -> int * int * int
val decode_triple : t -> int * int * int -> Triple.t
