type t = string

let of_string s =
  if String.length s = 0 then invalid_arg "Iri.of_string: empty IRI" else s

let to_string s = s
let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash

let looks_prefixed s =
  String.contains s ':' && not (String.contains s '/')

let pp ppf s =
  if looks_prefixed s then Fmt.string ppf s else Fmt.pf ppf "<%s>" s

module Set = Set.Make (String)
module Map = Map.Make (String)
