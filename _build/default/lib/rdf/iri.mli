(** Internationalised Resource Identifiers.

    The paper works over a countably infinite set [I] of IRIs and only ever
    uses equality on them, so an IRI is represented as its string form. *)

type t

val of_string : string -> t
(** [of_string s] is the IRI whose textual form is [s]. Raises
    [Invalid_argument] if [s] is empty. *)

val to_string : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : t Fmt.t
(** Prints the IRI in angle brackets, e.g. [<http://ex.org/p>], unless it
    looks like a prefixed name (contains [:] and no [/]), in which case it
    is printed bare. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
