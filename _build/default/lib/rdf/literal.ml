type t = {
  value : string;
  lang : string option;
  datatype : Iri.t option;
}

let plain value = { value; lang = None; datatype = None }
let lang_tagged value lang = { value; lang = Some lang; datatype = None }
let typed value datatype = { value; lang = None; datatype = Some datatype }

let namespace = "urn:lit:"

(* Percent-encode everything that could interfere with the framing
   characters we use ('%', '@', '^', and controls). *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' | '@' | '^' -> Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if s.[!i] = '%' && !i + 2 < n then begin
      (match int_of_string_opt ("0x" ^ String.sub s (!i + 1) 2) with
      | Some code -> Buffer.add_char buf (Char.chr code)
      | None -> Buffer.add_char buf s.[!i]);
      i := !i + 3
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let encode t =
  let suffix =
    match t.lang, t.datatype with
    | Some lang, _ -> "@" ^ escape lang
    | None, Some dt -> "^" ^ escape (Iri.to_string dt)
    | None, None -> ""
  in
  Iri.of_string (namespace ^ escape t.value ^ suffix)

let is_encoded iri =
  let s = Iri.to_string iri in
  let n = String.length namespace in
  String.length s >= n && String.sub s 0 n = namespace

let decode iri =
  if not (is_encoded iri) then None
  else begin
    let s = Iri.to_string iri in
    let body = String.sub s (String.length namespace) (String.length s - String.length namespace) in
    (* the first unescaped '@' or '^' starts the suffix *)
    let split =
      let found = ref None in
      String.iteri
        (fun i c -> if !found = None && (c = '@' || c = '^') then found := Some (i, c))
        body;
      !found
    in
    match split with
    | None -> Some (plain (unescape body))
    | Some (i, '@') ->
        Some
          (lang_tagged
             (unescape (String.sub body 0 i))
             (unescape (String.sub body (i + 1) (String.length body - i - 1))))
    | Some (i, _) ->
        Some
          (typed
             (unescape (String.sub body 0 i))
             (Iri.of_string
                (unescape (String.sub body (i + 1) (String.length body - i - 1)))))
  end

let equal a b =
  String.equal a.value b.value
  && Option.equal String.equal a.lang b.lang
  && Option.equal Iri.equal a.datatype b.datatype

let compare a b = compare (a.value, a.lang, Option.map Iri.to_string a.datatype)
                          (b.value, b.lang, Option.map Iri.to_string b.datatype)

let turtle_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_turtle t =
  let base = "\"" ^ turtle_escape t.value ^ "\"" in
  match t.lang, t.datatype with
  | Some lang, _ -> base ^ "@" ^ lang
  | None, Some dt -> base ^ "^^<" ^ Iri.to_string dt ^ ">"
  | None, None -> base

let pp ppf t = Fmt.string ppf (to_turtle t)

let scan src i =
  let n = String.length src in
  if i >= n || src.[i] <> '"' then Error "expected '\"'"
  else begin
    let buf = Buffer.create 16 in
    let rec body j =
      if j >= n then Error "unterminated string literal"
      else
        match src.[j] with
        | '"' -> Ok (j + 1)
        | '\\' ->
            if j + 1 >= n then Error "dangling escape"
            else begin
              (match src.[j + 1] with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | 'r' -> Buffer.add_char buf '\r'
              | c -> Buffer.add_char buf c);
              body (j + 2)
            end
        | c ->
            Buffer.add_char buf c;
            body (j + 1)
    in
    match body (i + 1) with
    | Error _ as e -> e
    | Ok after ->
        let value = Buffer.contents buf in
        if after < n && src.[after] = '@' then begin
          let is_lang_char c =
            (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
            || (c >= '0' && c <= '9') || c = '-'
          in
          let j = ref (after + 1) in
          while !j < n && is_lang_char src.[!j] do incr j done;
          if !j = after + 1 then Error "empty language tag"
          else
            Ok (lang_tagged value (String.sub src (after + 1) (!j - after - 1)), !j)
        end
        else if after + 1 < n && src.[after] = '^' && src.[after + 1] = '^' then begin
          if after + 2 >= n || src.[after + 2] <> '<' then
            Error "expected <datatype-iri> after ^^"
          else
            match String.index_from_opt src (after + 2) '>' with
            | None -> Error "unterminated datatype IRI"
            | Some close ->
                let dt = String.sub src (after + 3) (close - after - 3) in
                if dt = "" then Error "empty datatype IRI"
                else Ok (typed value (Iri.of_string dt), close + 1)
        end
        else Ok (plain value, after)
  end
