(** RDF literals, encoded into the IRI space.

    The paper's data model is ground, IRI-only RDF — and since the
    AND/OPT/UNION fragment only ever compares terms for {e equality}
    (there is no FILTER), any injective encoding of literals into fresh
    IRIs preserves the semantics of every query exactly. This module
    provides that encoding: the I/O layer (Turtle, N-Triples, the query
    parser) accepts literal syntax and stores literals as IRIs under the
    reserved [urn:lit:] namespace; printers decode them back. The core
    algorithms never need to know.

    Supported forms: plain strings ["abc"], language-tagged
    ["abc"@en], and datatyped ["5"^^<http://…#integer>]. *)

type t = {
  value : string;
  lang : string option;  (** ["chat"@fr] *)
  datatype : Iri.t option;  (** ["5"^^xsd:integer]; exclusive with [lang] *)
}

val plain : string -> t
val lang_tagged : string -> string -> t
val typed : string -> Iri.t -> t

val encode : t -> Iri.t
(** The reserved-namespace IRI representing this literal. Injective. *)

val decode : Iri.t -> t option
(** Inverse of {!encode}; [None] for ordinary IRIs. *)

val is_encoded : Iri.t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : t Fmt.t
(** Turtle syntax: a quoted value, optionally language-tagged or
    datatyped, with backslash and quote characters escaped. *)

val to_turtle : t -> string

val scan : string -> int -> (t * int, string) result
(** [scan src i] lexes a literal whose opening quote is at [src.[i]]: the
    quoted string (with the usual backslash escapes), then an optional
    language tag or caret-caret datatype IRI. Returns the literal and the
    index just past it. Shared by the Turtle, N-Triples and query
    tokenizers. *)
