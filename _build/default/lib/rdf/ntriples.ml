let parse_term line pos =
  let n = String.length line in
  let rec skip_ws i = if i < n && (line.[i] = ' ' || line.[i] = '\t') then skip_ws (i + 1) else i in
  let i = skip_ws pos in
  if i < n && line.[i] = '"' then
    (* literal objects, stored IRI-encoded (see Rdf.Literal) *)
    match Literal.scan line i with
    | Ok (literal, next) -> Ok (Term.Iri (Literal.encode literal), next)
    | Error _ as e -> e
  else if i >= n || line.[i] <> '<' then
    Error (Printf.sprintf "expected '<' at column %d" i)
  else
    match String.index_from_opt line i '>' with
    | None -> Error "unterminated IRI"
    | Some j ->
        let body = String.sub line (i + 1) (j - i - 1) in
        if body = "" then Error "empty IRI"
        else Ok (Term.iri body, j + 1)

let parse_line line =
  let stripped = String.trim line in
  if stripped = "" || stripped.[0] = '#' then Ok None
  else
    let ( let* ) = Result.bind in
    let* s, pos = parse_term stripped 0 in
    let* p, pos = parse_term stripped pos in
    let* o, pos = parse_term stripped pos in
    let rest = String.trim (String.sub stripped pos (String.length stripped - pos)) in
    if rest = "." then Ok (Some (Triple.make s p o))
    else Error "expected terminating '.'"

let parse src =
  let lines = String.split_on_char '\n' src in
  let rec go acc lineno = function
    | [] -> Ok (Graph.of_triples (List.rev acc))
    | line :: rest -> (
        match parse_line line with
        | Ok (Some t) -> go (t :: acc) (lineno + 1) rest
        | Ok None -> go acc (lineno + 1) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go [] 1 lines

let to_string graph =
  let buf = Buffer.create 1024 in
  let angle t =
    match t with
    | Term.Iri i -> (
        match Literal.decode i with
        | Some literal -> Literal.to_turtle literal
        | None -> "<" ^ Iri.to_string i ^ ">")
    | Term.Var _ -> assert false (* graphs are ground *)
  in
  List.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s %s .\n" (angle t.Triple.s) (angle t.Triple.p)
           (angle t.Triple.o)))
    (List.sort Triple.compare (Graph.triples graph));
  Buffer.contents buf
