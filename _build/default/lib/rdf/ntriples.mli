(** Strict N-Triples-style I/O: one triple per line, every term in angle
    brackets, terminated by [.]. Unlike {!Turtle} there are no prefixes
    and no abbreviations, which makes the format trivially streamable and
    line-diffable — the interchange format the benchmark fixtures use. *)

val parse : string -> (Graph.t, string) result
(** Blank lines and [#] comment lines are allowed; anything else must be
    [<s> <p> <o> .]. *)

val to_string : Graph.t -> string
(** One line per triple, sorted (deterministic output). *)

val parse_line : string -> (Triple.t option, string) result
(** A single line: [Ok None] for blank/comment lines. *)
