type predicate_stats = {
  triples : int;
  distinct_subjects : int;
  distinct_objects : int;
}

type t = {
  total : int;
  by_predicate : (Iri.t * predicate_stats) list;
  subjects : int;
  objects : int;
  dom : int;
}

let of_graph graph =
  let triples = Graph.triples graph in
  let preds = Hashtbl.create 16 in
  let all_subjects = ref Term.Set.empty and all_objects = ref Term.Set.empty in
  List.iter
    (fun t ->
      all_subjects := Term.Set.add t.Triple.s !all_subjects;
      all_objects := Term.Set.add t.Triple.o !all_objects;
      match t.Triple.p with
      | Term.Iri p ->
          let subjects, objects =
            Option.value
              ~default:(Term.Set.empty, Term.Set.empty)
              (Hashtbl.find_opt preds p)
          in
          Hashtbl.replace preds p
            (Term.Set.add t.Triple.s subjects, Term.Set.add t.Triple.o objects)
      | Term.Var _ -> ())
    triples;
  let by_predicate =
    Hashtbl.fold
      (fun p (subjects, objects) acc ->
        let count =
          List.length (Graph.matching graph ~p:(Term.Iri p) ())
        in
        ( p,
          {
            triples = count;
            distinct_subjects = Term.Set.cardinal subjects;
            distinct_objects = Term.Set.cardinal objects;
          } )
        :: acc)
      preds []
    |> List.sort (fun (_, a) (_, b) -> compare b.triples a.triples)
  in
  {
    total = List.length triples;
    by_predicate;
    subjects = Term.Set.cardinal !all_subjects;
    objects = Term.Set.cardinal !all_objects;
    dom = Iri.Set.cardinal (Graph.dom graph);
  }

let triples t = t.total
let predicates t = t.by_predicate
let predicate t p = List.assoc_opt p t.by_predicate
let distinct_subjects t = t.subjects
let distinct_objects t = t.objects
let dom_size t = t.dom

let selectivity t triple =
  if t.total = 0 then 0.
  else begin
    let base, subjects, objects =
      match triple.Triple.p with
      | Term.Iri p -> (
          match predicate t p with
          | Some s ->
              ( float_of_int s.triples /. float_of_int t.total,
                max 1 s.distinct_subjects,
                max 1 s.distinct_objects )
          | None -> (0., 1, 1))
      | Term.Var _ -> (1., max 1 t.subjects, max 1 t.objects)
    in
    let s_factor =
      if Term.is_var triple.Triple.s then 1. else 1. /. float_of_int subjects
    in
    let o_factor =
      if Term.is_var triple.Triple.o then 1. else 1. /. float_of_int objects
    in
    min 1. (max 0. (base *. s_factor *. o_factor))
  end

let estimated_matches t triple = selectivity t triple *. float_of_int t.total

let pp ppf t =
  Fmt.pf ppf "@[<v>%d triples, %d subjects, %d objects, |dom| = %d@ %a@]"
    t.total t.subjects t.objects t.dom
    Fmt.(
      list ~sep:sp (fun ppf (p, s) ->
          Fmt.pf ppf "%a: %d triples (%d subj, %d obj)" Iri.pp p s.triples
            s.distinct_subjects s.distinct_objects))
    t.by_predicate
