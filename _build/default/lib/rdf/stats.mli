(** Graph statistics: the cardinality summaries a query planner wants.

    Everything is computed once at construction in a single pass plus one
    pass per predicate, and kept immutable. *)

type predicate_stats = {
  triples : int;  (** number of triples with this predicate *)
  distinct_subjects : int;
  distinct_objects : int;
}

type t

val of_graph : Graph.t -> t

val triples : t -> int
val predicates : t -> (Iri.t * predicate_stats) list
(** Sorted by descending triple count. *)

val predicate : t -> Iri.t -> predicate_stats option

val distinct_subjects : t -> int
val distinct_objects : t -> int
val dom_size : t -> int
(** |dom(G)|: distinct IRIs in any position. *)

val selectivity : t -> Triple.t -> float
(** Estimated fraction of the graph's triples matching the given triple
    pattern, assuming per-predicate uniformity: a bound subject divides by
    the predicate's distinct subject count, a bound object by its distinct
    object count; an unknown predicate estimates 0. Clamped to [0, 1]. *)

val estimated_matches : t -> Triple.t -> float
(** [selectivity × total triples] — the planner's cost unit. *)

val pp : t Fmt.t
