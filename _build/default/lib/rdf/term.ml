type t =
  | Iri of Iri.t
  | Var of Variable.t

let iri s = Iri (Iri.of_string s)
let var s = Var (Variable.of_string s)

let is_var = function Var _ -> true | Iri _ -> false
let is_iri = function Iri _ -> true | Var _ -> false
let as_var = function Var v -> Some v | Iri _ -> None
let as_iri = function Iri i -> Some i | Var _ -> None

let equal a b =
  match a, b with
  | Iri i, Iri j -> Iri.equal i j
  | Var v, Var w -> Variable.equal v w
  | Iri _, Var _ | Var _, Iri _ -> false

let compare a b =
  match a, b with
  | Iri i, Iri j -> Iri.compare i j
  | Var v, Var w -> Variable.compare v w
  | Iri _, Var _ -> -1
  | Var _, Iri _ -> 1

let hash = Hashtbl.hash

let pp ppf = function
  | Iri i -> (
      (* encoded literals print in literal syntax *)
      match Literal.decode i with
      | Some literal -> Literal.pp ppf literal
      | None -> Iri.pp ppf i)
  | Var v -> Variable.pp ppf v

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
