(** RDF/SPARQL terms: either an IRI from [I] or a variable from [V].

    Triple patterns are triples over [I ∪ V]; RDF triples are the ground
    special case. *)

type t =
  | Iri of Iri.t
  | Var of Variable.t

val iri : string -> t
(** [iri s] is [Iri (Iri.of_string s)]. *)

val var : string -> t
(** [var s] is [Var (Variable.of_string s)]. *)

val is_var : t -> bool
val is_iri : t -> bool

val as_var : t -> Variable.t option
val as_iri : t -> Iri.t option

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : t Fmt.t

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
