type t = { s : Term.t; p : Term.t; o : Term.t }

let make s p o = { s; p; o }

let terms t = [ t.s; t.p; t.o ]

let vars t =
  List.fold_left
    (fun acc term ->
      match term with
      | Term.Var v -> Variable.Set.add v acc
      | Term.Iri _ -> acc)
    Variable.Set.empty (terms t)

let iris t =
  List.fold_left
    (fun acc term ->
      match term with
      | Term.Iri i -> Iri.Set.add i acc
      | Term.Var _ -> acc)
    Iri.Set.empty (terms t)

let is_ground t = Variable.Set.is_empty (vars t)

let map f t = { s = f t.s; p = f t.p; o = f t.o }

let subst f =
  let apply = function
    | Term.Var v as term -> (
        match f v with Some term' -> term' | None -> term)
    | Term.Iri _ as term -> term
  in
  map apply

let equal a b = Term.equal a.s b.s && Term.equal a.p b.p && Term.equal a.o b.o

let compare a b =
  let c = Term.compare a.s b.s in
  if c <> 0 then c
  else
    let c = Term.compare a.p b.p in
    if c <> 0 then c else Term.compare a.o b.o

let hash = Hashtbl.hash

let pp ppf t = Fmt.pf ppf "(%a, %a, %a)" Term.pp t.s Term.pp t.p Term.pp t.o

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
