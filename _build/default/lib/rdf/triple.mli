(** Triples over terms: SPARQL triple patterns in general, RDF triples when
    ground. *)

type t = {
  s : Term.t;  (** subject *)
  p : Term.t;  (** predicate *)
  o : Term.t;  (** object *)
}

val make : Term.t -> Term.t -> Term.t -> t

val vars : t -> Variable.Set.t
(** [vars t] is the set of variables occurring in [t] ([vars(t)] in the
    paper). *)

val iris : t -> Iri.Set.t
(** The set of IRIs occurring in [t]. *)

val is_ground : t -> bool
(** [is_ground t] holds iff [vars t] is empty, i.e. [t] is an RDF triple. *)

val terms : t -> Term.t list
(** The three terms, in subject/predicate/object order. *)

val map : (Term.t -> Term.t) -> t -> t
(** Apply a function to all three positions. *)

val subst : (Variable.t -> Term.t option) -> t -> t
(** [subst f t] replaces every variable [?x] with [f ?x] when defined,
    leaving other positions untouched. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : t Fmt.t
(** Prints as [(s, p, o)]. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
