type token =
  | Tok_iri of string
  | Tok_pname of string * string  (* prefix, local *)
  | Tok_var of string
  | Tok_dot
  | Tok_prefix_decl

exception Error of string

let error line fmt = Fmt.kstr (fun msg -> raise (Error (Printf.sprintf "line %d: %s" line msg))) fmt

let is_ws c = c = ' ' || c = '\t' || c = '\r' || c = '\n'

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.'

(* Tokenise the whole document, tracking line numbers for error messages. *)
let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let emit tok = tokens := (tok, !line) :: !tokens in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if is_ws c then incr i
    else if c = '#' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '.'
            && (!i + 1 >= n || is_ws src.[!i + 1] || src.[!i + 1] = '#')
    then begin
      emit Tok_dot;
      incr i
    end
    else if c = '<' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && src.[!j] <> '>' && src.[!j] <> '\n' do incr j done;
      if !j >= n || src.[!j] <> '>' then error !line "unterminated IRI";
      emit (Tok_iri (String.sub src start (!j - start)));
      i := !j + 1
    end
    else if c = '"' then begin
      (* literals are stored IRI-encoded; see Rdf.Literal *)
      match Literal.scan src !i with
      | Ok (literal, next) ->
          emit (Tok_iri (Iri.to_string (Literal.encode literal)));
          i := next
      | Error msg -> error !line "%s" msg
    end
    else if c = '?' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && is_name_char src.[!j] do incr j done;
      if !j = start then error !line "empty variable name";
      emit (Tok_var (String.sub src start (!j - start)));
      i := !j
    end
    else if c = '@' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && is_name_char src.[!j] do incr j done;
      let word = String.sub src start (!j - start) in
      if word <> "prefix" then error !line "unknown directive @%s" word;
      emit Tok_prefix_decl;
      i := !j
    end
    else if is_name_char c || c = ':' then begin
      let start = !i in
      let j = ref start in
      (* '@' may occur inside a name (mailto:a@b) but never starts one —
         a leading '@' is a directive, handled above. *)
      while !j < n && (is_name_char src.[!j] || src.[!j] = ':' || src.[!j] = '@') do
        incr j
      done;
      let word = String.sub src start (!j - start) in
      (* A trailing '.' is a statement terminator, not part of the name. *)
      let word, extra_dot =
        if String.length word > 1 && word.[String.length word - 1] = '.' then
          (String.sub word 0 (String.length word - 1), true)
        else (word, false)
      in
      (match String.index_opt word ':' with
      | Some k ->
          emit
            (Tok_pname
               (String.sub word 0 k, String.sub word (k + 1) (String.length word - k - 1)))
      | None -> error !line "expected a prefixed name or IRI, got %S" word);
      if extra_dot then emit Tok_dot;
      i := !j
    end
    else error !line "unexpected character %C" c
  done;
  List.rev !tokens

let resolve prefixes _line prefix local =
  match List.assoc_opt prefix prefixes with
  | Some expansion -> Iri.of_string (expansion ^ local)
  | None ->
      (* Undeclared prefixes denote themselves, matching the query parser:
         [p:knows] is the IRI "p:knows". *)
      Iri.of_string (prefix ^ ":" ^ local)

let parse_tokens tokens =
  let rec statements prefixes acc = function
    | [] -> List.rev acc
    | (Tok_prefix_decl, line) :: rest -> (
        match rest with
        | (Tok_pname (prefix, ""), _) :: (Tok_iri iri, _) :: (Tok_dot, _) :: rest ->
            statements ((prefix, iri) :: prefixes) acc rest
        | _ -> error line "malformed @prefix declaration")
    | rest ->
        let term rest =
          match rest with
          | (Tok_iri iri, _) :: rest -> (Term.iri iri, rest)
          | (Tok_pname (prefix, local), line) :: rest ->
              (Term.Iri (resolve prefixes line prefix local), rest)
          | (Tok_var v, _) :: rest -> (Term.var v, rest)
          | (_, line) :: _ -> error line "expected a term"
          | [] -> raise (Error "unexpected end of input in triple")
        in
        let s, rest = term rest in
        let p, rest = term rest in
        let o, rest = term rest in
        let rest =
          match rest with
          | (Tok_dot, _) :: rest -> rest
          | (_, line) :: _ -> error line "expected '.' after triple"
          | [] -> raise (Error "missing final '.'")
        in
        statements prefixes (Triple.make s p o :: acc) rest
  in
  statements [] [] tokens

let parse_triples src =
  match parse_tokens (tokenize src) with
  | triples -> Ok triples
  | exception Error msg -> Error msg

let parse_graph src =
  match parse_triples src with
  | Error _ as e -> e
  | Ok triples -> (
      match Graph.of_triples triples with
      | graph -> Ok graph
      | exception Graph.Not_ground t ->
          Error (Fmt.str "non-ground triple in data: %a" Triple.pp t))

let abbreviate prefixes iri =
  match Literal.decode iri with
  | Some literal -> Literal.to_turtle literal
  | None ->
      let s = Iri.to_string iri in
      let rec go = function
        | [] -> Printf.sprintf "<%s>" s
        | (prefix, expansion) :: rest ->
            let n = String.length expansion in
            if String.length s > n && String.sub s 0 n = expansion then
              Printf.sprintf "%s:%s" prefix (String.sub s n (String.length s - n))
            else go rest
      in
      go prefixes

let to_string ?(prefixes = []) graph =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (prefix, expansion) ->
      Buffer.add_string buf (Printf.sprintf "@prefix %s: <%s> .\n" prefix expansion))
    prefixes;
  if prefixes <> [] then Buffer.add_char buf '\n';
  let term t =
    match t with
    | Term.Iri iri -> abbreviate prefixes iri
    | Term.Var v -> "?" ^ Variable.to_string v
  in
  List.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s %s .\n" (term t.Triple.s) (term t.Triple.p)
           (term t.Triple.o)))
    (Graph.triples graph);
  Buffer.contents buf
