(** A pragmatic subset of Turtle for reading and writing RDF graphs.

    Supported syntax:
    - comments: [# ...] to end of line;
    - prefix declarations: [@prefix ex: <http://example.org/> .];
    - triple statements: [subject predicate object .] where each term is
      [<iri>], a prefixed name [ex:foo] (or [:foo]), or a SPARQL-style
      variable [?x] (variables are accepted by {!parse_triples} so the same
      reader can load triple-pattern fixtures, but rejected by
      {!parse_graph}).

    Literals and blank nodes are not supported: the paper's data model is
    ground IRI-only RDF. *)

val parse_triples : string -> (Triple.t list, string) result
(** Parse a document into triples (variables allowed). Errors carry a
    line-numbered message. *)

val parse_graph : string -> (Graph.t, string) result
(** As {!parse_triples} but requires every triple to be ground. *)

val to_string : ?prefixes:(string * string) list -> Graph.t -> string
(** Serialise; IRIs matching a [(prefix, expansion)] pair are written as
    prefixed names and the corresponding [@prefix] headers are emitted. *)
