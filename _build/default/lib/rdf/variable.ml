type t = string

let of_string s =
  let s =
    if String.length s > 0 && s.[0] = '?' then String.sub s 1 (String.length s - 1)
    else s
  in
  if String.length s = 0 then invalid_arg "Variable.of_string: empty name" else s

let to_string s = s
let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash
let pp ppf s = Fmt.pf ppf "?%s" s

let fresh ~basis ~avoid =
  let rec go i =
    let candidate = Printf.sprintf "%s_%d" basis i in
    if avoid candidate then go (i + 1) else candidate
  in
  if avoid basis then go 1 else basis

module Set = Set.Make (String)
module Map = Map.Make (String)
