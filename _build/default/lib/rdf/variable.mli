(** SPARQL variables, drawn from the countably infinite set [V] of the
    paper. A variable is identified by its name, without the leading [?]. *)

type t

val of_string : string -> t
(** [of_string s] is the variable named [s]. A leading [?] is stripped, so
    [of_string "?x"] and [of_string "x"] denote the same variable. Raises
    [Invalid_argument] on the empty name. *)

val to_string : t -> string
(** The bare name, without [?]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : t Fmt.t
(** Prints with the leading [?], e.g. [?x]. *)

val fresh : basis:t -> avoid:(t -> bool) -> t
(** [fresh ~basis ~avoid] is a variable not satisfying [avoid], obtained by
    priming/suffixing [basis]. Used when renaming to "new fresh variables"
    in children assignments (Section 3.1 of the paper). *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
