lib/sparql/algebra.ml: Condition Fmt List Rdf Term Triple Variable
