lib/sparql/algebra.mli: Condition Fmt Rdf Triple Variable
