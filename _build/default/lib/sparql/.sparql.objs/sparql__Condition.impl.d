lib/sparql/condition.ml: Fmt Iri Mapping Rdf Term Variable
