lib/sparql/condition.mli: Fmt Mapping Rdf Term Variable
