lib/sparql/eval.ml: Algebra Condition Graph Homomorphism List Mapping Rdf Tgraph Tgraphs
