lib/sparql/eval.mli: Algebra Graph Mapping Rdf
