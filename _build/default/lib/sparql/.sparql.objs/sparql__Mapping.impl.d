lib/sparql/mapping.ml: Fmt Iri List Option Rdf Set Term Triple Variable
