lib/sparql/mapping.mli: Fmt Iri Rdf Set Term Triple Variable
