lib/sparql/parser.ml: Algebra Condition Fmt List Printf Rdf String Term Triple
