lib/sparql/parser.mli: Algebra
