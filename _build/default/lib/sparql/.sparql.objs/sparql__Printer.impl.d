lib/sparql/printer.ml: Algebra Fmt Mapping
