lib/sparql/printer.mli: Algebra Mapping
