lib/sparql/well_designed.ml: Algebra Condition Fmt List Rdf Result Variable
