lib/sparql/well_designed.mli: Algebra Condition Fmt Rdf Variable
