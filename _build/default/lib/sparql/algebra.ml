open Rdf

type t =
  | Triple of Triple.t
  | And of t * t
  | Opt of t * t
  | Union of t * t
  | Filter of t * Condition.t
  | Select of Variable.Set.t * t

let triple t = Triple t
let and_ a b = And (a, b)
let opt a b = Opt (a, b)
let union a b = Union (a, b)
let filter p c = Filter (p, c)
let select vars p = Select (vars, p)

let fold_nonempty op = function
  | [] -> invalid_arg "Algebra: empty pattern list"
  | first :: rest -> List.fold_left op first rest

let and_all = fold_nonempty and_
let union_all = fold_nonempty union

let rec is_core = function
  | Triple _ -> true
  | And (a, b) | Opt (a, b) | Union (a, b) -> is_core a && is_core b
  | Filter _ | Select _ -> false

let rec vars = function
  | Triple t -> Triple.vars t
  | And (a, b) | Opt (a, b) | Union (a, b) -> Variable.Set.union (vars a) (vars b)
  | Filter (p, _) | Select (_, p) -> vars p

let rec triples = function
  | Triple t -> [ t ]
  | And (a, b) | Opt (a, b) | Union (a, b) -> triples a @ triples b
  | Filter (p, _) | Select (_, p) -> triples p

let size p = List.length (triples p)

let rec depth = function
  | Triple _ -> 0
  | And (a, b) | Opt (a, b) | Union (a, b) -> 1 + max (depth a) (depth b)
  | Filter (p, _) | Select (_, p) -> 1 + depth p

let rec subpatterns p =
  match p with
  | Triple _ -> [ p ]
  | And (a, b) | Opt (a, b) | Union (a, b) ->
      p :: (subpatterns a @ subpatterns b)
  | Filter (q, _) | Select (_, q) -> p :: subpatterns q

let rec equal p q =
  match p, q with
  | Triple a, Triple b -> Triple.equal a b
  | And (a, b), And (c, d) | Opt (a, b), Opt (c, d) | Union (a, b), Union (c, d)
    ->
      equal a c && equal b d
  | Filter (a, c1), Filter (b, c2) -> equal a b && Condition.equal c1 c2
  | Select (v1, a), Select (v2, b) -> Variable.Set.equal v1 v2 && equal a b
  | (Triple _ | And _ | Opt _ | Union _ | Filter _ | Select _), _ -> false

let pp_term = Term.pp

let pp_triple ppf t =
  Fmt.pf ppf "%a %a %a ." pp_term t.Triple.s pp_term t.Triple.p pp_term
    t.Triple.o

let rec pp ppf = function
  | Triple t -> Fmt.pf ppf "{ %a }" pp_triple t
  | And (a, b) -> Fmt.pf ppf "{ %a@ %a }" pp a pp b
  | Opt (a, b) -> Fmt.pf ppf "{ %a@ OPTIONAL %a }" pp a pp b
  | Union (a, b) -> Fmt.pf ppf "{ %a@ UNION %a }" pp a pp b
  | Filter (p, c) -> Fmt.pf ppf "{ %a@ FILTER (%a) }" pp p Condition.pp c
  | Select (vars, p) ->
      Fmt.pf ppf "SELECT %a WHERE %a"
        Fmt.(list ~sep:sp Variable.pp)
        (Variable.Set.elements vars)
        pp p
