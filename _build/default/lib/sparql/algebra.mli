(** SPARQL graph patterns over AND, OPTIONAL and UNION — the core fragment
    of the paper (Section 2), in the formalisation of Pérez, Arenas and
    Gutierrez — plus the FILTER and SELECT operators that Section 5
    discusses as extensions. The width machinery applies to the {e core}
    fragment ({!is_core}); FILTER/SELECT patterns evaluate through the
    reference semantics only. *)

open Rdf

type t =
  | Triple of Triple.t
  | And of t * t
  | Opt of t * t   (** [P1 OPTIONAL P2] *)
  | Union of t * t
  | Filter of t * Condition.t  (** [P FILTER R] — Section 5 extension *)
  | Select of Variable.Set.t * t
      (** projection; meaningful at the top level — Section 5 extension *)

val triple : Triple.t -> t
val and_ : t -> t -> t
val opt : t -> t -> t
val union : t -> t -> t
val filter : t -> Condition.t -> t
val select : Variable.Set.t -> t -> t

val and_all : t list -> t
(** Left-nested conjunction; raises [Invalid_argument] on the empty list. *)

val union_all : t list -> t
(** Left-nested union; raises [Invalid_argument] on the empty list. *)

val is_core : t -> bool
(** No FILTER or SELECT anywhere: the fragment the paper's dichotomy
    covers. *)

val vars : t -> Variable.Set.t
(** Variables of the triple patterns (FILTER conditions contribute none;
    SELECT restricts nothing here — this is the syntactic variable set). *)

val triples : t -> Triple.t list
(** All triple patterns, in syntactic order (with duplicates). *)

val size : t -> int
(** Number of triple-pattern leaves. *)

val depth : t -> int
(** Maximum operator nesting depth; a single triple has depth 0. *)

val subpatterns : t -> t list
(** All subpattern occurrences, including the pattern itself (pre-order). *)

val equal : t -> t -> bool
val pp : t Fmt.t
(** Concrete syntax accepted by {!Parser}. *)
