open Rdf

type t =
  | Bound of Variable.t
  | Eq of Term.t * Term.t
  | Not of t
  | And of t * t
  | Or of t * t

let bound name = Bound (Variable.of_string name)
let eq a b = Eq (a, b)
let neq a b = Not (Eq (a, b))

let rec vars = function
  | Bound v -> Variable.Set.singleton v
  | Eq (a, b) ->
      let of_term = function
        | Term.Var v -> Variable.Set.singleton v
        | Term.Iri _ -> Variable.Set.empty
      in
      Variable.Set.union (of_term a) (of_term b)
  | Not c -> vars c
  | And (a, b) | Or (a, b) -> Variable.Set.union (vars a) (vars b)

let value mu = function
  | Term.Iri i -> Some i
  | Term.Var v -> Mapping.find v mu

let rec satisfies mu = function
  | Bound v -> Mapping.find v mu <> None
  | Eq (a, b) -> (
      match value mu a, value mu b with
      | Some x, Some y -> Iri.equal x y
      | _ -> false)
  | Not c -> not (satisfies mu c)
  | And (a, b) -> satisfies mu a && satisfies mu b
  | Or (a, b) -> satisfies mu a || satisfies mu b

let rec equal a b =
  match a, b with
  | Bound v, Bound w -> Variable.equal v w
  | Eq (a1, a2), Eq (b1, b2) -> Term.equal a1 b1 && Term.equal a2 b2
  | Not x, Not y -> equal x y
  | And (a1, a2), And (b1, b2) | Or (a1, a2), Or (b1, b2) ->
      equal a1 b1 && equal a2 b2
  | (Bound _ | Eq _ | Not _ | And _ | Or _), _ -> false

let rec pp ppf = function
  | Bound v -> Fmt.pf ppf "BOUND(%a)" Variable.pp v
  | Eq (a, b) -> Fmt.pf ppf "%a = %a" Term.pp a Term.pp b
  | Not (Eq (a, b)) -> Fmt.pf ppf "%a != %a" Term.pp a Term.pp b
  | Not c -> Fmt.pf ppf "!(%a)" pp c
  | And (a, b) -> Fmt.pf ppf "(%a && %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a || %a)" pp a pp b
