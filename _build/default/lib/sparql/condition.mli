(** FILTER conditions — the built-in constraints of the Pérez et al.
    formalisation: [bound(?x)], equality between variables and terms, and
    the boolean connectives.

    Section 5 of the paper discusses the AND/OPT/FILTER fragment: its
    evaluation dichotomy {e fails} (there are classes that are
    fixed-parameter tractable yet NP-hard), which is why FILTER sits
    outside the core fragment here. Patterns using it still evaluate
    through the reference semantics; the width machinery rejects them
    cleanly. *)

open Rdf

type t =
  | Bound of Variable.t
  | Eq of Term.t * Term.t  (** each side a variable or an IRI *)
  | Not of t
  | And of t * t
  | Or of t * t

val bound : string -> t
val eq : Term.t -> Term.t -> t
val neq : Term.t -> Term.t -> t
(** [neq a b] is [Not (Eq (a, b))]. *)

val vars : t -> Variable.Set.t

val satisfies : Mapping.t -> t -> bool
(** [µ ⊨ R], with the simplified (two-valued) semantics of Pérez et al.:
    an equality mentioning an unbound variable is not satisfied, and
    negation is classical. *)

val equal : t -> t -> bool
val pp : t Fmt.t
(** Concrete syntax: [BOUND(?x)], [?x = ?y], [?x != c:1], [!(…)],
    [(… && …)], [(… || …)]. *)
