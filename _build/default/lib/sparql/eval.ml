open Rdf
open Tgraphs

let eval_triple t graph =
  let source = Tgraph.of_triples [ t ] in
  Homomorphism.all ~source ~target:(Graph.to_index graph) ()
  |> List.filter_map Mapping.of_assignment
  |> Mapping.Set.of_list

let join left right =
  Mapping.Set.fold
    (fun m1 acc ->
      Mapping.Set.fold
        (fun m2 acc ->
          if Mapping.compatible m1 m2 then
            Mapping.Set.add (Mapping.union m1 m2) acc
          else acc)
        right acc)
    left Mapping.Set.empty

let rec eval p graph =
  match p with
  | Algebra.Triple t -> eval_triple t graph
  | Algebra.And (a, b) -> join (eval a graph) (eval b graph)
  | Algebra.Opt (a, b) ->
      let left = eval a graph and right = eval b graph in
      let joined = join left right in
      let unmatched =
        Mapping.Set.filter
          (fun m1 ->
            not (Mapping.Set.exists (fun m2 -> Mapping.compatible m1 m2) right))
          left
      in
      Mapping.Set.union joined unmatched
  | Algebra.Union (a, b) -> Mapping.Set.union (eval a graph) (eval b graph)
  | Algebra.Filter (q, condition) ->
      Mapping.Set.filter (fun mu -> Condition.satisfies mu condition) (eval q graph)
  | Algebra.Select (vars, q) ->
      Mapping.Set.map (Mapping.restrict vars) (eval q graph)

let check p graph mu = Mapping.Set.mem mu (eval p graph)
