open Rdf

type t = Iri.t Variable.Map.t

let empty = Variable.Map.empty
let of_list l = Variable.Map.of_seq (List.to_seq l)
let to_list m = Variable.Map.bindings m
let dom m = Variable.Map.fold (fun v _ acc -> Variable.Set.add v acc) m Variable.Set.empty
let find v m = Variable.Map.find_opt v m
let add = Variable.Map.add
let cardinal = Variable.Map.cardinal

let compatible m1 m2 =
  Variable.Map.for_all
    (fun v i ->
      match Variable.Map.find_opt v m2 with
      | Some j -> Iri.equal i j
      | None -> true)
    m1

let union m1 m2 = Variable.Map.union (fun _ i _ -> Some i) m1 m2

let subsumes m2 m1 =
  Variable.Map.for_all
    (fun v i ->
      match Variable.Map.find_opt v m2 with
      | Some j -> Iri.equal i j
      | None -> false)
    m1

let apply m triple =
  Triple.subst
    (fun v -> Option.map (fun i -> Term.Iri i) (Variable.Map.find_opt v m))
    triple

let restrict vars m = Variable.Map.filter (fun v _ -> Variable.Set.mem v vars) m

let to_assignment m = Variable.Map.map (fun i -> Term.Iri i) m

let of_assignment a =
  let exception Bad in
  match
    Variable.Map.map
      (function Term.Iri i -> i | Term.Var _ -> raise Bad)
      a
  with
  | m -> Some m
  | exception Bad -> None

let equal = Variable.Map.equal Iri.equal
let compare = Variable.Map.compare Iri.compare

let pp ppf m =
  let binding ppf (v, i) = Fmt.pf ppf "%a ↦ %a" Variable.pp v Iri.pp i in
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma binding) (to_list m)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
