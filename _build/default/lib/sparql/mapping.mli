(** SPARQL solution mappings: partial functions from variables to IRIs
    (Section 2 of the paper). *)

open Rdf

type t = Iri.t Variable.Map.t

val empty : t
val of_list : (Variable.t * Iri.t) list -> t
val to_list : t -> (Variable.t * Iri.t) list
val dom : t -> Variable.Set.t
val find : Variable.t -> t -> Iri.t option
val add : Variable.t -> Iri.t -> t -> t
val cardinal : t -> int

val compatible : t -> t -> bool
(** µ1 and µ2 agree on their common domain. *)

val subsumes : t -> t -> bool
(** [subsumes µ2 µ1] is the subsumption order [µ1 ⊑ µ2]: [µ2] extends
    [µ1] ([dom µ1 ⊆ dom µ2] and they agree on [dom µ1]). Solutions of a
    UNION-free well-designed pattern are pairwise ⊑-incomparable
    (a consequence of Lemma 1's maximality condition — tested). *)

val union : t -> t -> t
(** [µ1 ∪ µ2]; meaningful when {!compatible}. On conflicting variables the
    left mapping wins (matching the paper's definition, where the case
    never arises). *)

val apply : t -> Triple.t -> Triple.t
(** [µ(t)]: substitute bound variables; unbound ones remain. *)

val restrict : Variable.Set.t -> t -> t

val to_assignment : t -> Term.t Variable.Map.t
(** View as a homomorphism assignment (variables to IRI terms). *)

val of_assignment : Term.t Variable.Map.t -> t option
(** [None] if any variable is sent to a non-IRI term. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : t Fmt.t

module Set : Set.S with type elt = t
