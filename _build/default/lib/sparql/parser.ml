open Rdf

type token =
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Dot
  | Kw_union
  | Kw_optional
  | Kw_prefix
  | Kw_filter
  | Kw_select
  | Kw_where
  | Kw_bound
  | Op_eq
  | Op_neq
  | Op_and
  | Op_or
  | Op_not
  | Iriref of string
  | Pname of string * string
  | Var of string
  | Eof

exception Error of string

let error line fmt =
  Fmt.kstr (fun msg -> raise (Error (Printf.sprintf "line %d: %s" line msg))) fmt

let is_ws c = c = ' ' || c = '\t' || c = '\r' || c = '\n'

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let emit tok = tokens := (tok, !line) :: !tokens in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if is_ws c then incr i
    else if c = '#' then
      while !i < n && src.[!i] <> '\n' do incr i done
    else if c = '{' then begin emit Lbrace; incr i end
    else if c = '}' then begin emit Rbrace; incr i end
    else if c = '(' then begin emit Lparen; incr i end
    else if c = ')' then begin emit Rparen; incr i end
    else if c = '=' then begin emit Op_eq; incr i end
    else if c = '!' && !i + 1 < n && src.[!i + 1] = '=' then begin
      emit Op_neq;
      i := !i + 2
    end
    else if c = '!' then begin emit Op_not; incr i end
    else if c = '&' && !i + 1 < n && src.[!i + 1] = '&' then begin
      emit Op_and;
      i := !i + 2
    end
    else if c = '|' && !i + 1 < n && src.[!i + 1] = '|' then begin
      emit Op_or;
      i := !i + 2
    end
    else if c = '.' then begin emit Dot; incr i end
    else if c = '<' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && src.[!j] <> '>' && src.[!j] <> '\n' do incr j done;
      if !j >= n || src.[!j] <> '>' then error !line "unterminated IRI";
      emit (Iriref (String.sub src start (!j - start)));
      i := !j + 1
    end
    else if c = '?' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && is_name_char src.[!j] do incr j done;
      if !j = start then error !line "empty variable name";
      emit (Var (String.sub src start (!j - start)));
      i := !j
    end
    else if c = '"' then begin
      (* literal constants, stored IRI-encoded (see Rdf.Literal) *)
      match Rdf.Literal.scan src !i with
      | Ok (literal, next) ->
          emit (Iriref (Rdf.Iri.to_string (Rdf.Literal.encode literal)));
          i := next
      | Error msg -> error !line "%s" msg
    end
    else if is_name_char c || c = ':' then begin
      let start = !i in
      let j = ref start in
      (* '@' and '.' may occur inside prefixed names (mailto:a@b.org); a
         bare '.' never reaches here because it is tokenised eagerly. *)
      while
        !j < n
        && (is_name_char src.[!j] || src.[!j] = ':' || src.[!j] = '@'
           || (src.[!j] = '.' && !j + 1 < n && is_name_char src.[!j + 1]))
      do
        incr j
      done;
      let word = String.sub src start (!j - start) in
      (match String.uppercase_ascii word with
      | "UNION" -> emit Kw_union
      | "OPTIONAL" -> emit Kw_optional
      | "PREFIX" -> emit Kw_prefix
      | "FILTER" -> emit Kw_filter
      | "SELECT" -> emit Kw_select
      | "WHERE" -> emit Kw_where
      | "BOUND" -> emit Kw_bound
      | _ -> (
          match String.index_opt word ':' with
          | Some k ->
              emit
                (Pname
                   ( String.sub word 0 k,
                     String.sub word (k + 1) (String.length word - k - 1) ))
          | None -> error !line "expected a keyword, IRI, variable or prefixed name; got %S" word));
      i := !j
    end
    else error !line "unexpected character %C" c
  done;
  List.rev ((Eof, !line) :: !tokens)

(* ------------------------------------------------------------------ *)
(* Recursive descent.                                                  *)
(* ------------------------------------------------------------------ *)

type state = { mutable tokens : (token * int) list; mutable prefixes : (string * string) list }

let peek st = match st.tokens with [] -> (Eof, 0) | t :: _ -> t

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect st tok what =
  let got, line = peek st in
  if got = tok then advance st else error line "expected %s" what

let resolve st _line prefix local =
  match List.assoc_opt prefix st.prefixes with
  | Some expansion -> Term.iri (expansion ^ local)
  | None ->
      (* Undeclared prefixes denote themselves: [p:knows] is the IRI
         "p:knows". This keeps hand-written queries and the generators'
         compact IRIs in sync. *)
      Term.iri (prefix ^ ":" ^ local)

let term st =
  match peek st with
  | Iriref iri, _ ->
      advance st;
      Term.iri iri
  | Pname (prefix, local), line ->
      advance st;
      resolve st line prefix local
  | Var v, _ ->
      advance st;
      Term.var v
  | _, line -> error line "expected a term"

(* FILTER conditions: ! binds tightest, then &&, then ||. *)
let rec condition st = or_cond st

and or_cond st =
  let first = and_cond st in
  let rec chain acc =
    match peek st with
    | Op_or, _ ->
        advance st;
        chain (Condition.Or (acc, and_cond st))
    | _ -> acc
  in
  chain first

and and_cond st =
  let first = unary_cond st in
  let rec chain acc =
    match peek st with
    | Op_and, _ ->
        advance st;
        chain (Condition.And (acc, unary_cond st))
    | _ -> acc
  in
  chain first

and unary_cond st =
  match peek st with
  | Op_not, _ ->
      advance st;
      Condition.Not (unary_cond st)
  | Lparen, _ ->
      advance st;
      let c = condition st in
      expect st Rparen "')'";
      c
  | Kw_bound, _ -> (
      advance st;
      expect st Lparen "'('";
      match peek st with
      | Var v, _ ->
          advance st;
          expect st Rparen "')'";
          Condition.Bound (Rdf.Variable.of_string v)
      | _, line -> error line "expected a variable in BOUND(...)")
  | _ ->
      let lhs = term st in
      let negated =
        match peek st with
        | Op_eq, _ ->
            advance st;
            false
        | Op_neq, _ ->
            advance st;
            true
        | _, line -> error line "expected '=' or '!=' in filter condition"
      in
      let rhs = term st in
      if negated then Condition.Not (Condition.Eq (lhs, rhs))
      else Condition.Eq (lhs, rhs)

let rec group st =
  expect st Lbrace "'{'";
  let rec items acc =
    match peek st with
    | Rbrace, line ->
        advance st;
        (match acc with
        | Some p -> p
        | None -> error line "empty group pattern")
    | Kw_optional, line ->
        advance st;
        let right = union_chain st in
        (match acc with
        | Some left -> items (Some (Algebra.opt left right))
        | None -> error line "OPTIONAL cannot start a group")
    | Kw_filter, line ->
        advance st;
        expect st Lparen "'(' after FILTER";
        let c = condition st in
        expect st Rparen "')'";
        (match acc with
        | Some left -> items (Some (Algebra.filter left c))
        | None -> error line "FILTER cannot start a group")
    | Lbrace, _ ->
        let sub = union_chain st in
        items
          (Some
             (match acc with
             | Some left -> Algebra.and_ left sub
             | None -> sub))
    | (Iriref _ | Pname _ | Var _), _ ->
        let s = term st in
        let p = term st in
        let o = term st in
        (match peek st with Dot, _ -> advance st | _ -> ());
        let t = Algebra.triple (Triple.make s p o) in
        items
          (Some
             (match acc with
             | Some left -> Algebra.and_ left t
             | None -> t))
    | ( Eof | Dot | Kw_union | Kw_prefix | Kw_select | Kw_where | Kw_bound
      | Rparen | Lparen | Op_eq | Op_neq | Op_and | Op_or | Op_not ),
      line ->
        error line "unexpected token inside group"
  in
  items None

and union_chain st =
  let first = group st in
  let rec chain acc =
    match peek st with
    | Kw_union, _ ->
        advance st;
        chain (Algebra.union acc (group st))
    | _ -> acc
  in
  chain first

let prologue st =
  let rec go () =
    match peek st with
    | Kw_prefix, line -> (
        advance st;
        match peek st with
        | Pname (prefix, ""), _ -> (
            advance st;
            match peek st with
            | Iriref iri, _ ->
                advance st;
                st.prefixes <- (prefix, iri) :: st.prefixes;
                go ()
            | _, line -> error line "expected <iri> in PREFIX declaration")
        | _ -> error line "expected pname: in PREFIX declaration")
    | _ -> ()
  in
  go ()

let select_clause st =
  match peek st with
  | Kw_select, _ ->
      advance st;
      let rec vars acc =
        match peek st with
        | Var v, _ ->
            advance st;
            vars (Rdf.Variable.of_string v :: acc)
        | _ -> List.rev acc
      in
      let projected = vars [] in
      (match peek st with
      | _, line when projected = [] -> error line "SELECT needs at least one variable"
      | Kw_where, _ ->
          advance st;
          Some projected
      | _ -> Some projected)
  | _ -> None

let parse src =
  match
    let st = { tokens = tokenize src; prefixes = [] } in
    prologue st;
    let projection = select_clause st in
    let p = union_chain st in
    let p =
      match projection with
      | Some vars -> Algebra.select (Rdf.Variable.Set.of_list vars) p
      | None -> p
    in
    (match peek st with
    | Eof, _ -> ()
    | _, line -> error line "trailing input after pattern");
    p
  with
  | p -> Ok p
  | exception Error msg -> Error msg

let parse_exn src =
  match parse src with Ok p -> p | Error msg -> failwith msg
