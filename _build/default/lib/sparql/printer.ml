let to_string p = Fmt.str "%a" Algebra.pp p
let mapping_to_string m = Fmt.str "%a" Mapping.pp m
