(** Rendering graph patterns back to the concrete syntax of {!Parser}. *)

val to_string : Algebra.t -> string
(** Pretty, multi-line rendering; [Parser.parse (to_string p)] yields a
    pattern structurally equal to [p]. *)

val mapping_to_string : Mapping.t -> string
