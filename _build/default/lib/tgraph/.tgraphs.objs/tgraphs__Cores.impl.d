lib/tgraph/cores.ml: Gtgraph Homomorphism List Option Rdf Tgraph Triple
