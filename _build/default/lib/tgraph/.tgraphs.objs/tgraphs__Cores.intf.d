lib/tgraph/cores.mli: Gtgraph
