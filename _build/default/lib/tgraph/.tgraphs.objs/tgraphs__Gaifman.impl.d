lib/tgraph/gaifman.ml: Array Graphtheory Hashtbl List Rdf Tgraph Triple Variable
