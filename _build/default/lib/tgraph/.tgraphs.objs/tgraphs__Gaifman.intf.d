lib/tgraph/gaifman.mli: Graphtheory Rdf Tgraph
