lib/tgraph/gtgraph.ml: Fmt Gaifman Graph Graphtheory Homomorphism Option Rdf Term Tgraph Variable
