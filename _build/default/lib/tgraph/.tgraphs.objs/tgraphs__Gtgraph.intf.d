lib/tgraph/gtgraph.mli: Fmt Graph Homomorphism Rdf Tgraph Variable
