lib/tgraph/homomorphism.ml: Fmt Index List Option Rdf Term Tgraph Triple Variable
