lib/tgraph/homomorphism.mli: Fmt Rdf Term Tgraph Variable
