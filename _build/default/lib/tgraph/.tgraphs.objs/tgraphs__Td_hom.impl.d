lib/tgraph/td_hom.ml: Array Cores Gaifman Graph Graphtheory Gtgraph Hashtbl Homomorphism Iri List Rdf Term Tgraph Triple Variable
