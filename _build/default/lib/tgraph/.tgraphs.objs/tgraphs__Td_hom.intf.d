lib/tgraph/td_hom.mli: Graph Gtgraph Homomorphism Rdf
