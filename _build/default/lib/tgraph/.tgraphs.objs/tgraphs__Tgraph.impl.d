lib/tgraph/tgraph.ml: Graph Index Iri List Rdf String Term Triple Variable
