lib/tgraph/tgraph.mli: Fmt Graph Index Iri Rdf Term Triple Variable
