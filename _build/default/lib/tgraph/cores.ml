open Rdf

(* An endomorphism of (S, X) into S \ {t} for some t ∈ S witnesses that
   (S, X) is not a core; its image is a strictly smaller equivalent
   subgraph. *)
let shrinking_endomorphism g =
  let s = Gtgraph.s g in
  let pre = Gtgraph.identity_pre g in
  let rec try_triples = function
    | [] -> None
    | t :: rest -> (
        let target = Tgraph.remove s t in
        match Homomorphism.find ~pre ~source:s ~target () with
        | Some h -> Some h
        | None -> try_triples rest)
  in
  try_triples (Tgraph.triples s)

let image g h =
  let s = Gtgraph.s g in
  let mapped =
    List.map (Triple.map (Homomorphism.apply h)) (Tgraph.triples s)
  in
  Gtgraph.make (Tgraph.of_triples mapped) (Gtgraph.x g)

let is_core g = Option.is_none (shrinking_endomorphism g)

let rec core g =
  match shrinking_endomorphism g with
  | None -> g
  | Some h -> core (image g h)

let ctw g = Gtgraph.tw (core g)
