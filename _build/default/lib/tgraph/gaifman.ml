open Rdf

let graph x s =
  let vertex_vars =
    Variable.Set.elements (Variable.Set.diff (Tgraph.vars s) x)
  in
  let vars_array = Array.of_list vertex_vars in
  let id_of = Hashtbl.create (Array.length vars_array) in
  Array.iteri (fun i v -> Hashtbl.replace id_of v i) vars_array;
  let edges = ref [] in
  List.iter
    (fun triple ->
      let ids =
        Triple.vars triple |> Variable.Set.elements
        |> List.filter_map (Hashtbl.find_opt id_of)
      in
      let rec pairs = function
        | [] -> ()
        | a :: rest ->
            List.iter (fun b -> if a <> b then edges := (a, b) :: !edges) rest;
            pairs rest
      in
      pairs ids)
    (Tgraph.triples s);
  (Graphtheory.Ugraph.make ~n:(Array.length vars_array) ~edges:!edges, vars_array)
