(** Gaifman graphs of generalised t-graphs (Section 2 of the paper).

    The Gaifman graph [G(S, X)] has vertex set [vars(S) \ X] and an edge
    between two distinct variables that co-occur in some triple pattern of
    [S]. *)

val graph : Rdf.Variable.Set.t -> Tgraph.t -> Graphtheory.Ugraph.t * Rdf.Variable.t array
(** [graph x s] is the Gaifman graph of [(s, x)] together with the array
    mapping graph vertex ids back to variables. *)
