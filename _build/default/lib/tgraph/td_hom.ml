open Rdf

let bag_assignments_count = ref 0
let stats_bag_assignments () = !bag_assignments_count
let reset_stats () = bag_assignments_count := 0

let maps_to_graph g ~mu graph =
  Variable.Set.iter
    (fun v ->
      if not (Variable.Map.mem v mu) then
        invalid_arg "Td_hom.maps_to_graph: µ does not cover X")
    (Gtgraph.x g);
  let core = Cores.core g in
  let x = Gtgraph.x core in
  (* substitute µ: distinguished variables become IRIs *)
  let s_mu =
    Tgraph.apply
      (fun v ->
        if Variable.Set.mem v x then Variable.Map.find_opt v mu else None)
      (Gtgraph.s core)
  in
  let target = Graph.to_index graph in
  let ground, nonground =
    List.partition Triple.is_ground (Tgraph.triples s_mu)
  in
  if not (List.for_all (Rdf.Index.mem target) ground) then false
  else begin
    let free = Variable.Set.elements (Tgraph.vars s_mu) in
    if free = [] then true
    else begin
      let gaifman, vars_arr =
        Gaifman.graph Variable.Set.empty (Tgraph.of_triples nonground)
      in
      let decomposition = Graphtheory.Treewidth.decomposition gaifman in
      let bags = Graphtheory.Tree_decomposition.bags decomposition in
      let nbags = Array.length bags in
      let bag_vars =
        Array.map
          (fun bag ->
            Graphtheory.Ugraph.ISet.elements bag
            |> List.map (fun id -> vars_arr.(id))
            |> List.sort Variable.compare)
          bags
      in
      (* each triple goes to one bag containing all its variables; such a
         bag exists because the triple's variables form a Gaifman clique *)
      let bag_triples = Array.make nbags [] in
      let ok_placement =
        List.for_all
          (fun triple ->
            let tv = Triple.vars triple in
            let rec place i =
              if i >= nbags then false
              else if
                Variable.Set.subset tv (Variable.Set.of_list bag_vars.(i))
              then begin
                bag_triples.(i) <- triple :: bag_triples.(i);
                true
              end
              else place (i + 1)
            in
            place 0)
          nonground
      in
      if not ok_placement then
        (* cannot happen for valid decompositions; fail safe by falling
           back to the exact solver *)
        Homomorphism.exists ~source:s_mu ~target ()
      else begin
        let dom_terms =
          List.map (fun i -> Term.Iri i) (Iri.Set.elements (Graph.dom graph))
        in
        (* solutions of one bag: assignments of bag_vars.(i) satisfying
           bag_triples.(i); unconstrained bag variables range over dom G *)
        let bag_solutions i =
          let source = Tgraph.of_triples bag_triples.(i) in
          let partials = Homomorphism.all ~source ~target () in
          let covered = Tgraph.vars source in
          let rest =
            List.filter
              (fun v -> not (Variable.Set.mem v covered))
              bag_vars.(i)
          in
          let expand partial =
            List.fold_left
              (fun acc v ->
                List.concat_map
                  (fun assignment ->
                    List.map
                      (fun term -> Variable.Map.add v term assignment)
                      dom_terms)
                  acc)
              [ partial ] rest
          in
          let solutions = List.concat_map expand partials in
          bag_assignments_count := !bag_assignments_count + List.length solutions;
          solutions
        in
        let solutions = Array.init nbags bag_solutions in
        (* adjacency of the decomposition forest *)
        let adj = Array.make nbags [] in
        List.iter
          (fun (a, b) ->
            adj.(a) <- b :: adj.(a);
            adj.(b) <- a :: adj.(b))
          (Graphtheory.Tree_decomposition.tree_edges decomposition);
        (* upward semijoin (Yannakakis): DFS post-order from each component
           root; a child prunes its parent to the rows matching some child
           row on the shared variables *)
        let visited = Array.make nbags false in
        let projection vars assignment =
          List.map
            (fun v -> Variable.Map.find v assignment)
            vars
        in
        let rec process node =
          visited.(node) <- true;
          List.iter
            (fun child ->
              if not visited.(child) then begin
                process child;
                let shared =
                  List.filter
                    (fun v -> List.mem v bag_vars.(node))
                    bag_vars.(child)
                in
                let child_keys = Hashtbl.create 64 in
                List.iter
                  (fun sol -> Hashtbl.replace child_keys (projection shared sol) ())
                  solutions.(child);
                solutions.(node) <-
                  List.filter
                    (fun sol -> Hashtbl.mem child_keys (projection shared sol))
                    solutions.(node)
              end)
            adj.(node)
        in
        let answer = ref true in
        for root = 0 to nbags - 1 do
          if not visited.(root) then begin
            process root;
            if solutions.(root) = [] then answer := false
          end
        done;
        !answer
      end
    end
  end
