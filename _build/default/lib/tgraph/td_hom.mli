(** Tree-decomposition-guided homomorphism testing: the {e exact}
    bounded-treewidth algorithm (compute the core, decompose its Gaifman
    graph, enumerate per-bag assignments, and run an upward Yannakakis
    semijoin pass).

    Unlike the pebble game this decides [(S, X) →µ G] {e exactly}, and it
    runs in time [O(|G|^{ctw+1})] — polynomial whenever [ctw(S, X)] is
    bounded. The catch, and the reason the paper needs the pebble
    relaxation instead: the evaluation algorithm must test generalised
    t-graphs whose {e own} ctw is unbounded even when the family's
    domination width is 1 (the clique member of [GtG(T1\[r1\])] in
    Example 5 is dominated, not small), so this exact method blows up
    exactly where the naive one does. Bench F7 makes that visible. *)

open Rdf

val maps_to_graph :
  Gtgraph.t -> mu:Homomorphism.assignment -> Graph.t -> bool
(** Decides [(S, X) →µ G]. Always agrees with
    {!Gtgraph.maps_to_graph} (tested); cost is exponential only in
    [ctw(S, X)]. Raises like {!Gtgraph.hom_to_graph} on a [µ] that does
    not cover [X]. *)

val stats_bag_assignments : unit -> int
(** Total per-bag assignments materialised since {!reset_stats}. *)

val reset_stats : unit -> unit
