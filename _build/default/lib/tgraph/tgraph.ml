open Rdf

type t = Index.t

let of_triples = Index.of_triples
let empty = Index.empty
let union = Index.union
let triples = Index.triples
let cardinal = Index.cardinal
let mem = Index.mem

let subset a b = Triple.Set.subset (Index.to_set a) (Index.to_set b)
let proper_subset a b = subset a b && not (Index.equal a b)
let remove t triple = Index.of_set (Triple.Set.remove triple (Index.to_set t))

let vars = Index.vars
let iris = Index.iris

let apply f t = Index.of_triples (List.map (Triple.subst f) (triples t))

let rename_avoiding ~keep ~avoid s =
  let forbidden =
    ref (Variable.Set.union (vars s) (Variable.Set.union keep avoid))
  in
  let substitution = ref Variable.Map.empty in
  Variable.Set.iter
    (fun v ->
      if not (Variable.Set.mem v keep) then begin
        let fresh =
          Variable.fresh
            ~basis:v
            ~avoid:(fun candidate -> Variable.Set.mem candidate !forbidden)
        in
        forbidden := Variable.Set.add fresh !forbidden;
        substitution := Variable.Map.add v (Term.Var fresh) !substitution
      end)
    (vars s);
  let subst = !substitution in
  (apply (fun v -> Variable.Map.find_opt v subst) s, subst)

let freeze_prefix = "urn:frozen:"

let freeze_term = function
  | Term.Var v -> Term.iri (freeze_prefix ^ Variable.to_string v)
  | Term.Iri _ as t -> t

let thaw_term = function
  | Term.Iri i as t ->
      let s = Iri.to_string i in
      let n = String.length freeze_prefix in
      if String.length s > n && String.sub s 0 n = freeze_prefix then
        Term.var (String.sub s n (String.length s - n))
      else t
  | Term.Var _ as t -> t

let freeze t =
  Graph.of_triples (List.map (Triple.map freeze_term) (triples t))

let equal = Index.equal
let pp = Index.pp
