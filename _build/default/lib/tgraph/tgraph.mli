(** Triple pattern graphs (t-graphs, Section 2.1 of the paper): finite sets
    of triple patterns. An RDF graph is exactly a t-graph without
    variables.

    A t-graph is represented by the shared matching index {!Rdf.Index.t};
    variables appearing in a t-graph used as a homomorphism {e target} are
    treated as frozen constants, which is precisely the paper's freezing
    construction [Ψ] (Section 4.2). *)

open Rdf

type t = Index.t

val of_triples : Triple.t list -> t
val empty : t
val union : t -> t -> t
val triples : t -> Triple.t list
val cardinal : t -> int
val mem : t -> Triple.t -> bool
val subset : t -> t -> bool
val proper_subset : t -> t -> bool
val remove : t -> Triple.t -> t

val vars : t -> Variable.Set.t
(** [vars(S)]: variables appearing in the t-graph. *)

val iris : t -> Iri.Set.t

val apply : (Variable.t -> Term.t option) -> t -> t
(** Apply a partial substitution to every triple. *)

val rename_avoiding :
  keep:Variable.Set.t -> avoid:Variable.Set.t -> t -> t * Term.t Variable.Map.t
(** [rename_avoiding ~keep ~avoid s] renames every variable of [s] outside
    [keep] to a fresh variable not in [avoid ∪ keep] (and not otherwise
    used), returning the renamed t-graph and the substitution used. This is
    the renaming [ρ_Δ] of Section 3.1. *)

val freeze_prefix : string
(** IRI prefix used by {!freeze}. *)

val freeze : t -> Graph.t
(** The paper's freezing [Ψ]: replace every variable [?x] by the IRI
    [urn:frozen:x], yielding a ground RDF graph. *)

val freeze_term : Term.t -> Term.t
val thaw_term : Term.t -> Term.t
(** [thaw_term] maps [urn:frozen:x] back to [?x] (the paper's [Θ]) and
    leaves other terms unchanged. *)

val equal : t -> t -> bool
val pp : t Fmt.t
