lib/wdpt/children_assignment.ml: Fun Gtgraph List Option Pattern_forest Pattern_tree Rdf Subtree Tgraph Tgraphs Variable
