lib/wdpt/children_assignment.mli: Gtgraph Pattern_forest Pattern_tree Subtree Tgraphs
