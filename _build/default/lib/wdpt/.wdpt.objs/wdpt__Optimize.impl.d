lib/wdpt/optimize.ml: Array List Option Pattern_forest Pattern_tree Rdf Tgraph Tgraphs Triple Variable
