lib/wdpt/optimize.mli: Pattern_forest Pattern_tree Sparql
