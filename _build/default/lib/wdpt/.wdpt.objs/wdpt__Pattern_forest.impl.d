lib/wdpt/pattern_forest.ml: Fmt List Pattern_tree Rdf Sparql Translate
