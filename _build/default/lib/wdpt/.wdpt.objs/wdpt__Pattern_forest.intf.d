lib/wdpt/pattern_forest.mli: Fmt Pattern_tree Rdf Sparql
