lib/wdpt/pattern_tree.ml: Array Fmt Fun Hashtbl List Printf Rdf Sparql Term Tgraph Tgraphs Triple Variable
