lib/wdpt/pattern_tree.mli: Fmt Rdf Sparql Tgraph Tgraphs Variable
