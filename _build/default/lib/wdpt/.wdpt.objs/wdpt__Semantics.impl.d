lib/wdpt/semantics.ml: Graph Homomorphism List Pattern_tree Rdf Sparql Subtree Tgraphs
