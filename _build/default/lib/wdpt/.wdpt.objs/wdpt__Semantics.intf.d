lib/wdpt/semantics.mli: Graph Pattern_forest Pattern_tree Rdf Sparql
