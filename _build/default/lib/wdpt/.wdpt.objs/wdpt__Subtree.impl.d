lib/wdpt/subtree.ml: Fmt Graph Int List Option Pattern_tree Rdf Set Sparql Tgraph Tgraphs Variable
