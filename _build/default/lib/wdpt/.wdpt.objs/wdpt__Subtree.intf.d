lib/wdpt/subtree.mli: Fmt Graph Pattern_tree Rdf Sparql Tgraph Tgraphs Variable
