lib/wdpt/translate.ml: Array List Pattern_tree Rdf Sparql Tgraph Tgraphs Triple
