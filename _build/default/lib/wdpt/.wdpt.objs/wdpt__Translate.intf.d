lib/wdpt/translate.mli: Pattern_tree Sparql
