open Rdf
open Tgraphs

type support = (int * Subtree.t) list

let supp forest subtree =
  let target = Subtree.vars subtree in
  List.mapi (fun i tree -> (i, Subtree.with_vars tree target)) forest
  |> List.filter_map (fun (i, witness) ->
         Option.map (fun w -> (i, w)) witness)

type t = (int * Pattern_tree.node) list

let all forest subtree =
  let support = supp forest subtree in
  (* For each supporting index, the options are: unassigned (None), or one
     of the witness subtree's children. *)
  let options =
    List.map
      (fun (i, witness) ->
        None :: List.map (fun c -> Some (i, c)) (Subtree.children witness))
      support
  in
  let product =
    List.fold_left
      (fun acc opts ->
        List.concat_map (fun partial -> List.map (fun o -> o :: partial) opts) acc)
      [ [] ] options
  in
  product
  |> List.map (fun choices -> List.rev (List.filter_map Fun.id choices))
  |> List.filter (fun delta -> delta <> [])

let s_delta forest subtree delta =
  let keep = Subtree.vars subtree in
  let forest_vars = Pattern_forest.vars forest in
  let avoid = ref forest_vars in
  let parts =
    List.map
      (fun (i, child) ->
        let tree = List.nth forest i in
        let renamed, _subst =
          Tgraph.rename_avoiding ~keep ~avoid:!avoid (Pattern_tree.pat tree child)
        in
        avoid := Variable.Set.union !avoid (Tgraph.vars renamed);
        renamed)
      delta
  in
  let s = List.fold_left Tgraph.union (Subtree.pat subtree) parts in
  Gtgraph.make s keep

let is_valid forest subtree delta =
  let x = Subtree.vars subtree in
  let s_d = s_delta forest subtree delta in
  let assigned = List.map fst delta in
  List.for_all
    (fun (j, witness) ->
      if List.mem j assigned then true
      else
        let candidate = Gtgraph.make (Subtree.pat witness) x in
        not (Gtgraph.maps_to candidate s_d))
    (supp forest subtree)

let valid forest subtree =
  List.filter (is_valid forest subtree) (all forest subtree)

let gtg forest subtree =
  List.map (s_delta forest subtree) (valid forest subtree)
