(** Children assignments and the generalised t-graphs [GtG(T)] associated
    with a subtree of a wdPF (Section 3.1) — the combinatorial core of
    domination width.

    For a subtree [T] of [F = {T1 … Tm}]:
    - [supp T] lists the indices [i] with a (unique) witness subtree
      [T^sp(i)] of [Ti] satisfying [vars(T^sp(i)) = vars(T)];
    - a children assignment [∆] maps a non-empty subset of [supp T] to
      children of the respective witnesses;
    - [S_∆] is [pat(T)] extended with each assigned child's label, its
      private variables renamed fresh ([ρ_∆]);
    - [∆] is valid when no unassigned supporting tree's witness pattern
      maps homomorphically into [(S_∆, vars T)];
    - [GtG(T)] collects [(S_∆, vars T)] over valid [∆]. *)

open Tgraphs

type support = (int * Subtree.t) list
(** Pairs [(i, T^sp(i))], ascending in [i]. *)

val supp : Pattern_forest.t -> Subtree.t -> support

type t = (int * Pattern_tree.node) list
(** A children assignment: pairs [(i, child of T^sp(i))], ascending in
    [i], with at least one pair. *)

val all : Pattern_forest.t -> Subtree.t -> t list
(** All of [CA(T)] (may be empty). *)

val s_delta : Pattern_forest.t -> Subtree.t -> t -> Gtgraph.t
(** [(S_∆, vars T)]. Fresh variables are chosen outside every variable of
    the forest. *)

val is_valid : Pattern_forest.t -> Subtree.t -> t -> bool

val valid : Pattern_forest.t -> Subtree.t -> t list
(** [VCA(T)]. *)

val gtg : Pattern_forest.t -> Subtree.t -> Gtgraph.t list
(** [GtG(T)], one entry per valid children assignment. *)
