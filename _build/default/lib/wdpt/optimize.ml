open Rdf
open Tgraphs

type report = {
  triples_removed : int;
  trees_removed : int;
}

let tree t =
  let removed = ref 0 in
  (* variables used strictly below each node: dropping a variable from a
     node is only safe when no descendant relies on the node to connect
     that variable's occurrences (wdPT condition 3) *)
  let descendant_vars = Array.make (Pattern_tree.size t) Variable.Set.empty in
  List.iter
    (fun n ->
      let rec collect m =
        List.fold_left
          (fun acc c ->
            Variable.Set.union acc
              (Variable.Set.union (Pattern_tree.vars_of_node t c) (collect c)))
          Variable.Set.empty (Pattern_tree.children t m)
      in
      descendant_vars.(n) <- collect n)
    (Pattern_tree.nodes t);
  let labels =
    Array.of_list
      (List.map
         (fun n ->
           let label = Pattern_tree.pat t n in
           let branch_pat =
             List.fold_left
               (fun acc m -> Tgraph.union acc (Pattern_tree.pat t m))
               Tgraph.empty (Pattern_tree.branch t n)
           in
           (* drop triples implied by the branch, keeping a non-empty
              label and descendant variable connectivity *)
           let keep = ref label in
           List.iter
             (fun triple ->
               if Tgraph.mem branch_pat triple then begin
                 let candidate = Tgraph.remove !keep triple in
                 let lost_vars =
                   Variable.Set.diff (Triple.vars triple) (Tgraph.vars candidate)
                 in
                 if
                   Tgraph.cardinal candidate > 0
                   && Variable.Set.is_empty
                        (Variable.Set.inter lost_vars descendant_vars.(n))
                 then begin
                   keep := candidate;
                   incr removed
                 end
               end)
             (Tgraph.triples label);
           !keep)
         (Pattern_tree.nodes t))
  in
  let parent =
    Array.of_list
      (List.map
         (fun n -> Option.value ~default:(-1) (Pattern_tree.parent t n))
         (Pattern_tree.nodes t))
  in
  let rebuilt = Pattern_tree.nr_normal_form (Pattern_tree.make ~labels ~parent) in
  (rebuilt, !removed)

let forest f =
  let optimised = List.map tree f in
  let triples_removed = List.fold_left (fun acc (_, n) -> acc + n) 0 optimised in
  let deduped =
    List.fold_left
      (fun acc (t, _) ->
        if List.exists (Pattern_tree.equal t) acc then acc else acc @ [ t ])
      [] optimised
  in
  ( deduped,
    {
      triples_removed;
      trees_removed = List.length f - List.length deduped;
    } )

let pattern p = forest (Pattern_forest.of_algebra p)
