(** Semantics-preserving simplification of pattern trees and forests.

    Only transformations that are provably safe under the paper's set
    semantics are applied (there is no projection in this fragment, so a
    node's label may never be replaced by a mere hom-equivalent one — that
    would change the answer domains):

    - {b ancestor dedup}: a triple of [pat(n)] that already occurs in an
      ancestor's label is implied both in every subtree containing [n]
      and in every extension test of [n] (its variables are bound by the
      branch and already checked), so it can be dropped — guarded so the
      node keeps its variables and a non-empty label;
    - {b forest dedup}: syntactically duplicate trees contribute the same
      answers and are kept once.

    Trees are re-normalised to NR normal form afterwards (dropping triples
    can remove a node's last fresh variable). Equivalence is
    property-tested against the reference evaluator. *)

type report = {
  triples_removed : int;
  trees_removed : int;
}

val tree : Pattern_tree.t -> Pattern_tree.t * int
(** Ancestor dedup + NR re-normalisation; returns the number of triples
    removed. *)

val forest : Pattern_forest.t -> Pattern_forest.t * report

val pattern : Sparql.Algebra.t -> Pattern_forest.t * report
(** Translate then optimise. *)
