type t = Pattern_tree.t list

let of_algebra = Translate.forest_of_algebra

let vars f =
  List.fold_left
    (fun acc tree -> Rdf.Variable.Set.union acc (Pattern_tree.vars tree))
    Rdf.Variable.Set.empty f

let size f = List.fold_left (fun acc tree -> acc + Pattern_tree.size tree) 0 f

let to_algebra f = Sparql.Algebra.union_all (List.map Pattern_tree.to_algebra f)

let pp ppf f = Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:(any "@ ---@ ") Pattern_tree.pp) f
