(** Well-designed pattern forests (wdPFs): finite sets of wdPTs, the
    representation of general well-designed patterns
    [P1 UNION … UNION Pm]. *)

type t = Pattern_tree.t list

val of_algebra : Sparql.Algebra.t -> t
(** [wdpf(P)]; see {!Translate.forest_of_algebra}. *)

val vars : t -> Rdf.Variable.Set.t
val size : t -> int
(** Total number of nodes across all trees. *)

val to_algebra : t -> Sparql.Algebra.t
(** The UNION of the trees' patterns. Raises [Invalid_argument] on the
    empty forest. *)

val pp : t Fmt.t
