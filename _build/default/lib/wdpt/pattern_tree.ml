open Rdf
open Tgraphs

type node = int

type t = {
  labels : Tgraph.t array;
  parents : node array;
  child_lists : node list array;
}

let root = 0
let size t = Array.length t.labels
let nodes t = List.init (size t) Fun.id
let parent t n = if n = root then None else Some t.parents.(n)
let children t n = t.child_lists.(n)
let pat t n = t.labels.(n)
let vars_of_node t n = Tgraph.vars t.labels.(n)

let pat_all t = Array.fold_left Tgraph.union Tgraph.empty t.labels
let vars t = Tgraph.vars (pat_all t)

let branch t n =
  let rec up acc n =
    match parent t n with None -> acc | Some p -> up (p :: acc) p
  in
  up [] n

let depth t =
  let rec d n = 1 + List.fold_left (fun acc c -> max acc (d c)) (-1) (children t n) in
  if size t = 0 then 0 else d root

let check_variable_connectedness labels parents =
  (* For each variable, the nodes mentioning it must induce a connected
     subgraph: every non-root node mentioning v whose parent does not must
     be the unique "topmost" occurrence. *)
  let n = Array.length labels in
  let all_vars =
    Array.fold_left
      (fun acc s -> Variable.Set.union acc (Tgraph.vars s))
      Variable.Set.empty labels
  in
  Variable.Set.for_all
    (fun v ->
      let holds i = Variable.Set.mem v (Tgraph.vars labels.(i)) in
      let tops = ref 0 in
      for i = 0 to n - 1 do
        if holds i && (i = 0 || not (holds parents.(i))) then incr tops
      done;
      !tops <= 1)
    all_vars

let make ~labels ~parent =
  let n = Array.length labels in
  if n = 0 then invalid_arg "Pattern_tree.make: empty tree";
  if Array.length parent <> n then
    invalid_arg "Pattern_tree.make: arity mismatch";
  if parent.(0) <> -1 then invalid_arg "Pattern_tree.make: node 0 must be root";
  Array.iteri
    (fun i p ->
      if i > 0 && (p < 0 || p >= i) then
        invalid_arg
          "Pattern_tree.make: parents must precede children (topological ids)")
    parent;
  Array.iteri
    (fun i s ->
      if Tgraph.cardinal s = 0 then
        invalid_arg (Printf.sprintf "Pattern_tree.make: node %d has empty label" i))
    labels;
  if not (check_variable_connectedness labels parent) then
    invalid_arg "Pattern_tree.make: variable occurrences are not connected";
  let child_lists = Array.make n [] in
  for i = n - 1 downto 1 do
    child_lists.(parent.(i)) <- i :: child_lists.(parent.(i))
  done;
  { labels; parents = parent; child_lists }

let is_nr_normal_form t =
  List.for_all
    (fun n ->
      match parent t n with
      | None -> true
      | Some p ->
          not (Variable.Set.subset (vars_of_node t n) (vars_of_node t p)))
    (nodes t)

let nr_normal_form t =
  (* Work on mutable parallel lists, merging one offending node at a time;
     then rebuild with fresh topological ids. *)
  let labels = Array.copy t.labels in
  let parents = Array.copy t.parents in
  let alive = Array.make (size t) true in
  let live_parent n =
    let rec up p = if p = -1 || alive.(p) then p else up parents.(p) in
    up parents.(n)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for n = 1 to size t - 1 do
      if alive.(n) then begin
        let p = live_parent n in
        if p <> -1
           && Variable.Set.subset (Tgraph.vars labels.(n)) (Tgraph.vars labels.(p))
        then begin
          (* delete n; push its label down into each live descendant whose
             path to p runs through n. *)
          alive.(n) <- false;
          for c = n + 1 to size t - 1 do
            if alive.(c) && live_parent c = p then begin
              (* only children whose original chain passes through n *)
              let rec through x = x = n || (x <> -1 && x <> p && through parents.(x)) in
              if through parents.(c) then
                labels.(c) <- Tgraph.union labels.(c) labels.(n)
            end
          done;
          changed := true
        end
      end
    done
  done;
  let remaining = List.filter (fun n -> alive.(n)) (List.init (size t) Fun.id) in
  let fresh_of_old = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace fresh_of_old n i) remaining;
  let labels' = Array.of_list (List.map (fun n -> labels.(n)) remaining) in
  let parents' =
    Array.of_list
      (List.map
         (fun n ->
           let p = live_parent n in
           if p = -1 then -1 else Hashtbl.find fresh_of_old p)
         remaining)
  in
  make ~labels:labels' ~parent:parents'

let to_algebra t =
  let conj s =
    Sparql.Algebra.and_all (List.map Sparql.Algebra.triple (Tgraph.triples s))
  in
  let rec build n =
    List.fold_left
      (fun acc c -> Sparql.Algebra.opt acc (build c))
      (conj (pat t n))
      (children t n)
  in
  build root

let rename f t =
  let rename_tgraph s =
    Tgraph.of_triples
      (List.map
         (Triple.map (function
           | Term.Var v -> Term.Var (f v)
           | Term.Iri _ as term -> term))
         (Tgraph.triples s))
  in
  { t with labels = Array.map rename_tgraph t.labels }

let equal a b =
  size a = size b
  && Array.for_all2 Tgraph.equal a.labels b.labels
  && a.parents = b.parents

let pp ppf t =
  let rec node ppf n =
    Fmt.pf ppf "@[<v 2>%d: %a%a@]" n Tgraph.pp (pat t n)
      (fun ppf -> function
        | [] -> ()
        | cs -> Fmt.pf ppf "@ %a" Fmt.(list ~sep:sp node) cs)
      (children t n)
  in
  node ppf root
