(** Well-designed pattern trees (wdPTs, Section 2.1 of the paper).

    A wdPT is a rooted tree whose nodes are labelled by non-empty t-graphs
    and in which, for every variable, the nodes whose label mentions the
    variable induce a connected subgraph. Node 0 is always the root.

    Unless stated otherwise, the algorithms in this project expect trees in
    NR normal form ([vars(n) \ vars(parent n) ≠ ∅] for every non-root
    node); {!nr_normal_form} converts while preserving semantics. *)

open Rdf
open Tgraphs

type node = int

type t

val make : labels:Tgraph.t array -> parent:node array -> t
(** [labels.(i)] is [pat(i)]; [parent.(i)] is the parent of node [i], with
    [parent.(0) = -1] for the root. Raises [Invalid_argument] if the
    parent array is not a valid tree rooted at 0 (parents must precede
    children), a label is empty, or variable-connectedness fails. *)

val root : node
val size : t -> int
val nodes : t -> node list
val parent : t -> node -> node option
val children : t -> node -> node list
val pat : t -> node -> Tgraph.t
val vars_of_node : t -> node -> Variable.Set.t

val pat_all : t -> Tgraph.t
(** [pat(T)]: the union of all node labels. *)

val vars : t -> Variable.Set.t
(** [vars(T)]. *)

val branch : t -> node -> node list
(** [B_n]: the nodes on the path from the root to the {e parent} of [n]
    (Section 3.2); empty for the root. *)

val depth : t -> int

val is_nr_normal_form : t -> bool

val nr_normal_form : t -> t
(** Merge away nodes that introduce no new variable w.r.t. their parent:
    such a node is deleted, its children are re-attached to its parent and
    their labels are extended with the deleted node's label. This is the
    semantics-preserving transformation of Letelier et al. *)

val to_algebra : t -> Sparql.Algebra.t
(** The equivalent UNION-free well-designed graph pattern: each node is the
    AND of its triples and each child is attached with OPT. *)

val rename : (Variable.t -> Variable.t) -> t -> t
(** Rename variables throughout (must be injective to stay meaningful). *)

val equal : t -> t -> bool
val pp : t Fmt.t
