open Rdf
open Tgraphs

let child_extends tree graph mu n =
  let source = Pattern_tree.pat tree n in
  let pre = Sparql.Mapping.to_assignment mu in
  Homomorphism.exists ~pre ~source ~target:(Graph.to_index graph) ()

let check_tree tree graph mu =
  match Subtree.matching tree graph mu with
  | None -> false
  | Some subtree ->
      not
        (List.exists (child_extends tree graph mu) (Subtree.children subtree))

let check forest graph mu =
  List.exists (fun tree -> check_tree tree graph mu) forest

let solutions_tree tree graph =
  let target = Graph.to_index graph in
  List.fold_left
    (fun acc subtree ->
      let source = Subtree.pat subtree in
      let homs = Homomorphism.all ~source ~target () in
      List.fold_left
        (fun acc h ->
          match Sparql.Mapping.of_assignment h with
          | None -> acc
          | Some mu ->
              let maximal =
                not
                  (List.exists
                     (child_extends tree graph mu)
                     (Subtree.children subtree))
              in
              if maximal then Sparql.Mapping.Set.add mu acc else acc)
        acc homs)
    Sparql.Mapping.Set.empty (Subtree.all tree)

let solutions forest graph =
  List.fold_left
    (fun acc tree -> Sparql.Mapping.Set.union acc (solutions_tree tree graph))
    Sparql.Mapping.Set.empty forest
