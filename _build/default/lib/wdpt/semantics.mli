(** Evaluation of wdPTs and wdPFs via the characterisation of Lemma 1:
    [µ ∈ ⟦T⟧G] iff there is a subtree [T'] such that [µ] is a homomorphism
    from [pat(T')] to [G] and no child of [T'] admits a homomorphism
    compatible with [µ].

    [check] is the "natural algorithm" of Sections 3–3.1: it performs
    NP-hard homomorphism tests and is therefore exponential in the query in
    the worst case (this is the paper's baseline; the polynomial relaxation
    lives in [Wd_core.Pebble_eval]). [solutions] enumerates the full answer
    set. *)

open Rdf

val check_tree : Pattern_tree.t -> Graph.t -> Sparql.Mapping.t -> bool
(** [µ ∈ ⟦T⟧G]. *)

val check : Pattern_forest.t -> Graph.t -> Sparql.Mapping.t -> bool
(** [µ ∈ ⟦F⟧G = ⟦T1⟧G ∪ … ∪ ⟦Tm⟧G]. *)

val solutions_tree : Pattern_tree.t -> Graph.t -> Sparql.Mapping.Set.t
(** All of [⟦T⟧G], by enumerating subtrees, their homomorphisms, and
    filtering non-maximal ones. *)

val solutions : Pattern_forest.t -> Graph.t -> Sparql.Mapping.Set.t

val child_extends :
  Pattern_tree.t -> Graph.t -> Sparql.Mapping.t -> Pattern_tree.node -> bool
(** Is there a homomorphism from [pat(n)] to [G] compatible with [µ]? The
    inner test both evaluators share; exposed for the pebble variant and
    for tests. *)
