open Rdf
open Tgraphs

exception Not_well_designed of Sparql.Well_designed.violation

(* Intermediate rose tree, before node numbering. *)
type rose = { label : Triple.t list; subs : rose list }

(* OPT normal form: collect the AND-part triples and the optional sub-trees
   of a UNION-free pattern. Well-designedness makes pulling AND above OPT
   sound. *)
let rec collect = function
  | Sparql.Algebra.Triple t -> ([ t ], [])
  | Sparql.Algebra.And (a, b) ->
      let ta, ca = collect a and tb, cb = collect b in
      (ta @ tb, ca @ cb)
  | Sparql.Algebra.Opt (a, b) ->
      let ta, ca = collect a in
      (ta, ca @ [ rose_of b ])
  | (Sparql.Algebra.Union _ | Sparql.Algebra.Filter _ | Sparql.Algebra.Select _)
    ->
      assert false (* excluded by the core-fragment check *)

and rose_of p =
  let triples, subs = collect p in
  { label = triples; subs }

let tree_of_rose rose =
  let labels = ref [] and parents = ref [] in
  let counter = ref 0 in
  let rec number parent_id rose =
    let id = !counter in
    incr counter;
    labels := Tgraph.of_triples rose.label :: !labels;
    parents := parent_id :: !parents;
    List.iter (number id) rose.subs
  in
  number (-1) rose;
  Pattern_tree.make
    ~labels:(Array.of_list (List.rev !labels))
    ~parent:(Array.of_list (List.rev !parents))

let tree_of_algebra p =
  (match Sparql.Well_designed.check p with
  | Error v -> raise (Not_well_designed v)
  | Ok () -> ());
  if not (Sparql.Algebra.is_core p) then
    raise (Not_well_designed (Sparql.Well_designed.Beyond_core_fragment p));
  if not (Sparql.Well_designed.is_union_free p) then
    raise
      (Not_well_designed
         (Sparql.Well_designed.Nested_union p));
  Pattern_tree.nr_normal_form (tree_of_rose (rose_of p))

let rec contains_opt = function
  | Sparql.Algebra.Triple _ -> false
  | Sparql.Algebra.And (a, b) -> contains_opt a || contains_opt b
  | Sparql.Algebra.Opt _ -> true
  | Sparql.Algebra.Union _ | Sparql.Algebra.Filter _ | Sparql.Algebra.Select _
    ->
      true

let rec is_opt_normal_form = function
  | Sparql.Algebra.Triple _ -> true
  | Sparql.Algebra.And _ as p -> not (contains_opt p)
  | Sparql.Algebra.Opt (a, b) -> is_opt_normal_form a && is_opt_normal_form b
  | Sparql.Algebra.Union _ | Sparql.Algebra.Filter _ | Sparql.Algebra.Select _
    ->
      false

let opt_normal_form p =
  (match Sparql.Well_designed.check p with
  | Error v -> raise (Not_well_designed v)
  | Ok () -> ());
  if not (Sparql.Algebra.is_core p) then
    raise (Not_well_designed (Sparql.Well_designed.Beyond_core_fragment p));
  if not (Sparql.Well_designed.is_union_free p) then
    raise (Not_well_designed (Sparql.Well_designed.Nested_union p));
  let rec rebuild rose =
    let base =
      Sparql.Algebra.and_all (List.map Sparql.Algebra.triple rose.label)
    in
    List.fold_left
      (fun acc sub -> Sparql.Algebra.opt acc (rebuild sub))
      base rose.subs
  in
  rebuild (rose_of p)

let forest_of_algebra p =
  (match Sparql.Well_designed.check p with
  | Error v -> raise (Not_well_designed v)
  | Ok () -> ());
  if not (Sparql.Algebra.is_core p) then
    raise (Not_well_designed (Sparql.Well_designed.Beyond_core_fragment p));
  List.map
    (fun branch -> Pattern_tree.nr_normal_form (tree_of_rose (rose_of branch)))
    (Sparql.Well_designed.union_branches p)
