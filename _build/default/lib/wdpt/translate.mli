(** Translation between graph patterns and pattern trees/forests
    (Section 2.1): the polynomial-time computable function [wdpf].

    A UNION-free well-designed pattern is first rewritten into OPT normal
    form — conjunctions are pulled above OPT using the well-designedness
    rewriting [(P1 OPT P2) AND P3 ≡ (P1 AND P3) OPT P2] — which directly
    yields a pattern tree; the tree is then normalised to NR normal form.
    A general well-designed pattern is split at its top-level UNIONs, one
    tree per branch. *)

exception Not_well_designed of Sparql.Well_designed.violation

val tree_of_algebra : Sparql.Algebra.t -> Pattern_tree.t
(** For UNION-free well-designed patterns. The result is in NR normal
    form. Raises {!Not_well_designed} otherwise. *)

val forest_of_algebra : Sparql.Algebra.t -> Pattern_tree.t list
(** [wdpf(P)]. Raises {!Not_well_designed} if [P] is not well-designed. *)

val is_opt_normal_form : Sparql.Algebra.t -> bool
(** OPT normal form: [(…(Q OPT P1)… OPT Pn)] with [Q] an AND-of-triples
    and each [Pi] itself in OPT normal form (no UNION anywhere). *)

val opt_normal_form : Sparql.Algebra.t -> Sparql.Algebra.t
(** Rewrite a UNION-free well-designed pattern into an equivalent pattern
    in OPT normal form (the [17] rewriting the tree translation is built
    on). Raises {!Not_well_designed} otherwise. *)
