lib/workload/graph_families.ml: Graph Iri List Printf Random Rdf Sparql String Term Triple Variable
