lib/workload/graph_families.mli: Graph Rdf Sparql Term
