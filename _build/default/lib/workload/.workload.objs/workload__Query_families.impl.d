lib/workload/query_families.ml: Array List Printf Random Rdf Sparql Term Tgraph Tgraphs Triple Variable Wdpt
