lib/workload/query_families.mli: Rdf Sparql Tgraphs Variable Wdpt
