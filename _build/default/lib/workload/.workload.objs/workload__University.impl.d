lib/workload/university.ml: Graph Printf Random Rdf Term Triple
