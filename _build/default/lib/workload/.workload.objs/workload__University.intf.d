lib/workload/university.mli: Rdf
