open Rdf

let anchor = Term.iri "n:anchor"
let tnode i = Term.iri (Printf.sprintf "t:%d" i)
let r = Term.iri "p:r"
let p = Term.iri "p:p"

let mu_xy () =
  Sparql.Mapping.of_list
    [
      (Variable.of_string "x", Iri.of_string "n:anchor");
      (Variable.of_string "y", Iri.of_string "t:0");
    ]

let tournament_triples state n =
  let triples = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let src, dst = if Random.State.bool state then (i, j) else (j, i) in
      triples := Triple.make (tnode src) r (tnode dst) :: !triples
    done
  done;
  !triples

let tournament_instance ~seed ~n =
  let state = Random.State.make [| seed; n; 31337 |] in
  let triples = Triple.make anchor p (tnode 0) :: tournament_triples state n in
  (Graph.of_triples triples, mu_xy ())

let planted_instance ~seed ~n ~k =
  if k >= n then invalid_arg "Graph_families.planted_instance: k must be < n";
  let state = Random.State.make [| seed; n; k; 4242 |] in
  let triples = tournament_triples state n in
  (* overwrite the orientation inside the planted set {1..k} to be the
     transitive tournament 1 → 2 → … (node 0 reaches node 1 via r). *)
  let planted i = i >= 1 && i <= k in
  let keep t =
    match t.Triple.s, t.Triple.o with
    | Term.Iri s, Term.Iri o ->
        let num term =
          let str = Iri.to_string term in
          match String.index_opt str ':' with
          | Some idx ->
              int_of_string_opt
                (String.sub str (idx + 1) (String.length str - idx - 1))
          | None -> None
        in
        (match num s, num o with
        | Some a, Some b -> not (planted a && planted b)
        | _ -> true)
    | _ -> true
  in
  let base = List.filter keep triples in
  let clique = ref [] in
  for i = 1 to k do
    for j = i + 1 to k do
      clique := Triple.make (tnode i) r (tnode j) :: !clique
    done
  done;
  let link = Triple.make (tnode 0) r (tnode 1) in
  let triples =
    (Triple.make anchor p (tnode 0) :: link :: !clique) @ base
  in
  (Graph.of_triples triples, mu_xy ())

let cyclic_triangles_instance ~m =
  let node i j = Term.iri (Printf.sprintf "c:%d_%d" i j) in
  let triples = ref [ Triple.make anchor p (tnode 0) ] in
  for i = 0 to m - 1 do
    for j = 0 to 2 do
      triples := Triple.make (node i j) r (node i ((j + 1) mod 3)) :: !triples;
      (* node 0 reaches every cycle vertex, so the unary anchor constraint
         (?y, r, ?o1) prunes nothing and 2-consistency survives. *)
      triples := Triple.make (tnode 0) r (node i j) :: !triples
    done
  done;
  (Graph.of_triples !triples, mu_xy ())

let grid_host_instance ~seed ~rows ~cols ~extra =
  let state = Random.State.make [| seed; rows; cols; extra; 999 |] in
  let right = Term.iri "p:right"
  and down = Term.iri "p:down"
  and e = Term.iri "p:e" in
  let cell rr cc = Term.iri (Printf.sprintf "g:%d_%d" rr cc) in
  let triples = ref [ Triple.make anchor p (tnode 0); Triple.make (tnode 0) e (cell 0 0) ] in
  for rr = 0 to rows - 1 do
    for cc = 0 to cols - 1 do
      if cc + 1 < cols then
        triples := Triple.make (cell rr cc) right (cell rr (cc + 1)) :: !triples;
      if rr + 1 < rows then
        triples := Triple.make (cell rr cc) down (cell (rr + 1) cc) :: !triples
    done
  done;
  let noise_node () = tnode (1 + Random.State.int state (max 1 (rows * cols))) in
  for _ = 1 to extra do
    let pred = if Random.State.bool state then right else down in
    triples := Triple.make (noise_node ()) pred (noise_node ()) :: !triples
  done;
  (Graph.of_triples !triples, mu_xy ())
