(** Data generators matched to the query families, producing the
    [(graph, mapping)] instances the benchmark harness evaluates.

    The hard instances hide (or plant) a transitive tournament — the ground
    image of the clique pattern [K_k] — inside a random [r]-tournament:
    deciding whether the optional clique branch extends is then a
    clique-like search for the exact evaluator, while the pebble relaxation
    stays polynomial. *)

open Rdf

val anchor : Term.t
(** The IRI bound to [?x] in generated instances. *)

val tnode : int -> Term.t
(** The [i]-th tournament node IRI. *)

val tournament_instance :
  seed:int -> n:int -> Graph.t * Sparql.Mapping.t
(** A uniformly random [r]-tournament on [n] nodes, a [p]-edge from
    {!anchor} to node 0, and the mapping [{?x ↦ anchor, ?y ↦ node 0}].
    Random tournaments contain transitive subtournaments only of size
    ~[2·log₂ n], so for larger [k] the clique-branch test fails — after an
    exhaustive search. *)

val planted_instance :
  seed:int -> n:int -> k:int -> Graph.t * Sparql.Mapping.t
(** As {!tournament_instance}, but with a transitive tournament on [k]
    nodes planted (and reachable from node 0 via [r]), so the clique
    branch extends. *)

val cyclic_triangles_instance : m:int -> Graph.t * Sparql.Mapping.t
(** [m] disjoint directed [r]-3-cycles, each with one entry edge from node
    0. Contains {e no} transitive triangle, yet the pattern [K_3] is
    2-consistent with it — the canonical instance on which the existential
    2-pebble relaxation over-approximates: on
    [Query_families.clique_child 3] the exact evaluator accepts the
    mapping while the 2-pebble evaluator rejects it. Used by the
    relaxation-quality experiment (Prop. 3's bound is tight). *)

val grid_host_instance :
  seed:int -> rows:int -> cols:int -> extra:int -> Graph.t * Sparql.Mapping.t
(** An instance for {!Query_families.grid_query}: a ground [rows × cols]
    right/down grid reachable from node [?y]'s image via [e], plus [extra]
    random noise edges using the same predicates. *)
