open Rdf
open Tgraphs

let v name = Term.var name
let p name = Term.iri ("p:" ^ name)

let kk k names =
  if List.length names <> k then invalid_arg "Query_families.kk: arity mismatch";
  let arr = Array.of_list names in
  let triples = ref [] in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      triples := Triple.make (v arr.(i)) (p "r") (v arr.(j)) :: !triples
    done
  done;
  Tgraph.of_triples !triples

let o_names k = List.init k (fun i -> Printf.sprintf "o%d" (i + 1))

let f_k k =
  if k < 2 then invalid_arg "Query_families.f_k: k must be at least 2";
  let t_x_p_y = Triple.make (v "x") (p "p") (v "y") in
  let t_z_q_x = Triple.make (v "z") (p "q") (v "x") in
  let t1 =
    Wdpt.Pattern_tree.make
      ~labels:
        [|
          Tgraph.of_triples [ t_x_p_y ];
          (* n11 *)
          Tgraph.of_triples [ t_z_q_x ];
          (* n12 *)
          Tgraph.union
            (Tgraph.of_triples [ Triple.make (v "y") (p "r") (v "o1") ])
            (kk k (o_names k));
        |]
      ~parent:[| -1; 0; 0 |]
  in
  let t2 =
    Wdpt.Pattern_tree.make
      ~labels:
        [|
          Tgraph.of_triples [ t_x_p_y ];
          Tgraph.of_triples
            [ t_z_q_x; Triple.make (v "w") (p "q") (v "z") ];
        |]
      ~parent:[| -1; 0 |]
  in
  let t3 =
    Wdpt.Pattern_tree.make
      ~labels:
        [|
          Tgraph.of_triples [ t_x_p_y; t_z_q_x ];
          Tgraph.of_triples
            [
              Triple.make (v "y") (p "r") (v "o");
              Triple.make (v "o") (p "r") (v "o");
            ];
        |]
      ~parent:[| -1; 0 |]
  in
  [ t1; t2; t3 ]

let t_prime_k k =
  if k < 2 then invalid_arg "Query_families.t_prime_k: k must be at least 2";
  Wdpt.Pattern_tree.make
    ~labels:
      [|
        Tgraph.of_triples [ Triple.make (v "y") (p "r") (v "y") ];
        Tgraph.union
          (Tgraph.of_triples [ Triple.make (v "y") (p "r") (v "o1") ])
          (kk k (o_names k));
      |]
    ~parent:[| -1; 0 |]

let clique_child k =
  if k < 2 then invalid_arg "Query_families.clique_child: k must be at least 2";
  Wdpt.Pattern_tree.make
    ~labels:
      [|
        Tgraph.of_triples [ Triple.make (v "x") (p "p") (v "y") ];
        Tgraph.union
          (Tgraph.of_triples [ Triple.make (v "y") (p "r") (v "o1") ])
          (kk k (o_names k));
      |]
    ~parent:[| -1; 0 |]

let xi i = Printf.sprintf "x%d" i

let path_query n =
  if n < 1 then invalid_arg "Query_families.path_query: need at least one hop";
  let labels =
    Array.init n (fun i ->
        Tgraph.of_triples [ Triple.make (v (xi i)) (p "p") (v (xi (i + 1))) ])
  in
  let parent = Array.init n (fun i -> i - 1) in
  Wdpt.Pattern_tree.make ~labels ~parent

let star_query n =
  let labels =
    Array.init (n + 1) (fun i ->
        Tgraph.of_triples
          [ Triple.make (v "x") (p (Printf.sprintf "c%d" i)) (v (Printf.sprintf "y%d" i)) ])
  in
  let parent = Array.init (n + 1) (fun i -> if i = 0 then -1 else 0) in
  Wdpt.Pattern_tree.make ~labels ~parent

let comb_query n =
  if n < 1 then invalid_arg "Query_families.comb_query: need a positive spine";
  (* nodes: spine 0..n-1 (node ids 2i), teeth (ids 2i+1 hanging off spine i) *)
  let labels = Array.make (2 * n) Tgraph.empty in
  let parent = Array.make (2 * n) (-1) in
  for i = 0 to n - 1 do
    labels.(2 * i) <-
      Tgraph.of_triples [ Triple.make (v (xi i)) (p "p") (v (xi (i + 1))) ];
    parent.(2 * i) <- (if i = 0 then -1 else 2 * (i - 1));
    labels.((2 * i) + 1) <-
      Tgraph.of_triples
        [ Triple.make (v (xi i)) (p "t") (v (Printf.sprintf "tooth%d" i)) ];
    parent.((2 * i) + 1) <- 2 * i
  done;
  Wdpt.Pattern_tree.make ~labels ~parent

let grid_var r c = Variable.of_string (Printf.sprintf "g%d_%d" r c)

let grid_query ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Query_families.grid_query: empty grid";
  let gv r c = Term.Var (grid_var r c) in
  let triples = ref [ Triple.make (v "y") (p "e") (gv 0 0) ] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then
        triples := Triple.make (gv r c) (p "right") (gv r (c + 1)) :: !triples;
      if r + 1 < rows then
        triples := Triple.make (gv r c) (p "down") (gv (r + 1) c) :: !triples
    done
  done;
  Wdpt.Pattern_tree.make
    ~labels:
      [|
        Tgraph.of_triples [ Triple.make (v "x") (p "p") (v "y") ];
        Tgraph.of_triples !triples;
      |]
    ~parent:[| -1; 0 |]

let random_wd_pattern ~seed ~triples ~vars ~preds ~depth ~union =
  let state = Random.State.make [| seed; triples; vars; preds; depth; union |] in
  let counter = ref 0 in
  let fresh_var () =
    incr counter;
    Printf.sprintf "v%d" !counter
  in
  let pred () = p (Printf.sprintf "q%d" (Random.State.int state (max 1 preds))) in
  let constant () = Term.iri (Printf.sprintf "c:%d" (Random.State.int state 5)) in
  (* A node: a few triples over available ∪ locally-fresh variables. The
     variables handed to children are those actually used here, which keeps
     the result well-designed and variable-connected by construction. *)
  let rec node available budget depth_left =
    let node_triples = max 1 (min budget (1 + Random.State.int state 2)) in
    let local = ref available in
    let term () =
      let n_avail = List.length !local in
      let roll = Random.State.int state 10 in
      if (roll < 5 || !counter >= vars) && n_avail > 0 then
        v (List.nth !local (Random.State.int state n_avail))
      else if roll < 8 || n_avail = 0 then begin
        let name = fresh_var () in
        local := name :: !local;
        v name
      end
      else constant ()
    in
    let ts =
      List.init node_triples (fun _ ->
          Triple.make (term ()) (pred ()) (term ()))
    in
    let here = Sparql.Algebra.and_all (List.map Sparql.Algebra.triple ts) in
    let used_vars =
      List.concat_map (fun t -> Variable.Set.elements (Triple.vars t)) ts
      |> List.map Variable.to_string
      |> List.sort_uniq compare
    in
    let remaining = budget - node_triples in
    if remaining <= 0 || depth_left <= 0 then here
    else begin
      let n_children = 1 + Random.State.int state 2 in
      let rec attach acc budget_left n =
        if n = 0 || budget_left <= 0 then acc
        else begin
          let share = max 1 (budget_left / n) in
          let child = node used_vars share (depth_left - 1) in
          attach (Sparql.Algebra.opt acc child) (budget_left - share) (n - 1)
        end
      in
      attach here remaining n_children
    end
  in
  let branches =
    List.init (max 1 union) (fun _ ->
        node [] (max 1 (triples / max 1 union)) depth)
  in
  let pattern = Sparql.Algebra.union_all branches in
  assert (Sparql.Well_designed.is_well_designed pattern);
  pattern
