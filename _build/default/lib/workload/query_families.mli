(** Parameterised query families.

    The first two are the paper's own separating examples:
    - {!f_k} is the wdPF [F_k = {T1, T2, T3}] of Example 4 / Figure 2,
      with [dw(F_k) = 1] for every [k] (Example 5) while local
      tractability fails (node [n12] has local ctw [k − 1]);
    - {!t_prime_k} is the UNION-free family of Section 3.2 with
      [bw(T'_k) = 1] but local ctw [k − 1].

    The remaining families populate the width landscape (experiment T2)
    and the hardness-side benchmarks. *)

open Rdf

val kk : int -> string list -> Tgraphs.Tgraph.t
(** [kk k names]: the clique t-graph [K_k(?o1, …, ?ok) =
    {(?oi, r, ?oj) | i < j}] of Example 3, over the given variable names
    (length [k]). *)

val f_k : int -> Wdpt.Pattern_forest.t
(** Example 4's forest; requires [k ≥ 2]. *)

val t_prime_k : int -> Wdpt.Pattern_tree.t
(** Section 3.2's tree: root [{(?y, r, ?y)}], one child
    [{(?y, r, ?o1)} ∪ K_k]; requires [k ≥ 2]. *)

val clique_child : int -> Wdpt.Pattern_tree.t
(** Root [{(?x, p, ?y)}] with one child [{(?y, r, ?o1)} ∪ K_k]: branch
    treewidth [k − 1] — a family of {e unbounded} width, the hard side of
    the dichotomy. Requires [k ≥ 2]. *)

val path_query : int -> Wdpt.Pattern_tree.t
(** Root [(?x0, p, ?x1)], then a chain of [n − 1] nested optional hops
    [(?xi, p, ?x(i+1))]. Width 1. *)

val star_query : int -> Wdpt.Pattern_tree.t
(** Root [(?x, p:c0, ?y0)] with [n] independent optional branches
    [(?x, p:ci, ?yi)]. Width 1. *)

val comb_query : int -> Wdpt.Pattern_tree.t
(** A spine of optional hops, each spine node also carrying an optional
    tooth. Width 1, many subtrees — a stress test for the subtree
    machinery. *)

val grid_query : rows:int -> cols:int -> Wdpt.Pattern_tree.t
(** Root [{(?x, p, ?y)}] with one child connecting [?y] to a
    [rows × cols] grid of fresh variables with distinct [right]/[down]
    predicates (so the grid is a core). Branch treewidth
    [min rows cols] — the family instantiating the hardness reduction
    (Section 4.2). *)

val grid_var : int -> int -> Variable.t
(** The variable at grid coordinate [(r, c)] used by {!grid_query}. *)

val random_wd_pattern :
  seed:int -> triples:int -> vars:int -> preds:int -> depth:int ->
  union:int -> Sparql.Algebra.t
(** A random well-designed pattern: [union] UNION-free branches, each a
    random tree of OPT-nested AND blocks with [triples] triple patterns
    over [vars] variables and [preds] predicates, nesting up to [depth].
    Well-designedness is ensured by construction (fresh variables below
    OPT) and asserted. *)
