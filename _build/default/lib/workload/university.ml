open Rdf

let iri fmt = Printf.ksprintf Term.iri fmt
let p name = Term.iri ("u:" ^ name)
let cls name = Term.iri ("c:" ^ name)

let generate ~seed ~universities =
  let state = Random.State.make [| seed; universities; 60013 |] in
  let triples = ref [] in
  let add s pr o = triples := Triple.make s pr o :: !triples in
  let typ = p "type" in
  for u = 0 to universities - 1 do
    let uni = iri "uni:%d" u in
    add uni typ (cls "University");
    let departments = 3 + Random.State.int state 3 in
    for d = 0 to departments - 1 do
      let dept = iri "dept:%d_%d" u d in
      add dept typ (cls "Department");
      add dept (p "subOrgOf") uni;
      let professors = 4 + Random.State.int state 5 in
      let courses = 10 + Random.State.int state 5 in
      let students = 30 + Random.State.int state 20 in
      let course c = iri "course:%d_%d_%d" u d c in
      let professor f = iri "prof:%d_%d_%d" u d f in
      let student s = iri "student:%d_%d_%d" u d s in
      for c = 0 to courses - 1 do
        add (course c) typ (cls "Course")
      done;
      for f = 0 to professors - 1 do
        add (professor f) typ (cls "Professor");
        add (professor f) (p "worksFor") dept;
        let teaches = 1 + Random.State.int state 3 in
        for _ = 1 to teaches do
          add (professor f) (p "teacherOf") (course (Random.State.int state courses))
        done;
        if Random.State.int state 10 < 6 then
          add (professor f) (p "email") (iri "mailto:prof_%d_%d_%d" u d f)
      done;
      for s = 0 to students - 1 do
        add (student s) typ (cls "Student");
        add (student s) (p "memberOf") dept;
        add (student s) (p "advisor") (professor (Random.State.int state professors));
        let takes = 2 + Random.State.int state 4 in
        for _ = 1 to takes do
          add (student s) (p "takesCourse") (course (Random.State.int state courses))
        done
      done
    done
  done;
  Graph.of_triples !triples

let queries =
  [
    ( "advised-by-teacher",
      (* students taking a course taught by their own advisor *)
      "{ ?s u:advisor ?prof . ?s u:takesCourse ?c . ?prof u:teacherOf ?c }" );
    ( "professor-profile",
      "{ ?prof u:type c:Professor . ?prof u:worksFor ?dept . OPTIONAL { \
       ?prof u:email ?mail } OPTIONAL { ?prof u:teacherOf ?course } }" );
    ( "department-roster",
      "{ ?dept u:subOrgOf ?uni . OPTIONAL { ?prof u:worksFor ?dept . \
       OPTIONAL { ?prof u:email ?mail } } }" );
    ( "classmates",
      "{ ?s1 u:takesCourse ?c . ?s2 u:takesCourse ?c . OPTIONAL { ?s1 \
       u:advisor ?a1 } }" );
    ( "teaching-or-advising",
      "{ ?prof u:teacherOf ?c . ?s u:takesCourse ?c } UNION { ?s \
       u:advisor ?prof . }" );
    ( "student-transcript",
      "{ ?s u:type c:Student . ?s u:memberOf ?dept . OPTIONAL { ?s \
       u:takesCourse ?c . OPTIONAL { ?teacher u:teacherOf ?c } } OPTIONAL \
       { ?s u:advisor ?adv . OPTIONAL { ?adv u:email ?am } } }" );
  ]
