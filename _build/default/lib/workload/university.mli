(** A LUBM-flavoured university benchmark workload: a deterministic
    generator for department/professor/student/course data and a set of
    realistic queries in the AND/OPT/UNION fragment, used by the realistic
    workload experiment (bench T7) and as example input.

    Predicates: [u:type], [u:subOrgOf], [u:worksFor], [u:memberOf],
    [u:teacherOf], [u:takesCourse], [u:advisor], [u:email].
    Classes: [c:University], [c:Department], [c:Professor], [c:Student],
    [c:Course]. *)

val generate : seed:int -> universities:int -> Rdf.Graph.t
(** Each university has ~4 departments; each department ~6 professors,
    ~40 students, ~12 courses. Professors teach 1–3 courses and advise a
    subset of students; students take 2–5 courses; about 60% of
    professors publish an email. *)

val queries : (string * string) list
(** Named query sources (parse with {!Sparql.Parser}); all well-designed,
    all of domination width 1 — the workload a practitioner would
    actually run, sitting squarely on the tractable side of the
    frontier. *)
