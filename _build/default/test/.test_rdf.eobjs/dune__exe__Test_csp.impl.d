test/test_csp.ml: Alcotest Consistency Core_of Csp Graphtheory Hom List Of_tgraph Pebble QCheck QCheck_alcotest Random Rdf Structure Testutil Tgraphs
