test/test_filters.ml: Alcotest Algebra Condition Eval Graph Iri Mapping Option Parser Printer QCheck QCheck_alcotest Rdf Sparql Term Testutil Triple Variable Wd_core Wdpt Well_designed
