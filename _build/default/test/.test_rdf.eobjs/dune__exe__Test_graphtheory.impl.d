test/test_graphtheory.ml: Alcotest Components Graphtheory Grid Minor QCheck QCheck_alcotest Testutil Tree_decomposition Treewidth Ugraph
