test/test_graphtheory.mli:
