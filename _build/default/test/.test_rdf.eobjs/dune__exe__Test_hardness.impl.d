test/test_hardness.ml: Alcotest Clique Graphtheory Grohe Hardness List QCheck QCheck_alcotest Rdf Reduction Sparql Testutil Tgraphs Ugraph Wdpt Workload
