test/test_integration.ml: Alcotest Fmt Graph Iri Option Rdf Sparql String Term Testutil Triple Turtle Variable Wd_core Wdpt
