test/test_pebble.ml: Alcotest Cores Generator Graph Gtgraph Iri List Pebble Pebble_game QCheck QCheck_alcotest Random Rdf Term Testutil Tgraph Tgraphs Triple Variable
