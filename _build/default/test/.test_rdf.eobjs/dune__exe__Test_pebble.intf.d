test/test_pebble.mli:
