test/test_properties.ml: Alcotest Graph Graphtheory Hardness Iri List Pebble QCheck QCheck_alcotest Random Rdf Sparql Term Testutil Tgraphs Treewidth Ugraph Variable Wd_core Wdpt
