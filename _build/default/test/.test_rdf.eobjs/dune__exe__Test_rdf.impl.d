test/test_rdf.ml: Alcotest Fmt Generator Graph Index Iri List Literal Ntriples Option QCheck QCheck_alcotest Rdf Sparql Term Testutil Triple Turtle Variable
