test/test_sparql.ml: Alcotest Algebra Eval Graph Iri List Mapping Option Parser Printer QCheck QCheck_alcotest Rdf Sparql Term Testutil Triple Variable Well_designed
