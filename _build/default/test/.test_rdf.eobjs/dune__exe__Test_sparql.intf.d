test/test_sparql.mli:
