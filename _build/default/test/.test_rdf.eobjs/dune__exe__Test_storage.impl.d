test/test_storage.ml: Alcotest Encoded Fmt Generator Graph Iri List Ntriples Option QCheck QCheck_alcotest Rdf Sparql Stats String Term Testutil Tgraphs Triple Variable Wd_core Wdpt Workload
