test/test_tgraphs.ml: Alcotest Cores Generator Graph Gtgraph Homomorphism Iri List Pebble Printf QCheck QCheck_alcotest Random Rdf Td_hom Term Testutil Tgraph Tgraphs Triple Variable Workload
