test/test_tgraphs.mli:
