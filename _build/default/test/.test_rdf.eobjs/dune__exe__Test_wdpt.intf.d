test/test_wdpt.mli:
