test/test_workload.ml: Alcotest Graph Graph_families List QCheck QCheck_alcotest Query_families Rdf Sparql Term Testutil Tgraphs Triple University Wd_core Wdpt Workload
