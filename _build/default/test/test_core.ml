open Wd_core
open Workload

let check = Alcotest.check

let qcheck ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let parse = Sparql.Parser.parse_exn

(* ------------------------------------------------------------------ *)
(* Branch treewidth (Definition 3, Section 3.2)                        *)
(* ------------------------------------------------------------------ *)

let test_bw_families () =
  List.iter
    (fun k ->
      check Alcotest.int
        (Printf.sprintf "bw(T'_%d) = 1" k)
        1
        (Branch_treewidth.of_tree (Query_families.t_prime_k k));
      check Alcotest.int
        (Printf.sprintf "bw(clique_child %d) = k-1" k)
        (k - 1)
        (Branch_treewidth.of_tree (Query_families.clique_child k)))
    [ 2; 3; 4; 5 ];
  check Alcotest.int "bw(path) = 1" 1
    (Branch_treewidth.of_tree (Query_families.path_query 5));
  check Alcotest.int "bw(star) = 1" 1
    (Branch_treewidth.of_tree (Query_families.star_query 5));
  check Alcotest.int "bw(comb) = 1" 1
    (Branch_treewidth.of_tree (Query_families.comb_query 4));
  check Alcotest.int "bw(grid 3x4) = 3" 3
    (Branch_treewidth.of_tree (Query_families.grid_query ~rows:3 ~cols:4))

let test_bw_root_rejected () =
  let tree = Query_families.t_prime_k 2 in
  Alcotest.check_raises "root has no branch"
    (Invalid_argument "Branch_treewidth.branch_gtgraph: the root has no branch")
    (fun () -> ignore (Branch_treewidth.branch_gtgraph tree 0))

let test_bw_of_pattern () =
  check Alcotest.int "parsed pattern" 1
    (Branch_treewidth.of_pattern
       (parse "{ ?x p:a ?y . OPTIONAL { ?y p:b ?z } }"))

(* ------------------------------------------------------------------ *)
(* Local tractability                                                  *)
(* ------------------------------------------------------------------ *)

let test_local_tractability () =
  List.iter
    (fun k ->
      check Alcotest.int
        (Printf.sprintf "lt(T'_%d) = k-1" k)
        (k - 1)
        (Local_tractability.width_of_tree (Query_families.t_prime_k k));
      check Alcotest.int
        (Printf.sprintf "lt(F_%d) = k-1" k)
        (k - 1)
        (Local_tractability.width_of_forest (Query_families.f_k k)))
    [ 2; 3; 4; 5 ];
  check Alcotest.int "lt(path) = 1" 1
    (Local_tractability.width_of_tree (Query_families.path_query 4))

(* ------------------------------------------------------------------ *)
(* Domination width (Definitions 1-2, Example 5)                       *)
(* ------------------------------------------------------------------ *)

let test_example5 () =
  (* dw(F_k) = 1 for every k: bounded domination width despite local
     intractability *)
  List.iter
    (fun k ->
      check Alcotest.int (Printf.sprintf "dw(F_%d) = 1" k) 1
        (Domination_width.of_forest (Query_families.f_k k)))
    [ 2; 3; 4; 5 ]

let test_dw_families () =
  List.iter
    (fun k ->
      check Alcotest.int "dw(T'_k) = 1" 1
        (Domination_width.of_forest [ Query_families.t_prime_k k ]);
      check Alcotest.int "dw(clique_child) = k-1" (k - 1)
        (Domination_width.of_forest [ Query_families.clique_child k ]))
    [ 2; 3; 4 ];
  check Alcotest.int "dw(grid 2x3) = 2" 2
    (Domination_width.of_forest [ Query_families.grid_query ~rows:2 ~cols:3 ])

let test_domination_level () =
  check Alcotest.int "empty family" 1 (Domination_width.domination_level []);
  check Alcotest.bool "empty always dominated" true
    (Domination_width.dominated_at [] 1)

let test_profile () =
  let forest = Query_families.f_k 3 in
  let profile = Domination_width.profile forest in
  (* subtrees: T1 has 4, T2 and T3 have 2 each *)
  check Alcotest.int "profiled subtrees" 8 (List.length profile);
  List.iter
    (fun entry ->
      check Alcotest.bool "level <= 1 everywhere for F_k" true
        (entry.Domination_width.level <= 1))
    profile;
  (* the root subtree of T1 exhibits non-trivial domination: its GtG
     contains a member of ctw 2 dominated by one of ctw 1 *)
  let root_entry =
    List.find
      (fun e ->
        e.Domination_width.tree_index = 0
        && e.Domination_width.subtree_members = [ 0 ])
      profile
  in
  check Alcotest.(list int) "ctws of GtG(T1[r1])" [ 1; 2 ]
    (List.sort compare root_entry.Domination_width.gtg_ctws)

(* Proposition 5: dw = bw on UNION-free patterns. *)
let prop5 =
  qcheck ~count:60 "Prop 5: dw = bw for UNION-free patterns"
    Testutil.union_free_wd_pattern (fun p ->
      match Wdpt.Pattern_forest.of_algebra p with
      | [ tree ] ->
          Domination_width.of_forest [ tree ] = Branch_treewidth.of_tree tree
      | _ -> false)

(* Local tractability implies bounded domination width (discussion after
   Theorem 1): dw <= lt always. *)
let lt_bounds_dw =
  qcheck ~count:60 "dw <= local-tractability width"
    Testutil.wd_pattern (fun p ->
      let forest = Wdpt.Pattern_forest.of_algebra p in
      Domination_width.of_forest forest
      <= Local_tractability.width_of_forest forest)

(* ------------------------------------------------------------------ *)
(* Evaluators: Theorem 1                                               *)
(* ------------------------------------------------------------------ *)

let test_pebble_eval_validation () =
  Alcotest.check_raises "k >= 1"
    (Invalid_argument "Pebble_eval.check: k must be at least 1") (fun () ->
      ignore
        (Pebble_eval.check ~k:0
           (Query_families.f_k 2)
           Rdf.Graph.empty Sparql.Mapping.empty))

let test_f_k_evaluators_agree () =
  let forest = Query_families.f_k 4 in
  List.iter
    (fun seed ->
      let g, mu = Graph_families.tournament_instance ~seed ~n:16 in
      check Alcotest.bool "tournament agreement" (Naive_eval.check forest g mu)
        (Pebble_eval.check ~k:1 forest g mu);
      let g, mu = Graph_families.planted_instance ~seed ~n:16 ~k:4 in
      check Alcotest.bool "planted agreement" (Naive_eval.check forest g mu)
        (Pebble_eval.check ~k:1 forest g mu))
    [ 1; 2; 3; 4; 5 ]

let test_frontier_disagreement () =
  (* clique_child 3 has dw = 2 > 1: on the fooling instance the 2-pebble
     algorithm is incomplete, and becomes exact at k = dw *)
  let forest = [ Query_families.clique_child 3 ] in
  let g, mu = Graph_families.cyclic_triangles_instance ~m:3 in
  check Alcotest.bool "naive accepts" true (Naive_eval.check forest g mu);
  check Alcotest.bool "2 pebbles incomplete" false (Pebble_eval.check ~k:1 forest g mu);
  check Alcotest.bool "3 pebbles exact" true (Pebble_eval.check ~k:2 forest g mu);
  check Alcotest.bool "check_auto picks the right k" true
    (Pebble_eval.check_auto forest g mu)

let evaluators_agree_on_random =
  qcheck ~count:50 "algebra = naive = pebble(dw) on random instances"
    (QCheck.make QCheck.Gen.(int_bound 100000))
    (fun seed ->
      let p = Testutil.wd_pattern_of_seed ~triples:5 seed in
      let forest = Wdpt.Pattern_forest.of_algebra p in
      let g = Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:10 (seed + 13) in
      let dw = Domination_width.of_forest forest in
      List.for_all
        (fun i ->
          let mu = Testutil.mapping_for p g (seed + i) in
          let reference = Sparql.Eval.check p g mu in
          Naive_eval.check forest g mu = reference
          && Pebble_eval.check ~k:dw forest g mu = reference)
        [ 1; 2; 3 ])

(* The td-guided evaluator's inner test is exact, so it must equal the
   naive evaluator on every instance. *)
let td_eval_equals_naive =
  qcheck ~count:50 "td-guided evaluator = naive evaluator"
    (QCheck.make QCheck.Gen.(int_bound 100000))
    (fun seed ->
      let p = Testutil.wd_pattern_of_seed ~triples:5 seed in
      let forest = Wdpt.Pattern_forest.of_algebra p in
      let g = Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:10 (seed + 23) in
      List.for_all
        (fun i ->
          let mu = Testutil.mapping_for p g (seed + i) in
          Td_eval.check forest g mu = Naive_eval.check forest g mu)
        [ 1; 2; 3 ])

let test_td_eval_families () =
  let forest = Query_families.f_k 3 in
  List.iter
    (fun seed ->
      let g, mu = Graph_families.tournament_instance ~seed ~n:10 in
      check Alcotest.bool "F_3 agreement" (Naive_eval.check forest g mu)
        (Td_eval.check forest g mu))
    [ 1; 2; 3 ];
  (* td is exact even where pebble(2) is fooled *)
  let cc3 = [ Query_families.clique_child 3 ] in
  let g, mu = Graph_families.cyclic_triangles_instance ~m:3 in
  check Alcotest.bool "exact on the fooling instance" true (Td_eval.check cc3 g mu)

(* Soundness of the pebble algorithm holds for ANY k (Theorem 1's proof):
   accepting implies true membership. *)
let pebble_soundness_any_k =
  qcheck ~count:50 "pebble eval is sound even below the dw bound"
    (QCheck.make QCheck.Gen.(int_bound 100000))
    (fun seed ->
      let p = Testutil.wd_pattern_of_seed ~triples:5 seed in
      let forest = Wdpt.Pattern_forest.of_algebra p in
      let g = Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:10 (seed + 17) in
      List.for_all
        (fun i ->
          let mu = Testutil.mapping_for p g (seed + i) in
          (not (Pebble_eval.check ~k:1 forest g mu)) || Naive_eval.check forest g mu)
        [ 1; 2; 3 ])

let test_pebble_solutions () =
  let forest = Query_families.f_k 2 in
  let g, _ = Graph_families.planted_instance ~seed:3 ~n:8 ~k:2 in
  let expected = Wdpt.Semantics.solutions forest g in
  let got = Pebble_eval.solutions ~k:1 forest g in
  check Testutil.mapping_set "solution sets agree" expected got

(* ------------------------------------------------------------------ *)
(* Classify                                                            *)
(* ------------------------------------------------------------------ *)

let test_classify () =
  let c = Classify.classify (Wdpt.Pattern_forest.to_algebra (Query_families.f_k 4)) in
  check Alcotest.bool "wd" true c.Classify.well_designed;
  check Alcotest.bool "not union free" false c.Classify.union_free;
  check Alcotest.int "trees" 3 c.Classify.trees;
  check Alcotest.(option int) "dw" (Some 1) c.Classify.domination_width;
  check Alcotest.(option int) "bw only for union-free" None c.Classify.branch_treewidth;
  check Alcotest.(option int) "lt" (Some 3) c.Classify.local_width;
  (match c.Classify.regime with
  | Classify.Ptime 1 -> ()
  | _ -> Alcotest.fail "expected Ptime 1");
  let c2 =
    Classify.classify
      (Wdpt.Pattern_tree.to_algebra (Query_families.clique_child 6))
  in
  (match c2.Classify.regime with
  | Classify.Intractable_frontier 5 -> ()
  | _ -> Alcotest.fail "expected frontier at dw = 5");
  check Alcotest.(option int) "bw present" (Some 5) c2.Classify.branch_treewidth;
  let c3 =
    Classify.classify
      (parse
         "{ { ?x p:p ?y . OPTIONAL { ?z p:q ?x } } OPTIONAL { ?y p:r ?z . ?z p:r ?o } }")
  in
  check Alcotest.bool "not wd" false c3.Classify.well_designed;
  (match c3.Classify.regime with
  | Classify.Not_well_designed -> ()
  | _ -> Alcotest.fail "expected Not_well_designed")

let () =
  Alcotest.run "wd_core"
    [
      ( "branch treewidth",
        [
          Alcotest.test_case "families" `Quick test_bw_families;
          Alcotest.test_case "root rejected" `Quick test_bw_root_rejected;
          Alcotest.test_case "of_pattern" `Quick test_bw_of_pattern;
        ] );
      ( "local tractability",
        [ Alcotest.test_case "families" `Quick test_local_tractability ] );
      ( "domination width",
        [
          Alcotest.test_case "paper example 5" `Quick test_example5;
          Alcotest.test_case "families" `Quick test_dw_families;
          Alcotest.test_case "empty family" `Quick test_domination_level;
          Alcotest.test_case "profile" `Quick test_profile;
          prop5;
          lt_bounds_dw;
        ] );
      ( "evaluation",
        [
          Alcotest.test_case "validation" `Quick test_pebble_eval_validation;
          Alcotest.test_case "F_4 agreement" `Quick test_f_k_evaluators_agree;
          Alcotest.test_case "frontier disagreement" `Quick test_frontier_disagreement;
          Alcotest.test_case "pebble solutions" `Quick test_pebble_solutions;
          Alcotest.test_case "td-eval families" `Quick test_td_eval_families;
          evaluators_agree_on_random;
          pebble_soundness_any_k;
          td_eval_equals_naive;
        ] );
      ("classify", [ Alcotest.test_case "classify" `Quick test_classify ]);
    ]
