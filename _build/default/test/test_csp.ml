(* Tests for the relational-structure (CSP) layer, including
   cross-validation against the t-graph implementations through the
   Of_tgraph encoding — two independent code paths for homomorphisms,
   cores, and the pebble game must agree. *)

open Csp

let check = Alcotest.check

let qcheck ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let seed_arb = QCheck.make QCheck.Gen.(int_bound 100000)

(* directed graph as a structure with one binary relation *)
let digraph ?distinguished n edges =
  Structure.make ~size:n
    ~relations:[ ("e", List.map (fun (a, b) -> [| a; b |]) edges) ]
    ?distinguished ()

let cycle n = digraph n (List.init n (fun i -> (i, (i + 1) mod n)))

let clique n =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then edges := (i, j) :: !edges
    done
  done;
  digraph n !edges

(* ------------------------------------------------------------------ *)
(* Structure basics                                                    *)
(* ------------------------------------------------------------------ *)

let test_structure_basics () =
  let s =
    Structure.make ~size:3
      ~relations:[ ("r", [ [| 0; 1 |]; [| 0; 1 |]; [| 1; 2 |] ]); ("u", [ [| 0 |] ]) ]
      ~distinguished:[ 2 ] ()
  in
  check Alcotest.int "size" 3 (Structure.size s);
  check Alcotest.(list string) "relations" [ "r"; "u" ] (Structure.relation_names s);
  check Alcotest.(option int) "arity" (Some 2) (Structure.arity s "r");
  check Alcotest.int "duplicates dropped" 2 (List.length (Structure.tuples s "r"));
  check Alcotest.int "total" 3 (Structure.total_tuples s);
  check Alcotest.bool "mem" true (Structure.mem s "r" [| 0; 1 |]);
  check Alcotest.bool "not mem" false (Structure.mem s "r" [| 1; 0 |]);
  check Alcotest.int "masked lookup" 1
    (List.length (Structure.tuples_matching s "r" [| Some 0; None |]));
  Alcotest.check_raises "range check"
    (Invalid_argument "Structure.make: element out of range in r") (fun () ->
      ignore (Structure.make ~size:2 ~relations:[ ("r", [ [| 0; 5 |] ]) ] ()))

let test_structure_gaifman () =
  (* path a-b-c with c distinguished: Gaifman on {a, b} has one edge *)
  let s = digraph ~distinguished:[ 2 ] 3 [ (0, 1); (1, 2) ] in
  let g = Structure.gaifman s in
  check Alcotest.int "two vertices" 2 (Graphtheory.Ugraph.n g);
  check Alcotest.int "one edge" 1 (Graphtheory.Ugraph.m g);
  check Alcotest.int "structure tw" 1 (Structure.treewidth s);
  (* higher-arity tuples create cliques in the Gaifman graph *)
  let s4 =
    Structure.make ~size:4 ~relations:[ ("q", [ [| 0; 1; 2; 3 |] ]) ] ()
  in
  check Alcotest.int "4-tuple -> K4 -> tw 3" 3 (Structure.treewidth s4)

(* ------------------------------------------------------------------ *)
(* Homomorphisms                                                       *)
(* ------------------------------------------------------------------ *)

let test_hom_classics () =
  (* an even cycle maps onto a single edge-pair (2-colourability) *)
  let k2 = digraph 2 [ (0, 1); (1, 0) ] in
  check Alcotest.bool "C4 -> K2" true (Hom.exists (cycle 4) k2);
  check Alcotest.bool "C5 -/-> K2" false (Hom.exists (cycle 5) k2);
  (* cycles map into cliques, not conversely *)
  check Alcotest.bool "C5 -> K3" true (Hom.exists (cycle 5) (clique 3));
  check Alcotest.bool "K3 -/-> C5" false (Hom.exists (clique 3) (cycle 5));
  (* counting: homs from a single edge into K3 = ordered pairs = 6 *)
  check Alcotest.int "edge into K3" 6 (Hom.count (digraph 2 [ (0, 1) ]) (clique 3))

let test_hom_distinguished () =
  (* path 0->1 with 0 distinguished must start at the target's mark *)
  let src = digraph ~distinguished:[ 0 ] 2 [ (0, 1) ] in
  let tgt_ok = digraph ~distinguished:[ 0 ] 3 [ (0, 1); (1, 2) ] in
  let tgt_bad = digraph ~distinguished:[ 2 ] 3 [ (0, 1); (1, 2) ] in
  check Alcotest.bool "anchored ok" true (Hom.exists src tgt_ok);
  check Alcotest.bool "anchored at sink" false (Hom.exists src tgt_bad);
  Alcotest.check_raises "arity mismatch rejected"
    (Invalid_argument "Csp.Hom: arity mismatch on e") (fun () ->
      ignore
        (Hom.exists src
           (Structure.make ~size:1 ~relations:[ ("e", [ [| 0; 0; 0 |] ]) ]
              ~distinguished:[ 0 ] ())))

let test_hom_isolated_elements () =
  (* an element in no tuple can map anywhere: count multiplies by |B| *)
  let src = Structure.make ~size:2 ~relations:[ ("e", [ [| 0; 0 |] ]) ] () in
  let tgt = digraph 3 [ (0, 0); (1, 1) ] in
  (* 0 can go to the two loops; the isolated 1 anywhere among 3 *)
  check Alcotest.int "isolated multiplies" 6 (Hom.count src tgt)

let found_homs_verify =
  qcheck ~count:100 "found homomorphisms verify" (QCheck.pair seed_arb seed_arb)
    (fun (s1, s2) ->
      let random_structure seed =
        let state = Random.State.make [| seed; 97 |] in
        let n = 2 + Random.State.int state 3 in
        let m = Random.State.int state 6 in
        digraph n
          (List.init m (fun _ ->
               (Random.State.int state n, Random.State.int state n)))
      in
      let a = random_structure s1 and b = random_structure s2 in
      match Hom.find a b with
      | Some h -> Hom.is_homomorphism a b h
      | None -> true)

(* ------------------------------------------------------------------ *)
(* Cores                                                               *)
(* ------------------------------------------------------------------ *)

let test_core_classics () =
  (* directed cycles are cores (their only endomorphisms are rotations) —
     even though C4 maps homomorphically ONTO the 2-cycle, nothing maps
     back *)
  check Alcotest.bool "directed C4 is a core" true (Core_of.is_core (cycle 4));
  check Alcotest.bool "C5 is a core" true (Core_of.is_core (cycle 5));
  check Alcotest.bool "K3 is a core" true (Core_of.is_core (clique 3));
  (* disjoint union of K2 and C4 retracts to K2 *)
  let k2 = digraph 2 [ (0, 1); (1, 0) ] in
  let union =
    let shifted = Structure.rename_apart (cycle 4) ~offset:2 in
    Structure.make ~size:6
      ~relations:
        [ ("e", Structure.tuples k2 "e" @ Structure.tuples shifted "e") ]
      ()
  in
  check Alcotest.int "union core" 2 (Structure.size (Core_of.core union))

let core_laws =
  qcheck ~count:60 "structure core laws" seed_arb (fun seed ->
      let state = Random.State.make [| seed; 11 |] in
      let n = 2 + Random.State.int state 3 in
      let m = 1 + Random.State.int state 6 in
      let a =
        digraph n
          (List.init m (fun _ ->
               (Random.State.int state n, Random.State.int state n)))
      in
      let core = Core_of.core a in
      Core_of.is_core core && Hom.exists a core && Hom.exists core a)

(* ------------------------------------------------------------------ *)
(* k-consistency                                                       *)
(* ------------------------------------------------------------------ *)

let test_consistency_classics () =
  (* the transitive-triangle-vs-C3 classic, at the structure level *)
  let t3 = digraph 3 [ (0, 1); (0, 2); (1, 2) ] in
  check Alcotest.bool "no hom" false (Hom.exists t3 (cycle 3));
  check Alcotest.bool "2 pebbles fooled" true
    (Consistency.duplicator_wins ~k:2 t3 (cycle 3));
  check Alcotest.bool "3 pebbles exact" false
    (Consistency.duplicator_wins ~k:3 t3 (cycle 3));
  (* hom implies win *)
  check Alcotest.bool "C5 -> K3 win" true
    (Consistency.duplicator_wins ~k:2 (cycle 5) (clique 3))

let consistency_sound =
  qcheck ~count:60 "hom implies duplicator win (structures)"
    (QCheck.pair seed_arb seed_arb) (fun (s1, s2) ->
      let rand seed =
        let state = Random.State.make [| seed; 13 |] in
        let n = 2 + Random.State.int state 3 in
        digraph n
          (List.init (Random.State.int state 6) (fun _ ->
               (Random.State.int state n, Random.State.int state n)))
      in
      let a = rand s1 and b = rand s2 in
      (not (Hom.exists a b)) || Consistency.duplicator_wins ~k:2 a b)

(* ------------------------------------------------------------------ *)
(* Cross-validation with the t-graph layer                             *)
(* ------------------------------------------------------------------ *)

let gtgraph_hom_agrees =
  qcheck ~count:100 "structure hom = t-graph hom (Of_tgraph encoding)"
    (QCheck.pair seed_arb seed_arb) (fun (s1, s2) ->
      let a0 = Testutil.gtgraph_of_seed ~triples:3 ~vars:3 s1 in
      let b0 = Testutil.gtgraph_of_seed ~triples:3 ~vars:3 s2 in
      (* align X sets: use the intersection as X on both sides *)
      let x =
        Rdf.Variable.Set.inter
          (Tgraphs.Tgraph.vars (Tgraphs.Gtgraph.s a0))
          (Tgraphs.Tgraph.vars (Tgraphs.Gtgraph.s b0))
      in
      let a = Tgraphs.Gtgraph.make (Tgraphs.Gtgraph.s a0) x in
      let b = Tgraphs.Gtgraph.make (Tgraphs.Gtgraph.s b0) x in
      let sa, sb = Of_tgraph.hom_instance a b in
      Hom.exists sa sb = Tgraphs.Gtgraph.maps_to a b)

let gtgraph_ctw_agrees =
  qcheck ~count:60 "structure core treewidth = ctw" seed_arb (fun seed ->
      let g = Testutil.gtgraph_of_seed ~triples:4 ~vars:4 seed in
      let s, _ = Of_tgraph.hom_instance g g in
      Core_of.core_treewidth s = Tgraphs.Cores.ctw g)

let pebble_game_agrees =
  qcheck ~count:50 "structure k-consistency = t-graph pebble game"
    seed_arb (fun seed ->
      let g = Testutil.gtgraph_of_seed ~triples:3 ~vars:3 seed in
      let graph = Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:8 (seed + 3) in
      if Rdf.Iri.Set.is_empty (Rdf.Graph.dom graph) then true
      else begin
        let iris = Rdf.Iri.Set.elements (Rdf.Graph.dom graph) in
        let state = Random.State.make [| seed; 5 |] in
        let mu =
          Rdf.Variable.Set.fold
            (fun var acc ->
              Rdf.Variable.Map.add var
                (Rdf.Term.Iri
                   (List.nth iris (Random.State.int state (List.length iris))))
                acc)
            (Tgraphs.Gtgraph.x g) Rdf.Variable.Map.empty
        in
        let sa, sb = Of_tgraph.graph_instance g ~mu graph in
        Consistency.duplicator_wins ~k:2 sa sb
        = Pebble.Pebble_game.wins ~k:2 g ~mu graph
      end)

let () =
  Alcotest.run "csp"
    [
      ( "structure",
        [
          Alcotest.test_case "basics" `Quick test_structure_basics;
          Alcotest.test_case "gaifman/treewidth" `Quick test_structure_gaifman;
        ] );
      ( "homomorphism",
        [
          Alcotest.test_case "classics" `Quick test_hom_classics;
          Alcotest.test_case "distinguished" `Quick test_hom_distinguished;
          Alcotest.test_case "isolated elements" `Quick test_hom_isolated_elements;
          found_homs_verify;
        ] );
      ( "cores",
        [ Alcotest.test_case "classics" `Quick test_core_classics; core_laws ] );
      ( "consistency",
        [
          Alcotest.test_case "classics" `Quick test_consistency_classics;
          consistency_sound;
        ] );
      ( "cross-validation",
        [ gtgraph_hom_agrees; gtgraph_ctw_agrees; pebble_game_agrees ] );
    ]
