(* Tests for the extension layer: ablation knobs, dictionary encoding,
   OPT normal form, mapping subsumption, containment, the optimised
   enumerator, the engine facade, and the second treewidth algorithm. *)

open Rdf

let check = Alcotest.check

let qcheck ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let seed_arb = QCheck.make QCheck.Gen.(int_bound 100000)

(* ------------------------------------------------------------------ *)
(* Ablation knobs never change results                                 *)
(* ------------------------------------------------------------------ *)

let scan_equals_indexed =
  qcheck ~count:80 "matching_scan = matching" Testutil.small_graph (fun g ->
      let idx = Graph.to_index g in
      let norm l = List.sort Triple.compare l in
      let subjects = Rdf.Index.subjects idx in
      let probe ?s ?p ?o () =
        norm (Rdf.Index.matching idx ?s ?p ?o ())
        = norm (Rdf.Index.matching_scan idx ?s ?p ?o ())
      in
      probe ()
      && List.for_all (fun s -> probe ~s ()) subjects
      && List.for_all
           (fun p -> probe ~p ())
           (Rdf.Index.predicates idx))

let strategies_agree =
  qcheck ~count:120 "hom solver: strategy/indexing do not change answers"
    seed_arb (fun seed ->
      let source = Testutil.tgraph_of_seed ~triples:3 ~vars:3 seed in
      let target =
        Graph.to_index (Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:8 (seed + 1))
      in
      let reference = Tgraphs.Homomorphism.count ~source ~target () in
      Tgraphs.Homomorphism.count ~strategy:`Static ~source ~target () = reference
      && Tgraphs.Homomorphism.count ~use_index:false ~source ~target () = reference
      && Tgraphs.Homomorphism.count ~strategy:`Static ~use_index:false ~source
           ~target ()
         = reference)

let pebble_pruning_agrees =
  qcheck ~count:60 "pebble game: unary pruning does not change the winner"
    seed_arb (fun seed ->
      let g = Testutil.gtgraph_of_seed ~triples:3 ~vars:3 seed in
      let graph = Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:8 (seed + 3) in
      if Iri.Set.is_empty (Graph.dom graph) then true
      else begin
        let iris = Iri.Set.elements (Graph.dom graph) in
        let state = Random.State.make [| seed; 5 |] in
        let mu =
          Variable.Set.fold
            (fun var acc ->
              Variable.Map.add var
                (Term.Iri (List.nth iris (Random.State.int state (List.length iris))))
                acc)
            (Tgraphs.Gtgraph.x g) Variable.Map.empty
        in
        Pebble.Pebble_game.wins ~k:2 g ~mu graph
        = Pebble.Pebble_game.wins ~prune_unary:false ~k:2 g ~mu graph
      end)

(* ------------------------------------------------------------------ *)
(* Dictionary                                                          *)
(* ------------------------------------------------------------------ *)

let test_dictionary () =
  let d = Dictionary.create () in
  let a = Dictionary.intern d (Term.iri "n:a") in
  let b = Dictionary.intern d (Term.iri "n:b") in
  let a' = Dictionary.intern d (Term.iri "n:a") in
  check Alcotest.int "stable ids" a a';
  check Alcotest.bool "distinct ids" true (a <> b);
  check Alcotest.int "size" 2 (Dictionary.size d);
  check Alcotest.bool "term_of inverts" true
    (Term.equal (Term.iri "n:b") (Dictionary.term_of d b));
  check Alcotest.(option int) "find hit" (Some a) (Dictionary.find d (Term.iri "n:a"));
  check Alcotest.(option int) "find miss" None (Dictionary.find d (Term.iri "n:zzz"));
  Alcotest.check_raises "unknown id" (Invalid_argument "Dictionary.term_of: unknown id")
    (fun () -> ignore (Dictionary.term_of d 99))

let dictionary_roundtrip =
  qcheck ~count:60 "graph dictionary roundtrips every triple"
    Testutil.small_graph (fun g ->
      let d = Dictionary.of_graph g in
      List.for_all
        (fun t -> Triple.equal t (Dictionary.decode_triple d (Dictionary.encode_triple d t)))
        (Graph.triples g))

(* growth beyond the initial bucket size *)
let test_dictionary_growth () =
  let d = Dictionary.create () in
  for i = 0 to 199 do
    ignore (Dictionary.intern d (Term.iri (Printf.sprintf "n:%d" i)))
  done;
  check Alcotest.int "200 terms" 200 (Dictionary.size d);
  check Alcotest.bool "early term intact" true
    (Term.equal (Term.iri "n:0") (Dictionary.term_of d 0));
  check Alcotest.bool "late term intact" true
    (Term.equal (Term.iri "n:199") (Dictionary.term_of d 199))

(* ------------------------------------------------------------------ *)
(* OPT normal form                                                     *)
(* ------------------------------------------------------------------ *)

let test_onf_shapes () =
  let parse = Sparql.Parser.parse_exn in
  let open Wdpt.Translate in
  check Alcotest.bool "triple is ONF" true (is_opt_normal_form (parse "{ ?x p:a ?y }"));
  check Alcotest.bool "pure AND is ONF" true
    (is_opt_normal_form (parse "{ ?x p:a ?y . ?y p:b ?z }"));
  check Alcotest.bool "AND above OPT is not ONF" false
    (is_opt_normal_form
       (parse "{ { ?x p:a ?y . OPTIONAL { ?y p:b ?z } } { ?x p:c ?w } }"));
  check Alcotest.bool "OPT chains are ONF" true
    (is_opt_normal_form
       (parse "{ ?x p:a ?y . OPTIONAL { ?y p:b ?z . OPTIONAL { ?z p:c ?w } } }"));
  check Alcotest.bool "UNION is never ONF" false
    (is_opt_normal_form (parse "{ ?x p:a ?y } UNION { ?x p:b ?y }"))

let onf_laws =
  qcheck ~count:80 "opt_normal_form: sound, idempotent, semantics-preserving"
    seed_arb (fun seed ->
      let p = Testutil.wd_pattern_of_seed ~union:1 ~triples:5 seed in
      let onf = Wdpt.Translate.opt_normal_form p in
      Wdpt.Translate.is_opt_normal_form onf
      && Sparql.Algebra.equal (Wdpt.Translate.opt_normal_form onf) onf
      &&
      let g = Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:10 (seed + 1) in
      Sparql.Mapping.Set.equal (Sparql.Eval.eval p g) (Sparql.Eval.eval onf g))

(* ------------------------------------------------------------------ *)
(* Mapping subsumption                                                 *)
(* ------------------------------------------------------------------ *)

let test_subsumes () =
  let m = Sparql.Mapping.of_list in
  let small = m [ (Variable.of_string "x", Iri.of_string "n:a") ] in
  let big =
    m [ (Variable.of_string "x", Iri.of_string "n:a"); (Variable.of_string "y", Iri.of_string "n:b") ]
  in
  let conflicting = m [ (Variable.of_string "x", Iri.of_string "n:z") ] in
  check Alcotest.bool "bigger subsumes smaller" true (Sparql.Mapping.subsumes big small);
  check Alcotest.bool "smaller does not subsume bigger" false
    (Sparql.Mapping.subsumes small big);
  check Alcotest.bool "reflexive" true (Sparql.Mapping.subsumes big big);
  check Alcotest.bool "conflict breaks subsumption" false
    (Sparql.Mapping.subsumes big conflicting);
  check Alcotest.bool "everything subsumes empty" true
    (Sparql.Mapping.subsumes small Sparql.Mapping.empty)

let solutions_are_maximal =
  qcheck ~count:60 "UNION-free wd solutions are pairwise ⊑-incomparable"
    seed_arb (fun seed ->
      let p = Testutil.wd_pattern_of_seed ~union:1 ~triples:5 seed in
      let g = Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:10 (seed + 7) in
      let sols = Sparql.Mapping.Set.elements (Sparql.Eval.eval p g) in
      List.for_all
        (fun mu1 ->
          List.for_all
            (fun mu2 ->
              Sparql.Mapping.equal mu1 mu2
              || not (Sparql.Mapping.subsumes mu2 mu1))
            sols)
        sols)

(* ------------------------------------------------------------------ *)
(* Containment                                                         *)
(* ------------------------------------------------------------------ *)

let v = Term.var
let iri = Term.iri
let t s p o = Triple.make s p o
let vset names = Variable.Set.of_list (List.map Variable.of_string names)

let gt triples x = Tgraphs.Gtgraph.make (Tgraphs.Tgraph.of_triples triples) (vset x)

let test_cq_containment () =
  (* q1: x has a 2-step path; q2: x has a 1-step edge. q1 ⊆ q2. *)
  let q1 =
    gt [ t (v "x") (iri "p:r") (v "a"); t (v "a") (iri "p:r") (v "b") ] [ "x" ]
  in
  let q2 = gt [ t (v "x") (iri "p:r") (v "c") ] [ "x" ] in
  check Alcotest.bool "path2 ⊆ path1" true (Wd_core.Containment.cq_contained q1 q2);
  check Alcotest.bool "path1 ⊄ path2" false (Wd_core.Containment.cq_contained q2 q1);
  check Alcotest.bool "not equivalent" false (Wd_core.Containment.cq_equivalent q1 q2);
  (* hom-equivalent pair: K2 pattern with a redundant copy *)
  let q3 =
    gt
      [ t (v "x") (iri "p:r") (v "a"); t (v "x") (iri "p:r") (v "a2") ]
      [ "x" ]
  in
  check Alcotest.bool "redundant copy is equivalent" true
    (Wd_core.Containment.cq_equivalent q2 q3)

(* Chandra–Merlin exactness, sampled: if contained, inclusion holds on
   samples; if not contained, the frozen canonical instance refutes. *)
let cq_containment_exactness =
  qcheck ~count:80 "Chandra–Merlin agrees with evaluation"
    seed_arb (fun seed ->
      let s1 = Testutil.tgraph_of_seed ~triples:3 ~vars:3 seed in
      let s2 = Testutil.tgraph_of_seed ~triples:3 ~vars:3 (seed + 1) in
      let x =
        Variable.Set.inter (Tgraphs.Tgraph.vars s1) (Tgraphs.Tgraph.vars s2)
      in
      if
        Variable.Set.is_empty (Tgraphs.Tgraph.vars s1)
        || Variable.Set.is_empty (Tgraphs.Tgraph.vars s2)
      then true
      else begin
        let q1 = Tgraphs.Gtgraph.make s1 x and q2 = Tgraphs.Gtgraph.make s2 x in
        let contained = Wd_core.Containment.cq_contained q1 q2 in
        (* evaluate both as boolean-ish queries over the frozen q1 *)
        let g = Tgraphs.Tgraph.freeze s1 in
        let mu =
          Variable.Set.fold
            (fun var acc ->
              match Tgraphs.Tgraph.freeze_term (Term.Var var) with
              | Term.Iri i -> Sparql.Mapping.add var i acc
              | Term.Var _ -> acc)
            x Sparql.Mapping.empty
        in
        let ans1 =
          Tgraphs.Gtgraph.maps_to_graph q1
            ~mu:(Sparql.Mapping.to_assignment mu) g
        in
        let ans2 =
          Tgraphs.Gtgraph.maps_to_graph q2
            ~mu:(Sparql.Mapping.to_assignment mu) g
        in
        (* canonical instance: q1 always answers its own freezing, and by
           Chandra–Merlin q2 answers it exactly when the containment holds *)
        ans1 && contained = ans2
      end)

let test_refute_opt () =
  let parse = Sparql.Parser.parse_exn in
  (* P1 returns bare ?x rows when the OPT arm misses; P2 demands the arm *)
  let p1 = parse "{ ?x p:a ?y . OPTIONAL { ?y p:b ?z } }" in
  let p2 = parse "{ ?x p:a ?y . ?y p:b ?z }" in
  (match Wd_core.Containment.refute p1 p2 with
  | Some ce ->
      check Alcotest.bool "counterexample is genuine" true
        (Sparql.Eval.check p1 ce.Wd_core.Containment.graph ce.Wd_core.Containment.mapping
        && not (Sparql.Eval.check p2 ce.Wd_core.Containment.graph ce.Wd_core.Containment.mapping))
  | None -> Alcotest.fail "expected a counterexample");
  (* a pattern is contained in itself: no counterexample *)
  check Alcotest.bool "self containment never refuted" true
    (Wd_core.Containment.refute ~attempts:50 p1 p1 = None);
  (* P2 ⊆ P1? every full match of P2 is also maximal for P1 -> contained *)
  check Alcotest.bool "AND into OPT not refuted" true
    (Wd_core.Containment.refute ~attempts:80 p2 p1 = None)

let refutations_are_sound =
  qcheck ~count:40 "refutations are always genuine counterexamples"
    seed_arb (fun seed ->
      let p1 = Testutil.wd_pattern_of_seed ~triples:4 seed in
      let p2 = Testutil.wd_pattern_of_seed ~triples:4 (seed + 1) in
      match Wd_core.Containment.refute ~attempts:30 ~seed p1 p2 with
      | None -> true
      | Some ce ->
          Sparql.Eval.check p1 ce.Wd_core.Containment.graph ce.Wd_core.Containment.mapping
          && not
               (Sparql.Eval.check p2 ce.Wd_core.Containment.graph
                  ce.Wd_core.Containment.mapping))

(* ------------------------------------------------------------------ *)
(* wdPT optimiser                                                      *)
(* ------------------------------------------------------------------ *)

let tg = Tgraphs.Tgraph.of_triples

let test_optimize_ancestor_dedup () =
  let x = Term.var "x" and y = Term.var "y" and z = Term.var "z" in
  let p = Term.iri "p:p" and q = Term.iri "p:q" in
  let tree =
    Wdpt.Pattern_tree.make
      ~labels:
        [|
          tg [ Triple.make x p y ];
          (* the child repeats the root triple *)
          tg [ Triple.make x p y; Triple.make z q x ];
        |]
      ~parent:[| -1; 0 |]
  in
  let optimised, removed = Wdpt.Optimize.tree tree in
  check Alcotest.int "one triple removed" 1 removed;
  check Alcotest.int "child label shrunk" 1
    (Tgraphs.Tgraph.cardinal (Wdpt.Pattern_tree.pat optimised 1));
  (* semantics preserved on a concrete graph *)
  let g = Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:10 3 in
  check Testutil.mapping_set "same solutions"
    (Wdpt.Semantics.solutions_tree tree g)
    (Wdpt.Semantics.solutions_tree optimised g)

let test_optimize_connectivity_guard () =
  let x = Term.var "x" and y = Term.var "y" and w = Term.var "w" in
  let p = Term.iri "p:p" and q = Term.iri "p:q" in
  (* the duplicate triple in node 1 is node 1's only occurrence of ?y,
     and the grandchild uses ?y: removing it would disconnect ?y *)
  let tree =
    Wdpt.Pattern_tree.make
      ~labels:
        [|
          tg [ Triple.make x p y ];
          tg [ Triple.make x p y; Triple.make x q (Term.var "mid") ];
          tg [ Triple.make y q w ];
        |]
      ~parent:[| -1; 0; 1 |]
  in
  let optimised, removed = Wdpt.Optimize.tree tree in
  check Alcotest.int "guarded: nothing removed" 0 removed;
  check Alcotest.bool "tree unchanged" true (Wdpt.Pattern_tree.equal tree optimised)

let test_optimize_forest_dedup () =
  let branch = "{ ?x p:a ?y . OPTIONAL { ?y p:b ?z } }" in
  let p =
    Sparql.Parser.parse_exn (Printf.sprintf "%s UNION %s" branch branch)
  in
  let forest, report = Wdpt.Optimize.pattern p in
  check Alcotest.int "duplicate tree removed" 1 report.Wdpt.Optimize.trees_removed;
  check Alcotest.int "one tree left" 1 (List.length forest)

let optimize_preserves_semantics =
  qcheck ~count:60 "optimiser preserves semantics (with injected duplicates)"
    seed_arb (fun seed ->
      let p = Testutil.wd_pattern_of_seed ~triples:5 seed in
      let forest = Wdpt.Pattern_forest.of_algebra p in
      (* inject a duplicated-parent-triple child into the first tree when
         shapes permit, then optimise and compare answers *)
      let forest =
        match forest with
        | tree :: rest ->
            let root_label = Wdpt.Pattern_tree.pat tree 0 in
            let fresh = Term.var "opt_dup_fresh" in
            let injected =
              Tgraphs.Tgraph.union root_label
                (tg [ Triple.make fresh (Term.iri "p:dup") fresh ])
            in
            let labels =
              Array.of_list
                (List.map (Wdpt.Pattern_tree.pat tree) (Wdpt.Pattern_tree.nodes tree)
                @ [ injected ])
            in
            let parent =
              Array.of_list
                (List.map
                   (fun n -> Option.value ~default:(-1) (Wdpt.Pattern_tree.parent tree n))
                   (Wdpt.Pattern_tree.nodes tree)
                @ [ 0 ])
            in
            Wdpt.Pattern_tree.make ~labels ~parent :: rest
        | [] -> forest
      in
      let optimised, _ = Wdpt.Optimize.forest forest in
      let g = Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:10 (seed + 21) in
      Sparql.Mapping.Set.equal
        (Wdpt.Semantics.solutions forest g)
        (Wdpt.Semantics.solutions optimised g))

(* ------------------------------------------------------------------ *)
(* Optimised enumerator                                                *)
(* ------------------------------------------------------------------ *)

let enumerator_agrees =
  qcheck ~count:60 "Enumerate.solutions = Semantics.solutions at k = dw"
    seed_arb (fun seed ->
      let p = Testutil.wd_pattern_of_seed ~triples:5 seed in
      let forest = Wdpt.Pattern_forest.of_algebra p in
      let g = Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:10 (seed + 11) in
      let k = Wd_core.Domination_width.of_forest forest in
      Sparql.Mapping.Set.equal
        (Wd_core.Enumerate.solutions ~maximality:(`Pebble k) forest g)
        (Wdpt.Semantics.solutions forest g))

let test_enumerator_families () =
  let forest = Workload.Query_families.f_k 3 in
  let g, _ = Workload.Graph_families.planted_instance ~seed:5 ~n:10 ~k:3 in
  check Testutil.mapping_set "F_3 planted"
    (Wdpt.Semantics.solutions forest g)
    (Wd_core.Enumerate.solutions ~maximality:(`Pebble 1) forest g);
  let social = Generator.social ~seed:4 ~people:30 in
  let p =
    Sparql.Parser.parse_exn "{ ?a p:knows ?b . OPTIONAL { ?b p:email ?m } }"
  in
  let forest = Wdpt.Pattern_forest.of_algebra p in
  check Testutil.mapping_set "social profile"
    (Wdpt.Semantics.solutions forest social)
    (Wd_core.Enumerate.solutions forest social);
  check Alcotest.int "count agrees"
    (Sparql.Mapping.Set.cardinal (Wdpt.Semantics.solutions forest social))
    (Wd_core.Enumerate.count forest social)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine () =
  let p =
    Sparql.Parser.parse_exn "{ ?a p:knows ?b . OPTIONAL { ?b p:email ?m } }"
  in
  let plan = Wd_core.Engine.plan p in
  check Alcotest.int "dw measured" 1 plan.Wd_core.Engine.domination_width;
  (match plan.Wd_core.Engine.algorithm with
  | Wd_core.Engine.Pebble 1 -> ()
  | _ -> Alcotest.fail "expected Pebble 1");
  let g = Generator.social ~seed:9 ~people:25 in
  let reference = Sparql.Eval.eval p g in
  check Testutil.mapping_set "planned solutions" reference
    (Wd_core.Engine.solutions plan g);
  check Alcotest.int "count" (Sparql.Mapping.Set.cardinal reference)
    (Wd_core.Engine.count plan g);
  let forced = Wd_core.Engine.plan ~force:Wd_core.Engine.Naive p in
  check Testutil.mapping_set "forced naive agrees" reference
    (Wd_core.Engine.solutions forced g);
  Sparql.Mapping.Set.iter
    (fun mu -> check Alcotest.bool "check" true (Wd_core.Engine.check plan g mu))
    reference

(* ------------------------------------------------------------------ *)
(* Second treewidth algorithm                                          *)
(* ------------------------------------------------------------------ *)

let bb_agrees_with_dp =
  qcheck ~count:80 "branch-and-bound treewidth = DP treewidth"
    Testutil.small_ugraph (fun g ->
      Graphtheory.Treewidth.exact_branch_and_bound g
      = Graphtheory.Treewidth.exact g)

let test_bb_known () =
  let open Graphtheory in
  check Alcotest.(option int) "K6" (Some 5)
    (Treewidth.exact_branch_and_bound (Ugraph.complete 6));
  check Alcotest.(option int) "grid 4x4" (Some 4)
    (Treewidth.exact_branch_and_bound (Ugraph.grid_graph ~rows:4 ~cols:4));
  check Alcotest.(option int) "empty" (Some (-1))
    (Treewidth.exact_branch_and_bound (Ugraph.make ~n:0 ~edges:[]));
  check Alcotest.(option int) "over limit" None
    (Treewidth.exact_branch_and_bound ~limit:3 (Ugraph.complete 5))

let () =
  Alcotest.run "extensions"
    [
      ( "ablation knobs",
        [ scan_equals_indexed; strategies_agree; pebble_pruning_agrees ] );
      ( "dictionary",
        [
          Alcotest.test_case "basics" `Quick test_dictionary;
          Alcotest.test_case "growth" `Quick test_dictionary_growth;
          dictionary_roundtrip;
        ] );
      ( "opt normal form",
        [ Alcotest.test_case "shapes" `Quick test_onf_shapes; onf_laws ] );
      ( "subsumption",
        [
          Alcotest.test_case "order" `Quick test_subsumes;
          solutions_are_maximal;
        ] );
      ( "containment",
        [
          Alcotest.test_case "Chandra–Merlin basics" `Quick test_cq_containment;
          cq_containment_exactness;
          Alcotest.test_case "OPT refutation" `Quick test_refute_opt;
          refutations_are_sound;
        ] );
      ( "optimiser",
        [
          Alcotest.test_case "ancestor dedup" `Quick test_optimize_ancestor_dedup;
          Alcotest.test_case "connectivity guard" `Quick test_optimize_connectivity_guard;
          Alcotest.test_case "forest dedup" `Quick test_optimize_forest_dedup;
          optimize_preserves_semantics;
        ] );
      ( "enumerator",
        [
          enumerator_agrees;
          Alcotest.test_case "families" `Quick test_enumerator_families;
        ] );
      ("engine", [ Alcotest.test_case "facade" `Quick test_engine ]);
      ( "treewidth (bb)",
        [ Alcotest.test_case "known" `Quick test_bb_known; bb_agrees_with_dp ] );
    ]
