(* Tests for the Section-5 extensions: FILTER conditions and SELECT
   projection — syntax, semantics, well-designedness, and the classifier's
   outside-the-fragment verdict. *)

open Rdf
open Sparql

let check = Alcotest.check

let qcheck ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let parse = Parser.parse_exn
let v = Variable.of_string
let iri = Iri.of_string

let graph =
  Graph.of_triples
    [
      Triple.make (Term.iri "n:a") (Term.iri "p:knows") (Term.iri "n:b");
      Triple.make (Term.iri "n:b") (Term.iri "p:knows") (Term.iri "n:a");
      Triple.make (Term.iri "n:c") (Term.iri "p:knows") (Term.iri "n:c");
      Triple.make (Term.iri "n:a") (Term.iri "p:mail") (Term.iri "m:a");
    ]

(* ------------------------------------------------------------------ *)
(* Condition semantics                                                 *)
(* ------------------------------------------------------------------ *)

let mu = Mapping.of_list [ (v "x", iri "n:a"); (v "y", iri "n:b") ]

let test_condition_satisfaction () =
  let sat c = Condition.satisfies mu c in
  check Alcotest.bool "bound" true (sat (Condition.bound "x"));
  check Alcotest.bool "unbound" false (sat (Condition.bound "z"));
  check Alcotest.bool "eq var/iri" true
    (sat (Condition.eq (Term.var "x") (Term.iri "n:a")));
  check Alcotest.bool "eq var/var" false
    (sat (Condition.eq (Term.var "x") (Term.var "y")));
  check Alcotest.bool "neq" true
    (sat (Condition.neq (Term.var "x") (Term.var "y")));
  (* unbound variables fail equalities, even negated ones are true then *)
  check Alcotest.bool "eq with unbound is unsatisfied" false
    (sat (Condition.eq (Term.var "z") (Term.iri "n:a")));
  check Alcotest.bool "classical negation" true
    (sat (Condition.Not (Condition.eq (Term.var "z") (Term.iri "n:a"))));
  check Alcotest.bool "and" true
    (sat (Condition.And (Condition.bound "x", Condition.bound "y")));
  check Alcotest.bool "or short" true
    (sat (Condition.Or (Condition.bound "z", Condition.bound "x")));
  check Alcotest.int "vars" 2
    (Variable.Set.cardinal
       (Condition.vars
          (Condition.And
             ( Condition.eq (Term.var "x") (Term.iri "c:1"),
               Condition.bound "q" ))))

(* ------------------------------------------------------------------ *)
(* FILTER evaluation                                                   *)
(* ------------------------------------------------------------------ *)

let test_filter_eval () =
  let no_loops = parse "{ ?x p:knows ?y . FILTER (?x != ?y) }" in
  check Alcotest.int "self-loop filtered out" 2
    (Mapping.Set.cardinal (Eval.eval no_loops graph));
  let only_loop = parse "{ ?x p:knows ?y . FILTER (?x = ?y) }" in
  check Alcotest.int "only the loop" 1
    (Mapping.Set.cardinal (Eval.eval only_loop graph));
  (* filter over an OPT: BOUND distinguishes extended solutions *)
  let with_mail =
    parse "{ ?x p:knows ?y . OPTIONAL { ?x p:mail ?m } FILTER (BOUND(?m)) }"
  in
  let sols = Eval.eval with_mail graph in
  check Alcotest.int "only the solution with mail" 1 (Mapping.Set.cardinal sols);
  check Alcotest.(option string) "it is ann's" (Some "n:a")
    (Option.map Iri.to_string (Mapping.find (v "x") (Mapping.Set.choose sols)));
  let without_mail =
    parse "{ ?x p:knows ?y . OPTIONAL { ?x p:mail ?m } FILTER (!(BOUND(?m))) }"
  in
  check Alcotest.int "the other two" 2
    (Mapping.Set.cardinal (Eval.eval without_mail graph))

(* ------------------------------------------------------------------ *)
(* SELECT evaluation                                                   *)
(* ------------------------------------------------------------------ *)

let test_select_eval () =
  let q = parse "SELECT ?x WHERE { ?x p:knows ?y }" in
  let sols = Eval.eval q graph in
  (* three subjects, one duplicated by projection *)
  check Alcotest.int "projection dedups" 3 (Mapping.Set.cardinal sols);
  Mapping.Set.iter
    (fun m -> check Alcotest.int "domain is {x}" 1 (Mapping.cardinal m))
    sols;
  let q2 = parse "SELECT ?m WHERE { ?x p:knows ?y . OPTIONAL { ?x p:mail ?m } }" in
  let sols2 = Eval.eval q2 graph in
  (* one row with m bound, one fully-empty row from the unextended ones *)
  check Alcotest.int "partial projections" 2 (Mapping.Set.cardinal sols2);
  check Alcotest.bool "empty mapping present" true
    (Mapping.Set.mem Mapping.empty sols2)

(* ------------------------------------------------------------------ *)
(* Well-designedness with FILTER/SELECT                                *)
(* ------------------------------------------------------------------ *)

let test_wd_with_extensions () =
  check Alcotest.bool "safe filter ok" true
    (Well_designed.is_well_designed (parse "{ ?x p:a ?y . FILTER (?x != ?y) }"));
  (match Well_designed.check (parse "{ ?x p:a ?y . FILTER (?x != ?z) }") with
  | Error (Well_designed.Unsafe_filter _) -> ()
  | _ -> Alcotest.fail "expected Unsafe_filter");
  check Alcotest.bool "top-level select ok" true
    (Well_designed.is_well_designed (parse "SELECT ?x WHERE { ?x p:a ?y }"));
  (* the classifier flags the fragment *)
  let c = Wd_core.Classify.classify (parse "{ ?x p:a ?y . FILTER (?x != ?y) }") in
  (match c.Wd_core.Classify.regime with
  | Wd_core.Classify.Outside_core_fragment -> ()
  | _ -> Alcotest.fail "expected Outside_core_fragment");
  (* and the translation refuses *)
  match Wdpt.Pattern_forest.of_algebra (parse "{ ?x p:a ?y . FILTER (?x != ?y) }") with
  | exception Wdpt.Translate.Not_well_designed (Well_designed.Beyond_core_fragment _) -> ()
  | _ -> Alcotest.fail "expected Beyond_core_fragment"

let filter_roundtrip =
  qcheck ~count:50 "FILTER/SELECT patterns roundtrip through the printer"
    (QCheck.make QCheck.Gen.(int_bound 100000))
    (fun seed ->
      (* decorate a random core pattern with a safe filter and a select *)
      let p = Testutil.wd_pattern_of_seed ~union:1 ~triples:4 seed in
      let vars = Variable.Set.elements (Algebra.vars p) in
      match vars with
      | x :: rest ->
          let y = match rest with y :: _ -> y | [] -> x in
          let filtered =
            Algebra.filter p (Condition.neq (Term.Var x) (Term.Var y))
          in
          let selected = Algebra.select (Variable.Set.singleton x) filtered in
          (match Parser.parse (Printer.to_string filtered) with
          | Ok p' -> Algebra.equal filtered p'
          | Error _ -> false)
          &&
          (match Parser.parse (Printer.to_string selected) with
          | Ok p' -> Algebra.equal selected p'
          | Error _ -> false)
      | [] -> true)

let filter_narrows =
  qcheck ~count:50 "FILTER never adds solutions; SELECT never adds variables"
    (QCheck.make QCheck.Gen.(int_bound 100000))
    (fun seed ->
      let p = Testutil.wd_pattern_of_seed ~union:1 ~triples:4 seed in
      let g = Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:10 (seed + 1) in
      let vars = Variable.Set.elements (Algebra.vars p) in
      match vars with
      | x :: _ ->
          let filtered = Algebra.filter p (Condition.Bound x) in
          Mapping.Set.subset (Eval.eval filtered g) (Eval.eval p g)
          &&
          let selected = Algebra.select (Variable.Set.singleton x) p in
          Mapping.Set.for_all
            (fun m -> Mapping.cardinal m <= 1)
            (Eval.eval selected g)
      | [] -> true)

let test_parser_errors_extensions () =
  let fails s =
    match Parser.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "should not parse: %s" s
  in
  fails "{ FILTER (?x = ?y) }";
  (* FILTER cannot start a group *)
  fails "{ ?x p:a ?y . FILTER ?x = ?y }";
  (* parens required *)
  fails "{ ?x p:a ?y . FILTER (?x) }";
  fails "{ ?x p:a ?y . FILTER (BOUND(p:c)) }";
  fails "SELECT WHERE { ?x p:a ?y }"

let () =
  Alcotest.run "filters"
    [
      ( "conditions",
        [ Alcotest.test_case "satisfaction" `Quick test_condition_satisfaction ] );
      ( "filter",
        [ Alcotest.test_case "evaluation" `Quick test_filter_eval ] );
      ( "select",
        [ Alcotest.test_case "evaluation" `Quick test_select_eval ] );
      ( "well-designedness",
        [
          Alcotest.test_case "extended checks" `Quick test_wd_with_extensions;
          Alcotest.test_case "parser errors" `Quick test_parser_errors_extensions;
          filter_roundtrip;
          filter_narrows;
        ] );
    ]
