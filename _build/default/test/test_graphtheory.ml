open Graphtheory

let check = Alcotest.check

let qcheck ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* ------------------------------------------------------------------ *)
(* Ugraph                                                              *)
(* ------------------------------------------------------------------ *)

let test_ugraph_basics () =
  let g = Ugraph.make ~n:4 ~edges:[ (0, 1); (1, 2); (1, 2); (3, 3) ] in
  check Alcotest.int "n" 4 (Ugraph.n g);
  check Alcotest.int "duplicate and loop dropped" 2 (Ugraph.m g);
  check Alcotest.bool "edge" true (Ugraph.mem_edge g 0 1);
  check Alcotest.bool "symmetric" true (Ugraph.mem_edge g 1 0);
  check Alcotest.bool "no loop" false (Ugraph.mem_edge g 3 3);
  check Alcotest.int "degree" 2 (Ugraph.degree g 1);
  Alcotest.check_raises "range check"
    (Invalid_argument "Ugraph.make: endpoint out of range") (fun () ->
      ignore (Ugraph.make ~n:2 ~edges:[ (0, 5) ]))

let test_ugraph_ops () =
  let g = Ugraph.path_graph 5 in
  let g2 = Ugraph.add_edge g 0 4 in
  check Alcotest.int "edge added" 5 (Ugraph.m g2);
  check Alcotest.int "original untouched" 4 (Ugraph.m g);
  let g3 = Ugraph.remove_vertex g2 2 in
  check Alcotest.int "incident edges removed" 3 (Ugraph.m g3);
  let sub, mapping = Ugraph.induced g [ 1; 2; 3 ] in
  check Alcotest.int "induced size" 3 (Ugraph.n sub);
  check Alcotest.int "induced edges" 2 (Ugraph.m sub);
  check Alcotest.(array int) "mapping" [| 1; 2; 3 |] mapping

let test_ugraph_families () =
  check Alcotest.int "K5 edges" 10 (Ugraph.m (Ugraph.complete 5));
  check Alcotest.int "C6 edges" 6 (Ugraph.m (Ugraph.cycle_graph 6));
  check Alcotest.int "grid edges" 12 (Ugraph.m (Ugraph.grid_graph ~rows:3 ~cols:3));
  check Alcotest.bool "path connected" true (Ugraph.is_connected (Ugraph.path_graph 7));
  check Alcotest.bool "two components" false
    (Ugraph.is_connected (Ugraph.make ~n:4 ~edges:[ (0, 1); (2, 3) ]))

(* ------------------------------------------------------------------ *)
(* Components                                                          *)
(* ------------------------------------------------------------------ *)

let test_components () =
  let g = Ugraph.make ~n:7 ~edges:[ (0, 1); (1, 2); (3, 4) ] in
  check
    Alcotest.(list (list int))
    "components" [ [ 0; 1; 2 ]; [ 3; 4 ]; [ 5 ]; [ 6 ] ]
    (Components.components g);
  check Alcotest.(list int) "component_of" [ 3; 4 ] (Components.component_of g 4)

(* ------------------------------------------------------------------ *)
(* Treewidth                                                           *)
(* ------------------------------------------------------------------ *)

let petersen =
  (* outer C5 0-4, inner pentagram 5-9, spokes *)
  Ugraph.make ~n:10
    ~edges:
      [
        (0, 1); (1, 2); (2, 3); (3, 4); (4, 0);
        (5, 7); (7, 9); (9, 6); (6, 8); (8, 5);
        (0, 5); (1, 6); (2, 7); (3, 8); (4, 9);
      ]

let test_treewidth_known () =
  check Alcotest.int "empty" (-1) (Treewidth.treewidth (Ugraph.make ~n:0 ~edges:[]));
  check Alcotest.int "edgeless" 0 (Treewidth.treewidth (Ugraph.make ~n:3 ~edges:[]));
  check Alcotest.int "single edge" 1 (Treewidth.treewidth (Ugraph.path_graph 2));
  check Alcotest.int "path" 1 (Treewidth.treewidth (Ugraph.path_graph 8));
  check Alcotest.int "cycle" 2 (Treewidth.treewidth (Ugraph.cycle_graph 8));
  check Alcotest.int "K4" 3 (Treewidth.treewidth (Ugraph.complete 4));
  check Alcotest.int "K7" 6 (Treewidth.treewidth (Ugraph.complete 7));
  check Alcotest.int "3x3 grid" 3 (Treewidth.treewidth (Ugraph.grid_graph ~rows:3 ~cols:3));
  check Alcotest.int "2x5 grid" 2 (Treewidth.treewidth (Ugraph.grid_graph ~rows:2 ~cols:5));
  check Alcotest.int "4x4 grid" 4 (Treewidth.treewidth (Ugraph.grid_graph ~rows:4 ~cols:4));
  check Alcotest.int "Petersen" 4 (Treewidth.treewidth petersen);
  let tree = Ugraph.make ~n:7 ~edges:[ (0, 1); (0, 2); (1, 3); (1, 4); (2, 5); (2, 6) ] in
  check Alcotest.int "tree" 1 (Treewidth.treewidth tree)

let test_treewidth_disconnected () =
  (* treewidth of a disjoint union is the max over components *)
  let g =
    Ugraph.make ~n:8
      ~edges:[ (0, 1); (1, 2); (2, 0); (3, 4); (5, 6); (6, 7); (5, 7) ]
  in
  check Alcotest.int "disjoint union" 2 (Treewidth.treewidth g)

let test_exact_limit () =
  check Alcotest.(option int) "exceeds limit" None
    (Treewidth.exact ~limit:5 (Ugraph.complete 6));
  check Alcotest.(option int) "within limit" (Some 5)
    (Treewidth.exact ~limit:6 (Ugraph.complete 6))

let test_is_at_most () =
  let grid = Ugraph.grid_graph ~rows:3 ~cols:4 in
  check Alcotest.bool "tw(grid3x4) <= 3" true (Treewidth.is_at_most grid 3);
  check Alcotest.bool "tw(grid3x4) > 2" false (Treewidth.is_at_most grid 2);
  check Alcotest.bool "trivial bound" true (Treewidth.is_at_most (Ugraph.complete 5) 4)

let bounds_law =
  qcheck ~count:60 "lower <= exact <= heuristic upper" Testutil.small_ugraph
    (fun g ->
      let exact = Treewidth.treewidth g in
      Treewidth.lower_bound g <= exact && exact <= Treewidth.upper_bound g)

let decomposition_law =
  qcheck ~count:60 "decomposition verifies and attains >= exact width"
    Testutil.small_ugraph (fun g ->
      let d = Treewidth.decomposition g in
      match Tree_decomposition.verify g d with
      | Ok () -> Tree_decomposition.width d >= Treewidth.treewidth g
      | Error _ -> false)

let minfill_decomposition_law =
  qcheck ~count:60 "min-fill ordering induces a valid decomposition"
    Testutil.small_ugraph (fun g ->
      let order, width = Treewidth.min_fill_order g in
      let d = Tree_decomposition.of_elimination_order g order in
      Tree_decomposition.verify g d = Ok () && Tree_decomposition.width d = width)

(* ------------------------------------------------------------------ *)
(* Tree decompositions                                                 *)
(* ------------------------------------------------------------------ *)

let iset = Ugraph.ISet.of_list

let test_decomposition_verify_catches () =
  let g = Ugraph.cycle_graph 4 in
  let good =
    Tree_decomposition.make
      ~bags:[| iset [ 0; 1; 2 ]; iset [ 0; 2; 3 ] |]
      ~tree_edges:[ (0, 1) ]
  in
  check Alcotest.bool "valid" true (Tree_decomposition.verify g good = Ok ());
  check Alcotest.int "width" 2 (Tree_decomposition.width good);
  let missing =
    Tree_decomposition.make
      ~bags:[| iset [ 0; 1 ]; iset [ 2; 3 ] |]
      ~tree_edges:[ (0, 1) ]
  in
  check Alcotest.bool "uncovered edge" false
    (Tree_decomposition.verify g missing = Ok ());
  let disconnected =
    Tree_decomposition.make
      ~bags:[| iset [ 0; 1; 2 ]; iset [ 1; 2; 3 ]; iset [ 0; 2; 3 ] |]
      ~tree_edges:[ (0, 1); (1, 2) ]
  in
  check Alcotest.bool "disconnected occurrence" false
    (Tree_decomposition.verify g disconnected = Ok ());
  let cyclic =
    Tree_decomposition.make
      ~bags:[| iset [ 0; 1; 2 ]; iset [ 0; 2; 3 ]; iset [ 0; 2 ] |]
      ~tree_edges:[ (0, 1); (1, 2); (2, 0) ]
  in
  check Alcotest.bool "cycle rejected" false
    (Tree_decomposition.verify g cyclic = Ok ())

(* ------------------------------------------------------------------ *)
(* Grid / Minor                                                        *)
(* ------------------------------------------------------------------ *)

let test_grid_helpers () =
  check Alcotest.int "id" 7 (Grid.id ~cols:3 2 1);
  check Alcotest.(pair int int) "coords" (2, 1) (Grid.coords ~cols:3 7);
  check Alcotest.int "grid tw" 4 (Grid.treewidth 4);
  check Alcotest.int "1x1 tw" 0 (Grid.treewidth 1)

let test_minor_identity () =
  let g = Ugraph.grid_graph ~rows:3 ~cols:3 in
  let id = Minor.identity g in
  check Alcotest.bool "identity verifies" true (Minor.verify ~minor:g ~host:g id = Ok ());
  check Alcotest.bool "identity onto" true (Minor.is_onto ~host:g id)

let test_minor_find_easy () =
  (match Minor.find ~minor:(Ugraph.complete 3) ~host:(Ugraph.complete 4) with
  | Some m ->
      check Alcotest.bool "K3 in K4 verified" true
        (Minor.verify ~minor:(Ugraph.complete 3) ~host:(Ugraph.complete 4) m = Ok ())
  | None -> Alcotest.fail "K3 minor of K4 not found");
  let minor = Ugraph.grid_graph ~rows:2 ~cols:2 in
  let host = Ugraph.grid_graph ~rows:3 ~cols:3 in
  (match Minor.find ~minor ~host with
  | Some m ->
      check Alcotest.bool "2x2 in 3x3 verified" true
        (Minor.verify ~minor ~host m = Ok ())
  | None -> Alcotest.fail "2x2 grid minor of 3x3 grid not found");
  let g = Ugraph.grid_graph ~rows:3 ~cols:3 in
  match Minor.find ~minor:g ~host:g with
  | Some m ->
      check Alcotest.bool "self minor verified" true
        (Minor.verify ~minor:g ~host:g m = Ok ())
  | None -> Alcotest.fail "grid minor of itself not found"

let test_minor_extend_onto () =
  let host = Ugraph.path_graph 5 in
  let minor = Ugraph.path_graph 2 in
  let partial = [| Ugraph.ISet.singleton 1; Ugraph.ISet.singleton 2 |] in
  check Alcotest.bool "partial valid" true (Minor.verify ~minor ~host partial = Ok ());
  match Minor.extend_onto ~host partial with
  | None -> Alcotest.fail "extension failed"
  | Some extended ->
      check Alcotest.bool "extended valid" true
        (Minor.verify ~minor ~host extended = Ok ());
      check Alcotest.bool "extended onto" true (Minor.is_onto ~host extended)

let test_minor_K3_in_triangle_free () =
  (* C5 contains no K3 subgraph but K3 IS a minor (contract two edges). *)
  let host = Ugraph.cycle_graph 5 in
  let minor = Ugraph.complete 3 in
  match Minor.find ~minor ~host with
  | Some m ->
      check Alcotest.bool "verified" true (Minor.verify ~minor ~host m = Ok ())
  | None -> Alcotest.fail "K3 minor of C5 not found"

let minor_found_maps_verify =
  qcheck ~count:40 "found minor maps always verify"
    QCheck.(pair Testutil.small_ugraph (QCheck.make QCheck.Gen.(int_bound 1000)))
    (fun (host, seed) ->
      let minor = Testutil.ugraph_of_seed ~n:3 ~edge_prob:0.6 seed in
      match Minor.find ~minor ~host with
      | Some m -> Minor.verify ~minor ~host m = Ok ()
      | None -> true)

let () =
  Alcotest.run "graphtheory"
    [
      ( "ugraph",
        [
          Alcotest.test_case "basics" `Quick test_ugraph_basics;
          Alcotest.test_case "ops" `Quick test_ugraph_ops;
          Alcotest.test_case "families" `Quick test_ugraph_families;
        ] );
      ("components", [ Alcotest.test_case "components" `Quick test_components ]);
      ( "treewidth",
        [
          Alcotest.test_case "known values" `Quick test_treewidth_known;
          Alcotest.test_case "disconnected" `Quick test_treewidth_disconnected;
          Alcotest.test_case "exact limit" `Quick test_exact_limit;
          Alcotest.test_case "is_at_most" `Quick test_is_at_most;
          bounds_law;
          decomposition_law;
          minfill_decomposition_law;
        ] );
      ( "tree decomposition",
        [
          Alcotest.test_case "verify catches defects" `Quick
            test_decomposition_verify_catches;
        ] );
      ( "grid/minor",
        [
          Alcotest.test_case "grid helpers" `Quick test_grid_helpers;
          Alcotest.test_case "identity minor" `Quick test_minor_identity;
          Alcotest.test_case "find easy minors" `Quick test_minor_find_easy;
          Alcotest.test_case "extend onto" `Quick test_minor_extend_onto;
          Alcotest.test_case "K3 in C5" `Quick test_minor_K3_in_triangle_free;
          minor_found_maps_verify;
        ] );
    ]
