open Graphtheory
open Hardness

let check = Alcotest.check

let qcheck ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* ------------------------------------------------------------------ *)
(* Brute-force clique                                                  *)
(* ------------------------------------------------------------------ *)

let test_clique_known () =
  check Alcotest.bool "K5 has 5-clique" true (Clique.has_clique (Ugraph.complete 5) 5);
  check Alcotest.bool "K5 has no 6-clique" false (Clique.has_clique (Ugraph.complete 5) 6);
  check Alcotest.bool "C5 triangle-free" false (Clique.has_clique (Ugraph.cycle_graph 5) 3);
  check Alcotest.bool "C5 has an edge" true (Clique.has_clique (Ugraph.cycle_graph 5) 2);
  check Alcotest.bool "everything has a 1-clique" true
    (Clique.has_clique (Ugraph.make ~n:1 ~edges:[]) 1);
  check Alcotest.bool "empty graph has no 1-clique" false
    (Clique.has_clique (Ugraph.make ~n:0 ~edges:[]) 1);
  match Clique.find_clique (Ugraph.complete 4) 3 with
  | Some witness ->
      check Alcotest.int "witness size" 3 (List.length witness);
      let rec pairwise = function
        | [] -> true
        | u :: rest ->
            List.for_all (fun w -> Ugraph.mem_edge (Ugraph.complete 4) u w) rest
            && pairwise rest
      in
      check Alcotest.bool "witness is a clique" true (pairwise witness)
  | None -> Alcotest.fail "expected a witness"

let clique_monotone =
  qcheck ~count:60 "k-clique implies (k-1)-clique" Testutil.small_ugraph
    (fun h ->
      (not (Clique.has_clique h 4)) || Clique.has_clique h 3)

(* ------------------------------------------------------------------ *)
(* Lemma 2 construction                                                *)
(* ------------------------------------------------------------------ *)

let lemma2_setup ~k ~h =
  let cols = k * (k - 1) / 2 in
  let tree = Workload.Query_families.grid_query ~rows:k ~cols in
  let forest = [ tree ] in
  let subtree = Wdpt.Subtree.root_only tree in
  match Wdpt.Children_assignment.gtg forest subtree with
  | [ s ] -> (
      match Grohe.construct ~k ~h s with
      | Ok (b, stats) -> (s, b, stats)
      | Error e -> Alcotest.failf "construct failed: %s" e)
  | _ -> Alcotest.fail "expected singleton GtG"

let test_lemma2_properties () =
  let k = 3 in
  let h = Clique.random_graph ~seed:7 ~n:6 ~edge_prob:0.5 in
  let s, b, stats = lemma2_setup ~k ~h in
  (* condition (1): triples of S over X only appear in B *)
  let x = Tgraphs.Gtgraph.x s in
  List.iter
    (fun t ->
      if Rdf.Variable.Set.subset (Rdf.Triple.vars t) x then
        check Alcotest.bool "X-only triple kept" true
          (Tgraphs.Tgraph.mem (Tgraphs.Gtgraph.s b) t))
    (Tgraphs.Tgraph.triples (Tgraphs.Gtgraph.s s));
  (* condition (2): (B,X) -> (S,X) *)
  check Alcotest.bool "(B,X) -> (S,X)" true (Tgraphs.Gtgraph.maps_to b s);
  (* condition (3): clique iff (S,X) -> (B,X) *)
  check Alcotest.bool "clique iff (S,X) -> (B,X)"
    (Clique.has_clique h k)
    (Tgraphs.Gtgraph.maps_to s b);
  (* stats are consistent *)
  check Alcotest.int "grid rows" k stats.Grohe.grid_rows;
  check Alcotest.int "grid cols" 3 stats.Grohe.grid_cols;
  check Alcotest.bool "nonempty gadget" true (stats.Grohe.triples > 0)

let lemma2_condition3 =
  qcheck ~count:12 "Lemma 2 condition (3) on random graphs"
    (QCheck.make QCheck.Gen.(int_bound 10000))
    (fun seed ->
      let k = 3 in
      let h = Clique.random_graph ~seed ~n:6 ~edge_prob:0.4 in
      let s, b, _ = lemma2_setup ~k ~h in
      Clique.has_clique h k = Tgraphs.Gtgraph.maps_to s b)

let test_lemma2_requires_grid () =
  (* a query whose Gaifman graph has no existential variables cannot host
     the grid *)
  let s =
    Tgraphs.Gtgraph.make
      (Tgraphs.Tgraph.of_triples
         [ Rdf.Triple.make (Rdf.Term.var "x") (Rdf.Term.iri "p:p") (Rdf.Term.var "y") ])
      (Rdf.Variable.Set.of_list [ Rdf.Variable.of_string "x"; Rdf.Variable.of_string "y" ])
  in
  match Grohe.construct ~k:3 ~h:(Ugraph.complete 4) s with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected failure without a grid component"

(* ------------------------------------------------------------------ *)
(* The full reduction (Section 4.2)                                    *)
(* ------------------------------------------------------------------ *)

let test_reduction_negative () =
  List.iter
    (fun n ->
      let h = Ugraph.cycle_graph n in
      match Reduction.decide ~k:3 ~h with
      | Ok got -> check Alcotest.bool "cycles are triangle-free" false got
      | Error e -> Alcotest.fail e)
    [ 4; 5; 6 ]

let test_reduction_positive () =
  let h = Ugraph.complete 4 in
  match Reduction.decide ~k:3 ~h with
  | Ok got -> check Alcotest.bool "K4 has a triangle" true got
  | Error e -> Alcotest.fail e

let reduction_agrees =
  qcheck ~count:10 "reduction agrees with brute force"
    (QCheck.make QCheck.Gen.(int_bound 10000))
    (fun seed ->
      let h = Clique.random_graph ~seed ~n:7 ~edge_prob:0.3 in
      match Reduction.decide ~k:3 ~h with
      | Ok got -> got = Clique.has_clique h 3
      | Error _ -> false)

let test_reduction_instance_shape () =
  let h = Clique.random_graph ~seed:5 ~n:6 ~edge_prob:0.5 in
  match Reduction.build ~k:3 ~h with
  | Error e -> Alcotest.fail e
  | Ok inst ->
      check Alcotest.int "single-tree forest" 1 (List.length inst.Reduction.forest);
      check Alcotest.int "µ binds vars(T) = {x, y}" 2
        (Sparql.Mapping.cardinal inst.Reduction.mu);
      check Alcotest.bool "frozen graph nonempty" true
        (Rdf.Graph.cardinal inst.Reduction.graph > 0);
      (* µ's image lies in the graph's domain *)
      let dom = Rdf.Graph.dom inst.Reduction.graph in
      List.iter
        (fun (_, iri) ->
          check Alcotest.bool "µ image in dom(G)" true (Rdf.Iri.Set.mem iri dom))
        (Sparql.Mapping.to_list inst.Reduction.mu)

let () =
  Alcotest.run "hardness"
    [
      ( "clique",
        [
          Alcotest.test_case "known cases" `Quick test_clique_known;
          clique_monotone;
        ] );
      ( "lemma 2",
        [
          Alcotest.test_case "conditions 1-3" `Quick test_lemma2_properties;
          lemma2_condition3;
          Alcotest.test_case "requires grid component" `Quick test_lemma2_requires_grid;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "negative instances" `Quick test_reduction_negative;
          Alcotest.test_case "positive instance" `Quick test_reduction_positive;
          Alcotest.test_case "instance shape" `Quick test_reduction_instance_shape;
          reduction_agrees;
        ] );
    ]
