(* End-to-end scenarios: text in (Turtle + query syntax), answers out,
   every evaluation path agreeing. *)

open Rdf

let check = Alcotest.check

let social_turtle =
  {|# a tiny social network
person:ann  p:knows   person:bob .
person:bob  p:knows   person:cho .
person:cho  p:knows   person:ann .
person:ann  p:email   mailto:ann .
person:bob  p:worksAt company:acme .
company:acme p:locatedIn city:oslo .
person:cho  p:worksAt company:zeta .
|}

let load () =
  match Turtle.parse_graph social_turtle with
  | Ok g -> g
  | Error e -> Alcotest.failf "turtle: %s" e

let run_query src g =
  let p = Sparql.Parser.parse_exn src in
  (p, Sparql.Eval.eval p g)

let all_evaluators_agree p g =
  let reference = Sparql.Eval.eval p g in
  let forest = Wdpt.Pattern_forest.of_algebra p in
  let wdpt = Wdpt.Semantics.solutions forest g in
  check Testutil.mapping_set "wdpt enumeration" reference wdpt;
  let dw = Wd_core.Domination_width.of_forest forest in
  let pebble = Wd_core.Pebble_eval.solutions ~k:dw forest g in
  check Testutil.mapping_set "pebble enumeration" reference pebble;
  Sparql.Mapping.Set.iter
    (fun mu ->
      check Alcotest.bool "naive membership" true (Wd_core.Naive_eval.check forest g mu);
      check Alcotest.bool "pebble membership" true
        (Wd_core.Pebble_eval.check ~k:dw forest g mu))
    reference;
  reference

let test_optional_profile () =
  let g = load () in
  let p, sols =
    run_query
      "{ ?a p:knows ?b . OPTIONAL { ?a p:email ?m } OPTIONAL { ?b p:worksAt ?c . ?c p:locatedIn ?where } }"
      g
  in
  check Alcotest.int "three knowers" 3 (Sparql.Mapping.Set.cardinal sols);
  (* ann knows bob: email present AND bob's office resolves *)
  let ann =
    Sparql.Mapping.Set.filter
      (fun mu ->
        Sparql.Mapping.find (Variable.of_string "a") mu
        = Some (Iri.of_string "person:ann"))
      sols
  in
  check Alcotest.int "one ann row" 1 (Sparql.Mapping.Set.cardinal ann);
  let ann = Sparql.Mapping.Set.choose ann in
  check Alcotest.(option string) "email bound" (Some "mailto:ann")
    (Option.map Iri.to_string (Sparql.Mapping.find (Variable.of_string "m") ann));
  check Alcotest.(option string) "office city" (Some "city:oslo")
    (Option.map Iri.to_string (Sparql.Mapping.find (Variable.of_string "where") ann));
  (* bob knows cho: no email, zeta has no city -> both OPT arms dangle *)
  let bob =
    Sparql.Mapping.Set.filter
      (fun mu ->
        Sparql.Mapping.find (Variable.of_string "a") mu
        = Some (Iri.of_string "person:bob"))
      sols
  in
  let bob = Sparql.Mapping.Set.choose bob in
  check Alcotest.int "bob row stays partial" 2 (Sparql.Mapping.cardinal bob);
  ignore (all_evaluators_agree p g)

let test_union_query () =
  let g = load () in
  let p, sols =
    run_query "{ ?a p:email ?contact } UNION { ?a p:worksAt ?contact }" g
  in
  check Alcotest.int "three rows" 3 (Sparql.Mapping.Set.cardinal sols);
  ignore (all_evaluators_agree p g)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_classify_pipeline () =
  let p =
    Sparql.Parser.parse_exn
      "{ ?a p:knows ?b . OPTIONAL { ?b p:worksAt ?c . ?c p:locatedIn ?w } }"
  in
  let c = Wd_core.Classify.classify p in
  check Alcotest.bool "wd" true c.Wd_core.Classify.well_designed;
  check Alcotest.(option int) "dw = 1" (Some 1) c.Wd_core.Classify.domination_width;
  check Alcotest.(option int) "bw = 1" (Some 1) c.Wd_core.Classify.branch_treewidth;
  let report = Fmt.str "%a" Wd_core.Classify.pp c in
  check Alcotest.bool "report mentions PTIME" true (contains report "PTIME")

let test_paper_example1_end_to_end () =
  (* P1 from Example 1 over data where the first OPT arm can and cannot
     extend *)
  let g =
    Graph.of_triples
      [
        Triple.make (Term.iri "n:a") (Term.iri "p:p") (Term.iri "n:b");
        Triple.make (Term.iri "n:c") (Term.iri "p:q") (Term.iri "n:a");
        Triple.make (Term.iri "n:b") (Term.iri "p:r") (Term.iri "n:d");
        Triple.make (Term.iri "n:d") (Term.iri "p:r") (Term.iri "n:e");
      ]
  in
  let p =
    Sparql.Parser.parse_exn
      "{ { ?x p:p ?y . OPTIONAL { ?z p:q ?x } } OPTIONAL { ?y p:r ?o1 . ?o1 p:r ?o2 } }"
  in
  let sols = all_evaluators_agree p g in
  (* the unique solution extends through both OPT arms *)
  check Alcotest.int "one solution" 1 (Sparql.Mapping.Set.cardinal sols);
  let mu = Sparql.Mapping.Set.choose sols in
  check Alcotest.int "all five variables bound" 5 (Sparql.Mapping.cardinal mu)

let test_roundtrip_through_files () =
  (* serialize, reload, re-evaluate: same answers *)
  let g = load () in
  let s = Turtle.to_string g in
  match Turtle.parse_graph s with
  | Error e -> Alcotest.fail e
  | Ok g' ->
      let p = Sparql.Parser.parse_exn "{ ?a p:knows ?b }" in
      check Testutil.mapping_set "same answers after roundtrip"
        (Sparql.Eval.eval p g) (Sparql.Eval.eval p g')

let () =
  Alcotest.run "integration"
    [
      ( "scenarios",
        [
          Alcotest.test_case "optional profile query" `Quick test_optional_profile;
          Alcotest.test_case "union query" `Quick test_union_query;
          Alcotest.test_case "classify pipeline" `Quick test_classify_pipeline;
          Alcotest.test_case "paper example 1 end-to-end" `Quick
            test_paper_example1_end_to_end;
          Alcotest.test_case "turtle roundtrip evaluation" `Quick
            test_roundtrip_through_files;
        ] );
    ]
