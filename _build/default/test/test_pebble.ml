open Rdf
open Tgraphs
open Pebble

let check = Alcotest.check

let qcheck ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let v = Term.var
let iri = Term.iri
let t s p o = Triple.make s p o
let no_mu = Variable.Map.empty

let k3_pattern =
  Tgraph.of_triples
    [
      t (v "o1") (iri "p:r") (v "o2");
      t (v "o1") (iri "p:r") (v "o3");
      t (v "o2") (iri "p:r") (v "o3");
    ]

let closed_k3 = Gtgraph.make k3_pattern Variable.Set.empty

let random_mu g graph seed =
  let iris = Iri.Set.elements (Graph.dom graph) in
  let state = Random.State.make [| seed; 5 |] in
  Variable.Set.fold
    (fun var acc ->
      Variable.Map.add var
        (Term.Iri (List.nth iris (Random.State.int state (List.length iris))))
        acc)
    (Gtgraph.x g) Variable.Map.empty

let test_invalid_args () =
  Alcotest.check_raises "k >= 1"
    (Invalid_argument "Pebble_game.wins: k must be at least 1") (fun () ->
      ignore (Pebble_game.wins ~k:0 closed_k3 ~mu:no_mu Graph.empty));
  let g = Gtgraph.make k3_pattern (Variable.Set.singleton (Variable.of_string "o1")) in
  Alcotest.check_raises "µ covers X"
    (Invalid_argument "Pebble_game.wins: µ does not cover X") (fun () ->
      ignore (Pebble_game.wins ~k:2 g ~mu:no_mu Graph.empty))

let test_ground_only () =
  (* vars(S) \ X = ∅: the game degenerates to membership (property (1)) *)
  let ground = Tgraph.of_triples [ t (iri "n:a") (iri "p:r") (iri "n:b") ] in
  let g = Gtgraph.make ground Variable.Set.empty in
  let graph_yes = Graph.of_triples [ t (iri "n:a") (iri "p:r") (iri "n:b") ] in
  let graph_no = Graph.of_triples [ t (iri "n:b") (iri "p:r") (iri "n:a") ] in
  check Alcotest.bool "present" true (Pebble_game.wins ~k:2 g ~mu:no_mu graph_yes);
  check Alcotest.bool "absent" false (Pebble_game.wins ~k:2 g ~mu:no_mu graph_no)

let test_classic_c3_vs_k3 () =
  (* The transitive-triangle pattern vs a directed 3-cycle: no
     homomorphism, but the Duplicator wins with 2 pebbles. With 3 pebbles
     the Spoiler exposes the inconsistency (ctw of the pattern is 2, so
     k = 3 is exact by Prop. 3). *)
  let c3 = Generator.cycle ~n:3 ~pred:"r" in
  check Alcotest.bool "no hom" false (Gtgraph.maps_to_graph closed_k3 ~mu:no_mu c3);
  check Alcotest.bool "2 pebbles fooled" true
    (Pebble_game.wins ~k:2 closed_k3 ~mu:no_mu c3);
  check Alcotest.bool "3 pebbles exact" false
    (Pebble_game.wins ~k:3 closed_k3 ~mu:no_mu c3)

let test_tournament_k3 () =
  let tt = Generator.transitive_tournament ~n:4 ~pred:"r" in
  check Alcotest.bool "hom exists" true (Gtgraph.maps_to_graph closed_k3 ~mu:no_mu tt);
  check Alcotest.bool "2 pebbles" true (Pebble_game.wins ~k:2 closed_k3 ~mu:no_mu tt);
  check Alcotest.bool "3 pebbles" true (Pebble_game.wins ~k:3 closed_k3 ~mu:no_mu tt)

let test_mu_anchoring () =
  let s = Tgraph.of_triples [ t (v "x") (iri "p:r") (v "o") ] in
  let g = Gtgraph.make s (Variable.Set.singleton (Variable.of_string "x")) in
  let graph = Generator.path ~n:3 ~pred:"r" in
  let mu node = Variable.Map.singleton (Variable.of_string "x") (Generator.node node) in
  check Alcotest.bool "source wins" true (Pebble_game.wins ~k:2 g ~mu:(mu 0) graph);
  check Alcotest.bool "sink loses" false (Pebble_game.wins ~k:2 g ~mu:(mu 2) graph)

let hom_implies_pebble =
  qcheck ~count:80 "homomorphism implies pebble win (property (2))"
    (QCheck.make QCheck.Gen.(int_bound 100000))
    (fun seed ->
      let g = Testutil.gtgraph_of_seed ~triples:3 ~vars:3 seed in
      let graph = Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:8 (seed + 3) in
      if Iri.Set.is_empty (Graph.dom graph) then true
      else begin
        let mu = random_mu g graph seed in
        let hom = Gtgraph.maps_to_graph g ~mu graph in
        (not hom)
        || (Pebble_game.wins ~k:2 g ~mu graph && Pebble_game.wins ~k:3 g ~mu graph)
      end)

let pebble_monotone =
  qcheck ~count:60 "wins with k+1 pebbles implies wins with k"
    (QCheck.make QCheck.Gen.(int_bound 100000))
    (fun seed ->
      let g = Testutil.gtgraph_of_seed ~triples:3 ~vars:3 seed in
      let graph = Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:8 (seed + 7) in
      if Iri.Set.is_empty (Graph.dom graph) then true
      else begin
        let mu = random_mu g graph (seed + 1) in
        (not (Pebble_game.wins ~k:3 g ~mu graph))
        || Pebble_game.wins ~k:2 g ~mu graph
      end)

let prop3_exactness =
  qcheck ~count:80 "ctw <= k-1 makes the k-pebble game exact (Prop. 3)"
    (QCheck.make QCheck.Gen.(int_bound 100000))
    (fun seed ->
      let g = Testutil.gtgraph_of_seed ~triples:3 ~vars:4 seed in
      let graph = Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:8 (seed + 11) in
      if Iri.Set.is_empty (Graph.dom graph) then true
      else begin
        let mu = random_mu g graph (seed + 2) in
        let k = Cores.ctw g + 1 in
        if k < 2 || k > 4 then true
        else Pebble_game.wins ~k g ~mu graph = Gtgraph.maps_to_graph g ~mu graph
      end)

(* Proposition 4(1): (S1,X) → (S2,X) and (S2,X) →µ_k G imply
   (S1,X) →µ_k G. *)
let prop4_composition =
  qcheck ~count:60 "Prop 4(1): hom composes with pebble wins"
    (QCheck.make QCheck.Gen.(int_bound 100000))
    (fun seed ->
      let s2 = Testutil.gtgraph_of_seed ~triples:3 ~vars:3 seed in
      (* build S1 that maps into S2: a substituted variant of a subset of
         S2's triples (renaming some variables apart keeps a hom into S2) *)
      let x = Gtgraph.x s2 in
      let renamed, _ =
        Tgraph.rename_avoiding ~keep:x ~avoid:Variable.Set.empty (Gtgraph.s s2)
      in
      let s1 = Gtgraph.make renamed x in
      if not (Gtgraph.maps_to s1 s2) then true (* construction guarantees it *)
      else begin
        let graph = Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:8 (seed + 3) in
        if Iri.Set.is_empty (Graph.dom graph) then true
        else begin
          let mu = random_mu s2 graph seed in
          (not (Pebble_game.wins ~k:2 s2 ~mu graph))
          || Pebble_game.wins ~k:2 s1 ~mu graph
        end
      end)

(* Proposition 4(2): pebble wins combine over unions with disjoint
   existential variables. *)
let prop4_disjoint_union =
  qcheck ~count:60 "Prop 4(2): wins combine over disjoint unions"
    (QCheck.make QCheck.Gen.(int_bound 100000))
    (fun seed ->
      let s1 = Testutil.gtgraph_of_seed ~triples:2 ~vars:2 seed in
      let x = Gtgraph.x s1 in
      (* second part: rename s1's existential variables apart *)
      let renamed, _ =
        Tgraph.rename_avoiding ~keep:x ~avoid:Variable.Set.empty (Gtgraph.s s1)
      in
      let s2 = Gtgraph.make renamed x in
      let union = Gtgraph.make (Tgraph.union (Gtgraph.s s1) (Gtgraph.s s2)) x in
      let graph = Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:8 (seed + 7) in
      if Iri.Set.is_empty (Graph.dom graph) then true
      else begin
        let mu = random_mu s1 graph seed in
        (not (Pebble_game.wins ~k:2 s1 ~mu graph && Pebble_game.wins ~k:2 s2 ~mu graph))
        || Pebble_game.wins ~k:2 union ~mu graph
      end)

let test_stats () =
  Pebble_game.reset_stats ();
  check Alcotest.int "reset" 0 (Pebble_game.stats_families_explored ());
  let tt = Generator.transitive_tournament ~n:4 ~pred:"r" in
  ignore (Pebble_game.wins ~k:2 closed_k3 ~mu:no_mu tt);
  check Alcotest.bool "counted" true (Pebble_game.stats_families_explored () > 0)

let () =
  Alcotest.run "pebble"
    [
      ( "basics",
        [
          Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
          Alcotest.test_case "ground-only is membership" `Quick test_ground_only;
          Alcotest.test_case "µ anchoring" `Quick test_mu_anchoring;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
      ( "classic instances",
        [
          Alcotest.test_case "C3 fools 2 pebbles, not 3" `Quick test_classic_c3_vs_k3;
          Alcotest.test_case "tournament agrees" `Quick test_tournament_k3;
        ] );
      ( "laws",
        [
          hom_implies_pebble; pebble_monotone; prop3_exactness;
          prop4_composition; prop4_disjoint_union;
        ] );
    ]
