(* Cross-cutting algebraic and semantic laws — properties the literature
   states (or that follow from the definitions) which a correct
   implementation must satisfy globally. These complement the per-module
   suites with laws that span layers. *)

open Rdf

let qcheck ?(count = 80) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let seed_arb = QCheck.make QCheck.Gen.(int_bound 1_000_000)

let eval = Sparql.Eval.eval
let ( === ) = Sparql.Mapping.Set.equal

let pattern_pair_of_seed seed =
  ( Testutil.wd_pattern_of_seed ~union:1 ~triples:4 seed,
    Testutil.wd_pattern_of_seed ~union:1 ~triples:4 (seed + 1) )

let graph_of seed = Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:10 seed

(* ------------------------------------------------------------------ *)
(* Algebraic laws of the operators (under the defining semantics)      *)
(* ------------------------------------------------------------------ *)

let union_laws =
  qcheck "UNION is commutative, associative, idempotent" seed_arb (fun seed ->
      let p, q = pattern_pair_of_seed seed in
      let g = graph_of (seed + 2) in
      eval (Sparql.Algebra.union p q) g === eval (Sparql.Algebra.union q p) g
      && eval (Sparql.Algebra.union p (Sparql.Algebra.union q p)) g
         === eval (Sparql.Algebra.union (Sparql.Algebra.union p q) p) g
      && eval (Sparql.Algebra.union p p) g === eval p g)

let and_laws =
  qcheck "AND is commutative and associative" seed_arb (fun seed ->
      let p, q = pattern_pair_of_seed seed in
      let r = Testutil.wd_pattern_of_seed ~union:1 ~triples:3 (seed + 7) in
      let g = graph_of (seed + 2) in
      eval (Sparql.Algebra.and_ p q) g === eval (Sparql.Algebra.and_ q p) g
      && eval (Sparql.Algebra.and_ p (Sparql.Algebra.and_ q r)) g
         === eval (Sparql.Algebra.and_ (Sparql.Algebra.and_ p q) r) g)

let opt_laws =
  qcheck "OPT contains AND and extends left solutions" seed_arb (fun seed ->
      let p, q = pattern_pair_of_seed seed in
      let g = graph_of (seed + 2) in
      let opt_sols = eval (Sparql.Algebra.opt p q) g in
      let and_sols = eval (Sparql.Algebra.and_ p q) g in
      let left_sols = eval p g in
      Sparql.Mapping.Set.subset and_sols opt_sols
      && Sparql.Mapping.Set.for_all
           (fun mu ->
             Sparql.Mapping.Set.exists
               (fun mu1 -> Sparql.Mapping.subsumes mu mu1)
               left_sols)
           opt_sols)

let filter_laws =
  qcheck "FILTER composes as conjunction and commutes" seed_arb (fun seed ->
      let p = Testutil.wd_pattern_of_seed ~union:1 ~triples:4 seed in
      let g = graph_of (seed + 2) in
      match Variable.Set.elements (Sparql.Algebra.vars p) with
      | x :: y :: _ ->
          let c1 = Sparql.Condition.Bound x in
          let c2 = Sparql.Condition.neq (Term.Var x) (Term.Var y) in
          let nested =
            Sparql.Algebra.filter (Sparql.Algebra.filter p c1) c2
          in
          let conj = Sparql.Algebra.filter p (Sparql.Condition.And (c1, c2)) in
          let swapped =
            Sparql.Algebra.filter (Sparql.Algebra.filter p c2) c1
          in
          eval nested g === eval conj g && eval nested g === eval swapped g
      | _ -> true)

let select_laws =
  qcheck "SELECT is idempotent and monotone in the variable set" seed_arb
    (fun seed ->
      let p = Testutil.wd_pattern_of_seed ~union:1 ~triples:4 seed in
      let g = graph_of (seed + 2) in
      match Variable.Set.elements (Sparql.Algebra.vars p) with
      | x :: _ ->
          let vs = Variable.Set.singleton x in
          let s = Sparql.Algebra.select vs p in
          eval (Sparql.Algebra.select vs s) g === eval s g
          && Sparql.Mapping.Set.for_all
               (fun mu -> Variable.Set.subset (Sparql.Mapping.dom mu) vs)
               (eval s g)
      | [] -> true)

(* ------------------------------------------------------------------ *)
(* Weak monotonicity of well-designed patterns                         *)
(* ------------------------------------------------------------------ *)

(* Pérez et al.: wd patterns are weakly monotone — growing the graph can
   only extend solutions (⊑-wise), never lose them. *)
let weak_monotonicity =
  qcheck "well-designed patterns are weakly monotone" seed_arb (fun seed ->
      let p = Testutil.wd_pattern_of_seed ~triples:5 seed in
      let g = graph_of (seed + 2) in
      let extra = Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:4 (seed + 3) in
      let g' = Graph.union g extra in
      Sparql.Mapping.Set.for_all
        (fun mu ->
          Sparql.Mapping.Set.exists
            (fun mu' -> Sparql.Mapping.subsumes mu' mu)
            (eval p g'))
        (eval p g))

(* renaming variables consistently does not change widths *)
let width_renaming_invariance =
  qcheck ~count:40 "widths are invariant under variable renaming" seed_arb
    (fun seed ->
      let p = Testutil.wd_pattern_of_seed ~union:1 ~triples:5 seed in
      match Wdpt.Pattern_forest.of_algebra p with
      | [ tree ] ->
          let renamed =
            Wdpt.Pattern_tree.rename
              (fun v -> Variable.of_string ("rn_" ^ Variable.to_string v))
              tree
          in
          Wd_core.Branch_treewidth.of_tree tree
          = Wd_core.Branch_treewidth.of_tree renamed
          && Wd_core.Domination_width.of_forest [ tree ]
             = Wd_core.Domination_width.of_forest [ renamed ]
      | _ -> true)

(* ------------------------------------------------------------------ *)
(* Pebble game monotonicity                                            *)
(* ------------------------------------------------------------------ *)

let pebble_target_monotone =
  qcheck ~count:60 "duplicator wins survive graph extension" seed_arb
    (fun seed ->
      let g = Testutil.gtgraph_of_seed ~triples:3 ~vars:3 seed in
      let graph = graph_of (seed + 2) in
      let extra = Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:4 (seed + 5) in
      let graph' = Graph.union graph extra in
      if Iri.Set.is_empty (Graph.dom graph) then true
      else begin
        let iris = Iri.Set.elements (Graph.dom graph) in
        let state = Random.State.make [| seed; 5 |] in
        let mu =
          Variable.Set.fold
            (fun var acc ->
              Variable.Map.add var
                (Term.Iri (List.nth iris (Random.State.int state (List.length iris))))
                acc)
            (Tgraphs.Gtgraph.x g) Variable.Map.empty
        in
        (not (Pebble.Pebble_game.wins ~k:2 g ~mu graph))
        || Pebble.Pebble_game.wins ~k:2 g ~mu graph'
      end)

(* ------------------------------------------------------------------ *)
(* Treewidth structure laws                                            *)
(* ------------------------------------------------------------------ *)

let treewidth_edge_laws =
  qcheck ~count:60 "treewidth: subgraph-monotone, +1 per added edge"
    (QCheck.pair Testutil.small_ugraph seed_arb) (fun (g, seed) ->
      let open Graphtheory in
      let n = Ugraph.n g in
      if n < 2 then true
      else begin
        let state = Random.State.make [| seed; 3 |] in
        let u = Random.State.int state n and v = Random.State.int state n in
        if u = v then true
        else begin
          let tw = Treewidth.treewidth g in
          let g_plus = Ugraph.add_edge g u v in
          let tw_plus = Treewidth.treewidth g_plus in
          tw <= tw_plus && tw_plus <= tw + 1
        end
      end)

let treewidth_clique_lower =
  qcheck ~count:60 "treewidth >= max-clique - 1" Testutil.small_ugraph
    (fun g ->
      let rec largest k =
        if Hardness.Clique.has_clique g k then largest (k + 1) else k - 1
      in
      let omega = largest 1 in
      Graphtheory.Treewidth.treewidth g >= omega - 1)

(* ------------------------------------------------------------------ *)
(* Translation stability                                               *)
(* ------------------------------------------------------------------ *)

let translation_idempotent =
  qcheck ~count:60 "to_algebra/of_algebra round-trips pattern trees" seed_arb
    (fun seed ->
      let p = Testutil.wd_pattern_of_seed ~union:1 ~triples:5 seed in
      match Wdpt.Pattern_forest.of_algebra p with
      | [ tree ] ->
          Wdpt.Pattern_tree.equal tree
            (Wdpt.Translate.tree_of_algebra (Wdpt.Pattern_tree.to_algebra tree))
      | _ -> true)

let onf_translation_same_forest =
  qcheck ~count:60 "opt_normal_form yields the same pattern tree" seed_arb
    (fun seed ->
      let p = Testutil.wd_pattern_of_seed ~union:1 ~triples:5 seed in
      let onf = Wdpt.Translate.opt_normal_form p in
      match Wdpt.Pattern_forest.of_algebra p, Wdpt.Pattern_forest.of_algebra onf with
      | [ t1 ], [ t2 ] -> Wdpt.Pattern_tree.equal t1 t2
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Engine consistency across algorithms                                *)
(* ------------------------------------------------------------------ *)

let engine_algorithms_agree =
  qcheck ~count:40 "engine: naive and pebble plans agree" seed_arb
    (fun seed ->
      let p = Testutil.wd_pattern_of_seed ~triples:5 seed in
      let g = graph_of (seed + 2) in
      let naive = Wd_core.Engine.plan ~force:Wd_core.Engine.Naive p in
      let auto = Wd_core.Engine.plan p in
      Sparql.Mapping.Set.equal
        (Wd_core.Engine.solutions naive g)
        (Wd_core.Engine.solutions auto g))

let () =
  Alcotest.run "properties"
    [
      ( "operator laws",
        [ union_laws; and_laws; opt_laws; filter_laws; select_laws ] );
      ( "monotonicity",
        [ weak_monotonicity; pebble_target_monotone ] );
      ( "width invariance",
        [ width_renaming_invariance ] );
      ( "treewidth laws",
        [ treewidth_edge_laws; treewidth_clique_lower ] );
      ( "translation stability",
        [ translation_idempotent; onf_translation_same_forest ] );
      ("engine", [ engine_algorithms_agree ]);
    ]
