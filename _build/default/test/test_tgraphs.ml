open Rdf
open Tgraphs

let check = Alcotest.check

let qcheck ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let v = Term.var
let iri = Term.iri
let t s p o = Triple.make s p o
let vs names = Variable.Set.of_list (List.map Variable.of_string names)

(* ------------------------------------------------------------------ *)
(* Tgraph                                                              *)
(* ------------------------------------------------------------------ *)

let test_tgraph_basics () =
  let s =
    Tgraph.of_triples
      [ t (v "x") (iri "p:p") (v "y"); t (v "y") (iri "p:q") (iri "c:1") ]
  in
  check Alcotest.int "cardinal" 2 (Tgraph.cardinal s);
  check Alcotest.int "vars" 2 (Variable.Set.cardinal (Tgraph.vars s));
  check Alcotest.int "iris" 3 (Iri.Set.cardinal (Tgraph.iris s));
  check Alcotest.bool "subset refl" true (Tgraph.subset s s);
  check Alcotest.bool "not proper" false (Tgraph.proper_subset s s);
  let smaller = Tgraph.remove s (t (v "x") (iri "p:p") (v "y")) in
  check Alcotest.bool "proper subset" true (Tgraph.proper_subset smaller s)

let test_rename_avoiding () =
  let s =
    Tgraph.of_triples
      [ t (v "x") (iri "p:p") (v "y"); t (v "y") (iri "p:p") (v "z") ]
  in
  let keep = vs [ "x" ] in
  let avoid = vs [ "y"; "z"; "w" ] in
  let renamed, subst = Tgraph.rename_avoiding ~keep ~avoid s in
  check Alcotest.bool "x kept" true
    (Variable.Set.mem (Variable.of_string "x") (Tgraph.vars renamed));
  check Alcotest.bool "y renamed" false
    (Variable.Set.mem (Variable.of_string "y") (Tgraph.vars renamed));
  check Alcotest.bool "fresh names avoid the avoid set" true
    (Variable.Set.for_all
       (fun fresh ->
         Variable.Set.mem fresh keep || not (Variable.Set.mem fresh avoid))
       (Tgraph.vars renamed));
  check Alcotest.int "two renamings" 2 (Variable.Map.cardinal subst)

let test_freeze_thaw () =
  let s = Tgraph.of_triples [ t (v "x") (iri "p:p") (iri "c:1") ] in
  let frozen = Tgraph.freeze s in
  check Alcotest.bool "frozen is ground" true
    (List.for_all Triple.is_ground (Graph.triples frozen));
  check Alcotest.bool "thaw inverts freeze" true
    (Term.equal (v "x") (Tgraph.thaw_term (Tgraph.freeze_term (v "x"))));
  check Alcotest.bool "thaw fixes plain iris" true
    (Term.equal (iri "c:1") (Tgraph.thaw_term (iri "c:1")))

(* ------------------------------------------------------------------ *)
(* Homomorphism                                                        *)
(* ------------------------------------------------------------------ *)

let path2 =
  Tgraph.of_triples [ t (v "a") (iri "p:r") (v "b"); t (v "b") (iri "p:r") (v "c") ]

let test_hom_basics () =
  let target = Graph.to_index (Generator.path ~n:5 ~pred:"r") in
  check Alcotest.bool "path2 -> path5" true
    (Homomorphism.exists ~source:path2 ~target ());
  check Alcotest.int "count = 3 placements" 3
    (Homomorphism.count ~source:path2 ~target ());
  let single = Graph.to_index (Generator.path ~n:2 ~pred:"r") in
  check Alcotest.bool "path2 -/-> single edge" false
    (Homomorphism.exists ~source:path2 ~target:single ())

let test_hom_identity () =
  let s = Testutil.tgraph_of_seed 42 in
  check Alcotest.bool "any t-graph maps into itself" true
    (Homomorphism.exists ~source:s ~target:s ())

let test_hom_pre () =
  let target = Graph.to_index (Generator.path ~n:5 ~pred:"r") in
  let pre v_name node =
    Variable.Map.singleton (Variable.of_string v_name) (Generator.node node)
  in
  check Alcotest.int "anchored count" 1
    (Homomorphism.count ~pre:(pre "a" 0) ~source:path2 ~target ());
  check Alcotest.bool "anchored impossible" false
    (Homomorphism.exists ~pre:(pre "a" 4) ~source:path2 ~target ());
  let bad = Variable.Map.singleton (Variable.of_string "a") (iri "c:nowhere") in
  check Alcotest.bool "dangling pre" false
    (Homomorphism.exists ~pre:bad ~source:path2 ~target ())

let test_hom_repeated_var () =
  let loop_pattern = Tgraph.of_triples [ t (v "x") (iri "p:r") (v "x") ] in
  let no_loop = Graph.to_index (Generator.cycle ~n:3 ~pred:"r") in
  check Alcotest.bool "no self loop" false
    (Homomorphism.exists ~source:loop_pattern ~target:no_loop ());
  let with_loop = Rdf.Index.of_triples [ t (iri "n:0") (iri "p:r") (iri "n:0") ] in
  check Alcotest.bool "self loop found" true
    (Homomorphism.exists ~source:loop_pattern ~target:with_loop ())

let test_hom_all_distinct () =
  let target = Graph.to_index (Generator.transitive_tournament ~n:4 ~pred:"r") in
  let tri =
    Tgraph.of_triples
      [
        t (v "a") (iri "p:r") (v "b");
        t (v "b") (iri "p:r") (v "c");
        t (v "a") (iri "p:r") (v "c");
      ]
  in
  let homs = Homomorphism.all ~source:tri ~target () in
  check Alcotest.int "4 homs" 4 (List.length homs);
  let distinct = List.sort_uniq (Variable.Map.compare Term.compare) homs in
  check Alcotest.int "no duplicates" 4 (List.length distinct);
  check Alcotest.int "limit respected" 2
    (List.length (Homomorphism.all ~limit:2 ~source:tri ~target ()))

let test_hom_empty_source () =
  let target = Graph.to_index (Generator.path ~n:3 ~pred:"r") in
  check Alcotest.int "empty source has the empty hom" 1
    (Homomorphism.count ~source:Tgraph.empty ~target ())

(* Brute-force oracle. *)
let brute_force_count source target =
  let source_vars = Variable.Set.elements (Tgraph.vars source) in
  let target_terms = Term.Set.elements (Rdf.Index.terms target) in
  let count = ref 0 in
  let rec go assignment = function
    | [] ->
        if
          List.for_all
            (fun triple ->
              Rdf.Index.mem target
                (Triple.subst
                   (fun var -> Variable.Map.find_opt var assignment)
                   triple))
            (Tgraph.triples source)
        then incr count
    | var :: rest ->
        List.iter
          (fun term -> go (Variable.Map.add var term assignment) rest)
          target_terms
  in
  (match source_vars, target_terms with
  | [], _ -> go Variable.Map.empty []
  | _, [] -> ()
  | _ -> go Variable.Map.empty source_vars);
  !count

let hom_vs_brute_force =
  qcheck ~count:200 "solver existence agrees with brute force"
    (QCheck.make QCheck.Gen.(int_bound 100000))
    (fun seed ->
      let source = Testutil.tgraph_of_seed ~triples:3 ~vars:3 seed in
      let target =
        Rdf.Index.of_triples
          (Graph.triples (Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:7 (seed + 1)))
      in
      Homomorphism.exists ~source ~target ()
      = (brute_force_count source target > 0))

let hom_count_vs_brute_force =
  qcheck ~count:100 "solver count agrees with brute force"
    (QCheck.make QCheck.Gen.(int_bound 100000))
    (fun seed ->
      let source = Testutil.tgraph_of_seed ~triples:2 ~vars:2 seed in
      let target =
        Rdf.Index.of_triples
          (Graph.triples (Testutil.graph_of_seed ~nodes:3 ~preds:2 ~triples:6 (seed + 2)))
      in
      Homomorphism.count ~source ~target () = brute_force_count source target)

(* ------------------------------------------------------------------ *)
(* Gtgraph                                                             *)
(* ------------------------------------------------------------------ *)

let test_gtgraph_make () =
  Alcotest.check_raises "X must be within vars"
    (Invalid_argument "Gtgraph.make: X must be a subset of vars(S)") (fun () ->
      ignore (Gtgraph.make path2 (vs [ "zz" ])));
  let g = Gtgraph.make path2 (vs [ "a" ]) in
  check Alcotest.int "existential vars" 2
    (Variable.Set.cardinal (Gtgraph.existential_vars g))

let test_gtgraph_hom_fixes_x () =
  let one = Tgraph.of_triples [ t (v "a") (iri "p:r") (v "b") ] in
  let g = Gtgraph.make one (vs [ "a" ]) in
  let target_ok =
    Gtgraph.make (Tgraph.of_triples [ t (v "a") (iri "p:r") (v "c") ]) (vs [ "a" ])
  in
  check Alcotest.bool "fixed var present" true (Gtgraph.maps_to g target_ok);
  let target_bad =
    Gtgraph.make (Tgraph.of_triples [ t (v "z") (iri "p:r") (v "a") ]) (vs [ "a" ])
  in
  check Alcotest.bool "cannot move fixed var" false (Gtgraph.maps_to g target_bad)

let test_gtgraph_tw () =
  let k = 4 in
  let kk = Workload.Query_families.kk k [ "o1"; "o2"; "o3"; "o4" ] in
  let g = Gtgraph.make kk Variable.Set.empty in
  check Alcotest.int "clique pattern tw = k-1" (k - 1) (Gtgraph.tw g);
  let g2 = Gtgraph.make kk (Tgraph.vars kk) in
  check Alcotest.int "no existential vertices -> 1" 1 (Gtgraph.tw g2);
  let s = Tgraph.of_triples [ t (v "x") (iri "p:p") (v "y") ] in
  check Alcotest.int "no existential edges -> 1" 1
    (Gtgraph.tw (Gtgraph.make s (vs [ "x" ])))

let test_hom_to_graph () =
  let g = Gtgraph.make path2 (vs [ "a" ]) in
  let graph = Generator.path ~n:5 ~pred:"r" in
  let mu0 = Variable.Map.singleton (Variable.of_string "a") (Generator.node 0) in
  check Alcotest.bool "extends from node 0" true (Gtgraph.maps_to_graph g ~mu:mu0 graph);
  let mu4 = Variable.Map.singleton (Variable.of_string "a") (Generator.node 4) in
  check Alcotest.bool "cannot extend from sink" false
    (Gtgraph.maps_to_graph g ~mu:mu4 graph);
  Alcotest.check_raises "µ must cover X"
    (Invalid_argument "Gtgraph.hom_to_graph: µ does not cover X") (fun () ->
      ignore (Gtgraph.hom_to_graph g ~mu:Variable.Map.empty graph))

(* ------------------------------------------------------------------ *)
(* Cores (Example 3 of the paper)                                      *)
(* ------------------------------------------------------------------ *)

let example3_s k =
  let names = List.init k (fun i -> Printf.sprintf "o%d" (i + 1)) in
  Tgraph.union
    (Tgraph.of_triples
       [
         t (v "z") (iri "p:q") (v "x");
         t (v "x") (iri "p:p") (v "y");
         t (v "y") (iri "p:r") (v "o1");
       ])
    (Workload.Query_families.kk k names)

let example3_s' k =
  Tgraph.union (example3_s k)
    (Tgraph.of_triples
       [ t (v "y") (iri "p:r") (v "o"); t (v "o") (iri "p:r") (v "o") ])

let x3 = vs [ "x"; "y"; "z" ]

let test_example3 () =
  let k = 4 in
  let s = Gtgraph.make (example3_s k) x3 in
  check Alcotest.bool "(S,X) is a core" true (Cores.is_core s);
  check Alcotest.int "ctw(S,X) = k-1" (k - 1) (Cores.ctw s);
  let s' = Gtgraph.make (example3_s' k) x3 in
  check Alcotest.bool "(S',X) is not a core" false (Cores.is_core s');
  check Alcotest.int "tw(S',X) = k-1" (k - 1) (Gtgraph.tw s');
  check Alcotest.int "ctw(S',X) = 1" 1 (Cores.ctw s');
  (* the paper names the core: C' = {(z,q,x),(x,p,y),(y,r,o),(o,r,o)} *)
  let core = Cores.core s' in
  check Alcotest.int "core size" 4 (Tgraph.cardinal (Gtgraph.s core));
  check Alcotest.bool "core equivalent to S'" true (Gtgraph.hom_equivalent core s')

let core_laws =
  qcheck ~count:80 "core laws: is_core, equivalent, idempotent, ctw <= tw"
    Testutil.small_gtgraph (fun g ->
      let core = Cores.core g in
      Cores.is_core core
      && Gtgraph.hom_equivalent core g
      && Gtgraph.equal (Cores.core core) core
      && Cores.ctw g <= Gtgraph.tw g)

let core_subgraph_law =
  qcheck ~count:80 "core is a subgraph of the original"
    Testutil.small_gtgraph (fun g ->
      Tgraph.subset (Gtgraph.s (Cores.core g)) (Gtgraph.s g))

(* ------------------------------------------------------------------ *)
(* Tree-decomposition-guided exact test                                *)
(* ------------------------------------------------------------------ *)

let test_td_hom_basics () =
  let g = Gtgraph.make path2 (vs [ "a" ]) in
  let graph = Generator.path ~n:5 ~pred:"r" in
  let mu node = Variable.Map.singleton (Variable.of_string "a") (Generator.node node) in
  check Alcotest.bool "extends from source" true
    (Td_hom.maps_to_graph g ~mu:(mu 0) graph);
  check Alcotest.bool "fails from sink" false
    (Td_hom.maps_to_graph g ~mu:(mu 4) graph);
  (* exactness where the pebble game over-approximates: transitive
     triangle vs directed 3-cycle *)
  let tri =
    Tgraph.of_triples
      [
        t (v "o1") (iri "p:r") (v "o2");
        t (v "o2") (iri "p:r") (v "o3");
        t (v "o1") (iri "p:r") (v "o3");
      ]
  in
  let closed = Gtgraph.make tri Variable.Set.empty in
  let c3 = Generator.cycle ~n:3 ~pred:"r" in
  check Alcotest.bool "td is exact on the fooling instance" false
    (Td_hom.maps_to_graph closed ~mu:Variable.Map.empty c3);
  check Alcotest.bool "2-pebble is not" true
    (Pebble.Pebble_game.wins ~k:2 closed ~mu:Variable.Map.empty c3);
  (* ground-only instances *)
  let ground = Gtgraph.make (Tgraph.of_triples [ t (iri "n:0") (iri "p:r") (iri "n:1") ]) Variable.Set.empty in
  check Alcotest.bool "ground present" true
    (Td_hom.maps_to_graph ground ~mu:Variable.Map.empty graph);
  Td_hom.reset_stats ();
  ignore (Td_hom.maps_to_graph g ~mu:(mu 0) graph);
  check Alcotest.bool "stats counted" true (Td_hom.stats_bag_assignments () > 0)

let test_td_hom_edge_cases () =
  (* disconnected Gaifman graph: two independent constraints, both must
     hold (the semijoin pass checks every decomposition component) *)
  let s =
    Tgraph.of_triples
      [ t (v "a") (iri "p:r") (v "b"); t (v "c") (iri "p:q") (v "d") ]
  in
  let g = Gtgraph.make s Variable.Set.empty in
  let both =
    Graph.of_triples
      [
        t (iri "n:0") (iri "p:r") (iri "n:1");
        t (iri "n:2") (iri "p:q") (iri "n:3");
      ]
  in
  let only_r = Graph.of_triples [ t (iri "n:0") (iri "p:r") (iri "n:1") ] in
  check Alcotest.bool "both components satisfied" true
    (Td_hom.maps_to_graph g ~mu:Variable.Map.empty both);
  check Alcotest.bool "missing component fails" false
    (Td_hom.maps_to_graph g ~mu:Variable.Map.empty only_r);
  (* repeated variable inside one triple *)
  let loop = Gtgraph.make (Tgraph.of_triples [ t (v "x") (iri "p:r") (v "x") ]) Variable.Set.empty in
  check Alcotest.bool "needs a self loop" false
    (Td_hom.maps_to_graph loop ~mu:Variable.Map.empty (Generator.cycle ~n:3 ~pred:"r"));
  check Alcotest.bool "finds a self loop" true
    (Td_hom.maps_to_graph loop ~mu:Variable.Map.empty
       (Graph.of_triples [ t (iri "n:0") (iri "p:r") (iri "n:0") ]));
  (* empty graph *)
  check Alcotest.bool "empty graph" false
    (Td_hom.maps_to_graph g ~mu:Variable.Map.empty Graph.empty);
  Alcotest.check_raises "µ must cover X"
    (Invalid_argument "Td_hom.maps_to_graph: µ does not cover X") (fun () ->
      ignore
        (Td_hom.maps_to_graph
           (Gtgraph.make s (vs [ "a" ]))
           ~mu:Variable.Map.empty Graph.empty))

let td_hom_exact =
  qcheck ~count:120 "td-guided test = exact homomorphism test"
    (QCheck.make QCheck.Gen.(int_bound 100000))
    (fun seed ->
      let g = Testutil.gtgraph_of_seed ~triples:4 ~vars:4 seed in
      let graph = Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:9 (seed + 3) in
      if Rdf.Iri.Set.is_empty (Graph.dom graph) then true
      else begin
        let iris = Iri.Set.elements (Graph.dom graph) in
        let state = Random.State.make [| seed; 5 |] in
        let mu =
          Variable.Set.fold
            (fun var acc ->
              Variable.Map.add var
                (Term.Iri (List.nth iris (Random.State.int state (List.length iris))))
                acc)
            (Gtgraph.x g) Variable.Map.empty
        in
        Td_hom.maps_to_graph g ~mu graph = Gtgraph.maps_to_graph g ~mu graph
      end)

let () =
  Alcotest.run "tgraphs"
    [
      ( "tgraph",
        [
          Alcotest.test_case "basics" `Quick test_tgraph_basics;
          Alcotest.test_case "rename_avoiding" `Quick test_rename_avoiding;
          Alcotest.test_case "freeze/thaw" `Quick test_freeze_thaw;
        ] );
      ( "homomorphism",
        [
          Alcotest.test_case "paths" `Quick test_hom_basics;
          Alcotest.test_case "identity" `Quick test_hom_identity;
          Alcotest.test_case "pre-assignments" `Quick test_hom_pre;
          Alcotest.test_case "repeated variables" `Quick test_hom_repeated_var;
          Alcotest.test_case "all/limit" `Quick test_hom_all_distinct;
          Alcotest.test_case "empty source" `Quick test_hom_empty_source;
          hom_vs_brute_force;
          hom_count_vs_brute_force;
        ] );
      ( "gtgraph",
        [
          Alcotest.test_case "make" `Quick test_gtgraph_make;
          Alcotest.test_case "hom fixes X" `Quick test_gtgraph_hom_fixes_x;
          Alcotest.test_case "tw conventions" `Quick test_gtgraph_tw;
          Alcotest.test_case "hom to graph" `Quick test_hom_to_graph;
        ] );
      ( "cores",
        [
          Alcotest.test_case "paper example 3" `Quick test_example3;
          core_laws;
          core_subgraph_law;
        ] );
      ( "td-guided test",
        [
          Alcotest.test_case "basics" `Quick test_td_hom_basics;
          Alcotest.test_case "edge cases" `Quick test_td_hom_edge_cases;
          td_hom_exact;
        ] );
    ]
