open Rdf
open Tgraphs
open Wdpt

let check = Alcotest.check

let qcheck ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let v = Term.var
let iri = Term.iri
let t s p o = Triple.make s p o
let tg = Tgraph.of_triples
let vs names = Variable.Set.of_list (List.map Variable.of_string names)
let parse = Sparql.Parser.parse_exn

(* ------------------------------------------------------------------ *)
(* Pattern_tree construction and validation                            *)
(* ------------------------------------------------------------------ *)

let chain_tree () =
  (* root (x,p,y); child (y,q,z); grandchild (z,q,w) *)
  Pattern_tree.make
    ~labels:
      [|
        tg [ t (v "x") (iri "p:p") (v "y") ];
        tg [ t (v "y") (iri "p:q") (v "z") ];
        tg [ t (v "z") (iri "p:q") (v "w") ];
      |]
    ~parent:[| -1; 0; 1 |]

let test_make_validations () =
  Alcotest.check_raises "empty label"
    (Invalid_argument "Pattern_tree.make: node 1 has empty label") (fun () ->
      ignore
        (Pattern_tree.make
           ~labels:[| tg [ t (v "x") (iri "p:p") (v "y") ]; Tgraph.empty |]
           ~parent:[| -1; 0 |]));
  Alcotest.check_raises "non-topological parent"
    (Invalid_argument "Pattern_tree.make: parents must precede children (topological ids)")
    (fun () ->
      ignore
        (Pattern_tree.make
           ~labels:
             [|
               tg [ t (v "x") (iri "p:p") (v "y") ];
               tg [ t (v "y") (iri "p:q") (v "z") ];
             |]
           ~parent:[| -1; 1 |]));
  (* variable ?x in root and grandchild but not child: disconnected *)
  Alcotest.check_raises "variable connectivity"
    (Invalid_argument "Pattern_tree.make: variable occurrences are not connected")
    (fun () ->
      ignore
        (Pattern_tree.make
           ~labels:
             [|
               tg [ t (v "x") (iri "p:p") (v "y") ];
               tg [ t (v "y") (iri "p:q") (v "z") ];
               tg [ t (v "z") (iri "p:q") (v "x") ];
             |]
           ~parent:[| -1; 0; 1 |]))

let test_accessors () =
  let tree = chain_tree () in
  check Alcotest.int "size" 3 (Pattern_tree.size tree);
  check Alcotest.(list int) "children of root" [ 1 ] (Pattern_tree.children tree 0);
  check Alcotest.(option int) "parent" (Some 1) (Pattern_tree.parent tree 2);
  check Alcotest.(option int) "root parent" None (Pattern_tree.parent tree 0);
  check Alcotest.(list int) "branch of grandchild" [ 0; 1 ] (Pattern_tree.branch tree 2);
  check Alcotest.(list int) "branch of root" [] (Pattern_tree.branch tree 0);
  check Alcotest.int "depth (edges on longest path)" 2 (Pattern_tree.depth tree);
  check Alcotest.int "total vars" 4 (Variable.Set.cardinal (Pattern_tree.vars tree));
  check Alcotest.int "pat size" 3 (Tgraph.cardinal (Pattern_tree.pat_all tree))

let test_nr_normal_form () =
  (* child 1 introduces no new variable: must be merged away, its label
     pushed into its child *)
  let tree =
    Pattern_tree.make
      ~labels:
        [|
          tg [ t (v "x") (iri "p:p") (v "y") ];
          tg [ t (v "y") (iri "p:q") (v "x") ];
          tg [ t (v "y") (iri "p:q") (v "z") ];
        |]
      ~parent:[| -1; 0; 1 |]
  in
  check Alcotest.bool "not NR" false (Pattern_tree.is_nr_normal_form tree);
  let nf = Pattern_tree.nr_normal_form tree in
  check Alcotest.bool "NR after" true (Pattern_tree.is_nr_normal_form nf);
  check Alcotest.int "node merged away" 2 (Pattern_tree.size nf);
  (* the ex-child of the merged node now carries both labels *)
  check Alcotest.int "label pushed down" 2 (Tgraph.cardinal (Pattern_tree.pat nf 1));
  (* semantics preserved *)
  let g = Generator.random_graph ~seed:5 ~n:5 ~predicates:[ "p"; "q" ] ~m:15 in
  check Testutil.mapping_set "same solutions"
    (Semantics.solutions_tree tree g)
    (Semantics.solutions_tree nf g)

let nr_preserves_semantics =
  qcheck ~count:60 "NR normal form preserves solutions"
    (QCheck.make QCheck.Gen.(int_bound 100000))
    (fun seed ->
      let p = Testutil.wd_pattern_of_seed ~union:1 ~triples:5 seed in
      match Pattern_forest.of_algebra p with
      | [ tree ] ->
          let g = Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:10 (seed + 1) in
          Pattern_tree.is_nr_normal_form tree
          && Sparql.Mapping.Set.equal
               (Semantics.solutions_tree tree g)
               (Sparql.Eval.eval p g)
      | _ -> false)

let test_to_algebra_roundtrip () =
  let f2 = Workload.Query_families.f_k 2 in
  List.iter
    (fun tree ->
      let back = Translate.tree_of_algebra (Pattern_tree.to_algebra tree) in
      check Alcotest.bool "tree -> algebra -> tree" true
        (Pattern_tree.equal tree back))
    f2

let test_rename () =
  let tree = chain_tree () in
  let renamed =
    Pattern_tree.rename
      (fun var -> Variable.of_string (Variable.to_string var ^ "_r"))
      tree
  in
  check Alcotest.bool "x_r present" true
    (Variable.Set.mem (Variable.of_string "x_r") (Pattern_tree.vars renamed));
  check Alcotest.bool "x gone" false
    (Variable.Set.mem (Variable.of_string "x") (Pattern_tree.vars renamed))

(* ------------------------------------------------------------------ *)
(* Translation (Example 2 of the paper)                                *)
(* ------------------------------------------------------------------ *)

let test_example2 () =
  (* P = P1 UNION ((?x,p,?y) OPT ((?z,q,?x) AND (?w,q,?z))), where P1 is
     Example 1's pattern with K_2(o1,o2) = {(o1,r,o2)} as second OPT arm.
     wdpf(P) = {T1, T2} matching Figure 2 at k = 2. *)
  let p =
    parse
      "{ { ?x p:p ?y . OPTIONAL { ?z p:q ?x } } OPTIONAL { ?y p:r ?o1 . ?o1 p:r ?o2 } } \
       UNION { ?x p:p ?y . OPTIONAL { ?z p:q ?x . ?w p:q ?z } }"
  in
  let forest = Pattern_forest.of_algebra p in
  check Alcotest.int "two trees" 2 (List.length forest);
  match forest with
  | [ t1; t2 ] ->
      (* T1: root {(x,p,y)} with children {(z,q,x)} and {(y,r,o1),(o1,r,o2)} *)
      check Alcotest.int "T1 size" 3 (Pattern_tree.size t1);
      check Alcotest.(list int) "T1 root children" [ 1; 2 ] (Pattern_tree.children t1 0);
      check Testutil.tgraph "T1 root" (tg [ t (v "x") (iri "p:p") (v "y") ])
        (Pattern_tree.pat t1 0);
      check Testutil.tgraph "T1 n11" (tg [ t (v "z") (iri "p:q") (v "x") ])
        (Pattern_tree.pat t1 1);
      check Testutil.tgraph "T1 n12"
        (tg [ t (v "y") (iri "p:r") (v "o1"); t (v "o1") (iri "p:r") (v "o2") ])
        (Pattern_tree.pat t1 2);
      (* T2: root {(x,p,y)} with child {(z,q,x),(w,q,z)} *)
      check Alcotest.int "T2 size" 2 (Pattern_tree.size t2);
      check Testutil.tgraph "T2 child"
        (tg [ t (v "z") (iri "p:q") (v "x"); t (v "w") (iri "p:q") (v "z") ])
        (Pattern_tree.pat t2 1)
  | _ -> Alcotest.fail "expected two trees"

let test_translate_rejects_non_wd () =
  let p2 =
    parse
      "{ { ?x p:p ?y . OPTIONAL { ?z p:q ?x } } OPTIONAL { ?y p:r ?z . ?z p:r ?o2 } }"
  in
  (match Translate.tree_of_algebra p2 with
  | exception Translate.Not_well_designed _ -> ()
  | _ -> Alcotest.fail "expected Not_well_designed");
  let u = parse "{ ?x p:p ?y } UNION { ?x p:q ?y }" in
  match Translate.tree_of_algebra u with
  | exception Translate.Not_well_designed _ -> ()
  | _ -> Alcotest.fail "tree_of_algebra must reject UNION"

let translation_preserves_semantics =
  qcheck ~count:60 "wdpf translation preserves semantics (Lemma 1)"
    (QCheck.make QCheck.Gen.(int_bound 100000))
    (fun seed ->
      let p = Testutil.wd_pattern_of_seed seed in
      let forest = Pattern_forest.of_algebra p in
      let g = Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:10 (seed + 5) in
      Sparql.Mapping.Set.equal (Semantics.solutions forest g) (Sparql.Eval.eval p g))

(* ------------------------------------------------------------------ *)
(* Subtrees                                                            *)
(* ------------------------------------------------------------------ *)

let test_subtree_enumeration () =
  let star =
    Pattern_tree.make
      ~labels:
        [|
          tg [ t (v "x") (iri "p:c") (v "y0") ];
          tg [ t (v "x") (iri "p:c") (v "y1") ];
          tg [ t (v "x") (iri "p:c") (v "y2") ];
        |]
      ~parent:[| -1; 0; 0 |]
  in
  check Alcotest.int "star subtrees: 2^2" 4 (List.length (Subtree.all star));
  let chain = chain_tree () in
  check Alcotest.int "chain subtrees: prefixes" 3 (List.length (Subtree.all chain));
  let sub = Subtree.of_nodes chain [ 0; 1 ] in
  check Alcotest.(list int) "children" [ 2 ] (Subtree.children sub);
  check Alcotest.int "pat union" 2 (Tgraph.cardinal (Subtree.pat sub));
  Alcotest.check_raises "must contain root"
    (Invalid_argument "Subtree.of_nodes: must contain the root") (fun () ->
      ignore (Subtree.of_nodes chain [ 1 ]));
  Alcotest.check_raises "parent-closed"
    (Invalid_argument "Subtree.of_nodes: not closed under parents") (fun () ->
      ignore (Subtree.of_nodes chain [ 0; 2 ]))

let test_subtree_with_vars () =
  let chain = chain_tree () in
  (match Subtree.with_vars chain (vs [ "x"; "y"; "z" ]) with
  | Some sub -> check Alcotest.(list int) "prefix found" [ 0; 1 ] (Subtree.members sub)
  | None -> Alcotest.fail "expected subtree");
  check Alcotest.bool "no subtree for partial vars" true
    (Subtree.with_vars chain (vs [ "x" ]) = None);
  check Alcotest.bool "no subtree for unrelated vars" true
    (Subtree.with_vars chain (vs [ "x"; "y"; "qq" ]) = None)

let test_subtree_matching () =
  let chain = chain_tree () in
  let g =
    Graph.of_triples
      [
        t (iri "n:a") (iri "p:p") (iri "n:b");
        t (iri "n:b") (iri "p:q") (iri "n:c");
      ]
  in
  let mu =
    Sparql.Mapping.of_list
      [
        (Variable.of_string "x", Iri.of_string "n:a");
        (Variable.of_string "y", Iri.of_string "n:b");
        (Variable.of_string "z", Iri.of_string "n:c");
      ]
  in
  (match Subtree.matching chain g mu with
  | Some sub -> check Alcotest.(list int) "matched prefix" [ 0; 1 ] (Subtree.members sub)
  | None -> Alcotest.fail "expected match");
  (* µ mapping z where the triple is absent: no subtree with exactly dom(µ) *)
  let mu_bad =
    Sparql.Mapping.of_list
      [
        (Variable.of_string "x", Iri.of_string "n:a");
        (Variable.of_string "y", Iri.of_string "n:b");
        (Variable.of_string "z", Iri.of_string "n:a");
      ]
  in
  check Alcotest.bool "no match" true (Subtree.matching chain g mu_bad = None)

(* ------------------------------------------------------------------ *)
(* Children assignments and GtG (Example 4 of the paper)               *)
(* ------------------------------------------------------------------ *)

let test_example4 () =
  let k = 3 in
  let forest = Workload.Query_families.f_k k in
  let t1 = List.nth forest 0 in
  let t1_r1 = Subtree.root_only t1 in
  (* supp(T1[r1]) = {T1, T2} *)
  check Alcotest.(list int) "supp of T1[r1]" [ 0; 1 ]
    (List.map fst (Children_assignment.supp forest t1_r1));
  (* GtG(T1[r1]) = {S_∆1, S_∆2}: both trees must be assigned *)
  let gtg = Children_assignment.gtg forest t1_r1 in
  check Alcotest.int "two valid assignments" 2 (List.length gtg);
  (* CA(T1[r1]): (2 children + skip) × (1 child + skip) − empty = 5 *)
  check Alcotest.int "all CA" 5
    (List.length (Children_assignment.all forest t1_r1));
  (* ∆3 = {T1 -> n11} alone is invalid: T2's witness maps into S_∆3 *)
  let delta3 = [ (0, 1) ] in
  check Alcotest.bool "partial assignment invalid" false
    (Children_assignment.is_valid forest t1_r1 delta3);
  (* ctws are {1, k-1} as computed in Example 5 *)
  let ctws = List.sort compare (List.map Cores.ctw gtg) in
  check Alcotest.(list int) "ctws" [ 1; k - 1 ] ctws;
  (* T1[r1, n11]: unique valid assignment; its S_∆ is (S', X) of Fig. 1 *)
  let t1_r1_n11 = Subtree.of_nodes t1 [ 0; 1 ] in
  check Alcotest.(list int) "supp includes T3" [ 0; 2 ]
    (List.map fst (Children_assignment.supp forest t1_r1_n11));
  let gtg2 = Children_assignment.gtg forest t1_r1_n11 in
  check Alcotest.int "singleton GtG" 1 (List.length gtg2);
  check Alcotest.int "ctw(S_∆) = 1" 1 (Cores.ctw (List.hd gtg2));
  (* T1[r1, n12] *)
  let t1_r1_n12 = Subtree.of_nodes t1 [ 0; 2 ] in
  let gtg3 = Children_assignment.gtg forest t1_r1_n12 in
  check Alcotest.int "singleton GtG" 1 (List.length gtg3);
  check Alcotest.int "ctw = 1" 1 (Cores.ctw (List.hd gtg3));
  (* full T1 has no children: GtG empty *)
  let full = Subtree.full t1 in
  check Alcotest.int "no children assignments" 0
    (List.length (Children_assignment.gtg forest full))

let test_s_delta_renaming () =
  (* in S_∆1 of Example 4, T1's child ?z and T2's child ?z must end up
     distinct: one of them is renamed *)
  let forest = Workload.Query_families.f_k 2 in
  let t1 = List.nth forest 0 in
  let t1_r1 = Subtree.root_only t1 in
  let delta = [ (0, 1); (1, 1) ] in
  let s_delta = Children_assignment.s_delta forest t1_r1 delta in
  (* pat(T) has 1 triple; n11 has 1; n2 has 2: with shared ?z they would
     collapse to fewer than 4 triples *)
  check Alcotest.int "no accidental capture" 4
    (Tgraph.cardinal (Gtgraph.s s_delta));
  check Alcotest.bool "X = {x,y}" true
    (Variable.Set.equal (Gtgraph.x s_delta) (vs [ "x"; "y" ]))

(* ------------------------------------------------------------------ *)
(* Semantics: Lemma 1 characterisation                                 *)
(* ------------------------------------------------------------------ *)

let check_agrees_with_solutions =
  qcheck ~count:60 "check agrees with solution enumeration"
    (QCheck.make QCheck.Gen.(int_bound 100000))
    (fun seed ->
      let p = Testutil.wd_pattern_of_seed seed in
      let forest = Pattern_forest.of_algebra p in
      let g = Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:10 (seed + 9) in
      let sols = Semantics.solutions forest g in
      (* every enumerated solution passes check *)
      Sparql.Mapping.Set.for_all (fun mu -> Semantics.check forest g mu) sols
      (* and random candidate mappings agree with membership *)
      && List.for_all
           (fun i ->
             let mu = Testutil.mapping_for p g (seed + i) in
             Semantics.check forest g mu = Sparql.Mapping.Set.mem mu sols)
           [ 1; 2; 3; 4; 5 ])

let () =
  Alcotest.run "wdpt"
    [
      ( "pattern tree",
        [
          Alcotest.test_case "validations" `Quick test_make_validations;
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "NR normal form" `Quick test_nr_normal_form;
          nr_preserves_semantics;
          Alcotest.test_case "to_algebra roundtrip" `Quick test_to_algebra_roundtrip;
          Alcotest.test_case "rename" `Quick test_rename;
        ] );
      ( "translation",
        [
          Alcotest.test_case "paper example 2" `Quick test_example2;
          Alcotest.test_case "rejects non-wd" `Quick test_translate_rejects_non_wd;
          translation_preserves_semantics;
        ] );
      ( "subtrees",
        [
          Alcotest.test_case "enumeration" `Quick test_subtree_enumeration;
          Alcotest.test_case "with_vars" `Quick test_subtree_with_vars;
          Alcotest.test_case "matching" `Quick test_subtree_matching;
        ] );
      ( "children assignments",
        [
          Alcotest.test_case "paper example 4" `Quick test_example4;
          Alcotest.test_case "renaming in S_∆" `Quick test_s_delta_renaming;
        ] );
      ("semantics", [ check_agrees_with_solutions ]);
    ]
