open Rdf
open Workload

let check = Alcotest.check

let qcheck ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let test_kk () =
  let kk = Query_families.kk 4 [ "a"; "b"; "c"; "d" ] in
  check Alcotest.int "C(4,2) triples" 6 (Tgraphs.Tgraph.cardinal kk);
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Query_families.kk: arity mismatch") (fun () ->
      ignore (Query_families.kk 3 [ "a" ]))

let test_f_k_shape () =
  let forest = Query_families.f_k 3 in
  check Alcotest.int "three trees" 3 (List.length forest);
  check Alcotest.(list int) "node counts" [ 3; 2; 2 ]
    (List.map Wdpt.Pattern_tree.size forest);
  List.iter
    (fun tree ->
      check Alcotest.bool "NR normal form" true
        (Wdpt.Pattern_tree.is_nr_normal_form tree))
    forest;
  Alcotest.check_raises "k >= 2"
    (Invalid_argument "Query_families.f_k: k must be at least 2") (fun () ->
      ignore (Query_families.f_k 1))

let test_t_prime_shape () =
  let tree = Query_families.t_prime_k 4 in
  check Alcotest.int "two nodes" 2 (Wdpt.Pattern_tree.size tree);
  (* child: (y,r,o1) + K_4 = 1 + 6 triples *)
  check Alcotest.int "child size" 7
    (Tgraphs.Tgraph.cardinal (Wdpt.Pattern_tree.pat tree 1))

let test_simple_families () =
  let path = Query_families.path_query 4 in
  check Alcotest.int "path nodes" 4 (Wdpt.Pattern_tree.size path);
  check Alcotest.bool "path NR" true (Wdpt.Pattern_tree.is_nr_normal_form path);
  let star = Query_families.star_query 5 in
  check Alcotest.int "star nodes" 6 (Wdpt.Pattern_tree.size star);
  check Alcotest.(list int) "star children" [ 1; 2; 3; 4; 5 ]
    (Wdpt.Pattern_tree.children star 0);
  let comb = Query_families.comb_query 3 in
  check Alcotest.int "comb nodes" 6 (Wdpt.Pattern_tree.size comb);
  let grid = Query_families.grid_query ~rows:2 ~cols:3 in
  (* 2x3 grid: 2*(3-1) horizontal + 3 vertical = 7 edges, + tail *)
  check Alcotest.int "grid child triples" 8
    (Tgraphs.Tgraph.cardinal (Wdpt.Pattern_tree.pat grid 1))

let random_patterns_wd =
  qcheck ~count:150 "random patterns are well-designed and translatable"
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let p =
        Query_families.random_wd_pattern ~seed ~triples:8 ~vars:8 ~preds:3
          ~depth:3 ~union:2
      in
      Sparql.Well_designed.is_well_designed p
      &&
      let forest = Wdpt.Pattern_forest.of_algebra p in
      List.for_all Wdpt.Pattern_tree.is_nr_normal_form forest)

let test_tournament_instance () =
  let g, mu = Graph_families.tournament_instance ~seed:1 ~n:10 in
  (* C(10,2) tournament edges + anchor *)
  check Alcotest.int "triples" 46 (Graph.cardinal g);
  check Alcotest.int "mu binds x,y" 2 (Sparql.Mapping.cardinal mu);
  (* determinism *)
  let g2, _ = Graph_families.tournament_instance ~seed:1 ~n:10 in
  check Testutil.graph "deterministic" g g2;
  (* no self loops *)
  List.iter
    (fun t ->
      check Alcotest.bool "no loop" false (Term.equal t.Triple.s t.Triple.o))
    (Graph.triples g)

let test_planted_instance () =
  let g, _ = Graph_families.planted_instance ~seed:2 ~n:10 ~k:4 in
  (* the planted transitive tournament edges are present *)
  let r = Term.iri "p:r" in
  for i = 1 to 4 do
    for j = i + 1 to 4 do
      check Alcotest.bool "planted edge" true
        (Graph.mem g (Triple.make (Graph_families.tnode i) r (Graph_families.tnode j)))
    done
  done;
  check Alcotest.bool "entry edge" true
    (Graph.mem g (Triple.make (Graph_families.tnode 0) r (Graph_families.tnode 1)))

let test_cyclic_instance () =
  let g, _ = Graph_families.cyclic_triangles_instance ~m:2 in
  (* 2 cycles x (3 cycle edges + 3 entry edges) + anchor = 13 *)
  check Alcotest.int "triples" 13 (Graph.cardinal g)

let planted_always_extendable =
  qcheck ~count:20 "planted instances contain the clique branch"
    (QCheck.make QCheck.Gen.(int_bound 10000))
    (fun seed ->
      let k = 3 + (seed mod 2) in
      let g, mu = Graph_families.planted_instance ~seed ~n:12 ~k in
      let tree = Query_families.clique_child k in
      (* the child must admit a homomorphism compatible with µ *)
      Wdpt.Semantics.child_extends tree g mu 1)

(* ------------------------------------------------------------------ *)
(* University workload                                                 *)
(* ------------------------------------------------------------------ *)

let test_university_data () =
  let g = University.generate ~seed:3 ~universities:2 in
  check Testutil.graph "deterministic" g (University.generate ~seed:3 ~universities:2);
  check Alcotest.bool "substantial" true (Graph.cardinal g > 300);
  (* every student has an advisor who works for some department *)
  let q =
    Sparql.Parser.parse_exn
      "{ ?s u:type c:Student . ?s u:advisor ?p . ?p u:worksFor ?d }"
  in
  check Alcotest.bool "advisors resolve" true
    (not (Sparql.Mapping.Set.is_empty (Sparql.Eval.eval q g)))

let test_university_queries () =
  let g = University.generate ~seed:1 ~universities:1 in
  List.iter
    (fun (name, src) ->
      let p = Sparql.Parser.parse_exn src in
      check Alcotest.bool (name ^ " well-designed") true
        (Sparql.Well_designed.is_well_designed p);
      let forest = Wdpt.Pattern_forest.of_algebra p in
      check Alcotest.int (name ^ " dw = 1") 1
        (Wd_core.Domination_width.of_forest forest);
      (* all three evaluators agree on the real data *)
      let reference = Sparql.Eval.eval p g in
      check Alcotest.bool (name ^ " has answers") true
        (not (Sparql.Mapping.Set.is_empty reference));
      check Testutil.mapping_set (name ^ " wdpt agrees") reference
        (Wdpt.Semantics.solutions forest g))
    University.queries

let () =
  Alcotest.run "workload"
    [
      ( "query families",
        [
          Alcotest.test_case "kk" `Quick test_kk;
          Alcotest.test_case "f_k shape" `Quick test_f_k_shape;
          Alcotest.test_case "t'_k shape" `Quick test_t_prime_shape;
          Alcotest.test_case "simple families" `Quick test_simple_families;
          random_patterns_wd;
        ] );
      ( "graph families",
        [
          Alcotest.test_case "tournament instance" `Quick test_tournament_instance;
          Alcotest.test_case "planted instance" `Quick test_planted_instance;
          Alcotest.test_case "cyclic triangles" `Quick test_cyclic_instance;
          planted_always_extendable;
        ] );
      ( "university",
        [
          Alcotest.test_case "data" `Quick test_university_data;
          Alcotest.test_case "queries" `Quick test_university_queries;
        ] );
    ]
