(** Shared QCheck generators and Alcotest testables for the test suite.

    Generators are seed-driven: QCheck shrinks over the integer seed while
    the construction itself stays deterministic, which keeps failures
    reproducible by seed. *)

open Rdf

let seed_gen = QCheck.Gen.int_bound 1_000_000

(* ------------------------------------------------------------------ *)
(* Random ground graphs.                                               *)
(* ------------------------------------------------------------------ *)

let graph_of_seed ?(nodes = 6) ?(preds = 2) ?(triples = 12) seed =
  Generator.random_graph ~seed ~n:nodes
    ~predicates:(List.init preds (fun i -> Printf.sprintf "q%d" i))
    ~m:triples

let small_graph =
  QCheck.make
    ~print:(fun g -> Fmt.str "%a" Graph.pp g)
    QCheck.Gen.(map (graph_of_seed ~nodes:5 ~preds:2 ~triples:10) seed_gen)

(* ------------------------------------------------------------------ *)
(* Random t-graphs and generalised t-graphs.                           *)
(* ------------------------------------------------------------------ *)

let tgraph_of_seed ?(triples = 4) ?(vars = 4) ?(preds = 2) ?(consts = 2) seed =
  let state = Random.State.make [| seed; triples; vars; 77 |] in
  let term () =
    if Random.State.int state 10 < 7 then
      Term.var (Printf.sprintf "v%d" (Random.State.int state vars))
    else Term.iri (Printf.sprintf "c:%d" (Random.State.int state consts))
  in
  let pred () = Term.iri (Printf.sprintf "q%d" (Random.State.int state preds)) in
  Tgraphs.Tgraph.of_triples
    (List.init
       (1 + Random.State.int state triples)
       (fun _ -> Triple.make (term ()) (pred ()) (term ())))

let gtgraph_of_seed ?(triples = 4) ?(vars = 4) ?(preds = 2) seed =
  let s = tgraph_of_seed ~triples ~vars ~preds seed in
  let state = Random.State.make [| seed; 13 |] in
  let x =
    Variable.Set.filter
      (fun _ -> Random.State.int state 3 = 0)
      (Tgraphs.Tgraph.vars s)
  in
  Tgraphs.Gtgraph.make s x

let small_tgraph =
  QCheck.make
    ~print:(fun s -> Fmt.str "%a" Tgraphs.Tgraph.pp s)
    QCheck.Gen.(map tgraph_of_seed seed_gen)

let small_gtgraph =
  QCheck.make
    ~print:(fun g -> Fmt.str "%a" Tgraphs.Gtgraph.pp g)
    QCheck.Gen.(map gtgraph_of_seed seed_gen)

(* ------------------------------------------------------------------ *)
(* Random well-designed patterns.                                      *)
(* ------------------------------------------------------------------ *)

let wd_pattern_of_seed ?(triples = 6) ?(vars = 6) ?(union = 2) ?(depth = 2) seed =
  Workload.Query_families.random_wd_pattern ~seed ~triples ~vars ~preds:2
    ~depth ~union

let wd_pattern =
  QCheck.make
    ~print:Sparql.Printer.to_string
    QCheck.Gen.(map wd_pattern_of_seed seed_gen)

let union_free_wd_pattern =
  QCheck.make
    ~print:Sparql.Printer.to_string
    QCheck.Gen.(map (wd_pattern_of_seed ~union:1) seed_gen)

(* A random mapping over a subset of the pattern's variables into the
   graph's IRIs — candidate inputs for membership checks. *)
let mapping_for pattern graph seed =
  let state = Random.State.make [| seed; 271 |] in
  let iris = Iri.Set.elements (Graph.dom graph) in
  if iris = [] then Sparql.Mapping.empty
  else
    Variable.Set.fold
      (fun v acc ->
        if Random.State.int state 2 = 0 then
          Sparql.Mapping.add v
            (List.nth iris (Random.State.int state (List.length iris)))
            acc
        else acc)
      (Sparql.Algebra.vars pattern)
      Sparql.Mapping.empty

(* ------------------------------------------------------------------ *)
(* Random undirected graphs.                                           *)
(* ------------------------------------------------------------------ *)

let ugraph_of_seed ?(n = 8) ?(edge_prob = 0.4) seed =
  let state = Random.State.make [| seed; n; 53 |] in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Random.State.float state 1.0 < edge_prob then edges := (i, j) :: !edges
    done
  done;
  Graphtheory.Ugraph.make ~n ~edges:!edges

let small_ugraph =
  QCheck.make
    ~print:(fun g -> Fmt.str "%a" Graphtheory.Ugraph.pp g)
    QCheck.Gen.(map ugraph_of_seed seed_gen)

(* ------------------------------------------------------------------ *)
(* Alcotest testables.                                                 *)
(* ------------------------------------------------------------------ *)

let mapping = Alcotest.testable Sparql.Mapping.pp Sparql.Mapping.equal

let mapping_set =
  Alcotest.testable
    (fun ppf s ->
      Fmt.pf ppf "{%a}"
        Fmt.(list ~sep:comma Sparql.Mapping.pp)
        (Sparql.Mapping.Set.elements s))
    Sparql.Mapping.Set.equal

let algebra = Alcotest.testable Sparql.Algebra.pp Sparql.Algebra.equal
let tgraph = Alcotest.testable Tgraphs.Tgraph.pp Tgraphs.Tgraph.equal
let graph = Alcotest.testable Graph.pp Graph.equal
let triple = Alcotest.testable Triple.pp Triple.equal
