(* Benchmark harness: regenerates every experiment of EXPERIMENTS.md.

   The paper (PODS'18) has no empirical section, so each experiment below is
   pinned to a theorem/example whose *shape* it demonstrates; see DESIGN.md
   §4 and EXPERIMENTS.md for the index. Run everything:

     dune exec bench/main.exe

   or a subset:

     dune exec bench/main.exe -- F1 T2 bechamel
*)

open Workload

let fast = ref false

(* ------------------------------------------------------------------ *)
(* JSON recording (--json / --json-out FILE)                           *)
(* ------------------------------------------------------------------ *)

let json_out : string option ref = ref None

(* (experiment, metric, value) in emission order; experiments that never
   call [record] simply don't appear in the JSON. *)
let records : (string * string * float) list ref = ref []

let record ~experiment ~metric value =
  records := (experiment, metric, value) :: !records

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_number v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6f" v

let write_json file =
  let ordered = List.rev !records in
  let experiment_ids =
    List.fold_left
      (fun acc (e, _, _) -> if List.mem e acc then acc else acc @ [ e ])
      [] ordered
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema_version\": 1,\n";
  Buffer.add_string buf "  \"pr\": \"pr10\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"host_cores\": %d,\n"
       (Domain.recommended_domain_count ()));
  Buffer.add_string buf
    (Printf.sprintf "  \"fast\": %b,\n" !fast);
  Buffer.add_string buf "  \"experiments\": {\n";
  List.iteri
    (fun i e ->
      Buffer.add_string buf (Printf.sprintf "    \"%s\": {\n" (json_escape e));
      Buffer.add_string buf "      \"metrics\": {\n";
      let metrics = List.filter (fun (e', _, _) -> e' = e) ordered in
      List.iteri
        (fun j (_, m, v) ->
          Buffer.add_string buf
            (Printf.sprintf "        \"%s\": %s%s\n" (json_escape m)
               (json_number v)
               (if j = List.length metrics - 1 then "" else ",")))
        metrics;
      Buffer.add_string buf "      }\n";
      Buffer.add_string buf
        (Printf.sprintf "    }%s\n"
           (if i = List.length experiment_ids - 1 then "" else ",")))
    experiment_ids;
  Buffer.add_string buf "  }\n}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  (* self-validation: re-read and make sure the schema marker and every
     recorded experiment survived the round trip, so downstream tooling
     that diffs BENCH_*.json notices drift as a hard failure *)
  let ic = open_in file in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  let ok =
    Astring.String.is_infix ~affix:"\"schema_version\": 1" contents
    && List.for_all
         (fun e ->
           Astring.String.is_infix ~affix:(Printf.sprintf "\"%s\": {" e) contents)
         experiment_ids
  in
  if not ok then begin
    Fmt.epr "JSON self-validation failed for %s@." file;
    exit 1
  end;
  Fmt.pr "@.wrote %s (%d experiments, %d metrics)@." file
    (List.length experiment_ids) (List.length ordered)

(* ------------------------------------------------------------------ *)
(* Timing helpers                                                      *)
(* ------------------------------------------------------------------ *)

let time_once f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

(* Median of [runs] timings; at least one run. Short thunks are
   batched so every sample is long enough for the wall clock (and the
   scheduler) to resolve reliably — the first probe run sizes the
   batch, and per-iteration time is the sample total over the batch. *)
let time_median ?(runs = 3) f =
  let runs = max 1 runs in
  let result = ref None in
  let probe_r, probe_t = time_once f in
  result := Some probe_r;
  let batch =
    if probe_t >= 0.02 then 1
    else min 1000 (int_of_float (Float.ceil (0.02 /. Float.max probe_t 1e-6)))
  in
  let sample () =
    let r, t =
      time_once (fun () ->
          let r = ref (f ()) in
          for _ = 2 to batch do
            r := f ()
          done;
          !r)
    in
    result := Some r;
    t /. float_of_int batch
  in
  let timings =
    if batch = 1 then probe_t :: List.init (runs - 1) (fun _ -> sample ())
    else List.init runs (fun _ -> sample ())
  in
  let sorted = List.sort compare timings in
  (Option.get !result, List.nth sorted (List.length sorted / 2))

let header id title anchor =
  Fmt.pr "@.======================================================================@.";
  Fmt.pr "%s: %s@." id title;
  Fmt.pr "   paper anchor: %s@." anchor;
  Fmt.pr "======================================================================@."

let ms t = t *. 1000.

(* ------------------------------------------------------------------ *)
(* T1 — evaluator agreement and baseline cost                          *)
(* ------------------------------------------------------------------ *)

let t1 () =
  header "T1" "evaluator agreement & baseline cost"
    "Section 2 semantics; Lemma 1 (wdPT characterisation)";
  Fmt.pr "random well-designed patterns × random graphs; all three evaluators@.";
  Fmt.pr "must agree; wdPF-based evaluation should beat the algebra baseline.@.@.";
  Fmt.pr "%4s %8s %6s %8s %7s %12s %12s %12s@." "seed" "triples" "|G|"
    "answers" "agree" "algebra(ms)" "naive(ms)" "pebble(ms)";
  let seeds = if !fast then [ 1; 2; 3 ] else [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let agree_all = ref true in
  let tot_ref = ref 0.0 and tot_naive = ref 0.0 and tot_pebble = ref 0.0 in
  List.iter
    (fun seed ->
      let p =
        Query_families.random_wd_pattern ~seed ~triples:7 ~vars:7 ~preds:2
          ~depth:3 ~union:2
      in
      let g =
        Rdf.Generator.random_graph ~seed:(seed * 11) ~n:8
          ~predicates:[ "q0"; "q1" ] ~m:30
      in
      let forest = Wdpt.Pattern_forest.of_algebra p in
      let dw = Wd_core.Domination_width.of_forest forest in
      let reference, t_ref = time_median (fun () -> Sparql.Eval.eval p g) in
      let naive, t_naive = time_median (fun () -> Wdpt.Semantics.solutions forest g) in
      let pebble, t_pebble =
        time_median (fun () -> Wd_core.Pebble_eval.solutions ~k:dw forest g)
      in
      let agree =
        Sparql.Mapping.Set.equal reference naive
        && Sparql.Mapping.Set.equal reference pebble
      in
      agree_all := !agree_all && agree;
      tot_ref := !tot_ref +. t_ref;
      tot_naive := !tot_naive +. t_naive;
      tot_pebble := !tot_pebble +. t_pebble;
      Fmt.pr "%4d %8d %6d %8d %7b %12.3f %12.3f %12.3f@." seed
        (Sparql.Algebra.size p) (Rdf.Graph.cardinal g)
        (Sparql.Mapping.Set.cardinal reference)
        agree (ms t_ref) (ms t_naive) (ms t_pebble))
    seeds;
  record ~experiment:"T1" ~metric:"algebra_total_ms" (ms !tot_ref);
  record ~experiment:"T1" ~metric:"naive_total_ms" (ms !tot_naive);
  record ~experiment:"T1" ~metric:"pebble_total_ms" (ms !tot_pebble);
  record ~experiment:"T1" ~metric:"agree" (if !agree_all then 1.0 else 0.0);
  Fmt.pr "@.all evaluators agree: %b@." !agree_all

(* ------------------------------------------------------------------ *)
(* F1 — the tractability gap on F_k (Example 5)                        *)
(* ------------------------------------------------------------------ *)

let f1 () =
  header "F1" "tractability gap on the paper's F_k family"
    "Theorem 1 + Examples 4/5: dw(F_k) = 1, so 2 pebbles always suffice";
  Fmt.pr "instance: anchored random tournament (n=%d); the optional clique@."
    (if !fast then 20 else 32);
  Fmt.pr "branch K_k forces the naive evaluator into a clique-like search@.";
  Fmt.pr "while the 2-pebble algorithm stays polynomial.@.@.";
  let n = if !fast then 20 else 32 in
  Fmt.pr "%4s %6s %12s %12s %8s %7s@." "k" "answer" "naive(ms)" "pebble(ms)"
    "ratio" "agree";
  let ks = if !fast then [ 2; 4; 6; 8; 9 ] else [ 2; 4; 6; 8; 9; 10; 11; 12; 13 ] in
  let stop = ref false in
  List.iter
    (fun k ->
      if not !stop then begin
        let forest = Query_families.f_k k in
        let g, mu = Graph_families.tournament_instance ~seed:1 ~n in
        let naive_ans, t_naive =
          time_median ~runs:1 (fun () -> Wd_core.Naive_eval.check forest g mu)
        in
        let pebble_ans, t_pebble =
          time_median ~runs:3 (fun () -> Wd_core.Pebble_eval.check ~k:1 forest g mu)
        in
        Fmt.pr "%4d %6b %12.3f %12.3f %8.1f %7b@." k naive_ans (ms t_naive)
          (ms t_pebble)
          (t_naive /. t_pebble)
          (naive_ans = pebble_ans);
        record ~experiment:"F1" ~metric:(Printf.sprintf "k%d.naive_ms" k)
          (ms t_naive);
        record ~experiment:"F1" ~metric:(Printf.sprintf "k%d.pebble_ms" k)
          (ms t_pebble);
        if t_naive > 5.0 then stop := true
      end)
    ks;
  Fmt.pr "@.shape: for small k the clique branch embeds easily and the naive@.";
  Fmt.pr "homomorphism test wins (the relaxation has constant-factor@.";
  Fmt.pr "overhead); once K_k stops embedding into the tournament (around@.";
  Fmt.pr "k ≈ 2·log2 n) the naive search explodes exponentially while the@.";
  Fmt.pr "2-pebble algorithm keeps growing polynomially — the crossover the@.";
  Fmt.pr "dichotomy predicts. Answers always agree (dw = 1).@."

(* ------------------------------------------------------------------ *)
(* F2 — UNION-free frontier: clique_child                              *)
(* ------------------------------------------------------------------ *)

let f2 () =
  header "F2" "the frontier on UNION-free patterns (clique_child)"
    "Corollary 1 + §3.2: bw(clique_child k) = k−1 — unbounded width family";
  Fmt.pr "pebble(2) is polynomial but incomplete; pebble(bw) is exact but its@.";
  Fmt.pr "cost grows exponentially with the width — there is no free lunch@.";
  Fmt.pr "beyond the frontier (Theorem 2).@.@.";
  let n = if !fast then 10 else 12 in
  Fmt.pr "%4s %6s %12s %10s %14s %10s %10s@." "k" "naive" "naive(ms)"
    "pebble2" "pebble2(ms)" "pebble_bw" "bw(ms)";
  List.iter
    (fun k ->
      let forest = [ Query_families.clique_child k ] in
      let g, mu = Graph_families.tournament_instance ~seed:3 ~n in
      let naive_ans, t_naive =
        time_median (fun () -> Wd_core.Naive_eval.check forest g mu)
      in
      let p2_ans, t_p2 =
        time_median (fun () -> Wd_core.Pebble_eval.check ~k:1 forest g mu)
      in
      let bw = k - 1 in
      let pbw_ans, t_pbw =
        time_median ~runs:1 (fun () -> Wd_core.Pebble_eval.check ~k:bw forest g mu)
      in
      Fmt.pr "%4d %6b %12.3f %10b %14.3f %10b %10.3f@." k naive_ans
        (ms t_naive) p2_ans (ms t_p2) pbw_ans (ms t_pbw))
    (if !fast then [ 2; 3; 4 ] else [ 2; 3; 4; 5 ]);
  (* the fooling instance: 2 pebbles give the wrong answer *)
  let forest = [ Query_families.clique_child 3 ] in
  let g, mu = Graph_families.cyclic_triangles_instance ~m:4 in
  let naive_ans = Wd_core.Naive_eval.check forest g mu in
  let p2_ans = Wd_core.Pebble_eval.check ~k:1 forest g mu in
  let p3_ans = Wd_core.Pebble_eval.check ~k:2 forest g mu in
  Fmt.pr "@.fooling instance (directed 3-cycles, no transitive triangle):@.";
  Fmt.pr "  naive=%b  pebble(2)=%b  pebble(3)=%b@." naive_ans p2_ans p3_ans;
  Fmt.pr "  -> 2 pebbles are incomplete exactly as Prop. 3 predicts@."

(* ------------------------------------------------------------------ *)
(* T2 — width landscape                                                *)
(* ------------------------------------------------------------------ *)

let t2 () =
  header "T2" "width landscape across query families"
    "Definitions 2-3, Proposition 5, §3.1 (lt => bounded dw, not conversely)";
  Fmt.pr "%-22s %6s %5s %5s %5s %18s@." "family" "nodes" "bw" "lt" "dw"
    "prop5 (dw=bw)";
  let row name forest =
    let dw = Wd_core.Domination_width.of_forest forest in
    let lt = Wd_core.Local_tractability.width_of_forest forest in
    let bw, prop5 =
      match forest with
      | [ tree ] ->
          let bw = Wd_core.Branch_treewidth.of_tree tree in
          (string_of_int bw, if bw = dw then "ok" else "VIOLATED")
      | _ -> ("-", "n/a (union)")
    in
    Fmt.pr "%-22s %6d %5s %5d %5d %18s@." name
      (Wdpt.Pattern_forest.size forest) bw lt dw prop5
  in
  row "path(6)" [ Query_families.path_query 6 ];
  row "star(6)" [ Query_families.star_query 6 ];
  row "comb(4)" [ Query_families.comb_query 4 ];
  List.iter
    (fun k -> row (Printf.sprintf "T'_%d" k) [ Query_families.t_prime_k k ])
    [ 2; 3; 4; 5; 6 ];
  List.iter
    (fun k -> row (Printf.sprintf "F_%d" k) (Query_families.f_k k))
    [ 2; 3; 4; 5; 6 ];
  List.iter
    (fun k -> row (Printf.sprintf "clique_child(%d)" k) [ Query_families.clique_child k ])
    [ 2; 3; 4; 5 ];
  List.iter
    (fun (r, c) ->
      row (Printf.sprintf "grid(%dx%d)" r c) [ Query_families.grid_query ~rows:r ~cols:c ])
    [ (2, 2); (2, 4); (3, 3); (3, 6) ];
  Fmt.pr "@.shape: lt grows with k on T'_k and F_k while dw stays 1 (local@.";
  Fmt.pr "tractability is strictly weaker); clique_child/grid have growing dw.@."

(* ------------------------------------------------------------------ *)
(* F3 — data scaling of the Theorem-1 algorithm                        *)
(* ------------------------------------------------------------------ *)

let f3 () =
  header "F3" "data scaling |G| of naive vs pebble on F_9"
    "Theorem 1: for fixed k the pebble algorithm is polynomial in |G|";
  let k = 9 in
  let forest = Query_families.f_k k in
  Fmt.pr "query: F_%d (dw = 1); instance: anchored tournaments of growing n@.@." k;
  Fmt.pr "%6s %8s %12s %12s@." "n" "|G|" "naive(ms)" "pebble(ms)";
  let sizes = if !fast then [ 8; 12; 16; 24 ] else [ 8; 12; 16; 24; 32; 48 ] in
  let points = ref [] in
  List.iter
    (fun n ->
      let g, mu = Graph_families.tournament_instance ~seed:2 ~n in
      let _, t_naive = time_median (fun () -> Wd_core.Naive_eval.check forest g mu) in
      let _, t_pebble =
        time_median (fun () -> Wd_core.Pebble_eval.check ~k:1 forest g mu)
      in
      points := (float_of_int (Rdf.Graph.cardinal g), t_pebble) :: !points;
      Fmt.pr "%6d %8d %12.3f %12.3f@." n (Rdf.Graph.cardinal g) (ms t_naive)
        (ms t_pebble))
    sizes;
  (* crude log-log slope for the pebble algorithm *)
  (match !points with
  | (x2, y2) :: _ when List.length !points >= 2 ->
      let x1, y1 = List.nth !points (List.length !points - 1) in
      let slope = (log y2 -. log y1) /. (log x2 -. log x1) in
      Fmt.pr "@.pebble log-log slope ≈ %.2f (low-degree polynomial in |G|)@." slope
  | _ -> ())

(* ------------------------------------------------------------------ *)
(* T3 — CLIQUE through the hardness reduction                          *)
(* ------------------------------------------------------------------ *)

let t3 () =
  header "T3" "p-CLIQUE via p-co-wdEVAL"
    "Theorem 2 / Lemma 2 / §4.2 (fpt-reduction, gadget size g(k)·|H|^O(1))";
  Fmt.pr "%4s %4s %6s %10s %10s %10s %12s %7s@." "k" "n" "edges" "gadget|V|"
    "gadget|B|" "answer" "eval(ms)" "agree";
  let cases =
    if !fast then [ (3, 6, 0.4, 1); (3, 8, 0.3, 2) ]
    else [ (3, 6, 0.4, 1); (3, 8, 0.3, 2); (3, 10, 0.3, 3); (3, 12, 0.25, 4); (4, 6, 0.6, 5) ]
  in
  List.iter
    (fun (k, n, prob, seed) ->
      let h = Hardness.Clique.random_graph ~seed ~n ~edge_prob:prob in
      match Hardness.Reduction.build ~k ~h with
      | Error e -> Fmt.pr "%4d %4d  construction failed: %s@." k n e
      | Ok inst ->
          let answer, t =
            time_median ~runs:1 (fun () ->
                not
                  (Wd_core.Naive_eval.check inst.Hardness.Reduction.forest
                     inst.Hardness.Reduction.graph inst.Hardness.Reduction.mu))
          in
          let brute = Hardness.Clique.has_clique h k in
          Fmt.pr "%4d %4d %6d %10d %10d %10b %12.2f %7b@." k n
            (Graphtheory.Ugraph.m h)
            inst.Hardness.Reduction.stats.Hardness.Grohe.new_vars
            inst.Hardness.Reduction.stats.Hardness.Grohe.triples answer (ms t)
            (answer = brute))
    cases;
  Fmt.pr "@.shape: gadget size is polynomial in |H| for fixed k, and the@.";
  Fmt.pr "answers match brute force — evaluating unbounded-width queries is@.";
  Fmt.pr "at least as hard as CLIQUE.@."

(* ------------------------------------------------------------------ *)
(* T4 — quality of the pebble relaxation                               *)
(* ------------------------------------------------------------------ *)

let t4 () =
  header "T4" "pebble relaxation quality on random instances"
    "Propositions 2-3: sound always, exact iff ctw ≤ k−1";
  let samples = if !fast then 150 else 400 in
  let buckets = Hashtbl.create 4 in
  let record key field =
    let agree, total, false_pos =
      Option.value ~default:(0, 0, 0) (Hashtbl.find_opt buckets key)
    in
    Hashtbl.replace buckets key
      (match field with
      | `Agree -> (agree + 1, total + 1, false_pos)
      | `False_pos -> (agree, total + 1, false_pos + 1))
  in
  let run_instance s graph mu =
    let ctw = Tgraphs.Cores.ctw s in
    let bucket = if ctw <= 1 then "ctw ≤ 1 (exact zone)" else "ctw ≥ 2" in
    let hom = Tgraphs.Gtgraph.maps_to_graph s ~mu graph in
    let pebble = Pebble.Pebble_game.wins ~k:2 s ~mu graph in
    if hom && not pebble then
      failwith "false negative: the relaxation must over-approximate";
    if hom = pebble then record bucket `Agree else record bucket `False_pos
  in
  (* unstructured instances: mostly land in the exact zone *)
  for seed = 1 to samples do
    let s = Testutil_lite.gtgraph_of_seed seed in
    let graph = Testutil_lite.graph_of_seed (seed + 1) in
    if not (Rdf.Iri.Set.is_empty (Rdf.Graph.dom graph)) then
      run_instance s graph (Testutil_lite.mu_for s graph seed)
  done;
  (* structured instances with ctw = 2: the triangle pattern K_3 against
     random digraphs and against cycle unions (where 2-consistency is
     known to over-approximate) *)
  let k3 =
    Tgraphs.Gtgraph.make
      (Query_families.kk 3 [ "o1"; "o2"; "o3" ])
      Rdf.Variable.Set.empty
  in
  for seed = 1 to samples / 4 do
    let graph = Rdf.Generator.random_digraph ~seed ~n:7 ~m:12 ~pred:"r" in
    run_instance k3 graph Rdf.Variable.Map.empty
  done;
  List.iter
    (fun n -> run_instance k3 (Rdf.Generator.cycle ~n ~pred:"r") Rdf.Variable.Map.empty)
    [ 3; 4; 5; 6; 7 ];
  Fmt.pr "%-22s %9s %9s %11s@." "bucket (k = 2)" "samples" "agree" "false-pos";
  Hashtbl.iter
    (fun key (agree, total, false_pos) ->
      Fmt.pr "%-22s %9d %9d %11d@." key total agree false_pos)
    buckets;
  Fmt.pr "@.shape: zero disagreements in the ctw ≤ 1 bucket (Prop. 3), no@.";
  Fmt.pr "false negatives anywhere (soundness of the relaxation).@."

(* ------------------------------------------------------------------ *)
(* F4 — treewidth substrate                                            *)
(* ------------------------------------------------------------------ *)

let f4 () =
  header "F4" "treewidth: exact DP vs elimination heuristics"
    "Section 2 (treewidth machinery the width measures rest on)";
  Fmt.pr "%4s %10s %10s %10s %12s@." "n" "avg exact" "avg minfill" "max gap"
    "exact(ms)";
  let sizes = if !fast then [ 8; 10; 12 ] else [ 8; 10; 12; 14; 16 ] in
  List.iter
    (fun n ->
      let trials = 12 in
      let sum_exact = ref 0 and sum_heur = ref 0 and max_gap = ref 0 in
      let _, t =
        time_once (fun () ->
            for seed = 1 to trials do
              let g = Testutil_lite.ugraph_of_seed ~n seed in
              let exact = Graphtheory.Treewidth.treewidth g in
              let _, heur = Graphtheory.Treewidth.min_fill_order g in
              sum_exact := !sum_exact + exact;
              sum_heur := !sum_heur + heur;
              max_gap := max !max_gap (heur - exact)
            done)
      in
      Fmt.pr "%4d %10.2f %10.2f %10d %12.2f@." n
        (float_of_int !sum_exact /. float_of_int trials)
        (float_of_int !sum_heur /. float_of_int trials)
        !max_gap
        (ms t /. float_of_int trials))
    sizes;
  Fmt.pr "@.shape: min-fill tracks the exact value closely; exact cost grows@.";
  Fmt.pr "exponentially in n (2^n DP) — fine for query-sized graphs.@."

(* ------------------------------------------------------------------ *)
(* T5 — translation sizes                                              *)
(* ------------------------------------------------------------------ *)

let t5 () =
  header "T5" "wdpf translation sizes"
    "Section 2.1 (polynomial translation to NR-normal-form pattern forests)";
  Fmt.pr "%6s %9s %7s %7s %9s %14s@." "seed" "triples" "trees" "nodes"
    "max-depth" "translate(ms)";
  let seeds = if !fast then [ 1; 2; 3; 4 ] else [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] in
  List.iter
    (fun seed ->
      let p =
        Query_families.random_wd_pattern ~seed ~triples:24 ~vars:20 ~preds:3
          ~depth:4 ~union:3
      in
      let forest, t = time_median (fun () -> Wdpt.Pattern_forest.of_algebra p) in
      let depth =
        List.fold_left (fun acc tr -> max acc (Wdpt.Pattern_tree.depth tr)) 0 forest
      in
      Fmt.pr "%6d %9d %7d %7d %9d %14.3f@." seed (Sparql.Algebra.size p)
        (List.length forest)
        (Wdpt.Pattern_forest.size forest)
        depth (ms t))
    seeds;
  Fmt.pr "@.shape: node counts stay linear in the pattern; translation time is@.";
  Fmt.pr "far below a millisecond per query.@."

(* ------------------------------------------------------------------ *)
(* F5 — answer enumeration scaling                                     *)
(* ------------------------------------------------------------------ *)

let f5 () =
  header "F5" "answer enumeration over growing data"
    "Lemma 1 (subtree semantics drives enumeration)";
  let query =
    Sparql.Parser.parse_exn
      "{ ?a p:knows ?b . OPTIONAL { ?b p:worksAt ?c } OPTIONAL { ?b p:email ?m } }"
  in
  let forest = Wdpt.Pattern_forest.of_algebra query in
  Fmt.pr "query: optional profile over the social generator@.@.";
  Fmt.pr "%8s %8s %9s %12s %14s@." "people" "|G|" "answers" "enum(ms)"
    "µs/answer";
  let sizes = if !fast then [ 50; 100; 200 ] else [ 50; 100; 200; 400; 800 ] in
  List.iter
    (fun people ->
      let g = Rdf.Generator.social ~seed:7 ~people in
      let sols, t = time_median (fun () -> Wdpt.Semantics.solutions forest g) in
      let count = Sparql.Mapping.Set.cardinal sols in
      Fmt.pr "%8d %8d %9d %12.2f %14.2f@." people (Rdf.Graph.cardinal g) count
        (ms t)
        (if count = 0 then 0. else t *. 1e6 /. float_of_int count))
    sizes;
  Fmt.pr "@.shape: near output-linear growth — cost per answer stays flat.@."

(* ------------------------------------------------------------------ *)
(* F6 — shared-prefix enumerator vs baseline                           *)
(* ------------------------------------------------------------------ *)

let f6 () =
  header "F6" "answer enumeration: baseline vs shared-prefix enumerator"
    "Lemma 1 + Theorem 1 (this library's optimised enumerator)";
  Fmt.pr "%-26s %8s %9s %12s %12s %8s@." "query" "people" "answers"
    "baseline(ms)" "shared(ms)" "agree";
  let queries =
    [
      ("profile (2 OPTs)",
       "{ ?a p:knows ?b . OPTIONAL { ?b p:worksAt ?c } OPTIONAL { ?b p:email ?m } }");
      ("join root + 4 OPTs",
       "{ ?a p:knows ?b . ?b p:knows ?c . OPTIONAL { ?a p:email ?m1 } \
        OPTIONAL { ?b p:email ?m2 } OPTIONAL { ?c p:email ?m3 } \
        OPTIONAL { ?c p:worksAt ?w } }");
      ("join root + 5 OPTs",
       "{ ?a p:knows ?b . ?b p:knows ?c . OPTIONAL { ?a p:email ?m1 } \
        OPTIONAL { ?b p:email ?m2 } OPTIONAL { ?c p:email ?m3 } \
        OPTIONAL { ?c p:worksAt ?w } OPTIONAL { ?c p:livesIn ?t } }");
    ]
  in
  let sizes = if !fast then [ 100 ] else [ 100; 400 ] in
  List.iter
    (fun people ->
      let g = Rdf.Generator.social ~seed:5 ~people in
      List.iter
        (fun (name, src) ->
          let forest =
            Wdpt.Pattern_forest.of_algebra (Sparql.Parser.parse_exn src)
          in
          let base, t_base =
            time_median (fun () -> Wdpt.Semantics.solutions forest g)
          in
          let shared, t_shared =
            time_median (fun () -> Wd_core.Enumerate.solutions forest g)
          in
          Fmt.pr "%-26s %8d %9d %12.2f %12.2f %8b@." name people
            (Sparql.Mapping.Set.cardinal base)
            (ms t_base) (ms t_shared)
            (Sparql.Mapping.Set.equal base shared))
        queries)
    sizes;
  Fmt.pr "@.shape: with c optional children the baseline re-joins the shared@.";
  Fmt.pr "root pattern up to 2^c times, so the shared-prefix walk pulls ahead@.";
  Fmt.pr "as fan-out grows (1.3x at 4 OPTs, 1.6x at 5 here); on tiny queries@.";
  Fmt.pr "its bookkeeping makes it a wash. Answer sets always agree.@."

(* ------------------------------------------------------------------ *)
(* T6 — containment                                                    *)
(* ------------------------------------------------------------------ *)

let t6 () =
  header "T6" "containment: Chandra–Merlin core + randomised refutation"
    "related machinery: Pichler & Skritek PODS'14 (containment is Πᵖ₂)";
  (* CM on the existential fragment *)
  let gt src x =
    let p = Sparql.Parser.parse_exn src in
    Tgraphs.Gtgraph.make
      (Tgraphs.Tgraph.of_triples (Sparql.Algebra.triples p))
      (Rdf.Variable.Set.of_list (List.map Rdf.Variable.of_string x))
  in
  let queries =
    [
      ("3-path", gt "{ ?x p:r ?a . ?a p:r ?b . ?b p:r ?c }" [ "x" ]);
      ("2-path", gt "{ ?x p:r ?a . ?a p:r ?b }" [ "x" ]);
      ("1-edge", gt "{ ?x p:r ?a }" [ "x" ]);
      ("out-2-star", gt "{ ?x p:r ?a . ?x p:r ?b }" [ "x" ]);
      ("triangle", gt "{ ?x p:r ?a . ?a p:r ?b . ?x p:r ?b }" [ "x" ]);
    ]
  in
  Fmt.pr "Chandra–Merlin matrix (row ⊆ column?):@.";
  Fmt.pr "%-12s" "";
  List.iter (fun (n, _) -> Fmt.pr "%-12s" n) queries;
  Fmt.pr "@.";
  List.iter
    (fun (n1, q1) ->
      Fmt.pr "%-12s" n1;
      List.iter
        (fun (_, q2) ->
          Fmt.pr "%-12s" (if Wd_core.Containment.cq_contained q1 q2 then "yes" else "-"))
        queries;
      Fmt.pr "@.")
    queries;
  (* refutation on OPT patterns *)
  let parse = Sparql.Parser.parse_exn in
  let pairs =
    [
      ("OPT vs AND",
       parse "{ ?x p:a ?y . OPTIONAL { ?y p:b ?z } }",
       parse "{ ?x p:a ?y . ?y p:b ?z }");
      ("AND vs OPT",
       parse "{ ?x p:a ?y . ?y p:b ?z }",
       parse "{ ?x p:a ?y . OPTIONAL { ?y p:b ?z } }");
      ("self",
       parse "{ ?x p:a ?y . OPTIONAL { ?y p:b ?z } }",
       parse "{ ?x p:a ?y . OPTIONAL { ?y p:b ?z } }");
      ("extra OPT arm",
       parse "{ ?x p:a ?y }",
       parse "{ ?x p:a ?y . OPTIONAL { ?y p:b ?z } }");
    ]
  in
  Fmt.pr "@.randomised refutation on OPT patterns:@.";
  List.iter
    (fun (name, p1, p2) ->
      let verdict, t =
        time_median ~runs:1 (fun () -> Wd_core.Containment.refute ~attempts:100 p1 p2)
      in
      Fmt.pr "  %-14s P1 ⊆ P2 %s  (%.1f ms)@." name
        (match verdict with
        | Some _ -> "REFUTED (counterexample found)"
        | None -> "not refuted")
        (ms t))
    pairs;
  Fmt.pr "@.shape: 'AND vs OPT' and 'extra OPT arm' are genuinely contained@.";
  Fmt.pr "(never refuted); 'OPT vs AND' is refuted immediately — the@.";
  Fmt.pr "canonical frozen instances catch the missing-optional case.@."

(* ------------------------------------------------------------------ *)
(* A1–A3 — ablations of this implementation's design choices           *)
(* ------------------------------------------------------------------ *)

let a1 () =
  header "A1" "ablation: fail-first vs static pattern ordering in the solver"
    "DESIGN.md: join-style backtracking with most-constrained-first";
  let forest = Query_families.f_k 8 in
  let g, mu = Graph_families.tournament_instance ~seed:1 ~n:(if !fast then 16 else 24) in
  Fmt.pr "%-14s %12s %14s@." "strategy" "time(ms)" "search nodes";
  List.iter
    (fun (name, strategy) ->
      Tgraphs.Homomorphism.reset_stats ();
      (* run the naive evaluator with the solver pinned to [strategy] by
         driving its inner tests directly *)
      let _, t =
        time_median ~runs:1 (fun () ->
            List.for_all
              (fun tree ->
                match Wdpt.Subtree.matching tree g mu with
                | None -> true
                | Some subtree ->
                    List.for_all
                      (fun n ->
                        not
                          (Tgraphs.Homomorphism.exists ~strategy
                             ~pre:(Sparql.Mapping.to_assignment mu)
                             ~source:(Wdpt.Pattern_tree.pat tree n)
                             ~target:(Rdf.Graph.to_index g) ()))
                      (Wdpt.Subtree.children subtree))
              forest)
      in
      Fmt.pr "%-14s %12.3f %14d@." name (ms t) (Tgraphs.Homomorphism.search_nodes ()))
    [ ("fail-first", `Fail_first); ("static", `Static) ];
  Fmt.pr "@.shape: fail-first expands far fewer backtracking nodes.@."

let a2 () =
  header "A2" "ablation: unary candidate pruning in the pebble game"
    "DESIGN.md: k-consistency with pre-filtered candidate sets";
  (* A sparse instance where pruning bites: the anchor node has only 3
     r-successors, so the unary constraint (?y, r, ?o1) cuts o1's
     candidate set from the whole domain to 3 values. *)
  let nodes = if !fast then 30 else 60 in
  let graph =
    let anchor = Rdf.Term.iri "n:anchor" in
    let node i = Rdf.Term.iri (Printf.sprintf "d:%d" i) in
    let r = Rdf.Term.iri "p:r" and p = Rdf.Term.iri "p:p" in
    let state = Random.State.make [| 42; nodes |] in
    let triples = ref [ Rdf.Triple.make anchor p (node 0) ] in
    for i = 1 to 3 do
      triples := Rdf.Triple.make (node 0) r (node i) :: !triples
    done;
    for _ = 1 to 6 * nodes do
      let i = 1 + Random.State.int state (nodes - 1) in
      let j = 1 + Random.State.int state (nodes - 1) in
      if i <> j then triples := Rdf.Triple.make (node i) r (node j) :: !triples
    done;
    Rdf.Graph.of_triples !triples
  in
  let mu =
    Sparql.Mapping.of_list
      [
        (Rdf.Variable.of_string "x", Rdf.Iri.of_string "n:anchor");
        (Rdf.Variable.of_string "y", Rdf.Iri.of_string "d:0");
      ]
  in
  let tree = Query_families.clique_child 4 in
  let subtree = Wdpt.Subtree.root_only tree in
  let s =
    Tgraphs.Tgraph.union (Wdpt.Subtree.pat subtree) (Wdpt.Pattern_tree.pat tree 1)
  in
  let gtg = Tgraphs.Gtgraph.make s (Wdpt.Subtree.vars subtree) in
  Fmt.pr "%-14s %8s %12s %16s@." "pruning" "answer" "time(ms)" "maps explored";
  List.iter
    (fun (name, prune_unary) ->
      Pebble.Pebble_game.reset_stats ();
      let answer, t =
        time_median ~runs:3 (fun () ->
            Pebble.Pebble_game.wins ~prune_unary ~k:2 gtg
              ~mu:(Sparql.Mapping.to_assignment mu) graph)
      in
      record ~experiment:"A2"
        ~metric:(Printf.sprintf "prune_%s.time_ms" name)
        (ms t);
      Fmt.pr "%-14s %8b %12.3f %16d@." name answer (ms t)
        (Pebble.Pebble_game.stats_families_explored () / 3))
    [ ("on", true); ("off", false) ];
  (* PR 3 revisit: the evaluator's hot path now runs this same game
     through the encoded kernel, whose compile step bakes the unary
     candidate domains into the id-indexed structures once per
     (game, store) — the prune_unary knob only exists on the legacy
     term-level kernel. *)
  let enc = Encoded.Encoded_graph.of_graph_cached graph in
  let mu_assignment = Sparql.Mapping.to_assignment mu in
  let answer_cold, t_cold =
    time_median ~runs:3 (fun () ->
        Encoded.Encoded_pebble.wins ~k:2 gtg ~mu:mu_assignment enc)
  in
  let compiled = Encoded.Encoded_pebble.compile ~k:2 gtg enc in
  let ids = Encoded.Encoded_pebble.encode_mu compiled mu_assignment in
  let answer_warm, t_warm =
    time_median ~runs:3 (fun () -> Encoded.Encoded_pebble.run compiled ~mu:ids)
  in
  record ~experiment:"A2" ~metric:"encoded.cold_ms" (ms t_cold);
  record ~experiment:"A2" ~metric:"encoded.warm_ms" (ms t_warm);
  Fmt.pr "%-14s %8b %12.3f %16s@." "encoded-cold" answer_cold (ms t_cold) "-";
  Fmt.pr "%-14s %8b %12.3f %16s@." "encoded-warm" answer_warm (ms t_warm) "-";
  Fmt.pr "@.shape (an honest negative result, re-confirmed on PR 3): the eager@.";
  Fmt.pr "partial-hom checks during map enumeration already subsume the unary@.";
  Fmt.pr "filter, so the explored-map counts coincide; pruning only trims@.";
  Fmt.pr "candidate-loop overhead in the counter initialisation (~10%% here).@.";
  Fmt.pr "On the encoded path the knob is moot: compile precomputes the unary@.";
  Fmt.pr "domains once per (game, store), so a warm game pays neither cost.@.";
  Fmt.pr "Answers are identical by construction (tested).@."

let a3 () =
  header "A3" "ablation: hash indexes vs linear scan in the triple store"
    "DESIGN.md: seven access-pattern indexes";
  let g = Rdf.Generator.social ~seed:3 ~people:(if !fast then 60 else 120) in
  let p =
    Sparql.Parser.parse_exn "{ ?a p:knows ?b . ?b p:worksAt ?c . ?c p:livesIn ?t }"
  in
  let source = Tgraphs.Tgraph.of_triples (Sparql.Algebra.triples p) in
  let target = Rdf.Graph.to_index g in
  Fmt.pr "%-14s %12s %10s@." "lookup" "time(ms)" "answers";
  List.iter
    (fun (name, use_index) ->
      let n, t =
        time_median (fun () ->
            Tgraphs.Homomorphism.count ~use_index ~source ~target ())
      in
      Fmt.pr "%-14s %12.3f %10d@." name (ms t) n)
    [ ("indexed", true); ("scan", false) ];
  Fmt.pr "@.shape: indexed lookups dominate as |G| grows (same answers).@."

let f7 () =
  header "F7" "why a relaxation: exact td-guided test vs the pebble game"
    "Theorem 1's design: k-domination + relaxation, not a cleverer exact test";
  Fmt.pr "The td-guided evaluator decides each child test EXACTLY in@.";
  Fmt.pr "O(|G|^(ctw+1)). On T'_k the tested instance's core is trivial, so@.";
  Fmt.pr "it is fast; on F_k the tested instance contains the UNDOMINATED@.";
  Fmt.pr "clique (ctw = k−1), so the exact approach explodes with naive@.";
  Fmt.pr "while the 2-pebble relaxation stays flat — k-domination at work.@.@.";
  let n = if !fast then 12 else 16 in
  Fmt.pr "family F_k (dw = 1, undominated member of ctw k−1 inside GtG):@.";
  Fmt.pr "%4s %12s %12s %12s %7s@." "k" "naive(ms)" "td(ms)" "pebble(ms)" "agree";
  let stop = ref false in
  List.iter
    (fun k ->
      if not !stop then begin
        let forest = Query_families.f_k k in
        let g, mu = Graph_families.tournament_instance ~seed:1 ~n in
        let a1, t_naive = time_median ~runs:1 (fun () -> Wd_core.Naive_eval.check forest g mu) in
        let a2, t_td = time_median ~runs:1 (fun () -> Wd_core.Td_eval.check forest g mu) in
        let a3, t_pebble =
          time_median ~runs:1 (fun () -> Wd_core.Pebble_eval.check ~k:1 forest g mu)
        in
        Fmt.pr "%4d %12.3f %12.3f %12.3f %7b@." k (ms t_naive) (ms t_td)
          (ms t_pebble)
          (a1 = a2 && a2 = a3);
        if t_td > 2.0 || t_naive > 2.0 then stop := true
      end)
    [ 2; 3; 4; 5; 6 ];
  Fmt.pr "@.family T'_k (bw = 1: every tested core is trivial):@.";
  Fmt.pr "%4s %12s %12s %12s@." "k" "naive(ms)" "td(ms)" "pebble(ms)";
  List.iter
    (fun k ->
      let tree = Query_families.t_prime_k k in
      (* a graph with a self-loop so the root matches, plus noise *)
      let loop = Rdf.Triple.make (Rdf.Term.iri "d:0") (Rdf.Term.iri "p:r") (Rdf.Term.iri "d:0") in
      let noise = Rdf.Graph.triples (Rdf.Generator.random_digraph ~seed:4 ~n ~m:(3 * n) ~pred:"r") in
      let g = Rdf.Graph.of_triples (loop :: noise) in
      let mu = Sparql.Mapping.of_list [ (Rdf.Variable.of_string "y", Rdf.Iri.of_string "d:0") ] in
      let _, t_naive = time_median (fun () -> Wd_core.Naive_eval.check [ tree ] g mu) in
      let _, t_td = time_median (fun () -> Wd_core.Td_eval.check [ tree ] g mu) in
      let _, t_pebble =
        time_median (fun () -> Wd_core.Pebble_eval.check ~k:1 [ tree ] g mu)
      in
      Fmt.pr "%4d %12.3f %12.3f %12.3f@." k (ms t_naive) (ms t_td) (ms t_pebble))
    [ 2; 4; 6; 8 ]

let t7 () =
  header "T7" "realistic workload: the university benchmark"
    "end-to-end check that practical OPTIONAL queries sit at dw = 1";
  let unis = if !fast then 1 else 3 in
  let g = University.generate ~seed:9 ~universities:unis in
  Fmt.pr "data: %d triples (%d universities)@.@." (Rdf.Graph.cardinal g) unis;
  Fmt.pr "%-24s %4s %9s %12s %12s %7s@." "query" "dw" "answers" "baseline(ms)"
    "shared(ms)" "agree";
  List.iter
    (fun (name, src) ->
      let p = Sparql.Parser.parse_exn src in
      let forest = Wdpt.Pattern_forest.of_algebra p in
      let dw = Wd_core.Domination_width.of_forest forest in
      let base, t_base = time_median (fun () -> Wdpt.Semantics.solutions forest g) in
      let shared, t_shared =
        time_median (fun () -> Wd_core.Enumerate.solutions forest g)
      in
      Fmt.pr "%-24s %4d %9d %12.2f %12.2f %7b@." name dw
        (Sparql.Mapping.Set.cardinal base)
        (ms t_base) (ms t_shared)
        (Sparql.Mapping.Set.equal base shared))
    University.queries;
  Fmt.pr "@.shape: every query in the realistic workload has domination@.";
  Fmt.pr "width 1 — the tractable regime is where practice lives; the@.";
  Fmt.pr "frontier instances of F1/F2 are adversarial by design.@."

let a4 () =
  header "A4" "ablation: hash-indexed terms vs dictionary-encoded sorted arrays"
    "DESIGN.md: the two storage backends (Rdf.Index vs Encoded_graph)";
  let people = if !fast then 100 else 300 in
  let g = Rdf.Generator.social ~seed:11 ~people in
  let enc, t_build = time_median (fun () -> Encoded.Encoded_graph.of_graph g) in
  Fmt.pr "graph: %d triples; encoded build: %.2f ms@.@." (Rdf.Graph.cardinal g)
    (ms t_build);
  Fmt.pr "%-28s %12s %12s %9s@." "query" "term(ms)" "encoded(ms)" "answers";
  let queries =
    [
      ("2-hop knows", "{ ?a p:knows ?b . ?b p:knows ?c }");
      ("3-hop knows", "{ ?a p:knows ?b . ?b p:knows ?c . ?c p:knows ?d }");
      ("office triangle",
       "{ ?a p:knows ?b . ?a p:worksAt ?c . ?b p:worksAt ?c }");
      ("star", "{ ?a p:knows ?b . ?a p:email ?m . ?a p:livesIn ?t }");
    ]
  in
  List.iter
    (fun (name, src) ->
      let source =
        Tgraphs.Tgraph.of_triples
          (Sparql.Algebra.triples (Sparql.Parser.parse_exn src))
      in
      let n_term, t_term =
        time_median (fun () ->
            Tgraphs.Homomorphism.count ~source ~target:(Rdf.Graph.to_index g) ())
      in
      let compiled = Encoded.Encoded_hom.compile source enc in
      let n_enc, t_enc =
        time_median (fun () -> Encoded.Encoded_hom.count compiled)
      in
      assert (n_term = n_enc);
      record ~experiment:"A4" ~metric:(name ^ ".term_ms") (ms t_term);
      record ~experiment:"A4" ~metric:(name ^ ".encoded_ms") (ms t_enc);
      Fmt.pr "%-28s %12.3f %12.3f %9d@." name (ms t_term) (ms t_enc) n_term)
    queries;
  Fmt.pr "@.shape: identical counts (cross-checked); the encoded engine@.";
  Fmt.pr "avoids term hashing and allocation in the inner join loop.@."

(* ------------------------------------------------------------------ *)
(* A5 — encoded vs term-level pebble kernel                            *)
(* ------------------------------------------------------------------ *)

(* The A2 instance: sparse anchored digraph where the unary candidate
   domains collapse to a handful of nodes. *)
let a2_instance () =
  let nodes = if !fast then 30 else 60 in
  let graph =
    let anchor = Rdf.Term.iri "n:anchor" in
    let node i = Rdf.Term.iri (Printf.sprintf "d:%d" i) in
    let r = Rdf.Term.iri "p:r" and p = Rdf.Term.iri "p:p" in
    let state = Random.State.make [| 42; nodes |] in
    let triples = ref [ Rdf.Triple.make anchor p (node 0) ] in
    for i = 1 to 3 do
      triples := Rdf.Triple.make (node 0) r (node i) :: !triples
    done;
    for _ = 1 to 6 * nodes do
      let i = 1 + Random.State.int state (nodes - 1) in
      let j = 1 + Random.State.int state (nodes - 1) in
      if i <> j then triples := Rdf.Triple.make (node i) r (node j) :: !triples
    done;
    Rdf.Graph.of_triples !triples
  in
  let mu =
    Sparql.Mapping.of_list
      [
        (Rdf.Variable.of_string "x", Rdf.Iri.of_string "n:anchor");
        (Rdf.Variable.of_string "y", Rdf.Iri.of_string "d:0");
      ]
  in
  let tree = Query_families.clique_child 4 in
  let subtree = Wdpt.Subtree.root_only tree in
  let s =
    Tgraphs.Tgraph.union (Wdpt.Subtree.pat subtree) (Wdpt.Pattern_tree.pat tree 1)
  in
  (Tgraphs.Gtgraph.make s (Wdpt.Subtree.vars subtree), mu, graph)

(* The F_k child test the Theorem-1 path actually issues: the union game
   of a matched subtree and its optional clique child, over an anchored
   tournament. *)
let f_k_child_game ~k ~n =
  let forest = Query_families.f_k k in
  let g, mu = Graph_families.tournament_instance ~seed:1 ~n in
  let tree, subtree =
    List.find_map
      (fun tree ->
        match Wdpt.Subtree.matching tree g mu with
        | Some st when Wdpt.Subtree.children st <> [] -> Some (tree, st)
        | _ -> None)
      forest
    |> Option.get
  in
  let child = List.hd (Wdpt.Subtree.children subtree) in
  let s =
    Tgraphs.Tgraph.union (Wdpt.Subtree.pat subtree)
      (Wdpt.Pattern_tree.pat tree child)
  in
  (Tgraphs.Gtgraph.make s (Wdpt.Subtree.vars subtree), mu, g)

let a5 () =
  header "A5" "ablation: encoded vs term-level pebble kernel"
    "ISSUE 2 tentpole: the k-consistency fixpoint over the encoded store";
  Fmt.pr "The same child-test games, decided by the term-level kernel and by@.";
  Fmt.pr "Encoded_pebble — cold (compile + run) and warm (precompiled, the@.";
  Fmt.pr "regime the evaluation-wide cache operates in). Answers cross-checked.@.@.";
  let workloads =
    [
      ("a2-sparse-anchor", 2, a2_instance ());
      ("clique-child-4-tournament", 2,
       f_k_child_game ~k:4 ~n:(if !fast then 14 else 20));
      ("f8-tournament", 2, f_k_child_game ~k:8 ~n:(if !fast then 14 else 20));
    ]
  in
  Fmt.pr "%-28s %8s %10s %10s %10s %8s@." "workload" "answer" "term(ms)"
    "cold(ms)" "warm(ms)" "speedup";
  let speedups = ref [] in
  List.iter
    (fun (name, k, (gtg, mu, graph)) ->
      let assignment = Sparql.Mapping.to_assignment mu in
      let term_ans, t_term =
        time_median ~runs:5 (fun () ->
            Pebble.Pebble_game.wins ~k gtg ~mu:assignment graph)
      in
      let enc = Encoded.Encoded_graph.of_graph_cached graph in
      let cold_ans, t_cold =
        time_median ~runs:5 (fun () ->
            Encoded.Encoded_pebble.wins ~k gtg ~mu:assignment enc)
      in
      let compiled = Encoded.Encoded_pebble.compile ~k gtg enc in
      let ids = Encoded.Encoded_pebble.encode_mu compiled assignment in
      let warm_ans, t_warm =
        time_median ~runs:5 (fun () ->
            Encoded.Encoded_pebble.run compiled ~mu:ids)
      in
      assert (term_ans = cold_ans && cold_ans = warm_ans);
      let speedup = t_term /. t_warm in
      speedups := speedup :: !speedups;
      record ~experiment:"A5" ~metric:(name ^ ".term_ms") (ms t_term);
      record ~experiment:"A5" ~metric:(name ^ ".encoded_cold_ms") (ms t_cold);
      record ~experiment:"A5" ~metric:(name ^ ".encoded_warm_ms") (ms t_warm);
      record ~experiment:"A5" ~metric:(name ^ ".speedup_warm") speedup;
      Fmt.pr "%-28s %8b %10.3f %10.3f %10.3f %7.1fx@." name term_ans
        (ms t_term) (ms t_cold) (ms t_warm) speedup)
    workloads;
  let median_speedup =
    let sorted = List.sort compare !speedups in
    List.nth sorted (List.length sorted / 2)
  in
  record ~experiment:"A5" ~metric:"median_speedup_warm" median_speedup;
  Fmt.pr "@.median warm speedup: %.1fx (target: >= 3x)@." median_speedup

(* ------------------------------------------------------------------ *)
(* A6 — evaluation-wide pebble cache on/off                            *)
(* ------------------------------------------------------------------ *)

(* A membership-check stream: a tournament on t:0..t:n-1 plus [anchors]
   extra sources a:i with a p-edge to every tournament node, and one
   candidate mapping {x → a:i, y → t:j} per p-edge.  Each
   [Pebble_eval.check] call is dominated by the K_k child game, and the
   verdict of that game depends only on µ|{y} — so across the stream the
   cache answers (anchors-1)/anchors of the tests from the memo table. *)
let stream_instance ~seed ~n ~anchors =
  let state = Random.State.make [| seed; n; 77 |] in
  let tnode i = Rdf.Term.iri (Printf.sprintf "t:%d" i) in
  let anode i = Rdf.Term.iri (Printf.sprintf "a:%d" i) in
  let r = Rdf.Term.iri "p:r" and p = Rdf.Term.iri "p:p" in
  let triples = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let src, dst = if Random.State.bool state then (i, j) else (j, i) in
      triples := Rdf.Triple.make (tnode src) r (tnode dst) :: !triples
    done
  done;
  for i = 0 to anchors - 1 do
    for j = 0 to n - 1 do
      triples := Rdf.Triple.make (anode i) p (tnode j) :: !triples
    done
  done;
  let graph = Rdf.Graph.of_triples !triples in
  let mus =
    List.concat_map
      (fun i ->
        List.init n (fun j ->
            Sparql.Mapping.of_list
              [
                (Rdf.Variable.of_string "x",
                 Rdf.Iri.of_string (Printf.sprintf "a:%d" i));
                (Rdf.Variable.of_string "y",
                 Rdf.Iri.of_string (Printf.sprintf "t:%d" j));
              ]))
      (List.init anchors Fun.id)
  in
  (graph, mus)

let a6 () =
  header "A6" "ablation: evaluation-wide pebble cache on/off"
    "ISSUE 2 tentpole: compiled-game reuse + verdict memoization";
  Fmt.pr "Theorem-1 membership streams (one Pebble_eval.check per candidate@.";
  Fmt.pr "mapping) with three kernels: the term-level game, the encoded kernel@.";
  Fmt.pr "without memoization, and the full cache (games compiled once,@.";
  Fmt.pr "verdicts keyed on µ|shared).  Plus one end-to-end enumeration@.";
  Fmt.pr "workload, where the shared homomorphism join dilutes the gain.@.@.";
  Fmt.pr "%-28s %8s %10s %12s %10s %8s %8s %6s@." "workload" "answers"
    "term(ms)" "nocache(ms)" "cache(ms)" "speedup" "hits" "games";
  let speedups = ref [] in
  let report name answers t_term t_nocache t_cached stats =
    let speedup = t_term /. t_cached in
    speedups := speedup :: !speedups;
    record ~experiment:"A6" ~metric:(name ^ ".term_ms") (ms t_term);
    record ~experiment:"A6" ~metric:(name ^ ".nocache_ms") (ms t_nocache);
    record ~experiment:"A6" ~metric:(name ^ ".cache_ms") (ms t_cached);
    record ~experiment:"A6" ~metric:(name ^ ".speedup_vs_term") speedup;
    record ~experiment:"A6" ~metric:(name ^ ".cache_hits")
      (float_of_int stats.Wd_core.Pebble_cache.hits);
    record ~experiment:"A6" ~metric:(name ^ ".cache_misses")
      (float_of_int stats.Wd_core.Pebble_cache.misses);
    record ~experiment:"A6" ~metric:(name ^ ".games_compiled")
      (float_of_int stats.Wd_core.Pebble_cache.compiled);
    record ~experiment:"A6" ~metric:(name ^ ".families_explored")
      (float_of_int stats.Wd_core.Pebble_cache.families);
    Fmt.pr "%-28s %8d %10.3f %12.3f %10.3f %7.1fx %8d %6d@." name answers
      (ms t_term) (ms t_nocache) (ms t_cached) speedup
      stats.Wd_core.Pebble_cache.hits stats.Wd_core.Pebble_cache.compiled
  in
  (* membership-check streams *)
  let n = if !fast then 10 else 14 and anchors = if !fast then 6 else 8 in
  let stream_workloads =
    [
      ("f8-check-stream", 1, Query_families.f_k 8, 1);
      ("f6-check-stream", 1, Query_families.f_k 6, 2);
      ("clique-child-4-check-stream", 2, [ Query_families.clique_child 4 ], 3);
    ]
  in
  List.iter
    (fun (name, k, forest, seed) ->
      let graph, mus = stream_instance ~seed ~n ~anchors in
      let runs = 3 in
      let stream kernel =
        List.map
          (fun mu -> Wd_core.Pebble_eval.check ~k ~kernel forest graph mu)
          mus
      in
      let term_ans, t_term =
        time_median ~runs (fun () -> stream Wd_core.Pebble_eval.Term)
      in
      let nocache_ans, t_nocache =
        time_median ~runs (fun () ->
            stream
              (Wd_core.Pebble_eval.Cached
                 (Wd_core.Pebble_cache.create ~memo:false graph)))
      in
      let cache = ref None in
      let cached_ans, t_cached =
        time_median ~runs (fun () ->
            let c = Wd_core.Pebble_cache.create graph in
            cache := Some c;
            stream (Wd_core.Pebble_eval.Cached c))
      in
      assert (term_ans = nocache_ans && term_ans = cached_ans);
      let stats = Wd_core.Pebble_cache.stats (Option.get !cache) in
      let answers = List.length (List.filter Fun.id term_ans) in
      report name answers t_term t_nocache t_cached stats)
    stream_workloads;
  (* end-to-end enumeration: the kernel is only part of the wall time *)
  let () =
    let forest = Query_families.f_k 4 in
    let graph =
      fst (Graph_families.tournament_instance ~seed:1 ~n:(if !fast then 10 else 14))
    in
    let enumerate kernel =
      Wd_core.Enumerate.solutions ~maximality:(`Pebble 1) ~kernel forest graph
    in
    let runs = 3 in
    let term_ans, t_term =
      time_median ~runs (fun () -> enumerate Wd_core.Pebble_eval.Term)
    in
    let nocache_ans, t_nocache =
      time_median ~runs (fun () ->
          enumerate
            (Wd_core.Pebble_eval.Cached
               (Wd_core.Pebble_cache.create ~memo:false graph)))
    in
    let cache = ref None in
    let cached_ans, t_cached =
      time_median ~runs (fun () ->
          let c = Wd_core.Pebble_cache.create graph in
          cache := Some c;
          enumerate (Wd_core.Pebble_eval.Cached c))
    in
    assert (Sparql.Mapping.Set.equal term_ans nocache_ans);
    assert (Sparql.Mapping.Set.equal term_ans cached_ans);
    let stats = Wd_core.Pebble_cache.stats (Option.get !cache) in
    report "f4-enumerate" (Sparql.Mapping.Set.cardinal term_ans) t_term
      t_nocache t_cached stats
  in
  let median_speedup =
    let sorted = List.sort compare !speedups in
    List.nth sorted (List.length sorted / 2)
  in
  record ~experiment:"A6" ~metric:"median_speedup_vs_term" median_speedup;
  Fmt.pr "@.median cached speedup vs term kernel: %.1fx (target: >= 3x)@."
    median_speedup

let a7 () =
  header "A7" "ablation: encoded hom-join + plan cache in full enumeration"
    "ISSUE 3 tentpole: candidate generation over the dictionary store";
  Fmt.pr "Full Theorem-1 enumeration three ways: the PR 2 baseline (term-@.";
  Fmt.pr "level hom-join, fresh pebble cache per evaluation), the encoded@.";
  Fmt.pr "join with a cold plan cache (sources + games compiled per run),@.";
  Fmt.pr "and the encoded join with a warm plan cache (compiled sources,@.";
  Fmt.pr "games and verdicts reused across evaluations).  Every variant's@.";
  Fmt.pr "answer set is checked against the reference algebra evaluator.@.@.";
  let n = if !fast then 10 else 14 in
  let anchors = if !fast then 4 else 6 in
  let uni_graph =
    University.generate ~seed:9 ~universities:(if !fast then 1 else 2)
  in
  let uni2_graph = University.generate ~seed:11 ~universities:1 in
  let uni_forest name =
    Wdpt.Pattern_forest.of_algebra
      (Sparql.Parser.parse_exn (List.assoc name University.queries))
  in
  let workloads =
    [
      ( "f4-enumerate", 1, Query_families.f_k 4,
        fst (Graph_families.tournament_instance ~seed:1 ~n) );
      ( "f6-enumerate", 1, Query_families.f_k 6,
        fst (Graph_families.tournament_instance ~seed:2 ~n) );
      ( "clique-child-4-enumerate", 2, [ Query_families.clique_child 4 ],
        fst (stream_instance ~seed:3 ~n ~anchors) );
      ( "social-optional", 1,
        Wdpt.Pattern_forest.of_algebra
          (Sparql.Parser.parse_exn
             "{ ?a p:knows ?b . OPTIONAL { ?b p:email ?m } OPTIONAL { ?b \
              p:worksAt ?c OPTIONAL { ?c p:livesIn ?t } } }"),
        Rdf.Generator.social ~seed:9 ~people:(if !fast then 40 else 80) );
      ("uni-professor-profile", 1, uni_forest "professor-profile", uni_graph);
      ("uni-department-roster", 1, uni_forest "department-roster", uni_graph);
      ("uni-student-transcript", 1, uni_forest "student-transcript", uni_graph);
      ("uni-classmates", 1, uni_forest "classmates", uni_graph);
      ( "uni2-professor-profile", 1,
        uni_forest "professor-profile", uni2_graph );
      ( "uni2-department-roster", 1,
        uni_forest "department-roster", uni2_graph );
    ]
  in
  Fmt.pr "%-26s %8s %10s %10s %10s %7s %7s@." "workload" "answers" "term(ms)"
    "cold(ms)" "warm(ms)" "cold-x" "warm-x";
  let warm_speedups = ref [] in
  List.iter
    (fun (name, k, forest, graph) ->
      let runs = if !fast then 5 else 9 in
      let reference =
        Sparql.Eval.eval (Wdpt.Pattern_forest.to_algebra forest) graph
      in
      let verify variant got =
        if not (Sparql.Mapping.Set.equal got reference) then begin
          Fmt.epr "A7 %s: %s answers diverge from the reference evaluator@."
            name variant;
          exit 1
        end
      in
      (* PR 2 baseline: term-level join; each evaluation builds its own
         pebble cache, exactly as the PR 2 engine did per call *)
      let term () =
        Wd_core.Enumerate.solutions ~join:`Term ~maximality:(`Pebble k)
          ~kernel:
            (Wd_core.Pebble_eval.Cached (Wd_core.Pebble_cache.create graph))
          forest graph
      in
      (* encoded join, cold: a fresh plan cache per evaluation *)
      let cold () =
        Wd_core.Enumerate.solutions ~maximality:(`Pebble k)
          ~cache:(Wd_core.Plan_cache.create ()) forest graph
      in
      (* encoded join, warm: one plan cache across evaluations — the
         steady state of repeated [Engine.solutions] on one plan *)
      let cache = Wd_core.Plan_cache.create () in
      let warm () =
        Wd_core.Enumerate.solutions ~maximality:(`Pebble k) ~cache forest graph
      in
      (* Interleaved sampling: probe each variant once (verifying its
         answers and sizing a batch so every sample spans >= 20ms of
         work), then take all three variants' samples round-robin so
         machine-throughput drift hits the ratios symmetrically instead
         of whichever variant happened to run during a slow stretch. *)
      Gc.compact ();
      let probe variant f =
        let ans, t = time_once f in
        verify variant ans;
        (max 1 (min 1000 (int_of_float (Float.ceil (0.02 /. Float.max t 1e-6)))), f)
      in
      let variants = [| probe "term" term; probe "encoded-cold" cold;
                        probe "encoded-warm" warm |] in
      let samples = Array.map (fun _ -> ref []) variants in
      for _ = 1 to runs do
        Array.iteri
          (fun i (batch, f) ->
            let t0 = Unix.gettimeofday () in
            for _ = 1 to batch do
              ignore (f ())
            done;
            let t = (Unix.gettimeofday () -. t0) /. float_of_int batch in
            samples.(i) := t :: !(samples.(i)))
          variants
      done;
      let median_of i =
        let sorted = List.sort compare !(samples.(i)) in
        List.nth sorted (List.length sorted / 2)
      in
      let t_term = median_of 0
      and t_cold = median_of 1
      and t_warm = median_of 2 in
      let term_ans = term () in
      let speedup_cold = t_term /. t_cold
      and speedup_warm = t_term /. t_warm in
      warm_speedups := speedup_warm :: !warm_speedups;
      record ~experiment:"A7" ~metric:(name ^ ".term_ms") (ms t_term);
      record ~experiment:"A7" ~metric:(name ^ ".cold_ms") (ms t_cold);
      record ~experiment:"A7" ~metric:(name ^ ".warm_ms") (ms t_warm);
      record ~experiment:"A7" ~metric:(name ^ ".speedup_cold") speedup_cold;
      record ~experiment:"A7" ~metric:(name ^ ".speedup_warm") speedup_warm;
      record ~experiment:"A7" ~metric:(name ^ ".answers")
        (float_of_int (Sparql.Mapping.Set.cardinal term_ans));
      let stats = Wd_core.Plan_cache.stats cache in
      record ~experiment:"A7" ~metric:(name ^ ".hom_sources")
        (float_of_int stats.Wd_core.Plan_cache.hom_sources);
      record ~experiment:"A7" ~metric:(name ^ ".verdict_hits")
        (float_of_int stats.Wd_core.Plan_cache.pebble.Wd_core.Pebble_cache.hits);
      Fmt.pr "%-26s %8d %10.3f %10.3f %10.3f %6.1fx %6.1fx@." name
        (Sparql.Mapping.Set.cardinal term_ans)
        (ms t_term) (ms t_cold) (ms t_warm) speedup_cold speedup_warm)
    workloads;
  let median_speedup_warm =
    let sorted = List.sort compare !warm_speedups in
    List.nth sorted (List.length sorted / 2)
  in
  record ~experiment:"A7" ~metric:"median_speedup_warm" median_speedup_warm;
  Fmt.pr "@.median warm speedup vs PR 2 term baseline: %.1fx (target: >= 5x)@."
    median_speedup_warm

let a8 () =
  header "A8" "ablation: domain-pool scaling of parallel candidate checking"
    "ISSUE 4 tentpole: per-worker pebble caches over shared compiled games";
  let host_cores = Domain.recommended_domain_count () in
  Fmt.pr "Warm full enumeration (the A7 workloads) with the per-candidate@.";
  Fmt.pr "maximality tests fanned across a domain pool; every domain count@.";
  Fmt.pr "must reproduce the reference answers exactly.  Speedups are@.";
  Fmt.pr "relative to --domains 1 (the sequential path) and bounded above by@.";
  Fmt.pr "the host's core count — this host reports %d core(s).@.@." host_cores;
  record ~experiment:"A8" ~metric:"host_cores" (float_of_int host_cores);
  let domain_counts = if !fast then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let n = if !fast then 10 else 14 in
  let anchors = if !fast then 4 else 6 in
  let social_forest =
    Wdpt.Pattern_forest.of_algebra
      (Sparql.Parser.parse_exn
         "{ ?a p:knows ?b . OPTIONAL { ?b p:email ?m } OPTIONAL { ?b \
          p:worksAt ?c OPTIONAL { ?c p:livesIn ?t } } }")
  in
  let workloads =
    if !fast then
      [
        ( "f4-enumerate", 1, Query_families.f_k 4,
          fst (Graph_families.tournament_instance ~seed:1 ~n) );
        ( "social-optional", 1, social_forest,
          Rdf.Generator.social ~seed:9 ~people:40 );
      ]
    else
      [
        ( "f6-enumerate", 1, Query_families.f_k 6,
          fst (Graph_families.tournament_instance ~seed:2 ~n) );
        ( "clique-child-4-enumerate", 2, [ Query_families.clique_child 4 ],
          fst (stream_instance ~seed:3 ~n ~anchors) );
        ( "social-optional", 1, social_forest,
          Rdf.Generator.social ~seed:9 ~people:80 );
        ( "uni-professor-profile", 1,
          Wdpt.Pattern_forest.of_algebra
            (Sparql.Parser.parse_exn
               (List.assoc "professor-profile" University.queries)),
          University.generate ~seed:9 ~universities:1 );
      ]
  in
  Fmt.pr "%-26s %8s" "workload" "answers";
  List.iter (fun d -> Fmt.pr " %8s" (Printf.sprintf "d%d(ms)" d)) domain_counts;
  List.iter
    (fun d -> if d > 1 then Fmt.pr " %7s" (Printf.sprintf "d%d-x" d))
    domain_counts;
  Fmt.pr "@.";
  let speedups_by_d = Hashtbl.create 4 in
  List.iter
    (fun (name, k, forest, graph) ->
      let runs = if !fast then 3 else 7 in
      let reference =
        Sparql.Eval.eval (Wdpt.Pattern_forest.to_algebra forest) graph
      in
      let verify d got =
        if not (Sparql.Mapping.Set.equal got reference) then begin
          Fmt.epr
            "A8 %s: answers at %d domains diverge from the reference@." name d;
          exit 1
        end
      in
      (* one warm plan cache per domain count, so every variant runs in
         the steady state it would reach under repeated Engine calls;
         interleaved round-robin sampling as in A7 *)
      Gc.compact ();
      let variants =
        Array.of_list
          (List.map
             (fun d ->
               let cache = Wd_core.Plan_cache.create () in
               let f () =
                 Wd_core.Enumerate.solutions ~maximality:(`Pebble k) ~cache
                   ~domains:d forest graph
               in
               let ans, t = time_once f in
               verify d ans;
               let batch =
                 max 1
                   (min 1000
                      (int_of_float (Float.ceil (0.02 /. Float.max t 1e-6))))
               in
               (d, batch, f))
             domain_counts)
      in
      let samples = Array.map (fun _ -> ref []) variants in
      for _ = 1 to runs do
        Array.iteri
          (fun i (_, batch, f) ->
            let t0 = Unix.gettimeofday () in
            for _ = 1 to batch do
              ignore (f ())
            done;
            samples.(i) :=
              ((Unix.gettimeofday () -. t0) /. float_of_int batch)
              :: !(samples.(i)))
          variants
      done;
      let median_of i =
        let sorted = List.sort compare !(samples.(i)) in
        List.nth sorted (List.length sorted / 2)
      in
      let times =
        Array.to_list (Array.mapi (fun i (d, _, _) -> (d, median_of i)) variants)
      in
      let t1 = List.assoc 1 times in
      Fmt.pr "%-26s %8d" name (Sparql.Mapping.Set.cardinal reference);
      List.iter (fun (_, t) -> Fmt.pr " %8.3f" (ms t)) times;
      List.iter
        (fun (d, t) ->
          if d > 1 then begin
            let speedup = t1 /. t in
            Hashtbl.replace speedups_by_d d
              (speedup
              :: Option.value ~default:[] (Hashtbl.find_opt speedups_by_d d));
            record ~experiment:"A8"
              ~metric:(Printf.sprintf "%s.speedup_d%d" name d)
              speedup;
            Fmt.pr " %6.1fx" speedup
          end)
        times;
      List.iter
        (fun (d, t) ->
          record ~experiment:"A8"
            ~metric:(Printf.sprintf "%s.d%d_warm_ms" name d)
            (ms t))
        times;
      Fmt.pr "@.")
    workloads;
  List.iter
    (fun d ->
      if d > 1 then
        match Hashtbl.find_opt speedups_by_d d with
        | Some sp ->
            let sorted = List.sort compare sp in
            let median = List.nth sorted (List.length sorted / 2) in
            record ~experiment:"A8"
              ~metric:(Printf.sprintf "median_speedup_d%d" d)
              median;
            Fmt.pr "@.median speedup at %d domains: %.2fx@." d median
        | None -> ())
    domain_counts;
  Fmt.pr "@.shape: answers are bit-identical at every domain count (verified@.";
  Fmt.pr "against the reference evaluator above — any divergence exits 1).@.";
  Fmt.pr "Real speedup requires real cores: on a single-core host the pool@.";
  Fmt.pr "degenerates to interleaved scheduling and the ratios hover at or@.";
  Fmt.pr "below 1x, measuring only the coordination overhead; the per-worker@.";
  Fmt.pr "verdict caches keep that overhead bounded (see PERFORMANCE.md).@."

(* ------------------------------------------------------------------ *)
(* A10 — ablation: cost-based planning vs per-prefix rescoring         *)
(* ------------------------------------------------------------------ *)

let a10 () =
  header "A10" "ablation: cost-based join planning on skewed stores"
    "ISSUE 7 tentpole: compiled orders + incremental fail-first refinement";
  Fmt.pr "Warm full enumeration on Zipf-skewed graphs under three join@.";
  Fmt.pr "planning modes: per-prefix rescoring (the PR 3 exact fail-first@.";
  Fmt.pr "baseline, --optimize off), the compiled static order, and the@.";
  Fmt.pr "compiled order with incremental refinement plus per-node@.";
  Fmt.pr "pebble-vs-naive maximality choices (--optimize on). Every variant@.";
  Fmt.pr "is verified against the reference algebra evaluator.@.@.";
  let preds = [ "q0"; "q1"; "q2"; "q3"; "q4"; "q5" ] in
  (* Zipf-skewed stores: node 0 is the heaviest hub and predicate
     cardinalities fall off steeply, so uniform-guess join orders are
     maximally wrong. [--fast] halves both axes (density preserved). *)
  let zg seed n m e =
    let n = if !fast then n / 2 else n
    and m = if !fast then m / 2 else m in
    Rdf.Generator.zipf ~seed ~n ~predicates:preds ~m ~exponent:e ()
  in
  let q src = Wdpt.Pattern_forest.of_algebra (Sparql.Parser.parse_exn src) in
  (* Joins where planning matters: multi-triple roots over predicates of
     very different cardinality (the compiled order front-loads the rare
     ones), with selective OPTIONAL children small enough for the
     pebble-vs-naive verdict to pick the memoized naive test. *)
  let workloads =
    [
      ( "star2-two-optionals",
        q
          "{ ?a p:q1 ?b . ?a p:q2 ?c . OPTIONAL { ?b p:q5 ?d } OPTIONAL \
           { ?c p:q4 ?e } }",
        zg 16 100 800 1.4 );
      ( "three-optionals",
        q
          "{ ?a p:q1 ?b . OPTIONAL { ?b p:q5 ?c } OPTIONAL { ?a p:q4 ?d } \
           OPTIONAL { ?b p:q3 ?e } }",
        zg 12 100 800 1.4 );
      ( "chain2-two-optionals",
        q
          "{ ?a p:q1 ?b . ?b p:q2 ?c . OPTIONAL { ?c p:q5 ?d } OPTIONAL \
           { ?a p:q4 ?e } }",
        zg 17 100 800 1.4 );
      ( "nested-optionals",
        q
          "{ ?a p:q1 ?b . OPTIONAL { ?b p:q3 ?c . OPTIONAL { ?c p:q5 ?d } \
           } OPTIONAL { ?a p:q4 ?e } }",
        zg 18 100 800 1.4 );
      ( "triangle-two-optionals",
        q
          "{ ?a p:q0 ?b . ?b p:q1 ?c . ?a p:q2 ?c . OPTIONAL { ?c p:q5 ?d \
           } OPTIONAL { ?b p:q4 ?e } }",
        zg 25 120 1100 1.2 );
    ]
  in
  Fmt.pr "%-20s %8s %11s %10s %11s %9s %9s@." "workload" "answers"
    "rescore(ms)" "static(ms)" "adaptive(ms)" "static-x" "adapt-x";
  let adaptive_speedups = ref [] in
  List.iter
    (fun (name, forest, graph) ->
      let runs = if !fast then 5 else 9 in
      let dw = Wd_core.Domination_width.of_forest forest in
      let reference =
        Sparql.Eval.eval (Wdpt.Pattern_forest.to_algebra forest) graph
      in
      let verify variant got =
        if not (Sparql.Mapping.Set.equal got reference) then begin
          Fmt.epr "A10 %s: %s answers diverge from the reference evaluator@."
            name variant;
          exit 1
        end
      in
      (* one warm plan cache per variant: compiled sources, games, and
         (for the planned variants) node decisions are steady state, so
         the timings isolate the join itself *)
      let eval optimize =
        let cache = Wd_core.Plan_cache.create () in
        fun () ->
          Wd_core.Enumerate.solutions ~maximality:(`Pebble dw) ~cache
            ~optimize forest graph
      in
      let rescore = eval `Off
      and static = eval `Static
      and adaptive = eval `On in
      (* interleaved round-robin sampling, as in A7: probe each variant
         (verifying answers, sizing a >= 20ms batch), then sample the
         three variants alternately so throughput drift hits the ratios
         symmetrically *)
      Gc.compact ();
      let probe variant f =
        let ans, t = time_once f in
        verify variant ans;
        ( max 1 (min 1000 (int_of_float (Float.ceil (0.02 /. Float.max t 1e-6)))),
          f )
      in
      let variants =
        [|
          probe "rescore" rescore; probe "static" static;
          probe "adaptive" adaptive;
        |]
      in
      let samples = Array.map (fun _ -> ref []) variants in
      for _ = 1 to runs do
        Array.iteri
          (fun i (batch, f) ->
            let t0 = Unix.gettimeofday () in
            for _ = 1 to batch do
              ignore (f ())
            done;
            let t = (Unix.gettimeofday () -. t0) /. float_of_int batch in
            samples.(i) := t :: !(samples.(i)))
          variants
      done;
      let median_of i =
        let sorted = List.sort compare !(samples.(i)) in
        List.nth sorted (List.length sorted / 2)
      in
      let t_rescore = median_of 0
      and t_static = median_of 1
      and t_adaptive = median_of 2 in
      let speedup_static = t_rescore /. t_static
      and speedup_adaptive = t_rescore /. t_adaptive in
      adaptive_speedups := speedup_adaptive :: !adaptive_speedups;
      record ~experiment:"A10" ~metric:(name ^ ".rescore_ms") (ms t_rescore);
      record ~experiment:"A10" ~metric:(name ^ ".static_ms") (ms t_static);
      record ~experiment:"A10" ~metric:(name ^ ".adaptive_ms") (ms t_adaptive);
      record ~experiment:"A10" ~metric:(name ^ ".speedup_static")
        speedup_static;
      record ~experiment:"A10" ~metric:(name ^ ".speedup_adaptive")
        speedup_adaptive;
      record ~experiment:"A10" ~metric:(name ^ ".answers")
        (float_of_int (Sparql.Mapping.Set.cardinal reference));
      Fmt.pr "%-20s %8d %11.3f %10.3f %11.3f %8.2fx %8.2fx@." name
        (Sparql.Mapping.Set.cardinal reference)
        (ms t_rescore) (ms t_static) (ms t_adaptive) speedup_static
        speedup_adaptive)
    workloads;
  let median_speedup =
    let sorted = List.sort compare !adaptive_speedups in
    List.nth sorted (List.length sorted / 2)
  in
  record ~experiment:"A10" ~metric:"median_speedup_adaptive" median_speedup;
  Fmt.pr
    "@.median optimizer-on speedup vs per-prefix rescoring: %.2fx (target: \
     >= 1.3x)@."
    median_speedup

(* ------------------------------------------------------------------ *)
(* A11 — cold start: Turtle parse+encode vs compiled-store mmap        *)
(* ------------------------------------------------------------------ *)

let a11_read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Minimal loopback HTTP client for the server-path measurement (same
   shape as bench/server_bench.ml). *)
let a11_http_request ~port raw =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let rec send off =
        if off < String.length raw then
          send
            (off + Unix.write_substring fd raw off (String.length raw - off))
      in
      (try send 0 with
      | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
      let buf = Bytes.create 4096 and out = Buffer.create 256 in
      let rec drain () =
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes out buf 0 n;
            drain ()
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
      in
      drain ();
      Buffer.contents out)

let a11 () =
  header "A11" "cold start: Turtle parse+encode vs compiled-store mmap"
    "ISSUE 8 tentpole: the on-disk store loads in O(pages touched)";
  Fmt.pr "The same social graph reaches its first answer from a cold process@.";
  Fmt.pr "two ways: parse the Turtle + encode (the pre-PR-8 path), or map the@.";
  Fmt.pr "compiled store. Full answer sets are cross-checked, then the same@.";
  Fmt.pr "ablation is run through the server: process start to first 200.@.@.";
  let people = if !fast then 400 else 2000 in
  let g = Rdf.Generator.social ~seed:11 ~people in
  let ttl = Filename.temp_file "bench_a11" ".ttl" in
  let wds = Filename.temp_file "bench_a11" ".wds" in
  let cleanup () =
    List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ ttl; wds ]
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let oc = open_out ttl in
  output_string oc (Rdf.Turtle.to_string g);
  close_out oc;
  let _, t_compile =
    time_once (fun () -> Storage.save (Encoded.Encoded_graph.of_graph g) wds)
  in
  let query = "{ ?a p:knows ?b . OPTIONAL { ?b p:email ?m } }" in
  let pattern = Sparql.Parser.parse_exn query in
  let parse_path () =
    match Rdf.Turtle.parse_graph_err ~source:ttl (a11_read_file ttl) with
    | Ok g -> g
    | Error _ -> failwith "A11: turtle reparse failed"
  in
  let store_path () = Storage.load_graph wds in
  (* Time-to-first-solution, cold: graph load + plan + evaluate until
     the first answer is accounted. Every run starts from nothing — the
     store registry and MRU are dropped in between. *)
  let ttfs load =
    Encoded.Encoded_graph.clear_cache ();
    let graph = load () in
    let plan = Wd_core.Engine.plan pattern in
    let budget = Resource.Budget.make ~max_solutions:1 () in
    match Wd_core.Engine.solutions ~budget plan graph with
    | _ -> ()
    | exception Resource.Budget.Exhausted _ -> ()
  in
  let runs = 5 in
  let _, t_parse = time_median ~runs (fun () -> ttfs parse_path) in
  let _, t_mmap = time_median ~runs (fun () -> ttfs store_path) in
  (* differential check: the two paths agree on the full answer set *)
  Encoded.Encoded_graph.clear_cache ();
  let full graph = Wd_core.Engine.solutions (Wd_core.Engine.plan pattern) graph in
  let reference = full (parse_path ()) and mapped = full (store_path ()) in
  if not (Sparql.Mapping.Set.equal reference mapped) then begin
    Fmt.epr "A11: mapped-store answers diverge from the parsed graph@.";
    exit 1
  end;
  let speedup = t_parse /. Float.max t_mmap 1e-9 in
  Fmt.pr "%-26s %10s %12s %12s %8s@." "path" "answers" "compile(ms)"
    "ttfs(ms)" "speedup";
  Fmt.pr "%-26s %10d %12s %12.3f %8s@." "turtle-parse+encode"
    (Sparql.Mapping.Set.cardinal reference) "-" (ms t_parse) "1.0x";
  Fmt.pr "%-26s %10d %12.3f %12.3f %7.1fx@." "compiled-store-mmap"
    (Sparql.Mapping.Set.cardinal mapped) (ms t_compile) (ms t_mmap) speedup;
  record ~experiment:"A11" ~metric:"graph_triples" (float (Rdf.Graph.cardinal g));
  record ~experiment:"A11" ~metric:"compile_ms" (ms t_compile);
  record ~experiment:"A11" ~metric:"parse_ttfs_ms" (ms t_parse);
  record ~experiment:"A11" ~metric:"mmap_ttfs_ms" (ms t_mmap);
  record ~experiment:"A11" ~metric:"speedup_ttfs" speedup;
  record ~experiment:"A11" ~metric:"answers_agree" 1.0;
  (* Server path: process start (including graph load) to the first 200
     on /sparql, heap vs store cold start. *)
  let ttfa load =
    Encoded.Encoded_graph.clear_cache ();
    let t0 = Unix.gettimeofday () in
    let graph = load () in
    let server =
      Wd_server.Server.start
        {
          Wd_server.Server.graph;
          reload = None;
          host = "127.0.0.1";
          port = 0;
          workers = 2;
          domains = 1;
          queue_capacity = 16;
          admission =
            {
              Wd_server.Admission.request_fuel = 50_000_000;
              request_timeout = 30.;
              max_solutions = None;
              global_fuel = None;
              refill_rate = 0.;
              max_inflight = 8;
            };
          max_request_bytes = 1 lsl 16;
          io_timeout = 30.;
          faults = Wd_server.Faults.none;
          plan_capacity = 8;
        }
    in
    let port = Wd_server.Server.port server in
    let request =
      Printf.sprintf "POST /sparql HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
        (String.length query) query
    in
    let response = a11_http_request ~port request in
    let dt = Unix.gettimeofday () -. t0 in
    let ok =
      match String.split_on_char ' ' response with
      | _ :: "200" :: _ -> true
      | _ -> false
    in
    Wd_server.Server.initiate_drain server;
    ignore (Wd_server.Server.join server);
    if not ok then begin
      Fmt.epr "A11: server path did not answer 200@.";
      exit 1
    end;
    dt
  in
  let t_serve_parse = ttfa parse_path in
  let t_serve_mmap = ttfa store_path in
  let serve_speedup = t_serve_parse /. Float.max t_serve_mmap 1e-9 in
  Fmt.pr "@.server time-to-first-answer: parse %.3fms, mmap %.3fms (%.1fx)@."
    (ms t_serve_parse) (ms t_serve_mmap) serve_speedup;
  record ~experiment:"A11" ~metric:"server_parse_ttfa_ms" (ms t_serve_parse);
  record ~experiment:"A11" ~metric:"server_mmap_ttfa_ms" (ms t_serve_mmap);
  record ~experiment:"A11" ~metric:"server_speedup_ttfa" serve_speedup;
  Fmt.pr "@.cold-start speedup: %.1fx (target: >= 20x)@." speedup;
  if speedup < 20. then begin
    Fmt.epr "A11: cold-start speedup %.1fx below the 20x target@." speedup;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* A12 — incremental deltas: append+query vs full recompile+query      *)
(* ------------------------------------------------------------------ *)

let a12_copy_file src dst =
  let oc = open_out_bin dst in
  output_string oc (a11_read_file src);
  close_out oc

let a12 () =
  header "A12" "incremental updates: append+query vs recompile+query"
    "ISSUE 9 tentpole: updates are O(delta); loads replay only segments";
  Fmt.pr "A compiled social graph receives a delta of d triples. The@.";
  Fmt.pr "incremental path appends one segment (never rewriting the base)@.";
  Fmt.pr "and reloads through the overlay; the baseline recompiles the@.";
  Fmt.pr "whole store. Both end in a cold time-to-first-solution, and the@.";
  Fmt.pr "two stores are checked answer- and statistics-identical. A shard@.";
  Fmt.pr "of the same store then shows the p-bound query maps only the@.";
  Fmt.pr "members that own its predicates.@.@.";
  (* The ratio needs a base big enough that recompiling it dominates
     the fixed cold-query cost both paths share — the fast tier is
     larger here than in A11 for that reason. *)
  let people = if !fast then 2500 else 5000 in
  let g = Rdf.Generator.social ~seed:13 ~people in
  let base_triples = Rdf.Graph.triples g in
  let wds = Filename.temp_file "bench_a12" ".wds" in
  let inc = Filename.temp_file "bench_a12_inc" ".wds" in
  let whole = Filename.temp_file "bench_a12_full" ".wds" in
  let man = Filename.temp_file "bench_a12_man" ".man" in
  let slices = 8 in
  let cleanup () =
    let chained =
      List.concat_map
        (fun p -> [ p; Storage.seg_path p 1; Storage.seg_path p 2 ])
        [ wds; inc; whole ]
    in
    let members = List.init slices (fun k -> Printf.sprintf "%s.s%d" man k) in
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      (chained @ (man :: members))
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  Storage.save (Encoded.Encoded_graph.of_graph g) wds;
  let query = "{ ?a p:knows ?b . OPTIONAL { ?b p:email ?m } }" in
  let pattern = Sparql.Parser.parse_exn query in
  let ttfs load =
    Encoded.Encoded_graph.clear_cache ();
    let graph = load () in
    let plan = Wd_core.Engine.plan pattern in
    let budget = Resource.Budget.make ~max_solutions:1 () in
    match Wd_core.Engine.solutions ~budget plan graph with
    | _ -> ()
    | exception Resource.Budget.Exhausted _ -> ()
  in
  (* Delta triples: fresh nodes knowing each other through [p:knows],
     so every append grows the dictionary and moves the query's answer
     set — the differential check below is not vacuous. *)
  let delta d =
    List.init d (fun i ->
        Rdf.Triple.make
          (Rdf.Term.iri (Printf.sprintf "urn:delta%d:%d" d i))
          (Rdf.Term.iri "p:knows")
          (Rdf.Term.iri (Printf.sprintf "urn:delta%d:%d" d (i + 1))))
  in
  (* best-of-N on both paths symmetrically: a stray major GC inside a
     ~4ms timed region would otherwise dominate the ratio *)
  let best l = List.fold_left Float.min infinity l in
  let runs = 5 in
  Fmt.pr "%-8s %15s %18s %9s@." "delta" "append+query(ms)"
    "recompile+query(ms)" "speedup";
  let speedups =
    List.map
      (fun d ->
        let adds = delta d in
        let t_inc =
          best
            (List.init runs (fun _ ->
                 (* every run starts a fresh chain on a pristine base *)
                 (try Sys.remove (Storage.seg_path inc 1)
                  with Sys_error _ -> ());
                 a12_copy_file wds inc;
                 snd
                   (time_once (fun () ->
                        ignore (Storage.append ~adds inc);
                        ttfs (fun () -> Storage.load_graph inc)))))
        in
        let t_full =
          best
            (List.init runs (fun _ ->
                 snd
                   (time_once (fun () ->
                        let g' = Rdf.Graph.of_triples (base_triples @ adds) in
                        Storage.save (Encoded.Encoded_graph.of_graph g') whole;
                        ttfs (fun () -> Storage.load_graph whole)))))
        in
        let speedup = t_full /. Float.max t_inc 1e-9 in
        Fmt.pr "%-8d %15.3f %18.3f %8.1fx@." d (ms t_inc) (ms t_full) speedup;
        record ~experiment:"A12"
          ~metric:(Printf.sprintf "append_ms_%d" d)
          (ms t_inc);
        record ~experiment:"A12"
          ~metric:(Printf.sprintf "recompile_ms_%d" d)
          (ms t_full);
        record ~experiment:"A12" ~metric:(Printf.sprintf "speedup_%d" d) speedup;
        (d, speedup))
      [ 1; 10; 1000 ]
  in
  record ~experiment:"A12" ~metric:"graph_triples"
    (float (Rdf.Graph.cardinal g));
  (* Differential, on the largest delta (the chain and the recompiled
     store of the last timed round are still on disk): the overlay must
     be indistinguishable from the monolithic recompile. *)
  Encoded.Encoded_graph.clear_cache ();
  let full graph =
    Wd_core.Engine.solutions (Wd_core.Engine.plan pattern) graph
  in
  let reference = full (Storage.load_graph whole) in
  let got = full (Storage.load_graph inc) in
  if not (Sparql.Mapping.Set.equal reference got) then begin
    Fmt.epr "A12: overlay answers diverge from the recompiled store@.";
    exit 1
  end;
  record ~experiment:"A12" ~metric:"answers_agree" 1.0;
  let module E = Encoded.Encoded_graph in
  let mono = Storage.load whole and overlay = Storage.load inc in
  let dm = E.dictionary mono and dv = E.dictionary overlay in
  let stats_ok =
    ref
      (E.cardinal mono = E.cardinal overlay
      && E.distinct_subjects mono = E.distinct_subjects overlay
      && E.distinct_objects mono = E.distinct_objects overlay
      && E.distinct_predicates mono = E.distinct_predicates overlay)
  in
  (* planner statistics compared through terms: the two id spaces differ *)
  for id = 0 to Rdf.Dictionary.size dm - 1 do
    match Rdf.Dictionary.find dv (Rdf.Dictionary.term_of dm id) with
    | None -> stats_ok := false
    | Some vid ->
        let a = E.predicate_stats mono id
        and b = E.predicate_stats overlay vid in
        if
          (a.E.triples, a.E.distinct_subjects, a.E.distinct_objects)
          <> (b.E.triples, b.E.distinct_subjects, b.E.distinct_objects)
          || E.match_count mono ~p:id () <> E.match_count overlay ~p:vid ()
        then stats_ok := false
  done;
  if not !stats_ok then begin
    Fmt.epr "A12: overlay planner statistics diverge from the recompile@.";
    exit 1
  end;
  record ~experiment:"A12" ~metric:"stats_agree" 1.0;
  (* compact round-trip: folding the chain must reproduce, bit for bit,
     the stamp a fresh compile of the same triples produces *)
  let { Storage.folded; compact_stamp } = Storage.compact inc in
  let fresh_stamp = (Storage.info whole).Storage.stamp in
  if folded <> 1 || compact_stamp <> fresh_stamp then begin
    Fmt.epr "A12: compact stamp %#x differs from fresh compile %#x@."
      compact_stamp fresh_stamp;
    exit 1
  end;
  record ~experiment:"A12" ~metric:"compact_stamp_equal" 1.0;
  Fmt.pr "@.compact(base + 1k segment) stamp == fresh compile stamp: ok@.";
  (* lazy-shard ablation: the p-bound query must fault in only the
     members owning its two predicates, not the whole shard set *)
  ignore (Storage.shard ~slices ~src:whole man);
  Encoded.Encoded_graph.clear_cache ();
  let sharded = Storage.load man in
  E.register sharded;
  let graph =
    Rdf.Graph.deferred ~epoch:(E.epoch sharded) (fun () ->
        failwith "A12: sharded handle left the encoded path")
  in
  ignore (full graph);
  let touched =
    Option.value ~default:slices (E.members_touched sharded)
  in
  Fmt.pr "shard ablation: %d of %d members touched by the p-bound query@."
    touched slices;
  record ~experiment:"A12" ~metric:"shard_members_touched" (float touched);
  record ~experiment:"A12" ~metric:"shard_slices" (float slices);
  if touched >= slices then begin
    Fmt.epr "A12: p-bound query mapped all %d members — routing is eager@."
      slices;
    exit 1
  end;
  (* hard gate: small-delta updates must be >= 10x cheaper end to end.
     The 1k-delta point is informative under --fast (the base graph is
     small enough that recompiling it is itself cheap). *)
  List.iter
    (fun (d, s) ->
      if (d < 1000 || not !fast) && s < 10. then begin
        Fmt.epr "A12: append speedup %.1fx at delta %d below the 10x target@."
          s d;
        exit 1
      end)
    speedups;
  Fmt.pr "@.incremental-update speedup at delta 1: %.1fx (target: >= 10x)@."
    (List.assoc 1 speedups)

(* ------------------------------------------------------------------ *)
(* A13 — pre-plan pruning ablation and canonical plan-cache keying     *)
(* ------------------------------------------------------------------ *)

let a13 () =
  header "A13" "semantic pruning: plan the residual, not the query"
    "ISSUE 10 tentpole: satisfiability-driven rewrites feed the planner";
  Fmt.pr "Queries with provably-dead subtrees (unsatisfiable OPT arms,@.";
  Fmt.pr "contradictory UNION branches, duplicate conjuncts, whole-pattern@.";
  Fmt.pr "contradictions). Pruning off: the query is evaluated as written@.";
  Fmt.pr "(the tractable engine if it is core, the algebra evaluator@.";
  Fmt.pr "otherwise — FILTERs are outside the engine's fragment). Pruning@.";
  Fmt.pr "on: Prune.run first, then the engine on the residual (or no@.";
  Fmt.pr "evaluation at all when the residual is Empty). Answers are@.";
  Fmt.pr "checked identical, and against the reference evaluator.@.@.";
  let people = if !fast then 150 else 400 in
  let g = Rdf.Generator.social ~seed:17 ~people in
  Fmt.pr "store: social graph, %d people, %d triples@.@." people
    (Rdf.Graph.cardinal g);
  let workloads =
    [
      ( "dead-opt-arm",
        "{ ?a p:knows ?b OPTIONAL { ?b p:email ?m FILTER (?m != ?m) } }" );
      ( "unsat-union-branch",
        "{ { ?a p:knows ?b . ?b p:email ?m FILTER (!BOUND(?a)) } UNION { ?a \
         p:knows ?b . ?b p:knows ?c } }" );
      ( "duplicate-conjuncts",
        "{ ?a p:knows ?b . ?a p:knows ?b . ?b p:knows ?c . ?b p:knows ?c }" );
      ( "dead-opt-plus-duplicates",
        "{ ?a p:knows ?b . ?a p:knows ?b OPTIONAL { ?b p:email ?m FILTER (?m \
         != ?m) } }" );
      ( "whole-query-contradiction",
        "{ ?a p:knows ?b . ?b p:email ?m FILTER (?m != ?m) }" );
    ]
  in
  let runs = if !fast then 3 else 5 in
  Fmt.pr "%-28s %14s %13s %9s %9s@." "workload" "pruned-off(ms)"
    "pruned-on(ms)" "speedup" "rewrites";
  let speedups =
    List.map
      (fun (name, text) ->
        let pattern = Sparql.Parser.parse_exn text in
        let off () =
          (* what answering the query as written costs: the engine when
             the text is already core, the algebra evaluator otherwise *)
          if Sparql.Algebra.is_core pattern then
            Wd_core.Engine.solutions (Wd_core.Engine.plan pattern) g
          else Sparql.Eval.eval pattern g
        in
        let on () =
          (* prune time included: the ablation measures the pipeline *)
          match (Analysis.Prune.run pattern).Analysis.Prune.outcome with
          | Analysis.Prune.Empty -> Sparql.Mapping.Set.empty
          | Analysis.Prune.Pattern residual ->
              Wd_core.Engine.solutions (Wd_core.Engine.plan residual) g
        in
        let answers_off, t_off = time_median ~runs off in
        let answers_on, t_on = time_median ~runs on in
        if not (Sparql.Mapping.Set.equal answers_off answers_on) then begin
          Fmt.epr "A13: pruning changed the answers of %s@." name;
          exit 1
        end;
        if
          not
            (Sparql.Mapping.Set.equal answers_on (Sparql.Eval.eval pattern g))
        then begin
          Fmt.epr "A13: %s diverges from the reference evaluator@." name;
          exit 1
        end;
        let rewrites =
          List.length (Analysis.Prune.run pattern).Analysis.Prune.rewrites
        in
        let speedup = t_off /. Float.max t_on 1e-9 in
        Fmt.pr "%-28s %14.3f %13.3f %8.1fx %9d@." name (ms t_off) (ms t_on)
          speedup rewrites;
        record ~experiment:"A13"
          ~metric:(Printf.sprintf "pruneoff_ms_%s" name)
          (ms t_off);
        record ~experiment:"A13"
          ~metric:(Printf.sprintf "pruneon_ms_%s" name)
          (ms t_on);
        record ~experiment:"A13"
          ~metric:(Printf.sprintf "speedup_%s" name)
          speedup;
        speedup)
      workloads
  in
  record ~experiment:"A13" ~metric:"answers_agree" 1.0;
  let median_speedup =
    let sorted = List.sort compare speedups in
    List.nth sorted (List.length sorted / 2)
  in
  record ~experiment:"A13" ~metric:"median_speedup" median_speedup;
  Fmt.pr "@.median pruning speedup: %.1fx (target: >= 1.2x)@." median_speedup;
  if median_speedup < 1.2 then begin
    Fmt.epr "A13: median pruning speedup %.2fx below the 1.2x target@."
      median_speedup;
    exit 1
  end;
  (* canonical plan-cache keying: spelling variants of the same query
     (renamed variables, reordered conjuncts, swapped UNION branches,
     flipped equalities) must collapse onto one cache entry. A raw-text
     key only ever hits on byte-identical repeats. *)
  let variants =
    [
      "{ ?a p:knows ?b . ?b p:email ?m }";
      "{ ?x p:knows ?y . ?y p:email ?e }";
      "{ ?b p:email ?m . ?a p:knows ?b }";
      "{ ?a p:knows ?b OPTIONAL { ?b p:email ?m } }";
      "{ ?s p:knows ?o OPTIONAL { ?o p:email ?mail } }";
      "{ { ?a p:knows ?b } UNION { ?a p:worksAt ?b } }";
      "{ { ?x p:worksAt ?y } UNION { ?x p:knows ?y } }";
      "{ ?a p:knows ?b FILTER (?a = ?b) }";
      "{ ?a p:knows ?b FILTER (?b = ?a) }";
      "{ ?q p:knows ?r FILTER (?q = ?r) }";
    ]
  in
  let canonical_groups = 4 in
  let seen_keys = Hashtbl.create 16 and seen_texts = Hashtbl.create 16 in
  let key_hits = ref 0 and text_hits = ref 0 in
  List.iter
    (fun text ->
      let canon = Analysis.Canonical.of_pattern (Sparql.Parser.parse_exn text) in
      if Hashtbl.mem seen_keys canon.Analysis.Canonical.key then incr key_hits
      else Hashtbl.add seen_keys canon.Analysis.Canonical.key ();
      if Hashtbl.mem seen_texts text then incr text_hits
      else Hashtbl.add seen_texts text ())
    variants;
  let n = List.length variants in
  let canonical_rate = float !key_hits /. float n in
  let raw_rate = float !text_hits /. float n in
  Fmt.pr "@.canonical plan-cache keying over %d variant spellings:@." n;
  Fmt.pr "  canonical-key hit rate %.2f (%d entries), raw-text hit rate %.2f@."
    canonical_rate (Hashtbl.length seen_keys) raw_rate;
  record ~experiment:"A13" ~metric:"canonical_hit_rate" canonical_rate;
  record ~experiment:"A13" ~metric:"canonical_entries"
    (float (Hashtbl.length seen_keys));
  record ~experiment:"A13" ~metric:"raw_text_hit_rate" raw_rate;
  if Hashtbl.length seen_keys <> canonical_groups then begin
    Fmt.epr "A13: %d canonical entries for %d equivalence groups@."
      (Hashtbl.length seen_keys) canonical_groups;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure           *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  header "BECHAMEL" "micro-benchmarks (one Test.make per experiment)"
    "OLS-estimated per-run cost of each experiment's inner operation";
  let open Bechamel in
  (* shared fixtures *)
  let t1_pattern =
    Query_families.random_wd_pattern ~seed:1 ~triples:7 ~vars:7 ~preds:2
      ~depth:3 ~union:2
  in
  let t1_graph =
    Rdf.Generator.random_graph ~seed:11 ~n:8 ~predicates:[ "q0"; "q1" ] ~m:30
  in
  let t1_forest = Wdpt.Pattern_forest.of_algebra t1_pattern in
  let f1_forest = Query_families.f_k 8 in
  let f1_g, f1_mu = Graph_families.tournament_instance ~seed:1 ~n:20 in
  let f2_forest = [ Query_families.clique_child 4 ] in
  let f2_g, f2_mu = Graph_families.tournament_instance ~seed:3 ~n:10 in
  let t2_forest = Query_families.f_k 4 in
  let f3_g, f3_mu = Graph_families.tournament_instance ~seed:2 ~n:16 in
  let t3_h = Hardness.Clique.random_graph ~seed:1 ~n:6 ~edge_prob:0.4 in
  let t4_s = Testutil_lite.gtgraph_of_seed 10 in
  let t4_graph = Testutil_lite.graph_of_seed 11 in
  let t4_mu = Testutil_lite.mu_for t4_s t4_graph 12 in
  let f4_g = Testutil_lite.ugraph_of_seed ~n:12 5 in
  let f5_g = Rdf.Generator.social ~seed:7 ~people:100 in
  let f5_query =
    Sparql.Parser.parse_exn "{ ?a p:knows ?b . OPTIONAL { ?b p:email ?m } }"
  in
  let f5_forest = Wdpt.Pattern_forest.of_algebra f5_query in
  let tests =
    [
      Test.make ~name:"T1/algebra-eval"
        (Staged.stage (fun () -> Sparql.Eval.eval t1_pattern t1_graph));
      Test.make ~name:"T1/wdpf-enumeration"
        (Staged.stage (fun () -> Wdpt.Semantics.solutions t1_forest t1_graph));
      Test.make ~name:"F1/naive-check-F8"
        (Staged.stage (fun () -> Wd_core.Naive_eval.check f1_forest f1_g f1_mu));
      Test.make ~name:"F1/pebble-check-F8"
        (Staged.stage (fun () -> Wd_core.Pebble_eval.check ~k:1 f1_forest f1_g f1_mu));
      Test.make ~name:"F2/pebble2-clique-child4"
        (Staged.stage (fun () -> Wd_core.Pebble_eval.check ~k:1 f2_forest f2_g f2_mu));
      Test.make ~name:"F2/pebble-bw-clique-child4"
        (Staged.stage (fun () -> Wd_core.Pebble_eval.check ~k:3 f2_forest f2_g f2_mu));
      Test.make ~name:"T2/domination-width-F4"
        (Staged.stage (fun () -> Wd_core.Domination_width.of_forest t2_forest));
      Test.make ~name:"F3/pebble-check-F9-n16"
        (Staged.stage (fun () ->
             Wd_core.Pebble_eval.check ~k:1 (Query_families.f_k 9) f3_g f3_mu));
      Test.make ~name:"T3/reduction-build-k3"
        (Staged.stage (fun () -> Hardness.Reduction.build ~k:3 ~h:t3_h));
      Test.make ~name:"T4/pebble-game-single"
        (Staged.stage (fun () -> Pebble.Pebble_game.wins ~k:2 t4_s ~mu:t4_mu t4_graph));
      Test.make ~name:"F4/exact-treewidth-n12"
        (Staged.stage (fun () -> Graphtheory.Treewidth.treewidth f4_g));
      Test.make ~name:"T5/translate"
        (Staged.stage (fun () -> Wdpt.Pattern_forest.of_algebra t1_pattern));
      Test.make ~name:"F5/enumeration-social100"
        (Staged.stage (fun () -> Wdpt.Semantics.solutions f5_forest f5_g));
    ]
  in
  let grouped = Test.make_grouped ~name:"wdsparql" tests in
  let quota = if !fast then 0.2 else 0.5 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> est
          | _ -> nan
        in
        let r2 = Option.value ~default:nan (Analyze.OLS.r_square ols) in
        (name, estimate, r2) :: acc)
      results []
    |> List.sort compare
  in
  Fmt.pr "%-38s %16s %8s@." "benchmark" "ns/run" "r²";
  List.iter
    (fun (name, est, r2) -> Fmt.pr "%-38s %16.0f %8.3f@." name est r2)
    rows

(* ------------------------------------------------------------------ *)
(* main                                                                *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("T1", t1); ("F1", f1); ("F2", f2); ("T2", t2); ("F3", f3);
    ("T3", t3); ("T4", t4); ("F4", f4); ("T5", t5); ("F5", f5);
    ("F6", f6); ("F7", f7); ("T6", t6); ("T7", t7);
    ("A1", a1); ("A2", a2); ("A3", a3); ("A4", a4); ("A5", a5); ("A6", a6);
    (* A10 runs before A8: A8 leaves its borrowed worker domains alive
       (pool registry), and idle domains tax every minor GC with
       stop-the-world synchronization — uniform overhead that would
       wash out A10's planner-mode ratios. *)
    ("A7", a7); ("A10", a10); ("A11", a11); ("A12", a12); ("A13", a13);
    ("A8", a8);
    ("bechamel", bechamel_suite);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse acc = function
    | [] -> List.rev acc
    | ("--fast" | "fast") :: rest ->
        fast := true;
        parse acc rest
    | "--json" :: rest ->
        json_out := Some "BENCH_pr10.json";
        parse acc rest
    | "--json-out" :: file :: rest ->
        json_out := Some file;
        parse acc rest
    | a :: rest -> parse (a :: acc) rest
  in
  let args = parse [] args in
  let selected =
    match args with
    | [] -> experiments
    | names ->
        List.filter
          (fun (id, _) ->
            List.exists (fun a -> String.lowercase_ascii a = String.lowercase_ascii id) names)
          experiments
  in
  if selected = [] then begin
    Fmt.epr "unknown experiment; available: %s@."
      (String.concat ", " (List.map fst experiments));
    exit 1
  end;
  let total_t0 = Unix.gettimeofday () in
  List.iter (fun (_, run) -> run ()) selected;
  Fmt.pr "@.total benchmark time: %.1fs@." (Unix.gettimeofday () -. total_t0);
  Option.iter write_json !json_out
