(* PR 6: replayable workload driver for the endpoint (lib/server).

   Runs the server in-process and drives it over real loopback sockets:

   - [steady]            light load, baseline p50/p99 and throughput;
   - [overload_shed_on]  2x overload with the watermarks armed — excess
                         is shed promptly with 503, the p99 of served
                         requests stays bounded;
   - [overload_shed_off] the same offered load with the watermarks
                         effectively disabled — everything queues, the
                         tail latency shows why shedding exists;
   - [faults]            the deterministic fault barrage: every injected
                         kind, counters reconciled exactly against the
                         schedule, then a control query and an fd-leak
                         check prove the pool survived.

     dune exec bench/server_bench.exe -- --json-out BENCH_pr6.json
*)

module Io = Wd_server.Io
module Faults = Wd_server.Faults
module Admission = Wd_server.Admission
module Server = Wd_server.Server
module Json = Analysis.Json

let fast = ref false
let json_out : string option ref = ref None

(* ------------------------------------------------------------------ *)
(* JSON recording (same schema as bench/main.ml)                       *)
(* ------------------------------------------------------------------ *)

let records : (string * string * float) list ref = ref []

let record ~experiment ~metric value =
  records := (experiment, metric, value) :: !records

let json_number v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6f" v

let write_json file =
  let ordered = List.rev !records in
  let experiments =
    List.fold_left
      (fun acc (e, _, _) -> if List.mem e acc then acc else acc @ [ e ])
      [] ordered
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"schema_version\": 1,\n  \"pr\": \"pr9\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"host_cores\": %d,\n"
       (Domain.recommended_domain_count ()));
  Buffer.add_string buf (Printf.sprintf "  \"fast\": %b,\n" !fast);
  Buffer.add_string buf "  \"experiments\": {\n";
  List.iteri
    (fun i e ->
      Buffer.add_string buf
        (Printf.sprintf "    \"%s\": {\n      \"metrics\": {\n" e);
      let metrics = List.filter (fun (e', _, _) -> e' = e) ordered in
      List.iteri
        (fun j (_, m, v) ->
          Buffer.add_string buf
            (Printf.sprintf "        \"%s\": %s%s\n" m (json_number v)
               (if j = List.length metrics - 1 then "" else ",")))
        metrics;
      Buffer.add_string buf
        (Printf.sprintf "      }\n    }%s\n"
           (if i = List.length experiments - 1 then "" else ",")))
    experiments;
  Buffer.add_string buf "  }\n}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents buf);
  close_out oc;
  (* self-validation: the schema marker and every experiment survive a
     re-read, so BENCH_*.json drift is a hard failure *)
  let ic = open_in file in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let ok =
    Astring.String.is_infix ~affix:"\"schema_version\": 1" contents
    && List.for_all
         (fun e ->
           Astring.String.is_infix ~affix:(Printf.sprintf "\"%s\": {" e)
             contents)
         experiments
  in
  if not ok then begin
    Fmt.epr "JSON self-validation failed for %s@." file;
    exit 1
  end;
  Fmt.pr "@.wrote %s (%d experiments, %d metrics)@." file
    (List.length experiments) (List.length ordered)

(* ------------------------------------------------------------------ *)
(* A tiny blocking HTTP client                                         *)
(* ------------------------------------------------------------------ *)

type outcome = Status of int | Eof

(* One request over a fresh loopback connection; the server closes
   every connection, so read-to-EOF terminates. *)
let http_request ~port raw =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let rec send off =
        if off < String.length raw then
          send
            (off + Unix.write_substring fd raw off (String.length raw - off))
      in
      (try send 0 with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ());
      let buf = Bytes.create 4096 and out = Buffer.create 256 in
      let rec drain () =
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes out buf 0 n;
            drain ()
        | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
      in
      drain ();
      Buffer.contents out)

let status_of_response raw =
  if raw = "" then Eof
  else
    match String.split_on_char ' ' raw with
    | _ :: code :: _ -> (
        match int_of_string_opt code with
        | Some s -> Status s
        | None -> Eof)
    | _ -> Eof

let query = "{ ?a p:knows ?b . OPTIONAL { ?b p:email ?m } }"

let sparql_request q =
  Printf.sprintf "POST /sparql HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
    (String.length q) q

(* ------------------------------------------------------------------ *)
(* Closed-loop client fleet                                            *)
(* ------------------------------------------------------------------ *)

type tally = {
  mutable ok : int;
  mutable shed : int;  (* 503 *)
  mutable timeout : int;  (* 408 *)
  mutable bad : int;  (* 400 *)
  mutable failed : int;  (* 500 *)
  mutable eof : int;
  mutable other : int;
  mutable latencies_ok : float list;  (* seconds, 200s only *)
}

let new_tally () =
  {
    ok = 0;
    shed = 0;
    timeout = 0;
    bad = 0;
    failed = 0;
    eof = 0;
    other = 0;
    latencies_ok = [];
  }

let merge_tallies ts =
  let m = new_tally () in
  List.iter
    (fun t ->
      m.ok <- m.ok + t.ok;
      m.shed <- m.shed + t.shed;
      m.timeout <- m.timeout + t.timeout;
      m.bad <- m.bad + t.bad;
      m.failed <- m.failed + t.failed;
      m.eof <- m.eof + t.eof;
      m.other <- m.other + t.other;
      m.latencies_ok <- t.latencies_ok @ m.latencies_ok)
    ts;
  m

(* [clients] threads issue [total] requests back to back (closed loop);
   request payloads come from [payload i] on the 1-based issue number. *)
let run_fleet ~port ~clients ~total payload =
  let next = Atomic.make 1 in
  let tallies = ref [] and tallies_lock = Mutex.create () in
  let worker () =
    let t = new_tally () in
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i <= total then begin
        let t0 = Unix.gettimeofday () in
        let response =
          try http_request ~port (payload i)
          with Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ""
        in
        let dt = Unix.gettimeofday () -. t0 in
        (match status_of_response response with
        | Status 200 ->
            t.ok <- t.ok + 1;
            t.latencies_ok <- dt :: t.latencies_ok
        | Status 503 -> t.shed <- t.shed + 1
        | Status 408 -> t.timeout <- t.timeout + 1
        | Status 400 -> t.bad <- t.bad + 1
        | Status 500 -> t.failed <- t.failed + 1
        | Status _ -> t.other <- t.other + 1
        | Eof -> t.eof <- t.eof + 1);
        go ()
      end
    in
    go ();
    Mutex.lock tallies_lock;
    tallies := t :: !tallies;
    Mutex.unlock tallies_lock
  in
  let started = Unix.gettimeofday () in
  let threads = List.init clients (fun _ -> Thread.create worker ()) in
  List.iter Thread.join threads;
  (merge_tallies !tallies, Unix.gettimeofday () -. started)

let percentile q sorted =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (Float.ceil (q *. float n)) - 1))

let latency_stats latencies =
  let a = Array.of_list latencies in
  Array.sort compare a;
  (percentile 0.50 a *. 1000., percentile 0.99 a *. 1000.)

(* ------------------------------------------------------------------ *)
(* Harness assertions                                                  *)
(* ------------------------------------------------------------------ *)

let failures = ref 0

let expect msg ok =
  if ok then Fmt.pr "  ok: %s@." msg
  else begin
    incr failures;
    Fmt.epr "  FAILED: %s@." msg
  end

let expect_eq msg expected actual =
  expect (Printf.sprintf "%s (expected %d, got %d)" msg expected actual)
    (expected = actual)

(* ------------------------------------------------------------------ *)
(* Server configs                                                      *)
(* ------------------------------------------------------------------ *)

let graph = lazy (Rdf.Generator.social ~seed:5 ~people:30)

let base_config ?(workers = 4) ?(queue = 64) ?(inflight = 64)
    ?(io_timeout = 2.) ?(faults = Faults.none) () =
  {
    Server.graph = Lazy.force graph;
    reload = None;
    host = "127.0.0.1";
    port = 0;
    workers;
    domains = 1;
    queue_capacity = queue;
    admission =
      {
        Admission.request_fuel = 5_000_000;
        request_timeout = 10.;
        max_solutions = None;
        global_fuel = None;
        refill_rate = 0.;
        max_inflight = inflight;
      };
    max_request_bytes = 1 lsl 16;
    io_timeout;
    faults;
    plan_capacity = 8;
  }

let fault_counter stats name =
  match Json.member "faults" stats with
  | Some f ->
      Option.value ~default:(-1) (Option.bind (Json.member name f) Json.to_int)
  | None -> -1

(* ------------------------------------------------------------------ *)
(* Scenario: steady state                                              *)
(* ------------------------------------------------------------------ *)

let scenario_steady () =
  Fmt.pr "@.== steady: light load baseline ==@.";
  let n = if !fast then 60 else 400 in
  let t = Server.start (base_config ()) in
  let port = Server.port t in
  let tally, elapsed =
    run_fleet ~port ~clients:2 ~total:n (fun _ -> sparql_request query)
  in
  Server.initiate_drain t;
  ignore (Server.join t);
  expect_eq "every steady request served with 200" n tally.ok;
  let p50, p99 = latency_stats tally.latencies_ok in
  let rps = float n /. elapsed in
  Fmt.pr "  %d requests, %.0f req/s, p50 %.2fms, p99 %.2fms@." n rps p50 p99;
  record ~experiment:"steady" ~metric:"requests" (float n);
  record ~experiment:"steady" ~metric:"throughput_rps" rps;
  record ~experiment:"steady" ~metric:"p50_ms" p50;
  record ~experiment:"steady" ~metric:"p99_ms" p99;
  record ~experiment:"steady" ~metric:"shed_rate" 0.

(* ------------------------------------------------------------------ *)
(* Scenario: 2x overload, shedding on vs off (the ablation)            *)
(* ------------------------------------------------------------------ *)

(* The same offered load — a closed-loop fleet with 8x more clients
   than the server has workers — against armed watermarks (tight queue
   and in-flight caps) and against effectively disabled ones. *)
let overload_graph = lazy (Rdf.Generator.social ~seed:7 ~people:80)

let overload_run ~experiment ~queue ~inflight =
  let workers = 2 and clients = 32 in
  let n = if !fast then 160 else 600 in
  let t =
    Server.start
      {
        (base_config ~workers ~queue ~inflight ()) with
        Server.graph = Lazy.force overload_graph;
        reload = None;
      }
  in
  let port = Server.port t in
  let tally, elapsed =
    run_fleet ~port ~clients ~total:n (fun _ -> sparql_request query)
  in
  Server.initiate_drain t;
  ignore (Server.join t);
  expect_eq
    (Printf.sprintf "%s: every request got a definite outcome" experiment)
    n
    (tally.ok + tally.shed + tally.timeout + tally.bad + tally.failed
   + tally.eof + tally.other);
  let p50, p99 = latency_stats tally.latencies_ok in
  let shed_rate = float tally.shed /. float n in
  let rps = float tally.ok /. elapsed in
  Fmt.pr "  %s: %d ok, %d shed (%.0f%%), p50 %.2fms, p99 %.2fms@." experiment
    tally.ok tally.shed (shed_rate *. 100.) p50 p99;
  record ~experiment ~metric:"requests" (float n);
  record ~experiment ~metric:"served" (float tally.ok);
  record ~experiment ~metric:"shed" (float tally.shed);
  record ~experiment ~metric:"shed_rate" shed_rate;
  record ~experiment ~metric:"throughput_rps" rps;
  record ~experiment ~metric:"p50_ms" p50;
  record ~experiment ~metric:"p99_ms" p99;
  (tally, p99)

let scenario_overload () =
  Fmt.pr "@.== overload: 2x offered load, watermarks on vs off ==@.";
  let on_tally, p99_on =
    overload_run ~experiment:"overload_shed_on" ~queue:4 ~inflight:4
  in
  let off_tally, p99_off =
    overload_run ~experiment:"overload_shed_off" ~queue:100_000
      ~inflight:100_000
  in
  expect "watermarks on: overload is shed, not queued" (on_tally.shed > 0);
  expect "watermarks on: healthy requests still served" (on_tally.ok > 0);
  expect_eq "watermarks off: nothing shed" 0 off_tally.shed;
  (* the headline: with shedding, the p99 of served requests stays
     bounded; without it every request pays the full queue *)
  record ~experiment:"ablation" ~metric:"p99_ms_shed_on" p99_on;
  record ~experiment:"ablation" ~metric:"p99_ms_shed_off" p99_off;
  record ~experiment:"ablation" ~metric:"p99_ratio_off_over_on"
    (if p99_on > 0. then p99_off /. p99_on else 0.);
  Fmt.pr "  ablation: p99 on=%.2fms off=%.2fms@." p99_on p99_off

(* ------------------------------------------------------------------ *)
(* Scenario: the fault barrage                                         *)
(* ------------------------------------------------------------------ *)

let spec_string = "disconnect:11,slow:9,malformed:5,starve:7,poison:13"

let scenario_faults () =
  Fmt.pr "@.== faults: deterministic barrage (%s) ==@." spec_string;
  let faults =
    match Faults.parse spec_string with
    | Ok f -> f
    | Error e ->
        Fmt.epr "bad fault spec: %s@." e;
        exit 1
  in
  (* grow [n] until the control request (index n+1) is fault-free, so
     the post-barrage liveness probe has a predictable fate *)
  let n =
    let n = ref (if !fast then 220 else 2600) in
    while Faults.for_request faults (!n + 1) <> None do
      incr n
    done;
    !n
  in
  (* the schedule is a pure function of the accept index: predict every
     counter before the run, reconcile after *)
  let predicted k =
    let c = ref 0 in
    for i = 1 to n do
      if Faults.for_request faults i = Some k then incr c
    done;
    !c
  in
  let p_disconnect = predicted Faults.Disconnect
  and p_slow = predicted Faults.Slow
  and p_malformed = predicted Faults.Malformed
  and p_starve = predicted Faults.Starve
  and p_poison = predicted Faults.Poison in
  let total_faults =
    p_disconnect + p_slow + p_malformed + p_starve + p_poison
  in
  Fmt.pr "  %d requests, %d injected faults scheduled@." n total_faults;
  if not !fast then
    expect "the barrage injects at least 1000 faults" (total_faults >= 1000);
  let fd_baseline = Io.live () in
  let t =
    Server.start (base_config ~workers:8 ~io_timeout:0.08 ~faults ())
  in
  let port = Server.port t in
  let tally, elapsed =
    run_fleet ~port ~clients:16 ~total:n (fun _ -> sparql_request query)
  in
  (* server-side reconciliation, before any further request shifts the
     index stream *)
  let stats = Server.stats_json t in
  expect_eq "server counted every disconnect" p_disconnect
    (fault_counter stats "disconnect");
  expect_eq "server counted every slow client" p_slow
    (fault_counter stats "slow");
  expect_eq "server counted every malformed frame" p_malformed
    (fault_counter stats "malformed");
  expect_eq "server counted every starved budget" p_starve
    (fault_counter stats "starve");
  expect_eq "server counted every poisoned entry" p_poison
    (fault_counter stats "poison");
  (* client-side reconciliation: each kind surfaced as its structured
     outcome, nothing leaked into another bucket *)
  expect_eq "disconnects seen as EOF, no response" p_disconnect tally.eof;
  expect_eq "malformed frames answered 400" p_malformed tally.bad;
  expect_eq "slow clients and starved budgets answered 408"
    (p_slow + p_starve) tally.timeout;
  expect_eq "poisoned entries answered 500" p_poison tally.failed;
  expect_eq "every healthy request served 200" (n - total_faults) tally.ok;
  expect_eq "nothing shed under the fault load" 0 tally.shed;
  expect_eq "no unclassified outcomes" 0 tally.other;
  (* liveness: the pool still serves after the barrage *)
  let control = http_request ~port (sparql_request query) in
  expect "control query after the barrage returns 200"
    (status_of_response control = Status 200);
  Server.initiate_drain t;
  ignore (Server.join t);
  expect_eq "no descriptor leaked across the barrage" fd_baseline (Io.live ());
  let p50, p99 = latency_stats tally.latencies_ok in
  Fmt.pr "  %d ok / %d faulted in %.1fs, p50 %.2fms, p99 %.2fms@." tally.ok
    total_faults elapsed p50 p99;
  record ~experiment:"faults" ~metric:"requests" (float n);
  record ~experiment:"faults" ~metric:"faults_injected" (float total_faults);
  record ~experiment:"faults" ~metric:"disconnect" (float p_disconnect);
  record ~experiment:"faults" ~metric:"slow" (float p_slow);
  record ~experiment:"faults" ~metric:"malformed" (float p_malformed);
  record ~experiment:"faults" ~metric:"starve" (float p_starve);
  record ~experiment:"faults" ~metric:"poison" (float p_poison);
  record ~experiment:"faults" ~metric:"served_ok" (float tally.ok);
  record ~experiment:"faults" ~metric:"throughput_rps" (float n /. elapsed);
  record ~experiment:"faults" ~metric:"p50_ms" p50;
  record ~experiment:"faults" ~metric:"p99_ms" p99;
  record ~experiment:"faults" ~metric:"fd_leaked"
    (float (Io.live () - fd_baseline))

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse = function
    | "--fast" :: rest ->
        fast := true;
        parse rest
    | "--json-out" :: file :: rest ->
        json_out := Some file;
        parse rest
    | arg :: _ ->
        Fmt.epr "unknown argument %s@." arg;
        exit 2
    | [] -> ()
  in
  parse args;
  scenario_steady ();
  scenario_overload ();
  scenario_faults ();
  Option.iter write_json !json_out;
  if !failures > 0 then begin
    Fmt.epr "@.%d harness assertion(s) failed@." !failures;
    exit 1
  end;
  Fmt.pr "@.all harness assertions passed@."
