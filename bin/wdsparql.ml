(* wdsparql: command-line front end.

   Subcommands:
     eval       evaluate a query over a Turtle data file
     check      membership of a single mapping (naive or pebble algorithm)
     width      structural analysis: all width measures and the regime
     validate   well-designedness check with a diagnostic
     analyze    static analyzer: verdict + spans, lints, width estimates
     compile    compile a data file into an on-disk store (.wds)
     store-info print a compiled store's header (optionally checksum it)
     clique     solve k-CLIQUE via the hardness reduction (demo)

   Everywhere a data file is expected, a compiled store is accepted too
   (detected by its magic, or forced with --store); the store is mapped
   instead of parsed.

   Every subcommand accepts --timeout/--fuel/--max-solutions resource
   limits. Exit codes: 0 success, 1 negative answer (check/validate/
   containment/fuzz), 2 user error (bad input), 3 budget exhausted,
   4 internal error, 5 unusable compiled store. *)

open Cmdliner
module Budget = Resource.Budget
module E = Wdsparql_error

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> contents
  | exception Sys_error msg ->
      (* [Sys_error] messages usually lead with the path already *)
      let prefix = path ^ ": " in
      let msg =
        if String.length msg > String.length prefix
           && String.sub msg 0 (String.length prefix) = prefix
        then String.sub msg (String.length prefix) (String.length msg - String.length prefix)
        else msg
      in
      E.fail (E.Io_error { path; msg })

let load_graph path =
  (* A compiled store drops in anywhere a Turtle file does: sniff the
     magic and map it instead of parsing. *)
  if Storage.looks_like_store path then Storage.load_graph path
  else
    match Rdf.Turtle.parse_graph_err ~source:path (read_file path) with
    | Ok g -> g
    | Error e -> E.fail e

let load_query path_or_inline =
  let source, src =
    if Sys.file_exists path_or_inline then
      (path_or_inline, read_file path_or_inline)
    else ("query", path_or_inline)
  in
  match Sparql.Parser.parse src with
  | Ok p -> p
  | Error msg -> E.fail (E.Parse_error { source; line = 0; col = 0; msg })

(* Like [load_query], but with source spans — the eval path runs the
   pre-plan pruning rewrites, whose diagnostics point into the query. *)
let load_query_spanned path_or_inline =
  let source, src =
    if Sys.file_exists path_or_inline then
      (path_or_inline, read_file path_or_inline)
    else ("query", path_or_inline)
  in
  match Sparql.Parser.parse_spanned src with
  | Ok (p, spans) -> (p, spans)
  | Error msg -> E.fail (E.Parse_error { source; line = 0; col = 0; msg })

let parse_mapping spec =
  (* "x=person:ann,y=person:bob" *)
  String.split_on_char ',' spec
  |> List.filter (fun s -> String.trim s <> "")
  |> List.map (fun binding ->
         match String.index_opt binding '=' with
         | Some i -> (
             let var = String.trim (String.sub binding 0 i) in
             let value =
               String.trim
                 (String.sub binding (i + 1) (String.length binding - i - 1))
             in
             if var = "" then
               E.fail (E.Invalid_input (Fmt.str "bad binding %S: empty variable" binding));
             match Rdf.Iri.of_string value with
             | iri -> (Rdf.Variable.of_string var, iri)
             | exception Invalid_argument _ ->
                 E.fail
                   (E.Invalid_input (Fmt.str "bad binding %S: empty IRI" binding)))
         | None ->
             E.fail
               (E.Invalid_input
                  (Fmt.str "bad binding %S (expected var=iri)" binding)))
  |> Sparql.Mapping.of_list

(* Uniform failure handling: every subcommand body runs under [handle],
   which turns structured errors into a one-line stderr diagnostic and
   the documented exit code — never a backtrace. *)
let handle f =
  match f () with
  | () -> ()
  | exception exn -> (
      let err =
        match exn with
        | Wdpt.Translate.Not_well_designed v ->
            Some (E.Not_well_designed (Fmt.str "%a" Sparql.Well_designed.pp_violation v))
        | Invalid_argument msg -> Some (E.Invalid_input msg)
        | _ -> E.of_exn exn
      in
      match err with
      | Some e ->
          Fmt.epr "wdsparql: %a@." E.pp e;
          exit (E.exit_code e)
      | None ->
          Fmt.epr "wdsparql: internal error: %s@." (Printexc.to_string exn);
          exit E.exit_internal)

(* ---------------- arguments ---------------- *)

let data_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "d"; "data" ] ~docv:"FILE"
        ~doc:"Turtle data file — or a compiled store (*.wds), detected by \
              its magic and mapped instead of parsed.")

let store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"FILE"
        ~doc:"Compiled store file (see the compile subcommand). Like \
              passing it to --data, but refuses anything that is not a \
              store.")

(* One of --data/--store, resolved to a graph handle. The thunk is
   called inside [handle] so store faults get their exit code. *)
let require_graph data store () =
  match data, store with
  | Some _, Some _ ->
      E.fail (E.Invalid_input "--data and --store are mutually exclusive")
  | Some path, None -> load_graph path
  | None, Some path -> Storage.load_graph path
  | None, None ->
      E.fail (E.Invalid_input "no data: pass --data FILE or --store FILE")

let graph_term = Term.(const require_graph $ data_arg $ store_arg)

let graph_opt_term =
  let opt data store () =
    match data, store with
    | None, None -> None
    | _ -> Some (require_graph data store ())
  in
  Term.(const opt $ data_arg $ store_arg)

let query_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "q"; "query" ] ~docv:"QUERY"
        ~doc:"Query: a file name or an inline pattern string.")

let mapping_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "m"; "mapping" ] ~docv:"BINDINGS"
        ~doc:"Candidate mapping, e.g. 'x=person:ann,y=person:bob'.")

let algorithm_arg =
  Arg.(
    value
    & opt (some (enum [ ("naive", `Naive); ("pebble", `Pebble); ("reference", `Reference) ]))
        None
    & info [ "a"; "algorithm" ] ~docv:"ALGO"
        ~doc:"Evaluation algorithm: naive (exact homomorphism tests), pebble \
              (Theorem 1), or reference (recursive algebra semantics). \
              Default: let the engine plan (pebble at the measured width, \
              degrading gracefully under a budget).")

let pebbles_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "k" ] ~docv:"K"
        ~doc:"Domination-width bound for the pebble algorithm (defaults to \
              the computed dw of the query).")

let optimize_arg =
  Arg.(
    value
    & opt (enum [ ("on", true); ("off", false) ]) true
    & info [ "optimize" ] ~docv:"on|off"
        ~doc:"Cost-based planning (default on): compiled per-node join \
              orders from store statistics with adaptive fail-first \
              refinement, and per-node pebble-vs-naive maximality choices. \
              'off' falls back to exact per-prefix rescoring. Answers are \
              identical either way.")

(* Resource limits: a spec, from which each processing stage gets a fresh
   budget (so with --timeout T, planning and evaluation may each take up
   to T — worst case ~2T end to end). *)

type budget_spec = {
  timeout : float option;
  fuel : int option;
  max_solutions : int option;
}

let budget_term =
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Wall-clock limit per processing stage; exceeding it exits \
                with code 3 (or degrades the plan where possible).")
  in
  let fuel_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"STEPS"
          ~doc:"Abstract step limit per processing stage (deterministic \
                alternative to --timeout).")
  in
  let max_solutions_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-solutions" ] ~docv:"N"
          ~doc:"Stop after N solutions have been produced.")
  in
  let make timeout fuel max_solutions = { timeout; fuel; max_solutions } in
  Term.(const make $ timeout_arg $ fuel_arg $ max_solutions_arg)

let fresh_budget ?(solutions = false) spec =
  Budget.make ?fuel:spec.fuel ?timeout:spec.timeout
    ?max_solutions:(if solutions then spec.max_solutions else None)
    ()

(* ---------------- commands ---------------- *)

let eval_cmd =
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"Print the evaluation plan (including any budget-forced \
                degradation) before the solutions.")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"Total parallelism for the per-candidate maximality tests \
                (pebble algorithm only): N-1 worker domains plus the \
                caller. 1 (the default) is exactly the sequential path; \
                answers are identical for every N.")
  in
  let run load_data query algorithm k spec explain domains optimize =
    handle @@ fun () ->
    let graph = load_data () in
    let pattern, spans = load_query_spanned query in
    let sols =
      match algorithm with
      | Some `Reference ->
          Sparql.Eval.eval ~budget:(fresh_budget ~solutions:true spec) pattern graph
      | Some `Naive ->
          let forest = Wdpt.Pattern_forest.of_algebra pattern in
          Wdpt.Semantics.solutions
            ~budget:(fresh_budget ~solutions:true spec)
            forest graph
      | Some `Pebble | None -> (
          let force = Option.map (fun k -> Wd_core.Engine.Pebble k) k in
          (* Store-independent semantic analysis before planning: the
             pruning rewrites (unsatisfiable OPT arms, dead UNION
             branches, duplicate triples) are sound — the residual has
             exactly the original's solutions — so the planner only ever
             sees the residual. *)
          let pruned = Analysis.Prune.run ~spans pattern in
          if explain then begin
            Fmt.pr "satisfiability: %a@." Analysis.Satisfiability.pp
              (Analysis.Satisfiability.decide_quietly
                 ~fuel:Analysis.Lints.satisfiability_fuel pattern);
            Fmt.pr "canonical: %s@."
              (Analysis.Canonical.of_pattern pattern).Analysis.Canonical.hash;
            List.iter
              (fun d -> Fmt.pr "%a@." Analysis.Diagnostic.pp d)
              pruned.Analysis.Prune.rewrites
          end;
          match pruned.Analysis.Prune.outcome with
          | Analysis.Prune.Empty ->
              (* proven unsatisfiable: the answer set is empty on every
                 graph — nothing to plan or evaluate *)
              if explain then
                Fmt.pr "plan: skipped — the pattern is unsatisfiable@.";
              Sparql.Mapping.Set.empty
          | Analysis.Prune.Pattern residual ->
              (* Static width estimation up front: the exact dw it
                 measures is handed to [Engine.plan] as a hint, so
                 planning skips its own exponential recomputation; under
                 a tight budget the static bound is the degradation
                 target. Measured on the residual — the pattern planned. *)
              let hints =
                if Sparql.Algebra.is_core residual then begin
                  let est =
                    Analysis.Width_est.estimate ~budget:(fresh_budget spec)
                      (Wdpt.Pattern_forest.of_algebra residual)
                  in
                  if explain then
                    Fmt.pr "static width: %a@." Analysis.Width_est.pp est;
                  Analysis.Width_est.hints est
                end
                else Wd_core.Engine.no_hints
              in
              let plan =
                Wd_core.Engine.plan ~budget:(fresh_budget spec) ~hints ?force
                  ~optimize residual
              in
              if explain then Fmt.pr "%a@." Wd_core.Engine.pp_plan plan;
              let sols, cache_stats =
                Wd_core.Engine.solutions_stats
                  ~budget:(fresh_budget ~solutions:true spec)
                  ~domains plan graph
              in
              if explain then
                Option.iter
                  (Fmt.pr "%a@." Wd_core.Plan_cache.pp_stats)
                  cache_stats;
              sols)
    in
    Fmt.pr "%d solution(s)@." (Sparql.Mapping.Set.cardinal sols);
    Sparql.Mapping.Set.iter (fun mu -> Fmt.pr "%a@." Sparql.Mapping.pp mu) sols
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate a query over a data file.")
    Term.(
      const run $ graph_term $ query_arg $ algorithm_arg $ pebbles_arg
      $ budget_term $ explain_arg $ domains_arg $ optimize_arg)

let check_cmd =
  let run load_data query mapping algorithm k spec =
    handle @@ fun () ->
    let graph = load_data () in
    let pattern = load_query query in
    let mu = parse_mapping mapping in
    let result =
      match algorithm with
      | Some `Reference ->
          Sparql.Eval.check ~budget:(fresh_budget spec) pattern graph mu
      | Some `Naive ->
          let forest = Wdpt.Pattern_forest.of_algebra pattern in
          Wd_core.Naive_eval.check ~budget:(fresh_budget spec) forest graph mu
      | Some `Pebble | None ->
          let force = Option.map (fun k -> Wd_core.Engine.Pebble k) k in
          let plan =
            Wd_core.Engine.plan ~budget:(fresh_budget spec) ?force pattern
          in
          Wd_core.Engine.check ~budget:(fresh_budget spec) plan graph mu
    in
    Fmt.pr "µ %s ⟦P⟧G@." (if result then "∈" else "∉");
    exit (if result then 0 else 1)
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Decide membership of a mapping (wdEVAL).")
    Term.(
      const run $ graph_term $ query_arg $ mapping_arg $ algorithm_arg
      $ pebbles_arg $ budget_term)

let width_cmd =
  let run query spec =
    handle @@ fun () ->
    let pattern = load_query query in
    Fmt.pr "%a@." Wd_core.Classify.pp
      (Wd_core.Classify.classify ~budget:(fresh_budget spec) pattern)
  in
  Cmd.v
    (Cmd.info "width" ~doc:"Width measures and predicted complexity regime.")
    Term.(const run $ query_arg $ budget_term)

let validate_cmd =
  let run query _spec =
    handle @@ fun () ->
    let pattern = load_query query in
    match Sparql.Well_designed.check pattern with
    | Ok () ->
        Fmt.pr "well-designed@.";
        exit 0
    | Error v ->
        Fmt.pr "NOT well-designed: %a@." Sparql.Well_designed.pp_violation v;
        exit 1
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Check well-designedness.")
    Term.(const run $ query_arg $ budget_term)

let analyze_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Machine-readable output: one JSON object with the verdict, \
                width estimates and diagnostics (stable schema, see \
                docs/ANALYSIS.md).")
  in
  let run query load_data json spec =
    handle @@ fun () ->
    let graph = load_data () in
    let source, src =
      if Sys.file_exists query then (query, read_file query)
      else ("query", query)
    in
    let report =
      match
        Analysis.Analyzer.of_source ?graph ~budget:(fresh_budget spec)
          ~source src
      with
      | Ok r -> r
      | Error e -> E.fail e
    in
    if json then
      print_endline (Analysis.Json.to_string (Analysis.Analyzer.to_json report))
    else Fmt.pr "%a@." Analysis.Analyzer.pp report;
    exit (if Analysis.Analyzer.has_findings report then 1 else 0)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Static analysis: designedness verdict (well / weakly-well / \
             ill, with witness spans), lint findings, and static width \
             estimates. Exit 0 when clean, 1 when there are findings.")
    Term.(const run $ query_arg $ graph_opt_term $ json_arg $ budget_term)

let clique_cmd =
  let n_arg =
    Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc:"Graph size.")
  in
  let k_arg =
    Arg.(value & opt int 3 & info [ "k" ] ~docv:"K" ~doc:"Clique size.")
  in
  let prob_arg =
    Arg.(value & opt float 0.4 & info [ "p" ] ~docv:"P" ~doc:"Edge probability.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
  in
  let run n k prob seed _spec =
    handle @@ fun () ->
    let h = Hardness.Clique.random_graph ~seed ~n ~edge_prob:prob in
    Fmt.pr "G(%d, %.2f) with %d edges, k = %d@." n prob
      (Graphtheory.Ugraph.m h) k;
    match Hardness.Reduction.decide ~k ~h with
    | Ok answer ->
        Fmt.pr "wdEVAL reduction: %s@."
          (if answer then "clique found" else "no clique");
        Fmt.pr "brute force:      %s@."
          (if Hardness.Clique.has_clique h k then "clique found" else "no clique")
    | Error e -> E.fail (E.Invalid_input e)
  in
  Cmd.v
    (Cmd.info "clique" ~doc:"Solve k-CLIQUE through the Theorem 2 reduction.")
    Term.(const run $ n_arg $ k_arg $ prob_arg $ seed_arg $ budget_term)

let explain_cmd =
  let run load_data query spec optimize =
    handle @@ fun () ->
    let graph = load_data () in
    let pattern = load_query query in
    Fmt.pr "%a@." Wd_core.Explain.pp
      (Wd_core.Explain.explain ~budget:(fresh_budget spec) ~optimize pattern
         graph)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show the evaluation plan: cost-based join orders with \
             estimated vs actual cardinalities and per-node \
             pebble-vs-naive maximality verdicts.")
    Term.(const run $ graph_term $ query_arg $ budget_term $ optimize_arg)

let stats_cmd =
  let run load_data _spec =
    handle @@ fun () ->
    let graph = load_data () in
    Fmt.pr "%a@." Rdf.Stats.pp (Rdf.Stats.of_graph graph)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print graph statistics (per-predicate cardinalities).")
    Term.(const run $ graph_term $ budget_term)

let containment_cmd =
  let q2_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "r"; "rhs" ] ~docv:"QUERY" ~doc:"Right-hand query (file or inline).")
  in
  let attempts_arg =
    Arg.(value & opt int 200 & info [ "attempts" ] ~docv:"N" ~doc:"Refutation attempts.")
  in
  let run query rhs attempts _spec =
    handle @@ fun () ->
    let p1 = load_query query and p2 = load_query rhs in
    match Wd_core.Containment.refute ~attempts p1 p2 with
    | Some ce ->
        Fmt.pr "NOT contained: counterexample found@.";
        Fmt.pr "graph:@.%s@." (Rdf.Turtle.to_string ce.Wd_core.Containment.graph);
        Fmt.pr "mapping: %a@." Sparql.Mapping.pp ce.Wd_core.Containment.mapping;
        exit 1
    | None ->
        Fmt.pr
          "no counterexample found in %d attempts (evidence of containment, \
           not a proof — wd-pattern containment is Πᵖ₂-complete)@."
          attempts
  in
  Cmd.v
    (Cmd.info "containment"
       ~doc:"Search for a counterexample to ⟦Q⟧ ⊆ ⟦RHS⟧ (randomised refutation).")
    Term.(const run $ query_arg $ q2_arg $ attempts_arg $ budget_term)

let optimize_cmd =
  let run query _spec =
    handle @@ fun () ->
    let pattern = load_query query in
    let forest, report = Wdpt.Optimize.pattern pattern in
    Fmt.pr "removed %d redundant triple(s), %d duplicate tree(s)@."
      report.Wdpt.Optimize.triples_removed report.Wdpt.Optimize.trees_removed;
    Fmt.pr "optimised pattern:@.%s@."
      (Sparql.Printer.to_string (Wdpt.Pattern_forest.to_algebra forest))
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Apply the provably-safe simplifications (ancestor triple dedup, \
             duplicate UNION branches) and print the result.")
    Term.(const run $ query_arg $ budget_term)

let fuzz_cmd =
  let runs_arg =
    Arg.(value & opt int 200 & info [ "runs" ] ~docv:"N" ~doc:"Number of random instances.")
  in
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"Base random seed.")
  in
  let run runs seed spec =
    handle @@ fun () ->
    (* Differential testing: algebra reference vs naive wdPF vs pebble(dw)
       vs the shared-prefix enumerator, on random instances. *)
    let failures = ref 0 in
    for i = 1 to runs do
      let s = seed + i in
      let pattern =
        Workload.Query_families.random_wd_pattern ~seed:s ~triples:6 ~vars:6
          ~preds:2 ~depth:3 ~union:2
      in
      let graph =
        Rdf.Generator.random_graph ~seed:(s * 7 + 1) ~n:6
          ~predicates:[ "q0"; "q1" ] ~m:18
      in
      let forest = Wdpt.Pattern_forest.of_algebra pattern in
      let budget () = fresh_budget spec in
      let dw = Wd_core.Domination_width.of_forest ~budget:(budget ()) forest in
      let reference = Sparql.Eval.eval ~budget:(budget ()) pattern graph in
      let naive = Wdpt.Semantics.solutions ~budget:(budget ()) forest graph in
      let pebble =
        Wd_core.Pebble_eval.solutions ~budget:(budget ()) ~k:dw forest graph
      in
      let shared = Wd_core.Enumerate.solutions ~budget:(budget ()) forest graph in
      if
        not
          (Sparql.Mapping.Set.equal reference naive
          && Sparql.Mapping.Set.equal reference pebble
          && Sparql.Mapping.Set.equal reference shared)
      then begin
        incr failures;
        Fmt.epr "MISMATCH at seed %d:@.query: %s@." s
          (Sparql.Printer.to_string pattern)
      end
    done;
    if !failures = 0 then Fmt.pr "fuzz: %d instances, all evaluators agree@." runs
    else begin
      Fmt.pr "fuzz: %d mismatches out of %d@." !failures runs;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential testing: all four evaluators on random instances.")
    Term.(const run $ runs_arg $ seed_arg $ budget_term)

let compile_cmd =
  let input_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DATA"
          ~doc:"Input to compile: a Turtle file (or an existing store, \
                which is rewritten canonically).")
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output store path.")
  in
  let force_arg =
    Arg.(
      value & flag
      & info [ "f"; "force" ] ~doc:"Overwrite an existing output file.")
  in
  let run input out force _spec =
    handle @@ fun () ->
    if Sys.file_exists out && not force then
      E.fail
        (E.Invalid_input
           (Fmt.str "%s exists (pass --force to overwrite)" out));
    let graph = load_graph input in
    Storage.save (Encoded.Encoded_graph.of_graph_cached graph) out;
    let i = Storage.info out in
    Fmt.pr
      "compiled %s: %d triple(s), %d term(s), %d predicate(s), %d bytes, \
       stamp %#x@."
      out i.Storage.triples i.Storage.terms i.Storage.predicates
      i.Storage.file_bytes i.Storage.stamp
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Compile a data file into an on-disk store: dictionary, sorted \
             index permutations and planner statistics in one mappable \
             file, so later runs (and the server) cold-start without \
             parsing or re-encoding.")
    Term.(const run $ input_arg $ out_arg $ force_arg $ budget_term)

let store_info_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"STORE" ~doc:"Compiled store file.")
  in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:"Also hash the payload against the header's content stamp \
                (reads the whole file; exit 5 on mismatch).")
  in
  let run file verify =
    handle @@ fun () ->
    let i = Storage.info ~verify file in
    let kind =
      match i.Storage.chain with
      | Storage.Single -> "store"
      | Storage.Chained _ -> "store (chained)"
      | Storage.Sharded _ -> "shard manifest"
    in
    Fmt.pr "%s %s@." kind file;
    Fmt.pr "  format version   %d@." i.Storage.version;
    Fmt.pr "  live triples     %d@." i.Storage.triples;
    if i.Storage.base_triples <> i.Storage.triples then
      Fmt.pr "  base triples     %d@." i.Storage.base_triples;
    Fmt.pr "  terms            %d@." i.Storage.terms;
    Fmt.pr "  predicates       %d@." i.Storage.predicates;
    Fmt.pr "  file bytes       %d@." i.Storage.file_bytes;
    if i.Storage.total_bytes <> i.Storage.file_bytes then
      Fmt.pr "  total bytes      %d@." i.Storage.total_bytes;
    Fmt.pr "  content stamp    %#x@." i.Storage.stamp;
    if i.Storage.chain_stamp <> i.Storage.stamp then
      Fmt.pr "  chain stamp      %#x@." i.Storage.chain_stamp;
    Fmt.pr "  identity (epoch) %d@." i.Storage.identity;
    Fmt.pr "  sections@.";
    List.iter
      (fun s ->
        Fmt.pr "    %-14s %d bytes@." s.Storage.sec_name s.Storage.sec_bytes)
      i.Storage.sections;
    (match i.Storage.chain with
    | Storage.Single -> ()
    | Storage.Chained segs ->
        Fmt.pr "  chain            base + %d delta segment(s)@."
          (List.length segs);
        List.iter
          (fun s ->
            Fmt.pr "    %s  +%d -%d triple(s), %d new term(s), stamp %#x, \
                    chain %#x, %d bytes@."
              (Filename.basename s.Storage.seg_file)
              s.Storage.seg_adds s.Storage.seg_dels s.Storage.seg_new_terms
              s.Storage.seg_stamp s.Storage.seg_chain_stamp
              s.Storage.seg_bytes)
          segs
    | Storage.Sharded { slices; members } ->
        Fmt.pr "  chain            %d shard slice(s)@." slices;
        List.iter
          (fun m ->
            Fmt.pr "    slice %-3d %s  %d triple(s), stamp %#x, %d bytes@."
              m.Storage.mem_slice m.Storage.mem_file m.Storage.mem_triples
              m.Storage.mem_stamp m.Storage.mem_bytes)
          members);
    if verify then Fmt.pr "  checksum         OK@."
  in
  Cmd.v
    (Cmd.info "store-info"
       ~doc:"Print a compiled store's header summary — counts, per-section \
             byte sizes, content stamp, stable identity, and the delta \
             segment chain or shard members — without loading its data.")
    Term.(const run $ file_arg $ verify_arg)

let append_cmd =
  let store_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"STORE" ~doc:"Compiled store to append to.")
  in
  let add_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "add" ] ~docv:"FILE" ~doc:"Turtle file of triples to add.")
  in
  let remove_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "remove" ] ~docv:"FILE"
          ~doc:"Turtle file of triples to delete.")
  in
  let run store add remove =
    handle @@ fun () ->
    if add = None && remove = None then
      E.fail (E.Invalid_input "append: pass --add and/or --remove");
    let triples_of = function
      | None -> []
      | Some file -> Rdf.Graph.triples (load_graph file)
    in
    let adds = triples_of add and dels = triples_of remove in
    match Storage.append ~adds ~dels store with
    | None -> Fmt.pr "append %s: no net change, nothing written@." store
    | Some r ->
        Fmt.pr
          "appended %s: +%d -%d triple(s), %d new term(s), chain stamp %#x@."
          r.Storage.app_file r.Storage.app_adds r.Storage.app_dels
          r.Storage.app_new_terms r.Storage.app_chain_stamp
  in
  Cmd.v
    (Cmd.info "append"
       ~doc:"Write the next delta segment for a compiled store — O(delta), \
             never rewriting the base. The delta is normalized against the \
             live contents first (duplicate adds and deletes of absent \
             triples drop out); an empty net delta writes nothing. Loads \
             and the server's SIGHUP reload pick segments up \
             automatically.")
    Term.(const run $ store_arg $ add_arg $ remove_arg)

let compact_cmd =
  let store_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"STORE" ~doc:"Compiled store (base of the chain).")
  in
  let run store =
    handle @@ fun () ->
    let r = Storage.compact store in
    Fmt.pr "compacted %s: folded %d segment(s), stamp %#x@." store
      r.Storage.folded r.Storage.compact_stamp
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:"Fold a store's delta segments into a fresh monolithic base \
             (atomically) and delete them. The result is bit-identical to \
             compiling the same triples from scratch — same content \
             stamp.")
    Term.(const run $ store_arg)

let shard_cmd =
  let store_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"STORE" ~doc:"Compiled store to split.")
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Manifest output path.")
  in
  let slices_arg =
    Arg.(
      value & opt int 8
      & info [ "slices" ] ~docv:"N"
          ~doc:"Member stores to split into (by predicate hash).")
  in
  let run store out slices =
    handle @@ fun () ->
    let r = Storage.shard ~slices ~src:store out in
    Fmt.pr "sharded %s: %d member(s) behind manifest %s, stamp %#x@." store
      r.Storage.sh_slices r.Storage.sh_file r.Storage.sh_stamp
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:"Split a compiled store into member stores partitioned by \
             predicate hash, behind a small manifest. Loading the manifest \
             maps members lazily: a predicate-bound query touches only the \
             owning member's file.")
    Term.(const run $ store_arg $ out_arg $ slices_arg)

let serve_cmd =
  let port_arg =
    Arg.(
      value & opt int 8080
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:"TCP port to listen on (0 picks an ephemeral port).")
  in
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.")
  in
  let workers_arg =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker threads handling connections.")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:"Parallelism inside a single evaluation (as in eval).")
  in
  let global_fuel_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "global-fuel" ] ~docv:"TOKENS"
          ~doc:"Capacity of the global admission token bucket; per-request \
                fuel is withdrawn from it and unspent fuel returned. \
                Unset: no global budget watermark.")
  in
  let refill_rate_arg =
    Arg.(
      value & opt float 0.
      & info [ "refill-rate" ] ~docv:"TOKENS/S"
          ~doc:"Refill rate of the global token bucket.")
  in
  let max_inflight_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"In-flight request watermark (default: 2x workers).")
  in
  let queue_cap_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:"Accept-queue watermark (default: 8x workers).")
  in
  let max_request_bytes_arg =
    Arg.(
      value
      & opt int (1 lsl 20)
      & info [ "max-request-bytes" ] ~docv:"BYTES"
          ~doc:"Largest accepted request (413 beyond).")
  in
  let io_timeout_arg =
    Arg.(
      value & opt float 10.
      & info [ "io-timeout" ] ~docv:"SECONDS"
          ~doc:"Per-connection read/write deadline.")
  in
  let fault_spec_arg =
    Arg.(
      value & opt string ""
      & info [ "fault-spec" ] ~docv:"SPEC"
          ~doc:"Deterministic fault injection, e.g. \
                'slow:9,disconnect:11,malformed:5,starve:7,poison:13': \
                request i suffers the kind whose period divides i.")
  in
  let plan_cache_arg =
    Arg.(
      value & opt int 64
      & info [ "plan-cache" ] ~docv:"N"
          ~doc:"Distinct query plans kept compiled across connections.")
  in
  let run load_data port host workers domains spec global_fuel refill_rate
      max_inflight queue_cap max_request_bytes io_timeout fault_spec
      plan_cache =
    handle @@ fun () ->
    let graph = load_data () in
    let faults =
      match Wd_server.Faults.parse fault_spec with
      | Ok f -> f
      | Error msg -> E.fail (E.Invalid_input ("bad --fault-spec: " ^ msg))
    in
    let request_fuel = Option.value ~default:10_000_000 spec.fuel in
    (* a bucket that can never cover one grant would shed every request
       forever — refuse the footgun at startup *)
    (match global_fuel with
    | Some g when g < request_fuel ->
        E.fail
          (E.Invalid_input
             (Printf.sprintf
                "--global-fuel %d is below the per-request fuel %d: every \
                 request would be shed"
                g request_fuel))
    | _ -> ());
    let admission =
      {
        Wd_server.Admission.request_fuel;
        request_timeout = Option.value ~default:10. spec.timeout;
        max_solutions = spec.max_solutions;
        global_fuel;
        refill_rate;
        max_inflight = Option.value ~default:(2 * workers) max_inflight;
      }
    in
    Wd_server.Server.run
      {
        Wd_server.Server.graph;
        (* SIGHUP re-runs the loader: a store file picks up delta
           segments appended since startup, without dropping
           connections *)
        reload = Some load_data;
        host;
        port;
        workers;
        domains;
        queue_capacity = Option.value ~default:(8 * workers) queue_cap;
        admission;
        max_request_bytes;
        io_timeout;
        faults;
        plan_capacity = plan_cache;
      }
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Long-running SPARQL endpoint: GET/POST /sparql, /analyze, \
             /health, /stats. Admission control carves per-request budgets \
             from a refillable global token bucket; overload is shed with \
             503 + Retry-After; SIGINT/SIGTERM drains gracefully.")
    Term.(
      const run $ graph_term $ port_arg $ host_arg $ workers_arg $ domains_arg
      $ budget_term $ global_fuel_arg $ refill_rate_arg $ max_inflight_arg
      $ queue_cap_arg $ max_request_bytes_arg $ io_timeout_arg
      $ fault_spec_arg $ plan_cache_arg)

let () =
  let doc = "well-designed SPARQL with width-based evaluation (PODS'18)" in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "wdsparql" ~version:"1.0.0" ~doc)
          [
            eval_cmd; check_cmd; width_cmd; validate_cmd; analyze_cmd;
            explain_cmd;
            stats_cmd; containment_cmd; optimize_cmd; clique_cmd; fuzz_cmd;
            compile_cmd; store_info_cmd; append_cmd; compact_cmd; shard_cmd;
            serve_cmd;
          ]))
