(* Working from files on disk: load the committed fixtures in data/ and
   queries/, classify each query and run it end to end — the workflow the
   CLI (`wdsparql eval/width/explain`) wraps.

   Run from the repository root: dune exec examples/files_demo.exe *)

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let data_path = "data/social.ttl" in
  if not (Sys.file_exists data_path) then begin
    Fmt.epr "run from the repository root (data/social.ttl not found)@.";
    exit 1
  end;
  let graph =
    match Rdf.Turtle.parse_graph (read data_path) with
    | Ok g -> g
    | Error e -> failwith e
  in
  Fmt.pr "%s: %d triples@." data_path (Rdf.Graph.cardinal graph);
  let queries =
    Sys.readdir "queries" |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".rq")
    |> List.sort compare
  in
  List.iter
    (fun file ->
      let path = Filename.concat "queries" file in
      let pattern = Sparql.Parser.parse_exn (read path) in
      let c = Wd_core.Classify.classify pattern in
      let answers = Sparql.Eval.eval pattern graph in
      let regime =
        match c.Wd_core.Classify.regime with
        | Wd_core.Classify.Ptime k -> Printf.sprintf "PTIME (dw = %d)" k
        | Wd_core.Classify.Intractable_frontier k ->
            Printf.sprintf "frontier (dw = %d)" k
        | Wd_core.Classify.Not_well_designed -> "not well-designed"
        | Wd_core.Classify.Outside_core_fragment -> "outside core fragment (§5)"
        | Wd_core.Classify.Width_unknown ub ->
            Printf.sprintf "width unknown (budget exhausted, dw <= %d)" ub
      in
      Fmt.pr "@.%-22s %-28s %5d answer(s)@." file regime
        (Sparql.Mapping.Set.cardinal answers);
      (* for core-fragment queries, cross-check with the engine *)
      if Sparql.Algebra.is_core pattern then begin
        let plan = Wd_core.Engine.plan pattern in
        assert (Sparql.Mapping.Set.equal answers (Wd_core.Engine.solutions plan graph));
        Fmt.pr "%-22s engine agrees (%a)@." ""
          (fun ppf -> function
            | Wd_core.Engine.Pebble k -> Fmt.pf ppf "pebble, k = %d" k
            | Wd_core.Engine.Naive -> Fmt.string ppf "naive")
          plan.Wd_core.Engine.algorithm
      end)
    queries
