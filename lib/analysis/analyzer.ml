open Rdf
module A = Sparql.Algebra
module Spans = Sparql.Spans

type width_info =
  | Width of Width_est.t
  | Width_unavailable of string

type report = {
  source : string;
  pattern : A.t;
  spans : Spans.t;
  designedness : Designedness.t;
  width : width_info;
  diagnostics : Diagnostic.t list;
  satisfiability : Satisfiability.verdict;
  canonical : Canonical.t;
  pruned : Prune.t;
}

let span spans p = Spans.find_or_dummy spans p

let unsafe_variable_diag ~spans (u : Designedness.unsafe_variable) =
  let v = u.variable in
  let related =
    [
      {
        Diagnostic.where = span spans u.right;
        note = Fmt.str "%a is introduced in this optional arm" Variable.pp v;
      };
      {
        Diagnostic.where = span spans u.outside;
        note = Fmt.str "%a re-occurs here, outside that OPTIONAL" Variable.pp v;
      };
    ]
    @
    match u.outside_opt with
    | Some opt' ->
        [
          {
            Diagnostic.where = span spans opt';
            note = "the re-occurrence lies in the arm of this second OPTIONAL";
          };
        ]
    | None -> []
  in
  if u.wwd_safe then
    Diagnostic.make ~rule:"wwd-optional-reuse" ~severity:Diagnostic.Warning
      ~span:(span spans u.opt) ~related
      (Fmt.str
         "variable %a from this OPTIONAL arm re-occurs only in later \
          optional arms: the pattern is weakly well-designed, not \
          well-designed"
         Variable.pp v)
  else
    Diagnostic.make ~rule:"wd-unsafe-variable" ~severity:Diagnostic.Error
      ~span:(span spans u.opt) ~related
      (Fmt.str
         "variable %a is introduced in this OPTIONAL arm but re-occurs \
          outside it: the pattern is not well-designed"
         Variable.pp v)

let problem_diag ~spans = function
  | Designedness.Unsafe_variable u -> Some (unsafe_variable_diag ~spans u)
  | Designedness.Nested_union _ ->
      (* the [union-normal-form] lint reports the same occurrence *)
      None
  | Designedness.Unsafe_filter (occ, condition) ->
      let body_vars =
        match occ with A.Filter (body, _) -> A.vars body | q -> A.vars q
      in
      let missing =
        Variable.Set.diff (Sparql.Condition.vars condition) body_vars
      in
      Some
        (Diagnostic.make ~rule:"wd-unsafe-filter" ~severity:Diagnostic.Error
           ~span:(span spans occ)
           (Fmt.str
              "FILTER condition mentions %a, not bound by its pattern: the \
               filter is unsafe and the pattern is not well-designed"
              Fmt.(list ~sep:comma Variable.pp)
              (Variable.Set.elements missing)))
  | Designedness.Nested_select occ ->
      Some
        (Diagnostic.make ~rule:"wd-nested-select" ~severity:Diagnostic.Error
           ~span:(span spans occ)
           "SELECT below other operators: projection is only supported at \
            the top level of a well-designed query")

let width_of ?budget ~designedness pattern =
  match (designedness : Designedness.t).verdict with
  | Ill_designed ->
      Width_unavailable
        "the pattern is not well-designed: its width measures are undefined"
  | Weakly_well_designed ->
      Width_unavailable
        "the pattern is only weakly well-designed: the width machinery \
         covers the well-designed fragment"
  | Well_designed ->
      if not (A.is_core pattern) then
        Width_unavailable
          "the pattern uses FILTER/SELECT: outside the core fragment, the \
           width measures do not apply (Section 5)"
      else
        let forest = Wdpt.Pattern_forest.of_algebra pattern in
        Width (Width_est.estimate ?budget forest)

let analyze ?graph ?budget ?(source = "query") ~spans pattern =
  let designedness = Designedness.analyze pattern in
  let stats = Option.map Stats.of_graph graph
  and dom = Option.map Graph.dom graph in
  let lint_diags = Lints.check ?stats ?dom ~spans pattern in
  let wd_diags = List.filter_map (problem_diag ~spans) designedness.problems in
  let satisfiability =
    Satisfiability.decide_quietly ~fuel:Lints.satisfiability_fuel pattern
  in
  let canonical = Canonical.of_pattern pattern in
  let pruned = Prune.run ~spans pattern in
  let diagnostics =
    List.stable_sort Diagnostic.compare
      (wd_diags @ lint_diags @ pruned.Prune.rewrites)
  in
  (* Width bounds are measured on the residual pattern the planner will
     actually see; pruning preserves well-designedness (see Prune), so
     the verdict of the original still governs. An empty residual has
     nothing to measure. *)
  let width =
    match pruned.Prune.outcome with
    | Prune.Empty ->
        Width_unavailable
          "the pattern is unsatisfiable: its answer set is empty on every \
           graph"
    | Prune.Pattern residual -> width_of ?budget ~designedness residual
  in
  {
    source;
    pattern;
    spans;
    designedness;
    width;
    diagnostics;
    satisfiability;
    canonical;
    pruned;
  }

let of_source ?graph ?budget ?(source = "query") text =
  match Sparql.Parser.parse_spanned text with
  | Ok (pattern, spans) -> Ok (analyze ?graph ?budget ~source ~spans pattern)
  | Error msg ->
      let line = Scanf.sscanf_opt msg "line %d:" Fun.id in
      Error
        (Wdsparql_error.Parse_error
           { source; line = Option.value line ~default:0; col = 0; msg })

let hints r =
  match r.width with
  | Width w -> Width_est.hints w
  | Width_unavailable _ -> Wd_core.Engine.no_hints

let has_findings r = r.diagnostics <> []

let node_spans ~spans tree =
  List.map
    (fun n ->
      let sp =
        List.fold_left
          (fun acc t -> Sparql.Span.join acc (Spans.triple_span spans t))
          Sparql.Span.dummy
          (Tgraphs.Tgraph.triples (Wdpt.Pattern_tree.pat tree n))
      in
      (n, sp))
    (Wdpt.Pattern_tree.nodes tree)

let to_json r =
  Json.Obj
    [
      ("analyzer", Json.String "wdsparql-analyze");
      ("schema", Json.Int 2);
      ("source", Json.String r.source);
      ( "verdict",
        Json.String (Designedness.verdict_to_string r.designedness.verdict) );
      ( "satisfiability",
        Json.Obj
          (( "verdict",
             Json.String (Satisfiability.verdict_name r.satisfiability) )
          ::
          (match r.satisfiability with
          | Satisfiability.Unknown why -> [ ("reason", Json.String why) ]
          | Satisfiability.Sat _ | Satisfiability.Unsat -> [])) );
      ("canonical_hash", Json.String r.canonical.Canonical.hash);
      ( "prune",
        Json.Obj
          [
            ("changed", Json.Bool r.pruned.Prune.changed);
            ( "empty",
              Json.Bool (r.pruned.Prune.outcome = Prune.Empty) );
            ( "rewrites",
              Json.Int (List.length r.pruned.Prune.rewrites) );
          ] );
      ( "width",
        match r.width with
        | Width w -> Width_est.to_json w
        | Width_unavailable why -> Json.Obj [ ("unavailable", Json.String why) ]
      );
      ("diagnostics", Json.List (List.map Diagnostic.to_json r.diagnostics));
    ]

let pp ppf r =
  Fmt.pf ppf "%s: %s" r.source
    (Designedness.verdict_to_string r.designedness.verdict);
  Fmt.pf ppf "@.satisfiability: %a" Satisfiability.pp r.satisfiability;
  Fmt.pf ppf "@.canonical: %s" r.canonical.Canonical.hash;
  if r.pruned.Prune.changed then
    Fmt.pf ppf "@.prune: %d rewrite(s)%s"
      (List.length r.pruned.Prune.rewrites)
      (if r.pruned.Prune.outcome = Prune.Empty then
         ", residual is empty"
       else "");
  (match r.width with
  | Width w -> Fmt.pf ppf "@.width: %a" Width_est.pp w
  | Width_unavailable why -> Fmt.pf ppf "@.width: n/a — %s" why);
  List.iter (fun d -> Fmt.pf ppf "@.%a" Diagnostic.pp d) r.diagnostics;
  match List.length r.diagnostics with
  | 0 -> Fmt.pf ppf "@.clean: no findings"
  | n -> Fmt.pf ppf "@.%d finding%s" n (if n = 1 then "" else "s")
