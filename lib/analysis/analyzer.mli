(** The static query analyzer: one pass over a parsed pattern — before any
    evaluation — producing the designedness verdict (well / weakly-well /
    ill), the lint findings of {!Lints}, and the static width estimates of
    {!Width_est}, all with source spans. [wdsparql analyze] is a thin
    wrapper over this module; [Engine.plan] consumes {!hints}. *)

open Rdf

type width_info =
  | Width of Width_est.t
  | Width_unavailable of string
      (** why the width machinery does not apply (outside the core
          fragment, or not well-designed) *)

type report = {
  source : string;  (** input name: a file path, or ["query"] *)
  pattern : Sparql.Algebra.t;
  spans : Sparql.Spans.t;
  designedness : Designedness.t;
  width : width_info;
      (** measured on the pruned residual, the pattern the planner sees *)
  diagnostics : Diagnostic.t list;
      (** sorted by span, then rule — includes the [prune-*] rewrite
          diagnostics *)
  satisfiability : Satisfiability.verdict;
      (** store-independent verdict for the whole pattern, decided under
          a private fuel slice (inconclusive → [Unknown]) *)
  canonical : Canonical.t;
      (** order-normalized alpha-renamed form; its hash keys plan caches *)
  pruned : Prune.t;  (** the residual pattern and the applied rewrites *)
}

val analyze :
  ?graph:Graph.t ->
  ?budget:Resource.Budget.t ->
  ?source:string ->
  spans:Sparql.Spans.t ->
  Sparql.Algebra.t ->
  report
(** Run every pass. [graph] enables the store-dependent
    [unsatisfiable-triple] rule; [budget] limits the (exponential) exact
    width computation, which degrades to the static bound on exhaustion. *)

val of_source :
  ?graph:Graph.t ->
  ?budget:Resource.Budget.t ->
  ?source:string ->
  string ->
  (report, Wdsparql_error.t) result
(** Parse with spans, then {!analyze}. *)

val hints : report -> Wd_core.Engine.hints
(** The plan hints this analysis justifies; {!Wd_core.Engine.no_hints}
    when the width machinery does not apply. *)

val has_findings : report -> bool

val node_spans :
  spans:Sparql.Spans.t -> Wdpt.Pattern_tree.t ->
  (Wdpt.Pattern_tree.node * Sparql.Span.t) list
(** Source span of every pattern-forest node: the join of the spans of the
    node's triples (resolved structurally against the parse). *)

val to_json : report -> Json.t
(** Stable machine-readable report (schema 2): analyzer/schema tag,
    source, designedness verdict, satisfiability verdict (plus reason
    when unknown), canonical hash, prune summary, width object (or the
    unavailability reason), sorted diagnostics. *)

val pp : report Fmt.t
(** Human-readable rendering: verdict, width summary, findings. *)
