open Rdf
module A = Sparql.Algebra
module C = Sparql.Condition

type t = {
  pattern : A.t;
  key : string;
  hash : string;
  to_canonical : Variable.t Variable.Map.t;
  to_original : Variable.t Variable.Map.t;
}

(* ------------------------------------------------------------------ *)
(* Variable collection and renaming                                    *)
(* ------------------------------------------------------------------ *)

(* Pre-order first-occurrence list of the variables of a pattern: triple
   positions s, p, o; a filter's condition after its body; SELECT sets
   contribute (sorted) after everything else, so projected-but-unused
   variables still get canonical names. *)
let occurrence_order p =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let visit v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      order := v :: !order
    end
  in
  let term = function Term.Var v -> visit v | Term.Iri _ -> () in
  let rec cond = function
    | C.Bound v -> visit v
    | C.Eq (a, b) ->
        term a;
        term b
    | C.Not c -> cond c
    | C.And (a, b) | C.Or (a, b) ->
        cond a;
        cond b
  in
  let selects = ref [] in
  let rec walk = function
    | A.Triple t ->
        term t.Triple.s;
        term t.Triple.p;
        term t.Triple.o
    | A.And (a, b) | A.Opt (a, b) | A.Union (a, b) ->
        walk a;
        walk b
    | A.Filter (q, c) ->
        walk q;
        cond c
    | A.Select (vars, q) ->
        walk q;
        selects := vars :: !selects
  in
  walk p;
  List.iter
    (fun vars -> List.iter visit (Variable.Set.elements vars))
    (List.rev !selects);
  List.rev !order

let rename_term m = function
  | Term.Var v as t -> (
      match Variable.Map.find_opt v m with
      | Some v' -> Term.Var v'
      | None -> t)
  | Term.Iri _ as t -> t

let rec rename_cond m = function
  | C.Bound v ->
      C.Bound (Option.value (Variable.Map.find_opt v m) ~default:v)
  | C.Eq (a, b) -> C.Eq (rename_term m a, rename_term m b)
  | C.Not c -> C.Not (rename_cond m c)
  | C.And (a, b) -> C.And (rename_cond m a, rename_cond m b)
  | C.Or (a, b) -> C.Or (rename_cond m a, rename_cond m b)

let rec rename_pattern m = function
  | A.Triple t -> A.Triple (Triple.map (rename_term m) t)
  | A.And (a, b) -> A.And (rename_pattern m a, rename_pattern m b)
  | A.Opt (a, b) -> A.Opt (rename_pattern m a, rename_pattern m b)
  | A.Union (a, b) -> A.Union (rename_pattern m a, rename_pattern m b)
  | A.Filter (q, c) -> A.Filter (rename_pattern m q, rename_cond m c)
  | A.Select (vars, q) ->
      A.Select
        ( Variable.Set.map
            (fun v -> Option.value (Variable.Map.find_opt v m) ~default:v)
            vars,
          rename_pattern m q )

(* ------------------------------------------------------------------ *)
(* Structure normalization                                             *)
(* ------------------------------------------------------------------ *)

(* The name-blind sort fingerprint of a subpattern: its rendering after
   renaming its own variables locally by first occurrence. Distinguishes
   {?x p ?x} from {?x p ?y} without depending on the author's names. *)
let skeleton p =
  let order = occurrence_order p in
  let m, _ =
    List.fold_left
      (fun (m, i) v ->
        (Variable.Map.add v (Variable.of_string (Printf.sprintf "v%d" i)) m,
         i + 1))
      (Variable.Map.empty, 0)
      order
  in
  Fmt.str "%a" A.pp (rename_pattern m p)

let cond_skeleton c =
  skeleton (A.Filter (A.Triple (Triple.make (Term.iri "urn:_") (Term.iri "urn:_") (Term.iri "urn:_")), c))

let rec and_parts = function
  | A.And (a, b) -> and_parts a @ and_parts b
  | q -> [ q ]

let rec union_parts = function
  | A.Union (a, b) -> union_parts a @ union_parts b
  | q -> [ q ]

let rec or_parts = function
  | C.Or (a, b) -> or_parts a @ or_parts b
  | c -> [ c ]

let rec cand_parts = function
  | C.And (a, b) -> cand_parts a @ cand_parts b
  | c -> [ c ]

let sort_by_skeleton render parts =
  List.stable_sort
    (fun a b -> String.compare (render a) (render b))
    parts

let dedup equal parts =
  List.fold_left
    (fun acc p -> if List.exists (equal p) acc then acc else p :: acc)
    [] parts
  |> List.rev

(* Orientation of an equality by a name-blind order: constants before
   variables, constants among themselves by IRI order. Var-var pairs
   cannot be oriented blindly and are fixed by the post-rename pass. *)
let orient_eq a b =
  let rank = function Term.Iri _ -> 0 | Term.Var _ -> 1 in
  match (a, b) with
  | Term.Iri i, Term.Iri j when Iri.compare j i < 0 -> C.Eq (b, a)
  | _ -> if rank b < rank a then C.Eq (b, a) else C.Eq (a, b)

let rec norm_cond c =
  match c with
  | C.Bound _ -> c
  | C.Eq (a, b) -> orient_eq a b
  | C.Not c -> C.Not (norm_cond c)
  | C.And _ ->
      cand_parts c |> List.map norm_cond
      |> sort_by_skeleton cond_skeleton
      |> dedup C.equal
      |> fun parts -> List.fold_left (fun acc p -> C.And (acc, p)) (List.hd parts) (List.tl parts)
  | C.Or _ ->
      or_parts c |> List.map norm_cond
      |> sort_by_skeleton cond_skeleton
      |> dedup C.equal
      |> fun parts -> List.fold_left (fun acc p -> C.Or (acc, p)) (List.hd parts) (List.tl parts)

let rec normalize p =
  match p with
  | A.Triple _ -> p
  | A.And _ ->
      and_parts p |> List.map normalize |> sort_by_skeleton skeleton
      |> A.and_all
  | A.Union _ ->
      union_parts p |> List.map normalize |> sort_by_skeleton skeleton
      |> A.union_all
  | A.Opt (a, b) -> A.Opt (normalize a, normalize b)
  | A.Filter (q, c) -> A.Filter (normalize q, norm_cond c)
  | A.Select (vars, q) -> A.Select (vars, normalize q)

(* After alpha-renaming, variable names are canonical, so var-var
   equalities can be oriented and condition chains re-sorted on the
   concrete rendering (plain commutativity — still sound). *)
let rec post_cond c =
  match c with
  | C.Bound _ -> c
  | C.Eq (a, b) -> if Term.compare b a < 0 then C.Eq (b, a) else C.Eq (a, b)
  | C.Not c -> C.Not (post_cond c)
  | C.And _ ->
      cand_parts c |> List.map post_cond
      |> sort_by_skeleton (Fmt.str "%a" C.pp)
      |> dedup C.equal
      |> fun parts -> List.fold_left (fun acc p -> C.And (acc, p)) (List.hd parts) (List.tl parts)
  | C.Or _ ->
      or_parts c |> List.map post_cond
      |> sort_by_skeleton (Fmt.str "%a" C.pp)
      |> dedup C.equal
      |> fun parts -> List.fold_left (fun acc p -> C.Or (acc, p)) (List.hd parts) (List.tl parts)

let rec post_pattern = function
  | A.Triple _ as p -> p
  | A.And (a, b) -> A.And (post_pattern a, post_pattern b)
  | A.Opt (a, b) -> A.Opt (post_pattern a, post_pattern b)
  | A.Union (a, b) -> A.Union (post_pattern a, post_pattern b)
  | A.Filter (q, c) -> A.Filter (post_pattern q, post_cond c)
  | A.Select (vars, q) -> A.Select (vars, post_pattern q)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let of_pattern p =
  let normalized = normalize p in
  let order = occurrence_order normalized in
  let to_canonical, to_original, _ =
    List.fold_left
      (fun (fwd, bwd, i) v ->
        let v' = Variable.of_string (Printf.sprintf "v%d" i) in
        (Variable.Map.add v v' fwd, Variable.Map.add v' v bwd, i + 1))
      (Variable.Map.empty, Variable.Map.empty, 0)
      order
  in
  let pattern = post_pattern (rename_pattern to_canonical normalized) in
  let key = Fmt.str "%a" A.pp pattern in
  let hash = Digest.to_hex (Digest.string key) in
  { pattern; key; hash; to_canonical; to_original }

let original_var t v =
  Option.value (Variable.Map.find_opt v t.to_original) ~default:v

let rename_back t mu =
  Sparql.Mapping.to_list mu
  |> List.map (fun (v, iri) -> (original_var t v, iri))
  |> Sparql.Mapping.of_list
