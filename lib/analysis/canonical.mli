(** Order-normalized, alpha-renamed canonical forms of patterns, so plan
    caches keyed on the canonical form hit across syntactically different
    but equivalent queries.

    The canonical form is computed in three sound steps: AND and UNION
    chains are flattened and stably sorted by a variable-name-blind
    structural fingerprint (both operators are commutative and
    associative; OPT is neither and keeps its shape), FILTER conditions
    are normalized (∧/∨ chains flattened, sorted and deduplicated,
    equalities oriented), and finally every variable is renamed to
    [v0, v1, …] in first-occurrence order over the normalized tree.

    The form is {e best-effort} canonical: the result is always
    equivalent to the input up to the recorded variable bijection
    (property-tested against the reference evaluator), and two queries
    that differ only by conjunct/branch order, condition order, equality
    orientation or variable names map to the same key in all but
    pathological symmetric cases (structurally indistinguishable
    conjuncts whose cross-links differ). Canonicalization never merges
    two inequivalent queries — distinct patterns render to distinct
    keys, the sorting and renaming steps are equivalence-preserving, and
    the hash is only a digest of the key (cache consumers compare keys,
    not hashes). *)

type t = {
  pattern : Sparql.Algebra.t;  (** the canonical pattern *)
  key : string;
      (** deterministic rendering of [pattern] — the collision-free cache
          key *)
  hash : string;  (** hex digest of [key], for display and JSON *)
  to_canonical : Rdf.Variable.t Rdf.Variable.Map.t;
      (** original variable → canonical variable (a bijection) *)
  to_original : Rdf.Variable.t Rdf.Variable.Map.t;  (** its inverse *)
}

val of_pattern : Sparql.Algebra.t -> t

val original_var : t -> Rdf.Variable.t -> Rdf.Variable.t
(** Map a canonical variable back to the query's own name (identity for
    variables outside the bijection). *)

val rename_back : t -> Sparql.Mapping.t -> Sparql.Mapping.t
(** Rename a solution over the canonical pattern into the original
    query's variable names. Required for sharing evaluation results
    across alpha-variant queries: answers of the canonical pattern bind
    canonical names. *)
