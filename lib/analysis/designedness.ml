open Rdf
module A = Sparql.Algebra

type unsafe_variable = {
  variable : Variable.t;
  opt : A.t;
  right : A.t;
  outside : A.t;
  outside_opt : A.t option;
  wwd_safe : bool;
}

type problem =
  | Unsafe_variable of unsafe_variable
  | Nested_union of A.t
  | Unsafe_filter of A.t * Sparql.Condition.t
  | Nested_select of A.t

type verdict = Well_designed | Weakly_well_designed | Ill_designed

type t = { verdict : verdict; problems : problem list }

let verdict_to_string = function
  | Well_designed -> "well-designed"
  | Weakly_well_designed -> "weakly-well-designed"
  | Ill_designed -> "ill-designed"

(* Occurrences are addressed by their path from the branch root: 0 is the
   left argument (or the only child of FILTER/SELECT), 1 the right. *)
let rec is_prefix p q =
  match (p, q) with
  | [], _ -> true
  | _, [] -> false
  | a :: p', b :: q' -> a = b && is_prefix p' q'

type occurrences = {
  mutable opts : (int list * A.t * A.t * A.t) list;
      (* path, Opt occurrence, left arm, right arm *)
  mutable triples : (int list * Triple.t * A.t) list;
      (* path, triple, Triple occurrence *)
  mutable structural : problem list;
}

let collect branch =
  let occ = { opts = []; triples = []; structural = [] } in
  let rec walk path p =
    match p with
    | A.Triple t -> occ.triples <- (List.rev path, t, p) :: occ.triples
    | A.And (a, b) ->
        walk (0 :: path) a;
        walk (1 :: path) b
    | A.Opt (a, b) ->
        occ.opts <- (List.rev path, p, a, b) :: occ.opts;
        walk (0 :: path) a;
        walk (1 :: path) b
    | A.Union (a, b) ->
        occ.structural <- Nested_union p :: occ.structural;
        walk (0 :: path) a;
        walk (1 :: path) b
    | A.Filter (q, c) ->
        if not (Variable.Set.subset (Sparql.Condition.vars c) (A.vars q)) then
          occ.structural <- Unsafe_filter (p, c) :: occ.structural;
        walk (0 :: path) q
    | A.Select (_, q) ->
        occ.structural <- Nested_select p :: occ.structural;
        walk (0 :: path) q
  in
  walk [] branch;
  occ.opts <- List.rev occ.opts;
  occ.triples <- List.rev occ.triples;
  occ.structural <- List.rev occ.structural;
  occ

(* Kaminski & Kostylev safety of an outside re-occurrence at [q_path],
   w.r.t. the violated OPT at [opt_path]: there must be an OPT occurrence
   e' = (A' OPT B') with the violated OPT inside A' and the re-occurrence
   inside B'. *)
let wwd_safe_occurrence occ ~opt_path ~occ_path =
  List.exists
    (fun (p', _, _, _) ->
      is_prefix (p' @ [ 0 ]) opt_path && is_prefix (p' @ [ 1 ]) occ_path)
    occ.opts

(* The innermost OPT whose right arm contains the occurrence at [path]. *)
let enclosing_opt occ path =
  let candidates =
    List.filter (fun (p', _, _, _) -> is_prefix (p' @ [ 1 ]) path) occ.opts
  in
  match
    List.sort
      (fun (a, _, _, _) (b, _, _, _) ->
        compare (List.length b) (List.length a))
      candidates
  with
  | (_, e, _, _) :: _ -> Some e
  | [] -> None

let analyze_branch branch =
  let occ = collect branch in
  let unsafe =
    List.concat_map
      (fun (opt_path, opt, left, right) ->
        let dangerous = Variable.Set.diff (A.vars right) (A.vars left) in
        Variable.Set.fold
          (fun v acc ->
            let outside_occs =
              List.filter
                (fun (q_path, t, _) ->
                  Variable.Set.mem v (Triple.vars t)
                  && not (is_prefix opt_path q_path))
                occ.triples
            in
            match outside_occs with
            | [] -> acc
            | _ :: _ ->
                let safe =
                  List.for_all
                    (fun (q_path, _, _) ->
                      wwd_safe_occurrence occ ~opt_path ~occ_path:q_path)
                    outside_occs
                in
                (* Point the witness at an unsafe re-occurrence when there
                   is one, else at the first. *)
                let q_path, _, outside =
                  match
                    List.find_opt
                      (fun (q_path, _, _) ->
                        not (wwd_safe_occurrence occ ~opt_path ~occ_path:q_path))
                      outside_occs
                  with
                  | Some o -> o
                  | None -> List.hd outside_occs
                in
                Unsafe_variable
                  {
                    variable = v;
                    opt;
                    right;
                    outside;
                    outside_opt = enclosing_opt occ q_path;
                    wwd_safe = safe;
                  }
                :: acc)
          dangerous []
        |> List.rev)
      occ.opts
  in
  occ.structural @ unsafe

let analyze p =
  let body = match p with A.Select (_, q) -> q | q -> q in
  let problems =
    List.concat_map analyze_branch (Sparql.Well_designed.union_branches body)
  in
  let verdict =
    if problems = [] then Well_designed
    else if
      List.for_all
        (function Unsafe_variable { wwd_safe; _ } -> wwd_safe | _ -> false)
        problems
    then Weakly_well_designed
    else Ill_designed
  in
  { verdict; problems }
