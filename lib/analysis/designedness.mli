(** Well-designedness analysis with full witnesses.

    Where {!Sparql.Well_designed.check} stops at the first violation, this
    pass finds {e every} offending variable, keeps the subpattern
    occurrences witnessing each violation (so the analyzer can attach
    source spans to both sides), and additionally classifies the pattern
    against the {e weakly well-designed} fragment of Kaminski & Kostylev
    (ICDT'16, see PAPERS.md): a violating re-occurrence is harmless when it
    can only ever be reached after the violated OPT had its chance to bind
    — concretely, when it sits in the right arm of a later OPT whose
    mandatory (left) part contains the violated OPT.

    The verdict agrees with {!Sparql.Well_designed.check} on
    well-designedness: [verdict = Well_designed] iff [check] returns
    [Ok ()] (property-tested). FILTER conditions follow the same
    convention as [check]: only triple patterns bind variables. *)

open Rdf

type unsafe_variable = {
  variable : Variable.t;
  opt : Sparql.Algebra.t;  (** the OPT occurrence whose right arm introduces it *)
  right : Sparql.Algebra.t;  (** that right arm *)
  outside : Sparql.Algebra.t;
      (** the triple occurrence re-using the variable outside [opt] *)
  outside_opt : Sparql.Algebra.t option;
      (** the innermost OPT occurrence whose right arm contains [outside],
          when there is one — the second OPT span of the witness pair *)
  wwd_safe : bool;
      (** every outside re-occurrence of this variable sits in a
          weakly-well-designed-safe position *)
}

type problem =
  | Unsafe_variable of unsafe_variable
  | Nested_union of Sparql.Algebra.t
  | Unsafe_filter of Sparql.Algebra.t * Sparql.Condition.t
  | Nested_select of Sparql.Algebra.t

type verdict =
  | Well_designed
  | Weakly_well_designed
      (** not well-designed, but every violation is wwd-safe *)
  | Ill_designed

type t = { verdict : verdict; problems : problem list }

val analyze : Sparql.Algebra.t -> t
(** [problems] is empty iff the pattern is well-designed; it lists one
    {!Unsafe_variable} per (OPT occurrence, variable) violating pair. *)

val verdict_to_string : verdict -> string
(** ["well-designed" | "weakly-well-designed" | "ill-designed"]. *)
