open Sparql

type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

type related = { where : Span.t; note : string }

type t = {
  rule : string;
  severity : severity;
  span : Span.t;
  message : string;
  related : related list;
  heuristic : bool;
}

let make ~rule ~severity ~span ?(related = []) ?(heuristic = false) message =
  { rule; severity; span; message; related; heuristic }

let compare a b =
  match Span.compare a.span b.span with
  | 0 -> (
      match String.compare a.rule b.rule with
      | 0 -> String.compare a.message b.message
      | c -> c)
  | c -> c

(* ---------------- JSON ---------------- *)

let span_to_json span =
  if Span.is_dummy span then Json.Null
  else
    Json.Obj
      [
        ( "start",
          Json.Obj
            [
              ("line", Json.Int span.Span.start.Span.line);
              ("col", Json.Int span.Span.start.Span.col);
            ] );
        ( "end",
          Json.Obj
            [
              ("line", Json.Int span.Span.stop.Span.line);
              ("col", Json.Int span.Span.stop.Span.col);
            ] );
      ]

let span_of_json = function
  | Json.Null -> Ok Span.dummy
  | j -> (
      let pos key =
        match Json.member key j with
        | Some p -> (
            match
              ( Option.bind (Json.member "line" p) Json.to_int,
                Option.bind (Json.member "col" p) Json.to_int )
            with
            | Some line, Some col -> Some { Span.line; col }
            | _ -> None)
        | None -> None
      in
      match (pos "start", pos "end") with
      | Some start, Some stop -> Ok (Span.make ~start ~stop)
      | _ -> Error "malformed span")

let to_json d =
  Json.Obj
    ([
      ("rule", Json.String d.rule);
      ("severity", Json.String (severity_to_string d.severity));
      ("span", span_to_json d.span);
      ("message", Json.String d.message);
      ( "related",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [ ("span", span_to_json r.where); ("note", Json.String r.note) ])
             d.related) );
    ]
    @ if d.heuristic then [ ("heuristic", Json.Bool true) ] else [])

let of_json j =
  let ( let* ) = Result.bind in
  let str key =
    match Option.bind (Json.member key j) Json.to_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing string field %S" key)
  in
  let* rule = str "rule" in
  let* severity_s = str "severity" in
  let* severity =
    match severity_of_string severity_s with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "unknown severity %S" severity_s)
  in
  let* span =
    span_of_json (Option.value (Json.member "span" j) ~default:Json.Null)
  in
  let* message = str "message" in
  let* related =
    match Json.member "related" j with
    | None | Some Json.Null -> Ok []
    | Some rel -> (
        match Json.to_list rel with
        | None -> Error "related is not a list"
        | Some items ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                let* where =
                  span_of_json
                    (Option.value (Json.member "span" item) ~default:Json.Null)
                in
                match Option.bind (Json.member "note" item) Json.to_str with
                | Some note -> Ok ({ where; note } :: acc)
                | None -> Error "related item without note")
              (Ok []) items
            |> Result.map List.rev)
  in
  let heuristic =
    match Json.member "heuristic" j with Some (Json.Bool b) -> b | _ -> false
  in
  Ok { rule; severity; span; message; related; heuristic }

(* ---------------- human-readable ---------------- *)

let pp ppf d =
  Fmt.pf ppf "%a: %s[%s]%s: %s" Span.pp d.span
    (severity_to_string d.severity)
    d.rule
    (if d.heuristic then " (heuristic)" else "")
    d.message;
  List.iter
    (fun r -> Fmt.pf ppf "@.  note: %s at %a" r.note Span.pp r.where)
    d.related
