(** Structured analyzer findings: rule id, severity, source span, message,
    and related locations — the unit of output of [wdsparql analyze],
    rendered either human-readably or as SARIF-like JSON. *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string
(** ["error"], ["warning"], ["info"] — the JSON encoding. *)

val severity_of_string : string -> severity option

type related = { where : Sparql.Span.t; note : string }
(** A secondary location: e.g. the second OPT span witnessing a
    well-designedness violation. *)

type t = {
  rule : string;  (** stable rule id, e.g. ["wd-unsafe-variable"] *)
  severity : severity;
  span : Sparql.Span.t;  (** primary location; {!Sparql.Span.dummy} if unknown *)
  message : string;
  related : related list;
  heuristic : bool;
      (** [true] when the finding came from a best-effort fallback (e.g.
          the store-vocabulary check behind [unsatisfiable-triple] when
          the exact decision procedure was inconclusive) rather than a
          decision procedure; such findings may change with the store or
          budget. Encoded in JSON as ["heuristic": true], omitted when
          false. *)
}

val make :
  rule:string -> severity:severity -> span:Sparql.Span.t ->
  ?related:related list -> ?heuristic:bool -> string -> t
(** [heuristic] defaults to [false]. *)

val compare : t -> t -> int
(** Span order, then rule id, then message — the stable output order. *)

val to_json : t -> Json.t
(** [{"rule": …, "severity": …, "span": {"start": {"line", "col"},
    "end": …} | null, "message": …, "related": [{"span": …, "note": …}]}]. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json} (tested by round-trip). *)

val pp : t Fmt.t
(** One finding, [line:col-line:col severity[rule]: message] plus indented
    [note:] lines for related spans. *)
