type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------------- printing ---------------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
      (* round-trippable float syntax that is still valid JSON *)
      let s = Printf.sprintf "%.17g" f in
      let s =
        if String.contains s '.' || String.contains s 'e'
           || String.contains s 'n' (* nan/inf are not JSON; print null *)
        then s
        else s ^ ".0"
      in
      if String.contains s 'n' then Buffer.add_string b "null"
      else Buffer.add_string b s
  | String s -> escape_string b s
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          write b item)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape_string b k;
          Buffer.add_char b ':';
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  write b j;
  Buffer.contents b

let pp ppf j = Fmt.string ppf (to_string j)

(* ---------------- parsing ---------------- *)

exception Parse of string

let of_string src =
  let n = String.length src in
  let i = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !i)) in
  let skip_ws () =
    while
      !i < n && (match src.[!i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr i
    done
  in
  let expect c =
    if !i < n && src.[!i] = c then incr i
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !i + l <= n && String.sub src !i l = word then begin
      i := !i + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !i >= n then fail "unterminated string"
      else
        match src.[!i] with
        | '"' -> incr i
        | '\\' ->
            incr i;
            if !i >= n then fail "unterminated escape";
            (match src.[!i] with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                if !i + 4 >= n then fail "truncated \\u escape";
                let hex = String.sub src (!i + 1) 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail "bad \\u escape"
                in
                (* Only codepoints < 0x80 are produced by our printer;
                   decode those and pass larger ones through as '?'. *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else Buffer.add_char b '?';
                i := !i + 4
            | c -> fail (Printf.sprintf "bad escape \\%c" c));
            incr i;
            go ()
        | c ->
            Buffer.add_char b c;
            incr i;
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !i in
    if !i < n && (src.[!i] = '-' || src.[!i] = '+') then incr i;
    let is_float = ref false in
    while
      !i < n
      &&
      match src.[!i] with
      | '0' .. '9' -> true
      | '.' | 'e' | 'E' | '-' | '+' ->
          is_float := true;
          true
      | _ -> false
    do
      incr i
    done;
    let text = String.sub src start (!i - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some k -> Int k
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    if !i >= n then fail "unexpected end of input"
    else
      match src.[!i] with
      | 'n' -> literal "null" Null
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | '"' -> String (parse_string ())
      | '[' ->
          incr i;
          skip_ws ();
          if !i < n && src.[!i] = ']' then begin
            incr i;
            List []
          end
          else
            let rec items acc =
              let v = parse_value () in
              skip_ws ();
              if !i < n && src.[!i] = ',' then begin
                incr i;
                items (v :: acc)
              end
              else begin
                expect ']';
                List (List.rev (v :: acc))
              end
            in
            items []
      | '{' ->
          incr i;
          skip_ws ();
          if !i < n && src.[!i] = '}' then begin
            incr i;
            Obj []
          end
          else
            let field () =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              (k, v)
            in
            let rec fields acc =
              let kv = field () in
              skip_ws ();
              if !i < n && src.[!i] = ',' then begin
                incr i;
                fields (kv :: acc)
              end
              else begin
                expect '}';
                Obj (List.rev (kv :: acc))
              end
            in
            fields []
      | '-' | '0' .. '9' -> parse_number ()
      | c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !i < n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg

(* ---------------- accessors ---------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List l -> Some l | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_int = function Int i -> Some i | _ -> None
