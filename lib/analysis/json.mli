(** A minimal JSON tree, printer and parser — just enough for the
    analyzer's [--json] output and its round-trip tests, so the project
    needs no external JSON dependency.

    The printer is deterministic (object fields print in the order given)
    and the grammar is standard JSON minus a few liberties: numbers are
    OCaml [int]/[float]; strings are byte sequences where bytes < 0x20 are
    escaped and everything else passes through verbatim. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. *)

val pp : t Fmt.t
(** Same rendering as {!to_string}. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string} (tested); accepts arbitrary whitespace between
    tokens. Numbers without [.], [e] or [E] parse as [Int]. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on other constructors. *)

val to_list : t -> t list option
val to_str : t -> string option
val to_int : t -> int option
