open Rdf
module A = Sparql.Algebra
module Spans = Sparql.Spans

let span spans p = Spans.find_or_dummy spans p

(* Variables guaranteed to be bound by every solution of [p]: variables of
   a mandatory triple occurrence. OPT right arms are optional; a UNION
   binds only what every branch binds. *)
let rec mandatory_vars = function
  | A.Triple t -> Triple.vars t
  | A.And (a, b) -> Variable.Set.union (mandatory_vars a) (mandatory_vars b)
  | A.Opt (a, _) -> mandatory_vars a
  | A.Union (a, b) -> Variable.Set.inter (mandatory_vars a) (mandatory_vars b)
  | A.Filter (q, _) | A.Select (_, q) -> mandatory_vars q

(* First (pre-order) triple occurrence mentioning [v]. *)
let rec first_binding v = function
  | A.Triple t as occ ->
      if Variable.Set.mem v (Triple.vars t) then Some occ else None
  | A.And (a, b) | A.Opt (a, b) | A.Union (a, b) -> (
      match first_binding v a with Some o -> Some o | None -> first_binding v b)
  | A.Filter (q, _) | A.Select (_, q) -> first_binding v q

let binding_note spans v p =
  match first_binding v p with
  | Some occ ->
      [
        {
          Diagnostic.where = span spans occ;
          note = Fmt.str "%a is bound here, inside an optional arm" Variable.pp v;
        };
      ]
  | None -> []

(* ---------------- rules ---------------- *)

let projected_unused ~spans p =
  match p with
  | A.Select (vars, body) ->
      let body_vars = A.vars body in
      Variable.Set.fold
        (fun v acc ->
          if Variable.Set.mem v body_vars then acc
          else
            Diagnostic.make ~rule:"projected-variable-unused"
              ~severity:Diagnostic.Warning ~span:(span spans p)
              (Fmt.str
                 "projected variable %a does not occur in the pattern body"
                 Variable.pp v)
            :: acc)
        vars []
      |> List.rev
  | _ -> []

let possibly_unbound ~spans p =
  let from_projection =
    match p with
    | A.Select (vars, body) ->
        let body_vars = A.vars body and always = mandatory_vars body in
        Variable.Set.fold
          (fun v acc ->
            if Variable.Set.mem v body_vars && not (Variable.Set.mem v always)
            then
              Diagnostic.make ~rule:"possibly-unbound-variable"
                ~severity:Diagnostic.Warning ~span:(span spans p)
                ~related:(binding_note spans v body)
                (Fmt.str
                   "projected variable %a is only bound inside an optional \
                    arm and may be unbound in answers"
                   Variable.pp v)
              :: acc
            else acc)
          vars []
        |> List.rev
    | _ -> []
  in
  let from_filters = ref [] in
  let rec walk q =
    (match q with
    | A.Filter (body, condition) ->
        let body_vars = A.vars body and always = mandatory_vars body in
        Variable.Set.iter
          (fun v ->
            if Variable.Set.mem v body_vars && not (Variable.Set.mem v always)
            then
              from_filters :=
                Diagnostic.make ~rule:"possibly-unbound-variable"
                  ~severity:Diagnostic.Warning ~span:(span spans q)
                  ~related:(binding_note spans v body)
                  (Fmt.str
                     "FILTER uses %a, which is only bound inside an optional \
                      arm and may be unbound when the filter runs"
                     Variable.pp v)
                :: !from_filters)
          (Sparql.Condition.vars condition)
    | A.Triple _ | A.And _ | A.Opt _ | A.Union _ | A.Select _ -> ());
    match q with
    | A.Triple _ -> ()
    | A.And (a, b) | A.Opt (a, b) | A.Union (a, b) ->
        walk a;
        walk b
    | A.Filter (body, _) | A.Select (_, body) -> walk body
  in
  walk p;
  from_projection @ List.rev !from_filters

(* Fuel slice for the exact satisfiability subcall: enough to decide any
   query a person writes, small enough that an adversarial OPT/FILTER
   tower degrades to the labeled heuristic instead of burning. *)
let satisfiability_fuel = 50_000

(* The old store-vocabulary reading of [unsatisfiable-triple], retained
   as the labeled fallback: per-triple, store-dependent, best-effort. *)
let vocabulary_findings ~rule ~severity ~heuristic ~stats ~dom ~spans p =
  let diags = ref [] in
  let check_triple occ t =
    let reason =
      match t.Triple.p with
      | Term.Iri iri when Stats.predicate stats iri = None ->
          Some (Fmt.str "predicate %a never occurs in the store" Iri.pp iri)
      | _ -> (
          let missing pos term =
            match term with
            | Term.Iri iri when not (Iri.Set.mem iri dom) ->
                Some (Fmt.str "%s %a does not occur in the store" pos Iri.pp iri)
            | _ -> None
          in
          match missing "subject" t.Triple.s with
          | Some r -> Some r
          | None -> missing "object" t.Triple.o)
    in
    match reason with
    | Some r ->
        diags :=
          Diagnostic.make ~rule ~severity ~span:(span spans occ) ~heuristic
            (Fmt.str "triple pattern can never match this store: %s" r)
          :: !diags
    | None -> ()
  in
  let rec walk = function
    | A.Triple t as occ -> check_triple occ t
    | A.And (a, b) | A.Opt (a, b) | A.Union (a, b) ->
        walk a;
        walk b
    | A.Filter (q, _) | A.Select (_, q) -> walk q
  in
  walk p;
  List.rev !diags

(* Exact, store-independent reading: the Zhang–Van den Bussche decision
   procedure on the whole pattern. Only when it is inconclusive (capped
   equality structure, exhausted fuel slice) does the store-vocabulary
   heuristic run, and its findings say so. *)
let unsatisfiable ?stats ?dom ~spans p =
  match Satisfiability.decide_quietly ~fuel:satisfiability_fuel p with
  | Satisfiability.Unsat ->
      [
        Diagnostic.make ~rule:"unsatisfiable-triple"
          ~severity:Diagnostic.Warning ~span:(span spans p)
          "pattern is unsatisfiable: no graph yields a solution (decision \
           procedure)";
      ]
  | Satisfiability.Sat _ -> []
  | Satisfiability.Unknown why -> (
      match (stats, dom) with
      | Some stats, Some dom ->
          List.map
            (fun d ->
              {
                d with
                Diagnostic.message =
                  d.Diagnostic.message
                  ^ Fmt.str " (heuristic fallback: %s)" why;
              })
            (vocabulary_findings ~rule:"unsatisfiable-triple"
               ~severity:Diagnostic.Warning ~heuristic:true ~stats ~dom ~spans
               p)
      | _ -> [])

(* Store-vocabulary mismatches as their own, openly store-dependent rule:
   a semantically satisfiable triple whose constant never occurs in the
   loaded store still returns nothing from {e this} store — usually a
   typo or a stale prefix. *)
let vocabulary_mismatch ~stats ~dom ~spans p =
  vocabulary_findings ~rule:"vocabulary-mismatch" ~severity:Diagnostic.Info
    ~heuristic:false ~stats ~dom ~spans p

let dead_optional ~spans p =
  let diags = ref [] in
  let rec walk = function
    | A.Triple _ -> ()
    | A.Opt (a, b) as occ ->
        if Variable.Set.subset (A.vars b) (A.vars a) then
          diags :=
            Diagnostic.make ~rule:"dead-optional" ~severity:Diagnostic.Warning
              ~span:(span spans occ)
              ~related:
                [
                  {
                    Diagnostic.where = span spans b;
                    note = "this optional arm introduces no new variable";
                  };
                ]
              "OPTIONAL arm binds no new variable, so it never extends a \
               solution (dead branch)"
            :: !diags;
        walk a;
        walk b
    | A.And (a, b) | A.Union (a, b) ->
        walk a;
        walk b
    | A.Filter (q, _) | A.Select (_, q) -> walk q
  in
  walk p;
  List.rev !diags

let union_normal_form ~spans p =
  let diags = ref [] in
  (* UNION and a top-level SELECT are transparent; once below AND, OPT or
     FILTER, any UNION deviates from UNION normal form. *)
  let rec walk ~below_op = function
    | A.Triple _ -> ()
    | A.Union (a, b) as occ ->
        if below_op then
          diags :=
            Diagnostic.make ~rule:"union-normal-form"
              ~severity:Diagnostic.Error ~span:(span spans occ)
              "UNION nested below AND/OPT/FILTER: the pattern is not in \
               UNION normal form"
            :: !diags;
        walk ~below_op a;
        walk ~below_op b
    | A.And (a, b) | A.Opt (a, b) ->
        walk ~below_op:true a;
        walk ~below_op:true b
    | A.Filter (q, _) -> walk ~below_op:true q
    | A.Select (_, q) -> walk ~below_op q
  in
  walk ~below_op:false p;
  List.rev !diags

let duplicate_triples ~spans p =
  let diags = ref [] in
  (* Triple leaves of a maximal AND-chain (one conjunction scope). *)
  let rec conjuncts = function
    | A.And (a, b) -> conjuncts a @ conjuncts b
    | q -> [ q ]
  in
  let scope_root = function
    | A.And _ as q -> Some (conjuncts q)
    | _ -> None
  in
  let report leaves =
    let seen = ref [] in
    List.iter
      (fun occ ->
        match occ with
        | A.Triple t -> (
            match
              List.find_opt (fun (t', _) -> Triple.equal t t') !seen
            with
            | Some (_, first) ->
                diags :=
                  Diagnostic.make ~rule:"duplicate-triple"
                    ~severity:Diagnostic.Info ~span:(span spans occ)
                    ~related:
                      [
                        {
                          Diagnostic.where = span spans first;
                          note = "first occurrence";
                        };
                      ]
                    (Fmt.str "duplicate triple pattern %a in one conjunction"
                       Triple.pp t)
                  :: !diags
            | None -> seen := (t, occ) :: !seen)
        | _ -> ())
      leaves
  in
  let rec walk ~parent_is_and q =
    (if not parent_is_and then
       match scope_root q with Some leaves -> report leaves | None -> ());
    match q with
    | A.Triple _ -> ()
    | A.And (a, b) ->
        walk ~parent_is_and:true a;
        walk ~parent_is_and:true b
    | A.Opt (a, b) | A.Union (a, b) ->
        walk ~parent_is_and:false a;
        walk ~parent_is_and:false b
    | A.Filter (body, _) | A.Select (_, body) -> walk ~parent_is_and:false body
  in
  walk ~parent_is_and:false p;
  List.rev !diags

let check ?stats ?dom ~spans p =
  let store_rule =
    match (stats, dom) with
    | Some stats, Some dom -> vocabulary_mismatch ~stats ~dom ~spans p
    | _ -> []
  in
  projected_unused ~spans p
  @ possibly_unbound ~spans p
  @ unsatisfiable ?stats ?dom ~spans p
  @ store_rule
  @ dead_optional ~spans p
  @ union_normal_form ~spans p
  @ duplicate_triples ~spans p
