(** The lint rules of the static analyzer — findings about patterns that
    are {e legal} (often even well-designed) but wasteful, dead, or
    probably not what the author meant. See [docs/ANALYSIS.md] for the
    rule catalogue with minimal triggering queries.

    Rules and ids:
    - [projected-variable-unused] (warning): a SELECT variable that occurs
      nowhere in the pattern body.
    - [possibly-unbound-variable] (warning): a variable used in the
      projection or in a FILTER whose every binding occurrence (triple
      pattern) lies inside an OPT right arm — no solution is required to
      bind it, so the use can observe an unbound variable.
    - [unsatisfiable-triple] (warning, needs a store): a triple pattern
      with a constant predicate/subject/object that does not occur in the
      loaded store's vocabulary — the triple can never match.
    - [dead-optional] (warning): an OPT whose right arm introduces no new
      variable over its left arm; it never extends any solution (NR
      normal form erases it).
    - [union-normal-form] (error): a UNION nested below AND, OPT or
      FILTER — the pattern deviates from UNION normal form (and is
      consequently not well-designed).
    - [duplicate-triple] (info): the same triple pattern written twice in
      one conjunction. *)

open Rdf

val check :
  ?stats:Stats.t ->
  ?dom:Iri.Set.t ->
  spans:Sparql.Spans.t ->
  Sparql.Algebra.t ->
  Diagnostic.t list
(** All lint findings, in traversal order (the analyzer sorts). The
    store-dependent [unsatisfiable-triple] rule only runs when [stats]
    and [dom] (see {!Rdf.Stats.of_graph}, {!Rdf.Graph.dom}) are given. *)
