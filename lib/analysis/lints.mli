(** The lint rules of the static analyzer — findings about patterns that
    are {e legal} (often even well-designed) but wasteful, dead, or
    probably not what the author meant. See [docs/ANALYSIS.md] for the
    rule catalogue with minimal triggering queries.

    Rules and ids:
    - [projected-variable-unused] (warning): a SELECT variable that occurs
      nowhere in the pattern body.
    - [possibly-unbound-variable] (warning): a variable used in the
      projection or in a FILTER whose every binding occurrence (triple
      pattern) lies inside an OPT right arm — no solution is required to
      bind it, so the use can observe an unbound variable.
    - [unsatisfiable-triple] (warning): the pattern is semantically
      unsatisfiable — the store-independent decision procedure
      ({!Satisfiability.decide}) proved no graph yields a solution. When
      the procedure is inconclusive and a store is loaded, the old
      store-vocabulary check runs as a fallback whose findings carry
      [heuristic: true].
    - [vocabulary-mismatch] (info, needs a store): a triple pattern with
      a constant predicate/subject/object that does not occur in the
      loaded store's vocabulary — satisfiable in general, but it never
      matches {e this} store.
    - [dead-optional] (warning): an OPT whose right arm introduces no new
      variable over its left arm; it never extends any solution (NR
      normal form erases it).
    - [union-normal-form] (error): a UNION nested below AND, OPT or
      FILTER — the pattern deviates from UNION normal form (and is
      consequently not well-designed).
    - [duplicate-triple] (info): the same triple pattern written twice in
      one conjunction. *)

open Rdf

val satisfiability_fuel : int
(** The private fuel slice behind each exact-satisfiability subcall: the
    analyzer's verdict and this rule stay cheap and total even on
    adversarial OPT/FILTER towers. *)

val check :
  ?stats:Stats.t ->
  ?dom:Iri.Set.t ->
  spans:Sparql.Spans.t ->
  Sparql.Algebra.t ->
  Diagnostic.t list
(** All lint findings, in traversal order (the analyzer sorts).
    [unsatisfiable-triple] is store-independent (its verdict never
    changes with [stats]/[dom]); the store-dependent parts — the
    [vocabulary-mismatch] rule and the labeled heuristic fallback of
    [unsatisfiable-triple] — only run when [stats] and [dom] (see
    {!Rdf.Stats.of_graph}, {!Rdf.Graph.dom}) are given. *)
