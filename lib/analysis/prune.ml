open Rdf
module A = Sparql.Algebra
module Spans = Sparql.Spans

type outcome = Empty | Pattern of A.t

type t = {
  outcome : outcome;
  rewrites : Diagnostic.t list;
  changed : bool;
}

let default_decision_fuel = 20_000

(* A subtree without filters is always satisfiable (instantiate every
   variable with a fresh distinct IRI), so satisfiability subcalls are
   only worth their budget where a FILTER is in play. *)
let rec has_filter = function
  | A.Triple _ -> false
  | A.And (a, b) | A.Opt (a, b) | A.Union (a, b) ->
      has_filter a || has_filter b
  | A.Filter _ -> true
  | A.Select (_, q) -> has_filter q

let rec conjuncts = function
  | A.And (a, b) -> conjuncts a @ conjuncts b
  | q -> [ q ]

let run ?(decision_fuel = default_decision_fuel) ?(spans = Spans.empty) p =
  let rewrites = ref [] in
  let emit ~rule ~span message =
    rewrites :=
      Diagnostic.make ~rule ~severity:Diagnostic.Info ~span message
        :: !rewrites
  in
  let span_of occ = Spans.find_or_dummy spans occ in
  let unsat q =
    has_filter q
    && Satisfiability.decide_quietly ~fuel:decision_fuel q
       = Satisfiability.Unsat
  in
  (* Bottom-up; unchanged subtrees keep their physical identity so the
     residual still resolves in the span table. *)
  let rec go p =
    match p with
    | A.Triple _ -> (Pattern p, false)
    | A.And _ ->
        let parts = conjuncts p in
        let results = List.map go parts in
        if List.exists (fun (o, _) -> o = Empty) results then (Empty, true)
        else begin
          let child_changed =
            List.exists (fun (_, changed) -> changed) results
          in
          let kept_rev, deduped =
            (* duplicate-triple elimination across the conjunction scope:
               structural equality on the original occurrences, keeping
               the first *)
            List.fold_left2
              (fun (kept, deduped) (outcome, _) original ->
                let q =
                  match outcome with Pattern q -> q | Empty -> assert false
                in
                match q with
                | A.Triple t
                  when List.exists
                         (function
                           | A.Triple t' -> Triple.equal t t'
                           | _ -> false)
                         kept ->
                    emit ~rule:"prune-duplicate-triple" ~span:(span_of original)
                      (Fmt.str
                         "duplicate triple %a dropped from the conjunction \
                          (join idempotence)"
                         Triple.pp t);
                    (kept, true)
                | q -> (q :: kept, deduped))
              ([], false) results parts
          in
          let kept = List.rev kept_rev in
          if not (child_changed || deduped) then (Pattern p, false)
          else (Pattern (A.and_all kept), true)
        end
    | A.Union (a, b) -> (
        let branch (outcome, changed) original =
          (* a branch that is unsatisfiable on its own contributes the
             empty set on every graph *)
          match outcome with
          | Empty -> (Empty, true)
          | Pattern q ->
              if unsat q then begin
                emit ~rule:"prune-unsat-union-branch" ~span:(span_of original)
                  "UNION branch is unsatisfiable: it contributes no \
                   solutions and is dropped";
                (Empty, true)
              end
              else (Pattern q, changed)
        in
        match (branch (go a) a, branch (go b) b) with
        | (Empty, _), (Empty, _) -> (Empty, true)
        | (Empty, _), (Pattern q, _) | (Pattern q, _), (Empty, _) ->
            (Pattern q, true)
        | (Pattern qa, ca), (Pattern qb, cb) ->
            if ca || cb then (Pattern (A.Union (qa, qb)), true)
            else (Pattern p, false))
    | A.Opt (a, b) -> (
        match (go a, go b) with
        | (Empty, _), _ -> (Empty, true)
        | (Pattern qa, _), (Empty, _) ->
            emit ~rule:"prune-unsat-optional" ~span:(span_of p)
              "OPTIONAL arm is unsatisfiable: the left-outer-join \
               degenerates to its mandatory side";
            (Pattern qa, true)
        | (Pattern qa, ca), (Pattern qb, cb) ->
            if unsat (A.And (qa, qb)) then begin
              emit ~rule:"prune-unsat-optional" ~span:(span_of p)
                "OPTIONAL arm can never join its mandatory side (the \
                 conjunction is unsatisfiable): the arm is dropped";
              (Pattern qa, true)
            end
            else if ca || cb then (Pattern (A.Opt (qa, qb)), true)
            else (Pattern p, false))
    | A.Filter (q, c) -> (
        match go q with
        | Empty, _ -> (Empty, true)
        | Pattern q', changed ->
            let node = if changed then A.Filter (q', c) else p in
            if unsat node then begin
              emit ~rule:"prune-filter-false" ~span:(span_of p)
                "FILTER can never hold: the subtree is unsatisfiable and \
                 collapses to the empty pattern";
              (Empty, true)
            end
            else (Pattern node, changed))
    | A.Select (vars, q) -> (
        match go q with
        | Empty, _ -> (Empty, true)
        | Pattern q', changed ->
            if changed then (Pattern (A.Select (vars, q')), true)
            else (Pattern p, false))
  in
  let outcome, changed = go p in
  { outcome; rewrites = List.rev !rewrites; changed }

let residual_vars_dropped ~original t =
  match t.outcome with
  | Empty -> A.vars original
  | Pattern q -> Variable.Set.diff (A.vars original) (A.vars q)
