(** Pre-plan pattern rewrites, each proven sound against the algebra
    semantics (and differentially fuzzed): the planner then measures
    widths and compiles join orders for the residual query actually
    worth evaluating.

    Rules, each emitting a span-carrying {!Diagnostic.t}:
    - [prune-unsat-optional]: [Opt (a, b)] where [And (a, b)] is
      unsatisfiable becomes [a] — the join side is empty on every graph,
      so the left-outer-join degenerates to exactly [⟦a⟧].
    - [prune-unsat-union-branch]: an unsatisfiable UNION branch is
      dropped ([⟦Union (a, b)⟧ = ⟦a⟧ ∪ ⟦b⟧] and the branch contributes
      ∅ on every graph).
    - [prune-filter-false]: a FILTER subtree that is unsatisfiable as a
      whole (in particular [FILTER (false)]) collapses to the empty
      pattern.
    - [prune-duplicate-triple]: a triple repeated inside one conjunction
      scope is dropped (join idempotence over set semantics).

    Emptiness propagates soundly: [And (∅, x) = ∅], [Union (∅, x) = x],
    [Opt (x, ∅) = x], [Opt (∅, x) = ∅], [Filter/Select of ∅ = ∅].
    Satisfiability verdicts come from {!Satisfiability.decide_quietly}
    under a private fuel slice; only a definitive [Unsat] triggers a
    rewrite — [Unknown] never does. Pruning a well-designed pattern
    yields a well-designed pattern (a dropped OPT arm's variables that
    occur elsewhere are already in the arm's left sibling, by
    well-designedness of the input). *)

type outcome =
  | Empty
      (** the whole pattern is unsatisfiable: the answer set is empty on
          every graph, no evaluation needed *)
  | Pattern of Sparql.Algebra.t  (** the residual pattern to plan *)

type t = {
  outcome : outcome;
  rewrites : Diagnostic.t list;
      (** one [prune-*] diagnostic per applied rewrite, in application
          order *)
  changed : bool;  (** whether any rewrite fired *)
}

val run :
  ?decision_fuel:int -> ?spans:Sparql.Spans.t -> Sparql.Algebra.t -> t
(** Rewrite bottom-up. Satisfiability subcalls each run under a private
    budget of [decision_fuel] steps (default [20_000]); an exhausted or
    undecided subcall simply leaves that subtree alone, so [run] is
    total and never raises. [spans] (from
    {!Sparql.Parser.parse_spanned}) locates the rewrites; without it
    diagnostics carry dummy spans. Unchanged subtrees are returned
    physically intact, so span lookups on the residual still resolve. *)

val residual_vars_dropped : original:Sparql.Algebra.t -> t -> Rdf.Variable.Set.t
(** Variables of the original pattern that no longer occur in the
    residual (they were only bound in pruned subtrees, so no solution
    ever bound them anyway). Useful for keeping result heads faithful. *)
