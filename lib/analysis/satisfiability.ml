open Rdf
module A = Sparql.Algebra
module C = Sparql.Condition
module Budget = Resource.Budget

type verdict =
  | Sat of { witness : Graph.t }
  | Unsat
  | Unknown of string

let verdict_name = function
  | Sat _ -> "sat"
  | Unsat -> "unsat"
  | Unknown _ -> "unknown"

let pp ppf = function
  | Sat { witness } ->
      Fmt.pf ppf "sat (witness: %d triple(s))" (Graph.cardinal witness)
  | Unsat -> Fmt.pf ppf "unsat"
  | Unknown why -> Fmt.pf ppf "unknown (%s)" why

(* Equality atoms past this stay undecided: the assignment enumeration is
   2^atoms, and a filter with that many independent equalities is not a
   query anyone wrote — report Unknown instead of burning the budget. *)
let max_atoms = 16

(* ------------------------------------------------------------------ *)
(* Scenarios                                                           *)
(* ------------------------------------------------------------------ *)

(* One choice of matched OPT arms / UNION branches: the mandatory
   triples, the variables bound under that choice, and each FILTER
   condition paired with the bound set in scope at its point. *)
type scenario = {
  sc_triples : Triple.t list;
  sc_bound : Variable.Set.t;
  sc_filters : (C.t * Variable.Set.t) list;
}

let merge budget a b =
  Budget.tick budget;
  {
    sc_triples = a.sc_triples @ b.sc_triples;
    sc_bound = Variable.Set.union a.sc_bound b.sc_bound;
    sc_filters = a.sc_filters @ b.sc_filters;
  }

let rec scenarios budget p =
  Budget.tick budget;
  match p with
  | A.Triple t ->
      [ { sc_triples = [ t ]; sc_bound = Triple.vars t; sc_filters = [] } ]
  | A.And (a, b) ->
      let sa = scenarios budget a and sb = scenarios budget b in
      List.concat_map (fun x -> List.map (merge budget x) sb) sa
  | A.Union (a, b) -> scenarios budget a @ scenarios budget b
  | A.Opt (a, b) ->
      (* skip the arm, or take it: scen(a) ∪ scen(a AND b) *)
      let sa = scenarios budget a and sb = scenarios budget b in
      sa @ List.concat_map (fun x -> List.map (merge budget x) sb) sa
  | A.Filter (q, c) ->
      List.map
        (fun s -> { s with sc_filters = (c, s.sc_bound) :: s.sc_filters })
        (scenarios budget q)
  | A.Select (vars, q) ->
      (* projection narrows what later (outer) filters may see; the
         triples stay mandatory *)
      List.map
        (fun s -> { s with sc_bound = Variable.Set.inter s.sc_bound vars })
        (scenarios budget q)

(* ------------------------------------------------------------------ *)
(* Per-scenario constraint solving                                     *)
(* ------------------------------------------------------------------ *)

(* Simplify a condition against the bound set at its point: BOUND(v)
   becomes a constant, and an equality with an unbound side is false
   ([Condition.satisfies] semantics — no SPARQL error algebra here).
   What remains is a boolean combination of equalities over bound
   variables and constants. *)
type simplified = Strue | Sfalse | Residual of C.t

let rec simplify bound = function
  | C.Bound v -> if Variable.Set.mem v bound then Strue else Sfalse
  | C.Eq (a, b) -> (
      let grounded = function
        | Rdf.Term.Var v -> Variable.Set.mem v bound
        | Rdf.Term.Iri _ -> true
      in
      if not (grounded a && grounded b) then Sfalse
      else
        match (a, b) with
        | Rdf.Term.Iri i, Rdf.Term.Iri j ->
            if Iri.equal i j then Strue else Sfalse
        | _ ->
            if Rdf.Term.equal a b then Strue else Residual (C.Eq (a, b)))
  | C.Not c -> (
      match simplify bound c with
      | Strue -> Sfalse
      | Sfalse -> Strue
      | Residual c -> Residual (C.Not c))
  | C.And (a, b) -> (
      match (simplify bound a, simplify bound b) with
      | Sfalse, _ | _, Sfalse -> Sfalse
      | Strue, x | x, Strue -> x
      | Residual a, Residual b -> Residual (C.And (a, b)))
  | C.Or (a, b) -> (
      match (simplify bound a, simplify bound b) with
      | Strue, _ | _, Strue -> Strue
      | Sfalse, x | x, Sfalse -> x
      | Residual a, Residual b -> Residual (C.Or (a, b)))

(* The distinct equality atoms of residual conditions, orientation
   normalized so [?x = ?y] and [?y = ?x] share an atom. *)
let atom_of a b = if Rdf.Term.compare a b <= 0 then (a, b) else (b, a)

let rec collect_atoms acc = function
  | C.Eq (a, b) ->
      let atom = atom_of a b in
      if List.exists (fun (x, y) ->
             Rdf.Term.equal x (fst atom) && Rdf.Term.equal y (snd atom))
           acc
      then acc
      else atom :: acc
  | C.Not c -> collect_atoms acc c
  | C.And (a, b) | C.Or (a, b) -> collect_atoms (collect_atoms acc a) b
  | C.Bound _ -> acc

(* Evaluate a residual condition under a truth assignment of the atoms. *)
let rec eval_residual lookup = function
  | C.Eq (a, b) -> lookup (atom_of a b)
  | C.Not c -> not (eval_residual lookup c)
  | C.And (a, b) -> eval_residual lookup a && eval_residual lookup b
  | C.Or (a, b) -> eval_residual lookup a || eval_residual lookup b
  | C.Bound _ -> assert false (* simplified away *)

(* Union-find over the terms of the atoms. *)
type uf = { parent : int array; index : (Rdf.Term.t * int) list }

let uf_of_atoms atoms =
  let index = ref [] and n = ref 0 in
  let intern t =
    match
      List.find_opt (fun (t', _) -> Rdf.Term.equal t t') !index
    with
    | Some (_, i) -> i
    | None ->
        let i = !n in
        index := (t, i) :: !index;
        incr n;
        i
  in
  Array.iter (fun (a, b) -> ignore (intern a); ignore (intern b)) atoms;
  { parent = Array.init !n Fun.id; index = !index }

let rec uf_find u i = if u.parent.(i) = i then i else uf_find u u.parent.(i)

let uf_union u i j =
  let ri = uf_find u i and rj = uf_find u j in
  if ri <> rj then u.parent.(ri) <- rj

let uf_index u t =
  match List.find_opt (fun (t', _) -> Rdf.Term.equal t t') u.index with
  | Some (_, i) -> i
  | None -> invalid_arg "Satisfiability: term not interned"

(* Apply the assignment's equalities; check that no class acquires two
   distinct constants and that every disequality separates classes —
   over the infinite IRI domain that is the whole theory. *)
let theory_consistent atoms mask =
  let u = uf_of_atoms atoms in
  Array.iteri
    (fun i (a, b) ->
      if mask land (1 lsl i) <> 0 then uf_union u (uf_index u a) (uf_index u b))
    atoms;
  let constants_ok =
    (* two distinct IRIs are distinct nodes; merged roots mean the
       equalities forced them equal *)
    let pinned = Hashtbl.create 8 in
    List.for_all
      (fun (t, i) ->
        match t with
        | Rdf.Term.Var _ -> true
        | Rdf.Term.Iri iri -> (
            let root = uf_find u i in
            match Hashtbl.find_opt pinned root with
            | Some other -> Iri.equal other iri
            | None ->
                Hashtbl.add pinned root iri;
                true))
      u.index
  in
  constants_ok
  && Array.for_all Fun.id
       (Array.mapi
          (fun i (a, b) ->
            mask land (1 lsl i) <> 0
            || uf_find u (uf_index u a) <> uf_find u (uf_index u b))
          atoms)

(* ------------------------------------------------------------------ *)
(* Witness construction                                                *)
(* ------------------------------------------------------------------ *)

(* IRIs already claimed by the pattern: fresh witness nodes must avoid
   them so "fresh" really means "distinct from everything constrained". *)
let claimed_iris p =
  let of_triples =
    List.fold_left
      (fun acc t -> Iri.Set.union acc (Triple.iris t))
      Iri.Set.empty (A.triples p)
  in
  let rec of_cond acc = function
    | C.Bound _ -> acc
    | C.Eq (a, b) ->
        let add acc = function
          | Rdf.Term.Iri i -> Iri.Set.add i acc
          | Rdf.Term.Var _ -> acc
        in
        add (add acc a) b
    | C.Not c -> of_cond acc c
    | C.And (a, b) | C.Or (a, b) -> of_cond (of_cond acc a) b
  in
  let rec walk acc = function
    | A.Triple _ -> acc
    | A.And (a, b) | A.Opt (a, b) | A.Union (a, b) -> walk (walk acc a) b
    | A.Filter (q, c) -> walk (of_cond acc c) q
    | A.Select (_, q) -> walk acc q
  in
  walk of_triples p

let fresh_iri ~avoid counter =
  let rec go () =
    let candidate = Iri.of_string (Printf.sprintf "urn:wdsat:w%d" !counter) in
    incr counter;
    if Iri.Set.mem candidate avoid then go () else candidate
  in
  go ()

(* A concrete graph realizing a consistent (scenario, assignment):
   every triple variable gets its equality-class representative — the
   class constant when pinned, a per-class fresh IRI otherwise — and
   the graph is the image of the scenario's triples. *)
let witness_graph ~avoid scenario atoms mask =
  let u = uf_of_atoms atoms in
  Array.iteri
    (fun i (a, b) ->
      if mask land (1 lsl i) <> 0 then uf_union u (uf_index u a) (uf_index u b))
    atoms;
  let counter = ref 0 in
  let class_rep = Hashtbl.create 8 in
  let pinned root =
    List.find_map
      (fun (t, i) ->
        match t with
        | Rdf.Term.Iri iri when uf_find u i = root -> Some iri
        | _ -> None)
      u.index
  in
  let rep_of_root root =
    match Hashtbl.find_opt class_rep root with
    | Some iri -> iri
    | None ->
        let iri =
          match pinned root with
          | Some iri -> iri
          | None -> fresh_iri ~avoid counter
        in
        Hashtbl.add class_rep root iri;
        iri
  in
  let var_values = Hashtbl.create 8 in
  let value_of v =
    match Hashtbl.find_opt var_values v with
    | Some iri -> iri
    | None ->
        let iri =
          match
            List.find_opt
              (fun (t, _) -> Rdf.Term.equal t (Rdf.Term.Var v))
              u.index
          with
          | Some (_, i) -> rep_of_root (uf_find u i)
          | None -> fresh_iri ~avoid counter
        in
        Hashtbl.add var_values v iri;
        iri
  in
  let ground t =
    Triple.map
      (function
        | Rdf.Term.Var v -> Rdf.Term.Iri (value_of v)
        | Rdf.Term.Iri _ as c -> c)
      t
  in
  Graph.of_triples (List.map ground scenario.sc_triples)

(* ------------------------------------------------------------------ *)
(* The decision procedure                                              *)
(* ------------------------------------------------------------------ *)

type scenario_outcome =
  | Witness of Graph.t
  | Consistent_unverified
  | Inconsistent
  | Undecided of string

let solve_scenario budget pattern ~avoid scenario =
  let residuals =
    List.fold_left
      (fun acc (c, bound) ->
        match acc with
        | Error _ -> acc
        | Ok residuals -> (
            match simplify bound c with
            | Strue -> acc
            | Sfalse -> Error `Contradiction
            | Residual r -> Ok (r :: residuals)))
      (Ok []) scenario.sc_filters
  in
  match residuals with
  | Error `Contradiction -> Inconsistent
  | Ok residuals -> (
      let atoms =
        Array.of_list (List.fold_left collect_atoms [] residuals)
      in
      let k = Array.length atoms in
      if k > max_atoms then
        Undecided
          (Printf.sprintf
             "a scenario has %d equality atoms (procedure caps at %d)" k
             max_atoms)
      else begin
        let consistent = ref false in
        let verified = ref None in
        let mask = ref 0 in
        while !verified = None && !mask < 1 lsl k do
          Budget.tick budget;
          let m = !mask in
          let lookup atom =
            let rec idx i =
              if i >= k then invalid_arg "Satisfiability: unknown atom"
              else
                let x, y = atoms.(i) in
                if Rdf.Term.equal x (fst atom) && Rdf.Term.equal y (snd atom)
                then i
                else idx (i + 1)
            in
            m land (1 lsl idx 0) <> 0
          in
          if
            List.for_all (eval_residual lookup) residuals
            && theory_consistent atoms m
          then begin
            consistent := true;
            (* the candidate witness can accidentally re-match a skipped
               OPT arm and flip a filter — only the reference evaluator's
               word counts *)
            let g = witness_graph ~avoid scenario atoms m in
            if not (Sparql.Mapping.Set.is_empty (Sparql.Eval.eval ~budget pattern g))
            then verified := Some g
          end;
          mask := m + 1
        done;
        match !verified with
        | Some g -> Witness g
        | None -> if !consistent then Consistent_unverified else Inconsistent
      end)

let decide ?(budget = Budget.unlimited) pattern =
  Budget.with_phase budget "satisfiability" @@ fun () ->
  let avoid = claimed_iris pattern in
  let all = scenarios budget pattern in
  let consistent_unverified = ref false in
  let undecided = ref None in
  let rec first = function
    | [] -> None
    | s :: rest -> (
        match solve_scenario budget pattern ~avoid s with
        | Witness g -> Some (Sat { witness = g })
        | Consistent_unverified ->
            consistent_unverified := true;
            first rest
        | Undecided why ->
            if !undecided = None then undecided := Some why;
            first rest
        | Inconsistent -> first rest)
  in
  match first all with
  | Some v -> v
  | None -> (
      match !undecided with
      | Some why -> Unknown why
      | None ->
          if !consistent_unverified then
            Unknown "consistent scenarios exist but no witness verified"
          else Unsat)

let decide_quietly ~fuel pattern =
  match decide ~budget:(Budget.make ~fuel ()) pattern with
  | v -> v
  | exception Budget.Exhausted { spent; _ } ->
      Unknown (Printf.sprintf "budget exhausted after %d steps" spent)
