(** Store-independent satisfiability of patterns with BOUND/equality
    FILTERs, after Zhang & Van den Bussche ("On the satisfiability problem
    for SPARQL patterns"): a pattern is satisfiable iff {e some} graph
    gives it a solution.

    The procedure enumerates {e scenarios} — one per choice of matched
    OPTIONAL arms and UNION branches: the mandatory triples, the variables
    bound under that choice, and every FILTER condition paired with the
    bound set {e at its point} (a filter inside an optional arm never sees
    variables bound only by later arms). Each scenario's conditions are
    then decided by constraint propagation: BOUND atoms collapse against
    the local bound set, the remaining equality atoms are solved by
    truth-assignment enumeration over a union-find with disequality and
    distinct-constant checks — complete because the IRI domain is
    infinite, so distinct classes can always be separated.

    - {b Unsat} is sound and complete unconditionally: every real solution
      of the pattern on any graph induces a consistent scenario, so if
      every scenario is inconsistent no graph has a solution.
    - {b Sat} is certified by construction: a consistent scenario yields a
      candidate witness graph (class representatives, fresh IRIs for
      unconstrained classes), which is only reported after the reference
      evaluator {!Sparql.Eval.eval} confirms a solution on it. The check
      is necessary: a consistent skip-scenario of an OPTIONAL can be
      accidentally re-matched by the constructed witness, e.g.
      [FILTER(OPT({?x p ?y},{?x p ?z}), !BOUND(?z))] is unsatisfiable even
      though its skip-scenario is consistent.
    - {b Unknown} is the honest remainder: consistent scenarios exist but
      none verified, or a scenario's equality structure exceeds the
      internal atom cap. Callers must not treat it as either verdict. *)

type verdict =
  | Sat of { witness : Rdf.Graph.t }
      (** satisfiable; [witness] is a graph on which the reference
          evaluator returns at least one solution (re-checked in tests) *)
  | Unsat  (** no graph whatsoever yields a solution *)
  | Unknown of string
      (** undecided, with the reason; treat as "possibly satisfiable" *)

val decide : ?budget:Resource.Budget.t -> Sparql.Algebra.t -> verdict
(** Decide satisfiability. Store-independent: the verdict depends only on
    the pattern. Ticks [budget] per scenario, per scenario merge and per
    truth assignment under phase ["satisfiability"], raising
    {!Resource.Budget.Exhausted} like every exponential kernel — the
    scenario count is exponential in the OPT/UNION nesting and the
    assignment count in the number of equality atoms (capped; beyond the
    cap the scenario reports {!Unknown} instead of burning). *)

val decide_quietly : fuel:int -> Sparql.Algebra.t -> verdict
(** {!decide} under a private fuel slice, with exhaustion folded into
    [Unknown] — the total, never-raising form the lint rule and the
    pruner use. *)

val verdict_name : verdict -> string
(** ["sat"], ["unsat"], ["unknown"] — the JSON encoding. *)

val pp : verdict Fmt.t
