open Tgraphs

type node_est = { node : Wdpt.Pattern_tree.node; ctw_upper : int }

type tree_est = {
  tree_index : int;
  node_ests : node_est list;
  bw_upper : int;
}

type t = {
  trees : tree_est list;
  dw_upper : int;
  dw_exact : int option;
}

(* Heuristic bound on [tw(S, X)], with the paper's "1 when the Gaifman
   graph on vars(S) \ X has no vertices or no edges" convention (matching
   Gtgraph.tw), but using the polynomial elimination heuristics instead of
   the exact search. *)
let gt_tw_upper g =
  let ug, _ = Gaifman.graph (Gtgraph.x g) (Gtgraph.s g) in
  if Graphtheory.Ugraph.n ug = 0 || Graphtheory.Ugraph.m ug = 0 then 1
  else max 1 (Graphtheory.Treewidth.upper_bound ug)

let estimate_tree tree_index tree =
  let node_ests =
    List.filter_map
      (fun n ->
        if n = Wdpt.Pattern_tree.root then None
        else
          Some
            {
              node = n;
              ctw_upper =
                gt_tw_upper (Wd_core.Branch_treewidth.branch_gtgraph tree n);
            })
      (Wdpt.Pattern_tree.nodes tree)
  in
  let bw_upper =
    List.fold_left (fun acc e -> max acc e.ctw_upper) 1 node_ests
  in
  { tree_index; node_ests; bw_upper }

let estimate ?(budget = Resource.Budget.unlimited) ?(try_exact = true) forest =
  let trees = List.mapi estimate_tree forest in
  let dw_upper = List.fold_left (fun acc t -> max acc t.bw_upper) 1 trees in
  let dw_exact =
    if try_exact then
      Wdsparql_error.attempt (fun () ->
          Wd_core.Domination_width.of_forest ~budget forest)
    else None
  in
  { trees; dw_upper; dw_exact }

let hints t =
  { Wd_core.Engine.dw_exact = t.dw_exact; dw_upper = Some t.dw_upper }

let to_json t =
  Json.Obj
    [
      ( "dw_exact",
        match t.dw_exact with Some k -> Json.Int k | None -> Json.Null );
      ("dw_upper", Json.Int t.dw_upper);
      ( "trees",
        Json.List
          (List.map
             (fun tree ->
               Json.Obj
                 [
                   ("tree", Json.Int tree.tree_index);
                   ("bw_upper", Json.Int tree.bw_upper);
                   ( "nodes",
                     Json.List
                       (List.map
                          (fun e ->
                            Json.Obj
                              [
                                ("node", Json.Int e.node);
                                ("ctw_upper", Json.Int e.ctw_upper);
                              ])
                          tree.node_ests) );
                 ])
             t.trees) );
    ]

let pp ppf t =
  (match t.dw_exact with
  | Some k -> Fmt.pf ppf "dw = %d (exact), static bound dw <= %d" k t.dw_upper
  | None -> Fmt.pf ppf "dw <= %d (static bound; exact not computed)" t.dw_upper);
  List.iter
    (fun tree ->
      Fmt.pf ppf "@.tree %d: bw <= %d" tree.tree_index tree.bw_upper;
      List.iter
        (fun e -> Fmt.pf ppf "@.  node %d: ctw <= %d" e.node e.ctw_upper)
        tree.node_ests)
    t.trees
