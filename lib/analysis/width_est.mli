(** Static width estimates: polynomial-time upper bounds on the width
    measures, per pattern-forest node, plus (budget permitting) the exact
    domination width — packaged as {!Wd_core.Engine.hints} so
    [Engine.plan] can skip its own exponential width computation.

    Soundness chain for the bounds: for each non-root node [n],
    [ctw(S^br_n, X^br_n) = tw(core(S^br_n, X^br_n)) ≤ tw(S^br_n, X^br_n)]
    (the core is a substructure), which the min-fill/min-degree heuristics
    of {!Graphtheory.Treewidth.upper_bound} bound from above. By
    Proposition 5 the per-tree maximum bounds [bw = dw] of each tree, and
    [dw] of a forest is the maximum over its trees. *)

type node_est = {
  node : Wdpt.Pattern_tree.node;
  ctw_upper : int;  (** heuristic bound on [ctw(S^br_n, X^br_n)], ≥ 1 *)
}

type tree_est = {
  tree_index : int;
  node_ests : node_est list;  (** non-root nodes, ascending *)
  bw_upper : int;  (** max over nodes, ≥ 1 — bounds the tree's [bw = dw] *)
}

type t = {
  trees : tree_est list;
  dw_upper : int;  (** static bound on [dw] of the forest, ≥ 1 *)
  dw_exact : int option;
      (** exact domination width, when the exact computation finished
          within the budget *)
}

val estimate :
  ?budget:Resource.Budget.t -> ?try_exact:bool -> Wdpt.Pattern_forest.t -> t
(** The static bounds are polynomial and always computed; the exact
    domination width is attempted under [budget] (default: attempted,
    unlimited) and degrades to [None] on exhaustion. *)

val hints : t -> Wd_core.Engine.hints

val to_json : t -> Json.t

val pp : t Fmt.t
