open Tgraphs

let branch_gtgraph tree n =
  if n = Wdpt.Pattern_tree.root then
    invalid_arg "Branch_treewidth.branch_gtgraph: the root has no branch";
  let branch = Wdpt.Pattern_tree.branch tree n in
  let branch_pat =
    List.fold_left
      (fun acc m -> Tgraph.union acc (Wdpt.Pattern_tree.pat tree m))
      Tgraph.empty branch
  in
  let s = Tgraph.union (Wdpt.Pattern_tree.pat tree n) branch_pat in
  Gtgraph.make s (Tgraph.vars branch_pat)

let of_tree ?budget tree =
  List.fold_left
    (fun acc n ->
      if n = Wdpt.Pattern_tree.root then acc
      else max acc (Cores.ctw ?budget (branch_gtgraph tree n)))
    1 (Wdpt.Pattern_tree.nodes tree)

let of_pattern ?budget p = of_tree ?budget (Wdpt.Translate.tree_of_algebra p)
