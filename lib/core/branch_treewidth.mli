(** Branch treewidth (Definition 3): for a wdPT [T] and non-root node [n],
    let [S^br_n = pat(n) ∪ ⋃_{n' ∈ B_n} pat(n')] and
    [X^br_n = vars(⋃_{n' ∈ B_n} pat(n'))], where [B_n] is the root-to-parent
    branch of [n]. Then [bw(T)] is the least [k ≥ 1] with
    [ctw(S^br_n, X^br_n) ≤ k] for all non-root [n].

    By Proposition 5, [bw] coincides with domination width on UNION-free
    well-designed patterns, so by Corollary 1 it characterises their
    tractability. *)

open Tgraphs

val branch_gtgraph : Wdpt.Pattern_tree.t -> Wdpt.Pattern_tree.node -> Gtgraph.t
(** [(S^br_n, X^br_n)] for a non-root node [n]. Raises [Invalid_argument]
    on the root. *)

val of_tree : ?budget:Resource.Budget.t -> Wdpt.Pattern_tree.t -> int
(** [bw(T)]. Always ≥ 1. *)

val of_pattern : ?budget:Resource.Budget.t -> Sparql.Algebra.t -> int
(** [bw(P)] for a UNION-free well-designed pattern.
    Raises {!Wdpt.Translate.Not_well_designed} otherwise. *)
