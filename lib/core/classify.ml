type regime =
  | Ptime of int
  | Intractable_frontier of int
  | Not_well_designed
  | Outside_core_fragment
  | Width_unknown of int

type t = {
  well_designed : bool;
  union_free : bool;
  trees : int;
  nodes : int;
  domination_width : int option;
  branch_treewidth : int option;
  local_width : int option;
  regime : regime;
}

let classify ?(budget = Resource.Budget.unlimited) ?(frontier = 3) p =
  let union_free = Sparql.Well_designed.is_union_free p in
  if not (Sparql.Algebra.is_core p) then
    {
      well_designed = Sparql.Well_designed.is_well_designed p;
      union_free;
      trees = 0;
      nodes = 0;
      domination_width = None;
      branch_treewidth = None;
      local_width = None;
      regime = Outside_core_fragment;
    }
  else if not (Sparql.Well_designed.is_well_designed p) then
    {
      well_designed = false;
      union_free;
      trees = 0;
      nodes = 0;
      domination_width = None;
      branch_treewidth = None;
      local_width = None;
      regime = Not_well_designed;
    }
  else begin
    let forest = Wdpt.Pattern_forest.of_algebra p in
    (* Each width measure is exponential to compute exactly; under a
       budget, a measure that runs out simply reports [None] rather than
       aborting the whole classification. *)
    let dw =
      Wdsparql_error.attempt (fun () -> Domination_width.of_forest ~budget forest)
    in
    let bw =
      match forest with
      | [ tree ] ->
          Wdsparql_error.attempt (fun () -> Branch_treewidth.of_tree ~budget tree)
      | _ -> None
    in
    let lt =
      Wdsparql_error.attempt (fun () ->
          Local_tractability.width_of_forest ~budget forest)
    in
    let regime =
      match dw with
      | Some dw -> if dw <= frontier then Ptime dw else Intractable_frontier dw
      | None -> Width_unknown (Domination_width.cheap_upper_bound forest)
    in
    {
      well_designed = true;
      union_free;
      trees = List.length forest;
      nodes = Wdpt.Pattern_forest.size forest;
      domination_width = dw;
      branch_treewidth = bw;
      local_width = lt;
      regime;
    }
  end

let pp ppf t =
  let opt ppf = function None -> Fmt.string ppf "-" | Some k -> Fmt.int ppf k in
  Fmt.pf ppf
    "@[<v>well-designed: %b@ union-free: %b@ wdpf: %d tree(s), %d node(s)@ \
     domination width: %a@ branch treewidth: %a@ local width: %a@ regime: %a@]"
    t.well_designed t.union_free t.trees t.nodes opt t.domination_width opt
    t.branch_treewidth opt t.local_width
    (fun ppf -> function
      | Ptime k ->
          Fmt.pf ppf "PTIME (Theorem 1 with %d+1 pebbles)" k
      | Intractable_frontier k ->
          Fmt.pf ppf
            "domination width %d — beyond the tractability frontier for \
             classes of unbounded width (Theorem 2)"
            k
      | Not_well_designed -> Fmt.string ppf "not well-designed (coNP-hard territory)"
      | Outside_core_fragment ->
          Fmt.string ppf
            "uses FILTER/SELECT — outside the core fragment; the dichotomy \
             does not apply (Section 5)"
      | Width_unknown ub ->
          Fmt.pf ppf
            "exact width computation exhausted its budget; dw <= %d by the \
             polynomial treewidth bound"
            ub)
    t.regime
