(** One-stop structural analysis of a graph pattern: all the width measures
    of the paper and the complexity regime they predict. *)

type regime =
  | Ptime of int
      (** Bounded domination width [k]: members of a class with this bound
          evaluate in polynomial time via the (k+1)-pebble algorithm
          (Theorem 1). *)
  | Intractable_frontier of int
      (** The measured domination width — large widths signal that a class
          containing patterns like this one of unbounded width is not
          polynomial-time evaluable unless FPT = W[1] (Theorems 2–3). *)
  | Not_well_designed
  | Outside_core_fragment
      (** Uses FILTER or SELECT: Section 5 shows the dichotomy fails there,
          so no width-based regime applies; evaluation still works through
          the reference semantics. *)
  | Width_unknown of int
      (** The exact (exponential) width computations exhausted their
          budget. The payload is the polynomial-time treewidth upper bound
          on the domination width
          ({!Domination_width.cheap_upper_bound}). *)

type t = {
  well_designed : bool;
  union_free : bool;
  trees : int;  (** number of trees in [wdpf(P)] *)
  nodes : int;  (** total nodes in [wdpf(P)] *)
  domination_width : int option;
  branch_treewidth : int option;  (** UNION-free patterns only *)
  local_width : int option;
      (** least bound witnessing local tractability of [{P}] *)
  regime : regime;
}

val classify :
  ?budget:Resource.Budget.t -> ?frontier:int -> Sparql.Algebra.t -> t
(** [frontier] (default 3) is the domination width above which we flag the
    pattern as on the intractable side of the dichotomy. Under a [budget],
    width measures that run out of resources degrade to [None] (and the
    regime to {!Width_unknown}) instead of raising. *)

val pp : t Fmt.t
