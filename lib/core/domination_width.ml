open Tgraphs
module Budget = Resource.Budget

let dominated_with_ctws ?budget with_ctw k =
  let dominators = List.filter (fun (c, _) -> c <= k) with_ctw in
  List.for_all
    (fun (c, g) ->
      c <= k
      || List.exists (fun (_, g') -> Gtgraph.maps_to ?budget g' g) dominators)
    with_ctw

let dominated_at ?budget family k =
  dominated_with_ctws ?budget
    (List.map (fun g -> (Cores.ctw ?budget g, g)) family)
    k

let domination_level ?budget family =
  match family with
  | [] -> 1
  | _ ->
      let with_ctw = List.map (fun g -> (Cores.ctw ?budget g, g)) family in
      let candidates =
        List.sort_uniq compare (1 :: List.map fst with_ctw)
      in
      let rec first = function
        | [] -> List.fold_left (fun acc (c, _) -> max acc c) 1 with_ctw
        | k :: rest ->
            if dominated_with_ctws ?budget with_ctw k then k else first rest
      in
      first candidates

let of_subtree ?budget forest subtree =
  domination_level ?budget (Wdpt.Children_assignment.gtg forest subtree)

let subtrees_of ?budget forest =
  List.concat
    (List.mapi
       (fun i tree ->
         List.map (fun st -> (i, st)) (Wdpt.Subtree.all ?budget tree))
       forest)

let of_forest ?(budget = Budget.unlimited) forest =
  Budget.with_phase budget "domination-width" @@ fun () ->
  List.fold_left
    (fun acc (_, st) ->
      Budget.tick budget;
      max acc (of_subtree ~budget forest st))
    1
    (subtrees_of ~budget forest)

let at_most ?(budget = Budget.unlimited) forest k =
  Budget.with_phase budget "domination-width" @@ fun () ->
  List.for_all
    (fun (_, st) ->
      Budget.tick budget;
      dominated_at ~budget (Wdpt.Children_assignment.gtg forest st) k)
    (subtrees_of ~budget forest)

let of_pattern ?budget p = of_forest ?budget (Wdpt.Pattern_forest.of_algebra p)

(* Conservative fallback when the exact computation is too expensive:
   dw(F) ≤ max ctw over GtG members ≤ max tw over members, and every
   member's pattern is a subgraph of its tree's full pattern, so the
   heuristic treewidth upper bound of each tree's whole Gaifman graph
   (existential variables only, which can only shrink it further) bounds
   them all. Polynomial: two elimination heuristics per tree. *)
let cheap_upper_bound forest =
  List.fold_left
    (fun acc tree ->
      let pat = Wdpt.Subtree.pat (Wdpt.Subtree.full tree) in
      let gaifman, _ = Gaifman.graph Rdf.Variable.Set.empty pat in
      let ub =
        if
          Graphtheory.Ugraph.n gaifman = 0 || Graphtheory.Ugraph.m gaifman = 0
        then 1
        else max 1 (Graphtheory.Treewidth.upper_bound gaifman)
      in
      max acc ub)
    1 forest

type profile = {
  subtree_members : int list;
  tree_index : int;
  gtg_ctws : int list;
  level : int;
}

let profile ?budget forest =
  List.map
    (fun (i, st) ->
      let gtg = Wdpt.Children_assignment.gtg forest st in
      {
        subtree_members = Wdpt.Subtree.members st;
        tree_index = i;
        gtg_ctws = List.map (Cores.ctw ?budget) gtg;
        level = domination_level ?budget gtg;
      })
    (subtrees_of ?budget forest)
