(** Domination width (Definitions 1 and 2) — the paper's new width measure,
    which characterises the polynomial-time evaluable classes of
    well-designed patterns (Theorem 3).

    For each subtree [T] of the forest, [GtG(T)] must be [k]-dominated:
    its members of [ctw ≤ k] must homomorphically dominate the rest. The
    domination width is the least such [k] working for every subtree.

    The computation below is a direct implementation and is exponential in
    the query size (the recognition problem has a Πᵖ₂ upper bound and is
    NP-hard already for UNION-free patterns, Section 5); queries are small
    so this is fine in practice. *)

open Tgraphs

val dominated_at : ?budget:Resource.Budget.t -> Gtgraph.t list -> int -> bool
(** [dominated_at g k]: is the family [k]-dominated? *)

val domination_level : ?budget:Resource.Budget.t -> Gtgraph.t list -> int
(** The least [k ≥ 1] at which the family is [k]-dominated. *)

val of_subtree :
  ?budget:Resource.Budget.t -> Wdpt.Pattern_forest.t -> Wdpt.Subtree.t -> int
(** [domination_level (GtG T)]. *)

val of_forest : ?budget:Resource.Budget.t -> Wdpt.Pattern_forest.t -> int
(** [dw(F)]: maximum over all subtrees of all trees. Always ≥ 1. *)

val at_most : ?budget:Resource.Budget.t -> Wdpt.Pattern_forest.t -> int -> bool
(** [at_most f k] decides [dw(f) ≤ k] — the recognition problem of
    Section 5 — short-circuiting on the first subtree whose [GtG] is not
    [k]-dominated, which is much cheaper than computing [dw] exactly when
    the answer is negative. *)

val of_pattern : ?budget:Resource.Budget.t -> Sparql.Algebra.t -> int
(** [dw(P) = dw(wdpf(P))].
    Raises {!Wdpt.Translate.Not_well_designed} if not well-designed. *)

val cheap_upper_bound : Wdpt.Pattern_forest.t -> int
(** A polynomial-time conservative bound on [dw(F)]: the heuristic
    treewidth upper bound of each tree's full Gaifman graph (dw ≤ max
    member ctw ≤ max member tw ≤ this). The degradation target when
    {!of_forest} exhausts its budget — running the pebble algorithm at
    this [k] is still exact, only more expensive than at the true dw. *)

type profile = {
  subtree_members : int list;  (** node ids of the subtree *)
  tree_index : int;  (** which tree of the forest it lives in *)
  gtg_ctws : int list;  (** [ctw] of each member of [GtG(T)] *)
  level : int;  (** least [k] at which [GtG(T)] is k-dominated *)
}

val profile : ?budget:Resource.Budget.t -> Wdpt.Pattern_forest.t -> profile list
(** Per-subtree diagnostics, used by the width-landscape experiment. *)
