module Budget = Resource.Budget

type algorithm =
  | Naive
  | Pebble of int

type width_source =
  | Exact
  | From_hint of { exact : bool }
  | Fallback_upper_bound of { phase : string; spent : int }

type hints = {
  dw_exact : int option;
  dw_upper : int option;
}

let no_hints = { dw_exact = None; dw_upper = None }

type plan = {
  pattern : Sparql.Algebra.t;
  forest : Wdpt.Pattern_forest.t;
  domination_width : int;
  width_source : width_source;
  algorithm : algorithm;
  optimize : bool;
  cache : Plan_cache.t;
}

let plan ?(budget = Budget.unlimited) ?(hints = no_hints) ?force
    ?(optimize = true) ?verdict_capacity ?plan_capacity pattern =
  let forest = Wdpt.Pattern_forest.of_algebra pattern in
  let domination_width, width_source =
    match hints.dw_exact with
    | Some dw ->
        (* The static analyzer already measured the exact width for this
           pattern; reuse it rather than re-running the exponential
           computation. *)
        (dw, From_hint { exact = true })
    | None -> (
        match Domination_width.of_forest ~budget forest with
        | dw -> (dw, Exact)
        | exception Budget.Exhausted { phase; spent } -> (
            (* Exact dw ran out of budget: degrade to a polynomial-time
               upper bound. dw(F) never exceeds it, so running the pebble
               game at this k stays exact — just possibly slower than at
               the true dw. A hinted bound (the analyzer's static
               branch-treewidth estimate) takes precedence over
               recomputing the treewidth heuristic. *)
            match hints.dw_upper with
            | Some ub -> (ub, From_hint { exact = false })
            | None ->
                ( Domination_width.cheap_upper_bound forest,
                  Fallback_upper_bound { phase; spent } )))
  in
  let algorithm =
    match force with Some a -> a | None -> Pebble domination_width
  in
  {
    pattern;
    forest;
    domination_width;
    width_source;
    algorithm;
    optimize;
    cache = Plan_cache.create ?verdict_capacity ?plan_capacity ();
  }

let check ?budget plan graph mu =
  match plan.algorithm with
  | Naive -> Naive_eval.check ?budget plan.forest graph mu
  | Pebble k ->
      Pebble_eval.check ?budget
        ~kernel:(Pebble_eval.Cached (Plan_cache.pebble plan.cache graph))
        ~k plan.forest graph mu

let solutions_stats ?budget ?domains plan graph =
  match plan.algorithm with
  | Naive -> (Wdpt.Semantics.solutions ?budget plan.forest graph, None)
  | Pebble k ->
      let answers =
        Enumerate.solutions ?budget ?domains ~maximality:(`Pebble k)
          ~optimize:(if plan.optimize then `On else `Off)
          ~cache:plan.cache plan.forest graph
      in
      (answers, Some (Plan_cache.stats plan.cache))

let solutions ?budget ?domains plan graph =
  fst (solutions_stats ?budget ?domains plan graph)

let count ?budget ?domains plan graph =
  Sparql.Mapping.Set.cardinal (solutions ?budget ?domains plan graph)

let pp_width_source ppf = function
  | Exact -> Fmt.string ppf "exact"
  | From_hint { exact = true } ->
      Fmt.string ppf "exact (from static analyzer hint, recomputation skipped)"
  | From_hint { exact = false } ->
      Fmt.string ppf
        "upper bound (static analyzer hint; exact computation exhausted its \
         budget)"
  | Fallback_upper_bound { phase; spent } ->
      Fmt.pf ppf
        "upper bound (exact computation exhausted its budget in phase %s \
         after %d steps; degraded to the polynomial treewidth heuristic)"
        phase spent

let pp_plan ppf plan =
  Fmt.pf ppf
    "@[<v>query: %d triple pattern(s), %d tree(s)@ dw: %d (%a)@ algorithm: \
     %a@ optimizer: %s@]"
    (Sparql.Algebra.size plan.pattern)
    (List.length plan.forest) plan.domination_width pp_width_source
    plan.width_source
    (fun ppf -> function
      | Naive -> Fmt.string ppf "naive (exact homomorphism tests)"
      | Pebble k -> Fmt.pf ppf "pebble with k = %d (%d pebbles)" k (k + 1))
    plan.algorithm
    (if plan.optimize then "on (cost-based join orders, adaptive fail-first)"
     else "off (exact per-prefix rescoring)")
