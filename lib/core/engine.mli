(** One-stop evaluation facade: translate once, measure the domination
    width once, and dispatch every subsequent operation to the right
    algorithm. This is what the CLI and the examples use. *)

open Rdf

type algorithm =
  | Naive  (** exact homomorphism tests (exponential in the query) *)
  | Pebble of int  (** Theorem-1 algorithm with [k]+1 pebbles *)

type width_source =
  | Exact  (** the plan's width is the measured domination width *)
  | From_hint of { exact : bool }
      (** the width came from a static-analysis hint ({!hints}): the
          analyzer's exact measurement when [exact], its conservative
          static upper bound otherwise. Either way the exponential
          in-plan width computation was skipped. *)
  | Fallback_upper_bound of { phase : string; spent : int }
      (** exact domination width exhausted its budget (in [phase], after
          [spent] steps); the plan carries the polynomial-time treewidth
          upper bound of {!Domination_width.cheap_upper_bound} instead.
          Evaluation stays exact — the pebble game is sound and complete at
          any [k >= dw] — it may just be slower than at the true width. *)

type hints = {
  dw_exact : int option;
      (** exact domination width, measured by the static analyzer; when
          present, {!plan} uses it verbatim and skips its own
          (exponential) computation *)
  dw_upper : int option;
      (** conservative static upper bound on the domination width (the
          analyzer's per-branch treewidth estimate); used as the
          degradation target when the in-plan exact computation runs out
          of budget *)
}
(** Plan hints produced by static analysis ([Analysis.Width_est.hints]).
    Soundness contract: [dw_exact] must be the true domination width of
    the pattern and [dw_upper] an upper bound on it — the pebble
    algorithm is exact at any [k >= dw]. *)

val no_hints : hints

type plan = {
  pattern : Sparql.Algebra.t;
  forest : Wdpt.Pattern_forest.t;
  domination_width : int;
  width_source : width_source;
  algorithm : algorithm;
  optimize : bool;
      (** whether evaluation uses the cost-based planner: compiled
          per-node join orders from store statistics with adaptive
          fail-first refinement, and per-node pebble-vs-naive maximality
          choices ({!Enumerate.optimize} [`On] vs [`Off]). On by
          default; answers are identical either way (tested). *)
  cache : Plan_cache.t;
      (** compiled hom sources, cost-based node decisions, and pebble
          games, reused across every evaluation of this plan and
          invalidated when the graph's {!Rdf.Graph.epoch} changes *)
}

val plan :
  ?budget:Resource.Budget.t -> ?hints:hints -> ?force:algorithm ->
  ?optimize:bool -> ?verdict_capacity:int -> ?plan_capacity:int ->
  Sparql.Algebra.t -> plan
(** Build a plan. By default the pebble algorithm at the query's measured
    domination width is chosen (always exact); [force] overrides. A
    [hints.dw_exact] skips the width computation entirely; otherwise, if
    [budget] runs out during the (exponential) exact domination-width
    computation, the plan gracefully degrades to [hints.dw_upper] (when
    given) or a conservative treewidth upper bound, and records the
    downgrade in [width_source] so that {!pp_plan} and [Explain] surface
    it. [verdict_capacity] bounds the
    plan's memoized pebble verdicts ({!Pebble_cache.create});
    [plan_capacity] how many stores the plan caches compiled artefacts
    for at once ({!Plan_cache.create}, default 4). Raises
    {!Wdpt.Translate.Not_well_designed} on non-well-designed input. *)

val check :
  ?budget:Resource.Budget.t -> plan -> Graph.t -> Sparql.Mapping.t -> bool
(** [µ ∈ ⟦P⟧G] with the planned algorithm. *)

val solutions :
  ?budget:Resource.Budget.t -> ?domains:int -> plan -> Graph.t ->
  Sparql.Mapping.Set.t
(** All answers: the shared-prefix enumerator under [Pebble], the baseline
    enumerator under [Naive]. [domains] (default 1 — exactly the
    sequential path) runs the per-candidate maximality tests on a domain
    pool ({!Enumerate.solutions}); answers are identical for every
    value. *)

val solutions_stats :
  ?budget:Resource.Budget.t -> ?domains:int -> plan -> Graph.t ->
  Sparql.Mapping.Set.t * Plan_cache.stats option
(** Like {!solutions}, also returning the plan-cache counters accumulated
    over the plan's lifetime — pebble hits/misses/compiled/evictions,
    hom sources compiled, epoch invalidations ([None] under [Naive]) —
    what [--explain] prints. Parallel workers' counters are merged in
    before returning, so hits + misses always equals the number of
    lookups regardless of [domains]. Because the cache lives on the
    plan, repeated calls on the same graph reuse compiled artefacts and
    the counters keep growing. *)

val count : ?budget:Resource.Budget.t -> ?domains:int -> plan -> Graph.t -> int

val pp_width_source : width_source Fmt.t
val pp_plan : plan Fmt.t
