open Rdf
open Tgraphs
module Budget = Resource.Budget

type maximality = [ `Hom | `Pebble of int ]

let solutions_tree ?(budget = Budget.unlimited) ?(maximality = `Hom) ?kernel
    tree graph =
  let kernel =
    match maximality, kernel with
    | `Pebble _, None -> Pebble_eval.Cached (Pebble_cache.create graph)
    | _, Some kernel -> kernel
    | `Hom, None -> Pebble_eval.Term
  in
  Budget.with_phase budget "enumerate" @@ fun () ->
  let target = Graph.to_index graph in
  let results = ref Sparql.Mapping.Set.empty in
  let child_extends subtree mu n =
    match maximality with
    | `Hom -> Wdpt.Semantics.child_extends ~budget tree graph mu n
    | `Pebble k ->
        Pebble_eval.child_test ~budget ~kernel ~k tree graph mu subtree n
  in
  let maximal subtree mu =
    not (List.exists (child_extends subtree mu) (Wdpt.Subtree.children subtree))
  in
  (* homs: assignments with domain vars(subtree); last: the node id added
     most recently — children are only added in increasing id order so each
     subtree is reached exactly once, via its sorted member sequence. *)
  let rec go subtree homs last =
    List.iter
      (fun h ->
        match Sparql.Mapping.of_assignment h with
        | None -> ()
        | Some mu ->
            if maximal subtree mu then begin
              if not (Sparql.Mapping.Set.mem mu !results) then
                Budget.solution budget;
              results := Sparql.Mapping.Set.add mu !results
            end)
      homs;
    List.iter
      (fun n ->
        if n > last then begin
          Budget.tick budget;
          let child_pat = Wdpt.Pattern_tree.pat tree n in
          let homs' =
            List.concat_map
              (fun h ->
                List.map
                  (fun extension ->
                    Variable.Map.union (fun _ a _ -> Some a) h extension)
                  (Homomorphism.all ~budget ~pre:h ~source:child_pat ~target ()))
              homs
          in
          if homs' <> [] then go (Wdpt.Subtree.add_child subtree n) homs' n
        end)
      (Wdpt.Subtree.children subtree)
  in
  let root_subtree = Wdpt.Subtree.root_only tree in
  let root_homs =
    Homomorphism.all ~budget ~source:(Wdpt.Subtree.pat root_subtree) ~target ()
  in
  if root_homs <> [] then go root_subtree root_homs Wdpt.Pattern_tree.root;
  !results

let solutions ?budget ?maximality ?kernel forest graph =
  let kernel =
    (* One cache across the whole forest: trees share the graph and often
       the same child patterns, so games and verdicts carry over. *)
    match maximality, kernel with
    | Some (`Pebble _), None -> Some (Pebble_eval.Cached (Pebble_cache.create graph))
    | _, kernel -> kernel
  in
  List.fold_left
    (fun acc tree ->
      Sparql.Mapping.Set.union acc
        (solutions_tree ?budget ?maximality ?kernel tree graph))
    Sparql.Mapping.Set.empty forest

let count ?budget ?maximality ?kernel forest graph =
  Sparql.Mapping.Set.cardinal (solutions ?budget ?maximality ?kernel forest graph)
