open Rdf
open Tgraphs
module Budget = Resource.Budget
module Encoded_hom = Encoded.Encoded_hom

type maximality = [ `Hom | `Pebble of int ]
type join = [ `Encoded | `Term ]

type optimize = [ `Off | `Static | `On ]

(* ------------------------------------------------------------------ *)
(* Term-level join (the PR 2 baseline, kept for ablation A7)           *)
(* ------------------------------------------------------------------ *)

let solutions_tree_term ~budget ~maximality ~kernel tree graph =
  Budget.with_phase budget "enumerate" @@ fun () ->
  let target = Graph.to_index graph in
  let results = ref Sparql.Mapping.Set.empty in
  let child_extends subtree mu n =
    match maximality with
    | `Hom -> Wdpt.Semantics.child_extends ~budget tree graph mu n
    | `Pebble k ->
        Pebble_eval.child_test ~budget ~kernel ~k tree graph mu subtree n
  in
  let maximal subtree mu =
    not (List.exists (child_extends subtree mu) (Wdpt.Subtree.children subtree))
  in
  (* homs: assignments with domain vars(subtree); last: the node id added
     most recently — children are only added in increasing id order so each
     subtree is reached exactly once, via its sorted member sequence. *)
  let rec go subtree homs last =
    List.iter
      (fun h ->
        match Sparql.Mapping.of_assignment h with
        | None -> ()
        | Some mu ->
            if maximal subtree mu then begin
              if not (Sparql.Mapping.Set.mem mu !results) then
                Budget.solution budget;
              results := Sparql.Mapping.Set.add mu !results
            end)
      homs;
    List.iter
      (fun n ->
        if n > last then begin
          Budget.tick budget;
          let child_pat = Wdpt.Pattern_tree.pat tree n in
          let homs' =
            List.concat_map
              (fun h ->
                List.map
                  (fun extension ->
                    Variable.Map.union (fun _ a _ -> Some a) h extension)
                  (Homomorphism.all ~budget ~pre:h ~source:child_pat ~target ()))
              homs
          in
          if homs' <> [] then go (Wdpt.Subtree.add_child subtree n) homs' n
        end)
      (Wdpt.Subtree.children subtree)
  in
  let root_subtree = Wdpt.Subtree.root_only tree in
  let root_homs =
    Homomorphism.all ~budget ~source:(Wdpt.Subtree.pat root_subtree) ~target ()
  in
  if root_homs <> [] then go root_subtree root_homs Wdpt.Pattern_tree.root;
  !results

(* ------------------------------------------------------------------ *)
(* Encoded join (default)                                              *)
(* ------------------------------------------------------------------ *)

(* Same lattice walk, but every partial homomorphism is a flat int array
   over the tree's shared variable table ({!Plan_cache.node_source}):
   the parent's solution array IS the child join's [pre] (no map union,
   no re-encoding), and terms only reappear at the solution boundary
   where the maximality test needs a mapping. *)
let solutions_tree_encoded ~budget ~maximality ~kernel ~cache ~pool ~optimize
    tree graph =
  Budget.with_phase budget "enumerate" @@ fun () ->
  let results = ref Sparql.Mapping.Set.empty in
  let vars = Plan_cache.variables cache graph tree in
  (* When the kernel is this graph's cache, the maximality test runs
     entirely on dictionary ids ({!Pebble_cache.child_test_ids}) and
     only maximal candidates are ever decoded — the solution boundary.
     Any other kernel (a foreign cache, or the term game) needs a term
     mapping, so those candidates decode first. *)
  let id_kernel =
    match maximality, kernel with
    | `Pebble k, Pebble_eval.Cached c
      when Graph.epoch (Pebble_cache.graph c) = Graph.epoch graph ->
        Some (k, c)
    | _ -> None
  in
  let child_extends subtree mu n =
    match maximality with
    | `Hom -> Wdpt.Semantics.child_extends ~budget tree graph mu n
    | `Pebble k ->
        Pebble_eval.child_test ~budget ~kernel ~k tree graph mu subtree n
  in
  let maximal subtree mu =
    not (List.exists (child_extends subtree mu) (Wdpt.Subtree.children subtree))
  in
  let source_of n = Plan_cache.node_source cache graph tree n in
  let decision_of n = Plan_cache.node_decision ~budget cache graph tree n in
  let strategy_of n =
    match optimize with
    | `Off -> Encoded_hom.Rescore
    | `Static -> Encoded_hom.Fixed (decision_of n).Optimizer.Join_order.order
    | `On -> Encoded_hom.Adaptive (decision_of n).Optimizer.Join_order.order
  in
  (* The optimizer's pebble-vs-naive verdict: when a child's estimated
     extension count is tiny, an exact backtracking existence check on
     ids beats staging the pebble game. Both tests are exact here (the
     engine always plans k >= dw), so this is a cost choice only. *)
  let choose_naive n =
    optimize = `On && (decision_of n).Optimizer.Join_order.maximality = `Naive
  in
  let naive_test_ids ~budget n =
    Plan_cache.naive_child_test ~budget ~strategy:(strategy_of n) cache graph
      tree n
  in
  let root_source = source_of Wdpt.Pattern_tree.root in
  (* Compile every node's source and decision up front when optimizing:
     worker domains must never touch the plan cache's tables (they are
     plain Hashtbls), and the sequential path pays the same cost on first
     visit anyway. *)
  (if optimize <> `Off then
     List.iter
       (fun n ->
         ignore (source_of n);
         ignore (decision_of n))
       (Wdpt.Pattern_tree.nodes tree));
  (* decoding any node's source decodes the whole shared array *)
  let decode h = Encoded_hom.decode root_source h in
  let add_solution mu =
    if not (Sparql.Mapping.Set.mem mu !results) then Budget.solution budget;
    results := Sparql.Mapping.Set.add mu !results
  in
  (* Stage the id-level child tests once per candidate batch: the
     (subtree, child) games and slot tables are fixed across the whole
     batch, so only the per-assignment work stays in the loop. *)
  let visit subtree =
    match id_kernel with
    | Some (k, c) ->
        let tests =
          List.map
            (fun n ->
              if choose_naive n then naive_test_ids ~budget n
              else
                Pebble_cache.stage_child_test_ids c ~budget ~k tree ~vars
                  subtree n)
            (Wdpt.Subtree.children subtree)
        in
        fun h ->
          if not (List.exists (fun test -> test h) tests) then
            Option.iter add_solution (Sparql.Mapping.of_assignment (decode h))
    | None -> (
        fun h ->
          match Sparql.Mapping.of_assignment (decode h) with
          | None -> ()
          | Some mu -> if maximal subtree mu then add_solution mu)
  in
  (* Parallel candidate checking: the maximality test of each candidate
     in a batch is independent, so they fan out across the pool. Each
     worker slot gets its own pebble-cache view (private verdict memo
     and slot tables over the shared compiled games) and its own budget
     view (shared fuel pool / cancellation flag), both staged lazily
     per batch on the domain that owns the slot. The caller merges
     results in input order, so [add_solution] — dedup, solution cap —
     sees exactly the sequential sequence and answers are identical to
     [domains:1]. *)
  let par =
    match (pool, id_kernel) with
    | Some pool, Some (k, c) when Parallel.Pool.size pool > 1 ->
        Some (pool, Budget.fork budget (Parallel.Pool.size pool), k, c)
    | _ -> None
  in
  let visit_batch =
    match par with
    | Some (pool, wbudgets, k, c) ->
        fun subtree homs ->
          (* Workers always stage the pebble test, even for nodes the
             optimizer would run naively: the naive verdict memo is a
             plain shared Hashtbl (sequential path only), and the pool's
             per-worker pebble views already amortize the staging cost
             the naive choice exists to avoid. Both tests are exact, so
             answers are unchanged. *)
          let stage slot =
            let budget = wbudgets.(slot) in
            let view = Pebble_cache.worker_view_for c slot in
            List.map
              (fun n ->
                Pebble_cache.stage_child_test_ids view ~budget ~k tree ~vars
                  subtree n)
              (Wdpt.Subtree.children subtree)
          in
          Parallel.Pool.fold_ordered pool ~init:stage
            ~f:(fun tests h ->
              if List.exists (fun test -> test h) tests then None
              else Sparql.Mapping.of_assignment (decode h))
            ~merge:(fun () -> Option.iter add_solution)
            () homs
    | None -> fun subtree homs -> List.iter (visit subtree) homs
  in
  let rec go subtree homs last =
    visit_batch subtree homs;
    List.iter
      (fun n ->
        if n > last then begin
          Budget.tick budget;
          let child_source = source_of n in
          let strategy = strategy_of n in
          let homs' =
            List.concat_map
              (fun h ->
                Encoded_hom.fold ~budget ~strategy ~pre:h child_source
                  ~init:[]
                  ~f:(fun acc extension ->
                    (Array.copy extension :: acc, `Continue)))
              homs
          in
          if homs' <> [] then go (Wdpt.Subtree.add_child subtree n) homs' n
        end)
      (Wdpt.Subtree.children subtree)
  in
  let run () =
    let root_homs =
      Encoded_hom.fold ~budget
        ~strategy:(strategy_of Wdpt.Pattern_tree.root)
        root_source ~init:[]
        ~f:(fun acc h -> (Array.copy h :: acc, `Continue))
    in
    if root_homs <> [] then
      go (Wdpt.Subtree.root_only tree) root_homs Wdpt.Pattern_tree.root;
    !results
  in
  match par with
  | None -> run ()
  | Some (_, wbudgets, _, c) ->
      (* also on exception paths: the budget views' spending folds back
         into the caller's budget and the worker views' cache counters
         into the shared cache *)
      Fun.protect
        ~finally:(fun () ->
          Budget.join budget wbudgets;
          Pebble_cache.absorb_views c)
        run

(* Resolve the shared defaults once: the kernel defaults to the cache's
   pebble cache under [`Pebble] (so the id-level fast path kicks in) and
   to the term game otherwise. *)
let defaults ~maximality ~kernel ~cache graph =
  match maximality, kernel with
  | `Pebble _, None -> Pebble_eval.Cached (Plan_cache.pebble cache graph)
  | _, Some kernel -> kernel
  | `Hom, None -> Pebble_eval.Term

let solutions_tree_with ~budget ~maximality ~kernel ~join ~cache ~pool
    ~optimize tree graph =
  match join with
  | `Term -> solutions_tree_term ~budget ~maximality ~kernel tree graph
  | `Encoded ->
      solutions_tree_encoded ~budget ~maximality ~kernel ~cache ~pool
        ~optimize tree graph

let solutions_tree ?(budget = Budget.unlimited) ?(maximality = `Hom) ?kernel
    ?(join = `Encoded) ?cache ?(domains = 1) ?(optimize = `Off) tree graph =
  let cache =
    match cache with Some c -> c | None -> Plan_cache.create ()
  in
  let kernel = defaults ~maximality ~kernel ~cache graph in
  if domains <= 1 || join = `Term then
    solutions_tree_with ~budget ~maximality ~kernel ~join ~cache ~pool:None
      ~optimize tree graph
  else
    Parallel.Pool.borrow ~domains (fun pool ->
        solutions_tree_with ~budget ~maximality ~kernel ~join ~cache
          ~pool:(Some pool) ~optimize tree graph)

let solutions ?(budget = Budget.unlimited) ?(maximality = `Hom) ?kernel
    ?(join = `Encoded) ?cache ?(domains = 1) ?(optimize = `Off) forest graph =
  (* One plan cache (and hence one pebble cache) across the whole forest:
     trees share the graph and often the same child patterns, so games
     and verdicts carry over. *)
  let cache = match cache with Some c -> c | None -> Plan_cache.create () in
  let kernel = defaults ~maximality ~kernel ~cache graph in
  let run pool =
    List.fold_left
      (fun acc tree ->
        Sparql.Mapping.Set.union acc
          (solutions_tree_with ~budget ~maximality ~kernel ~join ~cache ~pool
             ~optimize tree graph))
      Sparql.Mapping.Set.empty forest
  in
  if domains <= 1 || join = `Term then run None
  else
    (* one borrowed pool across the whole forest, so domains spawn (at
       most) once per evaluation, not once per tree *)
    Parallel.Pool.borrow ~domains (fun pool -> run (Some pool))

let count ?budget ?maximality ?kernel ?join ?cache ?domains ?optimize forest
    graph =
  Sparql.Mapping.Set.cardinal
    (solutions ?budget ?maximality ?kernel ?join ?cache ?domains ?optimize
       forest graph)
