(** Optimised answer enumeration for wdPTs.

    The baseline enumerator ({!Wdpt.Semantics.solutions}) recomputes the
    homomorphisms of every subtree pattern from scratch — with [c]
    optional children below a node it re-joins the shared prefix up to
    [2^c] times. This one walks the subtree lattice once, extending each
    partial homomorphism child by child, so common prefixes are joined
    once. Each subtree is visited exactly once (children are added in
    increasing node-id order, which is compatible with the parent order
    because node ids are topological).

    The join itself runs over the dictionary-encoded store by default
    ([`Encoded]): node patterns are compiled once per (tree, graph
    epoch) into a {!Plan_cache.t} and partial homomorphisms round-trip
    through flat int arrays, decoded only at the solution boundary.
    [`Term] keeps the PR 2 term-level join (hash probes on terms) — the
    ablation A7 baseline; both produce identical answer sets (tested).

    The Lemma-1 maximality condition is checked per candidate answer:
    - [`Hom] (default) uses the exact homomorphism test — cheap when
      children are easy to match;
    - [`Pebble k] uses the existential (k+1)-pebble relaxation of
      Theorem 1 — polynomial even when a child hides an NP-hard pattern,
      and exact whenever [dw ≤ k]. *)

open Rdf

type maximality = [ `Hom | `Pebble of int ]
type join = [ `Encoded | `Term ]

type optimize = [ `Off | `Static | `On ]
(** Join planning mode of the encoded join (ablation A10):
    - [`Off] (default): exact fail-first per-prefix rescoring — every
      pattern of the node is re-counted at every depth (the PR 3
      baseline, {!Encoded.Encoded_hom.Rescore});
    - [`Static]: the cost-based compiled order of
      {!Plan_cache.node_decision}, followed rigidly
      ({!Encoded.Encoded_hom.Fixed});
    - [`On]: the compiled order as seed with incremental fail-first
      refinement — only patterns touched by a newly bound variable are
      re-counted ({!Encoded.Encoded_hom.Adaptive}), and each node's
      Lemma-1 test runs naively instead of through the pebble relaxation
      when the optimizer estimates very few candidate extensions (both
      exact under the planner's [dw ≤ k] invariant, so answers never
      change — tested). *)

val solutions_tree :
  ?budget:Resource.Budget.t ->
  ?maximality:maximality -> ?kernel:Pebble_eval.kernel ->
  ?join:join -> ?cache:Plan_cache.t -> ?domains:int -> ?optimize:optimize ->
  Wdpt.Pattern_tree.t -> Graph.t -> Sparql.Mapping.Set.t

val solutions :
  ?budget:Resource.Budget.t ->
  ?maximality:maximality -> ?kernel:Pebble_eval.kernel ->
  ?join:join -> ?cache:Plan_cache.t -> ?domains:int -> ?optimize:optimize ->
  Wdpt.Pattern_forest.t -> Graph.t -> Sparql.Mapping.Set.t
(** Equals {!Wdpt.Semantics.solutions} under [`Hom], and under
    [`Pebble k] whenever [dw(F) ≤ k] (tested). One {!Plan_cache.t} is
    shared across the whole forest — pass [cache] to supply your own
    (e.g. a plan's cache, to reuse compiled sources and pebble games
    across calls, or to read its stats afterwards); pass [kernel] to
    force a specific child-test kernel (e.g. the term-level one).

    [domains] (default 1) sets the total parallelism of the per-batch
    maximality tests: with [domains > 1] a borrowed domain pool
    ({!Parallel.Pool.borrow}) fans the staged id-level child tests of
    each candidate batch across workers, each with a private
    pebble-cache view, merging results back in sequential order — the
    answer {e set and its construction order} are identical to
    [domains:1] for every [n] (tested as a qcheck property). The
    parallel path engages on the encoded join with the graph's own
    cached [`Pebble] kernel (the default setup); other kernel/join
    combinations fall back to sequential evaluation. Budgets propagate:
    workers draw from a shared fuel pool and a deadline or cancellation
    on any domain stops the others within one lease
    ({!Resource.Budget.fork}). *)

val count :
  ?budget:Resource.Budget.t -> ?maximality:maximality ->
  ?kernel:Pebble_eval.kernel -> ?join:join -> ?cache:Plan_cache.t ->
  ?domains:int -> ?optimize:optimize ->
  Wdpt.Pattern_forest.t -> Graph.t -> int
(** Number of distinct answers. *)
