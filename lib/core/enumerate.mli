(** Optimised answer enumeration for wdPTs.

    The baseline enumerator ({!Wdpt.Semantics.solutions}) recomputes the
    homomorphisms of every subtree pattern from scratch — with [c]
    optional children below a node it re-joins the shared prefix up to
    [2^c] times. This one walks the subtree lattice once, extending each
    partial homomorphism child by child, so common prefixes are joined
    once. Each subtree is visited exactly once (children are added in
    increasing node-id order, which is compatible with the parent order
    because node ids are topological).

    The Lemma-1 maximality condition is checked per candidate answer:
    - [`Hom] (default) uses the exact homomorphism test — cheap when
      children are easy to match;
    - [`Pebble k] uses the existential (k+1)-pebble relaxation of
      Theorem 1 — polynomial even when a child hides an NP-hard pattern,
      and exact whenever [dw ≤ k]. *)

open Rdf

type maximality = [ `Hom | `Pebble of int ]

val solutions_tree :
  ?budget:Resource.Budget.t ->
  ?maximality:maximality -> ?kernel:Pebble_eval.kernel ->
  Wdpt.Pattern_tree.t -> Graph.t -> Sparql.Mapping.Set.t

val solutions :
  ?budget:Resource.Budget.t ->
  ?maximality:maximality -> ?kernel:Pebble_eval.kernel ->
  Wdpt.Pattern_forest.t -> Graph.t -> Sparql.Mapping.Set.t
(** Equals {!Wdpt.Semantics.solutions} under [`Hom], and under
    [`Pebble k] whenever [dw(F) ≤ k] (tested). Under [`Pebble k] the
    child tests run through a {!Pebble_cache.t} shared across the whole
    forest — pass [kernel] to supply your own (e.g. to read its stats
    afterwards) or to force the term-level kernel. *)

val count :
  ?budget:Resource.Budget.t -> ?maximality:maximality ->
  ?kernel:Pebble_eval.kernel -> Wdpt.Pattern_forest.t -> Graph.t -> int
(** Number of distinct answers. *)
