open Rdf

type triple_plan = {
  triple : Triple.t;
  estimated : float;
}

type node_plan = {
  node : Wdpt.Pattern_tree.node;
  depth : int;
  new_vars : Variable.t list;
  triples : triple_plan list;
}

type tree_plan = node_plan list

type t = {
  classification : Classify.t;
  plan : Engine.plan;
  trees : tree_plan list;
  graph_triples : int;
}

let plan_tree stats tree =
  let rec walk node depth =
    let parent_vars =
      match Wdpt.Pattern_tree.parent tree node with
      | None -> Variable.Set.empty
      | Some p -> Wdpt.Pattern_tree.vars_of_node tree p
    in
    let new_vars =
      Variable.Set.elements
        (Variable.Set.diff (Wdpt.Pattern_tree.vars_of_node tree node) parent_vars)
    in
    let triples =
      Tgraphs.Tgraph.triples (Wdpt.Pattern_tree.pat tree node)
      |> List.map (fun triple ->
             { triple; estimated = Stats.estimated_matches stats triple })
      |> List.sort (fun a b -> compare a.estimated b.estimated)
    in
    { node; depth; new_vars; triples }
    :: List.concat_map
         (fun c -> walk c (depth + 1))
         (Wdpt.Pattern_tree.children tree node)
  in
  walk Wdpt.Pattern_tree.root 0

let explain ?budget pattern graph =
  let stats = Stats.of_graph graph in
  let plan = Engine.plan ?budget pattern in
  {
    classification = Classify.classify ?budget pattern;
    plan;
    trees = List.map (plan_tree stats) plan.Engine.forest;
    graph_triples = Stats.triples stats;
  }

let pp ppf t =
  Fmt.pf ppf "%a@.@.%a@.@." Classify.pp t.classification Engine.pp_plan t.plan;
  Fmt.pf ppf "data: %d triples@." t.graph_triples;
  List.iteri
    (fun i tree_plan ->
      Fmt.pf ppf "@.tree %d:@." (i + 1);
      List.iter
        (fun np ->
          let indent = String.make (2 * np.depth) ' ' in
          let vars_note =
            match np.new_vars with
            | [] -> ""
            | vs ->
                Printf.sprintf " (introduces %s)"
                  (String.concat ", "
                     (List.map (fun v -> "?" ^ Variable.to_string v) vs))
          in
          Fmt.pf ppf "%s%snode %d%s@." indent
            (if np.depth = 0 then "" else "OPTIONAL ")
            np.node vars_note;
          List.iter
            (fun tp ->
              Fmt.pf ppf "%s  %a  ~%.1f matches@." indent Triple.pp tp.triple
                tp.estimated)
            np.triples)
        tree_plan)
    t.trees
