open Rdf

type triple_plan = {
  triple : Triple.t;
  estimated : float;
  actual : int;
}

type node_plan = {
  node : Wdpt.Pattern_tree.node;
  depth : int;
  new_vars : Variable.t list;
  triples : triple_plan list;
  decision : Optimizer.Join_order.decision option;
}

type tree_plan = node_plan list

type t = {
  classification : Classify.t;
  plan : Engine.plan;
  trees : tree_plan list;
  graph_triples : int;
}

(* Exact matches of the pattern's constant positions against the encoded
   store — the ground truth the cost model's base estimate approximates.
   A constant the dictionary has never seen matches nothing. *)
let actual_count enc triple =
  let dict = Encoded.Encoded_graph.dictionary enc in
  let pos t =
    match t with
    | Term.Var _ -> Ok None
    | t -> (
        match Dictionary.find dict t with
        | Some id -> Ok (Some id)
        | None -> Error ())
  in
  match
    (pos triple.Triple.s, pos triple.Triple.p, pos triple.Triple.o)
  with
  | Ok s, Ok p, Ok o -> Encoded.Encoded_graph.match_count enc ?s ?p ?o ()
  | _ -> 0

let plan_tree stats enc decision_of tree =
  let rec walk node depth =
    let parent_vars =
      match Wdpt.Pattern_tree.parent tree node with
      | None -> Variable.Set.empty
      | Some p -> Wdpt.Pattern_tree.vars_of_node tree p
    in
    let new_vars =
      Variable.Set.elements
        (Variable.Set.diff (Wdpt.Pattern_tree.vars_of_node tree node) parent_vars)
    in
    let base =
      Tgraphs.Tgraph.triples (Wdpt.Pattern_tree.pat tree node)
      |> List.map (fun triple ->
             {
               triple;
               estimated = Stats.estimated_matches stats triple;
               actual = actual_count enc triple;
             })
    in
    let decision = decision_of tree node in
    let triples =
      match decision with
      | None ->
          List.sort (fun a b -> compare a.estimated b.estimated) base
      | Some d ->
          (* the optimizer's compiled order: position j is the j-th join
             step, aligned with [d.est_cards.(j)] *)
          let arr = Array.of_list base in
          Array.to_list
            (Array.map (fun i -> arr.(i)) d.Optimizer.Join_order.order)
    in
    { node; depth; new_vars; triples; decision }
    :: List.concat_map
         (fun c -> walk c (depth + 1))
         (Wdpt.Pattern_tree.children tree node)
  in
  walk Wdpt.Pattern_tree.root 0

let explain ?budget ?optimize pattern graph =
  let stats = Stats.of_graph graph in
  let plan = Engine.plan ?budget ?optimize pattern in
  let enc = Plan_cache.encoded plan.Engine.cache graph in
  let decision_of tree n =
    if plan.Engine.optimize then
      Some (Plan_cache.node_decision ?budget plan.Engine.cache graph tree n)
    else None
  in
  {
    classification = Classify.classify ?budget pattern;
    plan;
    trees = List.map (plan_tree stats enc decision_of) plan.Engine.forest;
    graph_triples = Stats.triples stats;
  }

let pp ppf t =
  Fmt.pf ppf "%a@.@.%a@.@." Classify.pp t.classification Engine.pp_plan t.plan;
  Fmt.pf ppf "data: %d triples@." t.graph_triples;
  List.iteri
    (fun i tree_plan ->
      Fmt.pf ppf "@.tree %d:@." (i + 1);
      List.iter
        (fun np ->
          let indent = String.make (2 * np.depth) ' ' in
          let vars_note =
            match np.new_vars with
            | [] -> ""
            | vs ->
                Printf.sprintf " (introduces %s)"
                  (String.concat ", "
                     (List.map (fun v -> "?" ^ Variable.to_string v) vs))
          in
          let decision_note =
            match np.decision with
            | None -> ""
            | Some d ->
                Fmt.str " [join: cost-based order, ~%.1f candidate(s)%s]"
                  d.Optimizer.Join_order.est_candidates
                  (if np.depth = 0 then ""
                   else
                     Fmt.str "; maximality test: %a"
                       Optimizer.Join_order.pp_maximality
                       d.Optimizer.Join_order.maximality)
          in
          Fmt.pf ppf "%s%snode %d%s%s@." indent
            (if np.depth = 0 then "" else "OPTIONAL ")
            np.node vars_note decision_note;
          List.iteri
            (fun j tp ->
              match np.decision with
              | Some d ->
                  Fmt.pf ppf "%s  %a  est ~%.1f, actual %d@." indent
                    Triple.pp tp.triple
                    d.Optimizer.Join_order.est_cards.(j)
                    tp.actual
              | None ->
                  Fmt.pf ppf "%s  %a  ~%.1f matches, actual %d@." indent
                    Triple.pp tp.triple tp.estimated tp.actual)
            np.triples)
        tree_plan)
    t.trees
