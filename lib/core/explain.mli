(** Query plans, explained: what the evaluator will do for a pattern over
    a concrete graph, with statistics-based cardinality estimates.

    For each tree of [wdpf(P)] the report lists the root-to-leaf structure
    with, per node, its triple patterns ordered as the fail-first join
    would first consider them (most selective first, per
    {!Rdf.Stats.estimated_matches}) — plus the width measures and the
    algorithm the {!Engine} would pick. *)

type triple_plan = {
  triple : Rdf.Triple.t;
  estimated : float;  (** estimated matching triples in the graph *)
}

type node_plan = {
  node : Wdpt.Pattern_tree.node;
  depth : int;
  new_vars : Rdf.Variable.t list;  (** variables introduced by this node *)
  triples : triple_plan list;  (** most selective first *)
}

type tree_plan = node_plan list
(** Pre-order. *)

type t = {
  classification : Classify.t;
  plan : Engine.plan;
  trees : tree_plan list;
  graph_triples : int;
}

(** [explain ?budget p g]: under a [budget], width analysis degrades
    gracefully (see {!Engine.plan} and {!Classify.classify}) instead of
    raising. *)
val explain :
  ?budget:Resource.Budget.t -> Sparql.Algebra.t -> Rdf.Graph.t -> t
val pp : t Fmt.t
