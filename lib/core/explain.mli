(** Query plans, explained: what the evaluator will do for a pattern over
    a concrete graph, with statistics-based cardinality estimates.

    For each tree of [wdpf(P)] the report lists the root-to-leaf structure
    with, per node, its triple patterns in the order the join will
    evaluate them. With the optimizer on (the default) that is the
    cost-based compiled order of {!Plan_cache.node_decision}, each step
    annotated with the model's estimated cardinality next to the exact
    match count of its constant positions, and each non-root node with
    its pebble-vs-naive maximality verdict; with it off, patterns appear
    most selective first per {!Rdf.Stats.estimated_matches} — the
    fail-first rescoring's initial view. *)

type triple_plan = {
  triple : Rdf.Triple.t;
  estimated : float;
      (** the cost model's view: {!Rdf.Stats.estimated_matches} when the
          optimizer is off; with a [decision], the per-step estimate
          lives in [decision.est_cards] (aligned with the list order) *)
  actual : int;
      (** exact matches of the pattern's constant positions against the
          store — what the estimate approximates *)
}

type node_plan = {
  node : Wdpt.Pattern_tree.node;
  depth : int;
  new_vars : Rdf.Variable.t list;  (** variables introduced by this node *)
  triples : triple_plan list;  (** in planned evaluation order *)
  decision : Optimizer.Join_order.decision option;
      (** the cost-based plan ([None] when the optimizer is off):
          compiled join order, per-step estimates, expected candidate
          count, and the maximality verdict *)
}

type tree_plan = node_plan list
(** Pre-order. *)

type t = {
  classification : Classify.t;
  plan : Engine.plan;
  trees : tree_plan list;
  graph_triples : int;
}

(** [explain ?budget ?optimize p g]: under a [budget], width analysis
    degrades gracefully (see {!Engine.plan} and {!Classify.classify})
    instead of raising. [optimize] is forwarded to {!Engine.plan}
    (default on); it decides whether the per-node cost-based decisions
    are computed and shown. *)
val explain :
  ?budget:Resource.Budget.t -> ?optimize:bool ->
  Sparql.Algebra.t -> Rdf.Graph.t -> t

val pp : t Fmt.t
