open Rdf
open Tgraphs

let width_of_tree ?budget tree =
  List.fold_left
    (fun acc n ->
      match Wdpt.Pattern_tree.parent tree n with
      | None -> acc
      | Some p ->
          let interface =
            Variable.Set.inter
              (Wdpt.Pattern_tree.vars_of_node tree n)
              (Wdpt.Pattern_tree.vars_of_node tree p)
          in
          let g = Gtgraph.make (Wdpt.Pattern_tree.pat tree n) interface in
          max acc (Cores.ctw ?budget g))
    1 (Wdpt.Pattern_tree.nodes tree)

let width_of_forest ?budget forest =
  List.fold_left (fun acc tree -> max acc (width_of_tree ?budget tree)) 1 forest

let width_of_pattern ?budget p =
  width_of_forest ?budget (Wdpt.Pattern_forest.of_algebra p)
