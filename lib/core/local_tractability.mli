(** Local tractability (Letelier et al., recalled after Theorem 1): a class
    is locally tractable when [ctw(pat(n), vars(n) ∩ vars(n'))] is bounded
    over all non-root nodes [n] with parent [n']. This was the most general
    tractability condition known before the paper; bounded domination width
    strictly extends it (Example 5). *)

val width_of_tree : ?budget:Resource.Budget.t -> Wdpt.Pattern_tree.t -> int
(** The least [k ≥ 1] bounding the local ctw of every non-root node. *)

val width_of_forest : ?budget:Resource.Budget.t -> Wdpt.Pattern_forest.t -> int

val width_of_pattern : ?budget:Resource.Budget.t -> Sparql.Algebra.t -> int
(** Raises {!Wdpt.Translate.Not_well_designed} if not well-designed. *)
