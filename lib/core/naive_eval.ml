let check ?budget forest graph mu = Wdpt.Semantics.check ?budget forest graph mu

let check_pattern ?budget p graph mu =
  check ?budget (Wdpt.Pattern_forest.of_algebra p) graph mu

let solutions ?budget forest graph = Wdpt.Semantics.solutions ?budget forest graph
