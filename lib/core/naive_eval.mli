(** The natural (exact) evaluation algorithm for wdPFs (Sections 3 and
    3.1): find the unique subtree [T^µ_i] matched by [µ] in each tree and
    accept iff some tree has no child admitting a homomorphism compatible
    with [µ]. The homomorphism tests make it exponential in the query —
    this is the coNP-flavoured baseline that bounded domination width
    renders avoidable. *)

open Rdf

val check :
  ?budget:Resource.Budget.t -> Wdpt.Pattern_forest.t -> Graph.t ->
  Sparql.Mapping.t -> bool
(** [µ ∈ ⟦F⟧G]. *)

val check_pattern :
  ?budget:Resource.Budget.t -> Sparql.Algebra.t -> Graph.t -> Sparql.Mapping.t ->
  bool
(** Translate then {!check}.
    Raises {!Wdpt.Translate.Not_well_designed} if not well-designed. *)

val solutions :
  ?budget:Resource.Budget.t -> Wdpt.Pattern_forest.t -> Graph.t ->
  Sparql.Mapping.Set.t
