open Rdf
module Budget = Resource.Budget

type stats = { hits : int; misses : int; compiled : int; families : int }

let pp_stats ppf s =
  Fmt.pf ppf "pebble cache: %d hits, %d misses, %d games compiled, %d families"
    s.hits s.misses s.compiled s.families

(* Anchor position: the subtree pattern is fully grounded by µ, so it
   compiles to constants and indices into the subtree's variable array. *)
type apos = C of int | V of int

type child_game = {
  anchor_params : Variable.t array;
  anchor : (apos * apos * apos) array;
  game : Encoded.Encoded_pebble.t;
  game_params : Variable.t array;
  verdicts : (int list, bool) Hashtbl.t;
}

type game_key = { stamp : int; members : int list; child : int; key_k : int }

type t = {
  graph : Graph.t;
  enc : Encoded.Encoded_graph.t;
  memo : bool;
  games : (game_key, child_game) Hashtbl.t;
  mutable stamps : (Wdpt.Pattern_tree.t * int) list;
  mutable hits : int;
  mutable misses : int;
  mutable compiled : int;
  mutable families : int;
}

let create ?(memo = true) graph =
  {
    graph;
    enc = Encoded.Encoded_graph.of_graph_cached graph;
    memo;
    games = Hashtbl.create 64;
    stamps = [];
    hits = 0;
    misses = 0;
    compiled = 0;
    families = 0;
  }

let graph t = t.graph

let stats t =
  { hits = t.hits; misses = t.misses; compiled = t.compiled; families = t.families }

let stamp_of t tree =
  match List.find_opt (fun (tr, _) -> tr == tree) t.stamps with
  | Some (_, id) -> id
  | None ->
      let id = List.length t.stamps in
      t.stamps <- (tree, id) :: t.stamps;
      id

(* Compile the child test for (subtree, n): the union game
   [(pat(T') ∪ pat(n), vars(T')) →µ_{k+1} G] splits exactly into
   (1) every triple of pat(T') — ground under µ — being in G, and
   (2) the game on [(pat(n), vars(T') ∩ vars(pat n))] with µ restricted,
   because after freezing µ the free variables and non-ground patterns
   of the union are precisely those of pat(n). *)
let compile_game t ~k tree subtree n =
  let dict = Encoded.Encoded_graph.dictionary t.enc in
  let anchor_pat = Wdpt.Subtree.pat subtree in
  let child_pat = Wdpt.Pattern_tree.pat tree n in
  let anchor_params =
    Array.of_list (Variable.Set.elements (Wdpt.Subtree.vars subtree))
  in
  let idx = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.replace idx v i) anchor_params;
  let apos_of = function
    | Term.Iri _ as term -> (
        match Dictionary.find dict term with
        | Some id -> C id
        | None -> C Encoded.Encoded_pebble.unknown_id)
    | Term.Var v -> V (Hashtbl.find idx v)
  in
  let anchor =
    Array.of_list
      (List.map
         (fun tr ->
           (apos_of tr.Triple.s, apos_of tr.Triple.p, apos_of tr.Triple.o))
         (Tgraphs.Tgraph.triples anchor_pat))
  in
  let shared =
    Variable.Set.inter (Wdpt.Subtree.vars subtree)
      (Tgraphs.Tgraph.vars child_pat)
  in
  let game =
    Encoded.Encoded_pebble.compile ~k:(k + 1)
      (Tgraphs.Gtgraph.make child_pat shared)
      t.enc
  in
  t.compiled <- t.compiled + 1;
  {
    anchor_params;
    anchor;
    game;
    game_params = Encoded.Encoded_pebble.params game;
    verdicts = Hashtbl.create 256;
  }

let game_for t ~k tree subtree n =
  if not t.memo then compile_game t ~k tree subtree n
  else begin
    let key =
      {
        stamp = stamp_of t tree;
        members = Wdpt.Subtree.members subtree;
        child = n;
        key_k = k;
      }
    in
    match Hashtbl.find_opt t.games key with
    | Some g -> g
    | None ->
        let g = compile_game t ~k tree subtree n in
        Hashtbl.add t.games key g;
        g
  end

let id_of_var dict mu v =
  match Sparql.Mapping.find v mu with
  | None -> invalid_arg "Pebble_cache.child_test: µ does not cover the subtree"
  | Some iri -> (
      match Dictionary.find dict (Term.Iri iri) with
      | Some id -> id
      | None -> Encoded.Encoded_pebble.unknown_id)

let child_test t ?(budget = Budget.unlimited) ~k tree mu subtree n =
  if k < 1 then invalid_arg "Pebble_game.wins: k must be at least 1";
  let cg = game_for t ~k tree subtree n in
  let dict = Encoded.Encoded_graph.dictionary t.enc in
  let anchor_ids = Array.map (id_of_var dict mu) cg.anchor_params in
  let value = function C id -> id | V j -> anchor_ids.(j) in
  let anchor_ok =
    Array.for_all
      (fun (a, b, c) ->
        Budget.tick budget;
        Encoded.Encoded_graph.mem t.enc (value a, value b, value c))
      cg.anchor
  in
  if not anchor_ok then false
  else begin
    let mu_ids = Array.map (id_of_var dict mu) cg.game_params in
    let memo_key = Array.to_list mu_ids in
    match
      if t.memo then Hashtbl.find_opt cg.verdicts memo_key else None
    with
    | Some verdict ->
        t.hits <- t.hits + 1;
        Budget.tick budget;
        verdict
    | None ->
        t.misses <- t.misses + 1;
        let before = Encoded.Encoded_pebble.stats_families_explored () in
        let verdict = Encoded.Encoded_pebble.run ~budget cg.game ~mu:mu_ids in
        t.families <-
          t.families + (Encoded.Encoded_pebble.stats_families_explored () - before);
        if t.memo then Hashtbl.add cg.verdicts memo_key verdict;
        verdict
  end
