open Rdf
module Budget = Resource.Budget

type stats = {
  hits : int;
  misses : int;
  compiled : int;
  families : int;
  evictions : int;
}

let pp_stats ppf s =
  Fmt.pf ppf
    "pebble cache: %d hits, %d misses, %d games compiled, %d families, %d \
     verdicts evicted"
    s.hits s.misses s.compiled s.families s.evictions

(* Anchor position: the subtree pattern is fully grounded by µ, so it
   compiles to constants and indices into the subtree's variable array. *)
type apos = C of int | V of int

(* Verdict entries are intrusive doubly-linked LRU nodes threaded through
   a single recency list shared by every game of the cache, so one global
   capacity bounds the whole evaluation's verdict memory (long
   enumerations over huge µ|shared spaces would otherwise grow without
   bound). [owner] is the per-game table the node lives in, so eviction
   at the cold end can remove it without knowing which game it belongs
   to. *)
type lru_node = {
  nkey : int list;
  verdict : bool;
  owner : (int list, lru_node) Hashtbl.t;
  mutable prev : lru_node option;
  mutable next : lru_node option;
}

type child_game = {
  anchor_params : Variable.t array;
  anchor : (apos * apos * apos) array;
  game : Encoded.Encoded_pebble.t;
  game_params : Variable.t array;
  verdicts : (int list, lru_node) Hashtbl.t;
  (* param positions resolved against a caller's shared variable table
     (physical identity), so id-level callers skip the µ round-trip *)
  mutable slots : (Variable.t array * int array * int array) option;
}

type game_key = { stamp : int; members : int list; child : int; key_k : int }

let default_verdict_capacity = 1 lsl 20

type t = {
  graph : Graph.t;
  enc : Encoded.Encoded_graph.t;
  memo : bool;
  verdict_capacity : int;
  games : (game_key, child_game) Hashtbl.t;
  mutable stamps : (Wdpt.Pattern_tree.t * int) list;
  mutable lru_head : lru_node option;
  mutable lru_tail : lru_node option;
  mutable lru_size : int;
  mutable hits : int;
  mutable misses : int;
  mutable compiled : int;
  mutable families : int;
  mutable evictions : int;
}

let create ?(memo = true) ?(verdict_capacity = default_verdict_capacity) graph =
  if verdict_capacity < 1 then
    invalid_arg "Pebble_cache.create: verdict_capacity must be positive";
  {
    graph;
    enc = Encoded.Encoded_graph.of_graph_cached graph;
    memo;
    verdict_capacity;
    games = Hashtbl.create 64;
    stamps = [];
    lru_head = None;
    lru_tail = None;
    lru_size = 0;
    hits = 0;
    misses = 0;
    compiled = 0;
    families = 0;
    evictions = 0;
  }

let graph t = t.graph

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    compiled = t.compiled;
    families = t.families;
    evictions = t.evictions;
  }

(* --- intrusive LRU list ------------------------------------------------ *)

let lru_unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.lru_head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.lru_tail <- node.prev);
  node.prev <- None;
  node.next <- None

let lru_push_front t node =
  node.next <- t.lru_head;
  (match t.lru_head with Some h -> h.prev <- Some node | None -> ());
  t.lru_head <- Some node;
  if t.lru_tail = None then t.lru_tail <- Some node

let lru_touch t node =
  match t.lru_head with
  | Some h when h == node -> ()
  | _ ->
      lru_unlink t node;
      lru_push_front t node

let lru_insert t node =
  lru_push_front t node;
  t.lru_size <- t.lru_size + 1;
  if t.lru_size > t.verdict_capacity then
    match t.lru_tail with
    | None -> assert false
    | Some cold ->
        lru_unlink t cold;
        Hashtbl.remove cold.owner cold.nkey;
        t.lru_size <- t.lru_size - 1;
        t.evictions <- t.evictions + 1

let stamp_of t tree =
  match List.find_opt (fun (tr, _) -> tr == tree) t.stamps with
  | Some (_, id) -> id
  | None ->
      let id = List.length t.stamps in
      t.stamps <- (tree, id) :: t.stamps;
      id

(* Compile the child test for (subtree, n): the union game
   [(pat(T') ∪ pat(n), vars(T')) →µ_{k+1} G] splits exactly into
   (1) every triple of pat(T') — ground under µ — being in G, and
   (2) the game on [(pat(n), vars(T') ∩ vars(pat n))] with µ restricted,
   because after freezing µ the free variables and non-ground patterns
   of the union are precisely those of pat(n). *)
let compile_game t ~k tree subtree n =
  let dict = Encoded.Encoded_graph.dictionary t.enc in
  let anchor_pat = Wdpt.Subtree.pat subtree in
  let child_pat = Wdpt.Pattern_tree.pat tree n in
  let anchor_params =
    Array.of_list (Variable.Set.elements (Wdpt.Subtree.vars subtree))
  in
  let idx = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.replace idx v i) anchor_params;
  let apos_of = function
    | Term.Iri _ as term -> (
        match Dictionary.find dict term with
        | Some id -> C id
        | None -> C Encoded.Encoded_pebble.unknown_id)
    | Term.Var v -> V (Hashtbl.find idx v)
  in
  let anchor =
    Array.of_list
      (List.map
         (fun tr ->
           (apos_of tr.Triple.s, apos_of tr.Triple.p, apos_of tr.Triple.o))
         (Tgraphs.Tgraph.triples anchor_pat))
  in
  let shared =
    Variable.Set.inter (Wdpt.Subtree.vars subtree)
      (Tgraphs.Tgraph.vars child_pat)
  in
  let game =
    Encoded.Encoded_pebble.compile ~k:(k + 1)
      (Tgraphs.Gtgraph.make child_pat shared)
      t.enc
  in
  t.compiled <- t.compiled + 1;
  {
    anchor_params;
    anchor;
    game;
    game_params = Encoded.Encoded_pebble.params game;
    verdicts = Hashtbl.create 256;
    slots = None;
  }

let game_for t ~k tree subtree n =
  if not t.memo then compile_game t ~k tree subtree n
  else begin
    let key =
      {
        stamp = stamp_of t tree;
        members = Wdpt.Subtree.members subtree;
        child = n;
        key_k = k;
      }
    in
    match Hashtbl.find_opt t.games key with
    | Some g -> g
    | None ->
        let g = compile_game t ~k tree subtree n in
        Hashtbl.add t.games key g;
        g
  end

let id_of_var dict mu v =
  match Sparql.Mapping.find v mu with
  | None -> invalid_arg "Pebble_cache.child_test: µ does not cover the subtree"
  | Some iri -> (
      match Dictionary.find dict (Term.Iri iri) with
      | Some id -> id
      | None -> Encoded.Encoded_pebble.unknown_id)

(* The shared back half of the child test: anchor triples checked with
   grounded ids, then the verdict memo / kernel run. [mu_ids] is a thunk
   so the term-level caller keeps its dictionary lookups lazy on anchor
   failure. *)
let run_child_test t ~budget cg ~anchor_ids ~mu_ids =
  let value = function C id -> id | V j -> anchor_ids.(j) in
  let anchor_ok =
    Array.for_all
      (fun (a, b, c) ->
        Budget.tick budget;
        Encoded.Encoded_graph.mem t.enc (value a, value b, value c))
      cg.anchor
  in
  if not anchor_ok then false
  else begin
    let mu_ids = mu_ids () in
    let memo_key = Array.to_list mu_ids in
    match
      if t.memo then Hashtbl.find_opt cg.verdicts memo_key else None
    with
    | Some node ->
        t.hits <- t.hits + 1;
        lru_touch t node;
        Budget.tick budget;
        node.verdict
    | None ->
        t.misses <- t.misses + 1;
        let before = Encoded.Encoded_pebble.stats_families_explored () in
        let verdict = Encoded.Encoded_pebble.run ~budget cg.game ~mu:mu_ids in
        t.families <-
          t.families + (Encoded.Encoded_pebble.stats_families_explored () - before);
        if t.memo then begin
          let node =
            {
              nkey = memo_key;
              verdict;
              owner = cg.verdicts;
              prev = None;
              next = None;
            }
          in
          Hashtbl.add cg.verdicts memo_key node;
          lru_insert t node
        end;
        verdict
  end

let child_test t ?(budget = Budget.unlimited) ~k tree mu subtree n =
  if k < 1 then invalid_arg "Pebble_game.wins: k must be at least 1";
  let cg = game_for t ~k tree subtree n in
  let dict = Encoded.Encoded_graph.dictionary t.enc in
  let anchor_ids = Array.map (id_of_var dict mu) cg.anchor_params in
  run_child_test t ~budget cg ~anchor_ids ~mu_ids:(fun () ->
      Array.map (id_of_var dict mu) cg.game_params)

let slots_for cg vars =
  match cg.slots with
  | Some (v, a, g) when v == vars -> (a, g)
  | _ ->
      let slot_of v =
        let rec go i =
          if i >= Array.length vars then
            invalid_arg
              (Fmt.str
                 "Pebble_cache.child_test_ids: variable %a missing from the \
                  table"
                 Variable.pp v)
          else if Variable.equal vars.(i) v then i
          else go (i + 1)
        in
        go 0
      in
      let a = Array.map slot_of cg.anchor_params in
      let g = Array.map slot_of cg.game_params in
      cg.slots <- Some (vars, a, g);
      (a, g)

let stage_child_test_ids t ?(budget = Budget.unlimited) ~k tree ~vars subtree
    n =
  if k < 1 then invalid_arg "Pebble_game.wins: k must be at least 1";
  let stage () =
    let cg = game_for t ~k tree subtree n in
    let anchor_slots, game_slots = slots_for cg vars in
    (cg, anchor_slots, game_slots)
  in
  (* [memo:false] means no reuse at all (the ablation baseline), so the
     game must be recompiled per candidate, not once per batch *)
  let staged = if t.memo then Some (stage ()) else None in
  fun assignment ->
    let cg, anchor_slots, game_slots =
      match staged with Some s -> s | None -> stage ()
    in
    let anchor_ids = Array.map (Array.get assignment) anchor_slots in
    run_child_test t ~budget cg ~anchor_ids ~mu_ids:(fun () ->
        Array.map (Array.get assignment) game_slots)

let child_test_ids t ?budget ~k tree ~vars ~assignment subtree n =
  stage_child_test_ids t ?budget ~k tree ~vars subtree n assignment
