open Rdf
module Budget = Resource.Budget

type stats = {
  hits : int;
  misses : int;
  compiled : int;
  families : int;
  evictions : int;
  unary_hits : int;
  unary_misses : int;
}

let pp_stats ppf s =
  Fmt.pf ppf
    "pebble cache: %d hits, %d misses, %d games compiled, %d families, %d \
     verdicts evicted, unary domains %d reused / %d scanned"
    s.hits s.misses s.compiled s.families s.evictions s.unary_hits
    s.unary_misses

(* Anchor position: the subtree pattern is fully grounded by µ, so it
   compiles to constants and indices into the subtree's variable array. *)
type apos = C of int | V of int

(* Verdict entries are intrusive doubly-linked LRU nodes threaded through
   a single recency list shared by every game of the cache, so one global
   capacity bounds the whole evaluation's verdict memory (long
   enumerations over huge µ|shared spaces would otherwise grow without
   bound). [owner] is the per-game table the node lives in, so eviction
   at the cold end can remove it without knowing which game it belongs
   to. *)
type lru_node = {
  nkey : int list;
  verdict : bool;
  owner : (int list, lru_node) Hashtbl.t;
  mutable prev : lru_node option;
  mutable next : lru_node option;
}

type child_game = {
  anchor_params : Variable.t array;
  anchor : (apos * apos * apos) array;
  game : Encoded.Encoded_pebble.t;
  game_params : Variable.t array;
  verdicts : (int list, lru_node) Hashtbl.t;
  (* param positions resolved against a caller's shared variable table
     (physical identity), so id-level callers skip the µ round-trip *)
  mutable slots : (Variable.t array * int array * int array) option;
}

type game_key = { stamp : int; members : int list; child : int; key_k : int }

let default_verdict_capacity = 1 lsl 20

type t = {
  graph : Graph.t;
  enc : Encoded.Encoded_graph.t;
  memo : bool;
  verdict_capacity : int;
  games : (game_key, child_game) Hashtbl.t;
  mutable stamps : (Wdpt.Pattern_tree.t * int) list;
  mutable lru_head : lru_node option;
  mutable lru_tail : lru_node option;
  mutable lru_size : int;
  mutable hits : int;
  mutable misses : int;
  mutable compiled : int;
  mutable families : int;
  mutable evictions : int;
  unary : Encoded.Encoded_pebble.unary_cache;
  (* Parallel structure. A root cache ([parent = None]) owns the
     authoritative games table and tree stamps, guarded by [lock] so
     worker views can delegate compile-or-lookup to it. A worker view
     ([parent = Some root]) shares the root's compiled games read-only
     and keeps everything mutable — verdict tables, LRU list, slot
     memos, counters — private to its own domain. *)
  lock : Mutex.t;
  parent : t option;
  views : (int, t) Hashtbl.t;
      (* root only: memoized worker views per pool slot, so their
         verdict memos stay warm across evaluations *)
}

let create ?(memo = true) ?(verdict_capacity = default_verdict_capacity) graph =
  if verdict_capacity < 1 then
    invalid_arg "Pebble_cache.create: verdict_capacity must be positive";
  {
    graph;
    enc = Encoded.Encoded_graph.of_graph_cached graph;
    memo;
    verdict_capacity;
    games = Hashtbl.create 64;
    stamps = [];
    lru_head = None;
    lru_tail = None;
    lru_size = 0;
    hits = 0;
    misses = 0;
    compiled = 0;
    families = 0;
    evictions = 0;
    unary = Encoded.Encoded_pebble.create_unary_cache ();
    lock = Mutex.create ();
    parent = None;
    views = Hashtbl.create 8;
  }

let graph t = t.graph
let root t = match t.parent with None -> t | Some r -> r

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let worker_view t =
  let r = root t in
  {
    graph = r.graph;
    enc = r.enc;
    memo = r.memo;
    verdict_capacity = r.verdict_capacity;
    games = Hashtbl.create 64;
    stamps = [] (* unused: stamps live on the root *);
    lru_head = None;
    lru_tail = None;
    lru_size = 0;
    hits = 0;
    misses = 0;
    compiled = 0;
    families = 0;
    evictions = 0;
    unary = r.unary (* only the root compiles against it *);
    lock = Mutex.create ();
    parent = Some r;
    views = Hashtbl.create 1;
  }

let worker_view_for t slot =
  let r = root t in
  with_lock r.lock @@ fun () ->
  match Hashtbl.find_opt r.views slot with
  | Some v -> v
  | None ->
      let v = worker_view r in
      Hashtbl.add r.views slot v;
      v

let absorb t view =
  let t = root t in
  t.hits <- t.hits + view.hits;
  t.misses <- t.misses + view.misses;
  t.compiled <- t.compiled + view.compiled;
  t.families <- t.families + view.families;
  t.evictions <- t.evictions + view.evictions;
  view.hits <- 0;
  view.misses <- 0;
  view.compiled <- 0;
  view.families <- 0;
  view.evictions <- 0

let absorb_views t =
  let r = root t in
  Hashtbl.iter (fun _ v -> absorb r v) r.views

let stats t =
  let unary_hits, unary_misses =
    Encoded.Encoded_pebble.unary_cache_stats t.unary
  in
  {
    hits = t.hits;
    misses = t.misses;
    compiled = t.compiled;
    families = t.families;
    evictions = t.evictions;
    unary_hits;
    unary_misses;
  }

(* --- intrusive LRU list ------------------------------------------------ *)

let lru_unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.lru_head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.lru_tail <- node.prev);
  node.prev <- None;
  node.next <- None

let lru_push_front t node =
  node.next <- t.lru_head;
  (match t.lru_head with Some h -> h.prev <- Some node | None -> ());
  t.lru_head <- Some node;
  if t.lru_tail = None then t.lru_tail <- Some node

let lru_touch t node =
  match t.lru_head with
  | Some h when h == node -> ()
  | _ ->
      lru_unlink t node;
      lru_push_front t node

let lru_insert t node =
  lru_push_front t node;
  t.lru_size <- t.lru_size + 1;
  if t.lru_size > t.verdict_capacity then
    match t.lru_tail with
    | None -> assert false
    | Some cold ->
        lru_unlink t cold;
        Hashtbl.remove cold.owner cold.nkey;
        t.lru_size <- t.lru_size - 1;
        t.evictions <- t.evictions + 1

(* Tree stamps are part of game keys, so worker views must agree with
   the root on them: stamping always happens on the root, under its
   lock. *)
let stamp_of t tree =
  let r = root t in
  with_lock r.lock @@ fun () ->
  match List.find_opt (fun (tr, _) -> tr == tree) r.stamps with
  | Some (_, id) -> id
  | None ->
      let id = List.length r.stamps in
      r.stamps <- (tree, id) :: r.stamps;
      id

(* Compile the child test for (subtree, n): the union game
   [(pat(T') ∪ pat(n), vars(T')) →µ_{k+1} G] splits exactly into
   (1) every triple of pat(T') — ground under µ — being in G, and
   (2) the game on [(pat(n), vars(T') ∩ vars(pat n))] with µ restricted,
   because after freezing µ the free variables and non-ground patterns
   of the union are precisely those of pat(n). *)
let compile_game t ~k tree subtree n =
  let dict = Encoded.Encoded_graph.dictionary t.enc in
  let anchor_pat = Wdpt.Subtree.pat subtree in
  let child_pat = Wdpt.Pattern_tree.pat tree n in
  let anchor_params =
    Array.of_list (Variable.Set.elements (Wdpt.Subtree.vars subtree))
  in
  let idx = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.replace idx v i) anchor_params;
  let apos_of = function
    | Term.Iri _ as term -> (
        match Dictionary.find dict term with
        | Some id -> C id
        | None -> C Encoded.Encoded_pebble.unknown_id)
    | Term.Var v -> V (Hashtbl.find idx v)
  in
  let anchor =
    Array.of_list
      (List.map
         (fun tr ->
           (apos_of tr.Triple.s, apos_of tr.Triple.p, apos_of tr.Triple.o))
         (Tgraphs.Tgraph.triples anchor_pat))
  in
  let shared =
    Variable.Set.inter (Wdpt.Subtree.vars subtree)
      (Tgraphs.Tgraph.vars child_pat)
  in
  let game =
    Encoded.Encoded_pebble.compile
      ?unary:(if t.memo then Some t.unary else None)
      ~k:(k + 1)
      (Tgraphs.Gtgraph.make child_pat shared)
      t.enc
  in
  t.compiled <- t.compiled + 1;
  {
    anchor_params;
    anchor;
    game;
    game_params = Encoded.Encoded_pebble.params game;
    verdicts = Hashtbl.create 256;
    slots = None;
  }

let game_for t ~k tree subtree n =
  if not t.memo then compile_game t ~k tree subtree n
  else begin
    let key =
      {
        stamp = stamp_of t tree;
        members = Wdpt.Subtree.members subtree;
        child = n;
        key_k = k;
      }
    in
    (* compile-or-lookup on the root is serialised under its lock; the
       compiled game (anchor, game, params) is immutable afterwards and
       safe to share across domains *)
    let shared_game r =
      with_lock r.lock @@ fun () ->
      match Hashtbl.find_opt r.games key with
      | Some g -> g
      | None ->
          let g = compile_game r ~k tree subtree n in
          Hashtbl.add r.games key g;
          g
    in
    match t.parent with
    | None -> shared_game t
    | Some r -> (
        (* the view's own table is domain-private, so the fast path
           needs no lock *)
        match Hashtbl.find_opt t.games key with
        | Some g -> g
        | None ->
            (* private verdict table and slot memo over the shared
               compiled game *)
            let g =
              { (shared_game r) with verdicts = Hashtbl.create 256; slots = None }
            in
            Hashtbl.add t.games key g;
            g)
  end

let id_of_var dict mu v =
  match Sparql.Mapping.find v mu with
  | None -> invalid_arg "Pebble_cache.child_test: µ does not cover the subtree"
  | Some iri -> (
      match Dictionary.find dict (Term.Iri iri) with
      | Some id -> id
      | None -> Encoded.Encoded_pebble.unknown_id)

(* The shared back half of the child test: anchor triples checked with
   grounded ids, then the verdict memo / kernel run. [mu_ids] is a thunk
   so the term-level caller keeps its dictionary lookups lazy on anchor
   failure. *)
let run_child_test t ~budget cg ~anchor_ids ~mu_ids =
  let value = function C id -> id | V j -> anchor_ids.(j) in
  let anchor_ok =
    Array.for_all
      (fun (a, b, c) ->
        Budget.tick budget;
        Encoded.Encoded_graph.mem t.enc (value a, value b, value c))
      cg.anchor
  in
  if not anchor_ok then false
  else begin
    let mu_ids = mu_ids () in
    let memo_key = Array.to_list mu_ids in
    match
      if t.memo then Hashtbl.find_opt cg.verdicts memo_key else None
    with
    | Some node ->
        t.hits <- t.hits + 1;
        lru_touch t node;
        Budget.tick budget;
        node.verdict
    | None ->
        t.misses <- t.misses + 1;
        let before = Encoded.Encoded_pebble.stats_families_explored () in
        let verdict = Encoded.Encoded_pebble.run ~budget cg.game ~mu:mu_ids in
        t.families <-
          t.families + (Encoded.Encoded_pebble.stats_families_explored () - before);
        if t.memo then begin
          let node =
            {
              nkey = memo_key;
              verdict;
              owner = cg.verdicts;
              prev = None;
              next = None;
            }
          in
          Hashtbl.add cg.verdicts memo_key node;
          lru_insert t node
        end;
        verdict
  end

let child_test t ?(budget = Budget.unlimited) ~k tree mu subtree n =
  if k < 1 then invalid_arg "Pebble_game.wins: k must be at least 1";
  let cg = game_for t ~k tree subtree n in
  let dict = Encoded.Encoded_graph.dictionary t.enc in
  let anchor_ids = Array.map (id_of_var dict mu) cg.anchor_params in
  run_child_test t ~budget cg ~anchor_ids ~mu_ids:(fun () ->
      Array.map (id_of_var dict mu) cg.game_params)

let slots_for cg vars =
  match cg.slots with
  | Some (v, a, g) when v == vars -> (a, g)
  | _ ->
      let slot_of v =
        let rec go i =
          if i >= Array.length vars then
            invalid_arg
              (Fmt.str
                 "Pebble_cache.child_test_ids: variable %a missing from the \
                  table"
                 Variable.pp v)
          else if Variable.equal vars.(i) v then i
          else go (i + 1)
        in
        go 0
      in
      let a = Array.map slot_of cg.anchor_params in
      let g = Array.map slot_of cg.game_params in
      cg.slots <- Some (vars, a, g);
      (a, g)

let stage_child_test_ids t ?(budget = Budget.unlimited) ~k tree ~vars subtree
    n =
  if k < 1 then invalid_arg "Pebble_game.wins: k must be at least 1";
  let stage () =
    let cg = game_for t ~k tree subtree n in
    let anchor_slots, game_slots = slots_for cg vars in
    (cg, anchor_slots, game_slots)
  in
  (* [memo:false] means no reuse at all (the ablation baseline), so the
     game must be recompiled per candidate, not once per batch *)
  let staged = if t.memo then Some (stage ()) else None in
  fun assignment ->
    let cg, anchor_slots, game_slots =
      match staged with Some s -> s | None -> stage ()
    in
    let anchor_ids = Array.map (Array.get assignment) anchor_slots in
    run_child_test t ~budget cg ~anchor_ids ~mu_ids:(fun () ->
        Array.map (Array.get assignment) game_slots)

let child_test_ids t ?budget ~k tree ~vars ~assignment subtree n =
  stage_child_test_ids t ?budget ~k tree ~vars subtree n assignment
