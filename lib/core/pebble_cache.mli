(** Evaluation-wide cache for the Theorem-1 pebble-game child tests.

    A single evaluation ({!Pebble_eval.check}/[solutions], or
    {!Enumerate.solutions} under [`Pebble k]) issues the relaxed
    extension test [(pat(T') ∪ pat(n), vars(T')) →µ_{k+1} G] for many
    (mapping, subtree, child) combinations against one fixed graph. This
    layer makes the repeated work incremental:

    - the graph is dictionary-encoded once ({!Encoded_graph}), shared by
      every test;
    - each (subtree, child) game is compiled once
      ({!Encoded_pebble.compile}), including its µ-independent unary
      candidate domains, and replayed across candidate mappings;
    - verdicts are memoized keyed on µ restricted to the variables the
      child shares with the subtree — sound because the union game
      decomposes exactly into "subtree pattern ground under µ is in G"
      plus the game on [(pat(n), shared)] with [µ|shared].

    Results are identical to the uncached {!Pebble.Pebble_game.wins}
    path (cross-checked by qcheck in the tests). *)

open Rdf

type t

type stats = { hits : int; misses : int; compiled : int; families : int }
(** [hits]/[misses]: verdict-memo outcomes; [compiled]: child games
    compiled; [families]: partial-homomorphism families enumerated by
    the kernel on behalf of this cache. *)

val create : ?memo:bool -> Graph.t -> t
(** A cache for evaluations against [graph]. [memo:false] disables both
    game reuse and verdict memoization (every call recompiles and
    replays) while still counting work — the A6 ablation baseline. *)

val graph : t -> Graph.t
(** The graph this cache was created for. Callers must not use the
    cache against any other graph (checked by physical equality in
    {!Pebble_eval}). *)

val child_test :
  t ->
  ?budget:Resource.Budget.t ->
  k:int ->
  Wdpt.Pattern_tree.t ->
  Sparql.Mapping.t ->
  Wdpt.Subtree.t ->
  Wdpt.Pattern_tree.node ->
  bool
(** Cached equivalent of {!Pebble_eval.child_test} (same arguments minus
    the graph, which the cache owns). Budget-transparent: ticks through
    {!Encoded_pebble.run} on misses and at least once on hits.

    Precondition: [dom µ = vars(subtree)] — which is exactly what
    {!Wdpt.Subtree.matching} and the enumerator produce. (The term-level
    kernel would ground a child variable bound by a larger µ, whereas
    the compiled game quantifies it existentially.) *)

val stats : t -> stats
val pp_stats : stats Fmt.t
