(** Evaluation-wide cache for the Theorem-1 pebble-game child tests.

    A single evaluation ({!Pebble_eval.check}/[solutions], or
    {!Enumerate.solutions} under [`Pebble k]) issues the relaxed
    extension test [(pat(T') ∪ pat(n), vars(T')) →µ_{k+1} G] for many
    (mapping, subtree, child) combinations against one fixed graph. This
    layer makes the repeated work incremental:

    - the graph is dictionary-encoded once ({!Encoded_graph}), shared by
      every test;
    - each (subtree, child) game is compiled once
      ({!Encoded_pebble.compile}), including its µ-independent unary
      candidate domains, and replayed across candidate mappings;
    - verdicts are memoized keyed on µ restricted to the variables the
      child shares with the subtree — sound because the union game
      decomposes exactly into "subtree pattern ground under µ is in G"
      plus the game on [(pat(n), shared)] with [µ|shared].

    Results are identical to the uncached {!Pebble.Pebble_game.wins}
    path (cross-checked by qcheck in the tests). *)

open Rdf

type t

type stats = {
  hits : int;
  misses : int;
  compiled : int;
  families : int;
  evictions : int;
  unary_hits : int;
  unary_misses : int;
}
(** [hits]/[misses]: verdict-memo outcomes; [compiled]: child games
    compiled; [families]: partial-homomorphism families enumerated by
    the kernel on behalf of this cache; [evictions]: verdicts dropped by
    the LRU capacity bound; [unary_hits]/[unary_misses]: µ-independent
    unary candidate domains reused across game compiles vs actually
    scanned (the per-(tree, store) sharing of base domains). *)

val create : ?memo:bool -> ?verdict_capacity:int -> Graph.t -> t
(** A cache for evaluations against [graph]. [memo:false] disables both
    game reuse and verdict memoization (every call recompiles and
    replays) while still counting work — the A6 ablation baseline.
    [verdict_capacity] bounds the number of memoized verdicts across
    {e all} games of this cache (least-recently-used eviction; default
    [2^20]), so enumerations over huge µ|shared spaces stop growing
    without bound. Raises [Invalid_argument] if it is [< 1]. *)

val graph : t -> Graph.t
(** The graph this cache was created for. Callers must not use the
    cache against any other graph (checked by epoch equality in
    {!Pebble_eval}). *)

val child_test :
  t ->
  ?budget:Resource.Budget.t ->
  k:int ->
  Wdpt.Pattern_tree.t ->
  Sparql.Mapping.t ->
  Wdpt.Subtree.t ->
  Wdpt.Pattern_tree.node ->
  bool
(** Cached equivalent of {!Pebble_eval.child_test} (same arguments minus
    the graph, which the cache owns). Budget-transparent: ticks through
    {!Encoded_pebble.run} on misses and at least once on hits.

    Precondition: [dom µ = vars(subtree)] — which is exactly what
    {!Wdpt.Subtree.matching} and the enumerator produce. (The term-level
    kernel would ground a child variable bound by a larger µ, whereas
    the compiled game quantifies it existentially.) *)

val child_test_ids :
  t ->
  ?budget:Resource.Budget.t ->
  k:int ->
  Wdpt.Pattern_tree.t ->
  vars:Variable.t array ->
  assignment:int array ->
  Wdpt.Subtree.t ->
  Wdpt.Pattern_tree.node ->
  bool
(** Id-level variant of {!child_test} for the encoded enumerator: the
    candidate is the flat dictionary-id [assignment] over the shared
    variable table [vars] ({!Plan_cache.variables}) instead of a term
    mapping, so no decode/re-encode round-trip happens per candidate.
    [assignment] must cover [vars(subtree)] with ids valid for this
    cache's graph (which the encoded join guarantees). Same precondition
    and verdict memoization as {!child_test}; param-to-slot resolution
    is cached per game keyed on [vars]'s physical identity. *)

val stage_child_test_ids :
  t ->
  ?budget:Resource.Budget.t ->
  k:int ->
  Wdpt.Pattern_tree.t ->
  vars:Variable.t array ->
  Wdpt.Subtree.t ->
  Wdpt.Pattern_tree.node ->
  int array ->
  bool
(** Staged form of {!child_test_ids}: resolves the game and the
    param-to-slot tables once for a (subtree, child) pair and returns
    the per-assignment test. The enumerator stages each child's test
    once per candidate batch instead of re-resolving them per
    candidate. *)

val worker_view : t -> t
(** A domain-private view over the same cache for one pool worker.
    Compiled child games are shared with the root cache read-only
    (compile-or-lookup is serialised on the root, under a mutex);
    everything mutable — verdict tables, the LRU recency list, the
    per-game slot memos, the hit/miss/family/eviction counters — is
    private to the view, so workers never contend after a game exists.
    A view must only ever be used by one domain at a time; hand its
    counters back with {!absorb} when the parallel region ends.
    Views of a view share the one root. *)

val worker_view_for : t -> int -> t
(** The memoized {!worker_view} of this cache for pool slot [slot]:
    one view per slot, created on first use and kept on the root, so a
    worker's verdict memo stays warm across evaluations that reuse the
    same pool. *)

val absorb : t -> t -> unit
(** [absorb t view] folds [view]'s counters into [t] (the root) and
    zeroes them on the view, so {!stats} of the root reports the whole
    evaluation including parallel work. Call after the workers have
    quiesced (the pool's batch completion is the synchronisation
    point). Unary-domain counters live on the shared root already and
    are not double-counted. *)

val absorb_views : t -> unit
(** {!absorb} every memoized worker view of this cache's root. What the
    enumerator calls when a parallel evaluation ends. *)

val stats : t -> stats
val pp_stats : stats Fmt.t
