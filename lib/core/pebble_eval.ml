open Rdf
open Tgraphs
module Budget = Resource.Budget

type kernel = Term | Cached of Pebble_cache.t

let child_test ?budget ?(kernel = Term) ~k tree graph mu subtree n =
  match kernel with
  | Cached cache when Graph.epoch (Pebble_cache.graph cache) = Graph.epoch graph
    ->
      Pebble_cache.child_test cache ?budget ~k tree mu subtree n
  | Cached _ | Term ->
      let s =
        Tgraph.union (Wdpt.Subtree.pat subtree) (Wdpt.Pattern_tree.pat tree n)
      in
      let g = Gtgraph.make s (Wdpt.Subtree.vars subtree) in
      Pebble.Pebble_game.wins ?budget ~k:(k + 1) g
        ~mu:(Sparql.Mapping.to_assignment mu) graph

let check ?(budget = Budget.unlimited) ?kernel ~k forest graph mu =
  if k < 1 then invalid_arg "Pebble_eval.check: k must be at least 1";
  let kernel =
    match kernel with
    | Some kernel -> kernel
    | None -> Cached (Pebble_cache.create graph)
  in
  Budget.with_phase budget "pebble-eval" @@ fun () ->
  List.exists
    (fun tree ->
      match Wdpt.Subtree.matching tree graph mu with
      | None -> false
      | Some subtree ->
          not
            (List.exists
               (child_test ~budget ~kernel ~k tree graph mu subtree)
               (Wdpt.Subtree.children subtree)))
    forest

let check_pattern ?budget ?kernel ~k p graph mu =
  check ?budget ?kernel ~k (Wdpt.Pattern_forest.of_algebra p) graph mu

let check_auto ?budget ?kernel forest graph mu =
  check ?budget ?kernel
    ~k:(Domination_width.of_forest ?budget forest)
    forest graph mu

let solutions ?(budget = Budget.unlimited) ?kernel ~k forest graph =
  let kernel =
    match kernel with
    | Some kernel -> kernel
    | None -> Cached (Pebble_cache.create graph)
  in
  Budget.with_phase budget "pebble-eval" @@ fun () ->
  let enc = Encoded.Encoded_graph.of_graph_cached graph in
  List.fold_left
    (fun acc tree ->
      List.fold_left
        (fun acc subtree ->
          let homs =
            Encoded.Encoded_hom.all ~budget
              (Encoded.Encoded_hom.compile (Wdpt.Subtree.pat subtree) enc)
          in
          List.fold_left
            (fun acc h ->
              match Sparql.Mapping.of_assignment h with
              | None -> acc
              | Some mu ->
                  if
                    (not (Sparql.Mapping.Set.mem mu acc))
                    && check ~budget ~kernel ~k forest graph mu
                  then begin
                    Budget.solution budget;
                    Sparql.Mapping.Set.add mu acc
                  end
                  else acc)
            acc homs)
        acc
        (Wdpt.Subtree.all ~budget tree))
    Sparql.Mapping.Set.empty forest
