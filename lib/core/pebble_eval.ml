open Rdf
open Tgraphs
module Budget = Resource.Budget

let child_test ?budget ~k tree graph mu subtree n =
  let s =
    Tgraph.union (Wdpt.Subtree.pat subtree) (Wdpt.Pattern_tree.pat tree n)
  in
  let g = Gtgraph.make s (Wdpt.Subtree.vars subtree) in
  Pebble.Pebble_game.wins ?budget ~k:(k + 1) g
    ~mu:(Sparql.Mapping.to_assignment mu) graph

let check ?(budget = Budget.unlimited) ~k forest graph mu =
  if k < 1 then invalid_arg "Pebble_eval.check: k must be at least 1";
  Budget.with_phase budget "pebble-eval" @@ fun () ->
  List.exists
    (fun tree ->
      match Wdpt.Subtree.matching tree graph mu with
      | None -> false
      | Some subtree ->
          not
            (List.exists
               (child_test ~budget ~k tree graph mu subtree)
               (Wdpt.Subtree.children subtree)))
    forest

let check_pattern ?budget ~k p graph mu =
  check ?budget ~k (Wdpt.Pattern_forest.of_algebra p) graph mu

let check_auto ?budget forest graph mu =
  check ?budget ~k:(Domination_width.of_forest ?budget forest) forest graph mu

let solutions ?(budget = Budget.unlimited) ~k forest graph =
  Budget.with_phase budget "pebble-eval" @@ fun () ->
  let target = Graph.to_index graph in
  List.fold_left
    (fun acc tree ->
      List.fold_left
        (fun acc subtree ->
          let homs =
            Homomorphism.all ~budget ~source:(Wdpt.Subtree.pat subtree) ~target
              ()
          in
          List.fold_left
            (fun acc h ->
              match Sparql.Mapping.of_assignment h with
              | None -> acc
              | Some mu ->
                  if
                    (not (Sparql.Mapping.Set.mem mu acc))
                    && check ~budget ~k forest graph mu
                  then begin
                    Budget.solution budget;
                    Sparql.Mapping.Set.add mu acc
                  end
                  else acc)
            acc homs)
        acc
        (Wdpt.Subtree.all ~budget tree))
    Sparql.Mapping.Set.empty forest
