(** The paper's polynomial-time evaluation algorithm (Theorem 1).

    Like the natural algorithm, but the NP-hard test "can [µ] be extended
    to child [n] by a homomorphism" is replaced with the existential
    (k+1)-pebble game on [(pat(T^µ_i) ∪ pat(n), vars(T^µ_i))]:

    - {b soundness} holds unconditionally: if the algorithm accepts then
      [µ ∈ ⟦F⟧G] (rejecting children via the relaxation only ever rejects
      a superset of the real extensions);
    - {b completeness} holds whenever [dw(F) ≤ k] (the completeness proof
      of Theorem 1).

    For fixed [k] the algorithm runs in polynomial time in [|F| + |G|]. *)

open Rdf

type kernel =
  | Term  (** the reference term-level {!Pebble.Pebble_game.wins} *)
  | Cached of Pebble_cache.t
      (** the dictionary-encoded kernel with compiled-game reuse and
          verdict memoization; results are identical to [Term] *)

val child_test :
  ?budget:Resource.Budget.t -> ?kernel:kernel -> k:int ->
  Wdpt.Pattern_tree.t -> Graph.t ->
  Sparql.Mapping.t -> Wdpt.Subtree.t -> Wdpt.Pattern_tree.node -> bool
(** The relaxed extension test of the algorithm:
    [(pat(T') ∪ pat(n), vars(T')) →µ_{k+1} G]. Exposed for the optimised
    enumerator and for tests. [kernel] defaults to [Term] here (a single
    test has nothing to reuse); a [Cached] kernel is used only when its
    cache was created for [graph] (physical equality), otherwise the
    term path runs. *)

val check :
  ?budget:Resource.Budget.t -> ?kernel:kernel -> k:int ->
  Wdpt.Pattern_forest.t -> Graph.t -> Sparql.Mapping.t -> bool
(** [check ~k F G µ] decides [µ ∈ ⟦F⟧G], exactly when [dw(F) ≤ k].
    Raises [Invalid_argument] if [k < 1]. When no [kernel] is given, a
    fresh {!Pebble_cache.t} is created for the call, so the per-child
    games are compiled once across the forest. *)

val check_pattern :
  ?budget:Resource.Budget.t -> ?kernel:kernel -> k:int -> Sparql.Algebra.t ->
  Graph.t -> Sparql.Mapping.t -> bool

val check_auto :
  ?budget:Resource.Budget.t -> ?kernel:kernel -> Wdpt.Pattern_forest.t ->
  Graph.t -> Sparql.Mapping.t -> bool
(** Compute [dw(F)] first (exponential in the query only), then run
    {!check} with that bound — always exact. *)

val solutions :
  ?budget:Resource.Budget.t -> ?kernel:kernel -> k:int ->
  Wdpt.Pattern_forest.t -> Graph.t -> Sparql.Mapping.Set.t
(** Answer enumeration built on the polynomial membership test: candidate
    mappings are generated per subtree from homomorphisms of its pattern
    and filtered with the pebble test. Exact when [dw(F) ≤ k]. When no
    [kernel] is given, one evaluation-wide {!Pebble_cache.t} is shared by
    every membership test of the call. *)
