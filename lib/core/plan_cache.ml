open Rdf
module Budget = Resource.Budget

type stats = {
  pebble : Pebble_cache.stats;
  hom_sources : int;
  invalidations : int;
  plan_evictions : int;
  live_entries : int;
  decision_hits : int;
  decision_misses : int;
}

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>%a@ plan cache: %d hom sources compiled, %d invalidations, %d \
     evictions, %d live entries, %d/%d join-order decisions reused@]"
    Pebble_cache.pp_stats s.pebble s.hom_sources s.invalidations
    s.plan_evictions s.live_entries s.decision_hits
    (s.decision_hits + s.decision_misses)

(* Per-tree compiled join artefacts. Every node pattern of a tree is
   compiled against ONE shared variable table covering vars(T), so the
   enumerator's assignments are flat int arrays over that table: a
   parent's solution doubles as the child join's [pre] with no
   re-encoding, and the union of parent and extension bindings is
   implicit in the array. *)
type tree_sources = {
  tvars : Variable.t array;
  node_sources : (Wdpt.Pattern_tree.node, Encoded.Encoded_hom.source) Hashtbl.t;
  node_decisions :
    (Wdpt.Pattern_tree.node, Optimizer.Join_order.decision) Hashtbl.t;
      (* cost-based plans, computed against this entry's store — epoch
         keyed like everything else here, so the server's cross-connection
         cache serves optimized plans until the graph changes *)
  naive_verdicts : (Wdpt.Pattern_tree.node, (int list, bool) Hashtbl.t) Hashtbl.t;
      (* per-node existence-verdict memo for the naive maximality test:
         the verdict of "does a child extension exist?" depends on the
         candidate only through the child's own variable slots, so it is
         keyed on those ids. Shared across evaluations of the same store
         epoch — the naive path's counterpart of Pebble_cache's verdict
         memo, without which warm naive re-evaluations would recompute
         every exists-join the pebble path answers with a hash hit. *)
}

(* Cap on each per-node naive-verdict table: past this, new verdicts are
   computed but not remembered. Crude compared to the pebble cache's LRU,
   but the naive route is only ever chosen for nodes the optimizer
   estimates a small candidate count for, so the cap is rarely felt. *)
let naive_verdict_limit = 1 lsl 16

type entry = {
  epoch : int;
  enc : Encoded.Encoded_graph.t;
  pebble : Pebble_cache.t;
  mutable trees : (Wdpt.Pattern_tree.t * tree_sources) list;
      (* keyed on physical identity, like Pebble_cache's tree stamps:
         plans hold their forest alive, so the same tree value flows
         through every evaluation of a plan *)
}

let default_plan_capacity = 4

type t = {
  verdict_capacity : int option;
  plan_capacity : int;
  mutable entries : entry list;
      (* most-recently-used first, keyed by store epoch; at most
         [plan_capacity] long, so round-robin evaluation over a few
         stores stops rebuilding everything on every switch *)
  mutable hom_sources : int;
  mutable invalidations : int;
  mutable plan_evictions : int;
  mutable retired : Pebble_cache.stats;
      (* accumulated stats of pebble caches dropped by eviction, so
         [stats] reports the plan's whole history *)
  decisions : Optimizer.Decision_cache.t;
      (* join-order memo shared across entries and trees: epoch is part
         of its key, so an evicted store's decisions age out by FIFO
         instead of being flushed *)
}

let zero_pebble_stats =
  {
    Pebble_cache.hits = 0;
    misses = 0;
    compiled = 0;
    families = 0;
    evictions = 0;
    unary_hits = 0;
    unary_misses = 0;
  }

let add_pebble_stats (a : Pebble_cache.stats) (b : Pebble_cache.stats) =
  {
    Pebble_cache.hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    compiled = a.compiled + b.compiled;
    families = a.families + b.families;
    evictions = a.evictions + b.evictions;
    unary_hits = a.unary_hits + b.unary_hits;
    unary_misses = a.unary_misses + b.unary_misses;
  }

let create ?verdict_capacity ?(plan_capacity = default_plan_capacity) () =
  if plan_capacity < 1 then
    invalid_arg "Plan_cache.create: plan_capacity must be positive";
  {
    verdict_capacity;
    plan_capacity;
    entries = [];
    hom_sources = 0;
    invalidations = 0;
    plan_evictions = 0;
    retired = zero_pebble_stats;
    decisions = Optimizer.Decision_cache.create ();
  }

let entry_for t graph =
  let epoch = Graph.epoch graph in
  match t.entries with
  | e :: _ when e.epoch = epoch -> e
  | entries -> (
      match List.partition (fun e -> e.epoch = epoch) entries with
      | [ e ], rest ->
          (* known store, not most recent: bump to the front *)
          t.entries <- e :: rest;
          e
      | _ ->
          (* A build while other entries are live is what the old
             single-entry cache counted as an invalidation; the count
             keeps that meaning (first-ever build is free). *)
          if entries <> [] then t.invalidations <- t.invalidations + 1;
          let e =
            {
              epoch;
              enc = Encoded.Encoded_graph.of_graph_cached graph;
              pebble =
                Pebble_cache.create ?verdict_capacity:t.verdict_capacity graph;
              trees = [];
            }
          in
          let live = e :: entries in
          let keep, evicted =
            if List.length live <= t.plan_capacity then (live, [])
            else
              ( List.filteri (fun i _ -> i < t.plan_capacity) live,
                List.filteri (fun i _ -> i >= t.plan_capacity) live )
          in
          List.iter
            (fun old ->
              t.plan_evictions <- t.plan_evictions + 1;
              (* fold outstanding worker-view counters into the root
                 first: retiring the bare root stats would drop whatever
                 the views hadn't absorbed yet, making [stats] totals
                 dip across invalidation churn *)
              Pebble_cache.absorb_views old.pebble;
              t.retired <-
                add_pebble_stats t.retired (Pebble_cache.stats old.pebble))
            evicted;
          t.entries <- keep;
          e)

let encoded t graph = (entry_for t graph).enc
let pebble t graph = (entry_for t graph).pebble

let tree_sources t graph tree =
  let e = entry_for t graph in
  match List.find_opt (fun (tr, _) -> tr == tree) e.trees with
  | Some (_, ts) -> ts
  | None ->
      let ts =
        {
          tvars =
            Array.of_list
              (Variable.Set.elements (Wdpt.Pattern_tree.vars tree));
          node_sources = Hashtbl.create 8;
          node_decisions = Hashtbl.create 8;
          naive_verdicts = Hashtbl.create 8;
        }
      in
      e.trees <- (tree, ts) :: e.trees;
      ts

let variables t graph tree = (tree_sources t graph tree).tvars

let node_source t graph tree n =
  let e = entry_for t graph in
  let ts = tree_sources t graph tree in
  match Hashtbl.find_opt ts.node_sources n with
  | Some source -> source
  | None ->
      let source =
        Encoded.Encoded_hom.compile ~vars:ts.tvars
          (Wdpt.Pattern_tree.pat tree n)
          e.enc
      in
      t.hom_sources <- t.hom_sources + 1;
      Hashtbl.add ts.node_sources n source;
      source

let node_decision ?budget t graph tree n =
  let e = entry_for t graph in
  let ts = tree_sources t graph tree in
  match Hashtbl.find_opt ts.node_decisions n with
  | Some d -> d
  | None ->
      let source = node_source t graph tree n in
      (* Bound at node entry: the variables of the strict ancestors of
         [n] — every subtree the enumerator extends into [n] from
         contains the full root-to-parent path, so these are guaranteed
         bound (further subtree nodes may bind more; the adaptive
         strategy picks those up at run time). *)
      let bound_set =
        let rec up acc = function
          | None -> acc
          | Some m ->
              up
                (Variable.Set.union acc (Wdpt.Pattern_tree.vars_of_node tree m))
                (Wdpt.Pattern_tree.parent tree m)
        in
        up Variable.Set.empty (Wdpt.Pattern_tree.parent tree n)
      in
      let bound_arr =
        Array.map (fun v -> Variable.Set.mem v bound_set) ts.tvars
      in
      let d =
        Optimizer.Decision_cache.compile ?budget t.decisions ~epoch:e.epoch
          e.enc
          ~nvars:(Array.length ts.tvars)
          ~bound:(fun v -> bound_arr.(v))
          ~node:n
          (Encoded.Encoded_hom.patterns source)
      in
      Hashtbl.add ts.node_decisions n d;
      d

let naive_child_test ?budget ?strategy t graph tree n =
  let source = node_source t graph tree n in
  let ts = tree_sources t graph tree in
  let table =
    match Hashtbl.find_opt ts.naive_verdicts n with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 64 in
        Hashtbl.add ts.naive_verdicts n h;
        h
  in
  (* A fold with [pre] depends on the prefix only through the child's own
     variable slots; everything else in the assignment is invisible to
     the child's patterns. *)
  let slots = Array.of_list (Encoded.Encoded_hom.own_slots source) in
  fun assignment ->
    Option.iter Budget.tick budget;
    let key = Array.fold_right (fun s acc -> assignment.(s) :: acc) slots [] in
    match Hashtbl.find_opt table key with
    | Some v -> v
    | None ->
        let v =
          Encoded.Encoded_hom.fold ?budget ?strategy ~pre:assignment source
            ~init:false
            ~f:(fun _ _ -> (true, `Stop))
        in
        if Hashtbl.length table < naive_verdict_limit then
          Hashtbl.add table key v;
        v

let stats t =
  let live =
    List.fold_left
      (fun acc e -> add_pebble_stats acc (Pebble_cache.stats e.pebble))
      zero_pebble_stats t.entries
  in
  let d = Optimizer.Decision_cache.stats t.decisions in
  {
    pebble = add_pebble_stats t.retired live;
    hom_sources = t.hom_sources;
    invalidations = t.invalidations;
    plan_evictions = t.plan_evictions;
    live_entries = List.length t.entries;
    decision_hits = d.Optimizer.Decision_cache.hits;
    decision_misses = d.Optimizer.Decision_cache.misses;
  }
