(** Plan-level cache: compiled evaluation artefacts reused across
    repeated {!Engine.solutions} calls on the same plan.

    A plan's expensive-to-build, graph-dependent state is (1) the
    dictionary-encoded copy of the graph, (2) the compiled hom-join
    sources of every tree node (one per node, compiled against a
    tree-wide shared variable table so enumeration assignments are flat
    int arrays), and (3) the {!Pebble_cache} of compiled child games and
    memoized verdicts. This module holds all three in a small
    most-recently-used store keyed on the graph's {!Rdf.Graph.epoch}
    (epochs are unique per construction): evaluating the same plan
    against a recently-seen store reuses everything, so round-robin
    evaluation over a few stores stops rebuilding on every switch;
    only past the capacity does the coldest entry get dropped.

    All artefacts are compiled on demand, so a cache costs nothing until
    the first evaluation touches it. *)

open Rdf

type t

type stats = {
  pebble : Pebble_cache.stats;
      (** accumulated over every entry this cache has held, including
          ones dropped by eviction *)
  hom_sources : int;  (** node join sources compiled over the lifetime *)
  invalidations : int;
      (** entries built for a store epoch the cache did not hold while
          it already held others — the old single-entry cache's
          invalidation count (the first-ever build is free) *)
  plan_evictions : int;
      (** entries dropped because the store capacity was exceeded *)
  live_entries : int;  (** entries currently held *)
  decision_hits : int;
      (** join-order decisions served from the cross-tree
          {!Optimizer.Decision_cache} memo — structurally identical node
          joins (same patterns up to slot renaming, same bound split,
          same store epoch) planned once *)
  decision_misses : int;  (** decisions actually compiled *)
}

val create : ?verdict_capacity:int -> ?plan_capacity:int -> unit -> t
(** [verdict_capacity] is forwarded to the {!Pebble_cache.create} of
    every entry. [plan_capacity] bounds how many stores are cached at
    once (default 4; raises [Invalid_argument] if [< 1]). *)

val encoded : t -> Graph.t -> Encoded.Encoded_graph.t
(** The encoded copy of [graph] for its entry (building the entry, and
    possibly evicting the coldest one, if [graph]'s epoch is absent). *)

val pebble : t -> Graph.t -> Pebble_cache.t
(** The pebble-game cache of [graph]'s entry. *)

val variables : t -> Graph.t -> Wdpt.Pattern_tree.t -> Variable.t array
(** The tree's shared variable table: the decode table of every source
    returned by {!node_source} for this tree. *)

val node_source :
  t -> Graph.t -> Wdpt.Pattern_tree.t -> Wdpt.Pattern_tree.node ->
  Encoded.Encoded_hom.source
(** The compiled hom-join source of [pat tree n] against [graph],
    compiled on first use and reused while [graph]'s entry stays
    cached. *)

val node_decision :
  ?budget:Resource.Budget.t ->
  t -> Graph.t -> Wdpt.Pattern_tree.t -> Wdpt.Pattern_tree.node ->
  Optimizer.Join_order.decision
(** The cost-based plan of node [n] against [graph]'s statistics: join
    order, per-step cardinality estimates, and the pebble-vs-naive
    maximality verdict, compiled on first use ({!Optimizer.Join_order})
    with the node's ancestors as the bound-variable seed, and cached for
    as long as [graph]'s epoch entry lives — the server's
    cross-connection plan cache serves these without re-deriving
    anything. *)

val naive_child_test :
  ?budget:Resource.Budget.t ->
  ?strategy:Encoded.Encoded_hom.strategy ->
  t -> Graph.t -> Wdpt.Pattern_tree.t -> Wdpt.Pattern_tree.node ->
  int array -> bool
(** A memoized naive maximality test for child [n]: does any
    homomorphism of [pat tree n] extend the given encoded assignment?
    Verdicts are cached per node, keyed on the assignment's values at
    the child's {!Encoded.Encoded_hom.own_slots} (the only slots the
    answer depends on), for as long as [graph]'s epoch entry lives —
    the naive counterpart of the pebble cache's verdict memo, chosen by
    the optimizer when the child join is estimated cheaper to run
    directly than to stage a pebble game for. Exact, like the pebble
    test at [k >= dw]. Not safe for concurrent callers (the enumerator
    only uses it from its sequential path). *)

val stats : t -> stats
val pp_stats : stats Fmt.t
