(** Plan-level cache: compiled evaluation artefacts reused across
    repeated {!Engine.solutions} calls on the same plan.

    A plan's expensive-to-build, graph-dependent state is (1) the
    dictionary-encoded copy of the graph, (2) the compiled hom-join
    sources of every tree node (one per node, compiled against a
    tree-wide shared variable table so enumeration assignments are flat
    int arrays), and (3) the {!Pebble_cache} of compiled child games and
    memoized verdicts. This module holds all three in a small
    most-recently-used store keyed on the graph's {!Rdf.Graph.epoch}
    (epochs are unique per construction): evaluating the same plan
    against a recently-seen store reuses everything, so round-robin
    evaluation over a few stores stops rebuilding on every switch;
    only past the capacity does the coldest entry get dropped.

    All artefacts are compiled on demand, so a cache costs nothing until
    the first evaluation touches it. *)

open Rdf

type t

type stats = {
  pebble : Pebble_cache.stats;
      (** accumulated over every entry this cache has held, including
          ones dropped by eviction *)
  hom_sources : int;  (** node join sources compiled over the lifetime *)
  invalidations : int;
      (** entries built for a store epoch the cache did not hold while
          it already held others — the old single-entry cache's
          invalidation count (the first-ever build is free) *)
  plan_evictions : int;
      (** entries dropped because the store capacity was exceeded *)
  live_entries : int;  (** entries currently held *)
}

val create : ?verdict_capacity:int -> ?plan_capacity:int -> unit -> t
(** [verdict_capacity] is forwarded to the {!Pebble_cache.create} of
    every entry. [plan_capacity] bounds how many stores are cached at
    once (default 4; raises [Invalid_argument] if [< 1]). *)

val encoded : t -> Graph.t -> Encoded.Encoded_graph.t
(** The encoded copy of [graph] for its entry (building the entry, and
    possibly evicting the coldest one, if [graph]'s epoch is absent). *)

val pebble : t -> Graph.t -> Pebble_cache.t
(** The pebble-game cache of [graph]'s entry. *)

val variables : t -> Graph.t -> Wdpt.Pattern_tree.t -> Variable.t array
(** The tree's shared variable table: the decode table of every source
    returned by {!node_source} for this tree. *)

val node_source :
  t -> Graph.t -> Wdpt.Pattern_tree.t -> Wdpt.Pattern_tree.node ->
  Encoded.Encoded_hom.source
(** The compiled hom-join source of [pat tree n] against [graph],
    compiled on first use and reused while [graph]'s entry stays
    cached. *)

val stats : t -> stats
val pp_stats : stats Fmt.t
