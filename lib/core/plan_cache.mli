(** Plan-level cache: compiled evaluation artefacts reused across
    repeated {!Engine.solutions} calls on the same plan.

    A plan's expensive-to-build, graph-dependent state is (1) the
    dictionary-encoded copy of the graph, (2) the compiled hom-join
    sources of every tree node (one per node, compiled against a
    tree-wide shared variable table so enumeration assignments are flat
    int arrays), and (3) the {!Pebble_cache} of compiled child games and
    memoized verdicts. This module holds all three keyed on the graph's
    {!Rdf.Graph.epoch}: evaluating the same plan against the same store
    again reuses everything; evaluating it against a different (or
    derived — epochs are unique per construction) store drops the stale
    entry, counts an invalidation, and rebuilds lazily.

    All artefacts are compiled on demand, so a cache costs nothing until
    the first evaluation touches it. *)

open Rdf

type t

type stats = {
  pebble : Pebble_cache.stats;
      (** accumulated over every entry this cache has held, including
          ones dropped by invalidation *)
  hom_sources : int;  (** node join sources compiled over the lifetime *)
  invalidations : int;  (** entries dropped because the graph epoch changed *)
}

val create : ?verdict_capacity:int -> unit -> t
(** [verdict_capacity] is forwarded to the {!Pebble_cache.create} of
    every entry. *)

val encoded : t -> Graph.t -> Encoded.Encoded_graph.t
(** The encoded copy of [graph] for the current entry (building the
    entry if the epoch changed). *)

val pebble : t -> Graph.t -> Pebble_cache.t
(** The pebble-game cache of the current entry. *)

val variables : t -> Graph.t -> Wdpt.Pattern_tree.t -> Variable.t array
(** The tree's shared variable table: the decode table of every source
    returned by {!node_source} for this tree. *)

val node_source :
  t -> Graph.t -> Wdpt.Pattern_tree.t -> Wdpt.Pattern_tree.node ->
  Encoded.Encoded_hom.source
(** The compiled hom-join source of [pat tree n] against [graph],
    compiled on first use and reused until the epoch changes. *)

val stats : t -> stats
val pp_stats : stats Fmt.t
