module Budget = Resource.Budget

(* Structure B = A with one tuple removed from one relation. *)
let without_tuple a name tuple =
  Structure.make ~size:(Structure.size a)
    ~relations:
      (List.map
         (fun rel ->
           let tuples = Structure.tuples a rel in
           let tuples =
             if rel = name then List.filter (fun u -> u <> tuple) tuples
             else tuples
           in
           (rel, tuples))
         (Structure.relation_names a))
    ~distinguished:(Structure.distinguished a) ()

let shrinking_endomorphism ?(budget = Budget.unlimited) a =
  let rec try_constraints = function
    | [] -> None
    | (name, tuple) :: rest -> (
        Budget.tick budget;
        match Hom.find ~budget a (without_tuple a name tuple) with
        | Some h -> Some h
        | None -> try_constraints rest)
  in
  try_constraints
    (List.concat_map
       (fun name -> List.map (fun t -> (name, t)) (Structure.tuples a name))
       (Structure.relation_names a))

let is_core ?budget a = Option.is_none (shrinking_endomorphism ?budget a)

(* Compact the image of an endomorphism into a fresh structure. *)
let image a h =
  let used = Array.make (Structure.size a) false in
  Array.iter (fun e -> used.(e) <- true) h;
  List.iter (fun e -> used.(e) <- true) (List.map (fun e -> h.(e)) (Structure.distinguished a));
  let fresh_of = Array.make (Structure.size a) (-1) in
  let count = ref 0 in
  Array.iteri
    (fun e u ->
      if u then begin
        fresh_of.(e) <- !count;
        incr count
      end)
    used;
  Structure.make ~size:!count
    ~relations:
      (List.map
         (fun name ->
           ( name,
             List.map
               (Array.map (fun e -> fresh_of.(h.(e))))
               (Structure.tuples a name) ))
         (Structure.relation_names a))
    ~distinguished:
      (List.map (fun e -> fresh_of.(h.(e))) (Structure.distinguished a))
    ()

let core ?(budget = Budget.unlimited) a =
  Budget.with_phase budget "csp-core" @@ fun () ->
  let rec shrink a =
    match shrinking_endomorphism ~budget a with
    | None -> a
    | Some h -> shrink (image a h)
  in
  shrink a

let core_treewidth ?budget a = Structure.treewidth ?budget (core ?budget a)
