(** Cores of relational structures with distinguished elements, by
    iterated retraction — the structure-level generalisation of
    {!Tgraphs.Cores} (they agree through the {!Of_tgraph} encoding;
    tested). *)

val is_core : ?budget:Resource.Budget.t -> Structure.t -> bool
(** No homomorphism into a structure missing one of its tuples. *)

val core : ?budget:Resource.Budget.t -> Structure.t -> Structure.t
(** A core retract, with the domain compacted (distinguished elements are
    preserved and stay distinguished). *)

val core_treewidth : ?budget:Resource.Budget.t -> Structure.t -> int
(** Treewidth of the core — the structure-level [ctw]. *)
