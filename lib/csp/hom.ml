(* All constraints of the instance: (relation name, tuple of A). *)
let constraints a =
  List.concat_map
    (fun name -> List.map (fun tuple -> (name, tuple)) (Structure.tuples a name))
    (Structure.relation_names a)

let check_compatible a b =
  if List.length (Structure.distinguished a) <> List.length (Structure.distinguished b)
  then invalid_arg "Csp.Hom: distinguished lists differ in length";
  List.iter
    (fun name ->
      (* an empty relation carries no meaningful arity *)
      if Structure.tuples a name <> [] && Structure.tuples b name <> [] then
        match Structure.arity a name, Structure.arity b name with
        | Some ka, Some kb when ka <> kb ->
            invalid_arg (Printf.sprintf "Csp.Hom: arity mismatch on %s" name)
        | _ -> ())
    (Structure.relation_names a)

let fold_homs ?(budget = Resource.Budget.unlimited) a b ~init ~f =
  Resource.Budget.with_phase budget "csp-hom" @@ fun () ->
  check_compatible a b;
  let n = Structure.size a in
  let assignment = Array.make n (-1) in
  (* distinguished elements are pre-assigned; a clash (same element with
     two required images) means no homomorphism *)
  let ok =
    List.for_all2
      (fun ea eb ->
        if assignment.(ea) = -1 || assignment.(ea) = eb then begin
          assignment.(ea) <- eb;
          true
        end
        else false)
      (Structure.distinguished a)
      (Structure.distinguished b)
  in
  if not ok then init
  else begin
    let all_constraints = constraints a in
    let mask tuple = Array.map (fun e -> if assignment.(e) >= 0 then Some assignment.(e) else None) tuple in
    let rec go remaining acc =
      match remaining with
      | [] ->
          (* elements in no tuple and not distinguished: map anywhere *)
          let free =
            List.filter (fun e -> assignment.(e) = -1) (List.init n Fun.id)
          in
          let rec assign_free free acc =
            match free with
            | [] -> f acc (Array.copy assignment)
            | e :: rest ->
                let result = ref acc and continue_ = ref true in
                let be = ref 0 in
                while !continue_ && !be < Structure.size b do
                  Resource.Budget.tick budget;
                  assignment.(e) <- !be;
                  (match assign_free rest !result with
                  | acc', `Continue -> result := acc'
                  | acc', `Stop ->
                      result := acc';
                      continue_ := false);
                  incr be
                done;
                assignment.(e) <- -1;
                (!result, if !continue_ then `Continue else `Stop)
          in
          if free <> [] && Structure.size b = 0 then (acc, `Continue)
          else assign_free free acc
      | _ ->
          (* fail-first: constraint with the fewest matching target tuples.
             Keep the original list cell so physical equality can remove
             exactly the chosen constraint below. *)
          let scored =
            List.map
              (fun c ->
                let name, tuple = c in
                (List.length (Structure.tuples_matching b name (mask tuple)), c))
              remaining
          in
          let _, ((name, tuple) as chosen) =
            List.fold_left
              (fun (bc, bp) (c, p) -> if c < bc then (c, p) else (bc, bp))
              (List.hd scored) (List.tl scored)
          in
          let rest = List.filter (fun c -> c != chosen) remaining in
          let images = Structure.tuples_matching b name (mask tuple) in
          let result = ref acc and continue_ = ref true in
          List.iter
            (fun image ->
              if !continue_ then begin
                Resource.Budget.tick budget;
                let bound_here = ref [] in
                let ok =
                  Array.for_all2
                    (fun ea eb ->
                      if assignment.(ea) = eb then true
                      else if assignment.(ea) = -1 then begin
                        assignment.(ea) <- eb;
                        bound_here := ea :: !bound_here;
                        true
                      end
                      else false)
                    tuple image
                in
                if ok then begin
                  match go rest !result with
                  | acc', `Continue -> result := acc'
                  | acc', `Stop ->
                      result := acc';
                      continue_ := false
                end;
                List.iter (fun e -> assignment.(e) <- -1) !bound_here
              end)
            images;
          (!result, if !continue_ then `Continue else `Stop)
    in
    fst (go all_constraints init)
  end

let find ?budget a b =
  fold_homs ?budget a b ~init:None ~f:(fun _ h -> (Some h, `Stop))

let exists ?budget a b = Option.is_some (find ?budget a b)

let count ?budget a b =
  fold_homs ?budget a b ~init:0 ~f:(fun n _ -> (n + 1, `Continue))

let is_homomorphism a b h =
  Array.length h = Structure.size a
  && Array.for_all (fun v -> v >= 0 && v < Structure.size b) h
  && List.for_all2
       (fun ea eb -> h.(ea) = eb)
       (Structure.distinguished a)
       (Structure.distinguished b)
  && List.for_all
       (fun name ->
         List.for_all
           (fun tuple -> Structure.mem b name (Array.map (fun e -> h.(e)) tuple))
           (Structure.tuples a name))
       (Structure.relation_names a)
