(** Homomorphisms between relational structures.

    A homomorphism from [A] to [B] is a function [h : dom A → dom B] that
    maps every tuple of every relation of [A] into the same relation of
    [B] and sends the i-th distinguished element of [A] to the i-th
    distinguished element of [B]. Backtracking with fail-first tuple
    selection, like the t-graph solver it generalises. Raises
    [Invalid_argument] when the distinguished lists have different
    lengths or a relation of [A] has a different arity in [B]. The
    search ticks [budget] per branching step and raises
    {!Resource.Budget.Exhausted} when it trips. *)

val find :
  ?budget:Resource.Budget.t -> Structure.t -> Structure.t -> int array option
(** [find a b] is a homomorphism as an array indexed by [dom a]. *)

val exists : ?budget:Resource.Budget.t -> Structure.t -> Structure.t -> bool
val count : ?budget:Resource.Budget.t -> Structure.t -> Structure.t -> int

val is_homomorphism : Structure.t -> Structure.t -> int array -> bool
(** Validation helper (used by the tests). *)
