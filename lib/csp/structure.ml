module SMap = Map.Make (String)

(* tuples are stored deduplicated, keyed also by every single-position
   value for masked lookups *)
type relation = {
  rel_arity : int;
  rel_tuples : int array list;
}

type t = {
  size : int;
  relations : relation SMap.t;
  dist : int list;
}

let make ~size ~relations ?(distinguished = []) () =
  if size < 0 then invalid_arg "Structure.make: negative size";
  List.iter
    (fun e ->
      if e < 0 || e >= size then
        invalid_arg "Structure.make: distinguished element out of range")
    distinguished;
  let build (name, tuples) =
    match tuples with
    | [] -> (name, { rel_arity = 0; rel_tuples = [] })
    | first :: _ ->
        let rel_arity = Array.length first in
        let seen = Hashtbl.create 64 in
        let deduped =
          List.filter
            (fun tuple ->
              if Array.length tuple <> rel_arity then
                invalid_arg
                  (Printf.sprintf "Structure.make: mixed arities in %s" name);
              Array.iter
                (fun e ->
                  if e < 0 || e >= size then
                    invalid_arg
                      (Printf.sprintf "Structure.make: element out of range in %s" name))
                tuple;
              if Hashtbl.mem seen tuple then false
              else begin
                Hashtbl.add seen tuple ();
                true
              end)
            tuples
        in
        (name, { rel_arity; rel_tuples = deduped })
  in
  {
    size;
    relations = SMap.of_seq (List.to_seq (List.map build relations));
    dist = distinguished;
  }

let size t = t.size
let distinguished t = t.dist
let relation_names t = List.map fst (SMap.bindings t.relations)
let arity t name = Option.map (fun r -> r.rel_arity) (SMap.find_opt name t.relations)

let tuples t name =
  match SMap.find_opt name t.relations with
  | Some r -> r.rel_tuples
  | None -> []

let mem t name tuple = List.exists (fun u -> u = tuple) (tuples t name)

let tuples_matching t name mask =
  List.filter
    (fun tuple ->
      Array.length tuple = Array.length mask
      && Array.for_all2
           (fun bound value ->
             match bound with None -> true | Some b -> b = value)
           mask tuple)
    (tuples t name)

let total_tuples t =
  SMap.fold (fun _ r acc -> acc + List.length r.rel_tuples) t.relations 0

let gaifman t =
  let is_dist = Array.make t.size false in
  List.iter (fun e -> is_dist.(e) <- true) t.dist;
  (* vertices: non-distinguished elements, densely renumbered *)
  let vertex_of = Array.make t.size (-1) in
  let count = ref 0 in
  for e = 0 to t.size - 1 do
    if not is_dist.(e) then begin
      vertex_of.(e) <- !count;
      incr count
    end
  done;
  let edges = ref [] in
  SMap.iter
    (fun _ r ->
      List.iter
        (fun tuple ->
          Array.iter
            (fun a ->
              Array.iter
                (fun b ->
                  if a <> b && vertex_of.(a) >= 0 && vertex_of.(b) >= 0 then
                    edges := (vertex_of.(a), vertex_of.(b)) :: !edges)
                tuple)
            tuple)
        r.rel_tuples)
    t.relations;
  Graphtheory.Ugraph.make ~n:!count ~edges:!edges

let treewidth ?budget t =
  let g = gaifman t in
  if Graphtheory.Ugraph.n g = 0 || Graphtheory.Ugraph.m g = 0 then 1
  else max 1 (Graphtheory.Treewidth.treewidth ?budget g)

let rename_apart t ~offset =
  {
    size = t.size + offset;
    relations =
      SMap.map
        (fun r ->
          {
            r with
            rel_tuples = List.map (Array.map (fun e -> e + offset)) r.rel_tuples;
          })
        t.relations;
    dist = List.map (fun e -> e + offset) t.dist;
  }

let equal a b =
  a.size = b.size && a.dist = b.dist
  && SMap.equal
       (fun r1 r2 ->
         r1.rel_arity = r2.rel_arity
         && List.sort compare r1.rel_tuples = List.sort compare r2.rel_tuples)
       a.relations b.relations

let pp ppf t =
  Fmt.pf ppf "@[<v>domain 0..%d, distinguished [%a]@ %a@]" (t.size - 1)
    Fmt.(list ~sep:comma int)
    t.dist
    Fmt.(
      list ~sep:sp (fun ppf (name, r) ->
          Fmt.pf ppf "%s/%d: {%a}" name r.rel_arity
            (list ~sep:comma (fun ppf tuple ->
                 Fmt.pf ppf "(%a)" (list ~sep:comma int) (Array.to_list tuple)))
            r.rel_tuples))
    (SMap.bindings t.relations)
