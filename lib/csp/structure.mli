(** Finite relational structures with distinguished elements — the setting
    of the results the paper builds on (Dalmau–Kolaitis–Vardi [6] and
    Grohe [9] work over structures; generalised t-graphs are the special
    case of a single ternary relation, see {!Of_tgraph}).

    A structure has a domain [{0 .. size−1}], named relations of fixed
    arities, and an ordered list of distinguished elements (playing the
    role of the paper's set [X] of fixed variables / constants —
    homomorphisms must map the i-th distinguished element of the source to
    the i-th of the target). *)

type t

val make :
  size:int -> relations:(string * int array list) list ->
  ?distinguished:int list -> unit -> t
(** [make ~size ~relations ()] builds a structure. Every tuple's arity
    must be consistent per relation and every element in range; raises
    [Invalid_argument] otherwise. Duplicate tuples are dropped. *)

val size : t -> int
val distinguished : t -> int list

val relation_names : t -> string list
(** Sorted. *)

val arity : t -> string -> int option
val tuples : t -> string -> int array list
(** Tuples of a relation (empty for unknown names), in unspecified order. *)

val mem : t -> string -> int array -> bool

val tuples_matching : t -> string -> (int option) array -> int array list
(** Tuples agreeing with every [Some] position of the mask. *)

val total_tuples : t -> int

val gaifman : t -> Graphtheory.Ugraph.t
(** Vertices are the {e non-distinguished} elements; two are adjacent when
    they co-occur in a tuple — exactly the paper's Gaifman graph
    convention for generalised t-graphs. *)

val treewidth : ?budget:Resource.Budget.t -> t -> int
(** Treewidth of {!gaifman}, with the paper's convention: 1 when that
    graph has no vertices or no edges. *)

val rename_apart : t -> offset:int -> t
(** Shift all element ids by [offset] (used to build disjoint unions in
    tests). *)

val equal : t -> t -> bool
val pp : t Fmt.t
