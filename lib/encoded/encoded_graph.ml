type t = {
  epoch : int;
  dict : Rdf.Dictionary.t;
  spo : (int * int * int) array;
  pos : (int * int * int) array;
  osp : (int * int * int) array;
}

let rot_spo (s, p, o) = (s, p, o)
let rot_pos (s, p, o) = (p, o, s)
let rot_osp (s, p, o) = (o, s, p)

let sorted_by rot triples =
  let arr = Array.of_list triples in
  Array.sort (fun a b -> compare (rot a) (rot b)) arr;
  arr

let of_graph graph =
  let dict = Rdf.Dictionary.of_graph graph in
  let triples =
    List.map (Rdf.Dictionary.encode_triple dict) (Rdf.Graph.triples graph)
  in
  {
    epoch = Rdf.Graph.epoch graph;
    dict;
    spo = sorted_by rot_spo triples;
    pos = sorted_by rot_pos triples;
    osp = sorted_by rot_osp triples;
  }

(* Bounded MRU memo for [of_graph], keyed on the graph's epoch: graphs
   are immutable and each constructed store carries a globally unique
   epoch, so epoch equality is exactly "the same store" — stronger than
   the physical-identity key this cache used before (it now also hits
   when the same graph value flows through a copy-preserving pipeline). *)
let cache_capacity = 8
let cache : (int * t) list ref = ref []

let clear_cache () = cache := []

let of_graph_cached graph =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  let key = Rdf.Graph.epoch graph in
  match List.find_opt (fun (e, _) -> e = key) !cache with
  | Some (_, enc) ->
      (* move to front *)
      cache := (key, enc) :: List.filter (fun (e, _) -> e <> key) !cache;
      enc
  | None ->
      let enc = of_graph graph in
      cache := take cache_capacity ((key, enc) :: !cache);
      enc

let epoch t = t.epoch
let dictionary t = t.dict
let cardinal t = Array.length t.spo

(* First index whose rotated key is >= [key]. *)
let lower_bound arr rot key =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare (rot arr.(mid)) key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* The half-open range of triples whose rotated key starts with the bound
   prefix (k1, maybe k2, maybe k3). *)
let range arr rot k1 k2 k3 =
  let low =
    ( k1,
      Option.value ~default:min_int k2,
      Option.value ~default:min_int k3 )
  in
  let high =
    ( k1,
      Option.value ~default:max_int k2,
      Option.value ~default:max_int k3 )
  in
  let start = lower_bound arr rot low in
  (* upper: first strictly greater than the max-filled prefix *)
  let stop =
    let lo = ref start and hi = ref (Array.length arr) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if compare (rot arr.(mid)) high <= 0 then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  (start, stop)

(* Pick the permutation whose sort order makes the bound positions a
   prefix. (s,o)-bound must use OSP: in SPO the object would not be part
   of the prefix and the range would over-approximate. *)
let choose t ?s ?p ?o () =
  match s, p, o with
  | Some s, Some p, _ -> Some (t.spo, rot_spo, s, Some p, o)
  | Some s, None, Some o -> Some (t.osp, rot_osp, o, Some s, None)
  | Some s, None, None -> Some (t.spo, rot_spo, s, None, None)
  | None, Some p, _ -> Some (t.pos, rot_pos, p, o, None)
  | None, None, Some o -> Some (t.osp, rot_osp, o, None, None)
  | None, None, None -> None

let mem t (s, p, o) =
  let start, stop = range t.spo rot_spo s (Some p) (Some o) in
  stop > start

let iter_matching t ?s ?p ?o ~f () =
  match choose t ?s ?p ?o () with
  | None -> Array.iter f t.spo
  | Some (arr, rot, k1, k2, k3) ->
      let start, stop = range arr rot k1 k2 k3 in
      for i = start to stop - 1 do
        f arr.(i)
      done

let matching t ?s ?p ?o () =
  let acc = ref [] in
  iter_matching t ?s ?p ?o ~f:(fun triple -> acc := triple :: !acc) ();
  !acc

let match_count t ?s ?p ?o () =
  match choose t ?s ?p ?o () with
  | None -> cardinal t
  | Some (arr, rot, k1, k2, k3) ->
      let start, stop = range arr rot k1 k2 k3 in
      stop - start
