type predicate_stats = {
  triples : int;
  distinct_subjects : int;
  distinct_objects : int;
}

(* One sorted index permutation, behind a backend the query kernels never
   see through: either a heap array of id triples (built by [of_graph])
   or a closure-provided flat view (an mmap'd section of a compiled
   store, [of_views] — possibly an overlay merging a base store with
   delta segments). Every access below goes through [clen]/[cget], so
   binary search, range iteration and the statistics scans are byte-for-
   byte the same code on both backends. The view indirection is a
   closure call per probe — noise next to the comparisons of the binary
   searches it feeds. *)
type flat_view = { fn : int; fget : int -> int * int * int }

type cells = Heap of (int * int * int) array | View of flat_view

let clen = function Heap a -> Array.length a | View v -> v.fn
let cget c i = match c with Heap a -> a.(i) | View v -> v.fget i

(* Statistics a compiled store carries precomputed: the save-time cost
   buys O(1) plan-time answers without scanning the mmap'd arrays. The
   per-predicate closure may return [None] (unknown predicate, or a
   predicate whose figures went stale under a delta overlay), which
   falls back to the exact scan path; [None] globals likewise fall back
   to a one-shot counting scan. *)
type stats_seed = {
  seed_subjects : int option;
  seed_objects : int option;
  seed_predicates : int option;
  seed_predicate : int -> predicate_stats option;
}

(* The three permutations of one flat (non-sharded) store. *)
type arrays = { a_spo : cells; a_pos : cells; a_osp : cells }

type t = {
  identity : int;
      (* heap stores: the source graph's positive Graph.epoch; mapped
         stores: the negative content-stamp identity (for a shard set,
         of the manifest stamp folding the member stamps) — either way,
         what every cross-evaluation cache keys on *)
  dict : Rdf.Dictionary.t;
  rep : rep;
  seed : stats_seed option;
  (* Planner statistics, derived lazily from the sorted arrays above and
     memoized on the store (stores are immutable, so once computed a
     figure never goes stale). The per-predicate table makes repeated
     optimizer calls O(1) after the first query touching a predicate. *)
  pstats : (int, predicate_stats) Hashtbl.t;
  mutable subject_count : int;  (* -1 = not yet computed *)
  mutable object_count : int;
  mutable predicate_count : int;
}

and rep =
  | Flat of arrays
  | Union of union_info
      (* a shard set: member stores split by predicate, loaded lazily —
         a query bound on a predicate touches only that predicate's
         member *)

and union_info = {
  u_members : member array;  (* indexed by slice *)
  u_owner : int -> int;  (* predicate id -> owning member index *)
  u_total : int;  (* live triples across all members *)
  u_lock : Mutex.t;
      (* guards member forcing, the touched flags and [u_merged]:
         worker domains route queries concurrently, and OCaml [Lazy]
         is not safe under parallel forcing *)
  mutable u_merged : arrays option;
      (* globally sorted permutations, materialized only if something
         needs positional access across the whole set (the writer,
         term-level decode) — never on the routed query path *)
}

and member = { m_store : t Lazy.t; mutable m_touched : bool }

let rot_spo (s, p, o) = (s, p, o)
let rot_pos (s, p, o) = (p, o, s)
let rot_osp (s, p, o) = (o, s, p)

let sorted_by rot triples =
  let arr = Array.of_list triples in
  Array.sort (fun a b -> compare (rot a) (rot b)) arr;
  arr

let of_graph graph =
  let dict = Rdf.Dictionary.of_graph graph in
  let triples =
    List.map (Rdf.Dictionary.encode_triple dict) (Rdf.Graph.triples graph)
  in
  {
    identity = Rdf.Graph.epoch graph;
    dict;
    rep =
      Flat
        {
          a_spo = Heap (sorted_by rot_spo triples);
          a_pos = Heap (sorted_by rot_pos triples);
          a_osp = Heap (sorted_by rot_osp triples);
        };
    seed = None;
    pstats = Hashtbl.create 16;
    subject_count = -1;
    object_count = -1;
    predicate_count = -1;
  }

let of_views ~identity ~dict ~spo ~pos ~osp ?stats () =
  if spo.fn <> pos.fn || pos.fn <> osp.fn then
    invalid_arg "Encoded_graph.of_views: permutations disagree on length";
  {
    identity;
    dict;
    rep = Flat { a_spo = View spo; a_pos = View pos; a_osp = View osp };
    seed = stats;
    pstats = Hashtbl.create 16;
    subject_count = -1;
    object_count = -1;
    predicate_count = -1;
  }

let union ~identity ~dict ~members ~owner ~total ?stats () =
  if total < 0 then invalid_arg "Encoded_graph.union: negative total";
  if Array.length members = 0 then
    invalid_arg "Encoded_graph.union: no members";
  {
    identity;
    dict;
    rep =
      Union
        {
          u_members =
            Array.map (fun m -> { m_store = m; m_touched = false }) members;
          u_owner = owner;
          u_total = total;
          u_lock = Mutex.create ();
          u_merged = None;
        };
    seed = stats;
    pstats = Hashtbl.create 16;
    subject_count = -1;
    object_count = -1;
    predicate_count = -1;
  }

(* Bounded MRU memo for [of_graph], keyed on the graph's epoch: graphs
   are immutable and each constructed store carries a globally unique
   epoch, so epoch equality is exactly "the same store" — stronger than
   the physical-identity key this cache used before (it now also hits
   when the same graph value flows through a copy-preserving pipeline). *)
let cache_capacity = 8
let cache : (int * t) list ref = ref []

(* Loaded persistent stores, pinned outside the MRU churn and keyed on
   their stable identity: a deferred graph handle resolves here first,
   so evaluating through the handle runs on the mmap'd arrays instead of
   forcing the handle's term-level decode. Entries stay until
   [clear_cache] (or a re-register of the same identity); dropping one
   never unmaps anything a live evaluation still sees — every borrowed
   view is a closure that keeps its mapping reachable on its own. *)
let registered : (int, t) Hashtbl.t = Hashtbl.create 8

(* Guards [cache] and [registered]: worker domains resolve stores
   through [of_graph_cached] while the main domain may [register] or
   [clear_cache], so every touch of either table is serialized. *)
let cache_lock = Mutex.create ()

let register t =
  Mutex.protect cache_lock (fun () -> Hashtbl.replace registered t.identity t)

let clear_cache () =
  Mutex.protect cache_lock (fun () ->
      cache := [];
      Hashtbl.reset registered)

let of_graph_cached graph =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  let key = Rdf.Graph.epoch graph in
  let cached =
    Mutex.protect cache_lock (fun () ->
        match Hashtbl.find_opt registered key with
        | Some enc -> Some enc
        | None -> (
            match List.find_opt (fun (e, _) -> e = key) !cache with
            | Some (_, enc) ->
                (* move to front *)
                cache :=
                  (key, enc) :: List.filter (fun (e, _) -> e <> key) !cache;
                Some enc
            | None -> None))
  in
  match cached with
  | Some enc -> enc
  | None ->
      (* Encode outside the lock — sorting three permutations can be
         long, and a concurrent duplicate build is only wasted work. *)
      let enc = of_graph graph in
      Mutex.protect cache_lock (fun () ->
          match
            ( Hashtbl.find_opt registered key,
              List.find_opt (fun (e, _) -> e = key) !cache )
          with
          | Some winner, _ | None, Some (_, winner) ->
              (* another domain finished (or registered) first: keep one
                 canonical store per identity so memo hits stay shared *)
              winner
          | None, None ->
              cache := take cache_capacity ((key, enc) :: !cache);
              enc)

let epoch t = t.identity
let dictionary t = t.dict

(* Force one member (clamping a wild owner index to member 0, whose
   ranges for a foreign predicate are simply empty) and record the touch
   for the lazy-mapping ablation. *)
let force_member u k =
  let k = if k < 0 || k >= Array.length u.u_members then 0 else k in
  Mutex.protect u.u_lock (fun () ->
      let m = u.u_members.(k) in
      m.m_touched <- true;
      Lazy.force m.m_store)

let cardinal t =
  match t.rep with Flat a -> clen a.a_spo | Union u -> u.u_total

(* The globally sorted permutations of a store. For a flat store these
   are its arrays; for a shard set they are a one-shot k-way merge over
   the members, materialized under the union lock — only positional
   access ([nth_*]: the writer, term-level decode, tests) pays for it,
   the routed query path never does. *)
let rec arrays t =
  match t.rep with
  | Flat a -> a
  | Union u ->
      Mutex.protect u.u_lock (fun () ->
          match u.u_merged with
          | Some a -> a
          | None ->
              let all = Array.make u.u_total (0, 0, 0) in
              let w = ref 0 in
              Array.iter
                (fun m ->
                  m.m_touched <- true;
                  let mt = Lazy.force m.m_store in
                  let ma = arrays mt in
                  for i = 0 to clen ma.a_spo - 1 do
                    all.(!w) <- cget ma.a_spo i;
                    incr w
                  done)
                u.u_members;
              if !w <> u.u_total then
                invalid_arg
                  "Encoded_graph: shard members disagree with union total";
              let by rot a b = compare (rot a) (rot b) in
              let pos = Array.copy all and osp = Array.copy all in
              Array.sort (by rot_spo) all;
              Array.sort (by rot_pos) pos;
              Array.sort (by rot_osp) osp;
              let a = { a_spo = Heap all; a_pos = Heap pos; a_osp = Heap osp } in
              u.u_merged <- Some a;
              a)

let nth_spo t i = cget (arrays t).a_spo i
let nth_pos t i = cget (arrays t).a_pos i
let nth_osp t i = cget (arrays t).a_osp i

let members_touched t =
  match t.rep with
  | Flat _ -> None
  | Union u ->
      Some
        (Mutex.protect u.u_lock (fun () ->
             Array.fold_left
               (fun n m -> if m.m_touched then n + 1 else n)
               0 u.u_members))

(* First index whose rotated key is >= [key]. *)
let lower_bound arr rot key =
  let lo = ref 0 and hi = ref (clen arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare (rot (cget arr mid)) key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* The half-open range of triples whose rotated key starts with the bound
   prefix (k1, maybe k2, maybe k3). *)
let range arr rot k1 k2 k3 =
  let low =
    ( k1,
      Option.value ~default:min_int k2,
      Option.value ~default:min_int k3 )
  in
  let high =
    ( k1,
      Option.value ~default:max_int k2,
      Option.value ~default:max_int k3 )
  in
  let start = lower_bound arr rot low in
  (* upper: first strictly greater than the max-filled prefix *)
  let stop =
    let lo = ref start and hi = ref (clen arr) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if compare (rot (cget arr mid)) high <= 0 then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  (start, stop)

(* Pick the permutation whose sort order makes the bound positions a
   prefix. (s,o)-bound must use OSP: in SPO the object would not be part
   of the prefix and the range would over-approximate. *)
let choose a ?s ?p ?o () =
  match s, p, o with
  | Some s, Some p, _ -> Some (a.a_spo, rot_spo, s, Some p, o)
  | Some s, None, Some o -> Some (a.a_osp, rot_osp, o, Some s, None)
  | Some s, None, None -> Some (a.a_spo, rot_spo, s, None, None)
  | None, Some p, _ -> Some (a.a_pos, rot_pos, p, o, None)
  | None, None, Some o -> Some (a.a_osp, rot_osp, o, None, None)
  | None, None, None -> None

(* Query entry points: a flat store binary-searches its own arrays; a
   shard set routes predicate-bound patterns to the owning member (the
   only one whose pages the probe faults in) and fans predicate-free
   patterns out over every member. *)

let rec mem t (s, p, o) =
  match t.rep with
  | Union u -> mem (force_member u (u.u_owner p)) (s, p, o)
  | Flat a ->
      let start, stop = range a.a_spo rot_spo s (Some p) (Some o) in
      stop > start

let rec iter_matching t ?s ?p ?o ~f () =
  match t.rep with
  | Union u -> (
      match p with
      | Some pid -> iter_matching (force_member u (u.u_owner pid)) ?s ~p:pid ?o ~f ()
      | None ->
          Array.iteri
            (fun k _ -> iter_matching (force_member u k) ?s ?o ~f ())
            u.u_members)
  | Flat a -> (
      match choose a ?s ?p ?o () with
      | None ->
          for i = 0 to clen a.a_spo - 1 do
            f (cget a.a_spo i)
          done
      | Some (arr, rot, k1, k2, k3) ->
          let start, stop = range arr rot k1 k2 k3 in
          for i = start to stop - 1 do
            f (cget arr i)
          done)

let matching t ?s ?p ?o () =
  let acc = ref [] in
  iter_matching t ?s ?p ?o ~f:(fun triple -> acc := triple :: !acc) ();
  !acc

let rec match_count t ?s ?p ?o () =
  match t.rep with
  | Union u -> (
      match p, s, o with
      | Some pid, _, _ ->
          match_count (force_member u (u.u_owner pid)) ?s ~p:pid ?o ()
      | None, None, None -> u.u_total
      | None, _, _ ->
          let n = ref 0 in
          Array.iteri
            (fun k _ -> n := !n + match_count (force_member u k) ?s ?o ())
            u.u_members;
          !n)
  | Flat a -> (
      match choose a ?s ?p ?o () with
      | None -> clen a.a_spo
      | Some (arr, rot, k1, k2, k3) ->
          let start, stop = range arr rot k1 k2 k3 in
          stop - start)

(* ------------------------------------------------------------------ *)
(* Planner statistics                                                  *)
(* ------------------------------------------------------------------ *)

(* Distinct values of one projected position within [start, stop) of a
   sorted array. When the projection is the array's primary sort key the
   distinct values form contiguous runs and a single linear pass counts
   them; otherwise the column is extracted, sorted, and its runs counted.
   Both are one-shot costs — every entry point below memoizes, and
   compiled stores carry the figures precomputed ([stats_seed]) so the
   scans never touch the mmap at all. *)
let count_runs proj arr start stop =
  let n = ref 0 and prev = ref min_int in
  for i = start to stop - 1 do
    let v = proj (cget arr i) in
    if !n = 0 || v <> !prev then begin
      incr n;
      prev := v
    end
  done;
  !n

let count_distinct_unsorted proj arr start stop =
  let col = Array.init (stop - start) (fun i -> proj (cget arr (start + i))) in
  Array.sort compare col;
  let n = ref 0 and prev = ref min_int in
  Array.iter
    (fun v ->
      if !n = 0 || v <> !prev then begin
        incr n;
        prev := v
      end)
    col;
  !n

let rec predicate_stats t p =
  match Hashtbl.find_opt t.pstats p with
  | Some s -> s
  | None ->
      let s =
        match t.rep with
        | Union u ->
            (* the owning member holds every triple of this predicate,
               so its row (or scan) is exact for the whole set *)
            predicate_stats (force_member u (u.u_owner p)) p
        | Flat a -> (
            let seeded =
              match t.seed with
              | None -> None
              | Some seed -> seed.seed_predicate p
            in
            match seeded with
            | Some s -> s
            | None ->
                (* a_pos stores raw (s, p, o) tuples sorted by (p, o, s):
                   the predicate's triples are one contiguous block,
                   within which distinct objects are runs of the o
                   column; distinct subjects need a sort of the s
                   column. *)
                let start, stop = range a.a_pos rot_pos p None None in
                {
                  triples = stop - start;
                  distinct_objects =
                    count_runs (fun (_, _, o) -> o) a.a_pos start stop;
                  distinct_subjects =
                    count_distinct_unsorted (fun (s, _, _) -> s) a.a_pos start
                      stop;
                })
      in
      Hashtbl.replace t.pstats p s;
      s

let distinct_subjects t =
  if t.subject_count < 0 then
    t.subject_count <-
      (match t.seed with
      | Some { seed_subjects = Some n; _ } -> n
      | _ ->
          let a = arrays t in
          count_runs (fun (s, _, _) -> s) a.a_spo 0 (clen a.a_spo));
  t.subject_count

let distinct_objects t =
  if t.object_count < 0 then
    t.object_count <-
      (match t.seed with
      | Some { seed_objects = Some n; _ } -> n
      | _ ->
          (* a_osp is sorted by (o, s, p), so o runs are contiguous *)
          let a = arrays t in
          count_runs (fun (_, _, o) -> o) a.a_osp 0 (clen a.a_osp));
  t.object_count

let distinct_predicates t =
  if t.predicate_count < 0 then
    t.predicate_count <-
      (match t.seed with
      | Some { seed_predicates = Some n; _ } -> n
      | _ ->
          let a = arrays t in
          count_runs (fun (_, p, _) -> p) a.a_pos 0 (clen a.a_pos));
  t.predicate_count
