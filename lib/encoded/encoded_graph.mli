(** A dictionary-encoded, sorted-array triple store.

    Terms are interned to dense ints ({!Rdf.Dictionary}) and the triples
    kept in three sorted permutations (SPO, POS, OSP), so any
    partially-bound lookup is answered by binary-searching the permutation
    whose sort order puts the bound positions first. This is the classical
    RDF-store layout (contrast with the hash-indexed {!Rdf.Index}); the
    two backends are cross-checked in the tests and compared in bench A4. *)

type t

type flat_view = { fn : int; fget : int -> int * int * int }
(** One sorted permutation provided as closures: [fn] triples, [fget i]
    the i-th raw (s, p, o) id triple in the permutation's sort order.
    How a compiled on-disk store ([Storage]) exposes its mmap'd index
    sections without this module knowing about bytes, mappings, or
    [Bigarray] — the join, pebble and statistics code paths are
    backend-blind. [fget] must be pure and total on [0, fn). *)

type predicate_stats = {
  triples : int;  (** number of triples with this predicate *)
  distinct_subjects : int;
  distinct_objects : int;
}

type stats_seed = {
  seed_subjects : int option;
  seed_objects : int option;
  seed_predicates : int option;
  seed_predicate : int -> predicate_stats option;
}
(** Save-time precomputed planner statistics of a compiled store;
    [seed_predicate] may answer [None] (falls back to a range scan),
    and the global distinct counts may be [None] when a delta overlay
    has invalidated the base store's figures (falls back to a one-shot
    counting scan over the merged views). *)

val of_graph : Rdf.Graph.t -> t

val of_views :
  identity:int ->
  dict:Rdf.Dictionary.t ->
  spo:flat_view -> pos:flat_view -> osp:flat_view ->
  ?stats:stats_seed -> unit -> t
(** A store over externally provided sorted index views (the mmap
    reader's constructor). [identity] is the store's stable identity —
    negative content-stamp-derived for disk stores, disjoint from the
    positive per-process {!Rdf.Graph.epoch} counter — and is what
    {!epoch} returns. The three views must enumerate the same triple
    multiset sorted by (s,p,o), (p,o,s) and (o,s,p) keys respectively;
    raises [Invalid_argument] if their lengths disagree. *)

val union :
  identity:int ->
  dict:Rdf.Dictionary.t ->
  members:t Lazy.t array ->
  owner:(int -> int) ->
  total:int ->
  ?stats:stats_seed -> unit -> t
(** A sharded store: the union of [members], which must partition the
    triple set {e by predicate} — every triple of a given predicate id
    [p] lives in member [owner p] (an index into [members], clamped to
    member 0 if out of range). [dict] is the shared dictionary (every
    member of a shard set carries the full term table, so ids are
    global). [total] is the live triple count across all members.

    Members are forced lazily: a predicate-bound lookup touches only the
    owning member (so only that member's pages fault in), a
    predicate-free pattern fans out over all members, and positional
    access ([nth_*]) materializes a one-shot k-way merge. Safe to share
    across domains — member forcing and the merge are serialized on an
    internal lock. *)

val members_touched : t -> int option
(** [Some n] for a {!union} store: how many member stores have been
    forced so far (the lazy-mapping ablation counter). [None] for flat
    stores. *)

val register : t -> unit
(** Pin a store into the {!of_graph_cached} resolution table under its
    {!epoch} identity, outside the MRU churn: a {!Rdf.Graph.deferred}
    handle carrying the same identity then evaluates against this store
    directly, never forcing its term-level decode. Re-registering the
    same identity replaces the entry (same content by construction). *)

val of_graph_cached : Rdf.Graph.t -> t
(** Like {!of_graph}, but resolved through the {!register}ed persistent
    stores first and then memoized on the graph's {!Rdf.Graph.epoch} in
    a small bounded MRU cache, so evaluators that encode the same graph
    for every (mapping, child) test pay the encoding cost once. *)

val epoch : t -> int
(** The store's identity: the {!Rdf.Graph.epoch} of the graph a heap
    store was encoded from, or the stable (negative) content-stamp
    identity of a loaded disk store ({!of_views}). *)

val clear_cache : unit -> unit
(** Drop every entry of the {!of_graph_cached} memo and the
    {!register}ed-store table (mainly for tests and benchmarks). Safe
    while evaluations are in flight, including on worker domains: a
    dropped mmap'd store stays alive — and its file mapped — for as
    long as any live evaluation still holds it; a deferred graph handle
    resolved after the drop falls back to its (slow but exact)
    term-level decode. *)

val dictionary : t -> Rdf.Dictionary.t
val cardinal : t -> int

val mem : t -> int * int * int -> bool

val matching :
  t -> ?s:int -> ?p:int -> ?o:int -> unit -> (int * int * int) list
(** Triples (as id tuples) agreeing with every bound position. *)

val match_count : t -> ?s:int -> ?p:int -> ?o:int -> unit -> int
(** Cardinality of {!matching}; constant-ish time (two binary searches)
    for prefix-bound lookups. *)

val iter_matching :
  t -> ?s:int -> ?p:int -> ?o:int -> f:(int * int * int -> unit) -> unit -> unit

val nth_spo : t -> int -> int * int * int
(** The i-th raw (s, p, o) triple of the SPO permutation — positional
    access for the store writer (and tests); query code uses the
    matching API above. *)

val nth_pos : t -> int -> int * int * int
val nth_osp : t -> int -> int * int * int

(** {2 Planner statistics}

    Cardinality summaries for the cost-based optimizer, derived from the
    sorted index arrays and memoized on the store (stores are immutable).
    The first call per predicate costs a range scan; every later call is
    a hash lookup, so plan-time estimation is O(1) — and O(1) from the
    first call on compiled stores, which carry a {!stats_seed}.
    {!Rdf.Stats} remains the unencoded fallback for term-level
    consumers. *)

val predicate_stats : t -> int -> predicate_stats
(** Statistics of one predicate (by dictionary id). An id that never
    occurs as a predicate — including the negative absent-term sentinels —
    yields all-zero stats. *)

val distinct_subjects : t -> int
(** Distinct subject ids across the whole store (runs of the SPO array). *)

val distinct_objects : t -> int
(** Distinct object ids across the whole store (runs of the OSP array). *)

val distinct_predicates : t -> int
(** Distinct predicate ids across the whole store (runs of the POS
    array). *)
