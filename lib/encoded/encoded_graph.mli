(** A dictionary-encoded, sorted-array triple store.

    Terms are interned to dense ints ({!Rdf.Dictionary}) and the triples
    kept in three sorted permutations (SPO, POS, OSP), so any
    partially-bound lookup is answered by binary-searching the permutation
    whose sort order puts the bound positions first. This is the classical
    RDF-store layout (contrast with the hash-indexed {!Rdf.Index}); the
    two backends are cross-checked in the tests and compared in bench A4. *)

type t

val of_graph : Rdf.Graph.t -> t

val of_graph_cached : Rdf.Graph.t -> t
(** Like {!of_graph}, but memoized on the graph's {!Rdf.Graph.epoch} in
    a small bounded MRU cache, so evaluators that encode the same graph
    for every (mapping, child) test pay the encoding cost once. *)

val epoch : t -> int
(** The {!Rdf.Graph.epoch} of the graph this store was encoded from. *)

val clear_cache : unit -> unit
(** Drop every entry of the {!of_graph_cached} memo (frees the encoded
    copies; mainly for tests and benchmarks). *)

val dictionary : t -> Rdf.Dictionary.t
val cardinal : t -> int

val mem : t -> int * int * int -> bool

val matching :
  t -> ?s:int -> ?p:int -> ?o:int -> unit -> (int * int * int) list
(** Triples (as id tuples) agreeing with every bound position. *)

val match_count : t -> ?s:int -> ?p:int -> ?o:int -> unit -> int
(** Cardinality of {!matching}; constant-ish time (two binary searches)
    for prefix-bound lookups. *)

val iter_matching :
  t -> ?s:int -> ?p:int -> ?o:int -> f:(int * int * int -> unit) -> unit -> unit

(** {2 Planner statistics}

    Cardinality summaries for the cost-based optimizer, derived from the
    sorted index arrays and memoized on the store (stores are immutable).
    The first call per predicate costs a range scan; every later call is
    a hash lookup, so plan-time estimation is O(1). {!Rdf.Stats} remains
    the unencoded fallback for term-level consumers. *)

type predicate_stats = {
  triples : int;  (** number of triples with this predicate *)
  distinct_subjects : int;
  distinct_objects : int;
}

val predicate_stats : t -> int -> predicate_stats
(** Statistics of one predicate (by dictionary id). An id that never
    occurs as a predicate — including the negative absent-term sentinels —
    yields all-zero stats. *)

val distinct_subjects : t -> int
(** Distinct subject ids across the whole store (runs of the SPO array). *)

val distinct_objects : t -> int
(** Distinct object ids across the whole store (runs of the OSP array). *)

val distinct_predicates : t -> int
(** Distinct predicate ids across the whole store (runs of the POS
    array). *)
