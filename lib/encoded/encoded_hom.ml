open Rdf

(* Pattern term: constant id, or variable id. *)
type pterm =
  | Const of int
  | Var of int

(* Sentinels for assignment slots. [unassigned] marks a free variable;
   [absent_id] marks a variable (or constant) bound to a term that is not
   in the graph's dictionary. Both are negative, so they can never collide
   with a real id, and a lookup keyed on [absent_id] binary-searches into
   an empty range — "matches nothing" falls out of the store with no
   special-casing (the term solver gets the same behaviour from a hash
   probe on a term the index has never seen). *)
let unassigned = -1
let absent_id = -2

type source = {
  graph : Encoded_graph.t;
  pats : (pterm * pterm * pterm) array;
  vars : Variable.t array;
      (* decode table for the whole assignment array — possibly wider than
         this source's own variables when a shared numbering is in use *)
  own : int list;
      (* indices (into [vars]) of the variables of the compiled t-graph;
         the domain of a decoded homomorphism, mirroring the term solver's
         "domain = vars(source)" contract *)
  touch : int list array;
      (* incidence: [touch.(v)] lists the indices (into [pats]) of the
         patterns mentioning variable slot [v] — what the adaptive join
         re-scores when [v] gets bound *)
}

(* How the backtracking join picks the next pattern at each depth. *)
type strategy =
  | Rescore
      (* exact fail-first: re-score every remaining pattern at every
         node entry (the pre-optimizer behaviour, kept as the fallback) *)
  | Fixed of int array
      (* a compiled static order (a permutation of pattern indices),
         followed verbatim — zero scoring at run time *)
  | Adaptive of int array
      (* the compiled order seeds the ranking; scores are maintained
         incrementally — only patterns touching a newly bound variable
         are re-counted, everything else keeps its cached score *)

let compile ?vars tgraph graph =
  let dict = Encoded_graph.dictionary graph in
  let own_vars = Variable.Set.elements (Tgraphs.Tgraph.vars tgraph) in
  let var_arr =
    match vars with
    | Some table -> table
    | None -> Array.of_list own_vars
  in
  let var_id = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.replace var_id v i) var_arr;
  let own =
    List.map
      (fun v ->
        match Hashtbl.find_opt var_id v with
        | Some i -> i
        | None ->
            invalid_arg
              (Fmt.str "Encoded_hom.compile: variable %a missing from table"
                 Variable.pp v))
      own_vars
  in
  let encode_term = function
    | Term.Var v -> Var (Hashtbl.find var_id v)
    | Term.Iri _ as t -> (
        match Dictionary.find dict t with
        | Some id -> Const id
        | None -> Const absent_id)
  in
  let pats =
    Array.of_list
      (List.map
         (fun t ->
           ( encode_term t.Triple.s,
             encode_term t.Triple.p,
             encode_term t.Triple.o ))
         (Tgraphs.Tgraph.triples tgraph))
  in
  let touch = Array.make (Array.length var_arr) [] in
  Array.iteri
    (fun i (s, p, o) ->
      let note = function
        | Const _ -> ()
        | Var v -> if not (List.mem i touch.(v)) then touch.(v) <- i :: touch.(v)
      in
      note s;
      note p;
      note o)
    pats;
  { graph; pats; vars = var_arr; own; touch }

let graph source = source.graph
let variables source = source.vars
let patterns source = Array.copy source.pats
let own_slots source = source.own

let encode_pre source (pre : Tgraphs.Homomorphism.assignment) =
  let dict = Encoded_graph.dictionary source.graph in
  let arr = Array.make (Array.length source.vars) unassigned in
  Array.iteri
    (fun i v ->
      match Variable.Map.find_opt v pre with
      | None -> ()
      | Some term -> (
          match Dictionary.find dict term with
          | Some id -> arr.(i) <- id
          | None -> arr.(i) <- absent_id))
    source.vars;
  arr

let decode source assignment =
  let dict = Encoded_graph.dictionary source.graph in
  let acc = ref Variable.Map.empty in
  Array.iteri
    (fun i id ->
      if id >= 0 then
        acc := Variable.Map.add source.vars.(i) (Dictionary.term_of dict id) !acc)
    assignment;
  !acc

(* Decode only the source's own variables — exact parity with the term
   solver, whose results have domain [vars source] (pre bindings of other
   variables are dropped). *)
let decode_own source assignment =
  let dict = Encoded_graph.dictionary source.graph in
  List.fold_left
    (fun acc i ->
      let id = assignment.(i) in
      if id >= 0 then
        Variable.Map.add source.vars.(i) (Dictionary.term_of dict id) acc
      else acc)
    Variable.Map.empty source.own

let bound assignment = function
  | Const id -> Some id
  | Var v -> if assignment.(v) <> unassigned then Some assignment.(v) else None

let pattern_lookup assignment (s, p, o) =
  (bound assignment s, bound assignment p, bound assignment o)

(* Check that [ord] is a permutation of [0 .. npat-1]. *)
let validate_order npat ord =
  if Array.length ord <> npat then
    invalid_arg "Encoded_hom.fold: order is not a permutation of the patterns";
  let seen = Array.make npat false in
  Array.iter
    (fun i ->
      if i < 0 || i >= npat || seen.(i) then
        invalid_arg
          "Encoded_hom.fold: order is not a permutation of the patterns";
      seen.(i) <- true)
    ord

let fold ?(budget = Resource.Budget.unlimited) ?(strategy = Rescore) ?pre
    source ~init ~f =
  Resource.Budget.with_phase budget "hom" @@ fun () ->
  let { graph; pats; vars; touch; _ } = source in
  let npat = Array.length pats in
  let nvars = Array.length vars in
  let assignment =
    match pre with
    | None -> Array.make nvars unassigned
    | Some p ->
        if Array.length p <> nvars then
          invalid_arg "Encoded_hom.fold: pre has the wrong width";
        Array.copy p
  in
  (* Zero-pattern node: exactly one homomorphism — the prefix itself.
     Guarded explicitly (not via the depth = npat base case below) so the
     degenerate shape can never trip over the strategy machinery. *)
  if npat = 0 then fst (f init assignment)
  else begin
    let used = Array.make npat false in
    let count_pat i =
      let s, p, o = pattern_lookup assignment pats.(i) in
      Encoded_graph.match_count graph ?s ?p ?o ()
    in
    (* [rank] breaks score ties (lower = preferred): the compiled order's
       position under [Adaptive], the textual pattern order under
       [Rescore] — which reproduces the pre-optimizer fail-first
       tie-breaking exactly. *)
    let mode, rank =
      match strategy with
      | Rescore -> (`Rescore, [||])
      | Fixed ord ->
          validate_order npat ord;
          (`Fixed ord, [||])
      | Adaptive ord ->
          validate_order npat ord;
          let rank = Array.make npat 0 in
          Array.iteri (fun pos i -> rank.(i) <- pos) ord;
          (`Adaptive, rank)
    in
    (* Lazily cached scores for the adaptive mode. A pattern's match
       count only changes when one of its own variables is (un)bound, so
       (un)binding [v] marks [touch.(v)] stale — a cheap flag — and the
       count is recomputed only if the pattern is actually considered at
       a later selection. Selection is therefore exact fail-first (every
       compared score reflects the current assignment), but the number
       of [match_count] probes is a subset of the Rescore strategy's:
       patterns whose variables did not change keep their cached
       score. *)
    let score, stale =
      match mode with
      | `Adaptive -> (Array.make npat 0, Array.make npat true)
      | `Rescore | `Fixed _ -> ([||], [||])
    in
    let select depth =
      match mode with
      | `Fixed ord -> ord.(depth)
      | `Adaptive ->
          let best = ref (-1) in
          for i = 0 to npat - 1 do
            if not used.(i) then begin
              if stale.(i) then begin
                score.(i) <- count_pat i;
                stale.(i) <- false
              end;
              if
                !best < 0
                || score.(i) < score.(!best)
                || (score.(i) = score.(!best) && rank.(i) < rank.(!best))
              then best := i
            end
          done;
          !best
      | `Rescore ->
          (* fail-first: pattern with the fewest matches under the
             current prefix (including [pre]'s bindings), re-scored from
             scratch at every node entry *)
          let best = ref (-1) and best_count = ref max_int in
          for i = 0 to npat - 1 do
            if not used.(i) then begin
              let c = count_pat i in
              if c < !best_count then begin
                best := i;
                best_count := c
              end
            end
          done;
          !best
    in
    let rec go depth acc =
      if depth = npat then f acc assignment
      else begin
        Resource.Budget.tick budget;
        let best = select depth in
        used.(best) <- true;
        let ((ps, pp, po) as pat) = pats.(best) in
        let s, p, o = pattern_lookup assignment pat in
        let acc = ref acc in
        let continue_ = ref true in
        Encoded_graph.iter_matching graph ?s ?p ?o
          ~f:(fun (ts, tp, to_) ->
            if !continue_ then begin
              (* unify the wildcard positions; record which variables we
                 bind here so we can undo *)
              let bound_here = ref [] in
              let unify_pos pterm value =
                match pterm with
                | Const id -> id = value
                | Var v ->
                    if assignment.(v) = value then true
                    else if assignment.(v) = unassigned then begin
                      assignment.(v) <- value;
                      bound_here := v :: !bound_here;
                      true
                    end
                    else false
              in
              let ok = unify_pos ps ts && unify_pos pp tp && unify_pos po to_ in
              (* incremental refinement: only the patterns touching a
                 variable bound by THIS triple can have changed their
                 match count — flag them stale and let the next selection
                 that actually considers them recompute *)
              let touch_bound () =
                List.iter
                  (fun v -> List.iter (fun i -> stale.(i) <- true) touch.(v))
                  !bound_here
              in
              if ok && mode = `Adaptive then touch_bound ();
              if ok then begin
                match go (depth + 1) !acc with
                | acc', `Continue -> acc := acc'
                | acc', `Stop ->
                    acc := acc';
                    continue_ := false
              end;
              (* unbinding changes the same patterns' counts back *)
              if ok && mode = `Adaptive then touch_bound ();
              List.iter (fun v -> assignment.(v) <- unassigned) !bound_here
            end)
          ();
        used.(best) <- false;
        (!acc, if !continue_ then `Continue else `Stop)
      end
    in
    fst (go 0 init)
  end

let iter ?budget ?strategy ?pre source ~f =
  fold ?budget ?strategy ?pre source ~init:() ~f:(fun () assignment ->
      (f assignment, `Continue))

let exists ?budget ?pre source =
  let pre = Option.map (encode_pre source) pre in
  fold ?budget ?pre source ~init:false ~f:(fun _ _ -> (true, `Stop))

let count ?budget ?pre source =
  let pre = Option.map (encode_pre source) pre in
  fold ?budget ?pre source ~init:0 ~f:(fun n _ -> (n + 1, `Continue))

let all ?budget ?pre ?limit source =
  let pre = Option.map (encode_pre source) pre in
  fold ?budget ?pre source ~init:[] ~f:(fun acc assignment ->
      let acc = decode_own source assignment :: acc in
      match limit with
      | Some l when List.length acc >= l -> (acc, `Stop)
      | _ -> (acc, `Continue))
  |> List.rev

let count_tgraph ?budget tgraph graph = count ?budget (compile tgraph graph)
