open Rdf

(* Pattern term: constant id, or variable id. *)
type pterm =
  | Const of int
  | Var of int

(* Sentinels for assignment slots. [unassigned] marks a free variable;
   [absent_id] marks a variable (or constant) bound to a term that is not
   in the graph's dictionary. Both are negative, so they can never collide
   with a real id, and a lookup keyed on [absent_id] binary-searches into
   an empty range — "matches nothing" falls out of the store with no
   special-casing (the term solver gets the same behaviour from a hash
   probe on a term the index has never seen). *)
let unassigned = -1
let absent_id = -2

type source = {
  graph : Encoded_graph.t;
  patterns : (pterm * pterm * pterm) list;
  vars : Variable.t array;
      (* decode table for the whole assignment array — possibly wider than
         this source's own variables when a shared numbering is in use *)
  own : int list;
      (* indices (into [vars]) of the variables of the compiled t-graph;
         the domain of a decoded homomorphism, mirroring the term solver's
         "domain = vars(source)" contract *)
}

let compile ?vars tgraph graph =
  let dict = Encoded_graph.dictionary graph in
  let own_vars = Variable.Set.elements (Tgraphs.Tgraph.vars tgraph) in
  let var_arr =
    match vars with
    | Some table -> table
    | None -> Array.of_list own_vars
  in
  let var_id = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.replace var_id v i) var_arr;
  let own =
    List.map
      (fun v ->
        match Hashtbl.find_opt var_id v with
        | Some i -> i
        | None ->
            invalid_arg
              (Fmt.str "Encoded_hom.compile: variable %a missing from table"
                 Variable.pp v))
      own_vars
  in
  let encode_term = function
    | Term.Var v -> Var (Hashtbl.find var_id v)
    | Term.Iri _ as t -> (
        match Dictionary.find dict t with
        | Some id -> Const id
        | None -> Const absent_id)
  in
  let patterns =
    List.map
      (fun t ->
        ( encode_term t.Triple.s,
          encode_term t.Triple.p,
          encode_term t.Triple.o ))
      (Tgraphs.Tgraph.triples tgraph)
  in
  { graph; patterns; vars = var_arr; own }

let graph source = source.graph
let variables source = source.vars

let encode_pre source (pre : Tgraphs.Homomorphism.assignment) =
  let dict = Encoded_graph.dictionary source.graph in
  let arr = Array.make (Array.length source.vars) unassigned in
  Array.iteri
    (fun i v ->
      match Variable.Map.find_opt v pre with
      | None -> ()
      | Some term -> (
          match Dictionary.find dict term with
          | Some id -> arr.(i) <- id
          | None -> arr.(i) <- absent_id))
    source.vars;
  arr

let decode source assignment =
  let dict = Encoded_graph.dictionary source.graph in
  let acc = ref Variable.Map.empty in
  Array.iteri
    (fun i id ->
      if id >= 0 then
        acc := Variable.Map.add source.vars.(i) (Dictionary.term_of dict id) !acc)
    assignment;
  !acc

(* Decode only the source's own variables — exact parity with the term
   solver, whose results have domain [vars source] (pre bindings of other
   variables are dropped). *)
let decode_own source assignment =
  let dict = Encoded_graph.dictionary source.graph in
  List.fold_left
    (fun acc i ->
      let id = assignment.(i) in
      if id >= 0 then
        Variable.Map.add source.vars.(i) (Dictionary.term_of dict id) acc
      else acc)
    Variable.Map.empty source.own

let bound assignment = function
  | Const id -> Some id
  | Var v -> if assignment.(v) <> unassigned then Some assignment.(v) else None

let pattern_lookup assignment (s, p, o) =
  (bound assignment s, bound assignment p, bound assignment o)

let fold ?(budget = Resource.Budget.unlimited) ?pre source ~init ~f =
  Resource.Budget.with_phase budget "hom" @@ fun () ->
  let { graph; patterns; vars; _ } = source in
  let nvars = Array.length vars in
  let assignment =
    match pre with
    | None -> Array.make nvars unassigned
    | Some p ->
        if Array.length p <> nvars then
          invalid_arg "Encoded_hom.fold: pre has the wrong width";
        Array.copy p
  in
  let rec go remaining acc =
    match remaining with
    | [] -> f acc assignment
    | _ ->
        Resource.Budget.tick budget;
        (* fail-first: pattern with the fewest matches under the current
           prefix (including [pre]'s bindings, so the ordering is
           recomputed for every prefix, not fixed at compile time) *)
        let scored =
          List.map
            (fun pat ->
              let s, p, o = pattern_lookup assignment pat in
              (Encoded_graph.match_count graph ?s ?p ?o (), pat))
            remaining
        in
        let _, best =
          List.fold_left
            (fun (bc, bp) (c, p) -> if c < bc then (c, p) else (bc, bp))
            (List.hd scored) (List.tl scored)
        in
        let rest = List.filter (fun p -> p != best) remaining in
        let s, p, o = pattern_lookup assignment best in
        let ps, pp, po = best in
        let acc = ref acc in
        let continue_ = ref true in
        Encoded_graph.iter_matching graph ?s ?p ?o
          ~f:(fun (ts, tp, to_) ->
            if !continue_ then begin
              (* unify the wildcard positions; record which variables we
                 bind here so we can undo *)
              let bound_here = ref [] in
              let unify_pos pterm value =
                match pterm with
                | Const id -> id = value
                | Var v ->
                    if assignment.(v) = value then true
                    else if assignment.(v) = unassigned then begin
                      assignment.(v) <- value;
                      bound_here := v :: !bound_here;
                      true
                    end
                    else false
              in
              let ok = unify_pos ps ts && unify_pos pp tp && unify_pos po to_ in
              if ok then begin
                match go rest !acc with
                | acc', `Continue -> acc := acc'
                | acc', `Stop ->
                    acc := acc';
                    continue_ := false
              end;
              List.iter (fun v -> assignment.(v) <- unassigned) !bound_here
            end)
          ();
        (!acc, if !continue_ then `Continue else `Stop)
  in
  fst (go patterns init)

let iter ?budget ?pre source ~f =
  fold ?budget ?pre source ~init:() ~f:(fun () assignment ->
      (f assignment, `Continue))

let exists ?budget ?pre source =
  let pre = Option.map (encode_pre source) pre in
  fold ?budget ?pre source ~init:false ~f:(fun _ _ -> (true, `Stop))

let count ?budget ?pre source =
  let pre = Option.map (encode_pre source) pre in
  fold ?budget ?pre source ~init:0 ~f:(fun n _ -> (n + 1, `Continue))

let all ?budget ?pre ?limit source =
  let pre = Option.map (encode_pre source) pre in
  fold ?budget ?pre source ~init:[] ~f:(fun acc assignment ->
      let acc = decode_own source assignment :: acc in
      match limit with
      | Some l when List.length acc >= l -> (acc, `Stop)
      | _ -> (acc, `Continue))
  |> List.rev

let count_tgraph ?budget tgraph graph = count ?budget (compile tgraph graph)
