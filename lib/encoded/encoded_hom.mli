(** The homomorphism solver over the dictionary-encoded store: the same
    fail-first backtracking join as {!Tgraphs.Homomorphism}, operating on
    integer ids and sorted-array range lookups instead of terms and hash
    probes. Results are identical (cross-checked in the tests); bench A4
    and A7 compare throughput.

    Assignments are flat int arrays indexed by dense variable ids. A
    source can be compiled against a {e shared} variable table ([?vars]),
    so every node of a pattern tree numbers its variables in the same
    array and a parent's solution doubles as the child join's [pre] with
    no re-encoding — the whole enumeration round-trips through ids and is
    decoded only at the solution boundary.

    [budget] is ticked once per backtracking node under phase ["hom"];
    the search raises {!Resource.Budget.Exhausted} when it trips. *)

open Rdf

type pterm =
  | Const of int  (** a dictionary id (or {!absent_id}) *)
  | Var of int  (** a dense variable slot into {!variables} *)
(** One position of a compiled triple pattern. *)

type source
(** A t-graph compiled against a graph's dictionary (the graph is
    captured in the source). *)

val compile : ?vars:Variable.t array -> Tgraphs.Tgraph.t -> Encoded_graph.t -> source
(** Variables are numbered densely against [vars] when given (raising
    [Invalid_argument] if a t-graph variable is missing from it), or
    against the t-graph's own variables otherwise. IRIs absent from the
    dictionary compile to a negative sentinel id whose lookups hit empty
    ranges, so such sources simply yield zero homomorphisms. *)

val graph : source -> Encoded_graph.t

val variables : source -> Variable.t array
(** Decode table: variable of each dense id (the shared table when one
    was supplied to {!compile}). *)

val patterns : source -> (pterm * pterm * pterm) array
(** The compiled patterns, in the t-graph's triple order (a fresh copy).
    Pattern indices in a {!strategy} order refer to positions in this
    array — the optimizer reads it to compile join orders. *)

val own_slots : source -> int list
(** Indices (into {!variables}) of the compiled t-graph's {e own}
    variables. A {!fold} with [pre] depends on [pre] only through these
    slots — the key a caller needs to memoise existence verdicts on. *)

(** How {!fold} picks the next pattern at each depth of the backtracking
    join. *)
type strategy =
  | Rescore
      (** exact fail-first: re-score {e every} remaining pattern at every
          node entry with a fresh range count — the pre-optimizer
          behaviour, kept as the fallback *)
  | Fixed of int array
      (** follow a compiled static order (a permutation of pattern
          indices) verbatim; zero scoring at run time *)
  | Adaptive of int array
      (** fail-first with incremental re-ranking: the compiled order
          seeds the ranking (and breaks score ties), scores start from
          one range count per pattern under [pre], and afterwards only
          the remaining patterns touching a {e newly bound} variable are
          re-counted (scores are restored on backtrack). Selects exactly
          the same fail-first pattern as {!Rescore} up to tie-breaking,
          at a fraction of the counting work. *)

val unassigned : int
(** Sentinel for a free slot in an assignment array ([-1]). *)

val absent_id : int
(** Sentinel id for a term absent from the dictionary ([-2]); lookups
    keyed on it match nothing. *)

val encode_pre : source -> Tgraphs.Homomorphism.assignment -> int array
(** Encode a term-level partial assignment into an assignment array over
    {!variables}: unmapped variables become {!unassigned}, terms outside
    the dictionary become {!absent_id}. *)

val decode : source -> int array -> Tgraphs.Homomorphism.assignment
(** Decode every bound ([>= 0]) slot back to terms — the solution
    boundary for shared-table enumeration. *)

val fold :
  ?budget:Resource.Budget.t ->
  ?strategy:strategy ->
  ?pre:int array ->
  source ->
  init:'acc ->
  f:('acc -> int array -> 'acc * [ `Continue | `Stop ]) ->
  'acc
(** Fold over all homomorphisms extending [pre] (an encoded assignment
    of {!variables}'s width, e.g. from {!encode_pre} or a previous
    solution), with early exit. [f] receives the {e live} working array:
    copy it ([Array.copy]) to retain it beyond the callback. The
    strategy (default {!Rescore}) only affects the order the search
    explores patterns in — the set of homomorphisms folded over is the
    same for every strategy (tested). A source with zero patterns folds
    over exactly one homomorphism: [pre] itself. Raises
    [Invalid_argument] if a strategy order is not a permutation of the
    source's patterns. *)

val iter :
  ?budget:Resource.Budget.t ->
  ?strategy:strategy ->
  ?pre:int array -> source -> f:(int array -> unit) -> unit

val exists :
  ?budget:Resource.Budget.t ->
  ?pre:Tgraphs.Homomorphism.assignment -> source -> bool

val count :
  ?budget:Resource.Budget.t ->
  ?pre:Tgraphs.Homomorphism.assignment -> source -> int
(** Number of distinct homomorphisms. *)

val all :
  ?budget:Resource.Budget.t ->
  ?pre:Tgraphs.Homomorphism.assignment ->
  ?limit:int -> source -> Tgraphs.Homomorphism.assignment list
(** All homomorphisms (up to [limit] if given), decoded back to terms
    with domain [vars source] — exact parity with
    {!Tgraphs.Homomorphism.all}. Order unspecified. *)

val count_tgraph :
  ?budget:Resource.Budget.t -> Tgraphs.Tgraph.t -> Encoded_graph.t -> int
(** Convenience: {!compile} + {!count}. *)
