open Rdf

(* Families-explored counter. Domain-local so concurrent [run]s on a
   domain pool don't race: each domain accumulates its own count, and
   callers read/reset the counter of the domain their runs happened on. *)
let explored_key = Domain.DLS.new_key (fun () -> ref 0)
let stats_families_explored () = !(Domain.DLS.get explored_key)
let reset_stats () = Domain.DLS.get explored_key := 0

let unknown_id = -2

(* ------------------------------------------------------------------ *)
(* Compiled representation                                             *)
(* ------------------------------------------------------------------ *)

(* A pattern position: a dictionary id (or [unknown_id] for an IRI the
   graph has never seen — such a triple can match nothing), a parameter
   (distinguished variable, frozen per run), or a free variable. *)
type pterm =
  | Cst of int
  | Prm of int
  | Fv of int

type t = {
  k : int;
  graph : Encoded_graph.t;
  params : Variable.t array;
  free_vars : Variable.t array;
  patterns : (pterm * pterm * pterm) array;
  universe : int array;
  (* Per free variable: sorted candidate ids from the µ-independent unary
     triples (those whose only variable is this one and contain no
     parameter), or [None] when unconstrained — then the whole term
     universe. Computed once per (pattern, graph): ISSUE PR2 (b). *)
  base : int array option array;
}

let params t = t.params
let free_count t = Array.length t.free_vars

(* ------------------------------------------------------------------ *)
(* Int-array partial maps                                              *)
(* ------------------------------------------------------------------ *)

(* A partial map {v1 ↦ a1, ...} over free-variable ids is a flat array
   [| v1; a1; v2; a2; ... |] sorted by variable id. Keys are hashed with
   an FNV-style mix over a dedicated hashtable functor — measurably
   cheaper than polymorphic hashing of term maps in the old kernel. *)

module Key = struct
  type t = int array

  let equal a b =
    Array.length a = Array.length b
    &&
    let rec go i = i < 0 || (a.(i) = b.(i) && go (i - 1)) in
    go (Array.length a - 1)

  let hash a =
    let h = ref 0x811c9dc5 in
    Array.iter (fun x -> h := (!h lxor (x + 1)) * 0x01000193) a;
    !h land max_int
end

module Tbl = Hashtbl.Make (Key)

let key_has_var key v =
  let len = Array.length key / 2 in
  let rec go i = i < len && (key.(2 * i) = v || go (i + 1)) in
  go 0

let key_add key v a =
  let len = Array.length key / 2 in
  let out = Array.make ((2 * len) + 2) 0 in
  let pos = ref 0 in
  while !pos < len && key.(2 * !pos) < v do incr pos done;
  Array.blit key 0 out 0 (2 * !pos);
  out.(2 * !pos) <- v;
  out.((2 * !pos) + 1) <- a;
  Array.blit key (2 * !pos) out ((2 * !pos) + 2) (2 * (len - !pos));
  out

let key_remove key v =
  let len = Array.length key / 2 in
  let out = Array.make ((2 * len) - 2) 0 in
  let j = ref 0 in
  for i = 0 to len - 1 do
    if key.(2 * i) <> v then begin
      out.(2 * !j) <- key.(2 * i);
      out.((2 * !j) + 1) <- key.((2 * i) + 1);
      incr j
    end
  done;
  out

(* ------------------------------------------------------------------ *)
(* Unary candidate domains via sorted-array ranges                     *)
(* ------------------------------------------------------------------ *)

(* Candidates for the single variable of a unary triple, read off the
   matching range of its constant prefix (instead of testing every term
   of the universe as the term-level kernel does). Positions: [Some id]
   is a constant, [None] the variable. *)
let unary_candidates graph (s, p, o) =
  let acc = ref [] in
  Encoded_graph.iter_matching graph ?s ?p ?o
    ~f:(fun (ts, tp, to_) ->
      let value = ref (-1) in
      let ok pos bound =
        match bound with
        | Some _ -> true
        | None ->
            if !value < 0 then begin
              value := pos;
              true
            end
            else !value = pos
      in
      if ok ts s && ok tp p && ok to_ o then acc := !value :: !acc)
    ();
  Array.of_list (List.sort_uniq compare !acc)

(* A unary-candidate cache shared across the compiles of one
   (store, tree): two game families whose unary triples encode to the
   same constant pattern get the same candidate array, so the range
   scan runs once per (pattern, store-epoch) instead of once per
   family. Keys mention dictionary ids, so a cache is only meaningful
   against one store epoch — [Wd_core.Pebble_cache] owns one per entry.
   Not thread-safe: callers serialise compiles (or use a private one). *)
type unary_cache = {
  table : (int option * int option * int option, int array) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create_unary_cache () =
  { table = Hashtbl.create 64; hits = 0; misses = 0 }

let unary_cache_stats c = (c.hits, c.misses)

let intersect_sorted a b =
  let out = ref [] and i = ref 0 and j = ref 0 in
  while !i < Array.length a && !j < Array.length b do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      out := x :: !out;
      incr i;
      incr j
    end
    else if x < y then incr i
    else incr j
  done;
  Array.of_list (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let compile ?unary ~k g graph =
  if k < 1 then invalid_arg "Encoded_pebble.compile: k must be at least 1";
  let unary_candidates_cached pat =
    match unary with
    | None -> unary_candidates graph pat
    | Some c -> (
        match Hashtbl.find_opt c.table pat with
        | Some arr ->
            c.hits <- c.hits + 1;
            arr
        | None ->
            c.misses <- c.misses + 1;
            let arr = unary_candidates graph pat in
            Hashtbl.add c.table pat arr;
            arr)
  in
  let dict = Encoded_graph.dictionary graph in
  let x = Tgraphs.Gtgraph.x g in
  let s = Tgraphs.Gtgraph.s g in
  let params = Array.of_list (Variable.Set.elements x) in
  let free_vars =
    Array.of_list
      (Variable.Set.elements (Variable.Set.diff (Tgraphs.Tgraph.vars s) x))
  in
  let param_id = Hashtbl.create 16 and free_id = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.replace param_id v i) params;
  Array.iteri (fun i v -> Hashtbl.replace free_id v i) free_vars;
  let enc_term = function
    | Term.Iri _ as term -> (
        match Dictionary.find dict term with
        | Some id -> Cst id
        | None -> Cst unknown_id)
    | Term.Var v -> (
        match Hashtbl.find_opt param_id v with
        | Some j -> Prm j
        | None -> Fv (Hashtbl.find free_id v))
  in
  let patterns =
    Array.of_list
      (List.map
         (fun tr ->
           (enc_term tr.Triple.s, enc_term tr.Triple.p, enc_term tr.Triple.o))
         (Tgraphs.Tgraph.triples s))
  in
  let n = Array.length free_vars in
  let base = Array.make (max n 1) None in
  let free_ids (a, b, c) =
    List.sort_uniq compare
      (List.filter_map (function Fv v -> Some v | _ -> None) [ a; b; c ])
  in
  let has_prm (a, b, c) =
    List.exists (function Prm _ -> true | _ -> false) [ a; b; c ]
  in
  Array.iter
    (fun pat ->
      match free_ids pat with
      | [ v ] when not (has_prm pat) ->
          let pos = function
            | Cst i -> Some i
            | Fv _ -> None
            | Prm _ -> assert false
          in
          let a, b, c = pat in
          let cands = unary_candidates_cached (pos a, pos b, pos c) in
          base.(v) <-
            Some
              (match base.(v) with
              | None -> cands
              | Some prev -> intersect_sorted prev cands)
      | _ -> ())
    patterns;
  let universe = Array.init (Dictionary.size dict) Fun.id in
  { k; graph; params; free_vars; patterns; universe; base }

(* ------------------------------------------------------------------ *)
(* Running the game for one frozen µ                                   *)
(* ------------------------------------------------------------------ *)

(* Runtime pattern positions after substituting the parameters. *)
type rterm =
  | Rc of int
  | Rv of int

let run ?(budget = Resource.Budget.unlimited) t ~mu =
  if Array.length mu <> Array.length t.params then
    invalid_arg "Encoded_pebble.run: µ arity mismatch";
  Resource.Budget.with_phase budget "pebble" @@ fun () ->
  let subst = function
    | Cst i -> Rc i
    | Prm j -> Rc mu.(j)
    | Fv v -> Rv v
  in
  let n = Array.length t.free_vars in
  (* Substitute parameters; fail fast on an absent ground triple. *)
  let ground_ok = ref true in
  let nonground = ref [] in
  Array.iter
    (fun (a, b, c) ->
      let ra = subst a and rb = subst b and rc = subst c in
      match ra, rb, rc with
      | Rc x, Rc y, Rc z ->
          if !ground_ok && not (Encoded_graph.mem t.graph (x, y, z)) then
            ground_ok := false
      | _ ->
          let fv =
            List.sort_uniq compare
              (List.filter_map
                 (function Rv v -> Some v | Rc _ -> None)
                 [ ra; rb; rc ])
          in
          nonground := ((ra, rb, rc), fv) :: !nonground)
    t.patterns;
  if not !ground_ok then false
  else if n = 0 then true
  else begin
    let pattern_info = !nonground in
    (* Candidate domains: the precompiled base, narrowed by the unary
       triples that mention a parameter (their constants depend on µ).
       µ-independent unary patterns are already folded into [t.base]. *)
    let cands =
      Array.init n (fun v ->
          match t.base.(v) with None -> t.universe | Some c -> c)
    in
    Array.iter
      (fun (a, b, c) ->
        let has_prm =
          List.exists (function Prm _ -> true | _ -> false) [ a; b; c ]
        in
        let fv =
          List.sort_uniq compare
            (List.filter_map (function Fv v -> Some v | _ -> None) [ a; b; c ])
        in
        match fv with
        | [ v ] when has_prm ->
            let pos = function
              | Cst i -> Some i
              | Prm j -> Some mu.(j)
              | Fv _ -> None
            in
            let narrowed = unary_candidates t.graph (pos a, pos b, pos c) in
            cands.(v) <- intersect_sorted cands.(v) narrowed
        | _ -> ())
      t.patterns;
    if Array.exists (fun c -> Array.length c = 0) cands then false
    else begin
      let assign = Array.make n (-1) in
      let mem_subst (ra, rb, rc) =
        let value = function
          | Rc i -> i
          | Rv v -> assign.(v)
        in
        Encoded_graph.mem t.graph (value ra, value rb, value rc)
      in
      let explored = Domain.DLS.get explored_key in
      let alive : unit Tbl.t = Tbl.create 4096 in
      let key_of_dom dom_vars =
        let len = List.length dom_vars in
        let key = Array.make (2 * len) 0 in
        List.iteri
          (fun i v ->
            key.(2 * i) <- v;
            key.((2 * i) + 1) <- assign.(v))
          dom_vars;
        key
      in
      (* All alive partial homomorphisms with the given sorted domain. *)
      let enumerate dom_vars =
        let rec go remaining =
          match remaining with
          | [] ->
              incr explored;
              Tbl.replace alive (key_of_dom dom_vars) ()
          | v :: rest ->
              Array.iter
                (fun a ->
                  Resource.Budget.tick budget;
                  assign.(v) <- a;
                  let ok =
                    List.for_all
                      (fun (pat, fv) ->
                        if
                          List.mem v fv
                          && List.for_all (fun u -> assign.(u) >= 0) fv
                        then mem_subst pat
                        else true)
                      pattern_info
                  in
                  if ok then go rest;
                  assign.(v) <- -1)
                cands.(v)
        in
        go dom_vars
      in
      let rec subsets start size acc =
        if size = 0 then [ List.rev acc ]
        else if start >= n then []
        else
          List.concat_map
            (fun v -> subsets (v + 1) (size - 1) (v :: acc))
            (List.init (n - start) (fun i -> start + i))
      in
      for size = 0 to min t.k n do
        List.iter enumerate (subsets 0 size [])
      done;
      (* Forth-property counters: counters(h).(x) = number of alive
         one-point extensions of h at free variable x. *)
      let counters : int array Tbl.t = Tbl.create 4096 in
      let dead = Queue.create () in
      Tbl.iter
        (fun key () ->
          let len = Array.length key / 2 in
          if len < t.k then begin
            let cnt = Array.make n (-1) in
            for v = 0 to n - 1 do
              if not (key_has_var key v) then begin
                Resource.Budget.tick budget;
                let c = ref 0 in
                Array.iter
                  (fun a -> if Tbl.mem alive (key_add key v a) then incr c)
                  cands.(v);
                cnt.(v) <- !c;
                if !c = 0 then Queue.add key dead
              end
            done;
            Tbl.replace counters key cnt
          end)
        alive;
      (* Worklist removal down to the greatest consistent family. *)
      while not (Queue.is_empty dead) do
        Resource.Budget.tick budget;
        let key = Queue.pop dead in
        if Tbl.mem alive key then begin
          Tbl.remove alive key;
          let len = Array.length key / 2 in
          (* restrictions lose an extension *)
          for i = 0 to len - 1 do
            let v = key.(2 * i) in
            let g_key = key_remove key v in
            if Tbl.mem alive g_key then
              match Tbl.find_opt counters g_key with
              | Some cnt when cnt.(v) >= 0 ->
                  cnt.(v) <- cnt.(v) - 1;
                  if cnt.(v) <= 0 then Queue.add g_key dead
              | _ -> ()
          done;
          (* alive extensions violate downward closure *)
          if len < t.k then
            for v = 0 to n - 1 do
              if not (key_has_var key v) then
                Array.iter
                  (fun a ->
                    let h_key = key_add key v a in
                    if Tbl.mem alive h_key then Queue.add h_key dead)
                  cands.(v)
            done
        end
      done;
      Tbl.mem alive [||]
    end
  end

(* ------------------------------------------------------------------ *)
(* Term-level entry point (mirror of Pebble_game.wins)                 *)
(* ------------------------------------------------------------------ *)

let encode_mu t mu =
  let dict = Encoded_graph.dictionary t.graph in
  Array.map
    (fun v ->
      match Variable.Map.find_opt v mu with
      | Some (Term.Iri _ as term) -> (
          match Dictionary.find dict term with
          | Some id -> id
          | None -> unknown_id)
      | Some (Term.Var _) ->
          invalid_arg "Encoded_pebble.wins: µ maps a variable to a non-IRI"
      | None -> invalid_arg "Encoded_pebble.wins: µ does not cover X")
    t.params

let wins ?budget ~k g ~mu graph =
  let compiled = compile ~k g graph in
  run ?budget compiled ~mu:(encode_mu compiled mu)
