(** Existential (k+1)-pebble game over the dictionary-encoded store.

    This is the hot kernel behind the paper's Theorem-1 PTIME evaluation
    path: it decides the k-consistency relaxation [(S,X) →µ_k G] exactly
    as {!Pebble.Pebble_game.wins} does (the two are cross-checked by
    qcheck in the test suite), but over {!Encoded_graph.t} — dense int
    ids for terms and variables, sorted-array range lookups for the
    unary candidate domains, and flat int-array partial maps hashed with
    a dedicated FNV-style family table instead of polymorphic hashing on
    term maps.

    The split into {!compile} and {!run} is what the evaluation-wide
    cache ({!Wd_core.Pebble_cache}) builds on: a generalised t-graph is
    compiled against a graph once — including the µ-independent unary
    candidate domains — and then replayed for many frozen mappings µ. *)

type t
(** A generalised t-graph compiled against a fixed encoded graph. *)

val unknown_id : int
(** Sentinel id for an IRI absent from the graph's dictionary. It is
    negative, so every range lookup involving it is empty — matching the
    term-level kernel, where such a triple matches nothing. *)

type unary_cache
(** Memo for the µ-independent unary candidate domains, shared across
    the {!compile}s of one (tree, store-epoch): two game families whose
    unary triples encode to the same constant pattern reuse one range
    scan. Keys contain dictionary ids, so a cache must never outlive
    its store epoch. Not thread-safe — serialise compiles against it. *)

val create_unary_cache : unit -> unary_cache

val unary_cache_stats : unary_cache -> int * int
(** [(hits, misses)] — misses count the range scans actually run. *)

val compile :
  ?unary:unary_cache -> k:int -> Tgraphs.Gtgraph.t -> Encoded_graph.t -> t
(** [compile ~k g graph] compiles [g = (S, X)] for the existential
    k-pebble game on [graph]. [unary] memoises the µ-independent unary
    candidate scans across compiles against the same store. Raises
    [Invalid_argument] if [k < 1]. *)

val params : t -> Rdf.Variable.t array
(** The distinguished variables X, sorted; [run]'s [mu] array gives the
    image of each, positionally. *)

val free_count : t -> int
(** Number of existential (non-distinguished) variables. *)

val encode_mu : t -> Tgraphs.Homomorphism.assignment -> int array
(** Encode a term-level assignment into the positional id array expected
    by {!run}. IRIs unknown to the graph map to {!unknown_id}. Raises
    [Invalid_argument] if the assignment does not cover X or maps a
    distinguished variable to a non-IRI. *)

val run : ?budget:Resource.Budget.t -> t -> mu:int array -> bool
(** [run t ~mu] decides whether the Duplicator wins, i.e. whether the
    k-consistency fixpoint keeps the empty map alive once X is frozen to
    [mu]. Ticks [budget] under phase ["pebble"] exactly like the
    term-level kernel. Raises [Invalid_argument] on arity mismatch. *)

val wins :
  ?budget:Resource.Budget.t ->
  k:int ->
  Tgraphs.Gtgraph.t ->
  mu:Tgraphs.Homomorphism.assignment ->
  Encoded_graph.t ->
  bool
(** One-shot convenience: [compile] then [run]. Drop-in equivalent of
    {!Pebble.Pebble_game.wins} over the encoded store. *)

val stats_families_explored : unit -> int
(** Families enumerated by {!run} since the last {!reset_stats} — {e on
    the calling domain}: the counter is domain-local, so runs executed
    on a pool worker accumulate into that worker's counter. *)

val reset_stats : unit -> unit
