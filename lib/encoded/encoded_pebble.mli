(** Existential (k+1)-pebble game over the dictionary-encoded store.

    This is the hot kernel behind the paper's Theorem-1 PTIME evaluation
    path: it decides the k-consistency relaxation [(S,X) →µ_k G] exactly
    as {!Pebble.Pebble_game.wins} does (the two are cross-checked by
    qcheck in the test suite), but over {!Encoded_graph.t} — dense int
    ids for terms and variables, sorted-array range lookups for the
    unary candidate domains, and flat int-array partial maps hashed with
    a dedicated FNV-style family table instead of polymorphic hashing on
    term maps.

    The split into {!compile} and {!run} is what the evaluation-wide
    cache ({!Wd_core.Pebble_cache}) builds on: a generalised t-graph is
    compiled against a graph once — including the µ-independent unary
    candidate domains — and then replayed for many frozen mappings µ. *)

type t
(** A generalised t-graph compiled against a fixed encoded graph. *)

val unknown_id : int
(** Sentinel id for an IRI absent from the graph's dictionary. It is
    negative, so every range lookup involving it is empty — matching the
    term-level kernel, where such a triple matches nothing. *)

val compile : k:int -> Tgraphs.Gtgraph.t -> Encoded_graph.t -> t
(** [compile ~k g graph] compiles [g = (S, X)] for the existential
    k-pebble game on [graph]. Raises [Invalid_argument] if [k < 1]. *)

val params : t -> Rdf.Variable.t array
(** The distinguished variables X, sorted; [run]'s [mu] array gives the
    image of each, positionally. *)

val free_count : t -> int
(** Number of existential (non-distinguished) variables. *)

val encode_mu : t -> Tgraphs.Homomorphism.assignment -> int array
(** Encode a term-level assignment into the positional id array expected
    by {!run}. IRIs unknown to the graph map to {!unknown_id}. Raises
    [Invalid_argument] if the assignment does not cover X or maps a
    distinguished variable to a non-IRI. *)

val run : ?budget:Resource.Budget.t -> t -> mu:int array -> bool
(** [run t ~mu] decides whether the Duplicator wins, i.e. whether the
    k-consistency fixpoint keeps the empty map alive once X is frozen to
    [mu]. Ticks [budget] under phase ["pebble"] exactly like the
    term-level kernel. Raises [Invalid_argument] on arity mismatch. *)

val wins :
  ?budget:Resource.Budget.t ->
  k:int ->
  Tgraphs.Gtgraph.t ->
  mu:Tgraphs.Homomorphism.assignment ->
  Encoded_graph.t ->
  bool
(** One-shot convenience: [compile] then [run]. Drop-in equivalent of
    {!Pebble.Pebble_game.wins} over the encoded store. *)

val stats_families_explored : unit -> int
(** Families enumerated by {!run} since the last {!reset_stats}. *)

val reset_stats : unit -> unit
