type t =
  | Parse_error of { source : string; line : int; col : int; msg : string }
  | Not_well_designed of string
  | Budget_exhausted of { phase : string; spent : int }
  | Io_error of { path : string; msg : string }
  | Invalid_input of string
  | Internal of string

exception Error of t

let fail e = raise (Error e)

let of_exn = function
  | Error e -> Some e
  | Resource.Budget.Exhausted { phase; spent } ->
      Some (Budget_exhausted { phase; spent })
  | Sys_error msg -> Some (Io_error { path = ""; msg })
  | Failure msg -> Some (Internal msg)
  | _ -> None

let guard f =
  match f () with
  | v -> Ok v
  | exception e -> ( match of_exn e with Some err -> Error err | None -> raise e)

let attempt f =
  match guard f with
  | Ok v -> Some v
  | Error (Budget_exhausted _) -> None
  | Error e -> fail e

let exit_ok = 0
let exit_user_error = 2
let exit_budget = 3
let exit_internal = 4

let exit_code = function
  | Parse_error _ | Not_well_designed _ | Io_error _ | Invalid_input _ ->
      exit_user_error
  | Budget_exhausted _ -> exit_budget
  | Internal _ -> exit_internal

let pp ppf = function
  | Parse_error { source; line; col; msg } ->
      if line > 0 then Fmt.pf ppf "%s: line %d, column %d: %s" source line col msg
      else Fmt.pf ppf "%s: %s" source msg
  | Not_well_designed msg -> Fmt.pf ppf "not well-designed: %s" msg
  | Budget_exhausted { phase; spent } ->
      Fmt.pf ppf
        "budget exhausted during %s after %d step(s) — raise --fuel or \
         --timeout, or let the engine degrade (drop --algorithm naive)"
        phase spent
  | Io_error { path; msg } ->
      if path = "" then Fmt.pf ppf "I/O error: %s" msg
      else Fmt.pf ppf "%s: %s" path msg
  | Invalid_input msg -> Fmt.pf ppf "invalid input: %s" msg
  | Internal msg -> Fmt.pf ppf "internal error: %s" msg

let to_string e = Fmt.str "%a" pp e
