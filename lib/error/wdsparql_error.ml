type store_fault =
  | Bad_magic
  | Version_mismatch of { found : int; expected : int }
  | Truncated
  | Checksum_mismatch
  | Corrupt
  | Delta_chain_broken of { expected_parent : int; found_parent : int }
  | Manifest_mismatch of { member : string }

type t =
  | Parse_error of { source : string; line : int; col : int; msg : string }
  | Not_well_designed of string
  | Budget_exhausted of { phase : string; spent : int }
  | Io_error of { path : string; msg : string }
  | Store_error of { path : string; fault : store_fault; msg : string }
  | Invalid_input of string
  | Internal of string

exception Error of t

let fail e = raise (Error e)

let of_exn = function
  | Error e -> Some e
  | Resource.Budget.Exhausted { phase; spent } ->
      Some (Budget_exhausted { phase; spent })
  | Sys_error msg -> Some (Io_error { path = ""; msg })
  | Failure msg -> Some (Internal msg)
  | _ -> None

let guard f =
  match f () with
  | v -> Ok v
  | exception e -> ( match of_exn e with Some err -> Error err | None -> raise e)

let attempt f =
  match guard f with
  | Ok v -> Some v
  | Error (Budget_exhausted _) -> None
  | Error e -> fail e

let exit_ok = 0
let exit_user_error = 2
let exit_budget = 3
let exit_internal = 4
let exit_store = 5

let exit_code = function
  | Parse_error _ | Not_well_designed _ | Io_error _ | Invalid_input _ ->
      exit_user_error
  | Budget_exhausted _ -> exit_budget
  | Internal _ -> exit_internal
  | Store_error _ -> exit_store

let pp_store_fault ppf = function
  | Bad_magic -> Fmt.string ppf "not a wdsparql store (bad magic)"
  | Version_mismatch { found; expected } ->
      Fmt.pf ppf "store format version %d (this build reads version %d)"
        found expected
  | Truncated -> Fmt.string ppf "truncated store file"
  | Checksum_mismatch -> Fmt.string ppf "content stamp mismatch"
  | Corrupt -> Fmt.string ppf "corrupt store file"
  | Delta_chain_broken { expected_parent; found_parent } ->
      Fmt.pf ppf
        "delta segment does not extend this base (segment expects parent \
         stamp %#x, chain is at %#x)"
        found_parent expected_parent
  | Manifest_mismatch { member } ->
      Fmt.pf ppf "shard member %s disagrees with the manifest" member

let pp ppf = function
  | Parse_error { source; line; col; msg } ->
      if line > 0 then Fmt.pf ppf "%s: line %d, column %d: %s" source line col msg
      else Fmt.pf ppf "%s: %s" source msg
  | Not_well_designed msg -> Fmt.pf ppf "not well-designed: %s" msg
  | Budget_exhausted { phase; spent } ->
      Fmt.pf ppf
        "budget exhausted during %s after %d step(s) — raise --fuel or \
         --timeout, or let the engine degrade (drop --algorithm naive)"
        phase spent
  | Io_error { path; msg } ->
      if path = "" then Fmt.pf ppf "I/O error: %s" msg
      else Fmt.pf ppf "%s: %s" path msg
  | Store_error { path; fault; msg } ->
      if msg = "" then Fmt.pf ppf "%s: %a" path pp_store_fault fault
      else Fmt.pf ppf "%s: %a: %s" path pp_store_fault fault msg
  | Invalid_input msg -> Fmt.pf ppf "invalid input: %s" msg
  | Internal msg -> Fmt.pf ppf "internal error: %s" msg

let to_string e = Fmt.str "%a" pp e
