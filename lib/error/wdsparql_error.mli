(** The structured error taxonomy of the library.

    Entry points that can fail for a {e reportable} reason — malformed
    input, a query outside the well-designed fragment, an exhausted
    resource budget, an unreadable file — surface a [t] instead of an
    ad-hoc [Failure _]/backtrace, so callers (the CLI above all) can print
    a one-line diagnostic and pick the right exit code. See
    [docs/ROBUSTNESS.md]. *)

(** What exactly is wrong with a compiled on-disk store ([Storage]). *)
type store_fault =
  | Bad_magic  (** the file does not start with the store magic *)
  | Version_mismatch of { found : int; expected : int }
      (** a store written by an incompatible format version *)
  | Truncated  (** a section (or the header) extends past end-of-file *)
  | Checksum_mismatch
      (** the payload does not hash to the header's content stamp
          (detected on [verify] loads) *)
  | Corrupt
      (** structurally invalid: overlapping or unsorted sections,
          out-of-range ids, a broken dictionary blob, … *)
  | Delta_chain_broken of { expected_parent : int; found_parent : int }
      (** a delta segment whose recorded parent stamp does not match the
          chain it sits on — the base was rewritten (or a [compact] was
          interrupted) under the segment *)
  | Manifest_mismatch of { member : string }
      (** a shard member store is missing or no longer matches the stamp
          pinned in the manifest *)

type t =
  | Parse_error of { source : string; line : int; col : int; msg : string }
      (** Malformed Turtle/N-Triples/query text. [source] names the input
          (a file path, or ["query"]); [line]/[col] are 1-based, 0 when
          unknown. *)
  | Not_well_designed of string
      (** The pattern is outside the well-designed fragment the engine
          evaluates; the payload is the violation diagnostic. *)
  | Budget_exhausted of { phase : string; spent : int }
      (** A resource budget (fuel, deadline, or solution cap) tripped
          while [phase] was running — the structured face of
          {!Resource.Budget.Exhausted}. *)
  | Io_error of { path : string; msg : string }
      (** A file could not be read or written. *)
  | Store_error of { path : string; fault : store_fault; msg : string }
      (** A compiled store file is unusable — never a raw [Failure] or a
          crash from a corrupt mapping; [msg] adds detail (may be
          empty). *)
  | Invalid_input of string
      (** A malformed user-supplied argument (binding spec, bad [k], …). *)
  | Internal of string
      (** A bug or an unclassified failure; exit code distinct from all
          user errors so scripts can tell them apart. *)

exception Error of t
(** Carrier for [t] through exception-based code paths. *)

val fail : t -> 'a
(** [raise (Error t)]. *)

val of_exn : exn -> t option
(** Classify an exception: [Error], {!Resource.Budget.Exhausted},
    [Sys_error], and [Failure] map to a [t]; anything else is [None]
    (let genuine bugs escape). *)

val guard : (unit -> 'a) -> ('a, t) result
(** Run a computation, converting the exceptions {!of_exn} knows about
    into [Error]; unknown exceptions propagate. *)

val attempt : (unit -> 'a) -> 'a option
(** [attempt f] is [Some (f ())], or [None] if [f] exhausted its budget —
    the degradation helper: try the exact computation, fall back on
    [None]. Other classified errors are re-raised as {!Error}. *)

(** Exit codes: [exit_user_error] = 2 (parse, IO, invalid input, not
    well-designed), [exit_budget] = 3, [exit_internal] = 4,
    [exit_store] = 5 (unusable compiled store). *)

val exit_ok : int

val exit_user_error : int

val exit_budget : int

val exit_internal : int

val exit_store : int

val exit_code : t -> int
(** The process exit code the CLI uses for this error. *)

val pp_store_fault : store_fault Fmt.t
(** One-line rendering of a store fault (used inside {!pp} and by the
    tests). *)

val pp : t Fmt.t
(** One-line human-readable rendering (no backtrace). *)

val to_string : t -> string
