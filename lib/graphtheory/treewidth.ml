module ISet = Ugraph.ISet
module Budget = Resource.Budget

(* ------------------------------------------------------------------ *)
(* Exact treewidth: the O(2^n) dynamic programme of Bodlaender et al.
   f(S) = min over v in S of max (f(S \ {v}), q(S \ {v}, v)) where
   q(S, v) counts vertices outside S ∪ {v} reachable from v through S.
   f(V) is the treewidth. Sets are int bitmasks. *)
(* ------------------------------------------------------------------ *)

let adjacency_masks g =
  let n = Ugraph.n g in
  Array.init n (fun v ->
      ISet.fold (fun u acc -> acc lor (1 lsl u)) (Ugraph.adj g v) 0)

(* Reachable-through-S closure from v: expand adj within S to fixpoint. *)
let q_count adj full v s =
  let rec grow reached =
    let frontier = reached land s in
    let expanded =
      let acc = ref reached in
      let rest = ref frontier in
      while !rest <> 0 do
        let u = !rest land - !rest in
        let i =
          (* index of lowest set bit *)
          let rec bit k m = if m land 1 = 1 then k else bit (k + 1) (m lsr 1) in
          bit 0 u
        in
        acc := !acc lor adj.(i);
        rest := !rest land lnot u
      done;
      !acc
    in
    if expanded = reached then reached else grow expanded
  in
  let reached = grow adj.(v) in
  let outside = reached land lnot s land lnot (1 lsl v) land full in
  let rec popcount m = if m = 0 then 0 else 1 + popcount (m land (m - 1)) in
  popcount outside

let exact ?(budget = Budget.unlimited) ?(limit = 20) g =
  let n = Ugraph.n g in
  if n > limit then None
  else if n = 0 then Some (-1)
  else
    Budget.with_phase budget "treewidth" @@ fun () ->
    begin
    let adj = adjacency_masks g in
    let full = (1 lsl n) - 1 in
    let size = 1 lsl n in
    let f = Bytes.make size '\255' in
    (* f(∅) = -1 encoded as 255 → interpreted as -1 below. *)
    let get s =
      let b = Char.code (Bytes.get f s) in
      if b = 255 then -1 else b
    in
    let set s v = Bytes.set f s (Char.chr (if v < 0 then 255 else v)) in
    set 0 (-1);
    (* iterate subsets in increasing order: s-1 ⊂ relevant already done
       because removing a bit yields a smaller integer. *)
    for s = 1 to full do
      Budget.tick budget;
      let best = ref max_int in
      let rest = ref s in
      while !rest <> 0 do
        let bit = !rest land - !rest in
        let v =
          let rec idx k m = if m land 1 = 1 then k else idx (k + 1) (m lsr 1) in
          idx 0 bit
        in
        let s' = s land lnot bit in
        let candidate = max (get s') (q_count adj full v s') in
        if candidate < !best then best := candidate;
        rest := !rest land lnot bit
      done;
      set s !best
    done;
    Some (get full)
  end

(* ------------------------------------------------------------------ *)
(* Elimination heuristics.                                             *)
(* ------------------------------------------------------------------ *)

let eliminate_with ?(budget = Budget.unlimited) choose g =
  let n = Ugraph.n g in
  let adjacency = Array.init n (fun v -> Ugraph.adj g v) in
  let alive = Array.make n true in
  let order = ref [] in
  let width = ref 0 in
  for _ = 1 to n do
    Budget.tick budget;
    let v = choose adjacency alive in
    order := v :: !order;
    width := max !width (ISet.cardinal adjacency.(v));
    let nbrs = adjacency.(v) in
    ISet.iter
      (fun a ->
        adjacency.(a) <- ISet.remove v adjacency.(a);
        ISet.iter
          (fun b -> if a <> b then adjacency.(a) <- ISet.add b adjacency.(a))
          nbrs)
      nbrs;
    adjacency.(v) <- ISet.empty;
    alive.(v) <- false
  done;
  (List.rev !order, !width)

let argmin_alive score adjacency alive =
  let best = ref (-1) and best_score = ref max_int in
  Array.iteri
    (fun v live ->
      if live then begin
        let s = score adjacency v in
        if s < !best_score then begin
          best := v;
          best_score := s
        end
      end)
    alive;
  !best

let min_degree_order ?budget g =
  eliminate_with ?budget
    (argmin_alive (fun adjacency v -> ISet.cardinal adjacency.(v)))
    g

let fill_in adjacency v =
  let nbrs = ISet.elements adjacency.(v) in
  let count = ref 0 in
  let rec pairs = function
    | [] -> ()
    | a :: rest ->
        List.iter (fun b -> if not (ISet.mem b adjacency.(a)) then incr count) rest;
        pairs rest
  in
  pairs nbrs;
  !count

let min_fill_order ?budget g = eliminate_with ?budget (argmin_alive fill_in) g

(* ------------------------------------------------------------------ *)
(* Exact treewidth, second opinion: branch and bound over elimination
   orderings. State: adjacency sets of the not-yet-eliminated vertices,
   identified by the bitmask of remaining vertices (memoised).            *)
(* ------------------------------------------------------------------ *)

let exact_branch_and_bound ?(budget = Budget.unlimited) ?(limit = 26) g =
  let n = Ugraph.n g in
  if n > limit then None
  else if n = 0 then Some (-1)
  else
    Budget.with_phase budget "treewidth" @@ fun () ->
    begin
    let best = ref (snd (min_fill_order ~budget g)) in
    (* visited: remaining-set -> smallest width-so-far seen entering it *)
    let visited : (int, int) Hashtbl.t = Hashtbl.create 4096 in
    let rec go adjacency remaining width =
      Budget.tick budget;
      if width >= !best then ()
      else if remaining = 0 then best := width
      else begin
        match Hashtbl.find_opt visited remaining with
        | Some w when w <= width -> ()
        | _ ->
            Hashtbl.replace visited remaining width;
            (* simplicial vertices can be eliminated greedily: doing so
               first never hurts optimality *)
            let simplicial =
              let found = ref (-1) in
              for v = 0 to n - 1 do
                if !found = -1 && remaining land (1 lsl v) <> 0 then begin
                  let nbrs = adjacency.(v) in
                  let is_clique =
                    ISet.for_all
                      (fun a ->
                        ISet.for_all
                          (fun b -> a = b || ISet.mem b adjacency.(a))
                          nbrs)
                      nbrs
                  in
                  if is_clique then found := v
                end
              done;
              !found
            in
            let eliminate v =
              let nbrs = adjacency.(v) in
              let width' = max width (ISet.cardinal nbrs) in
              if width' < !best then begin
                let adjacency' = Array.copy adjacency in
                ISet.iter
                  (fun a ->
                    adjacency'.(a) <- ISet.remove v adjacency'.(a);
                    ISet.iter
                      (fun b -> if a <> b then adjacency'.(a) <- ISet.add b adjacency'.(a))
                      nbrs)
                  nbrs;
                adjacency'.(v) <- ISet.empty;
                go adjacency' (remaining land lnot (1 lsl v)) width'
              end
            in
            if simplicial >= 0 then eliminate simplicial
            else
              for v = 0 to n - 1 do
                if remaining land (1 lsl v) <> 0 then eliminate v
              done
      end
    in
    let adjacency = Array.init n (fun v -> Ugraph.adj g v) in
    go adjacency ((1 lsl n) - 1) 0;
    Some !best
  end


let lower_bound ?(budget = Budget.unlimited) g =
  (* Maximum-minimum-degree: repeatedly delete a minimum-degree vertex,
     recording the largest minimum degree seen. *)
  let n = Ugraph.n g in
  if n = 0 then -1
  else begin
    let adjacency = Array.init n (fun v -> Ugraph.adj g v) in
    let alive = Array.make n true in
    let best = ref 0 in
    for _ = 1 to n do
      Budget.tick budget;
      let v = argmin_alive (fun adjacency v -> ISet.cardinal adjacency.(v)) adjacency alive in
      best := max !best (ISet.cardinal adjacency.(v));
      ISet.iter (fun a -> adjacency.(a) <- ISet.remove v adjacency.(a)) adjacency.(v);
      adjacency.(v) <- ISet.empty;
      alive.(v) <- false
    done;
    !best
  end

let upper_bound ?budget g =
  let _, w1 = min_fill_order ?budget g in
  let _, w2 = min_degree_order ?budget g in
  min w1 w2

let treewidth ?budget ?(exact_limit = 20) g =
  match exact ?budget ~limit:exact_limit g with
  | Some w -> w
  | None -> upper_bound ?budget g

let is_at_most ?budget g k =
  if k >= Ugraph.n g - 1 then true
  else if lower_bound ?budget g > k then false
  else if upper_bound ?budget g <= k then true
  else treewidth ?budget g <= k

let decomposition ?(budget = Budget.unlimited) g =
  if Ugraph.n g = 0 then Tree_decomposition.make ~bags:[||] ~tree_edges:[]
  else begin
    let target = treewidth ~budget g in
    let order, w = min_fill_order ~budget g in
    if w = target then Tree_decomposition.of_elimination_order g order
    else begin
      (* Search for an optimal ordering greedily guided by the DP values:
         fall back to brute-force over orders only for very small graphs. *)
      let n = Ugraph.n g in
      if n <= 9 then begin
        let best = ref (order, w) in
        let rec permute prefix remaining =
          Budget.tick budget;
          if snd !best = target then ()
          else
            match remaining with
            | [] ->
                let ord = List.rev prefix in
                let d = Tree_decomposition.of_elimination_order g ord in
                let width = Tree_decomposition.width d in
                if width < snd !best then best := (ord, width)
            | _ ->
                List.iter
                  (fun v ->
                    permute (v :: prefix) (List.filter (fun u -> u <> v) remaining))
                  remaining
        in
        permute [] (List.init n Fun.id);
        Tree_decomposition.of_elimination_order g (fst !best)
      end
      else Tree_decomposition.of_elimination_order g order
    end
  end
