(** Treewidth computation: exact (exponential, for small graphs) and
    heuristic bounds.

    Every function accepts an optional [budget]; the exponential searches
    tick it at their loop heads and raise {!Resource.Budget.Exhausted}
    when it trips (the [?budget] convention all intentionally-exponential
    kernels of this codebase follow; see [docs/ROBUSTNESS.md]).

    Conventions: the empty graph has treewidth [-1]; a non-empty edgeless
    graph has treewidth [0]; trees have treewidth 1, cycles 2, the clique
    [K_k] has [k − 1], and the [k × k] grid has [k]. (The paper's
    convention of reporting 1 for edgeless Gaifman graphs is applied at the
    generalised-t-graph layer, not here.) *)

val exact : ?budget:Resource.Budget.t -> ?limit:int -> Ugraph.t -> int option
(** Exact treewidth by dynamic programming over vertex subsets,
    [O(2^n · n^2)] time and [O(2^n)] space. Returns [None] when
    [Ugraph.n g > limit] (default 20). *)

val exact_branch_and_bound :
  ?budget:Resource.Budget.t -> ?limit:int -> Ugraph.t -> int option
(** Exact treewidth by branch and bound over elimination orderings, with
    min-fill initialisation, simplicial-vertex elimination and memoisation
    on the set of remaining vertices. An independent implementation used
    to cross-validate {!exact} (tested to agree); often faster on sparse
    graphs, worse on dense ones. [None] when [Ugraph.n g > limit]
    (default 26). *)

val min_fill_order : ?budget:Resource.Budget.t -> Ugraph.t -> int list * int
(** Min-fill elimination heuristic: the ordering and its width (an upper
    bound on treewidth). *)

val min_degree_order : ?budget:Resource.Budget.t -> Ugraph.t -> int list * int
(** Min-degree elimination heuristic. *)

val lower_bound : ?budget:Resource.Budget.t -> Ugraph.t -> int
(** The maximum-minimum-degree (degeneracy) lower bound. *)

val upper_bound : ?budget:Resource.Budget.t -> Ugraph.t -> int
(** The better of the two elimination heuristics. *)

val treewidth : ?budget:Resource.Budget.t -> ?exact_limit:int -> Ugraph.t -> int
(** Exact when [n ≤ exact_limit] (default 20); otherwise the heuristic
    upper bound. All query-derived graphs in this project are small enough
    for the exact path. *)

val is_at_most : ?budget:Resource.Budget.t -> Ugraph.t -> int -> bool
(** Decision procedure [tw(g) ≤ k], using bounds before falling back to
    the exact computation. *)

val decomposition : ?budget:Resource.Budget.t -> Ugraph.t -> Tree_decomposition.t
(** A tree decomposition witnessing [treewidth g] when the exact path was
    taken (min-fill width otherwise). *)
