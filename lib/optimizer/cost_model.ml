module G = Encoded.Encoded_graph
module H = Encoded.Encoded_hom

let fmax1 n = float_of_int (max 1 n)

let estimate graph ~bound (s, p, o) =
  let const = function H.Const id -> Some id | H.Var _ -> None in
  let is_bound_var = function H.Var v -> bound v | H.Const _ -> false in
  let cs = const s and cp = const p and co = const o in
  (* Exact base: the range count over the constant positions — two binary
     searches on the right sorted permutation, O(1) in the pattern. A
     constant absent from the dictionary is a negative sentinel whose
     range is empty, so impossible patterns estimate 0 with no special
     case. *)
  let base = float_of_int (G.match_count graph ?s:cs ?p:cp ?o:co ()) in
  (* Per-position selectivity of the bound variables, under per-predicate
     uniformity when the predicate is a constant: a bound subject divides
     by the predicate's distinct subject count, a bound object by its
     distinct object count, a bound predicate by the store's distinct
     predicate count. *)
  let subj_div, obj_div =
    match cp with
    | Some pid when pid >= 0 ->
        let st = G.predicate_stats graph pid in
        (fmax1 st.G.distinct_subjects, fmax1 st.G.distinct_objects)
    | Some _ -> (1., 1.) (* absent predicate: base is 0 anyway *)
    | None ->
        (fmax1 (G.distinct_subjects graph), fmax1 (G.distinct_objects graph))
  in
  let factor =
    (if is_bound_var s then 1. /. subj_div else 1.)
    *. (if is_bound_var p then 1. /. fmax1 (G.distinct_predicates graph)
        else 1.)
    *. (if is_bound_var o then 1. /. obj_div else 1.)
  in
  base *. factor
