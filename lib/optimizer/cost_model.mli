(** Cardinality estimation over the encoded store's real statistics.

    The cost unit is "expected number of triples matching one pattern",
    estimated in O(1) from the store's sorted-range counts
    ({!Encoded.Encoded_graph.match_count}) and memoized per-predicate
    distinct-value counts ({!Encoded.Encoded_graph.predicate_stats}) —
    no sampling, no regexes, real cardinalities. The estimator is
    backend-blind: the statistics may come from a heap encode, a mapped
    store's precomputed [pstats] rows, a base-plus-segments overlay
    (rows patched incrementally per delta), or a shard union (per-member
    rows behind manifest-wide totals) — [lib/storage] keeps all of them
    exact, and the differential suites assert it, so the planner never
    degrades on a composed source. *)

val estimate :
  Encoded.Encoded_graph.t ->
  bound:(int -> bool) ->
  Encoded.Encoded_hom.pterm
  * Encoded.Encoded_hom.pterm
  * Encoded.Encoded_hom.pterm ->
  float
(** Estimated number of triples matching the pattern when the variable
    slots selected by [bound] hold (unknown) values: the exact range
    count over the constant positions, scaled by an independence-assuming
    selectivity factor per bound-variable position (1/distinct-subjects
    of the predicate for a bound subject, 1/distinct-objects for a bound
    object, 1/distinct-predicates for a bound predicate position).

    Always nonnegative, and monotone under binding: if [bound'] selects a
    superset of [bound], the estimate under [bound'] is no larger (both
    property-tested). *)
