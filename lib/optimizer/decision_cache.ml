module H = Encoded.Encoded_hom

type key = { epoch : int; signature : string }

type t = {
  capacity : int;
  table : (key, Join_order.decision) Hashtbl.t;
  queue : key Queue.t;  (* insertion order, for FIFO eviction *)
  mutable hits : int;
  mutable misses : int;
}

type stats = { hits : int; misses : int; entries : int }

let create ?(capacity = 512) () =
  if capacity < 1 then
    invalid_arg "Decision_cache.create: capacity must be positive";
  {
    capacity;
    table = Hashtbl.create 64;
    queue = Queue.create ();
    hits = 0;
    misses = 0;
  }

(* Slots renamed by first occurrence, each carrying its bound bit: the
   exact inputs [Join_order.compile] reads from the patterns. Two nodes
   with equal signatures against the same store get equal plans. *)
let signature ~bound patterns =
  let buf = Buffer.create 64 in
  let rename = Hashtbl.create 8 in
  let next = ref 0 in
  let term = function
    | H.Const id ->
        Buffer.add_char buf 'c';
        Buffer.add_string buf (string_of_int id)
    | H.Var v ->
        let i =
          match Hashtbl.find_opt rename v with
          | Some i -> i
          | None ->
              let i = !next in
              incr next;
              Hashtbl.add rename v i;
              i
        in
        Buffer.add_char buf (if bound v then 'b' else 'v');
        Buffer.add_string buf (string_of_int i)
  in
  Array.iter
    (fun (s, p, o) ->
      term s;
      Buffer.add_char buf ' ';
      term p;
      Buffer.add_char buf ' ';
      term o;
      Buffer.add_char buf '.')
    patterns;
  Buffer.contents buf

let compile ?budget t ~epoch enc ~nvars ~bound ~node patterns =
  let key = { epoch; signature = signature ~bound patterns } in
  match Hashtbl.find_opt t.table key with
  | Some d ->
      t.hits <- t.hits + 1;
      if d.Join_order.node = node then d else { d with Join_order.node = node }
  | None ->
      t.misses <- t.misses + 1;
      let d = Join_order.compile ?budget enc ~nvars ~bound ~node patterns in
      if Hashtbl.length t.table >= t.capacity then (
        match Queue.take_opt t.queue with
        | Some oldest -> Hashtbl.remove t.table oldest
        | None -> ());
      Hashtbl.replace t.table key d;
      Queue.push key t.queue;
      d

let stats (t : t) =
  { hits = t.hits; misses = t.misses; entries = Hashtbl.length t.table }
