(** Cross-tree memo of {!Join_order.compile} results.

    Two structurally identical node joins — same triple patterns up to a
    renaming of variable slots, same per-slot bound/free split, same
    store — get the same cost-based plan, because {!Join_order.compile}
    reads nothing else. Queries canonicalized by {!Analysis.Canonical}
    routinely produce such twins across distinct pattern trees (the
    per-tree memo in [Plan_cache] cannot see them), so this cache keys
    decisions on a slot-renamed {e signature} of the join instead of the
    tree node: one optimizer run serves every isomorphic node against the
    same store epoch.

    Reused decisions are patched with the asking node's id; [order],
    [est_cards], [est_candidates] and [maximality] carry over verbatim
    (they are functions of the signature and the store statistics only).

    Not safe for concurrent callers — guard it like the structures next
    to it (the engine's plan cache is per-plan, the server serializes
    compilation per entry). *)

type t

type stats = {
  hits : int;  (** decisions served from the memo *)
  misses : int;  (** decisions compiled by {!Join_order.compile} *)
  entries : int;  (** signatures currently held *)
}

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the number of held signatures (default 512); past
    it, the oldest entry is dropped (FIFO — signatures are tiny and
    recompilation is cheap, so the simple policy is enough). Raises
    [Invalid_argument] if [capacity < 1]. *)

val signature :
  bound:(int -> bool) ->
  (Encoded.Encoded_hom.pterm
  * Encoded.Encoded_hom.pterm
  * Encoded.Encoded_hom.pterm)
  array ->
  string
(** The join's identity modulo slot names: constants verbatim, variable
    slots renamed by first occurrence, each slot tagged with its bound
    bit. Exposed for tests. *)

val compile :
  ?budget:Resource.Budget.t ->
  t ->
  epoch:int ->
  Encoded.Encoded_graph.t ->
  nvars:int ->
  bound:(int -> bool) ->
  node:int ->
  (Encoded.Encoded_hom.pterm
  * Encoded.Encoded_hom.pterm
  * Encoded.Encoded_hom.pterm)
  array ->
  Join_order.decision
(** {!Join_order.compile} through the memo: a hit returns the stored
    decision with [node] patched; a miss compiles, stores, and counts.
    [epoch] must identify the store behind [graph] (the caller's epoch
    key) — decisions never cross epochs. *)

val stats : t -> stats
