module Budget = Resource.Budget
module H = Encoded.Encoded_hom

type maximality = [ `Naive | `Pebble ]

type decision = {
  node : int;
  order : int array;
  est_cards : float array;
  est_candidates : float;
  maximality : maximality;
}

(* F1's crossover: below roughly nine patterns the naive (exact
   backtracking) extension check beats compiling and running the pebble
   relaxation; the candidate-count gate keeps pathological stores (huge
   estimated extension counts at small pattern size) on the pebble
   side. *)
let naive_pattern_limit = 9
let naive_candidate_limit = 256.

let candidate_cap = 1e18

let compile ?(budget = Budget.unlimited) graph ~nvars ~bound ~node patterns =
  Budget.with_phase budget "optimize" @@ fun () ->
  let npat = Array.length patterns in
  let bnd = Array.make nvars false in
  for v = 0 to nvars - 1 do
    bnd.(v) <- bound v
  done;
  let order = Array.make npat 0 in
  let est_cards = Array.make npat 0. in
  let used = Array.make npat false in
  (* Greedy fail-first under bound-variable propagation: each step takes
     the cheapest remaining pattern given everything bound so far (the
     seed step is simply the most selective pattern outright), then marks
     its variables bound. Ties break toward the textual pattern order,
     matching the join's own tie-breaking. *)
  for step = 0 to npat - 1 do
    Budget.tick budget;
    let best = ref (-1) and best_cost = ref infinity in
    for i = 0 to npat - 1 do
      if not used.(i) then begin
        let c = Cost_model.estimate graph ~bound:(fun v -> bnd.(v)) patterns.(i) in
        if c < !best_cost then begin
          best := i;
          best_cost := c
        end
      end
    done;
    used.(!best) <- true;
    order.(step) <- !best;
    est_cards.(step) <- !best_cost;
    let s, p, o = patterns.(!best) in
    List.iter
      (function H.Var v -> bnd.(v) <- true | H.Const _ -> ())
      [ s; p; o ]
  done;
  (* Expected number of full extensions: the running product of the
     per-step cardinalities (capped to stay finite). Steps estimated
     below one triple shrink the product — a selective join usually fails
     before materialising anything. *)
  let est_candidates =
    Array.fold_left
      (fun acc c -> Float.min candidate_cap (acc *. c))
      1. est_cards
  in
  let maximality =
    if npat < naive_pattern_limit && est_candidates <= naive_candidate_limit
    then `Naive
    else `Pebble
  in
  { node; order; est_cards; est_candidates; maximality }

let pp_maximality ppf = function
  | `Naive -> Fmt.string ppf "naive"
  | `Pebble -> Fmt.string ppf "pebble"

let pp ppf d =
  Fmt.pf ppf "@[node %d: order [%a], ~%.1f candidate(s), maximality %a@]"
    d.node
    Fmt.(array ~sep:(any ";") int)
    d.order d.est_candidates pp_maximality d.maximality
