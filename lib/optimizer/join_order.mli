(** Per-node join-order compilation from real store statistics.

    For each wdPT node, the optimizer compiles a static evaluation order
    of the node's triple patterns: seeded by the most selective pattern
    (smallest {!Cost_model.estimate}), then extended greedily under
    bound-variable propagation — after a pattern is placed, its variables
    count as bound for every later estimate. The compiled order feeds
    {!Encoded.Encoded_hom.fold}'s [Fixed]/[Adaptive] strategies, and the
    estimated extension count decides whether the Lemma-1 maximality test
    for the node runs as a naive (exact backtracking) check or the pebble
    relaxation — bench F1's crossover made concrete per node. *)

type maximality = [ `Naive | `Pebble ]

type decision = {
  node : int;  (** the wdPT node this plan is for *)
  order : int array;
      (** a permutation of the node's pattern indices (positions in
          {!Encoded.Encoded_hom.patterns} of the node's source) *)
  est_cards : float array;
      (** estimated matches of each step, aligned with [order]: the cost
          model's view of the join at compile time, recorded so
          [--explain] can put estimates next to actuals *)
  est_candidates : float;
      (** running product of [est_cards] — the expected number of full
          extensions of one parent binding *)
  maximality : maximality;
      (** whether the node's child-extension test should run naively or
          through the pebble relaxation. Both are exact whenever the plan
          width covers the true domination width (the planner's
          invariant), so the choice affects cost only. *)
}

val compile :
  ?budget:Resource.Budget.t ->
  Encoded.Encoded_graph.t ->
  nvars:int ->
  bound:(int -> bool) ->
  node:int ->
  (Encoded.Encoded_hom.pterm
  * Encoded.Encoded_hom.pterm
  * Encoded.Encoded_hom.pterm)
  array ->
  decision
(** [compile graph ~nvars ~bound ~node patterns] plans one node. [bound]
    selects the variable slots (out of [nvars], the shared table width)
    already bound when the node's join starts — the variables of the
    node's ancestors. O(k²) estimates, each O(1); ticks [budget] once per
    greedy step under phase ["optimize"]. The result's [order] is always
    a permutation of [0 .. Array.length patterns - 1] (property-tested). *)

val pp : decision Fmt.t
val pp_maximality : maximality Fmt.t
