(* Domain pool on stdlib primitives. Jobs are [int -> unit] closures
   receiving the worker slot that runs them; the caller of a batch
   participates as slot 0 and steals queued jobs while it waits, so a
   pool of size n really uses n domains and size 1 never touches the
   queue at all. *)

type t = {
  size : int;
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : (int -> unit) Queue.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
}

let max_domains = 128

let rec worker_loop t slot =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.nonempty t.lock
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.lock (* stopping: drain done *)
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.lock;
    job slot;
    worker_loop t slot
  end

let create ~domains () =
  let size = max 1 (min domains max_domains) in
  let t =
    {
      size;
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      domains = [];
    }
  in
  t.domains <-
    List.init (size - 1) (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

let size t = t.size

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ~domains f =
  let t = create ~domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* --- global pool registry (one cached pool per size) ----------------- *)

let registry_lock = Mutex.create ()
let registry : (int * (t * bool ref)) list ref = ref []

let release pool () =
  Mutex.lock registry_lock;
  List.iter
    (fun (_, (p, in_use)) -> if p == pool then in_use := false)
    !registry;
  Mutex.unlock registry_lock

let borrow ~domains f =
  let domains = max 1 (min domains max_domains) in
  if domains = 1 then f (create ~domains ())
  else begin
    Mutex.lock registry_lock;
    let reuse =
      match List.assoc_opt domains !registry with
      | Some (pool, in_use) when not !in_use ->
          in_use := true;
          Some pool
      | _ -> None
    in
    Mutex.unlock registry_lock;
    match reuse with
    | Some pool -> Fun.protect ~finally:(release pool) (fun () -> f pool)
    | None ->
        let pool = create ~domains () in
        Mutex.lock registry_lock;
        let cached = not (List.mem_assoc domains !registry) in
        if cached then registry := (domains, (pool, ref true)) :: !registry;
        Mutex.unlock registry_lock;
        if cached then Fun.protect ~finally:(release pool) (fun () -> f pool)
        else Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
  end

let shutdown_borrowed () =
  Mutex.lock registry_lock;
  let pools = !registry in
  registry := List.filter (fun (_, (_, in_use)) -> !in_use) pools;
  Mutex.unlock registry_lock;
  List.iter
    (fun (_, (pool, in_use)) -> if not !in_use then shutdown pool)
    pools

(* --- batches --------------------------------------------------------- *)

let submit t jobs =
  Mutex.lock t.lock;
  List.iter (fun job -> Queue.push job t.queue) jobs;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock

let try_pop t =
  Mutex.lock t.lock;
  let job = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
  Mutex.unlock t.lock;
  job

let fold_sequential ~init ~f ~merge acc items =
  let state = lazy (init 0) in
  List.fold_left (fun acc x -> merge acc (f (Lazy.force state) x)) acc items

let default_chunk n size =
  (* several chunks per worker for load balance, but no shorter than 1
     and no longer than 64 so cancellation stays responsive *)
  max 1 (min 64 (n / (4 * size) + 1))

let fold_ordered t ?chunk ~init ~f ~merge acc items =
  let n = List.length items in
  if t.size <= 1 || n < 2 then fold_sequential ~init ~f ~merge acc items
  else begin
    let items = Array.of_list items in
    let chunk_sz =
      match chunk with Some c -> max 1 c | None -> default_chunk n t.size
    in
    let nchunks = (n + chunk_sz - 1) / chunk_sz in
    let results = Array.make n None in
    let batch_lock = Mutex.create () in
    let advanced = Condition.create () in
    let chunk_done = Array.make nchunks false in
    let first_error : (exn * Printexc.raw_backtrace) option ref = ref None in
    let cancelled = Atomic.make false in
    (* worker-local state, lazily built at most once per slot; each slot
       is only ever touched by the domain that owns it *)
    let states = Array.make t.size None in
    let state_for slot =
      match states.(slot) with
      | Some s -> s
      | None ->
          let s = init slot in
          states.(slot) <- Some s;
          s
    in
    let run_chunk c slot =
      (try
         let lo = c * chunk_sz and hi = min n ((c + 1) * chunk_sz) - 1 in
         for i = lo to hi do
           if not (Atomic.get cancelled) then
             results.(i) <- Some (f (state_for slot) items.(i))
         done
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         Atomic.set cancelled true;
         Mutex.lock batch_lock;
         if !first_error = None then first_error := Some (e, bt);
         Mutex.unlock batch_lock);
      Mutex.lock batch_lock;
      chunk_done.(c) <- true;
      Condition.broadcast advanced;
      Mutex.unlock batch_lock
    in
    submit t (List.init nchunks (fun c slot -> run_chunk c slot));
    (* The caller merges chunk results in input order as they complete,
       stealing queued jobs while the next-needed chunk is still in
       flight. *)
    let help_until_done c =
      let rec go () =
        let done_ =
          Mutex.lock batch_lock;
          let d = chunk_done.(c) in
          Mutex.unlock batch_lock;
          d
        in
        if not done_ then
          match try_pop t with
          | Some job ->
              job 0;
              go ()
          | None ->
              (* nothing left to steal: every chunk is running somewhere;
                 wait for completions *)
              Mutex.lock batch_lock;
              while not chunk_done.(c) do
                Condition.wait advanced batch_lock
              done;
              Mutex.unlock batch_lock
      in
      go ()
    in
    let acc = ref acc in
    let merge_error : (exn * Printexc.raw_backtrace) option ref = ref None in
    for c = 0 to nchunks - 1 do
      help_until_done c;
      if !merge_error = None then begin
        try
          let lo = c * chunk_sz and hi = min n ((c + 1) * chunk_sz) - 1 in
          for i = lo to hi do
            match results.(i) with
            | Some r -> acc := merge !acc r
            | None -> () (* skipped by cancellation; an error is pending *)
          done
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          Atomic.set cancelled true;
          merge_error := Some (e, bt)
      end
    done;
    (* the merge runs in input order on the caller, so its exception
       corresponds to the earliest sequential point — prefer it over a
       worker's, which may belong to a later item *)
    (match (!merge_error, !first_error) with
    | Some (e, bt), _ | None, Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None, None -> ());
    !acc
  end

let map_stream t ?chunk ~init ~f items =
  List.rev
    (fold_ordered t ?chunk ~init ~f ~merge:(fun acc r -> r :: acc) [] items)
