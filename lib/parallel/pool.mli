(** Fixed-size domain pool with a chunked work queue.

    Built on OCaml 5 stdlib primitives only ([Domain], [Mutex],
    [Condition], [Atomic]) — no external scheduler. A pool of size [n]
    owns [n - 1] spawned domains; the caller of {!map_stream} /
    {!fold_ordered} participates as worker slot 0, so [size:1] spawns
    nothing and runs the batch inline — byte-for-byte the sequential
    path.

    Batches are {e chunked}: the input list is split into contiguous
    chunks that workers pull from a shared queue (work stealing between
    the spawned domains and the caller). Output order is always the
    input order, regardless of which worker processed which chunk.

    Cancellation is cooperative and has two levels:
    - a batch-level flag checked {e per item}, set when any worker's
      [f] raises or the caller's [merge] raises — remaining items are
      skipped and the first exception is re-raised with its backtrace;
    - callers running under a {!Resource.Budget} should hand each
      worker a forked view ({!Resource.Budget.fork}) so deadline/fuel
      exhaustion inside a long-running item also trips the sibling
      workers at their next budget tick. *)

type t

val create : domains:int -> unit -> t
(** A pool of total size [domains] (clamped to [[1, 128]]): [domains - 1]
    background domains are spawned immediately and wait on the queue.
    A pool of size 1 owns no domains and costs nothing. *)

val size : t -> int
(** Total parallelism, counting the participating caller. *)

val shutdown : t -> unit
(** Drain the queue, stop and join every spawned domain. Idempotent.
    Running batches finish first (shutdown only takes effect between
    jobs). *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create], run, then [shutdown] (also on exceptions). *)

val borrow : domains:int -> (t -> 'a) -> 'a
(** Like {!with_pool} but reuses one cached global pool per size, so
    repeated evaluations don't pay domain spawn latency every call.
    If the cached pool of this size is already borrowed (re-entrant or
    cross-domain use), a fresh throwaway pool is used instead —
    borrowing never blocks and never shares a pool between two
    concurrent batches. *)

val shutdown_borrowed : unit -> unit
(** Shut down every idle cached pool (for tests / clean process exit;
    pools currently borrowed are left to their borrower). *)

val fold_ordered :
  t ->
  ?chunk:int ->
  init:(int -> 'w) ->
  f:('w -> 'a -> 'b) ->
  merge:('acc -> 'b -> 'acc) ->
  'acc ->
  'a list ->
  'acc
(** [fold_ordered pool ~init ~f ~merge acc items] maps [f] over [items]
    on the pool's workers and folds the results with [merge] {e on the
    calling domain, in input order} — the merge sees exactly the
    sequence a sequential [List.fold_left] would, so order-sensitive
    accumulation (deduplicating counters, solution caps) behaves
    identically.

    [init slot] builds worker-local state lazily, at most once per
    worker slot ([0 .. size-1]) per batch, on the domain that owns the
    slot — the place to stage per-batch tables or grab a
    {!Resource.Budget.fork} view. [f] must not touch shared mutable
    state; [merge] runs only on the caller and may.

    Chunks are [chunk] items long (default: sized so each worker gets
    several chunks, for load balance). If [f] raises anywhere, or
    [merge] raises, the batch is cancelled cooperatively (remaining
    items are skipped, checked per item) and the first exception is
    re-raised. A pool of size 1 — or an [items] list shorter than 2 —
    runs everything inline without touching the queue. *)

val map_stream :
  t ->
  ?chunk:int ->
  init:(int -> 'w) ->
  f:('w -> 'a -> 'b) ->
  'a list ->
  'b list
(** [map_stream pool ~init ~f items] is {!fold_ordered} collecting the
    results: the output list has the input's length and order. *)
