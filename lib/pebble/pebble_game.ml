open Rdf
open Tgraphs

let explored = ref 0
let stats_families_explored () = !explored
let reset_stats () = explored := 0

(* A partial map over variable ids 0..n-1 into term ids, encoded as a
   sorted [| v1; a1; v2; a2; ... |] array (sorted by variable id). These
   arrays are used directly as hash-table keys (structural hashing and
   equality on int arrays). *)

let key_of_pairs pairs =
  let sorted = List.sort (fun (v, _) (v', _) -> compare v v') pairs in
  let arr = Array.make (2 * List.length sorted) 0 in
  List.iteri
    (fun i (v, a) ->
      arr.(2 * i) <- v;
      arr.((2 * i) + 1) <- a)
    sorted;
  arr

let pairs_of_key key =
  List.init (Array.length key / 2) (fun i -> (key.(2 * i), key.((2 * i) + 1)))

let key_remove key v =
  pairs_of_key key |> List.filter (fun (v', _) -> v' <> v) |> key_of_pairs

let key_add key v a = key_of_pairs ((v, a) :: pairs_of_key key)

let wins ?(budget = Resource.Budget.unlimited) ?(prune_unary = true) ~k g ~mu
    graph =
  if k < 1 then invalid_arg "Pebble_game.wins: k must be at least 1";
  Resource.Budget.with_phase budget "pebble" @@ fun () ->
  (* Freeze µ into S: distinguished variables become IRIs. *)
  let x = Gtgraph.x g in
  let mu_term v =
    match Variable.Map.find_opt v mu with
    | Some (Term.Iri _ as t) -> Some t
    | Some (Term.Var _) ->
        invalid_arg "Pebble_game.wins: µ maps a variable to a non-IRI"
    | None -> invalid_arg "Pebble_game.wins: µ does not cover X"
  in
  let s_mu =
    Tgraph.apply
      (fun v -> if Variable.Set.mem v x then mu_term v else None)
      (Gtgraph.s g)
  in
  let target = Graph.to_index graph in
  let patterns = Tgraph.triples s_mu in
  let ground, nonground = List.partition Triple.is_ground patterns in
  if not (List.for_all (Rdf.Index.mem target) ground) then false
  else begin
    let free_vars = Variable.Set.elements (Tgraph.vars s_mu) in
    let n = List.length free_vars in
    if n = 0 then true
    else begin
      let var_id = Hashtbl.create n in
      List.iteri (fun i v -> Hashtbl.replace var_id v i) free_vars;
      let var_arr = Array.of_list free_vars in
      (* Term universe: IRIs of G. *)
      let terms = Iri.Set.elements (Graph.dom graph) in
      let term_id = Hashtbl.create (List.length terms) in
      List.iteri (fun i t -> Hashtbl.replace term_id (Term.Iri t) i) terms;
      let term_arr = Array.of_list (List.map (fun i -> Term.Iri i) terms) in
      (* Unary candidate pruning: a value for ?x must satisfy every triple
         in which ?x is the only variable. (Pruning by triples with more
         variables would be unsound for small k.) *)
      let candidates =
        Array.init n (fun vid ->
            let v = var_arr.(vid) in
            let relevant =
              if not prune_unary then []
              else
                List.filter
                  (fun t ->
                    Variable.Set.equal (Triple.vars t) (Variable.Set.singleton v))
                  nonground
            in
            List.filter
              (fun a ->
                List.for_all
                  (fun t ->
                    let t' =
                      Triple.subst
                        (fun u -> if Variable.equal u v then Some term_arr.(a) else None)
                        t
                    in
                    Rdf.Index.mem target t')
                  relevant)
              (List.init (Array.length term_arr) Fun.id))
      in
      if Array.exists (fun c -> c = []) candidates then false
      else begin
        (* Triples indexed by their variable sets (as sorted id lists). *)
        let triple_vars t =
          Variable.Set.elements (Triple.vars t)
          |> List.map (Hashtbl.find var_id)
          |> List.sort compare
        in
        let pattern_info = List.map (fun t -> (t, triple_vars t)) nonground in
        let subset vars dom = List.for_all (fun v -> List.mem v dom) vars in
        (* Enumerate all alive partial homomorphisms of arity ≤ k. *)
        let alive : (int array, unit) Hashtbl.t = Hashtbl.create 4096 in
        let rec subsets start size acc =
          if size = 0 then [ List.rev acc ]
          else if start >= n then []
          else
            List.concat_map
              (fun v -> subsets (v + 1) (size - 1) (v :: acc))
              (List.init (n - start) (fun i -> start + i))
        in
        let enumerate dom_vars =
          (* DFS over assignments to dom_vars, checking triples as soon as
             their variables are covered. *)
          let rec go remaining assoc =
            match remaining with
            | [] ->
                incr explored;
                Hashtbl.replace alive (key_of_pairs assoc) ()
            | v :: rest ->
                List.iter
                  (fun a ->
                    Resource.Budget.tick budget;
                    let assoc' = (v, a) :: assoc in
                    (* check triples fully covered by assoc' and touching v *)
                    let dom' = List.map fst assoc' in
                    let ok =
                      List.for_all
                        (fun (t, tvars) ->
                          if List.mem v tvars && subset tvars dom' then
                            is_partial_hom_on t assoc'
                          else true)
                        pattern_info
                    in
                    if ok then go rest assoc')
                  candidates.(v)
          and is_partial_hom_on t assoc =
            let t' =
              Triple.subst
                (fun u ->
                  match Hashtbl.find_opt var_id u with
                  | Some vid when List.mem_assoc vid assoc ->
                      Some term_arr.(List.assoc vid assoc)
                  | _ -> None)
                t
            in
            Rdf.Index.mem target t'
          in
          go dom_vars []
        in
        for size = 0 to min k n do
          List.iter enumerate (subsets 0 size [])
        done;
        (* Forth-property counters: cnt(h, x) = number of alive one-point
           extensions of h at variable x. *)
        let counters : (int array * int, int ref) Hashtbl.t =
          Hashtbl.create 4096
        in
        let dead_queue = Queue.create () in
        let dom_of key = List.map fst (pairs_of_key key) in
        Hashtbl.iter
          (fun key () ->
            let dom = dom_of key in
            if List.length dom < k then
              for v = 0 to n - 1 do
                if not (List.mem v dom) then begin
                  Resource.Budget.tick budget;
                  let cnt = ref 0 in
                  List.iter
                    (fun a ->
                      if Hashtbl.mem alive (key_add key v a) then incr cnt)
                    candidates.(v);
                  Hashtbl.replace counters (key, v) cnt;
                  if !cnt = 0 then Queue.add key dead_queue
                end
              done)
          alive;
        (* Worklist removal. *)
        while not (Queue.is_empty dead_queue) do
          Resource.Budget.tick budget;
          let key = Queue.pop dead_queue in
          if Hashtbl.mem alive key then begin
            Hashtbl.remove alive key;
            let pairs = pairs_of_key key in
            (* restrictions lose an extension *)
            List.iter
              (fun (v, _) ->
                let g_key = key_remove key v in
                if Hashtbl.mem alive g_key then
                  match Hashtbl.find_opt counters (g_key, v) with
                  | Some cnt ->
                      decr cnt;
                      if !cnt <= 0 then Queue.add g_key dead_queue
                  | None -> ())
              pairs;
            (* alive extensions violate downward closure *)
            if List.length pairs < k then
              for v = 0 to n - 1 do
                if not (List.mem_assoc v pairs) then
                  List.iter
                    (fun a ->
                      let h_key = key_add key v a in
                      if Hashtbl.mem alive h_key then Queue.add h_key dead_queue)
                    candidates.(v)
              done
          end
        done;
        Hashtbl.mem alive (key_of_pairs [])
      end
    end
  end
