(** The existential k-pebble game of Kolaitis and Vardi, adapted to
    generalised t-graphs and RDF graphs (Section 3 of the paper).

    [(S, X) →µ_k G] holds iff the Duplicator wins the existential k-pebble
    game on [(S, X)], [G] and [µ]; deciding this is the polynomial-time
    relaxation of [(S, X) →µ G] used by the paper's tractable evaluation
    algorithm (Theorem 1). We decide it with the standard k-consistency
    procedure: compute the greatest family of partial homomorphisms of
    arity ≤ k that is closed under restriction and has the forth
    (one-point extension) property; the Duplicator wins iff the family is
    non-empty, equivalently iff the empty map survives.

    Key properties (tested):
    - [(S,X) →µ G] implies [(S,X) →µ_k G] for every k ≥ 2 (property (2));
    - if [vars(S) \ X = ∅] the two relations coincide (property (1));
    - if [ctw(S,X) ≤ k − 1] the two relations coincide (Proposition 3). *)

open Rdf

val wins :
  ?budget:Resource.Budget.t ->
  ?prune_unary:bool -> k:int -> Tgraphs.Gtgraph.t ->
  mu:Tgraphs.Homomorphism.assignment -> Graph.t -> bool
(** [wins ~k g ~mu graph] decides [(S, X) →µ_k G]. [µ] must be defined on
    all of [X] and map into IRIs. Raises [Invalid_argument] if [k < 1], if
    [µ] misses a distinguished variable, or if [µ] maps one to a
    non-ground term.

    [prune_unary] (default [true]) pre-filters each variable's candidate
    values by the triples in which it is the only variable; disabling it
    never changes the answer (the k-consistency fixpoint subsumes the
    filter) — it exists for the ablation benchmark A2.

    [budget] is ticked through the family enumeration and the worklist
    fixpoint; {!Resource.Budget.Exhausted} is raised when it trips. *)

val stats_families_explored : unit -> int
(** Total number of partial maps materialised since {!reset_stats};
    instrumentation for the benchmark harness. *)

val reset_stats : unit -> unit
