(* Two backends share one interning façade:

   - a plain heap dictionary (hash table + growable term array), built by
     walking a graph — the historical representation;
   - a read-only [view] (closure-provided decode/lookup, e.g. over an
     mmap'd dictionary blob) plus a heap overflow region for terms
     interned after the fact (query constants absent from the store).

   View ids occupy [0 .. view_size); overflow ids continue from there, so
   every id stays dense and array-indexable. Decoded view terms and
   successful view lookups are memoized on the heap side — the decode
   cost of a term is paid at most once per process, and a store that is
   never decoded never materialises a single term.

   Domain safety: heap dictionaries are built single-threaded and are
   read-only afterwards, so their lookup/decode paths stay lock-free.
   View-backed dictionaries mutate their memo tables on the read path
   (and parallel evaluation decodes on worker domains), so every path
   that touches a view dictionary's mutable state runs under [lock]. *)

type view = {
  view_size : int;
  view_term : int -> Term.t;  (** decode, called with ids in [0, view_size) *)
  view_find : Term.t -> int option;
}

type t = {
  ids : (Term.t, int) Hashtbl.t;
      (* overflow terms, plus memoized successful view lookups *)
  mutable terms : Term.t array;  (* overflow region, index id - base *)
  mutable size : int;  (* total: base + overflow *)
  base : view option;
  decoded : (int, Term.t) Hashtbl.t;  (* view decode memo *)
  lock : Mutex.t;
      (* guards [ids]/[decoded]/[terms]/[size] when [base] is [Some _] *)
}

let base_size t = match t.base with None -> 0 | Some v -> v.view_size

let create () =
  {
    ids = Hashtbl.create 64;
    terms = Array.make 64 (Term.iri "x:x");
    size = 0;
    base = None;
    decoded = Hashtbl.create 0;
    lock = Mutex.create ();
  }

let of_view view =
  if view.view_size < 0 then invalid_arg "Dictionary.of_view: negative size";
  {
    ids = Hashtbl.create 64;
    terms = Array.make 16 (Term.iri "x:x");
    size = view.view_size;
    base = Some view;
    decoded = Hashtbl.create 256;
    lock = Mutex.create ();
  }

(* Requires [t.lock] held when [t.base] is [Some _]. *)
let find_unlocked t term =
  match Hashtbl.find_opt t.ids term with
  | Some id -> Some id
  | None -> (
      match t.base with
      | None -> None
      | Some v -> (
          match v.view_find term with
          | Some id ->
              Hashtbl.replace t.ids term id;
              Some id
          | None -> None))

let find t term =
  match t.base with
  | None -> find_unlocked t term
  | Some _ -> Mutex.protect t.lock (fun () -> find_unlocked t term)

(* Requires [t.lock] held when [t.base] is [Some _]. *)
let intern_unlocked t term =
  match find_unlocked t term with
  | Some id -> id
  | None ->
      let id = t.size in
      let slot = id - base_size t in
      if slot = Array.length t.terms then begin
        let bigger = Array.make (2 * max 1 slot) term in
        Array.blit t.terms 0 bigger 0 slot;
        t.terms <- bigger
      end;
      t.terms.(slot) <- term;
      Hashtbl.replace t.ids term id;
      t.size <- id + 1;
      id

let intern t term =
  match t.base with
  | None -> intern_unlocked t term
  | Some _ -> Mutex.protect t.lock (fun () -> intern_unlocked t term)

let of_terms terms =
  let t = create () in
  List.iter (fun term -> ignore (intern t term)) terms;
  t

let of_graph graph =
  let t = create () in
  List.iter
    (fun triple -> List.iter (fun term -> ignore (intern t term)) (Triple.terms triple))
    (Graph.triples graph);
  t

let term_of t id =
  match t.base with
  | None ->
      if id < 0 || id >= t.size then invalid_arg "Dictionary.term_of: unknown id"
      else t.terms.(id)
  | Some v ->
      Mutex.protect t.lock (fun () ->
          if id < 0 || id >= t.size then
            invalid_arg "Dictionary.term_of: unknown id"
          else if id >= v.view_size then t.terms.(id - v.view_size)
          else
            match Hashtbl.find_opt t.decoded id with
            | Some term -> term
            | None ->
                let term = v.view_term id in
                Hashtbl.replace t.decoded id term;
                term)

let size t = t.size

let encode_triple t triple =
  (intern t triple.Triple.s, intern t triple.Triple.p, intern t triple.Triple.o)

let decode_triple t (s, p, o) =
  Triple.make (term_of t s) (term_of t p) (term_of t o)
