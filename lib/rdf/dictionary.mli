(** Dense integer interning of terms.

    Algorithms that need array-indexed access to the term universe of a
    graph (the pebble game, dictionary-encoded joins) build one of these:
    terms get consecutive ids [0 .. size − 1] in first-encounter order. *)

type t

type view = {
  view_size : int;
  view_term : int -> Term.t;
      (** decode; only ever called with ids in [0, view_size) *)
  view_find : Term.t -> int option;
      (** exact reverse lookup over the same id range *)
}
(** A read-only dictionary backend provided as closures — how an mmap'd
    on-disk store exposes its term blob without this module (or any
    other consumer) knowing about the byte layout. Both closures must be
    pure; [view_term] may raise a structured error on a corrupt blob. *)

val create : unit -> t

val of_view : view -> t
(** A dictionary over a read-only base [view]: ids [0, view_size) decode
    through the view (memoized, so each term is materialised at most
    once per process); {!intern} of a term the view does not know
    allocates overflow ids from [view_size] upward, keeping the id space
    dense.

    The view closures need not read a single array: [lib/storage] hands
    in views composed from a base store plus its delta segments (the
    segment dictionary-growth blocks extend the id space past the base),
    and shard members share one manifest-wide view. The contract is only
    what the signature says — total, pure, and [view_size]-dense.

    View-backed dictionaries memoize on the read path, so {!find},
    {!term_of} and {!intern} on them are serialized behind an internal
    mutex and are safe to call from concurrent worker domains (the view
    closures themselves must be pure, as required above). Heap
    dictionaries ({!create}, {!of_graph}, …) take no lock: build them
    before fanning out and treat them as read-only while shared. *)

val of_terms : Term.t list -> t
val of_graph : Graph.t -> t
(** Interns every term of the graph (subjects, predicates, objects). *)

val intern : t -> Term.t -> int
(** Id of the term, allocating a fresh id on first encounter. *)

val find : t -> Term.t -> int option
(** Id of the term if already interned. *)

val term_of : t -> int -> Term.t
(** Inverse of {!intern}. Raises [Invalid_argument] on unknown ids. *)

val size : t -> int

val encode_triple : t -> Triple.t -> int * int * int
val decode_triple : t -> int * int * int -> Triple.t
