let node ?(prefix = "n") i = Term.iri (Printf.sprintf "%s:%d" prefix i)
let pred name = Term.iri ("p:" ^ name)

let of_edges ~pred:pred_name edges =
  let p = pred pred_name in
  Graph.of_triples (List.map (fun (i, j) -> Triple.make (node i) p (node j)) edges)

let path ~n ~pred =
  of_edges ~pred (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle ~n ~pred =
  if n <= 0 then Graph.empty
  else of_edges ~pred (List.init n (fun i -> (i, (i + 1) mod n)))

let grid ~rows ~cols ~pred =
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let id = (r * cols) + c in
      if c + 1 < cols then edges := (id, id + 1) :: !edges;
      if r + 1 < rows then edges := (id, id + cols) :: !edges
    done
  done;
  of_edges ~pred !edges

let star ~n ~pred = of_edges ~pred (List.init n (fun i -> (0, i + 1)))

let transitive_tournament ~n ~pred =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j) :: !edges
    done
  done;
  of_edges ~pred !edges

let random_digraph ~seed ~n ~m ~pred =
  let state = Random.State.make [| seed; n; m |] in
  let seen = Hashtbl.create (2 * m) in
  let edges = ref [] in
  let attempts = ref 0 in
  (* Bail out if the requested density is unreachable. *)
  let max_attempts = (20 * m) + 1000 in
  while List.length !edges < m && !attempts < max_attempts do
    incr attempts;
    let i = Random.State.int state n in
    let j = Random.State.int state n in
    if i <> j && not (Hashtbl.mem seen (i, j)) then begin
      Hashtbl.add seen (i, j) ();
      edges := (i, j) :: !edges
    end
  done;
  of_edges ~pred !edges

let random_graph ~seed ~n ~predicates ~m =
  let state = Random.State.make [| seed; n; m; 7919 |] in
  let preds = Array.of_list predicates in
  if Array.length preds = 0 then invalid_arg "Generator.random_graph: no predicates";
  let triples = ref [] in
  for _ = 1 to m do
    let s = node (Random.State.int state n) in
    let p = pred preds.(Random.State.int state (Array.length preds)) in
    let o = node (Random.State.int state n) in
    triples := Triple.make s p o :: !triples
  done;
  Graph.of_triples !triples

let zipf ~seed ~n ~predicates ~m ?(exponent = 1.0) () =
  let preds = Array.of_list predicates in
  if Array.length preds = 0 then invalid_arg "Generator.zipf: no predicates";
  if exponent < 0. then invalid_arg "Generator.zipf: negative exponent";
  let state = Random.State.make [| seed; n; m; 6151 |] in
  (* Inverse-CDF sampling over ranks 1..n: node 0 is the heaviest hub,
     frequencies fall off as rank^-exponent. One cumulative table covers
     subjects, objects, and (over its own rank space) predicates. *)
  let cumulative k =
    let c = Array.make k 0. in
    let acc = ref 0. in
    for i = 0 to k - 1 do
      acc := !acc +. (1. /. (float_of_int (i + 1) ** exponent));
      c.(i) <- !acc
    done;
    c
  in
  let draw c =
    let total = c.(Array.length c - 1) in
    let x = Random.State.float state total in
    (* first index with cumulative mass >= x *)
    let lo = ref 0 and hi = ref (Array.length c - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if c.(mid) >= x then hi := mid else lo := mid + 1
    done;
    !lo
  in
  let nodes = cumulative n and pranks = cumulative (Array.length preds) in
  let triples = ref [] in
  for _ = 1 to m do
    let s = node (draw nodes) in
    let p = pred preds.(draw pranks) in
    let o = node (draw nodes) in
    triples := Triple.make s p o :: !triples
  done;
  Graph.of_triples !triples

let social ~seed ~people =
  let state = Random.State.make [| seed; people; 104729 |] in
  let person i = Term.iri (Printf.sprintf "person:%d" i) in
  let company i = Term.iri (Printf.sprintf "company:%d" i) in
  let city i = Term.iri (Printf.sprintf "city:%d" i) in
  let email i = Term.iri (Printf.sprintf "mailto:user%d@example.org" i) in
  let knows = pred "knows"
  and works_at = pred "worksAt"
  and lives_in = pred "livesIn"
  and email_p = pred "email"
  and type_p = pred "type" in
  let person_class = Term.iri "class:Person" in
  let companies = max 1 (people / 10) in
  let cities = max 1 (people / 20) in
  let triples = ref [] in
  let add t = triples := t :: !triples in
  (* knows: preferential-attachment-ish — newer people know a few earlier,
     lower-indexed people, making hubs out of early nodes. *)
  for i = 0 to people - 1 do
    add (Triple.make (person i) type_p person_class);
    let friends = 1 + Random.State.int state 4 in
    for _ = 1 to friends do
      if i > 0 then begin
        let j = Random.State.int state (Random.State.int state i + 1) in
        if j <> i then add (Triple.make (person i) knows (person j))
      end
    done;
    (* roughly 70% are employed *)
    if Random.State.int state 10 < 7 then
      add (Triple.make (person i) works_at (company (Random.State.int state companies)));
    (* roughly 80% have a city *)
    if Random.State.int state 10 < 8 then
      add (Triple.make (person i) lives_in (city (Random.State.int state cities)));
    (* roughly half publish an email *)
    if Random.State.int state 2 = 0 then
      add (Triple.make (person i) email_p (email i))
  done;
  (* companies are located in cities *)
  for c = 0 to companies - 1 do
    add (Triple.make (company c) lives_in (city (Random.State.int state cities)))
  done;
  Graph.of_triples !triples
