(** Deterministic synthetic RDF graph generators.

    All generators are pure functions of their parameters (randomised ones
    take an explicit [seed]), so benchmark and test workloads are
    reproducible. Node IRIs are of the form [<node prefix>:<index>]. *)

val node : ?prefix:string -> int -> Term.t
(** [node i] is the IRI term for the [i]-th generated node. *)

val pred : string -> Term.t
(** [pred name] is the predicate IRI [p:name]. *)

val path : n:int -> pred:string -> Graph.t
(** Directed path [0 → 1 → ⋯ → n−1]. *)

val cycle : n:int -> pred:string -> Graph.t
(** Directed cycle on [n] nodes. *)

val grid : rows:int -> cols:int -> pred:string -> Graph.t
(** Directed grid: edges right and down. *)

val star : n:int -> pred:string -> Graph.t
(** Centre node [0] with edges to leaves [1..n]. *)

val transitive_tournament : n:int -> pred:string -> Graph.t
(** All edges [i → j] for [i < j]: the ground instance of the paper's
    clique pattern [K_k(?o1..?ok)] from Example 3. *)

val random_digraph : seed:int -> n:int -> m:int -> pred:string -> Graph.t
(** [m] distinct uniformly random non-loop edges over [n] nodes. *)

val random_graph :
  seed:int -> n:int -> predicates:string list -> m:int -> Graph.t
(** [m] random triples with predicates drawn from [predicates]. *)

val zipf :
  seed:int -> n:int -> predicates:string list -> m:int ->
  ?exponent:float -> unit -> Graph.t
(** [m] random triples over [n] nodes whose subject, object, and
    predicate choices are Zipf-distributed ([exponent] defaults to 1.0;
    0 recovers the uniform {!random_graph}): node [0] is the heaviest
    hub, early predicates dominate. The resulting per-predicate
    cardinalities and distinct-count profiles are heavily skewed — the
    workload where a cost-based join order diverges most from a uniform
    guess (bench A10). *)

val social : seed:int -> people:int -> Graph.t
(** A synthetic social network: people with [knows] edges (preferential
    attachment flavour), employers via [worksAt], cities via [livesIn],
    and partial [email] self-descriptions — the kind of irregular,
    optional-field data OPTIONAL queries are motivated by. Predicates are
    [p:knows], [p:worksAt], [p:livesIn], [p:email], [p:type]. *)
