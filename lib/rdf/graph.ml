type t = Index.t

exception Not_ground of Triple.t

let check_ground triples =
  List.iter
    (fun triple -> if not (Triple.is_ground triple) then raise (Not_ground triple))
    triples

let empty = Index.empty

let of_triples list =
  check_ground list;
  Index.of_triples list

let of_index idx =
  check_ground (Index.triples idx);
  idx

let to_index t = t
let epoch = Index.epoch
let triples = Index.triples
let cardinal = Index.cardinal
let mem = Index.mem
let union = Index.union
let dom = Index.iris
let matching = Index.matching
let equal = Index.equal
let pp = Index.pp
