(* A graph is its matching index plus an identity stamp. The index is
   behind a lazy so that disk-loaded stores ({!deferred}) can hand out a
   graph handle whose term-level representation is only materialised if
   some term-level consumer (the naive evaluator, the analyzer's
   store-dependent lints, Turtle printing) actually asks for it — the
   encoded evaluation path runs entirely off the store registered under
   the same identity and never forces it. *)
type t = { epoch : int; index : Index.t Lazy.t }

exception Not_ground of Triple.t

let check_ground triples =
  List.iter
    (fun triple -> if not (Triple.is_ground triple) then raise (Not_ground triple))
    triples

let of_eager idx = { epoch = Index.epoch idx; index = lazy idx }

let empty = of_eager Index.empty

let of_triples list =
  check_ground list;
  of_eager (Index.of_triples list)

let of_index idx =
  check_ground (Index.triples idx);
  of_eager idx

let deferred ~epoch thunk =
  {
    epoch;
    index =
      lazy
        (let idx = thunk () in
         check_ground (Index.triples idx);
         idx);
  }

let to_index t = Lazy.force t.index
let epoch t = t.epoch
let triples t = Index.triples (to_index t)
let cardinal t = Index.cardinal (to_index t)
let mem t triple = Index.mem (to_index t) triple
let union a b = of_eager (Index.union (to_index a) (to_index b))
let dom t = Index.iris (to_index t)
let matching t = Index.matching (to_index t)
let equal a b = Index.equal (to_index a) (to_index b)
let pp ppf t = Index.pp ppf (to_index t)
