(** Ground RDF graphs: finite sets of RDF triples in [I × I × I].

    The paper assumes ground graphs (no blank nodes); this module enforces
    groundness at construction. *)

type t

exception Not_ground of Triple.t
(** Raised when a triple containing a variable is inserted. *)

val empty : t

val of_triples : Triple.t list -> t
(** Raises {!Not_ground} if any triple contains a variable. *)

val of_index : Index.t -> t
(** Raises {!Not_ground} if the index contains a variable. *)

val deferred : epoch:int -> (unit -> Index.t) -> t
(** A graph handle whose term-level index is built on first use, for
    stores that already live in an encoded form (a compiled on-disk
    store): [epoch] is the caller-chosen identity — disk stores use a
    negative content-stamp-derived value, disjoint from the positive
    per-process {!Index.epoch} counter — and the thunk must reproduce
    exactly the store's triples (groundness is checked when forced).
    Callers on the encoded path never force it: they resolve the handle
    through the store registered under the same identity. *)

val to_index : t -> Index.t
(** The underlying matching index (all triples ground). *)

val epoch : t -> int
(** Identity stamp: two graphs share an epoch iff they are the same
    store. Graphs built in this process inherit the globally unique
    {!Index.epoch} (positive, fresh per construction — derived graphs
    like {!union} carry new ones); {!deferred} handles over compiled
    on-disk stores carry a negative content-stamp identity that is
    stable across loads, so cross-evaluation caches keyed on the epoch
    survive a reload of the same file. *)

val triples : t -> Triple.t list
val cardinal : t -> int
val mem : t -> Triple.t -> bool
val union : t -> t -> t

val dom : t -> Iri.Set.t
(** [dom G]: the set of IRIs appearing in [G], as in the paper. *)

val matching : t -> ?s:Term.t -> ?p:Term.t -> ?o:Term.t -> unit -> Triple.t list

val equal : t -> t -> bool
val pp : t Fmt.t
