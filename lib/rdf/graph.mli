(** Ground RDF graphs: finite sets of RDF triples in [I × I × I].

    The paper assumes ground graphs (no blank nodes); this module enforces
    groundness at construction. *)

type t

exception Not_ground of Triple.t
(** Raised when a triple containing a variable is inserted. *)

val empty : t

val of_triples : Triple.t list -> t
(** Raises {!Not_ground} if any triple contains a variable. *)

val of_index : Index.t -> t
(** Raises {!Not_ground} if the index contains a variable. *)

val to_index : t -> Index.t
(** The underlying matching index (all triples ground). *)

val epoch : t -> int
(** Globally unique construction stamp inherited from {!Index.epoch}:
    two graphs share an epoch iff they are the same store. Derived
    graphs ({!union}, …) carry fresh epochs, so cross-evaluation caches
    key their invalidation on this. *)

val triples : t -> Triple.t list
val cardinal : t -> int
val mem : t -> Triple.t -> bool
val union : t -> t -> t

val dom : t -> Iri.Set.t
(** [dom G]: the set of IRIs appearing in [G], as in the paper. *)

val matching : t -> ?s:Term.t -> ?p:Term.t -> ?o:Term.t -> unit -> Triple.t list

val equal : t -> t -> bool
val pp : t Fmt.t
