(* Each bucket carries its cardinality alongside the triples so that
   [match_count] answers partially-bound lookups in O(1) instead of
   materialising the bucket and walking it with [List.length]. *)
type bucket = { count : int; bucket_triples : Triple.t list }

type t = {
  epoch : int;
  set : Triple.Set.t;
  by_s : (Term.t, bucket) Hashtbl.t;
  by_p : (Term.t, bucket) Hashtbl.t;
  by_o : (Term.t, bucket) Hashtbl.t;
  by_sp : (Term.t * Term.t, bucket) Hashtbl.t;
  by_so : (Term.t * Term.t, bucket) Hashtbl.t;
  by_po : (Term.t * Term.t, bucket) Hashtbl.t;
}

(* Monotone global stamp: every constructed index gets a fresh epoch, so
   epoch equality implies "the same store". Derived indexes (union,
   add_triples) count as mutations and carry new epochs — which is what
   the plan-level caches key their invalidation on. *)
let epoch_counter = ref 0

let epoch t = t.epoch

let push tbl key triple =
  let existing =
    try Hashtbl.find tbl key
    with Not_found -> { count = 0; bucket_triples = [] }
  in
  Hashtbl.replace tbl key
    {
      count = existing.count + 1;
      bucket_triples = triple :: existing.bucket_triples;
    }

let of_set set =
  let n = max 16 (Triple.Set.cardinal set) in
  let by_s = Hashtbl.create n
  and by_p = Hashtbl.create n
  and by_o = Hashtbl.create n
  and by_sp = Hashtbl.create n
  and by_so = Hashtbl.create n
  and by_po = Hashtbl.create n in
  Triple.Set.iter
    (fun triple ->
      push by_s triple.Triple.s triple;
      push by_p triple.Triple.p triple;
      push by_o triple.Triple.o triple;
      push by_sp (triple.Triple.s, triple.Triple.p) triple;
      push by_so (triple.Triple.s, triple.Triple.o) triple;
      push by_po (triple.Triple.p, triple.Triple.o) triple)
    set;
  incr epoch_counter;
  { epoch = !epoch_counter; set; by_s; by_p; by_o; by_sp; by_so; by_po }

let of_triples list = of_set (Triple.Set.of_list list)
let empty = of_set Triple.Set.empty
let triples t = Triple.Set.elements t.set
let to_set t = t.set
let cardinal t = Triple.Set.cardinal t.set
let mem t triple = Triple.Set.mem triple t.set
let union a b = of_set (Triple.Set.union a.set b.set)
let add_triples t list = of_set (Triple.Set.add_seq (List.to_seq list) t.set)

let find tbl key =
  match Hashtbl.find_opt tbl key with
  | Some b -> b.bucket_triples
  | None -> []

let find_count tbl key =
  match Hashtbl.find_opt tbl key with Some b -> b.count | None -> 0

let matching t ?s ?p ?o () =
  match s, p, o with
  | Some s, Some p, Some o ->
      let triple = Triple.make s p o in
      if Triple.Set.mem triple t.set then [ triple ] else []
  | Some s, Some p, None -> find t.by_sp (s, p)
  | Some s, None, Some o -> find t.by_so (s, o)
  | None, Some p, Some o -> find t.by_po (p, o)
  | Some s, None, None -> find t.by_s s
  | None, Some p, None -> find t.by_p p
  | None, None, Some o -> find t.by_o o
  | None, None, None -> triples t

let matching_scan t ?s ?p ?o () =
  let position_ok bound actual =
    match bound with None -> true | Some term -> Term.equal term actual
  in
  Triple.Set.fold
    (fun triple acc ->
      if
        position_ok s triple.Triple.s
        && position_ok p triple.Triple.p
        && position_ok o triple.Triple.o
      then triple :: acc
      else acc)
    t.set []

let match_count t ?s ?p ?o () =
  match s, p, o with
  | Some s, Some p, Some o ->
      if Triple.Set.mem (Triple.make s p o) t.set then 1 else 0
  | Some s, Some p, None -> find_count t.by_sp (s, p)
  | Some s, None, Some o -> find_count t.by_so (s, o)
  | None, Some p, Some o -> find_count t.by_po (p, o)
  | Some s, None, None -> find_count t.by_s s
  | None, Some p, None -> find_count t.by_p p
  | None, None, Some o -> find_count t.by_o o
  | None, None, None -> cardinal t

let terms t =
  Triple.Set.fold
    (fun triple acc ->
      List.fold_left (fun acc term -> Term.Set.add term acc) acc (Triple.terms triple))
    t.set Term.Set.empty

let vars t =
  Triple.Set.fold
    (fun triple acc -> Variable.Set.union (Triple.vars triple) acc)
    t.set Variable.Set.empty

let iris t =
  Triple.Set.fold
    (fun triple acc -> Iri.Set.union (Triple.iris triple) acc)
    t.set Iri.Set.empty

let distinct_keys tbl =
  Hashtbl.fold (fun key _ acc -> key :: acc) tbl []

let subjects t = distinct_keys t.by_s
let predicates t = distinct_keys t.by_p
let objects t = distinct_keys t.by_o

let equal a b = Triple.Set.equal a.set b.set

let pp ppf t =
  Fmt.pf ppf "@[<v>{%a}@]" Fmt.(list ~sep:(any ";@ ") Triple.pp) (triples t)
