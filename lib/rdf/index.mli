(** An immutable, indexed store of triples over terms.

    This is the shared matching substrate: an RDF graph is an index whose
    triples are all ground, and a t-graph (set of triple patterns, see
    {!Tgraph}) is an index whose triples may contain variables — variables
    stored in an index are treated as opaque constants by matching (they
    are "frozen": matching never unifies them).

    Seven access patterns are indexed (s / p / o / sp / so / po / spo) so
    that [matching] answers any partially-bound lookup by a hash probe. *)

type t

val of_triples : Triple.t list -> t
val of_set : Triple.Set.t -> t
val empty : t

val epoch : t -> int
(** A globally unique stamp assigned when the index is constructed.
    Because indexes are immutable, any "mutation" (e.g. {!union},
    {!add_triples}) builds a new index with a fresh epoch — so two values
    share an epoch iff they are the same store, which is what the
    cross-evaluation caches key their invalidation on. *)

val triples : t -> Triple.t list
(** All triples, without duplicates, in unspecified order. *)

val to_set : t -> Triple.Set.t
val cardinal : t -> int
val mem : t -> Triple.t -> bool

val union : t -> t -> t
val add_triples : t -> Triple.t list -> t

val matching : t -> ?s:Term.t -> ?p:Term.t -> ?o:Term.t -> unit -> Triple.t list
(** [matching idx ?s ?p ?o ()] is the list of triples agreeing with every
    supplied position. Omitted positions are wildcards. *)

val matching_scan : t -> ?s:Term.t -> ?p:Term.t -> ?o:Term.t -> unit -> Triple.t list
(** As {!matching} but by linear scan, ignoring the hash indexes — the
    baseline for the index ablation (bench A3). Same results as
    {!matching} up to order. *)

val match_count : t -> ?s:Term.t -> ?p:Term.t -> ?o:Term.t -> unit -> int
(** Cardinality of [matching], computed without building the list when all
    three positions are bound. *)

val terms : t -> Term.Set.t
(** All terms occurring in any position. *)

val vars : t -> Variable.Set.t
(** All variables occurring in any triple. *)

val iris : t -> Iri.Set.t
(** All IRIs occurring in any triple. In the paper's notation, for an RDF
    graph [G] this is [dom(G)]. *)

val subjects : t -> Term.t list
val predicates : t -> Term.t list
val objects : t -> Term.t list

val equal : t -> t -> bool
(** Extensional equality of the underlying triple sets. *)

val pp : t Fmt.t
