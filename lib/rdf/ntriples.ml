let is_ws c = c = ' ' || c = '\t' || c = '\r'

(* [Error (col, msg)] with 1-based columns into the raw line. *)
let parse_term line pos =
  let n = String.length line in
  let rec skip_ws i = if i < n && is_ws line.[i] then skip_ws (i + 1) else i in
  let i = skip_ws pos in
  if i < n && line.[i] = '"' then
    (* literal objects, stored IRI-encoded (see Rdf.Literal) *)
    match Literal.scan line i with
    | Ok (literal, next) -> Ok (Term.Iri (Literal.encode literal), next)
    | Error msg -> Error (i + 1, msg)
  else if i >= n || line.[i] <> '<' then Error (i + 1, "expected '<'")
  else
    match String.index_from_opt line i '>' with
    | None -> Error (i + 1, "unterminated IRI")
    | Some j ->
        let body = String.sub line (i + 1) (j - i - 1) in
        if body = "" then Error (i + 1, "empty IRI")
        else Ok (Term.iri body, j + 1)

let parse_line_loc line =
  let n = String.length line in
  let rec skip_ws i = if i < n && is_ws line.[i] then skip_ws (i + 1) else i in
  let start = skip_ws 0 in
  if start >= n || line.[start] = '#' then Ok None
  else
    let ( let* ) = Result.bind in
    let* s, pos = parse_term line start in
    let* p, pos = parse_term line pos in
    let* o, pos = parse_term line pos in
    let dot = skip_ws pos in
    if dot >= n || line.[dot] <> '.' then
      Error (dot + 1, "expected terminating '.'")
    else
      let after = skip_ws (dot + 1) in
      if after < n && line.[after] <> '#' then
        Error (after + 1, "trailing content after '.'")
      else Ok (Some (Triple.make s p o))

let parse_line line =
  Result.map_error
    (fun (col, msg) -> Printf.sprintf "column %d: %s" col msg)
    (parse_line_loc line)

let parse_err ?source src =
  let lines = String.split_on_char '\n' src in
  let rec go acc lineno = function
    | [] -> (
        match Graph.of_triples (List.rev acc) with
        | graph -> Ok graph
        | exception Graph.Not_ground t ->
            Error
              (Wdsparql_error.Invalid_input
                 (Fmt.str "non-ground triple in data: %a" Triple.pp t)))
    | line :: rest -> (
        match parse_line_loc line with
        | Ok (Some t) -> go (t :: acc) (lineno + 1) rest
        | Ok None -> go acc (lineno + 1) rest
        | Error (col, msg) ->
            Error (Wdsparql_error.Parse_error { source = Option.value source ~default:"input"; line = lineno; col; msg })
        | exception Invalid_argument msg ->
            Error
              (Wdsparql_error.Parse_error { source = Option.value source ~default:"input"; line = lineno; col = 1; msg }))
  in
  go [] 1 lines

let parse src = Result.map_error Wdsparql_error.to_string (parse_err src)

let to_string graph =
  let buf = Buffer.create 1024 in
  let angle t =
    match t with
    | Term.Iri i -> (
        match Literal.decode i with
        | Some literal -> Literal.to_turtle literal
        | None -> "<" ^ Iri.to_string i ^ ">")
    | Term.Var _ -> assert false (* graphs are ground *)
  in
  List.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s %s .\n" (angle t.Triple.s) (angle t.Triple.p)
           (angle t.Triple.o)))
    (List.sort Triple.compare (Graph.triples graph));
  Buffer.contents buf
