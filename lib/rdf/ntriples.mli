(** Strict N-Triples-style I/O: one triple per line, every term in angle
    brackets, terminated by [.]. Unlike {!Turtle} there are no prefixes
    and no abbreviations, which makes the format trivially streamable and
    line-diffable — the interchange format the benchmark fixtures use.

    Parsers never raise on malformed input: every syntax problem comes
    back as [Error] carrying the offending line and column. *)

val parse_err : ?source:string -> string -> (Graph.t, Wdsparql_error.t) result
(** Blank lines and [#] comment lines are allowed; anything else must be
    [<s> <p> <o> .]. Syntax errors come back as
    {!Wdsparql_error.Parse_error} with 1-based line/column; non-ground
    data as {!Wdsparql_error.Invalid_input}. [source] names the input
    (e.g. a file path) in diagnostics. *)

val parse : string -> (Graph.t, string) result
(** {!parse_err} with the error rendered as a one-line message. *)

val to_string : Graph.t -> string
(** One line per triple, sorted (deterministic output). *)

val parse_line : string -> (Triple.t option, string) result
(** A single line: [Ok None] for blank/comment lines. *)
