type token =
  | Tok_iri of string
  | Tok_pname of string * string  (* prefix, local *)
  | Tok_var of string
  | Tok_dot
  | Tok_prefix_decl

exception Err of { line : int; col : int; msg : string }

let error line col fmt =
  Fmt.kstr (fun msg -> raise (Err { line; col; msg })) fmt

let is_ws c = c = ' ' || c = '\t' || c = '\r' || c = '\n'

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.'

(* Tokenise the whole document, tracking line and column numbers for
   error messages. Columns are 1-based byte offsets from the line start. *)
let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let line_start = ref 0 in
  let i = ref 0 in
  let col_of pos = pos - !line_start + 1 in
  let emit pos tok = tokens := (tok, !line, col_of pos) :: !tokens in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i;
      line_start := !i
    end
    else if is_ws c then incr i
    else if c = '#' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c = '.'
            && (!i + 1 >= n || is_ws src.[!i + 1] || src.[!i + 1] = '#')
    then begin
      emit !i Tok_dot;
      incr i
    end
    else if c = '<' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && src.[!j] <> '>' && src.[!j] <> '\n' do incr j done;
      if !j >= n || src.[!j] <> '>' then
        error !line (col_of !i) "unterminated IRI";
      if !j = start then error !line (col_of !i) "empty IRI";
      emit !i (Tok_iri (String.sub src start (!j - start)));
      i := !j + 1
    end
    else if c = '"' then begin
      (* literals are stored IRI-encoded; see Rdf.Literal *)
      match Literal.scan src !i with
      | Ok (literal, next) ->
          emit !i (Tok_iri (Iri.to_string (Literal.encode literal)));
          i := next
      | Error msg -> error !line (col_of !i) "%s" msg
    end
    else if c = '?' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && is_name_char src.[!j] do incr j done;
      if !j = start then error !line (col_of !i) "empty variable name";
      emit !i (Tok_var (String.sub src start (!j - start)));
      i := !j
    end
    else if c = '@' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && is_name_char src.[!j] do incr j done;
      let word = String.sub src start (!j - start) in
      if word <> "prefix" then
        error !line (col_of !i) "unknown directive @%s" word;
      emit !i Tok_prefix_decl;
      i := !j
    end
    else if is_name_char c || c = ':' then begin
      let start = !i in
      let j = ref start in
      (* '@' may occur inside a name (mailto:a@b) but never starts one —
         a leading '@' is a directive, handled above. *)
      while !j < n && (is_name_char src.[!j] || src.[!j] = ':' || src.[!j] = '@') do
        incr j
      done;
      let word = String.sub src start (!j - start) in
      (* A trailing '.' is a statement terminator, not part of the name. *)
      let word, extra_dot =
        if String.length word > 1 && word.[String.length word - 1] = '.' then
          (String.sub word 0 (String.length word - 1), true)
        else (word, false)
      in
      (match String.index_opt word ':' with
      | Some k ->
          emit start
            (Tok_pname
               (String.sub word 0 k, String.sub word (k + 1) (String.length word - k - 1)))
      | None ->
          error !line (col_of start) "expected a prefixed name or IRI, got %S"
            word);
      if extra_dot then emit (!j - 1) Tok_dot;
      i := !j
    end
    else error !line (col_of !i) "unexpected character %C" c
  done;
  (List.rev !tokens, !line)

let resolve prefixes line col prefix local =
  let s =
    match List.assoc_opt prefix prefixes with
    | Some expansion -> expansion ^ local
    | None ->
        (* Undeclared prefixes denote themselves, matching the query parser:
           [p:knows] is the IRI "p:knows". *)
        prefix ^ ":" ^ local
  in
  if s = "" then error line col "empty IRI after prefix expansion"
  else Iri.of_string s

let parse_tokens (tokens, last_line) =
  let rec statements prefixes acc = function
    | [] -> List.rev acc
    | (Tok_prefix_decl, line, col) :: rest -> (
        match rest with
        | (Tok_pname (prefix, ""), _, _) :: (Tok_iri iri, _, _)
          :: (Tok_dot, _, _) :: rest ->
            statements ((prefix, iri) :: prefixes) acc rest
        | _ -> error line col "malformed @prefix declaration")
    | rest ->
        let term rest =
          match rest with
          | (Tok_iri iri, _, _) :: rest -> (Term.iri iri, rest)
          | (Tok_pname (prefix, local), line, col) :: rest ->
              (Term.Iri (resolve prefixes line col prefix local), rest)
          | (Tok_var v, _, _) :: rest -> (Term.var v, rest)
          | (_, line, col) :: _ -> error line col "expected a term"
          | [] -> error last_line 1 "unexpected end of input in triple"
        in
        let s, rest = term rest in
        let p, rest = term rest in
        let o, rest = term rest in
        let rest =
          match rest with
          | (Tok_dot, _, _) :: rest -> rest
          | (_, line, col) :: _ -> error line col "expected '.' after triple"
          | [] -> error last_line 1 "missing final '.'"
        in
        statements prefixes (Triple.make s p o :: acc) rest
  in
  statements [] [] tokens

let located ?source src parse =
  (* Every failure — including defensive catches of [Invalid_argument]
     from term constructors — surfaces as a structured parse error; no
     exception escapes. *)
  match parse (tokenize src) with
  | v -> Ok v
  | exception Err { line; col; msg } ->
      Error (Wdsparql_error.Parse_error { source = Option.value source ~default:"input"; line; col; msg })
  | exception Invalid_argument msg ->
      Error (Wdsparql_error.Parse_error { source = Option.value source ~default:"input"; line = 1; col = 1; msg })

let parse_triples_err ?source src = located ?source src parse_tokens

let parse_graph_err ?source src =
  match parse_triples_err ?source src with
  | Error _ as e -> e
  | Ok triples -> (
      match Graph.of_triples triples with
      | graph -> Ok graph
      | exception Graph.Not_ground t ->
          Error
            (Wdsparql_error.Invalid_input
               (Fmt.str "non-ground triple in data: %a" Triple.pp t)))

let parse_triples src =
  Result.map_error Wdsparql_error.to_string (parse_triples_err src)

let parse_graph src =
  Result.map_error Wdsparql_error.to_string (parse_graph_err src)

let abbreviate prefixes iri =
  match Literal.decode iri with
  | Some literal -> Literal.to_turtle literal
  | None ->
      let s = Iri.to_string iri in
      let rec go = function
        | [] -> Printf.sprintf "<%s>" s
        | (prefix, expansion) :: rest ->
            let n = String.length expansion in
            if String.length s > n && String.sub s 0 n = expansion then
              Printf.sprintf "%s:%s" prefix (String.sub s n (String.length s - n))
            else go rest
      in
      go prefixes

let to_string ?(prefixes = []) graph =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (prefix, expansion) ->
      Buffer.add_string buf (Printf.sprintf "@prefix %s: <%s> .\n" prefix expansion))
    prefixes;
  if prefixes <> [] then Buffer.add_char buf '\n';
  let term t =
    match t with
    | Term.Iri iri -> abbreviate prefixes iri
    | Term.Var v -> "?" ^ Variable.to_string v
  in
  List.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s %s .\n" (term t.Triple.s) (term t.Triple.p)
           (term t.Triple.o)))
    (Graph.triples graph);
  Buffer.contents buf
