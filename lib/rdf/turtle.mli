(** A pragmatic subset of Turtle for reading and writing RDF graphs.

    Supported syntax:
    - comments: [# ...] to end of line;
    - prefix declarations: [@prefix ex: <http://example.org/> .];
    - triple statements: [subject predicate object .] where each term is
      [<iri>], a prefixed name [ex:foo] (or [:foo]), or a SPARQL-style
      variable [?x] (variables are accepted by {!parse_triples} so the same
      reader can load triple-pattern fixtures, but rejected by
      {!parse_graph}).

    Literals and blank nodes are not supported: the paper's data model is
    ground IRI-only RDF.

    Parsers never raise on malformed input: every syntax problem comes
    back as [Error] carrying the offending line and column. *)

val parse_triples_err :
  ?source:string -> string -> (Triple.t list, Wdsparql_error.t) result
(** Parse a document into triples (variables allowed). [source] names the
    input (e.g. a file path) in diagnostics. Syntax errors come back as
    {!Wdsparql_error.Parse_error} with 1-based line/column. *)

val parse_graph_err :
  ?source:string -> string -> (Graph.t, Wdsparql_error.t) result
(** As {!parse_triples_err} but requires every triple to be ground
    (non-ground data is reported as {!Wdsparql_error.Invalid_input}). *)

val parse_triples : string -> (Triple.t list, string) result
(** {!parse_triples_err} with the error rendered as a one-line
    [line L, column C: ...] message. *)

val parse_graph : string -> (Graph.t, string) result
(** {!parse_graph_err} with the error rendered as a one-line message. *)

val to_string : ?prefixes:(string * string) list -> Graph.t -> string
(** Serialise; IRIs matching a [(prefix, expansion)] pair are written as
    prefixed names and the corresponding [@prefix] headers are emitted. *)
