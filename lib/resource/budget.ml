type t = {
  mutable fuel_left : int;  (* max_int = no fuel limit *)
  mutable spent : int;
  mutable solutions_left : int;  (* max_int = no cap *)
  deadline : float;  (* absolute Unix time; infinity = none *)
  mutable phase : string;
  limited : bool;
}

exception Exhausted of { phase : string; spent : int }

let deadline_check_interval = 64

let unlimited =
  {
    fuel_left = max_int;
    spent = 0;
    solutions_left = max_int;
    deadline = infinity;
    phase = "-";
    limited = false;
  }

let make ?fuel ?timeout ?max_solutions () =
  match (fuel, timeout, max_solutions) with
  | None, None, None -> unlimited
  | _ ->
      let fuel_left =
        match fuel with
        | None -> max_int
        | Some f ->
            if f <= 0 then invalid_arg "Budget.make: fuel must be positive";
            f
      in
      let deadline =
        match timeout with
        | None -> infinity
        | Some s ->
            if s <= 0. then invalid_arg "Budget.make: timeout must be positive";
            Unix.gettimeofday () +. s
      in
      let solutions_left =
        match max_solutions with
        | None -> max_int
        | Some n ->
            if n <= 0 then
              invalid_arg "Budget.make: max_solutions must be positive";
            n
      in
      { fuel_left; spent = 0; solutions_left; deadline; phase = "-"; limited = true }

let exhaust b = raise (Exhausted { phase = b.phase; spent = b.spent })

let tick b =
  if b.limited then begin
    b.spent <- b.spent + 1;
    if b.fuel_left <> max_int then begin
      b.fuel_left <- b.fuel_left - 1;
      if b.fuel_left <= 0 then exhaust b
    end;
    if
      b.deadline < infinity
      && b.spent land (deadline_check_interval - 1) = 0
      && Unix.gettimeofday () > b.deadline
    then exhaust b
  end

let solution b =
  if b.limited then begin
    (* a solution is also work — and keeps the deadline honest when an
       enumerator produces answers faster than it ticks *)
    tick b;
    if b.solutions_left <> max_int then begin
      b.solutions_left <- b.solutions_left - 1;
      if b.solutions_left < 0 then exhaust b
    end
  end

let with_phase b label f =
  if not b.limited then f ()
  else begin
    let saved = b.phase in
    b.phase <- label;
    Fun.protect ~finally:(fun () -> b.phase <- saved) f
  end

let is_limited b = b.limited
let spent b = b.spent
let phase b = b.phase

let pp ppf b =
  if not b.limited then Fmt.string ppf "unlimited"
  else
    Fmt.pf ppf "budget{spent %d; fuel left %s; deadline %s; solutions left %s}"
      b.spent
      (if b.fuel_left = max_int then "∞" else string_of_int b.fuel_left)
      (if b.deadline = infinity then "none"
       else Fmt.str "%.3fs away" (b.deadline -. Unix.gettimeofday ()))
      (if b.solutions_left = max_int then "∞" else string_of_int b.solutions_left)
