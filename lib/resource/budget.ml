(* A forked budget's workers drain one shared fuel pool in small leases
   and observe a shared cancellation flag, so exhaustion (or an explicit
   [cancel]) on any domain stops the siblings at their next sync point —
   at most [lease] ticks away. *)
type shared = {
  cancelled : bool Atomic.t;
  pool_fuel : int Atomic.t;  (* remaining unleased fuel; max_int = none *)
}

type t = {
  mutable fuel_left : int;  (* max_int = no fuel limit *)
  mutable spent : int;
  mutable solutions_left : int;  (* max_int = no cap *)
  deadline : float;  (* absolute Unix time; infinity = none *)
  mutable phase : string;
  limited : bool;
  halted : bool Atomic.t;
      (* standalone cancellation, settable from another thread (the
         server's drain path): checked at deadline-check ticks. Worker
         views share their parent's cell. *)
  mutable shared : shared option;
      (* Some while enrolled in a fork group: on worker views for their
         whole life, on the parent between [fork] and [join] *)
}

exception Exhausted of { phase : string; spent : int }

let deadline_check_interval = 64
let lease = deadline_check_interval

let unlimited =
  {
    fuel_left = max_int;
    spent = 0;
    solutions_left = max_int;
    deadline = infinity;
    phase = "-";
    limited = false;
    halted = Atomic.make false;
    shared = None;
  }

let make ?fuel ?timeout ?max_solutions () =
  match (fuel, timeout, max_solutions) with
  | None, None, None -> unlimited
  | _ ->
      let fuel_left =
        match fuel with
        | None -> max_int
        | Some f ->
            if f <= 0 then invalid_arg "Budget.make: fuel must be positive";
            f
      in
      let deadline =
        match timeout with
        | None -> infinity
        | Some s ->
            if s <= 0. then invalid_arg "Budget.make: timeout must be positive";
            Unix.gettimeofday () +. s
      in
      let solutions_left =
        match max_solutions with
        | None -> max_int
        | Some n ->
            if n <= 0 then
              invalid_arg "Budget.make: max_solutions must be positive";
            n
      in
      {
        fuel_left;
        spent = 0;
        solutions_left;
        deadline;
        phase = "-";
        limited = true;
        halted = Atomic.make false;
        shared = None;
      }

let exhaust b =
  (* a worker view going down takes its siblings with it: fuel and
     deadline are shared fates, and a cancelled group must stop as one *)
  (match b.shared with Some s -> Atomic.set s.cancelled true | None -> ());
  raise (Exhausted { phase = b.phase; spent = b.spent })

(* Take a fresh lease from the shared pool; empty pool = the group's
   collective fuel is gone. [paid] says whether the triggering tick was
   already covered by the old lease: an unpaid tick consumes the new
   lease's first unit. *)
let refill b s ~paid =
  if Atomic.get s.cancelled then exhaust b;
  let rec go () =
    let cur = Atomic.get s.pool_fuel in
    if cur = max_int then b.fuel_left <- max_int
    else begin
      let take = min lease cur in
      if take <= 0 then exhaust b
      else if Atomic.compare_and_set s.pool_fuel cur (cur - take) then
        b.fuel_left <- (if paid then take else take - 1)
      else go ()
    end
  in
  go ()

let tick b =
  if b.limited then begin
    b.spent <- b.spent + 1;
    if b.fuel_left <> max_int then begin
      b.fuel_left <- b.fuel_left - 1;
      if b.fuel_left <= 0 then
        match b.shared with
        | None -> exhaust b
        | Some s ->
            (* negative: this tick predates any lease (fresh fork) —
               lease one and pay for it. Zero: the lease's last unit
               went to this tick — lease eagerly so the group exhausts
               on exactly the tick that would trip the unforked budget
               (fuel f = f-1 successful ticks, like [make ~fuel]). *)
            if b.fuel_left < 0 then refill b s ~paid:false;
            if b.fuel_left <= 0 then refill b s ~paid:true
    end;
    if b.spent land (deadline_check_interval - 1) = 0 then begin
      (match b.shared with
      | Some s when Atomic.get s.cancelled -> exhaust b
      | _ -> ());
      if Atomic.get b.halted then exhaust b;
      if b.deadline < infinity && Unix.gettimeofday () > b.deadline then
        exhaust b
    end
  end

let fork b n =
  if n <= 0 then invalid_arg "Budget.fork: worker count must be positive";
  if not b.limited then Array.init n (fun _ -> unlimited)
  else begin
    let pool = b.fuel_left in
    let s =
      { cancelled = Atomic.make false; pool_fuel = Atomic.make pool }
    in
    (* the parent joins the group too: its remaining fuel becomes the
       pool, and until [join] it leases from that pool like any worker,
       so solution ticks on the parent during the merge share one
       account with the workers *)
    b.shared <- Some s;
    if pool <> max_int then b.fuel_left <- 0;
    Array.init n (fun _ ->
        {
          fuel_left = (if pool = max_int then max_int else 0);
          spent = 0;
          solutions_left = max_int;
          (* the solution cap stays with the parent: answers are only
             counted on the calling domain, in merge order *)
          deadline = b.deadline;
          phase = b.phase;
          limited = true;
          halted = b.halted;
          shared = Some s;
        })
  end

let join b workers =
  if b.limited then
    match b.shared with
    | None -> ()
    | Some s ->
        b.shared <- None;
        b.spent <-
          Array.fold_left (fun acc w -> acc + w.spent) b.spent workers;
        let pool = Atomic.get s.pool_fuel in
        if pool <> max_int then begin
          (* reclaim unleased pool fuel plus every member's unspent
             lease (the parent's own lease included) *)
          let reclaim acc m =
            if m.fuel_left = max_int then acc else acc + max 0 m.fuel_left
          in
          b.fuel_left <- reclaim (Array.fold_left reclaim pool workers) b
        end

let cancel b =
  if b.limited then begin
    Atomic.set b.halted true;
    match b.shared with
    | Some s -> Atomic.set s.cancelled true
    | None -> ()
  end

(* Refill/withdraw treat a budget as a fuel account (the server's global
   admission pool): no ticks are recorded, fuel just moves in and out.
   On an enrolled budget both operate on the shared pool via CAS — a
   member's current lease is never touched, so a worker mid-lease cannot
   observe a refill until its next lease boundary. *)

let default_cap = max_int - 1
(* clamping at [max_int] would turn a limited pool into the "no fuel
   limit" sentinel *)

let replenish ?(cap = default_cap) b n =
  if b.limited && n > 0 then begin
    let cap = min cap default_cap in
    match b.shared with
    | Some s ->
        let rec add () =
          let cur = Atomic.get s.pool_fuel in
          if cur < max_int then begin
            let next = if cur >= cap - n then cap else cur + n in
            if next > cur && not (Atomic.compare_and_set s.pool_fuel cur next)
            then add ()
          end
        in
        add ()
    | None ->
        if b.fuel_left < max_int then
          b.fuel_left <-
            (if b.fuel_left >= cap - n then max b.fuel_left cap
             else b.fuel_left + n)
  end

let try_withdraw b n =
  if n < 0 then invalid_arg "Budget.try_withdraw: negative amount";
  if (not b.limited) || n = 0 then true
  else
    match b.shared with
    | Some s ->
        let rec sub () =
          let cur = Atomic.get s.pool_fuel in
          if cur = max_int then true
          else if cur < n then false
          else Atomic.compare_and_set s.pool_fuel cur (cur - n) || sub ()
        in
        sub ()
    | None ->
        if b.fuel_left = max_int then true
        else if b.fuel_left < n then false
        else begin
          b.fuel_left <- b.fuel_left - n;
          true
        end

let fuel_left b =
  if (not b.limited) || b.fuel_left = max_int then None else Some b.fuel_left

let solution b =
  if b.limited then begin
    (* a solution is also work — and keeps the deadline honest when an
       enumerator produces answers faster than it ticks *)
    tick b;
    if b.solutions_left <> max_int then begin
      b.solutions_left <- b.solutions_left - 1;
      if b.solutions_left < 0 then exhaust b
    end
  end

let with_phase b label f =
  if not b.limited then f ()
  else begin
    let saved = b.phase in
    b.phase <- label;
    Fun.protect ~finally:(fun () -> b.phase <- saved) f
  end

let is_limited b = b.limited
let spent b = b.spent
let phase b = b.phase

let pp ppf b =
  if not b.limited then Fmt.string ppf "unlimited"
  else
    Fmt.pf ppf "budget{spent %d; fuel left %s; deadline %s; solutions left %s}"
      b.spent
      (if b.fuel_left = max_int then "∞" else string_of_int b.fuel_left)
      (if b.deadline = infinity then "none"
       else Fmt.str "%.3fs away" (b.deadline -. Unix.gettimeofday ()))
      (if b.solutions_left = max_int then "∞" else string_of_int b.solutions_left)
