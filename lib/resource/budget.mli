(** Resource budgets for the intentionally-exponential kernels.

    Half of this codebase — exact treewidth, cores, exact homomorphism
    tests, naive evaluation, domination width — is worst-case exponential
    {e by design} (the paper's Theorem 2 side). A budget makes "too hard
    under current limits" a first-class, promptly-reported outcome instead
    of an unbounded burn: every such kernel accepts a [Budget.t] and calls
    {!tick} at its loop heads, which raises {!Exhausted} as soon as any of
    the three limits trips:

    - a {b fuel} counter: a deterministic step budget, decremented on every
      tick — reproducible across runs, the fault-injection lever the tests
      use;
    - a wall-clock {b deadline}: checked every few ticks (the clock is only
      read once per {!deadline_check_interval} ticks, so ticking stays
      cheap);
    - a {b solution cap}: counted by {!solution} at every answer an
      enumerator emits.

    A budget is a single mutable object threaded by reference: spending is
    visible to the caller afterwards via {!spent}, so a planner can try an
    exact computation under a slice and fall back when it trips (see
    [Wd_core.Engine.plan]). The shared {!unlimited} budget never trips and
    costs one branch per tick, so un-budgeted callers pay essentially
    nothing. *)

type t

exception Exhausted of { phase : string; spent : int }
(** Raised by {!tick} / {!solution} when a limit trips. [phase] is the
    innermost {!with_phase} label active at the raise ("treewidth",
    "pebble", "naive-eval", …); [spent] the number of ticks consumed.
    Catch it at an entry point — or let [Wdsparql_error.guard] turn it
    into [`Budget_exhausted`]. *)

val unlimited : t
(** The shared never-tripping budget; the default everywhere. *)

val make : ?fuel:int -> ?timeout:float -> ?max_solutions:int -> unit -> t
(** A fresh budget. [fuel] is a tick count (raises [Invalid_argument] if
    [≤ 0]); [timeout] is seconds from now; [max_solutions] caps
    {!solution} calls. With no limits given, returns {!unlimited}. *)

val tick : t -> unit
(** Account one unit of work; raises {!Exhausted} when the fuel or the
    deadline is gone. Call at loop heads of exponential searches. *)

val solution : t -> unit
(** Account one emitted answer; raises {!Exhausted} once the cap is
    exceeded (the capped number of answers itself is allowed). *)

val with_phase : t -> string -> (unit -> 'a) -> 'a
(** [with_phase b label f] runs [f] with [label] as the budget's current
    phase, restoring the previous label afterwards (also on exceptions).
    Kernels wrap their entry points so {!Exhausted} can say {e where} the
    budget went. No-op on {!unlimited}. *)

val fork : t -> int -> t array
(** [fork b n] makes [n] worker views of [b] for a parallel region
    (raises [Invalid_argument] on [n ≤ 0]). All remaining fuel of [b]
    moves into one shared atomic pool that the views — and [b] itself,
    until {!join} — drain in small leases ({!deadline_check_interval}
    ticks at a time), so the group's collective spending honours the
    original fuel limit to within one lease per member. The deadline is
    shared by value; the {e solution cap stays on [b] alone}, because
    answers are only counted on the calling domain in merge order. When
    any member trips a limit (or {!cancel} is called on one), a shared
    flag stops every sibling at its next lease boundary or
    deadline-check tick — at most {!deadline_check_interval} ticks away.
    Forking {!unlimited} just returns unlimited views. *)

val join : t -> t array -> unit
(** [join b workers] dissolves the group made by [fork b]: the workers'
    tick counts fold into [b]'s {!spent}, unleased pool fuel and every
    member's unspent lease return to [b], and [b] goes back to ticking
    against its own counter. Call exactly once per [fork], also on
    exception paths; harmless if the group never ran. *)

val cancel : t -> unit
(** Halt this budget — and, if it belongs to a fork group, every member
    of the group — at the next sync point: a lease boundary or a
    deadline-check tick, at most {!deadline_check_interval} ticks away.
    Safe to call from another thread (the server's drain path cancels
    in-flight request budgets this way). Cancellation is permanent and
    survives {!join}. No-op on {!unlimited}. *)

val replenish : ?cap:int -> t -> int -> unit
(** [replenish b n] adds [n] fuel units to [b]'s account, clamped so the
    account never exceeds [cap] (default: effectively unbounded) and an
    account above [cap] is left unchanged. On a budget enrolled in a
    fork group the fuel goes into the group's {e shared pool} — a
    member's already-leased fuel is never touched, so workers cannot
    observe a refill mid-lease. No-op on {!unlimited}, on budgets
    without a fuel limit, and for [n ≤ 0]. This is an account transfer,
    not work: {!spent} is unaffected. *)

val try_withdraw : t -> int -> bool
(** [try_withdraw b n] atomically removes [n] fuel units from [b]'s
    account (the shared pool when enrolled) if at least [n] are
    available, returning whether it did. Always [true] on {!unlimited}
    and on budgets without a fuel limit; raises [Invalid_argument] on
    negative [n]. Together with {!replenish} this turns a budget into
    the token-bucket account behind {!Token_bucket}. *)

val fuel_left : t -> int option
(** The fuel currently available to this budget alone — its remaining
    lease when enrolled in a fork group — or [None] when fuel is
    unlimited. Observability hook for refill tests and [/stats]. *)

val is_limited : t -> bool
(** [false] exactly for {!unlimited}. *)

val spent : t -> int
(** Ticks consumed so far (diagnostics; meaningless on {!unlimited}). *)

val phase : t -> string
(** The current phase label. *)

val deadline_check_interval : int
(** How many ticks pass between wall-clock reads (a power of two). *)

val pp : t Fmt.t
