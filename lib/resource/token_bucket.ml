(* A thread-safe token bucket over a [Budget.t] fuel account: the whole
   tokens live in the budget (so [Budget.try_withdraw] / [replenish] do
   the accounting), the fractional carry and the refill clock live here
   under a mutex. Refill is lazy — computed from elapsed time on every
   operation — so there is no background thread to manage. *)

type t = {
  account : Budget.t;  (* fuel_left = whole tokens available *)
  capacity : int;
  rate : float;  (* tokens per second; 0 = no refill *)
  mutable carry : float;  (* fractional tokens accrued, in [0, 1) *)
  mutable last : float;  (* clock value at the last refresh *)
  lock : Mutex.t;
}

let create ?now ~capacity ~rate () =
  if capacity <= 0 then
    invalid_arg "Token_bucket.create: capacity must be positive";
  if rate < 0. then invalid_arg "Token_bucket.create: rate must be >= 0";
  let now = match now with Some t -> t | None -> Unix.gettimeofday () in
  {
    account = Budget.make ~fuel:capacity ();
    capacity;
    rate;
    carry = 0.;
    last = now;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Credit the tokens earned since [t.last]. Call with the lock held. *)
let refresh t now =
  if now > t.last then begin
    if t.rate > 0. then begin
      let accrued = t.carry +. ((now -. t.last) *. t.rate) in
      let whole = int_of_float accrued in
      t.carry <- accrued -. float_of_int whole;
      if whole > 0 then Budget.replenish ~cap:t.capacity t.account whole
    end;
    t.last <- now
  end

let level_unlocked t =
  match Budget.fuel_left t.account with Some n -> n | None -> t.capacity

let try_take ?now t n =
  if n < 0 then invalid_arg "Token_bucket.try_take: negative amount";
  let now = match now with Some c -> c | None -> Unix.gettimeofday () in
  locked t @@ fun () ->
  refresh t now;
  Budget.try_withdraw t.account n

let give_back t n =
  if n > 0 then
    locked t @@ fun () -> Budget.replenish ~cap:t.capacity t.account n

let level ?now t =
  let now = match now with Some c -> c | None -> Unix.gettimeofday () in
  locked t @@ fun () ->
  refresh t now;
  level_unlocked t

let seconds_until ?now t n =
  if n < 0 then invalid_arg "Token_bucket.seconds_until: negative amount";
  let now = match now with Some c -> c | None -> Unix.gettimeofday () in
  locked t @@ fun () ->
  refresh t now;
  let have = level_unlocked t in
  if have >= n then 0.
  else if t.rate <= 0. || n > t.capacity then infinity
  else (float_of_int (n - have) -. t.carry) /. t.rate

let capacity t = t.capacity
