(** A token bucket built on a {!Budget.t} fuel account: the refillable
    global budget behind the server's admission control.

    The bucket holds up to [capacity] tokens and earns [rate] tokens per
    second (with fractional carry), credited lazily from elapsed time on
    every operation — no background thread. Admission withdraws a
    request's fuel allowance with {!try_take} and returns the unspent
    remainder with {!give_back} when the request finishes, so sustained
    load is bounded by what the bucket earns, not by how fast clients
    knock.

    All operations are thread-safe. Every operation takes an optional
    [?now] clock value (defaulting to [Unix.gettimeofday ()]) so tests
    can drive the clock deterministically. *)

type t

val create : ?now:float -> capacity:int -> rate:float -> unit -> t
(** A full bucket. [capacity] must be positive, [rate] (tokens/second)
    non-negative — [0.] means the bucket never refills on its own;
    raises [Invalid_argument] otherwise. *)

val try_take : ?now:float -> t -> int -> bool
(** [try_take t n] withdraws [n] tokens if available, returning whether
    it did. Never blocks. Raises [Invalid_argument] on negative [n]. *)

val give_back : t -> int -> unit
(** Return unspent tokens, clamped at [capacity]. No-op for [n ≤ 0]. *)

val level : ?now:float -> t -> int
(** Whole tokens currently available (after crediting elapsed time). *)

val seconds_until : ?now:float -> t -> int -> float
(** Seconds until [n] tokens will be available at the current rate: [0.]
    if they already are, [infinity] if they never will be (zero rate, or
    [n > capacity]). The server's [Retry-After] hint. *)

val capacity : t -> int
