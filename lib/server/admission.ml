(* Admission control: each admitted request gets a private
   [Resource.Budget] (fuel, deadline, solution cap) whose fuel is
   withdrawn from a global [Token_bucket]; finished requests give the
   unspent remainder back. Two watermarks shed load *before* any work
   is queued — in-flight count and bucket level — so overload turns into
   prompt [503 + Retry-After], never a silent queue timeout. *)

module Budget = Resource.Budget
module Token_bucket = Resource.Token_bucket

type config = {
  request_fuel : int;  (* fuel carved out per request *)
  request_timeout : float;  (* seconds; per-request deadline *)
  max_solutions : int option;
  global_fuel : int option;  (* token-bucket capacity; None = no bucket *)
  refill_rate : float;  (* tokens per second *)
  max_inflight : int;  (* in-flight watermark *)
}

type reason = Inflight_watermark | Budget_watermark

type lease = { budget : Budget.t; fuel : int }

type t = {
  config : config;
  bucket : Token_bucket.t option;
  inflight : int Atomic.t;
  admitted : int Atomic.t;
  shed_inflight : int Atomic.t;
  shed_tokens : int Atomic.t;
  fuel_returned : int Atomic.t;
}

let create config =
  if config.request_fuel <= 0 then
    invalid_arg "Admission.create: request_fuel must be positive";
  if config.max_inflight <= 0 then
    invalid_arg "Admission.create: max_inflight must be positive";
  let bucket =
    Option.map
      (fun capacity ->
        Token_bucket.create ~capacity ~rate:config.refill_rate ())
      config.global_fuel
  in
  {
    config;
    bucket;
    inflight = Atomic.make 0;
    admitted = Atomic.make 0;
    shed_inflight = Atomic.make 0;
    shed_tokens = Atomic.make 0;
    fuel_returned = Atomic.make 0;
  }

let config t = t.config

(* Reserve an in-flight slot with a CAS loop so concurrent admits never
   overshoot the watermark. *)
let rec reserve_slot t =
  let cur = Atomic.get t.inflight in
  if cur >= t.config.max_inflight then false
  else Atomic.compare_and_set t.inflight cur (cur + 1) || reserve_slot t

let try_admit ?(starve = false) t =
  if not (reserve_slot t) then begin
    Atomic.incr t.shed_inflight;
    Error (Inflight_watermark, 1.0)
  end
  else begin
    let fuel = t.config.request_fuel in
    let granted =
      match t.bucket with
      | None -> true
      | Some b -> Token_bucket.try_take b fuel
    in
    if not granted then begin
      Atomic.decr t.inflight;
      Atomic.incr t.shed_tokens;
      let retry =
        match t.bucket with
        | Some b ->
            let s = Token_bucket.seconds_until b fuel in
            if s = infinity then 60. else Float.max 1. (Float.round s)
        | None -> 1.0
      in
      Error (Budget_watermark, retry)
    end
    else begin
      Atomic.incr t.admitted;
      (* a starved request keeps its grant (the tokens were withdrawn;
         release returns what its tiny budget doesn't burn) but runs
         under near-zero fuel — the budget-starvation fault *)
      let budget =
        Budget.make
          ~fuel:(if starve then 2 else fuel)
          ~timeout:t.config.request_timeout
          ?max_solutions:t.config.max_solutions ()
      in
      Ok { budget; fuel }
    end
  end

let release t lease =
  Atomic.decr t.inflight;
  (match t.bucket with
  | None -> ()
  | Some b ->
      let unspent = lease.fuel - Budget.spent lease.budget in
      if unspent > 0 then begin
        Token_bucket.give_back b unspent;
        ignore (Atomic.fetch_and_add t.fuel_returned unspent)
      end)

let inflight t = Atomic.get t.inflight
let admitted t = Atomic.get t.admitted
let shed_inflight t = Atomic.get t.shed_inflight
let shed_tokens t = Atomic.get t.shed_tokens
let fuel_returned t = Atomic.get t.fuel_returned

let bucket_level t = Option.map (fun b -> Token_bucket.level b) t.bucket
