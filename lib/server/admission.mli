(** Admission control: per-request {!Resource.Budget}s carved from a
    refillable global {!Resource.Token_bucket}, plus the in-flight
    watermark. Both shed load {e before} any work is queued — the caller
    turns an [Error] into [503 + Retry-After] immediately, never a
    silent queue timeout. *)

type config = {
  request_fuel : int;  (** fuel units granted to each request *)
  request_timeout : float;  (** per-request deadline, seconds *)
  max_solutions : int option;
  global_fuel : int option;
      (** token-bucket capacity; [None] disables the global budget *)
  refill_rate : float;  (** bucket refill, tokens/second *)
  max_inflight : int;  (** in-flight request watermark *)
}

type reason = Inflight_watermark | Budget_watermark

type lease = { budget : Resource.Budget.t; fuel : int }

type t

val create : config -> t
(** Raises [Invalid_argument] on non-positive [request_fuel] or
    [max_inflight]. *)

val config : t -> config

val try_admit : ?starve:bool -> t -> (lease, reason * float) result
(** Admit one request: reserve an in-flight slot, withdraw
    [request_fuel] tokens, and build its private budget. [Error] carries
    the shed reason and a [Retry-After] hint in seconds. [starve] is the
    budget-starvation fault: the grant is withdrawn normally but the
    budget gets only a few ticks of fuel. *)

val release : t -> lease -> unit
(** Return the lease: frees the in-flight slot and gives the unspent
    fuel ([request_fuel - spent]) back to the bucket. Call exactly once
    per successful {!try_admit}, on all paths. *)

val inflight : t -> int
val admitted : t -> int
val shed_inflight : t -> int
val shed_tokens : t -> int
val fuel_returned : t -> int
val bucket_level : t -> int option
