(* Deterministic fault injection: a spec like
   ["slow:9,disconnect:11,malformed:5"] arms one fault kind per period —
   request [i] (1-based, in accept order) suffers kind [k] of period [p]
   when [i mod p = 0]. Kinds are mutually exclusive per request, by the
   fixed priority below, so a harness can predict from the request index
   exactly which fault (if any) each request sees and reconcile its
   client-side tallies against the server's counters. *)

type kind = Disconnect | Slow | Malformed | Starve | Poison

(* priority order when several periods divide the same index *)
let all = [ Disconnect; Slow; Malformed; Starve; Poison ]

let kind_name = function
  | Disconnect -> "disconnect"
  | Slow -> "slow"
  | Malformed -> "malformed"
  | Starve -> "starve"
  | Poison -> "poison"

let kind_of_name = function
  | "disconnect" -> Some Disconnect
  | "slow" -> Some Slow
  | "malformed" -> Some Malformed
  | "starve" -> Some Starve
  | "poison" -> Some Poison
  | _ -> None

type t = (kind * int) list  (* kind -> period, at most one entry per kind *)

let none = []

let parse spec =
  let spec = String.trim spec in
  if spec = "" then Ok []
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | item :: rest -> (
          match String.split_on_char ':' (String.trim item) with
          | [ name; period ] -> (
              match (kind_of_name name, int_of_string_opt period) with
              | None, _ ->
                  Error
                    (Printf.sprintf
                       "unknown fault kind %S (expected \
                        disconnect|slow|malformed|starve|poison)"
                       name)
              | Some _, None ->
                  Error (Printf.sprintf "bad fault period in %S" item)
              | Some _, Some p when p <= 0 ->
                  Error (Printf.sprintf "fault period must be positive: %S" item)
              | Some k, Some p ->
                  if List.mem_assoc k acc then
                    Error
                      (Printf.sprintf "duplicate fault kind %S" (kind_name k))
                  else go ((k, p) :: acc) rest)
          | _ ->
              Error
                (Printf.sprintf "bad fault item %S (expected kind:period)" item))
    in
    go [] (String.split_on_char ',' spec)

let for_request t i =
  if i <= 0 then None
  else
    List.find_map
      (fun k ->
        match List.assoc_opt k t with
        | Some p when i mod p = 0 -> Some k
        | _ -> None)
      all

let to_string t =
  String.concat ","
    (List.filter_map
       (fun k ->
         Option.map
           (fun p -> Printf.sprintf "%s:%d" (kind_name k) p)
           (List.assoc_opt k t))
       all)
