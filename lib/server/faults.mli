(** Deterministic fault injection for the server's degradation paths.

    A spec like ["slow:9,disconnect:11,malformed:5"] arms each fault
    kind with a period: request [i] (1-based, in accept order) suffers
    the kind whose period divides [i]. When several periods divide the
    same index, the fixed priority
    [Disconnect > Slow > Malformed > Starve > Poison] picks exactly one,
    so kinds are mutually exclusive per request and a harness can
    predict every request's fate from its index alone.

    What each kind does, and the structured error it must surface:
    - [Disconnect] — the client vanishes mid-request: the connection is
      dropped, no response (the client sees EOF).
    - [Slow] — the client stalls mid-request: the read deadline trips and
      the server answers [408].
    - [Malformed] — the request line is corrupted before parsing: [400].
    - [Starve] — the request's budget is replaced by a near-empty one:
      [408] with the tripping phase.
    - [Poison] — the plan-cache entry compiled for this request is
      poisoned: [500], and the entry is evicted so the next identical
      query recompiles cleanly. *)

type kind = Disconnect | Slow | Malformed | Starve | Poison

val all : kind list
(** Every kind, in priority order. *)

type t

val none : t

val parse : string -> (t, string) result
(** Parse a ["kind:period,..."] spec; the empty string means no faults.
    Rejects unknown kinds, non-positive periods, and duplicates. *)

val for_request : t -> int -> kind option
(** The fault (if any) armed for the request with this 1-based index. *)

val kind_name : kind -> string
val to_string : t -> string
