(* A deliberately small HTTP/1.1 subset: request line + headers + an
   optional Content-Length body, one request per connection
   (Connection: close on every response). Enough for the SPARQL
   protocol's GET/POST surface; anything outside it is [Malformed]. *)

exception Malformed of string

type request = {
  meth : string;  (* uppercased *)
  path : string;  (* percent-decoded, query string stripped *)
  query : (string * string) list;  (* decoded query-string parameters *)
  headers : (string * string) list;  (* names lowercased *)
  body : string;
}

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> raise (Malformed "bad percent escape")

let percent_decode s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then begin
      (match s.[i] with
      | '%' ->
          if i + 2 >= n then raise (Malformed "truncated percent escape");
          Buffer.add_char b
            (Char.chr ((hex_val s.[i + 1] * 16) + hex_val s.[i + 2]))
      | '+' -> Buffer.add_char b ' '
      | c -> Buffer.add_char b c);
      go (if s.[i] = '%' then i + 3 else i + 1)
    end
  in
  go 0;
  Buffer.contents b

let split_on_first ch s =
  match String.index_opt s ch with
  | None -> (s, None)
  | Some i ->
      ( String.sub s 0 i,
        Some (String.sub s (i + 1) (String.length s - i - 1)) )

let parse_query qs =
  if qs = "" then []
  else
    String.split_on_char '&' qs
    |> List.filter_map (fun kv ->
           if kv = "" then None
           else
             let k, v = split_on_first '=' kv in
             Some (percent_decode k, percent_decode (Option.value ~default:"" v)))

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ]
    when version = "HTTP/1.1" || version = "HTTP/1.0" ->
      let raw_path, qs = split_on_first '?' target in
      if raw_path = "" || raw_path.[0] <> '/' then
        raise (Malformed "request target must be absolute");
      (String.uppercase_ascii meth, percent_decode raw_path,
       parse_query (Option.value ~default:"" qs))
  | _ -> raise (Malformed "bad request line")

let parse_header line =
  let k, v = split_on_first ':' line in
  match v with
  | None -> raise (Malformed "header without colon")
  | Some v -> (String.lowercase_ascii (String.trim k), String.trim v)

let header name req =
  List.assoc_opt (String.lowercase_ascii name) req.headers

(* [mangle]: the malformed-frame injection point — corrupts the request
   line before parsing, as if the client spoke garbage. *)
let read_request ?(mangle = false) conn ~deadline ~max_bytes =
  let line = Io.read_line conn ~deadline ~max_bytes in
  let line = if mangle then "\x01garbage " ^ line else line in
  let meth, path, query = parse_request_line line in
  let rec headers acc n =
    if n > 100 then raise (Malformed "too many headers");
    match Io.read_line conn ~deadline ~max_bytes with
    | "" -> List.rev acc
    | l -> headers (parse_header l :: acc) (n + 1)
  in
  let headers = headers [] 0 in
  let body =
    match List.assoc_opt "content-length" headers with
    | None ->
        if List.assoc_opt "transfer-encoding" headers <> None then
          raise (Malformed "chunked bodies are not supported");
        ""
    | Some len -> (
        match int_of_string_opt len with
        | Some n when n >= 0 ->
            if n > max_bytes then raise Io.Too_large;
            Io.read_exact conn ~deadline ~max_bytes n
        | _ -> raise (Malformed "bad Content-Length"))
  in
  { meth; path; query; headers; body }

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Content Too Large"
  | 422 -> "Unprocessable Content"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | c -> if c < 400 then "OK" else "Error"

let respond ?(headers = []) conn ~deadline ~status body =
  let b = Buffer.create (String.length body + 256) in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_text status));
  if not (List.mem_assoc "Content-Type" headers) then
    Buffer.add_string b "Content-Type: application/json\r\n";
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string b
    (Printf.sprintf "Content-Length: %d\r\nConnection: close\r\n\r\n"
       (String.length body));
  Buffer.add_string b body;
  Io.write_all conn ~deadline (Buffer.contents b)
