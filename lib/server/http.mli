(** A small HTTP/1.1 subset over {!Io}: request line, headers, optional
    [Content-Length] body; one request per connection, every response
    carries [Connection: close]. Anything outside the subset (chunked
    bodies, malformed escapes, bad request lines) raises {!Malformed} —
    the server maps it to [400]. *)

exception Malformed of string

type request = {
  meth : string;  (** uppercased *)
  path : string;  (** percent-decoded, query string stripped *)
  query : (string * string) list;  (** decoded query-string parameters *)
  headers : (string * string) list;  (** names lowercased *)
  body : string;
}

val read_request :
  ?mangle:bool -> Io.conn -> deadline:float -> max_bytes:int -> request
(** Read and parse one request. [mangle] corrupts the request line
    before parsing — the fault layer's malformed-frame injection.
    Raises {!Malformed}, {!Io.Timeout}, {!Io.Disconnected},
    {!Io.Too_large}. *)

val respond :
  ?headers:(string * string) list ->
  Io.conn -> deadline:float -> status:int -> string -> unit
(** Write a full response ([Content-Type: application/json] unless
    overridden). *)

val header : string -> request -> string option
(** Case-insensitive header lookup (names are stored lowercased). *)

val parse_query : string -> (string * string) list
(** Decode an [application/x-www-form-urlencoded] string (also the POST
    body format). Raises {!Malformed} on bad escapes. *)

val percent_decode : string -> string
val status_text : int -> string
