(* The one module allowed to touch raw [Unix.read]/[Unix.write] (the
   lint rule in tools/lint enforces this): every socket operation here
   honours an absolute deadline via [select], counts live descriptors
   for the leak assertions in the fault harness, and folds the zoo of
   disconnect errnos into one [Disconnected]. *)

exception Timeout
exception Disconnected
exception Too_large

type fault = Stall | Drop

type conn = {
  fd : Unix.file_descr;
  mutable pending : string;  (* bytes read past the last line boundary *)
  mutable read_fault : fault option;
  mutable closed : bool;
}

(* fd accounting: [live] must return to its baseline after a drain, or
   the server leaked descriptors *)
let opened_total = Atomic.make 0
let closed_total = Atomic.make 0
let live () = Atomic.get opened_total - Atomic.get closed_total
let opened () = Atomic.get opened_total

let of_fd fd =
  Atomic.incr opened_total;
  { fd; pending = ""; read_fault = None; closed = false }

let close c =
  if not c.closed then begin
    c.closed <- true;
    Atomic.incr closed_total;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let inject_read_fault c f = c.read_fault <- Some f

let now () = Unix.gettimeofday ()

(* Wait until [fd] is ready or [deadline] passes. [select] is the only
   readiness primitive in stdlib Unix; EINTR just means retry with the
   remaining time. *)
let wait ~readable c ~deadline =
  let rec go () =
    let remaining = deadline -. now () in
    if remaining <= 0. then raise Timeout;
    let r, w = if readable then ([ c.fd ], []) else ([], [ c.fd ]) in
    match Unix.select r w [] (min remaining 1.0) with
    | [], [], [] -> go ()
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let read_chunk c ~deadline =
  (match c.read_fault with
  | Some Drop ->
      c.read_fault <- None;
      raise Disconnected
  | Some Stall ->
      c.read_fault <- None;
      (* a slow client: never delivers the rest of its request *)
      let rec stall () =
        if now () < deadline then begin
          Unix.sleepf (min 0.05 (deadline -. now ()));
          stall ()
        end
      in
      stall ();
      raise Timeout
  | None -> ());
  wait ~readable:true c ~deadline;
  let buf = Bytes.create 4096 in
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | 0 -> raise Disconnected
  | n -> Bytes.sub_string buf 0 n
  | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) ->
      raise Disconnected
  | exception Unix.Unix_error (EINTR, _, _) -> ""

(* One CRLF- (or bare-LF-)terminated line, without the terminator.
   [max_bytes] bounds the line plus whatever is buffered beyond it. *)
let read_line c ~deadline ~max_bytes =
  let rec go () =
    match String.index_opt c.pending '\n' with
    | Some i ->
        let line = String.sub c.pending 0 i in
        c.pending <-
          String.sub c.pending (i + 1) (String.length c.pending - i - 1);
        let n = String.length line in
        if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1)
        else line
    | None ->
        if String.length c.pending > max_bytes then raise Too_large;
        c.pending <- c.pending ^ read_chunk c ~deadline;
        go ()
  in
  go ()

let read_exact c ~deadline ~max_bytes n =
  if n > max_bytes then raise Too_large;
  let rec go () =
    if String.length c.pending >= n then begin
      let body = String.sub c.pending 0 n in
      c.pending <- String.sub c.pending n (String.length c.pending - n);
      body
    end
    else begin
      c.pending <- c.pending ^ read_chunk c ~deadline;
      go ()
    end
  in
  go ()

let write_all c ~deadline s =
  let n = String.length s in
  let rec go off =
    if off < n then begin
      wait ~readable:false c ~deadline;
      match Unix.write_substring c.fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
          raise Disconnected
      | exception Unix.Unix_error (EINTR, _, _) -> go off
    end
  in
  go 0
