(** Deadline-aware socket I/O — the only module in the tree allowed to
    call raw [Unix.read]/[Unix.write] (enforced by [tools/lint]). Every
    operation takes an {e absolute} deadline (Unix time) and raises
    {!Timeout} rather than blocking past it; peer-gone errnos
    ([ECONNRESET], [EPIPE], EOF) uniformly raise {!Disconnected}; input
    larger than the caller's bound raises {!Too_large}. Live-descriptor
    counters back the fault harness's leak assertions. *)

exception Timeout
exception Disconnected
exception Too_large

type fault =
  | Stall  (** the peer stops sending: reads block until the deadline *)
  | Drop  (** the peer vanishes: the next read raises {!Disconnected} *)

type conn

val of_fd : Unix.file_descr -> conn
(** Wrap an accepted socket; counts toward {!live} until {!close}. *)

val close : conn -> unit
(** Close the descriptor (idempotent; errors ignored). *)

val inject_read_fault : conn -> fault -> unit
(** Arm a one-shot fault on the next read — the fault layer's hook. *)

val read_line : conn -> deadline:float -> max_bytes:int -> string
(** One line, CRLF or LF terminated, terminator stripped. *)

val read_exact : conn -> deadline:float -> max_bytes:int -> int -> string
(** Exactly [n] bytes (a Content-Length body). *)

val write_all : conn -> deadline:float -> string -> unit

val live : unit -> int
(** Descriptors currently open ([opened - closed]). *)

val opened : unit -> int
(** Total descriptors ever wrapped (monotonic). *)
